// Tests for the simulator façade and experiment runner: configuration
// presets (paper Tables 2/3), end-to-end runs on SPEC2000 profiles,
// energy/area plumbing, determinism, and the parallel job runner.
#include <gtest/gtest.h>

#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

namespace samie::sim {
namespace {

TEST(Config, PaperDefaultsMatchTables2And3) {
  const SimConfig cfg = paper_config(LsqChoice::kSamie);
  // Table 2.
  EXPECT_EQ(cfg.core.fetch_width, 8U);
  EXPECT_EQ(cfg.core.rob_size, 256U);
  EXPECT_EQ(cfg.core.iq_int, 128U);
  EXPECT_EQ(cfg.core.iq_fp, 128U);
  EXPECT_EQ(cfg.core.int_regs, 160U);
  EXPECT_EQ(cfg.core.fp_regs, 160U);
  EXPECT_EQ(cfg.core.n_int_alu, 6U);
  EXPECT_EQ(cfg.core.n_int_muldiv, 3U);
  EXPECT_EQ(cfg.core.n_fp_alu, 4U);
  EXPECT_EQ(cfg.core.n_fp_muldiv, 2U);
  EXPECT_EQ(cfg.core.lat_int_div, 20U);
  EXPECT_EQ(cfg.core.lat_fp_div, 12U);
  EXPECT_EQ(cfg.memory.l1d.size_bytes, 8U * 1024U);
  EXPECT_EQ(cfg.memory.l1d.associativity, 4U);
  EXPECT_EQ(cfg.memory.l1d.hit_latency, 2U);
  EXPECT_EQ(cfg.memory.l1i.size_bytes, 64U * 1024U);
  EXPECT_EQ(cfg.memory.l2.size_bytes, 512U * 1024U);
  EXPECT_EQ(cfg.memory.l2.hit_latency, 10U);
  EXPECT_EQ(cfg.memory.memory_latency, 100U);
  EXPECT_EQ(cfg.memory.dtlb.entries, 128U);
  EXPECT_EQ(cfg.conventional.entries, 128U);
  // Table 3.
  EXPECT_EQ(cfg.samie.banks, 64U);
  EXPECT_EQ(cfg.samie.entries_per_bank, 2U);
  EXPECT_EQ(cfg.samie.slots_per_entry, 8U);
  EXPECT_EQ(cfg.samie.shared_entries, 8U);
  EXPECT_EQ(cfg.samie.addr_buffer_slots, 64U);
  EXPECT_EQ(cfg.samie.l1d_sets, 64U);
}

TEST(Config, LsqChoiceNames) {
  EXPECT_STREQ(lsq_choice_name(LsqChoice::kConventional), "conventional");
  EXPECT_STREQ(lsq_choice_name(LsqChoice::kSamie), "samie");
  EXPECT_STREQ(lsq_choice_name(LsqChoice::kArb), "arb");
  EXPECT_STREQ(lsq_choice_name(LsqChoice::kUnbounded), "unbounded");
}

TEST(Simulator, RunsAndIsDeterministic) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.instructions = 20'000;
  const SimResult a = run_program(cfg, "swim");
  const SimResult b = run_program(cfg, "swim");
  EXPECT_EQ(a.core.cycles, b.core.cycles);
  EXPECT_DOUBLE_EQ(a.lsq_energy_nj, b.lsq_energy_nj);
  EXPECT_DOUBLE_EQ(a.area_total, b.area_total);
  EXPECT_EQ(a.core.committed, 20'000U);
  EXPECT_EQ(a.core.value_mismatches, 0U);
}

TEST(Simulator, SamieBreakdownSumsToTotal) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.instructions = 20'000;
  const SimResult r = run_program(cfg, "ammp");
  EXPECT_NEAR(r.lsq_energy_nj,
              r.lsq_distrib_nj + r.lsq_shared_nj + r.lsq_addrbuf_nj + r.lsq_bus_nj,
              1e-9);
  EXPECT_GT(r.lsq_distrib_nj, 0.0);
  EXPECT_GT(r.lsq_bus_nj, 0.0);
}

TEST(Simulator, ConventionalHasNoSamieBreakdown) {
  SimConfig cfg = paper_config(LsqChoice::kConventional);
  cfg.instructions = 10'000;
  const SimResult r = run_program(cfg, "gzip");
  EXPECT_GT(r.lsq_energy_nj, 0.0);
  EXPECT_EQ(r.lsq_distrib_nj, 0.0);
  EXPECT_GT(r.area_total, 0.0);
}

TEST(Simulator, SamieSavesLsqEnergyOnFriendlyPrograms) {
  SimConfig samie = paper_config(LsqChoice::kSamie);
  SimConfig conv = paper_config(LsqChoice::kConventional);
  samie.instructions = conv.instructions = 30'000;
  const SimResult rs = run_program(samie, "swim");
  const SimResult rc = run_program(conv, "swim");
  EXPECT_LT(rs.lsq_energy_nj, rc.lsq_energy_nj * 0.5);
  EXPECT_LT(rs.dcache_energy_nj, rc.dcache_energy_nj);
  EXPECT_LT(rs.dtlb_energy_nj, rc.dtlb_energy_nj);
}

TEST(Simulator, UnboundedSharedModeNeverBuffers) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.samie.unbounded_shared = true;
  cfg.instructions = 20'000;
  const SimResult r = run_program(cfg, "ammp");
  EXPECT_EQ(r.buffer_nonempty_frac, 0.0);
  EXPECT_GT(r.shared_occupancy_mean, 0.0);
  EXPECT_EQ(r.core.deadlock_flushes, 0U);
}

TEST(Simulator, DerivedEnergyConstantsAlsoWork) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.paper_energy_constants = false;
  cfg.instructions = 10'000;
  const SimResult r = run_program(cfg, "gzip");
  EXPECT_GT(r.lsq_energy_nj, 0.0);
  EXPECT_GT(r.dcache_energy_nj, 0.0);
}

TEST(Simulator, AreaPolicyTracksOccupancy) {
  // A SAMIE machine running a tiny-footprint program keeps most of its
  // slots idle: its active area must be far below the all-active bound.
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.instructions = 10'000;
  const SimResult r = run_program(cfg, "crafty");
  const double per_cycle = r.area_total / static_cast<double>(r.core.cycles);
  const auto k = energy::paper_constants();
  const double all_active =
      64.0 * 2.0 *
      (energy::samie_entry_fixed_area_um2(k) + 8.0 * energy::samie_slot_area_um2(k));
  EXPECT_LT(per_cycle, all_active * 0.8);
  EXPECT_GT(per_cycle, 0.0);
}

TEST(Experiment, RunJobsPreservesOrderAndParallelismIsDeterministic) {
  std::vector<Job> jobs;
  for (const char* prog : {"gzip", "swim", "gzip"}) {
    SimConfig cfg = paper_config(LsqChoice::kSamie);
    cfg.instructions = 10'000;
    jobs.push_back(Job{prog, cfg, "tag"});
  }
  const auto seq = run_jobs(jobs, 1);
  const auto par = run_jobs(jobs, 8);
  ASSERT_EQ(seq.size(), 3U);
  ASSERT_EQ(par.size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(seq[i].job.program, jobs[i].program);
    EXPECT_EQ(seq[i].result.core.cycles, par[i].result.core.cycles);
    EXPECT_DOUBLE_EQ(seq[i].result.lsq_energy_nj, par[i].result.lsq_energy_nj);
  }
  // Identical jobs share a cached trace and must agree exactly.
  EXPECT_EQ(par[0].result.core.cycles, par[2].result.core.cycles);
}

TEST(Experiment, SuiteBuilderCoversAllPrograms) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  const auto jobs = jobs_for_suite(cfg, "x");
  EXPECT_EQ(jobs.size(), trace::spec2000_names().size());
  EXPECT_EQ(jobs.front().tag, "x");
}

TEST(Experiment, BenchKnobsHaveSaneDefaults) {
  EXPECT_GT(bench_instructions(1234), 0U);
  EXPECT_GT(bench_threads(), 0U);
}

}  // namespace
}  // namespace samie::sim
