// Sharded long-trace replay (src/sim/trace_shard.h): splitting one v2
// trace into N block-aligned shard jobs and reconciling their
// integer-ledger stats must reproduce the unsharded run EXACTLY in
// full-warm-up mode — every integer counter, every raw ledger count and
// every refolded energy, for every LSQ under test. The telescoping
// argument behind that exactness is documented in trace_shard.h; these
// tests are the proof obligation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/sim/sim_config.h"
#include "src/sim/simulator.h"
#include "src/sim/trace_shard.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kRecords = 6'000;
constexpr std::uint32_t kBlock = 512;

class ShardReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_shard_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    trace::WorkloadGenerator gen(trace::spec2000_profile("gcc"), 31);
    trace::Trace t = gen.generate(kRecords);
    v2_path_ = (dir_ / "gcc.samt").string();
    trace::write_samt_v2(v2_path_, trace::TraceView(t.ops.data(), t.ops.size()),
                         "gcc", 31, kBlock);
    v1_path_ = (dir_ / "gcc_v1.samt").string();
    trace::write_samt(v1_path_, trace::TraceView(t.ops.data(), t.ops.size()),
                      "gcc", 31);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] sim::Job base_job(sim::LsqChoice lsq) const {
    sim::Job job;
    job.program = "gcc";
    job.config = sim::paper_config(lsq);
    job.config.trace_path = v2_path_;
    job.config.instructions = kRecords;
    job.tag = sim::lsq_choice_name(lsq);
    return job;
  }

  /// Runs every shard job sequentially and reconciles.
  [[nodiscard]] static sim::SimResult run_sharded(
      const std::vector<sim::TraceShardJob>& shards,
      const sim::SimConfig& base_cfg) {
    std::vector<sim::SimResult> parts;
    parts.reserve(shards.size());
    for (const sim::TraceShardJob& s : shards) {
      parts.push_back(sim::run_trace_file(s.job.config));
    }
    return sim::merge_shard_results(parts, base_cfg);
  }

  /// Asserts every integer counter, raw ledger count and refolded
  /// energy of `got` equals `want` exactly. FP occupancy means and the
  /// FP area integrals are documented-approximate under sharding and
  /// deliberately not compared here.
  static void expect_exact(const sim::SimResult& got,
                           const sim::SimResult& want) {
    const core::CoreResult& g = got.core;
    const core::CoreResult& w = want.core;
    EXPECT_EQ(g.cycles, w.cycles);
    EXPECT_EQ(g.committed, w.committed);
    EXPECT_EQ(g.ipc, w.ipc);  // committed/cycles of equal integers
    EXPECT_EQ(g.mispredict_squashes, w.mispredict_squashes);
    EXPECT_EQ(g.deadlock_flushes, w.deadlock_flushes);
    EXPECT_EQ(g.loads_executed, w.loads_executed);
    EXPECT_EQ(g.stores_committed, w.stores_committed);
    EXPECT_EQ(g.forwarded_loads, w.forwarded_loads);
    EXPECT_EQ(g.partial_forward_waits, w.partial_forward_waits);
    EXPECT_EQ(g.agen_gated, w.agen_gated);
    EXPECT_EQ(g.value_mismatches, w.value_mismatches);
    EXPECT_EQ(g.dcache_way_known, w.dcache_way_known);
    EXPECT_EQ(g.dcache_full, w.dcache_full);
    EXPECT_EQ(g.dtlb_accesses, w.dtlb_accesses);
    EXPECT_EQ(g.dtlb_cached, w.dtlb_cached);
    EXPECT_EQ(g.quiescent_cycles_skipped, w.quiescent_cycles_skipped);
    EXPECT_EQ(g.fast_forwards, w.fast_forwards);
    EXPECT_EQ(got.l1d_hits, want.l1d_hits);
    EXPECT_EQ(got.l1d_misses, want.l1d_misses);
    EXPECT_EQ(got.dtlb_hits, want.dtlb_hits);
    EXPECT_EQ(got.dtlb_misses, want.dtlb_misses);
    EXPECT_EQ(got.branch_mispredicts, want.branch_mispredicts);
    EXPECT_EQ(got.branch_lookups, want.branch_lookups);
    for (std::size_t i = 0; i < sim::LedgerCounts::kCount; ++i) {
      EXPECT_EQ(got.ledgers.v[i], want.ledgers.v[i]) << "ledger count " << i;
    }
    // Energies refold from the summed integer counts: bit-identical.
    EXPECT_EQ(got.lsq_energy_nj, want.lsq_energy_nj);
    EXPECT_EQ(got.lsq_distrib_nj, want.lsq_distrib_nj);
    EXPECT_EQ(got.lsq_shared_nj, want.lsq_shared_nj);
    EXPECT_EQ(got.lsq_addrbuf_nj, want.lsq_addrbuf_nj);
    EXPECT_EQ(got.lsq_bus_nj, want.lsq_bus_nj);
    EXPECT_EQ(got.dcache_energy_nj, want.dcache_energy_nj);
    EXPECT_EQ(got.dtlb_energy_nj, want.dtlb_energy_nj);
  }

  fs::path dir_;
  std::string v2_path_;
  std::string v1_path_;
};

TEST_F(ShardReplayTest, ShardJobsAreBlockAlignedAndPartitionTheTrace) {
  const sim::Job base = base_job(sim::LsqChoice::kSamie);
  const std::vector<sim::TraceShardJob> shards =
      sim::make_trace_shard_jobs(base, 4, UINT64_MAX);
  ASSERT_EQ(shards.size(), 4u);
  std::uint64_t expect_begin = 0;
  for (const sim::TraceShardJob& s : shards) {
    EXPECT_EQ(s.measure_begin, expect_begin);
    EXPECT_EQ(s.measure_begin % kBlock, 0u) << "shard cut off block grid";
    EXPECT_EQ(s.job.config.trace_measure_begin, s.measure_begin);
    EXPECT_EQ(s.job.config.trace_measure_end, s.measure_end);
    // Full warm-up: the effective warm prefix is everything before the
    // measured range.
    EXPECT_EQ(sim::effective_trace_warmup(s.job.config), s.measure_begin);
    expect_begin = s.measure_end;
  }
  EXPECT_EQ(expect_begin, kRecords);
}

TEST_F(ShardReplayTest, FullWarmupReconciliationIsExactForSamie) {
  const sim::Job base = base_job(sim::LsqChoice::kSamie);
  const sim::SimResult whole = sim::run_trace_file(base.config);
  for (const std::uint32_t n : {1u, 2u, 4u, 7u}) {
    const auto shards = sim::make_trace_shard_jobs(base, n, UINT64_MAX);
    const sim::SimResult merged = run_sharded(shards, base.config);
    SCOPED_TRACE("shards=" + std::to_string(n));
    expect_exact(merged, whole);
  }
}

TEST_F(ShardReplayTest, FullWarmupReconciliationIsExactForConventional) {
  const sim::Job base = base_job(sim::LsqChoice::kConventional);
  const sim::SimResult whole = sim::run_trace_file(base.config);
  const auto shards = sim::make_trace_shard_jobs(base, 3, UINT64_MAX);
  expect_exact(run_sharded(shards, base.config), whole);
}

TEST_F(ShardReplayTest, MoreShardsThanBlocksClampsToBlockCount) {
  const sim::Job base = base_job(sim::LsqChoice::kSamie);
  // 6000 records / 512-record blocks = 12 blocks: a 100-way split can
  // cut at most once per block boundary.
  const auto shards = sim::make_trace_shard_jobs(base, 100, UINT64_MAX);
  EXPECT_EQ(shards.size(), 12u);
  expect_exact(run_sharded(shards, base.config),
               sim::run_trace_file(base.config));
}

TEST_F(ShardReplayTest, PartialWarmupRunsAndCoversTheTrace) {
  // Bounded warm-up is the documented-approximate mode: each shard
  // replays only `warmup` records of context, so reconciled stats may
  // drift from the unsharded run — but the split must still partition
  // the trace and produce a sane result.
  const sim::Job base = base_job(sim::LsqChoice::kSamie);
  const auto shards = sim::make_trace_shard_jobs(base, 4, 512);
  ASSERT_EQ(shards.size(), 4u);
  for (const sim::TraceShardJob& s : shards) {
    EXPECT_LE(sim::effective_trace_warmup(s.job.config), 512u);
  }
  const sim::SimResult merged = run_sharded(shards, base.config);
  EXPECT_GT(merged.core.cycles, 0u);
  // The measured ranges tile the full trace, so the reconciled committed
  // count can never exceed the unsharded one and the first shard (no
  // warm-up to subtract) anchors it above zero.
  EXPECT_GT(merged.core.committed, 0u);
  EXPECT_LE(merged.core.committed, kRecords);
}

TEST_F(ShardReplayTest, V1TracesAreRejectedWithConversionHint) {
  sim::Job base = base_job(sim::LsqChoice::kSamie);
  base.config.trace_path = v1_path_;
  try {
    (void)sim::make_trace_shard_jobs(base, 4, UINT64_MAX);
    FAIL() << "v1 trace was accepted for sharding";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("samt_convert"), std::string::npos)
        << "error should tell the user how to convert: " << e.what();
  }
}

TEST_F(ShardReplayTest, MergeRejectsEmptyInput) {
  EXPECT_THROW(
      (void)sim::merge_shard_results({}, base_job(sim::LsqChoice::kSamie).config),
      std::invalid_argument);
}

}  // namespace
}  // namespace samie
