// Tests for the ARB (Franklin & Sohi) banked LSQ baseline: bank/row
// placement, conflicts and retry, the in-flight cap, and forwarding
// within a row.
#include <gtest/gtest.h>

#include "src/lsq/arb_lsq.h"

namespace samie::lsq {
namespace {

using Status = Placement::Status;
using Kind = LoadPlan::Kind;

[[nodiscard]] MemOpDesc load(InstSeq seq, Addr addr, std::uint8_t size = 8) {
  return MemOpDesc{seq, addr, size, true, false};
}
[[nodiscard]] MemOpDesc store(InstSeq seq, Addr addr, std::uint8_t size = 8) {
  return MemOpDesc{seq, addr, size, false, false};
}

[[nodiscard]] ArbConfig tiny() {
  return ArbConfig{.banks = 2, .rows_per_bank = 2, .max_inflight = 16,
                   .line_bytes = 32};
}

TEST(ArbLsq, PlacesIntoBankByLineAddress) {
  ArbLsq arb(tiny());
  arb.on_dispatch(1, true);
  EXPECT_EQ(arb.on_address_ready(load(1, 0x20)).status, Status::kPlaced);
  EXPECT_TRUE(arb.is_placed(1));
}

TEST(ArbLsq, SameLineSharesRow) {
  ArbLsq arb(tiny());
  for (InstSeq s = 1; s <= 4; ++s) arb.on_dispatch(s, true);
  // All four to the same line: one row regardless of rows_per_bank.
  for (InstSeq s = 1; s <= 4; ++s) {
    EXPECT_EQ(arb.on_address_ready(load(s, 0x40 + s * 8 - 8)).status,
              Status::kPlaced);
  }
  // A different line in the same bank still fits (second row).
  arb.on_dispatch(5, true);
  EXPECT_EQ(arb.on_address_ready(load(5, 0x40 + 2 * 32 * 2)).status,
            Status::kPlaced);
}

TEST(ArbLsq, BankConflictBuffersAndDrains) {
  ArbLsq arb(tiny());
  // Lines 0, 2, 4 all map to bank 0 (line % 2 == 0); rows_per_bank == 2.
  for (InstSeq s = 1; s <= 3; ++s) arb.on_dispatch(s, true);
  EXPECT_EQ(arb.on_address_ready(load(1, 0 * 32)).status, Status::kPlaced);
  EXPECT_EQ(arb.on_address_ready(load(2, 2 * 32)).status, Status::kPlaced);
  EXPECT_EQ(arb.on_address_ready(load(3, 4 * 32)).status, Status::kBuffered);
  EXPECT_FALSE(arb.is_placed(3));
  EXPECT_EQ(arb.placement_conflicts(), 1U);

  // Nothing frees -> drain achieves nothing.
  std::vector<InstSeq> placed;
  arb.drain(placed);
  EXPECT_TRUE(placed.empty());

  // Committing the row's only instruction frees the row; drain places 3.
  arb.on_commit(1);
  arb.drain(placed);
  ASSERT_EQ(placed.size(), 1U);
  EXPECT_EQ(placed[0], 3U);
  EXPECT_TRUE(arb.is_placed(3));
}

TEST(ArbLsq, InFlightCapGatesDispatch) {
  ArbConfig cfg = tiny();
  cfg.max_inflight = 4;
  ArbLsq arb(cfg);
  for (InstSeq s = 0; s < 4; ++s) {
    ASSERT_TRUE(arb.can_dispatch(true));
    arb.on_dispatch(s, true);
  }
  EXPECT_FALSE(arb.can_dispatch(true));
  arb.on_address_ready(load(0, 0x20));
  arb.on_commit(0);
  EXPECT_TRUE(arb.can_dispatch(true));
}

TEST(ArbLsq, CapCoversSquashedUnplacedInstructions) {
  ArbConfig cfg = tiny();
  cfg.max_inflight = 4;
  ArbLsq arb(cfg);
  for (InstSeq s = 0; s < 4; ++s) arb.on_dispatch(s, true);
  // Seqs 1..3 squashed before computing their addresses.
  arb.squash_from(1);
  EXPECT_TRUE(arb.can_dispatch(true));
  arb.on_dispatch(4, true);
  arb.on_dispatch(5, true);
  arb.on_dispatch(6, true);
  EXPECT_FALSE(arb.can_dispatch(true));
}

TEST(ArbLsq, ForwardingWithinRow) {
  ArbLsq arb(tiny());
  arb.on_dispatch(1, false);
  arb.on_dispatch(2, true);
  arb.on_address_ready(store(1, 0x40));
  arb.on_address_ready(load(2, 0x40));
  LoadPlan p = arb.plan_load(2);
  EXPECT_EQ(p.kind, Kind::kForwardWait);
  EXPECT_EQ(p.store, 1U);
  arb.on_store_data_ready(1);
  EXPECT_EQ(arb.plan_load(2).kind, Kind::kForwardReady);
}

TEST(ArbLsq, PartialOverlapWaitsForCommit) {
  ArbLsq arb(tiny());
  arb.on_dispatch(1, false);
  arb.on_dispatch(2, true);
  arb.on_address_ready(store(1, 0x44, 4));
  arb.on_address_ready(load(2, 0x40, 8));
  EXPECT_EQ(arb.plan_load(2).kind, Kind::kWaitCommit);
  arb.on_store_data_ready(1);
  arb.on_commit(1);
  EXPECT_EQ(arb.plan_load(2).kind, Kind::kCacheAccess);
}

TEST(ArbLsq, LateStoreUpdatesLoadInSameRow) {
  ArbLsq arb(tiny());
  arb.on_dispatch(1, false);
  arb.on_dispatch(2, true);
  arb.on_address_ready(load(2, 0x60));
  EXPECT_EQ(arb.plan_load(2).kind, Kind::kCacheAccess);
  arb.on_address_ready(store(1, 0x60));
  EXPECT_EQ(arb.plan_load(2).kind, Kind::kForwardWait);
}

TEST(ArbLsq, SquashClearsRowsWaitersAndRefs) {
  ArbLsq arb(tiny());
  for (InstSeq s = 1; s <= 3; ++s) arb.on_dispatch(s, s != 1);
  arb.on_address_ready(store(1, 0x40));
  arb.on_address_ready(load(2, 0x40));
  arb.on_address_ready(load(3, 0x40));
  arb.squash_from(2);
  EXPECT_TRUE(arb.is_placed(1));
  EXPECT_FALSE(arb.is_placed(2));
  EXPECT_FALSE(arb.is_placed(3));
  // Row survives with only the store.
  arb.on_store_data_ready(1);
  arb.on_commit(1);
  EXPECT_EQ(arb.occupancy().entries_used, 0U);
}

TEST(ArbLsq, RowFreedWhenLastSlotCommits) {
  ArbLsq arb(tiny());
  // Fill both rows of bank 0, then free one and verify a third line fits.
  arb.on_dispatch(1, true);
  arb.on_dispatch(2, true);
  arb.on_dispatch(3, true);
  arb.on_address_ready(load(1, 0 * 32));
  arb.on_address_ready(load(2, 2 * 32));
  arb.on_commit(1);
  EXPECT_EQ(arb.on_address_ready(load(3, 4 * 32)).status, Status::kPlaced);
}

TEST(ArbLsq, OccupancyTracksDispatchAndWaiting) {
  ArbLsq arb(tiny());
  arb.on_dispatch(1, true);
  arb.on_dispatch(2, true);
  arb.on_dispatch(3, true);
  arb.on_address_ready(load(1, 0 * 32));
  arb.on_address_ready(load(2, 2 * 32));
  arb.on_address_ready(load(3, 4 * 32));  // buffered
  const OccupancySample occ = arb.occupancy();
  EXPECT_EQ(occ.entries_used, 3U);
  EXPECT_EQ(occ.buffer_used, 1U);
}

TEST(ArbLsq, PaperScaleConfigurationHoldsWindow) {
  // 8x16 with a 128 in-flight cap comfortably places a spread stream.
  ArbLsq arb(ArbConfig{.banks = 8, .rows_per_bank = 16, .max_inflight = 128,
                       .line_bytes = 32});
  for (InstSeq s = 0; s < 128; ++s) {
    ASSERT_TRUE(arb.can_dispatch(true));
    arb.on_dispatch(s, true);
    ASSERT_EQ(arb.on_address_ready(load(s, s * 32)).status, Status::kPlaced);
  }
  EXPECT_FALSE(arb.can_dispatch(true));
}

TEST(ArbLsq, CountersMatchRecountUnderRandomizedTraffic) {
  // Drives the ring-table/bitmask port through a randomized dispatch /
  // place / buffer / commit / squash mix and cross-checks the O(1)
  // occupancy counters (and the masks and the seq ring table, via the
  // asserts inside recount_occupancy) against a from-scratch recount at
  // every step — the ArbLsq mirror of SamieLsq's recount regression.
  ArbLsq arb(tiny());
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto rnd = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33U;
  };
  InstSeq next = 0;
  std::vector<InstSeq> live;  // dispatched, uncommitted, age-ordered
  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t r = rnd();
    if (r % 8 < 4 && arb.can_dispatch(true)) {
      const InstSeq s = next++;
      const bool is_load = (r >> 8U) % 2 == 0;
      arb.on_dispatch(s, is_load);
      live.push_back(s);
      const Addr addr = ((r >> 9U) % 8) * 32 + ((r >> 16U) % 4) * 8;
      (void)arb.on_address_ready(is_load ? load(s, addr) : store(s, addr));
    } else if (r % 8 < 6 && !live.empty()) {
      // Commit the oldest (the core only ever commits in age order).
      const InstSeq s = live.front();
      if (arb.is_placed(s)) {
        arb.on_commit(s);
        live.erase(live.begin());
      } else {
        // Still waiting on a row: a drain may free it later.
        std::vector<InstSeq> placed;
        arb.drain(placed);
      }
    } else if (r % 8 == 6 && !live.empty()) {
      const InstSeq cut = live[(r >> 20U) % live.size()];
      arb.squash_from(cut);
      while (!live.empty() && live.back() >= cut) live.pop_back();
      next = cut;
    } else {
      std::vector<InstSeq> placed;
      arb.drain(placed);
    }
    const OccupancySample fast = arb.occupancy();
    const OccupancySample slow = arb.recount_occupancy();
    ASSERT_TRUE(fast == slow) << "counter drift at step " << step;
    ASSERT_EQ(fast.distrib_entries_used, arb.rows_used());
    ASSERT_EQ(fast.distrib_slots_used, arb.slots_placed());
  }
}

}  // namespace
}  // namespace samie::lsq
