// Tests for process-isolated sweep execution: the pipe frame codec and
// crash-forensics wire record, isolated-vs-pool bit-identity across
// every LSQ kind, containment of the isolation-only fault kinds (crash,
// oom, spin, torn-frame), deadline escalation (cooperative SIGTERM
// unwind and the SIGKILL hard kill), in-child transient retry,
// quarantine on resume in both directions (isolate journal → pool
// resume and pool journal → isolate resume), drain semantics, and the
// run_sweep pre-flight validation. Faults are injected via
// SweepFaultPlan — nothing here depends on a real bug to crash.
//
// The crash and oom tests are skipped under AddressSanitizer: ASan owns
// SIGSEGV reporting, and its 20 TB shadow reservation cannot coexist
// with an RLIMIT_AS jail.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/sim/checkpoint.h"
#include "src/sim/experiment.h"
#include "src/sim/proc_frame.h"
#include "src/sim/process_executor.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_scheduler.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsan = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kAsan = true;
#else
constexpr bool kAsan = false;
#endif
#else
constexpr bool kAsan = false;
#endif

class ProcessExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_isolate_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  [[nodiscard]] static std::vector<sim::Job> three_jobs(
      std::uint64_t insts = 3000,
      sim::LsqChoice lsq = sim::LsqChoice::kSamie) {
    sim::SimConfig cfg = sim::paper_config(lsq);
    cfg.instructions = insts;
    std::vector<sim::Job> jobs;
    for (const char* p : {"gcc", "ammp", "mcf"}) {
      jobs.push_back(sim::Job{p, cfg, sim::lsq_choice_name(lsq)});
    }
    return jobs;
  }

  fs::path dir_;
};

void expect_results_identical(const sim::SimResult& a,
                              const sim::SimResult& b) {
  EXPECT_EQ(sim::serialize_sim_result(a), sim::serialize_sim_result(b));
}

// -- frame codec -------------------------------------------------------------

TEST(ProcFrame, ResultAndErrorFramesRoundTrip) {
  const std::string payload = "12 34 0x1.8p+1";
  const std::string bytes = sim::encode_frame(sim::FrameKind::kResult, payload);
  const auto dec = sim::decode_frame(bytes);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->kind, sim::FrameKind::kResult);
  EXPECT_EQ(dec->payload, payload);

  const auto err = sim::decode_frame(
      sim::encode_frame(sim::FrameKind::kError, "transient\x1fnfs flaked"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, sim::FrameKind::kError);
  EXPECT_EQ(err->payload, "transient\x1fnfs flaked");
}

TEST(ProcFrame, EveryTruncationPrefixIsRejectedNotMisread) {
  const std::string bytes = sim::encode_frame(sim::FrameKind::kResult, "data");
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(sim::decode_frame(bytes.substr(0, n)).has_value())
        << "prefix of " << n << " bytes decoded";
  }
  EXPECT_TRUE(sim::decode_frame(bytes).has_value());
}

TEST(ProcFrame, CorruptionAnywhereFailsTheGuardOrHeader) {
  const std::string good = sim::encode_frame(sim::FrameKind::kResult, "data");
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    EXPECT_FALSE(sim::decode_frame(bad).has_value()) << "flip at byte " << i;
  }
}

TEST(ProcFrame, TrailingJunkAndOversizeLengthAreRejected) {
  std::string bytes = sim::encode_frame(sim::FrameKind::kError, "x\x1fy");
  EXPECT_FALSE(sim::decode_frame(bytes + "junk").has_value());
  // A length field claiming more than the sanity cap must be rejected
  // even if the buffer were large enough to contain it.
  std::string huge(sim::kFrameHeaderBytes + 64, '\0');
  huge.replace(0, sim::kFrameHeaderBytes,
               sim::encode_frame(sim::FrameKind::kResult, ""),
               0, sim::kFrameHeaderBytes);
  const std::uint64_t len = sim::kFrameMaxPayload + 1;
  std::memcpy(huge.data() + 8, &len, 8);
  EXPECT_FALSE(sim::decode_frame(huge).has_value());
}

TEST(ProcFrame, CrashWireRoundTripsAndClampsFrameCount) {
  sim::CrashWire w;
  w.signal = SIGSEGV;
  w.nframes = 2;
  w.fault_addr = 0x2a;
  w.frames[0] = 0x1000;
  w.frames[1] = 0x2000;
  std::string bytes(reinterpret_cast<const char*>(&w), sizeof w);
  const auto dec = sim::decode_crash_wire(bytes);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->signal, SIGSEGV);
  EXPECT_EQ(dec->fault_addr, 0x2au);
  EXPECT_EQ(dec->nframes, 2);
  EXPECT_EQ(dec->frames[1], 0x2000u);

  EXPECT_FALSE(sim::decode_crash_wire(bytes.substr(0, 16)).has_value());
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(sim::decode_crash_wire(bad).has_value());

  w.nframes = 10'000;  // a corrupt count must clamp, not index out of bounds
  std::string over(reinterpret_cast<const char*>(&w), sizeof w);
  const auto clamped = sim::decode_crash_wire(over);
  ASSERT_TRUE(clamped.has_value());
  EXPECT_EQ(clamped->nframes, sim::kCrashMaxFrames);
}

// -- exit codes and validation -----------------------------------------------

TEST(SweepExitCode, DistinguishesCleanPartialAndContained) {
  sim::SweepReport rep;
  rep.jobs.resize(2);
  rep.completed = 2;
  EXPECT_EQ(sim::sweep_exit_code(rep), 0);
  rep.completed = 1;
  rep.failed = 1;
  EXPECT_EQ(sim::sweep_exit_code(rep), 2);
  rep.failed = 0;
  rep.crashed = 1;
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
  rep.crashed = 0;
  rep.resource_exceeded = 1;
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
}

TEST(SignalName, NamesCommonSignalsAndFallsBackToNumbers) {
  EXPECT_EQ(sim::signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(sim::signal_name(SIGXCPU), "SIGXCPU");
  EXPECT_EQ(sim::signal_name(64), "SIG64");
}

TEST_F(ProcessExecutorTest, IsolationOnlyFaultsAndLaneComboAreRejected) {
  const auto jobs = three_jobs();
  sim::SweepOptions opt;
  opt.lanes = 2;
  opt.isolate_procs = 2;
  EXPECT_THROW((void)sim::run_sweep(jobs, opt), std::invalid_argument);

  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kCrash, 0ms});
  sim::SweepOptions no_iso;
  no_iso.threads = 2;
  no_iso.faults = &plan;
  EXPECT_THROW((void)sim::run_sweep(jobs, no_iso), std::invalid_argument);

  sim::SweepFaultPlan oom_plan;
  oom_plan.faults.push_back({1, 1, sim::SweepFault::Kind::kOom, 0ms});
  sim::SweepOptions no_jail;
  no_jail.isolate_procs = 2;
  no_jail.faults = &oom_plan;  // no job_mem_mb
  EXPECT_THROW((void)sim::run_sweep(jobs, no_jail), std::invalid_argument);
}

// -- bit-identity ------------------------------------------------------------

TEST_F(ProcessExecutorTest, IsolatedResultsAreBitIdenticalAcrossLsqKinds) {
  for (const sim::LsqChoice lsq :
       {sim::LsqChoice::kConventional, sim::LsqChoice::kUnbounded,
        sim::LsqChoice::kArb, sim::LsqChoice::kSamie}) {
    const auto jobs = three_jobs(3000, lsq);
    sim::SweepOptions pool;
    pool.threads = 2;
    const sim::SweepReport a = sim::run_sweep(jobs, pool);
    sim::SweepOptions iso;
    iso.isolate_procs = 2;
    const sim::SweepReport b = sim::run_sweep(jobs, iso);
    ASSERT_TRUE(a.all_completed());
    ASSERT_TRUE(b.all_completed());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      expect_results_identical(a.jobs[i].result, b.jobs[i].result);
    }
  }
}

TEST_F(ProcessExecutorTest, TransientFaultRetriesInsideAFreshChild) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kThrowTransient, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  iso.retry.backoff_base = 1ms;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);
  ASSERT_TRUE(rep.all_completed());
  EXPECT_EQ(rep.jobs[1].outcome.attempts, 2u);

  const sim::SweepReport clean =
      sim::run_sweep(jobs, [] { sim::SweepOptions o; o.threads = 2; return o; }());
  expect_results_identical(rep.jobs[1].result, clean.jobs[1].result);
}

// -- containment -------------------------------------------------------------

TEST_F(ProcessExecutorTest, CrashIsContainedAndCarriesForensics) {
  if (kAsan) GTEST_SKIP() << "ASan owns SIGSEGV reporting";
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kCrash, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.crashed, 1u);
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kCrashed);
  EXPECT_EQ(oc.failure, sim::FailureClass::kDeterministic);
  EXPECT_EQ(oc.attempts, 1u);  // deterministic: never retried
  EXPECT_EQ(oc.term_signal, SIGSEGV);
  ASSERT_TRUE(oc.crash.present());
  EXPECT_EQ(oc.crash.signal, SIGSEGV);
  EXPECT_EQ(oc.crash.fault_addr, 0x2au);
  EXPECT_FALSE(oc.crash.frames.empty());

  // Survivors are bit-identical to a clean run's rows.
  sim::SweepOptions pool;
  pool.threads = 2;
  const sim::SweepReport clean = sim::run_sweep(jobs, pool);
  expect_results_identical(rep.jobs[0].result, clean.jobs[0].result);
  expect_results_identical(rep.jobs[2].result, clean.jobs[2].result);
}

TEST_F(ProcessExecutorTest, OomBombHitsTheJailNotTheHost) {
  if (kAsan) GTEST_SKIP() << "RLIMIT_AS cannot coexist with the ASan shadow";
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kOom, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.job_mem_mb = 512;
  iso.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.resource_exceeded, 1u);
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kResourceExceeded);
  EXPECT_EQ(oc.failure, sim::FailureClass::kDeterministic);
  EXPECT_NE(oc.what.find("RLIMIT_AS"), std::string::npos) << oc.what;
}

TEST_F(ProcessExecutorTest, SpinIgnoringTheTokenIsHardKilled) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kSpin, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  iso.job_deadline = 1000ms;
  iso.kill_grace = 300ms;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.timed_out, 1u);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kTimedOut);
  EXPECT_EQ(oc.term_signal, SIGKILL);
  EXPECT_NE(oc.what.find("SIGTERM grace"), std::string::npos) << oc.what;
  EXPECT_GE(oc.wall_seconds, 1.0);
}

TEST_F(ProcessExecutorTest, SpinDiesOnTheCpuJailWithoutADeadline) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kSpin, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.job_cpu_s = 1;  // no wall deadline: only RLIMIT_CPU ends the spin
  iso.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.resource_exceeded, 1u);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kResourceExceeded);
  EXPECT_EQ(oc.term_signal, SIGXCPU);
}

TEST_F(ProcessExecutorTest, DeadlineSigtermUnwindsCooperatively) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kDelay, 1200ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  iso.job_deadline = 150ms;
  iso.kill_grace = 30s;  // generous: the child must unwind on its own
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.timed_out, 1u);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kTimedOut);
  // Exit 0 with an "aborted" frame, not a kill: the cancellation token
  // did its job inside the child.
  EXPECT_EQ(oc.term_signal, 0);
  EXPECT_NE(oc.what.find("cancellation token"), std::string::npos) << oc.what;
}

TEST_F(ProcessExecutorTest, TornFrameIsAStructuredFailureNotAHang) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kTornFrame, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.failed, 1u);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kFailed);
  EXPECT_EQ(oc.failure, sim::FailureClass::kDeterministic);
  EXPECT_NE(oc.what.find("frame"), std::string::npos) << oc.what;
}

TEST_F(ProcessExecutorTest, DrainSkipsRemainingJobsAfterMaxFailures) {
  if (kAsan) GTEST_SKIP() << "ASan owns SIGSEGV reporting";
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults.push_back({0, 1, sim::SweepFault::Kind::kCrash, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 1;  // serial: the crash lands before jobs 1..2 start
  iso.faults = &plan;
  iso.max_failures = 1;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);
  EXPECT_EQ(rep.crashed, 1u);
  EXPECT_EQ(rep.skipped, 2u);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kSkipped);
  EXPECT_EQ(rep.jobs[2].outcome.status, sim::JobStatus::kSkipped);
}

// -- quarantine and cross-executor resume ------------------------------------

TEST_F(ProcessExecutorTest, CrashIsQuarantinedAndResumeSkipsIt) {
  if (kAsan) GTEST_SKIP() << "ASan owns SIGSEGV reporting";
  const auto jobs = three_jobs();
  const std::string ckpt = path("sweep.ckpt");
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kCrash, 0ms});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  iso.checkpoint_path = ckpt;
  const sim::SweepReport first = sim::run_sweep(jobs, iso);
  ASSERT_EQ(first.crashed, 1u);

  // The journal carries a validated 'Q' line with the forensics.
  const sim::CheckpointContents c = sim::load_checkpoint(ckpt);
  ASSERT_EQ(c.quarantined.size(), 1u);
  EXPECT_EQ(c.records.size(), 2u);

  // Resume through the in-process pool, no faults: the poison job must
  // NOT be re-run (it would crash the pool's own process).
  sim::SweepOptions pool;
  pool.threads = 2;
  pool.checkpoint_path = ckpt;
  pool.resume = true;
  const sim::SweepReport resumed = sim::run_sweep(jobs, pool);
  EXPECT_EQ(resumed.completed, 2u);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.crashed, 1u);
  EXPECT_EQ(resumed.quarantined, 1u);
  const sim::JobOutcome& oc = resumed.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kCrashed);
  EXPECT_TRUE(oc.from_checkpoint);
  EXPECT_EQ(oc.term_signal, SIGSEGV);
  ASSERT_TRUE(oc.crash.present());
  EXPECT_EQ(oc.crash.fault_addr, 0x2au);
  EXPECT_FALSE(oc.crash.frames.empty());
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    expect_results_identical(resumed.jobs[i].result, first.jobs[i].result);
  }
}

TEST_F(ProcessExecutorTest, IsolateResumesAPoolCheckpointBitIdentically) {
  const auto jobs = three_jobs();
  const std::string ckpt = path("sweep.ckpt");
  sim::SweepFaultPlan plan;  // fail job 2 so the pool run is partial
  plan.faults.push_back({2, 1, sim::SweepFault::Kind::kThrowDeterministic, 0ms});
  sim::SweepOptions pool;
  pool.threads = 2;
  pool.faults = &plan;
  pool.checkpoint_path = ckpt;
  const sim::SweepReport first = sim::run_sweep(jobs, pool);
  ASSERT_EQ(first.completed, 2u);

  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.checkpoint_path = ckpt;
  iso.resume = true;
  const sim::SweepReport resumed = sim::run_sweep(jobs, iso);
  ASSERT_TRUE(resumed.all_completed());
  EXPECT_EQ(resumed.resumed, 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(resumed.jobs[i].outcome.from_checkpoint);
    expect_results_identical(resumed.jobs[i].result, first.jobs[i].result);
  }
}

TEST_F(ProcessExecutorTest, TraceDamageIsDetectedParentSideWithoutAChild) {
  // An I/O fault on a replay job is consumed when the *parent* acquires
  // the trace before forking — damage never spawns a child, and the
  // outcome carries the same structured fields as the in-process pool's.
  std::vector<sim::Job> jobs = three_jobs();
  for (sim::Job& j : jobs) {
    trace::WorkloadGenerator gen(trace::spec2000_profile(j.program), 5);
    const trace::Trace t = gen.generate(3000);
    const std::string f = path(j.program + ".samt");
    trace::write_samt_v2(f, trace::TraceView(t.ops.data(), t.ops.size()),
                         j.program, 5, 512);
    j.config.trace_path = f;
  }

  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kShortRead, 0ms, 0});
  sim::SweepOptions iso;
  iso.isolate_procs = 2;
  iso.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, iso);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.trace_damaged, 1u);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kTraceDamaged);
  EXPECT_EQ(oc.failure, sim::FailureClass::kDeterministic);
  EXPECT_EQ(oc.damage, trace::TraceDamage::kTornTail);
  EXPECT_EQ(oc.term_signal, 0);  // no child was ever forked for it
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
}

}  // namespace
}  // namespace samie
