// Tests for src/mem: cache hit/miss/LRU/eviction semantics, the
// presentBit plumbing, way-known accesses, TLB behaviour, and the full
// hierarchy's latency chain.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/mem/cache.h"
#include "src/mem/hierarchy.h"
#include "src/mem/tlb.h"

namespace samie::mem {
namespace {

[[nodiscard]] CacheConfig small_cache() {
  // 4 sets x 2 ways x 32B lines = 256 bytes.
  return CacheConfig{.name = "t", .size_bytes = 256, .associativity = 2,
                     .line_bytes = 32, .hit_latency = 2};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  const CacheAccess m = c.access(0x1000);
  EXPECT_FALSE(m.hit);
  const CacheAccess h = c.access(0x1008);  // same line
  EXPECT_TRUE(h.hit);
  EXPECT_EQ(h.set, m.set);
  EXPECT_EQ(h.way, m.way);
  EXPECT_EQ(c.hits(), 1U);
  EXPECT_EQ(c.misses(), 1U);
}

TEST(Cache, SetIndexingSeparatesLines) {
  Cache c(small_cache());
  const CacheAccess a = c.access(0x0000);   // set 0
  const CacheAccess b = c.access(0x0020);   // set 1
  EXPECT_NE(a.set, b.set);
}

TEST(Cache, LruEvictsOldest) {
  Cache c(small_cache());
  // Three lines mapping to set 0 of a 2-way cache (set stride = 4 lines).
  c.access(0x0000);
  c.access(0x0080);
  c.access(0x0000);            // touch line A so line B becomes LRU
  const CacheAccess r = c.access(0x0100);  // must evict B (0x0080)
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line_addr, 0x0080U);
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0080));
  EXPECT_TRUE(c.contains(0x0100));
}

TEST(Cache, EvictionReportsPresentBit) {
  Cache c(small_cache());
  const CacheAccess a = c.access(0x0000);
  c.set_present_bit(a.set, a.way, true);
  c.access(0x0080);
  c.access(0x0100);  // evicts 0x0000 (LRU), which had its presentBit set
  // One of the two accesses evicted the line with the bit.
  // (0x0080 did not evict; 0x0100 evicted 0x0000.)
  const CacheAccess again = c.access(0x0180);  // evicts 0x0080 (no bit)
  EXPECT_TRUE(again.evicted);
  EXPECT_FALSE(again.evicted_present_bit);
}

TEST(Cache, PresentBitClearedOnNewLine) {
  Cache c(small_cache());
  const CacheAccess a = c.access(0x0000);
  c.set_present_bit(a.set, a.way, true);
  EXPECT_TRUE(c.present_bit(a.set, a.way));
  c.access(0x0080);
  c.access(0x0100);  // evicts 0x0000 into (a.set, a.way)
  EXPECT_FALSE(c.present_bit(a.set, a.way))
      << "installing a new line must clear the presentBit";
}

TEST(Cache, KnownAccessRefreshesLruAndValidates) {
  Cache c(small_cache());
  const CacheAccess a = c.access(0x0000);
  EXPECT_TRUE(c.access_known(a.set, a.way, 0x0000));
  // Wrong line at that location is rejected.
  EXPECT_FALSE(c.access_known(a.set, a.way, 0x0080));
  // LRU refresh: after touching A via the known path, B is evicted first.
  c.access(0x0080);
  EXPECT_TRUE(c.access_known(a.set, a.way, 0x0008));
  const CacheAccess ev = c.access(0x0100);
  EXPECT_EQ(ev.evicted_line_addr, 0x0080U);
}

TEST(Cache, ResetClearsEverything) {
  Cache c(small_cache());
  c.access(0x0000);
  c.reset();
  EXPECT_EQ(c.hits() + c.misses(), 0U);
  EXPECT_FALSE(c.contains(0x0000));
}

TEST(Cache, PaperL1dGeometry) {
  Cache c(CacheConfig{.name = "L1D", .size_bytes = 8192, .associativity = 4,
                      .line_bytes = 32, .hit_latency = 2});
  EXPECT_EQ(c.num_sets(), 64U);
  EXPECT_EQ(c.associativity(), 4U);
}

// -------------------------------------------------------------------- TLB --
TEST(Tlb, HitAfterMiss) {
  Tlb t(TlbConfig{.entries = 4, .page_bytes = 4096, .hit_latency = 1,
                  .miss_penalty = 30});
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1FFF));  // same page
  EXPECT_EQ(t.hits(), 1U);
  EXPECT_EQ(t.misses(), 1U);
}

TEST(Tlb, LruEviction) {
  Tlb t(TlbConfig{.entries = 2, .page_bytes = 4096, .hit_latency = 1,
                  .miss_penalty = 30});
  t.access(0x1000);
  t.access(0x2000);
  t.access(0x1000);   // refresh page 1
  t.access(0x3000);   // evicts page 2
  EXPECT_TRUE(t.access(0x1000));
  EXPECT_FALSE(t.access(0x2000));
}

TEST(Tlb, CapacityRespected) {
  Tlb t(TlbConfig{.entries = 128, .page_bytes = 4096, .hit_latency = 1,
                  .miss_penalty = 30});
  for (Addr p = 0; p < 128; ++p) EXPECT_FALSE(t.access(p * 4096));
  for (Addr p = 0; p < 128; ++p) EXPECT_TRUE(t.access(p * 4096));
  EXPECT_FALSE(t.access(128 * 4096));
}

/// Plain fully-associative true-LRU model: the behavior the front-array
/// Tlb must reproduce access for access (differential reference).
class ReferenceTlb {
 public:
  explicit ReferenceTlb(std::uint32_t entries) : entries_(entries) {}

  bool access(Addr vaddr) {
    const Addr vpn = vaddr >> 12U;
    for (auto& [page, tick] : pages_) {
      if (page == vpn) {
        tick = ++tick_;
        return true;
      }
    }
    if (pages_.size() >= entries_) {
      auto victim = pages_.begin();
      for (auto it = pages_.begin(); it != pages_.end(); ++it) {
        if (it->second < victim->second) victim = it;
      }
      pages_.erase(victim);
    }
    pages_.emplace_back(vpn, ++tick_);
    return false;
  }

 private:
  std::uint32_t entries_;
  std::vector<std::pair<Addr, std::uint64_t>> pages_;
  std::uint64_t tick_ = 0;
};

TEST(Tlb, FrontArrayIsBitIdenticalToFullyAssociativeTrueLru) {
  // A pseudo-random stream with page locality, working set larger than
  // the TLB, and frequent aliasing across the 64-entry direct-mapped
  // front array (strides of 64 and 65 pages collide there). Every access
  // must hit/miss exactly as the reference does.
  for (const std::uint32_t entries : {8U, 32U, 128U}) {
    Tlb tlb(TlbConfig{.entries = entries, .page_bytes = 4096,
                      .hit_latency = 1, .miss_penalty = 30});
    ReferenceTlb ref(entries);
    std::uint64_t state = 0x243F6A8885A308D3ULL;
    Addr base = 0;
    for (int i = 0; i < 20000; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::uint64_t r = state >> 33U;
      switch (r % 5) {
        case 0: base = (r >> 8U) % (4 * entries); break;  // jump
        case 1: base += 64; break;   // front-index alias, same slot
        case 2: base += 65; break;   // neighbouring slot
        default: break;              // re-touch the current page
      }
      const Addr vaddr = base * 4096 + (r & 0xFFF);
      ASSERT_EQ(tlb.access(vaddr), ref.access(vaddr))
          << "entries=" << entries << " access#" << i << " vaddr=" << vaddr;
    }
  }
}

TEST(Tlb, ResetClearsCountersAndFrontArray) {
  Tlb t(TlbConfig{.entries = 4, .page_bytes = 4096, .hit_latency = 1,
                  .miss_penalty = 30});
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1000));
  t.reset();
  EXPECT_EQ(t.hits(), 0U);
  EXPECT_EQ(t.misses(), 0U);
  // A page that hit via the front array before the reset must miss again:
  // a stale front entry would otherwise report a phantom hit.
  EXPECT_FALSE(t.access(0x1000));
  // And the refilled TLB behaves like a fresh one (LRU order rebuilt).
  ReferenceTlb ref(4);
  ref.access(0x1000);
  for (Addr p = 2; p < 12; ++p) {
    EXPECT_EQ(t.access(p * 4096), ref.access(p * 4096));
  }
}

// -------------------------------------------------------------- hierarchy --
TEST(Hierarchy, LatencyChainL1L2Memory) {
  HierarchyConfig cfg;  // paper defaults
  MemoryHierarchy m(cfg);
  // Cold access: DTLB miss (30) + L1D (2) + L2 miss (10) + memory (100).
  const DataAccess cold = m.data_access(0x100000);
  EXPECT_FALSE(cold.l1_hit);
  EXPECT_EQ(cold.latency, 30U + 2U + 10U + 100U);
  // Second access: everything hits.
  const DataAccess warm = m.data_access(0x100008);
  EXPECT_TRUE(warm.l1_hit);
  EXPECT_EQ(warm.latency, 2U);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig cfg;
  MemoryHierarchy m(cfg);
  m.data_access(0x0);
  // Walk far enough to evict line 0 from the 8KB L1 but not the 512KB L2.
  for (Addr a = 0x2000; a < 0x2000 + 16 * 1024; a += 32) m.data_access(a);
  const DataAccess again = m.data_access_translated(0x0);
  EXPECT_FALSE(again.l1_hit);
  EXPECT_EQ(again.latency, 2U + 10U);  // L1 miss, L2 hit
}

TEST(Hierarchy, TranslatedPathSkipsDtlb) {
  HierarchyConfig cfg;
  MemoryHierarchy m(cfg);
  const std::uint64_t misses_before = m.dtlb().misses();
  m.data_access_translated(0x400000);
  EXPECT_EQ(m.dtlb().misses(), misses_before);
  const DataAccess a = m.data_access(0x500000);
  EXPECT_EQ(m.dtlb().misses(), misses_before + 1);
  EXPECT_GE(a.latency, 30U);
}

TEST(Hierarchy, KnownAccessIsL1HitLatency) {
  HierarchyConfig cfg;
  MemoryHierarchy m(cfg);
  const DataAccess first = m.data_access(0x600000);
  const auto known = m.data_access_known(first.set, first.way, 0x600000);
  EXPECT_TRUE(known.ok);
  EXPECT_EQ(known.latency, 2U);
  // A bogus location is reported (the presentBit protocol must prevent it).
  const auto bogus = m.data_access_known(first.set ^ 1U, first.way, 0x600000);
  EXPECT_FALSE(bogus.ok);
}

TEST(Hierarchy, InstAccessUsesItlbAndL1i) {
  HierarchyConfig cfg;
  MemoryHierarchy m(cfg);
  const Cycle cold = m.inst_access(0x400000);
  EXPECT_GT(cold, cfg.l1i.hit_latency);
  const Cycle warm = m.inst_access(0x400004);
  EXPECT_EQ(warm, cfg.l1i.hit_latency);
}

TEST(Hierarchy, EvictionSurfacesForInvalidation) {
  HierarchyConfig cfg;
  MemoryHierarchy m(cfg);
  const DataAccess a = m.data_access(0x0);
  m.l1d().set_present_bit(a.set, a.way, true);
  // Thrash set 0: lines at stride l1d_size/assoc map to the same set.
  bool saw_present_eviction = false;
  for (int i = 1; i <= 8; ++i) {
    const DataAccess r = m.data_access_translated(static_cast<Addr>(i) * 2048);
    if (r.evicted && r.evicted_present_bit) saw_present_eviction = true;
  }
  EXPECT_TRUE(saw_present_eviction);
}

}  // namespace
}  // namespace samie::mem
