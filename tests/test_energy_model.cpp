// Tests for src/energy: the CACTI-style surrogate against the paper's
// published numbers (Tables 1, 4, 5, 6 and the Section 3.6 delays), cell
// geometry, the runtime ledgers, and area helpers.
#include <gtest/gtest.h>

#include <tuple>

#include "src/energy/array_model.h"
#include "src/energy/cache_model.h"
#include "src/energy/ledger.h"
#include "src/energy/lsq_model.h"
#include "src/energy/technology.h"

namespace samie::energy {
namespace {

// ----------------------------------------------------------- Table 6 ------
// Cell areas must reproduce the published values closely: the geometry
// model was calibrated on exactly these points.
TEST(CellAreas, ReproducePaperTable6) {
  const Technology tech = tech_100nm();
  const ArrayModel cam8(tech, {128, 32, 8, CellType::kCam});
  const ArrayModel ram8(tech, {128, 64, 8, CellType::kRam});
  const ArrayModel cam2(tech, {2, 27, 2, CellType::kCam});
  const ArrayModel ram2(tech, {16, 64, 2, CellType::kRam});
  EXPECT_NEAR(cam8.cell_area_um2(), 28.0, 28.0 * 0.02);
  EXPECT_NEAR(ram8.cell_area_um2(), 20.0, 20.0 * 0.02);
  EXPECT_NEAR(cam2.cell_area_um2(), 10.0, 10.0 * 0.02);
  EXPECT_NEAR(ram2.cell_area_um2(), 6.0, 6.0 * 0.02);
}

TEST(CellAreas, GrowWithPorts) {
  const Technology tech = tech_100nm();
  double prev = 0.0;
  for (std::uint32_t p = 1; p <= 8; ++p) {
    const ArrayModel m(tech, {16, 32, p, CellType::kRam});
    EXPECT_GT(m.cell_area_um2(), prev);
    prev = m.cell_area_um2();
  }
}

TEST(CellAreas, CamLargerThanRam) {
  const Technology tech = tech_100nm();
  for (std::uint32_t p : {1U, 2U, 4U, 8U}) {
    const ArrayModel cam(tech, {16, 32, p, CellType::kCam});
    const ArrayModel ram(tech, {16, 32, p, CellType::kRam});
    EXPECT_GT(cam.cell_area_um2(), ram.cell_area_um2());
  }
}

// ------------------------------------------------- Section 3.6 delays ------
TEST(LsqDelays, ReproducePaperSection36) {
  const LsqEnergyConstants d = derived_constants(tech_100nm());
  const LsqEnergyConstants p = paper_constants();
  // The delay model was fitted on these five points; require <= 7%.
  EXPECT_NEAR(d.delays.conventional_128, p.delays.conventional_128,
              p.delays.conventional_128 * 0.07);
  EXPECT_NEAR(d.delays.conventional_16, p.delays.conventional_16,
              p.delays.conventional_16 * 0.07);
  EXPECT_NEAR(d.delays.distrib_bank, p.delays.distrib_bank,
              p.delays.distrib_bank * 0.07);
  EXPECT_NEAR(d.delays.distrib_bus, p.delays.distrib_bus,
              p.delays.distrib_bus * 0.07);
  EXPECT_NEAR(d.delays.shared, p.delays.shared, p.delays.shared * 0.07);
  EXPECT_NEAR(d.delays.addr_buffer, p.delays.addr_buffer,
              p.delays.addr_buffer * 0.07);
}

TEST(LsqDelays, SamieIsFasterThanConventional) {
  const LsqEnergyConstants d = derived_constants(tech_100nm());
  EXPECT_LT(d.delays.distrib_total, d.delays.conventional_128);
  // Paper: the 128-entry conventional LSQ is ~23% slower than SAMIE.
  const double ratio = d.delays.conventional_128 / d.delays.distrib_total;
  EXPECT_GT(ratio, 1.10);
  EXPECT_LT(ratio, 1.40);
}

TEST(LsqDelays, BusEnergyMatchesPaper) {
  const LsqEnergyConstants d = derived_constants(tech_100nm());
  EXPECT_NEAR(d.samie.bus_send_addr_pj, 54.4, 54.4 * 0.10);
}

// ------------------------------------------------------------- Table 1 ------
struct Table1Row {
  std::uint64_t size_kb;
  std::uint32_t assoc;
  std::uint32_t ports;
  double conv_ns;
  double known_ns;
};

class CacheDelayTable1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(CacheDelayTable1, WithinSevenPercentOfPaper) {
  const auto& row = GetParam();
  const CacheModel m(tech_100nm(),
                     CacheGeometry{row.size_kb * 1024, row.assoc, 32, row.ports, 32});
  EXPECT_NEAR(m.conventional_delay_ns(), row.conv_ns, row.conv_ns * 0.07);
  EXPECT_NEAR(m.known_line_delay_ns(), row.known_ns, row.known_ns * 0.07);
  // Improvement shape: never negative, never above 25%.
  EXPECT_GE(m.delay_improvement(), 0.0);
  EXPECT_LE(m.delay_improvement(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, CacheDelayTable1,
    ::testing::Values(Table1Row{8, 2, 2, 0.865, 0.700},
                      Table1Row{8, 2, 4, 1.014, 0.875},
                      Table1Row{8, 4, 2, 1.008, 0.878},
                      Table1Row{8, 4, 4, 1.307, 1.266},
                      Table1Row{32, 2, 2, 1.195, 1.092},
                      Table1Row{32, 2, 4, 1.551, 1.490},
                      Table1Row{32, 4, 2, 1.194, 1.165},
                      Table1Row{32, 4, 4, 1.693, 1.693}));

TEST(CacheDelay, ImprovementShrinksWithPortsAndSize) {
  const Technology t = tech_100nm();
  const CacheModel small2p(t, {8 * 1024, 2, 32, 2, 32});
  const CacheModel small4p(t, {8 * 1024, 2, 32, 4, 32});
  const CacheModel big2p(t, {32 * 1024, 2, 32, 2, 32});
  EXPECT_GT(small2p.delay_improvement(), small4p.delay_improvement());
  EXPECT_GT(small2p.delay_improvement(), big2p.delay_improvement());
}

TEST(CacheEnergy, ReproducesPaperDcachePair) {
  // 8KB 4-way 4-port 32B lines: 1009 pJ conventional, 276 pJ way-known.
  const CacheModel m(tech_100nm(), {8 * 1024, 4, 32, 4, 32});
  EXPECT_NEAR(m.conventional_energy_pj(), 1009.0, 1009.0 * 0.05);
  EXPECT_NEAR(m.known_line_energy_pj(), 276.0, 276.0 * 0.05);
}

TEST(CacheEnergy, WayKnownAlwaysCheaper) {
  const Technology t = tech_100nm();
  for (std::uint64_t kb : {8ULL, 16ULL, 32ULL}) {
    for (std::uint32_t assoc : {2U, 4U, 8U}) {
      const CacheModel m(t, {kb * 1024, assoc, 32, 2, 32});
      EXPECT_LT(m.known_line_energy_pj(), m.conventional_energy_pj());
    }
  }
}

TEST(TlbEnergy, NearPaperValue) {
  const double e = tlb_access_energy_pj(tech_100nm(), 128, 32, 20, 2);
  EXPECT_NEAR(e, 273.0, 273.0 * 0.15);
}

// ----------------------------------------------- Tables 4/5 (surrogate) ----
// The energy surrogate is a coarse fit (DESIGN.md): require each derived
// constant to stay within a factor band of the published value, and the
// *orderings* the paper's argument rests on to hold exactly.
TEST(EnergySurrogate, WithinFactorBandsOfPaper) {
  const LsqEnergyConstants d = derived_constants(tech_100nm());
  const LsqEnergyConstants p = paper_constants();
  auto in_band = [](double derived, double published, double lo, double hi) {
    EXPECT_GE(derived, published * lo) << "derived " << derived << " vs "
                                       << published;
    EXPECT_LE(derived, published * hi) << "derived " << derived << " vs "
                                       << published;
  };
  in_band(d.conv.addr_cmp_per_addr_pj, p.conv.addr_cmp_per_addr_pj, 0.5, 2.0);
  in_band(d.conv.addr_cmp_base_pj, p.conv.addr_cmp_base_pj, 0.5, 2.0);
  in_band(d.conv.addr_rw_pj, p.conv.addr_rw_pj, 0.5, 2.0);
  in_band(d.conv.datum_rw_pj, p.conv.datum_rw_pj, 0.3, 2.0);
  in_band(d.samie.d_addr_cmp_per_addr_pj, p.samie.d_addr_cmp_per_addr_pj, 0.4, 2.0);
  in_band(d.samie.s_addr_cmp_per_addr_pj, p.samie.s_addr_cmp_per_addr_pj, 0.3, 2.0);
  in_band(d.samie.d_datum_rw_pj, p.samie.d_datum_rw_pj, 0.4, 2.5);
  in_band(d.samie.ab_datum_rw_pj, p.samie.ab_datum_rw_pj, 0.5, 2.0);
  in_band(d.samie.ab_age_rw_pj, p.samie.ab_age_rw_pj, 0.5, 2.0);
  in_band(d.samie.d_translation_rw_pj, p.samie.d_translation_rw_pj, 0.5, 2.5);
}

TEST(EnergySurrogate, OrderingsThePaperReliesOn) {
  const LsqEnergyConstants d = derived_constants(tech_100nm());
  // A conventional associative search is far more expensive than a bank
  // search plus the shared search plus the bus transfer.
  const double conv_search = d.conv.addr_cmp_base_pj + 8 * d.conv.addr_cmp_per_addr_pj;
  const double samie_search = d.samie.d_addr_cmp_base_pj +
                              2 * d.samie.d_addr_cmp_per_addr_pj +
                              d.samie.s_addr_cmp_base_pj +
                              8 * d.samie.s_addr_cmp_per_addr_pj +
                              d.samie.bus_send_addr_pj;
  EXPECT_GT(conv_search, samie_search);
  // Small low-ported arrays beat the big highly-ported ones per access.
  EXPECT_LT(d.samie.d_addr_rw_pj, d.conv.addr_rw_pj);
  EXPECT_LT(d.samie.d_datum_rw_pj, d.conv.datum_rw_pj);
}

// --------------------------------------------------------------- ledgers ---
TEST(ConvLedger, AccumulatesTable4Constants) {
  const LsqEnergyConstants k = paper_constants();
  ConvLsqLedger l(k);
  l.on_addr_search(10);
  EXPECT_DOUBLE_EQ(l.energy_pj(), 452.0 + 10 * 3.53);
  l.on_addr_write();
  l.on_datum_read();
  EXPECT_DOUBLE_EQ(l.energy_pj(), 452.0 + 10 * 3.53 + 57.1 + 93.2);
  EXPECT_EQ(l.searches(), 1U);
  EXPECT_EQ(l.addresses_compared(), 10U);
}

TEST(SamieLedger, BreakdownSumsToTotal) {
  const LsqEnergyConstants k = paper_constants();
  SamieLsqLedger l(k);
  l.on_bus_send();
  l.on_distrib_addr_search(2);
  l.on_distrib_age_search(5);
  l.on_shared_addr_search(8);
  l.on_shared_age_search(3);
  l.on_addrbuf_write();
  l.on_addrbuf_read();
  EXPECT_DOUBLE_EQ(
      l.energy_pj(),
      l.distrib_pj() + l.shared_pj() + l.addrbuf_pj() + l.bus_pj());
  EXPECT_DOUBLE_EQ(l.bus_pj(), 54.4);
  EXPECT_DOUBLE_EQ(l.distrib_pj(), 4.33 + 2 * 2.17 + 19.4 + 5 * 1.21);
  EXPECT_DOUBLE_EQ(l.shared_pj(), 22.7 + 8 * 2.83 + 19.4 + 3 * 2.43);
  EXPECT_DOUBLE_EQ(l.addrbuf_pj(), 2 * (31.6 + 15.7));
}

TEST(MemLedgers, CountAndWeighAccesses) {
  const LsqEnergyConstants k = paper_constants();
  DcacheLedger dc(k);
  dc.on_full_access();
  dc.on_way_known_access();
  dc.on_way_known_access();
  EXPECT_DOUBLE_EQ(dc.energy_pj(), 1009.0 + 2 * 276.0);
  EXPECT_EQ(dc.full_accesses(), 1U);
  EXPECT_EQ(dc.way_known_accesses(), 2U);

  DtlbLedger tl(k);
  tl.on_access();
  tl.on_cached_translation();
  EXPECT_DOUBLE_EQ(tl.energy_pj(), 273.0);
  EXPECT_EQ(tl.cached_translations(), 1U);
}

TEST(AreaIntegrator, AccumulatesComponents) {
  AreaIntegrator a;
  a.add_cycle(10, 5, 1);
  a.add_cycle(10, 0, 0);
  a.add_cycle_conventional(7);
  EXPECT_DOUBLE_EQ(a.distrib(), 20);
  EXPECT_DOUBLE_EQ(a.shared(), 5);
  EXPECT_DOUBLE_EQ(a.addrbuf(), 1);
  EXPECT_DOUBLE_EQ(a.samie_total(), 26);
  EXPECT_DOUBLE_EQ(a.conventional(), 7);
}

// ------------------------------------------------------------ area helpers --
TEST(AreaHelpers, EntryAreasAreConsistent) {
  const LsqEnergyConstants k = paper_constants();
  // Conventional entry: 32b address CAM + 64b datum RAM.
  EXPECT_DOUBLE_EQ(conv_entry_area_um2(k), 32 * 28.0 + 64 * 20.0);
  // SAMIE slot must be much smaller than a conventional entry.
  EXPECT_LT(samie_slot_area_um2(k), conv_entry_area_um2(k));
  EXPECT_GT(samie_entry_fixed_area_um2(k), 0.0);
  EXPECT_GT(addrbuf_slot_area_um2(k), 0.0);
}

TEST(ArrayModel, SearchEnergyTwoTermForm) {
  const ArrayModel cam(tech_100nm(), {8, 27, 2, CellType::kCam});
  const double per = cam.cam_per_entry_energy_pj();
  EXPECT_DOUBLE_EQ(cam.cam_search_energy_pj(0), 8 * per);
  EXPECT_DOUBLE_EQ(cam.cam_search_energy_pj(8), 16 * per);
}

TEST(ArrayModel, DelayGrowsWithEntriesAndPorts) {
  const Technology t = tech_100nm();
  const ArrayModel small(t, {2, 27, 2, CellType::kCam});
  const ArrayModel big(t, {128, 27, 2, CellType::kCam});
  const ArrayModel ported(t, {2, 27, 8, CellType::kCam});
  EXPECT_LT(small.cam_search_delay_ns(), big.cam_search_delay_ns());
  EXPECT_LT(small.cam_search_delay_ns(), ported.cam_search_delay_ns());
}

}  // namespace
}  // namespace samie::energy
