// DepSlab regression tests: the shared dependence-ref arena must
// preserve insertion order (the core's wake order depends on it),
// recycle chunks through the freelist (reuse after squash — steady
// state never grows), and leak nothing (the recount hooks cross-check
// the O(1) accounting). The Core integration test runs a squash- and
// forwarding-heavy trace and asserts the slab is fully reclaimed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/branch/predictor.h"
#include "src/core/core.h"
#include "src/core/dep_slab.h"
#include "src/lsq/samie_lsq.h"
#include "src/mem/hierarchy.h"
#include "src/trace/instruction.h"

namespace samie::core {
namespace {

DepRef ref(InstSeq seq, std::uint32_t gen = 1, std::uint8_t role = 0) {
  return DepRef{seq, gen, role};
}

std::vector<InstSeq> seqs_of(const DepSlab& slab, const DepSlab::List& l) {
  std::vector<InstSeq> out;
  slab.for_each(l, [&out](const DepRef& r) { out.push_back(r.seq); });
  return out;
}

TEST(DepSlab, PreservesInsertionOrderAcrossChunkBoundaries) {
  DepSlab slab;
  DepSlab::List l;
  // 3 chunks' worth plus a partial tail.
  const std::size_t n = DepSlab::kChunkRefs * 3 + 2;
  for (std::size_t i = 0; i < n; ++i) slab.push(l, ref(i));
  const std::vector<InstSeq> got = seqs_of(slab, l);
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(slab.live_refs(), n);
  slab.free(l);
  EXPECT_EQ(slab.live_refs(), 0U);
  EXPECT_TRUE(slab.empty(l));
}

TEST(DepSlab, FreeReturnsEveryChunkAndRecountAgrees) {
  DepSlab slab(8);
  EXPECT_EQ(slab.total_chunks(), 8U);
  EXPECT_EQ(slab.free_chunks(), 8U);
  EXPECT_EQ(slab.recount_free_chunks(), 8U);

  DepSlab::List a;
  DepSlab::List b;
  for (std::size_t i = 0; i < DepSlab::kChunkRefs * 2; ++i) slab.push(a, ref(i));
  for (std::size_t i = 0; i < DepSlab::kChunkRefs + 1; ++i) slab.push(b, ref(i));
  EXPECT_EQ(slab.chunks_in_use(), 4U);
  EXPECT_EQ(slab.free_chunks(), slab.recount_free_chunks());

  slab.free(a);
  slab.free(b);
  EXPECT_EQ(slab.chunks_in_use(), 0U);
  EXPECT_EQ(slab.free_chunks(), slab.total_chunks());
  EXPECT_EQ(slab.recount_free_chunks(), slab.total_chunks());
  EXPECT_EQ(slab.live_refs(), 0U);
}

TEST(DepSlab, ReusesFreedChunksInsteadOfGrowing) {
  DepSlab slab(4);
  const std::size_t total_before = slab.total_chunks();
  // A squash-shaped workload: fill lists, throw them away, repeat. The
  // arena must not grow once working-set-many chunks exist.
  for (int round = 0; round < 1000; ++round) {
    DepSlab::List l;
    for (std::size_t i = 0; i < DepSlab::kChunkRefs * 4; ++i) {
      slab.push(l, ref(i, static_cast<std::uint32_t>(round)));
    }
    slab.free(l);
  }
  EXPECT_EQ(slab.total_chunks(), total_before)
      << "freed chunks were not recycled";
  EXPECT_EQ(slab.free_chunks(), slab.total_chunks());
  EXPECT_EQ(slab.recount_free_chunks(), slab.total_chunks());
}

TEST(DepSlab, DetachStealsTheChainAndPushDuringIterationIsSafe) {
  DepSlab slab;
  DepSlab::List l;
  for (std::size_t i = 0; i < DepSlab::kChunkRefs + 1; ++i) slab.push(l, ref(i));
  DepSlab::List taken = slab.detach(l);
  EXPECT_TRUE(slab.empty(l));

  // Re-entrant pattern: the wake loop pushes to (other) lists while the
  // detached chain is iterated; the chain must be unaffected.
  DepSlab::List other;
  std::size_t visited = 0;
  slab.for_each(taken, [&](const DepRef& r) {
    slab.push(other, ref(r.seq + 100));
    ++visited;
  });
  EXPECT_EQ(visited, DepSlab::kChunkRefs + 1);
  const std::vector<InstSeq> got = seqs_of(slab, other);
  ASSERT_EQ(got.size(), DepSlab::kChunkRefs + 1);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i + 100);

  slab.free(taken);
  slab.free(other);
  EXPECT_EQ(slab.live_refs(), 0U);
  EXPECT_EQ(slab.free_chunks(), slab.total_chunks());
}

// ------------------------------------------------------------ integration --
// A branchy, forwarding-heavy, deliberately under-provisioned SAMIE run:
// mispredict squashes and §3.3 full flushes churn the dependence lists
// hard. Afterwards every ref must have been reclaimed (live_refs == 0,
// freelist == arena) and the recount hook must agree with the counter —
// a leaked DepRef chunk anywhere in the commit/squash/flush paths fails
// here.
TEST(DepSlabIntegration, CoreReclaimsEveryRefAfterSquashHeavyRun) {
  trace::Trace t{.name = "slab-churn", .seed = 0, .ops = {}};
  Addr pc = 0x400000;
  std::uint64_t mem_base = 0x10000;
  for (int i = 0; i < 6000; ++i) {
    trace::MicroOp op;
    op.pc = pc;
    pc += 4;
    switch (i % 5) {
      case 0:  // producer chain: every op below depends on r1
        op.op = trace::OpClass::kIntAlu;
        op.dst = 1;
        op.src1 = 1;
        break;
      case 1:  // store whose address and data both depend on the chain
        op.op = trace::OpClass::kStore;
        op.mem_addr = mem_base + (i % 64) * 8;
        op.mem_size = 8;
        op.value = static_cast<std::uint64_t>(i);
        op.src1 = 1;
        op.src2 = 1;
        break;
      case 2:  // load of the previous op's store: forwarding paths
        op.op = trace::OpClass::kLoad;
        op.mem_addr = mem_base + ((i - 1) % 64) * 8;
        op.mem_size = 8;
        op.value = static_cast<std::uint64_t>(i - 1);  // what that store wrote
        op.dst = 2;
        op.src1 = 1;
        break;
      case 3:  // dependent consumer
        op.op = trace::OpClass::kIntAlu;
        op.dst = 3;
        op.src1 = 2;
        op.src2 = 1;
        break;
      default:  // taken branch every 5th op: constant squash pressure
        op.op = trace::OpClass::kBranch;
        op.taken = (i % 2) == 0;
        op.br_target = pc + 16;
        break;
    }
    t.ops.push_back(op);
  }

  // Tiny SAMIE geometry so placement pressure adds full flushes.
  lsq::SamieConfig scfg;
  scfg.banks = 2;
  scfg.entries_per_bank = 1;
  scfg.slots_per_entry = 2;
  scfg.shared_entries = 1;
  scfg.addr_buffer_slots = 4;
  lsq::SamieLsq q(scfg, nullptr);
  mem::MemoryHierarchy memory{mem::HierarchyConfig{}};
  branch::HybridPredictor pred;
  branch::Btb btb;
  CoreConfig cfg;
  cfg.check_quiescence = true;  // ride along: ledger agreement too
  Core c(cfg, t, q, memory, pred, btb, nullptr, nullptr, nullptr);
  const CoreResult r = c.run(t.size());

  EXPECT_EQ(r.committed, t.size());
  EXPECT_GT(r.mispredict_squashes, 0U) << "squash path not exercised";
  EXPECT_EQ(r.value_mismatches, 0U);

  const DepSlab& slab = c.dep_slab();
  EXPECT_EQ(slab.live_refs(), 0U) << "DepRefs leaked";
  EXPECT_EQ(slab.chunks_in_use(), 0U) << "chunks stranded outside freelist";
  EXPECT_EQ(slab.free_chunks(), slab.total_chunks());
  EXPECT_EQ(slab.recount_free_chunks(), slab.free_chunks())
      << "freelist walk disagrees with the O(1) counter";
}

}  // namespace
}  // namespace samie::core
