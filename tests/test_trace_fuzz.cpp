// Corrupt-trace fuzz: randomized bit flips and truncations of a valid
// SAMT file must surface as trace::TraceFormatError — never a crash, a
// hang, or a silently-wrong replay. The RNG is seeded deterministically
// (Xoshiro256), so every failure reproduces.
//
// The header layout (src/trace/trace_io.h, 64 bytes) splits into two
// regions with different guarantees:
//   [0,24)  magic/version/record_bytes/count — any flip MUST throw
//           (magic mismatch, bad version/record size, or a count that
//           contradicts the exact-file-size check)
//   [32,40) checksum — any flip MUST throw (FNV mismatch)
//   [24,32) seed and [40,64) name — provenance only; a flip may load
//           fine, but must never crash
// Record bytes [64,end) are covered by the FNV-1a checksum, whose
// byte-step (h ^ b) * prime is bijective in h, so any single-byte change
// always changes the final hash: a flip anywhere in the records MUST
// throw. Truncating or extending the file contradicts the exact-size
// check and MUST throw.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;

class TraceFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_fuzz_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    // One small valid trace, reused (in memory) by every mutation.
    trace::WorkloadGenerator gen(trace::spec2000_profile("gcc"), 11);
    trace::Trace t = gen.generate(1500);
    t.name = "gcc";
    t.seed = 11;
    const std::string p = path("seedfile.samt");
    trace::write_samt(p, trace::TraceView(t.ops.data(), t.ops.size()), t.name,
                      t.seed);
    std::ifstream in(p, std::ios::binary);
    valid_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(valid_.size(), 64u);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  [[nodiscard]] std::string write_mutant(const std::vector<char>& bytes) const {
    const std::string p = path("mutant.samt");
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  /// Opens via both ingestion paths. Returns true when both succeeded;
  /// throws whatever they throw. Successful opens are walked end to end
  /// so a lying header would fault here, under the test harness.
  static bool open_both(const std::string& p) {
    std::uint64_t sink = 0;
    {
      const trace::TraceSource mapped = trace::TraceSource::open_samt(p);
      for (std::size_t i = 0; i < mapped.size(); ++i) {
        sink += mapped.view()[i].pc;
      }
    }
    const trace::Trace copied = trace::TraceReader(p).read_all();
    for (const auto& op : copied.ops) sink += op.value;
    return sink != 0xdeadULL;  // defeat optimizing the walks away
  }

  fs::path dir_;
  std::vector<char> valid_;
};

TEST_F(TraceFuzzTest, ValidBaselineOpensCleanly) {
  EXPECT_NO_THROW((void)open_both(write_mutant(valid_)));
}

TEST_F(TraceFuzzTest, BitFlipsInGuardedRegionsAlwaysThrow) {
  Xoshiro256 rng(0x5eedULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> bytes = valid_;
    // Guarded offsets: header [0,24) u [32,40), or any record byte.
    std::size_t off;
    switch (rng.below(3)) {
      case 0: off = rng.below(24); break;
      case 1: off = 32 + rng.below(8); break;
      default: off = 64 + rng.below(bytes.size() - 64); break;
    }
    bytes[off] = static_cast<char>(bytes[off] ^ (1u << rng.below(8)));
    const std::string p = write_mutant(bytes);
    EXPECT_THROW((void)open_both(p), trace::TraceFormatError)
        << "trial " << trial << ": flip at offset " << off
        << " was accepted";
  }
}

TEST_F(TraceFuzzTest, TruncationsAndExtensionsAlwaysThrow) {
  Xoshiro256 rng(0xacce55ULL);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> bytes = valid_;
    if (rng.below(2) == 0) {
      bytes.resize(rng.below(bytes.size()));  // truncate (possibly to 0)
    } else {
      const std::size_t extra = 1 + rng.below(80);
      for (std::size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng()));
      }
    }
    const std::string p = write_mutant(bytes);
    EXPECT_THROW((void)open_both(p), trace::TraceFormatError)
        << "trial " << trial << ": size " << bytes.size() << " vs valid "
        << valid_.size();
  }
}

TEST_F(TraceFuzzTest, ProvenanceFlipsNeverCrash) {
  // seed [24,32) and name [40,64) are provenance, not integrity: a flip
  // may load fine (different seed/name) — it must never crash or hang.
  Xoshiro256 rng(0xbadc0deULL);
  int accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> bytes = valid_;
    const std::size_t off =
        rng.below(2) == 0 ? 24 + rng.below(8) : 40 + rng.below(24);
    bytes[off] = static_cast<char>(bytes[off] ^ (1u << rng.below(8)));
    const std::string p = write_mutant(bytes);
    try {
      (void)open_both(p);
      ++accepted;
    } catch (const trace::TraceFormatError&) {
      // Also acceptable — just never a crash.
    }
  }
  // Sanity: these flips are outside every integrity check, so at least
  // some mutants must have loaded (all-throw would mean the regions
  // above are mislabeled and the MUST-throw tests are vacuous).
  EXPECT_GT(accepted, 0);
}

TEST_F(TraceFuzzTest, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x9a5b7eULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = rng.below(4096);
    std::vector<char> bytes(n);
    for (auto& b : bytes) b = static_cast<char>(rng());
    const std::string p = write_mutant(bytes);
    try {
      (void)open_both(p);
    } catch (const trace::TraceFormatError&) {
    }
  }
}

// -------------------------------------------------------------- SAMT v2 --
//
// v2 integrity coverage differs from v1's: everything after the 64-byte
// header — block headers, block payloads, index region, footer — carries
// its own FNV-1a guard, so a flip at ANY offset >= 64 must surface as a
// typed error from a full read. In the header, [0,24) and the index-
// binding checksum [32,40) are guarded; seed [24,32) and name [40,64)
// stay provenance-only, exactly as in v1.

class TraceV2FuzzTest : public TraceFuzzTest {
 protected:
  void SetUp() override {
    TraceFuzzTest::SetUp();
    // Small blocks so the mutation space covers many block boundaries,
    // interior blocks, and a multi-entry index.
    trace::WorkloadGenerator gen(trace::spec2000_profile("gcc"), 11);
    ops_ = gen.generate(1500).ops;
    const std::string p = path("seedfile_v2.samt");
    trace::write_samt_v2(p, trace::TraceView(ops_.data(), ops_.size()), "gcc",
                         11, /*block_records=*/256);
    std::ifstream in(p, std::ios::binary);
    valid_v2_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(valid_v2_.size(), 96u);
  }

  /// Full verifying read: eager footer/index validation at construction,
  /// then a whole-file block walk.
  static bool open_v2(const std::string& p) {
    const trace::TraceV2Reader r(p);
    std::uint64_t sink = 0;
    for (const auto& op : r.read_all().ops) sink += op.pc;
    return sink != 0xdeadULL;
  }

  std::vector<trace::MicroOp> ops_;
  std::vector<char> valid_v2_;
};

TEST_F(TraceV2FuzzTest, IntactFileDecodesBitIdentically) {
  const std::string p = write_mutant(valid_v2_);
  const trace::Trace t = trace::TraceV2Reader(p).read_all();
  ASSERT_EQ(t.ops.size(), ops_.size());
  EXPECT_EQ(std::memcmp(t.ops.data(), ops_.data(),
                        ops_.size() * sizeof(trace::MicroOp)),
            0);
  // Re-encoding the decoded records reproduces the file byte for byte:
  // the v2 encoding is canonical, so "decode + re-encode" is the
  // identity on intact files.
  const std::string p2 = path("rewritten.samt");
  trace::write_samt_v2(p2, trace::TraceView(t.ops.data(), t.ops.size()), "gcc",
                       11, /*block_records=*/256);
  std::ifstream in(p2, std::ios::binary);
  const std::vector<char> rewritten((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
  EXPECT_EQ(rewritten, valid_v2_);
}

TEST_F(TraceV2FuzzTest, BitFlipsInGuardedRegionsAlwaysThrow) {
  Xoshiro256 rng(0x2f1a9bULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> bytes = valid_v2_;
    // Guarded: header [0,24) u [32,40), or anything after the header
    // (blocks, index, footer — every byte is under some FNV guard).
    std::size_t off;
    switch (rng.below(4)) {
      case 0: off = rng.below(24); break;
      case 1: off = 32 + rng.below(8); break;
      default: off = 64 + rng.below(bytes.size() - 64); break;
    }
    bytes[off] = static_cast<char>(bytes[off] ^ (1u << rng.below(8)));
    const std::string p = write_mutant(bytes);
    EXPECT_THROW((void)open_v2(p), trace::TraceFormatError)
        << "trial " << trial << ": flip at offset " << off << " was accepted";
    // The damage walk must also notice: it either reports damage, or —
    // for flips that destroy the magic/version/record-size — throws the
    // same typed not-a-SAMT-file error. Never a clean verdict.
    try {
      const trace::TraceHealth h = trace::trace_health(p);
      EXPECT_NE(h.damage, trace::TraceDamage::kNone)
          << "trial " << trial << ": health missed flip at offset " << off;
    } catch (const trace::TraceFormatError&) {
    }
  }
}

TEST_F(TraceV2FuzzTest, TruncationsAndExtensionsAlwaysThrow) {
  Xoshiro256 rng(0x7e4c2dULL);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> bytes = valid_v2_;
    if (rng.below(2) == 0) {
      bytes.resize(rng.below(bytes.size()));  // truncate (possibly to 0)
    } else {
      const std::size_t extra = 1 + rng.below(80);
      for (std::size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng()));
      }
    }
    const std::string p = write_mutant(bytes);
    EXPECT_THROW((void)open_v2(p), trace::TraceFormatError)
        << "trial " << trial << ": size " << bytes.size() << " vs valid "
        << valid_v2_.size();
  }
}

TEST_F(TraceV2FuzzTest, DamageIsClassifiedByRegion) {
  // Torn tail: cut the file mid-blocks (the footer and index are gone).
  {
    std::vector<char> bytes = valid_v2_;
    bytes.resize(bytes.size() / 2);
    const trace::TraceHealth h = trace::trace_health(write_mutant(bytes));
    EXPECT_EQ(h.damage, trace::TraceDamage::kTornTail);
  }
  // Interior corruption: flip a payload byte of the second block; the
  // index and footer stay intact, so only that block reads bad.
  {
    const trace::TraceV2Reader r(write_mutant(valid_v2_));
    ASSERT_GE(r.index().size(), 3u);
    const std::size_t off =
        static_cast<std::size_t>(r.index()[1].file_offset) +
        sizeof(trace::SamtBlockHeader) + 3;
    std::vector<char> bytes = valid_v2_;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
    const trace::TraceHealth h = trace::trace_health(write_mutant(bytes));
    EXPECT_EQ(h.damage, trace::TraceDamage::kInteriorCorrupt);
    EXPECT_EQ(h.bad_blocks, 1u);
    EXPECT_EQ(h.first_bad_offset, r.index()[1].file_offset);
  }
  // Bad index: flip a byte inside the index region (located via the
  // footer at the end of the intact file).
  {
    trace::SamtFooter footer{};
    std::memcpy(&footer, valid_v2_.data() + valid_v2_.size() - sizeof footer,
                sizeof footer);
    std::vector<char> bytes = valid_v2_;
    const std::size_t off = static_cast<std::size_t>(footer.index_offset) + 9;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x01);
    const trace::TraceHealth h = trace::trace_health(write_mutant(bytes));
    EXPECT_EQ(h.damage, trace::TraceDamage::kBadIndex);
  }
}

TEST_F(TraceV2FuzzTest, RandomGarbageNeverCrashesV2Reader) {
  Xoshiro256 rng(0x33cc77ULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = rng.below(4096);
    std::vector<char> bytes(n);
    for (auto& b : bytes) b = static_cast<char>(rng());
    const std::string p = write_mutant(bytes);
    try {
      (void)open_v2(p);
    } catch (const trace::TraceFormatError&) {
    }
    try {
      (void)trace::trace_health(p);
    } catch (const trace::TraceFormatError&) {
    }
  }
}

}  // namespace
}  // namespace samie
