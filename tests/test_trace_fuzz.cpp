// Corrupt-trace fuzz: randomized bit flips and truncations of a valid
// SAMT file must surface as trace::TraceFormatError — never a crash, a
// hang, or a silently-wrong replay. The RNG is seeded deterministically
// (Xoshiro256), so every failure reproduces.
//
// The header layout (src/trace/trace_io.h, 64 bytes) splits into two
// regions with different guarantees:
//   [0,24)  magic/version/record_bytes/count — any flip MUST throw
//           (magic mismatch, bad version/record size, or a count that
//           contradicts the exact-file-size check)
//   [32,40) checksum — any flip MUST throw (FNV mismatch)
//   [24,32) seed and [40,64) name — provenance only; a flip may load
//           fine, but must never crash
// Record bytes [64,end) are covered by the FNV-1a checksum, whose
// byte-step (h ^ b) * prime is bijective in h, so any single-byte change
// always changes the final hash: a flip anywhere in the records MUST
// throw. Truncating or extending the file contradicts the exact-size
// check and MUST throw.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;

class TraceFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_fuzz_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    // One small valid trace, reused (in memory) by every mutation.
    trace::WorkloadGenerator gen(trace::spec2000_profile("gcc"), 11);
    trace::Trace t = gen.generate(1500);
    t.name = "gcc";
    t.seed = 11;
    const std::string p = path("seedfile.samt");
    trace::write_samt(p, trace::TraceView(t.ops.data(), t.ops.size()), t.name,
                      t.seed);
    std::ifstream in(p, std::ios::binary);
    valid_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(valid_.size(), 64u);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  [[nodiscard]] std::string write_mutant(const std::vector<char>& bytes) const {
    const std::string p = path("mutant.samt");
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  /// Opens via both ingestion paths. Returns true when both succeeded;
  /// throws whatever they throw. Successful opens are walked end to end
  /// so a lying header would fault here, under the test harness.
  static bool open_both(const std::string& p) {
    std::uint64_t sink = 0;
    {
      const trace::TraceSource mapped = trace::TraceSource::open_samt(p);
      for (std::size_t i = 0; i < mapped.size(); ++i) {
        sink += mapped.view()[i].pc;
      }
    }
    const trace::Trace copied = trace::TraceReader(p).read_all();
    for (const auto& op : copied.ops) sink += op.value;
    return sink != 0xdeadULL;  // defeat optimizing the walks away
  }

  fs::path dir_;
  std::vector<char> valid_;
};

TEST_F(TraceFuzzTest, ValidBaselineOpensCleanly) {
  EXPECT_NO_THROW((void)open_both(write_mutant(valid_)));
}

TEST_F(TraceFuzzTest, BitFlipsInGuardedRegionsAlwaysThrow) {
  Xoshiro256 rng(0x5eedULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> bytes = valid_;
    // Guarded offsets: header [0,24) u [32,40), or any record byte.
    std::size_t off;
    switch (rng.below(3)) {
      case 0: off = rng.below(24); break;
      case 1: off = 32 + rng.below(8); break;
      default: off = 64 + rng.below(bytes.size() - 64); break;
    }
    bytes[off] = static_cast<char>(bytes[off] ^ (1u << rng.below(8)));
    const std::string p = write_mutant(bytes);
    EXPECT_THROW((void)open_both(p), trace::TraceFormatError)
        << "trial " << trial << ": flip at offset " << off
        << " was accepted";
  }
}

TEST_F(TraceFuzzTest, TruncationsAndExtensionsAlwaysThrow) {
  Xoshiro256 rng(0xacce55ULL);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> bytes = valid_;
    if (rng.below(2) == 0) {
      bytes.resize(rng.below(bytes.size()));  // truncate (possibly to 0)
    } else {
      const std::size_t extra = 1 + rng.below(80);
      for (std::size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng()));
      }
    }
    const std::string p = write_mutant(bytes);
    EXPECT_THROW((void)open_both(p), trace::TraceFormatError)
        << "trial " << trial << ": size " << bytes.size() << " vs valid "
        << valid_.size();
  }
}

TEST_F(TraceFuzzTest, ProvenanceFlipsNeverCrash) {
  // seed [24,32) and name [40,64) are provenance, not integrity: a flip
  // may load fine (different seed/name) — it must never crash or hang.
  Xoshiro256 rng(0xbadc0deULL);
  int accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> bytes = valid_;
    const std::size_t off =
        rng.below(2) == 0 ? 24 + rng.below(8) : 40 + rng.below(24);
    bytes[off] = static_cast<char>(bytes[off] ^ (1u << rng.below(8)));
    const std::string p = write_mutant(bytes);
    try {
      (void)open_both(p);
      ++accepted;
    } catch (const trace::TraceFormatError&) {
      // Also acceptable — just never a crash.
    }
  }
  // Sanity: these flips are outside every integrity check, so at least
  // some mutants must have loaded (all-throw would mean the regions
  // above are mislabeled and the MUST-throw tests are vacuous).
  EXPECT_GT(accepted, 0);
}

TEST_F(TraceFuzzTest, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x9a5b7eULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = rng.below(4096);
    std::vector<char> bytes(n);
    for (auto& b : bytes) b = static_cast<char>(rng());
    const std::string p = write_mutant(bytes);
    try {
      (void)open_both(p);
    } catch (const trace::TraceFormatError&) {
    }
  }
}

}  // namespace
}  // namespace samie
