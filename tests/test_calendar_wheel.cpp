// Tests for the completion calendar wheel: O(1) schedule/pop with
// wrap-around, overflow-horizon events, and — the property the core's
// bit-identity depends on — same-cycle FIFO delivery identical to the
// (cycle, order) min-heap it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/common/calendar_wheel.h"

namespace samie {
namespace {

using Popped = std::vector<int>;

Popped pop_cycle(CalendarWheel<int>& w, Cycle now) {
  Popped out;
  w.pop_due(now, [&](int v) { out.push_back(v); });
  return out;
}

TEST(CalendarWheel, DeliversAtTheScheduledCycle) {
  CalendarWheel<int> w(16);
  w.schedule(0, 3, 42);
  EXPECT_TRUE(pop_cycle(w, 1).empty());
  EXPECT_TRUE(pop_cycle(w, 2).empty());
  EXPECT_EQ(pop_cycle(w, 3), (Popped{42}));
  EXPECT_TRUE(w.empty());
}

TEST(CalendarWheel, SameCycleEventsPopInScheduleOrder) {
  CalendarWheel<int> w(16);
  for (int i = 0; i < 10; ++i) w.schedule(0, 5, i);
  EXPECT_EQ(pop_cycle(w, 5), (Popped{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(CalendarWheel, PastAndPresentClampToNextCycle) {
  // The heap this replaced delivered such events at the *next* pop, since
  // the current cycle's pop had already run when they were scheduled.
  CalendarWheel<int> w(16);
  w.schedule(7, 7, 1);  // "now"
  w.schedule(7, 3, 2);  // the past
  EXPECT_EQ(pop_cycle(w, 8), (Popped{1, 2}));
}

TEST(CalendarWheel, WrapsAroundItsSpanRepeatedly) {
  CalendarWheel<int> w(8);
  ASSERT_EQ(w.span(), 8U);
  // Schedule and drain across many times the span; each event lands on
  // its own cycle even though bucket indices repeat every 8 cycles.
  Cycle now = 0;
  for (int round = 0; round < 100; ++round) {
    w.schedule(now, now + 5, round);
    for (Cycle c = now + 1; c <= now + 5; ++c) {
      const Popped got = pop_cycle(w, c);
      if (c == now + 5) {
        EXPECT_EQ(got, (Popped{round}));
      } else {
        EXPECT_TRUE(got.empty());
      }
    }
    now += 5;
  }
  EXPECT_TRUE(w.empty());
}

TEST(CalendarWheel, OverflowEventsBeyondTheHorizonArriveOnTime) {
  CalendarWheel<int> w(8);
  w.schedule(0, 100, 7);  // far beyond the 8-cycle horizon
  w.schedule(0, 9, 1);    // also beyond (delta 9 > span 8)
  EXPECT_EQ(w.overflow_size(), 2U);
  for (Cycle c = 1; c < 9; ++c) EXPECT_TRUE(pop_cycle(w, c).empty());
  EXPECT_EQ(pop_cycle(w, 9), (Popped{1}));
  for (Cycle c = 10; c < 100; ++c) EXPECT_TRUE(pop_cycle(w, c).empty());
  EXPECT_EQ(pop_cycle(w, 100), (Popped{7}));
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.overflow_size(), 0U);
}

TEST(CalendarWheel, OverflowMergesInScheduleOrderWithDirectEvents) {
  CalendarWheel<int> w(8);
  // Event 0 goes through the overflow (delta 20 >= span), events 1 and 2
  // are scheduled later, directly into the bucket for cycle 20. The heap
  // contract: same-cycle pops follow schedule order, so 0 comes first.
  w.schedule(0, 20, 0);
  for (Cycle c = 1; c <= 15; ++c) (void)pop_cycle(w, c);
  w.schedule(15, 20, 1);
  w.schedule(15, 20, 2);
  for (Cycle c = 16; c < 20; ++c) EXPECT_TRUE(pop_cycle(w, c).empty());
  EXPECT_EQ(pop_cycle(w, 20), (Popped{0, 1, 2}));
}

TEST(CalendarWheel, PopCallbackMaySchedule) {
  CalendarWheel<int> w(8);
  w.schedule(0, 2, 1);
  Popped all;
  for (Cycle c = 1; c <= 4; ++c) {
    w.pop_due(c, [&](int v) {
      all.push_back(v);
      if (v == 1) w.schedule(c, c + 2, 2);  // chain from inside the pop
    });
  }
  EXPECT_EQ(all, (Popped{1, 2}));
}

TEST(CalendarWheel, ClearDropsEverything) {
  CalendarWheel<int> w(8);
  w.schedule(0, 3, 1);
  w.schedule(0, 50, 2);
  EXPECT_EQ(w.size(), 2U);
  w.clear();
  EXPECT_TRUE(w.empty());
  for (Cycle c = 1; c <= 50; ++c) EXPECT_TRUE(pop_cycle(w, c).empty());
}

// The decisive property: against a reference (cycle, order) min-heap —
// the structure the core used before — a random schedule/pop interleaving
// must deliver the identical event sequence, including same-cycle order.
TEST(CalendarWheel, MatchesReferenceHeapOnRandomSchedules) {
  struct Ref {
    Cycle at;
    std::uint64_t order;
    int payload;
  };
  auto later = [](const Ref& a, const Ref& b) {
    return a.at > b.at || (a.at == b.at && a.order > b.order);
  };

  std::mt19937_64 rng(1234);
  CalendarWheel<int> wheel(16);  // small span: exercises wrap + overflow
  std::vector<Ref> heap;
  std::uint64_t order = 0;
  int payload = 0;

  for (Cycle now = 0; now < 3000; ++now) {
    // Pop both structures for this cycle.
    Popped from_wheel = pop_cycle(wheel, now);
    Popped from_heap;
    while (!heap.empty() && heap.front().at <= now) {
      from_heap.push_back(heap.front().payload);
      std::pop_heap(heap.begin(), heap.end(), later);
      heap.pop_back();
    }
    ASSERT_EQ(from_wheel, from_heap) << "divergence at cycle " << now;

    // Schedule a random burst: mostly short latencies, occasionally far
    // beyond the 16-cycle span (overflow path).
    const int n = static_cast<int>(rng() % 4);
    for (int i = 0; i < n; ++i) {
      const Cycle delta =
          (rng() % 16 == 0) ? 20 + rng() % 200 : 1 + rng() % 12;
      wheel.schedule(now, now + delta, payload);
      heap.push_back(Ref{now + delta, order++, payload});
      std::push_heap(heap.begin(), heap.end(), later);
      ++payload;
    }
  }
}

TEST(CalendarWheel, NextEventCycleEmptyAndSingleton) {
  CalendarWheel<int> w(16);
  EXPECT_EQ(w.next_event_cycle(0), kNeverCycle);
  EXPECT_EQ(w.next_event_cycle(1234), kNeverCycle);
  w.schedule(10, 17, 1);
  EXPECT_EQ(w.next_event_cycle(10), 17U);
  EXPECT_EQ(w.next_event_cycle(17), 17U) << "events due *now* count";
  (void)pop_cycle(w, 17);
  EXPECT_EQ(w.next_event_cycle(18), kNeverCycle);
}

TEST(CalendarWheel, NextEventCycleWrapsTheBitmask) {
  CalendarWheel<int> w(16);
  // now = 14, event at 14 + 15 = 29: bucket 29 & 15 = 13 < start bucket
  // 14 — the scan must wrap through the word end and the low remainder.
  w.schedule(14, 29, 1);
  EXPECT_EQ(w.next_event_cycle(14), 29U);
  EXPECT_EQ(w.next_event_cycle(20), 29U);
  EXPECT_EQ(w.next_event_cycle(29), 29U);
}

TEST(CalendarWheel, NextEventCycleSeesOverflowEvents) {
  CalendarWheel<int> w(8);
  w.schedule(0, 100, 7);  // far beyond the 8-cycle horizon
  EXPECT_EQ(w.next_event_cycle(0), 100U);
  // Jump straight to the overflow event's cycle: pop_due must drain the
  // overflow in the same call and deliver it.
  EXPECT_EQ(pop_cycle(w, 100), (Popped{7}));
  EXPECT_TRUE(w.empty());
}

TEST(CalendarWheel, NextEventCycleSpansLargerThanOneWord) {
  CalendarWheel<int> w(256);  // 4 occupancy words
  w.schedule(0, 200, 1);
  EXPECT_EQ(w.next_event_cycle(0), 200U);
  w.schedule(0, 70, 2);
  EXPECT_EQ(w.next_event_cycle(0), 70U);
  (void)pop_cycle(w, 70);
  EXPECT_EQ(w.next_event_cycle(70), 200U) << "start mid-word, hit later word";
  // Wrapped: now = 250, next event at 250 + 80 = 330, bucket 330 & 255 =
  // 74, below the start bucket.
  (void)pop_cycle(w, 200);
  w.schedule(250, 330, 3);
  EXPECT_EQ(w.next_event_cycle(250), 330U);
}

// Event-driven jumping: advance `now` straight to next_event_cycle and
// pop only there. Delivery (payload order included) must match the
// cycle-by-cycle reference heap — this is the engine's fast-forward
// contract.
TEST(CalendarWheel, JumpPoppingMatchesTheReferenceHeap) {
  struct Ref {
    Cycle at;
    std::uint64_t order;
    int payload;
  };
  auto later = [](const Ref& a, const Ref& b) {
    return a.at > b.at || (a.at == b.at && a.order > b.order);
  };

  std::mt19937_64 rng(99);
  CalendarWheel<int> wheel(16);
  std::vector<Ref> heap;
  std::uint64_t order = 0;
  int payload = 0;
  Cycle now = 0;

  for (int round = 0; round < 2000; ++round) {
    // Random burst at `now` (always at least one event early on so the
    // jump target exists).
    const int n = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      const Cycle delta =
          (rng() % 8 == 0) ? 17 + rng() % 100 : 1 + rng() % 12;
      wheel.schedule(now, now + delta, payload);
      heap.push_back(Ref{now + delta, order++, payload});
      std::push_heap(heap.begin(), heap.end(), later);
      ++payload;
    }
    // Jump. The wheel's target must equal the heap's minimum.
    const Cycle target = wheel.next_event_cycle(now);
    ASSERT_FALSE(heap.empty());
    ASSERT_EQ(target, heap.front().at) << "round " << round;
    now = target;
    Popped from_heap;
    while (!heap.empty() && heap.front().at <= now) {
      from_heap.push_back(heap.front().payload);
      std::pop_heap(heap.begin(), heap.end(), later);
      heap.pop_back();
    }
    ASSERT_EQ(pop_cycle(wheel, now), from_heap) << "round " << round;
  }
}

}  // namespace
}  // namespace samie
