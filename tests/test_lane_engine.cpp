// Differential tests for the batched-lane execution path (src/sim/
// lane_engine.h) and the sweep's sharded lane executor (SweepOptions::
// lanes / lane_shards / lane_turn): a lane stepped in arbitrary turn
// sizes must reproduce run_simulation bit for bit, the earliest-wake
// engine must retire every lane with bit-identical results, and a
// lane-mode sweep must match the threaded sweep exactly across all LSQ
// kinds and every shard count — including under injected transient
// faults (retried, possibly onto a different shard), deterministic
// faults (isolated), deadline cancellation and the max-failures drain.
// All faults are deterministic via SweepFaultPlan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/checkpoint.h"
#include "src/sim/experiment.h"
#include "src/sim/lane_engine.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_scheduler.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_source.h"

namespace samie {
namespace {

[[nodiscard]] sim::SimConfig small_config(sim::LsqChoice lsq,
                                          std::uint64_t insts = 4000) {
  sim::SimConfig cfg = sim::paper_config(lsq);
  cfg.instructions = insts;
  return cfg;
}

[[nodiscard]] trace::TraceSource trace_for(const sim::SimConfig& cfg,
                                           const std::string& program) {
  return trace::TraceSource::generate(trace::spec2000_profile(program),
                                      cfg.seed, cfg.instructions);
}

const sim::LsqChoice kAllLsqs[] = {
    sim::LsqChoice::kConventional, sim::LsqChoice::kUnbounded,
    sim::LsqChoice::kArb, sim::LsqChoice::kSamie};

TEST(LaneEngine, SteppedLaneIsBitIdenticalToRunSimulation) {
  // Slicing the cycle loop into turns of any size must not change a
  // single statistic: step() shares run()'s loop body verbatim.
  for (const sim::LsqChoice lsq : kAllLsqs) {
    const sim::SimConfig cfg = small_config(lsq);
    const trace::TraceSource src = trace_for(cfg, "gcc");
    const sim::SimResult whole = sim::run_simulation(cfg, src.view());
    for (const std::uint64_t turn : {1ULL, 7ULL, 4096ULL}) {
      std::unique_ptr<sim::Lane> lane = sim::make_lane(cfg, src.view());
      while (lane->step(turn)) {
      }
      const sim::SimResult sliced = lane->finish();
      EXPECT_EQ(sim::serialize_sim_result(sliced),
                sim::serialize_sim_result(whole))
          << sim::lsq_choice_name(lsq) << " turn=" << turn;
    }
  }
}

TEST(LaneEngine, RoundRobinRetiresEveryLaneBitIdentically) {
  // Many interleaved machines, one thread: each retirement must carry
  // the same result as its program run in isolation.
  const char* programs[] = {"gcc", "ammp", "mcf", "crafty", "art"};
  const sim::SimConfig cfg = small_config(sim::LsqChoice::kSamie);
  std::vector<trace::TraceSource> traces;
  std::vector<std::string> expected;
  for (const char* p : programs) {
    traces.push_back(trace_for(cfg, p));
    expected.push_back(
        sim::serialize_sim_result(sim::run_simulation(cfg, traces.back().view())));
  }
  sim::LaneEngine engine(/*cycles_per_turn=*/512);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    engine.add(i, sim::make_lane(cfg, traces[i].view()));
  }
  std::vector<bool> seen(traces.size(), false);
  while (auto ev = engine.run_until_event()) {
    ASSERT_TRUE(ev->ok);
    ASSERT_LT(ev->key, traces.size());
    EXPECT_FALSE(seen[ev->key]);
    seen[ev->key] = true;
    EXPECT_EQ(sim::serialize_sim_result(ev->result), expected[ev->key])
        << programs[ev->key];
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << programs[i];
  }
  EXPECT_EQ(engine.active(), 0U);
}

/// Sweep over three programs for one LSQ kind; `mutate` tweaks options.
[[nodiscard]] sim::SweepReport sweep_three(
    sim::LsqChoice lsq, const sim::SweepOptions& opt) {
  const sim::SimConfig cfg = small_config(lsq, 3000);
  std::vector<sim::Job> jobs;
  for (const char* p : {"gcc", "ammp", "mcf"}) {
    jobs.push_back(sim::Job{p, cfg, sim::lsq_choice_name(lsq)});
  }
  return sim::run_sweep(jobs, opt);
}

TEST(LaneSweep, MatchesThreadedSweepAcrossAllLsqKinds) {
  for (const sim::LsqChoice lsq :
       {sim::LsqChoice::kConventional, sim::LsqChoice::kArb,
        sim::LsqChoice::kSamie}) {
    sim::SweepOptions threaded;
    threaded.threads = 2;
    const sim::SweepReport a = sweep_three(lsq, threaded);
    sim::SweepOptions laned;
    laned.lanes = 2;
    const sim::SweepReport b = sweep_three(lsq, laned);
    ASSERT_TRUE(a.all_completed());
    ASSERT_TRUE(b.all_completed());
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(sim::serialize_sim_result(a.jobs[i].result),
                sim::serialize_sim_result(b.jobs[i].result))
          << sim::lsq_choice_name(lsq) << " job " << i;
    }
  }
}

TEST(LaneSweep, TransientFaultsAreRetriedToTheSameResults) {
  // Inject transient throws at several (job, attempt) points; the lane
  // executor must retry through them and still produce results equal to
  // the clean threaded sweep.
  sim::SweepFaultPlan plan;
  plan.faults.push_back({0, 1, sim::SweepFault::Kind::kThrowTransient, {}});
  plan.faults.push_back({2, 1, sim::SweepFault::Kind::kThrowTransient, {}});
  plan.faults.push_back({2, 2, sim::SweepFault::Kind::kThrowTransient, {}});

  sim::SweepOptions clean;
  clean.threads = 2;
  const sim::SweepReport want = sweep_three(sim::LsqChoice::kSamie, clean);

  sim::SweepOptions laned;
  laned.lanes = 3;
  laned.retry.max_attempts = 3;
  laned.retry.backoff_base = std::chrono::milliseconds(1);
  laned.faults = &plan;
  const sim::SweepReport got = sweep_three(sim::LsqChoice::kSamie, laned);

  ASSERT_TRUE(got.all_completed());
  EXPECT_EQ(got.jobs[0].outcome.attempts, 2U);
  EXPECT_EQ(got.jobs[1].outcome.attempts, 1U);
  EXPECT_EQ(got.jobs[2].outcome.attempts, 3U);
  for (std::size_t i = 0; i < want.jobs.size(); ++i) {
    EXPECT_EQ(sim::serialize_sim_result(got.jobs[i].result),
              sim::serialize_sim_result(want.jobs[i].result))
        << "job " << i;
  }
}

TEST(LaneSweep, DeterministicFaultIsolatesOnlyThatJob) {
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kThrowDeterministic, {}});
  sim::SweepOptions laned;
  laned.lanes = 2;
  laned.faults = &plan;
  const sim::SweepReport rep = sweep_three(sim::LsqChoice::kSamie, laned);
  EXPECT_EQ(rep.completed, 2U);
  EXPECT_EQ(rep.failed, 1U);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kFailed);
  EXPECT_EQ(rep.jobs[1].outcome.failure, sim::FailureClass::kDeterministic);
  EXPECT_EQ(rep.jobs[1].outcome.attempts, 1U);
  EXPECT_TRUE(rep.jobs[0].completed());
  EXPECT_TRUE(rep.jobs[2].completed());
}

TEST(LaneSweep, MaxFailuresDrainsUnstartedJobsToSkipped) {
  // One lane, so jobs start strictly in order: job 0 fails, and the
  // failure budget (1) drains jobs 1 and 2 to Skipped.
  sim::SweepFaultPlan plan;
  plan.faults.push_back({0, 1, sim::SweepFault::Kind::kThrowDeterministic, {}});
  sim::SweepOptions laned;
  laned.lanes = 1;
  laned.max_failures = 1;
  laned.faults = &plan;
  const sim::SweepReport rep = sweep_three(sim::LsqChoice::kSamie, laned);
  EXPECT_EQ(rep.failed, 1U);
  EXPECT_EQ(rep.skipped, 2U);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kSkipped);
  EXPECT_EQ(rep.jobs[2].outcome.status, sim::JobStatus::kSkipped);
}

TEST(LaneSweep, LaneCheckpointResumesIntoThreadedSweepBitIdentically) {
  // A lane sweep journals like the threaded one: fail one job under a
  // checkpoint, resume with the *threaded* executor, and the combined
  // results must equal a clean run — executors share one journal format.
  const std::string ckpt =
      (std::filesystem::temp_directory_path() /
       ("samie_lane_ckpt_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  std::filesystem::remove(ckpt);
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kThrowDeterministic, {}});
  sim::SweepOptions first;
  first.lanes = 2;
  first.faults = &plan;
  first.checkpoint_path = ckpt;
  const sim::SweepReport partial = sweep_three(sim::LsqChoice::kSamie, first);
  ASSERT_EQ(partial.completed, 2U);

  sim::SweepOptions second;
  second.threads = 2;
  second.checkpoint_path = ckpt;
  second.resume = true;
  const sim::SweepReport resumed = sweep_three(sim::LsqChoice::kSamie, second);
  EXPECT_TRUE(resumed.all_completed());
  EXPECT_EQ(resumed.resumed, 2U);

  sim::SweepOptions clean;
  clean.threads = 2;
  const sim::SweepReport want = sweep_three(sim::LsqChoice::kSamie, clean);
  for (std::size_t i = 0; i < want.jobs.size(); ++i) {
    EXPECT_EQ(sim::serialize_sim_result(resumed.jobs[i].result),
              sim::serialize_sim_result(want.jobs[i].result))
        << "job " << i;
  }
  std::filesystem::remove(ckpt);
}

TEST(LaneEngine, RejectsZeroCyclesPerTurn) {
  EXPECT_THROW(sim::LaneEngine engine(0), std::invalid_argument);
}

TEST(LaneEngine, QuiescentFastForwardReducesTurnCount) {
  // The wake-aware contract: a turn budgets *stepped* cycles, and a
  // quiescent-cycle fast-forward consumes one budget unit regardless of
  // jump width. A lane over the same trace must therefore need strictly
  // fewer step() calls with the fast-forward on than with always_step —
  // while producing bit-identical statistics.
  sim::SimConfig skip_cfg = small_config(sim::LsqChoice::kSamie);
  sim::SimConfig step_cfg = skip_cfg;
  step_cfg.core.always_step = true;
  const trace::TraceSource src = trace_for(skip_cfg, "gcc");

  const auto turns = [&](const sim::SimConfig& cfg, sim::SimResult& out) {
    std::unique_ptr<sim::Lane> lane = sim::make_lane(cfg, src.view());
    std::uint64_t n = 0;
    while (lane->step(256)) ++n;
    out = lane->finish();
    return n;
  };
  sim::SimResult skipped;
  sim::SimResult walked;
  const std::uint64_t skip_turns = turns(skip_cfg, skipped);
  const std::uint64_t step_turns = turns(step_cfg, walked);
  ASSERT_GT(skipped.core.quiescent_cycles_skipped, 256U);
  EXPECT_LT(skip_turns, step_turns);
  EXPECT_EQ(skipped.core.cycles, walked.core.cycles);
  EXPECT_EQ(skipped.core.committed, walked.core.committed);
}

TEST(LaneEngine, WakeHintNeverPrecedesTheCurrentCycle) {
  // next_wake_cycle() is a pure scheduling hint: it must be safe for
  // the engine to sort on at any point of a lane's life, including
  // before the first step and right after a fast-forward jump.
  const sim::SimConfig cfg = small_config(sim::LsqChoice::kSamie);
  const trace::TraceSource src = trace_for(cfg, "mcf");
  std::unique_ptr<sim::Lane> lane = sim::make_lane(cfg, src.view());
  std::uint64_t stepped_floor = 0;
  (void)lane->next_wake_cycle();  // must not throw pre-step
  while (lane->step(64)) {
    // The hint names an absolute cycle at or beyond everything already
    // simulated; with 64 stepped cycles per turn the simulated clock is
    // at least the turn count, so the hint may never fall below it.
    EXPECT_GE(lane->next_wake_cycle(), stepped_floor);
    ++stepped_floor;
  }
}

/// Serializes every job result of a completed sweep for whole-report
/// equality checks (outcome-order sensitive on purpose).
[[nodiscard]] std::string sweep_digest(const sim::SweepReport& rep) {
  std::string out;
  for (const auto& jr : rep.jobs) {
    out += sim::serialize_sim_result(jr.result);
    out += '\n';
  }
  return out;
}

TEST(ShardedLaneSweep, ByteIdenticalAcrossShardCountsAndToPool) {
  // The whole point of the sharded executor: T is a throughput knob,
  // never an outcome knob. Every shard count — including more shards
  // than jobs — must reproduce the worker pool bit for bit.
  for (const sim::LsqChoice lsq :
       {sim::LsqChoice::kConventional, sim::LsqChoice::kArb,
        sim::LsqChoice::kSamie}) {
    sim::SweepOptions pool;
    pool.threads = 2;
    const std::string want = sweep_digest(sweep_three(lsq, pool));
    for (const unsigned shards : {1U, 2U, 8U}) {
      sim::SweepOptions laned;
      laned.lanes = 2;
      laned.lane_shards = shards;
      const sim::SweepReport rep = sweep_three(lsq, laned);
      ASSERT_TRUE(rep.all_completed())
          << sim::lsq_choice_name(lsq) << " shards=" << shards;
      EXPECT_EQ(sweep_digest(rep), want)
          << sim::lsq_choice_name(lsq) << " shards=" << shards;
    }
  }
}

TEST(ShardedLaneSweep, TurnSizeIsOutcomeInvariantAcrossShards) {
  sim::SweepOptions base;
  base.lanes = 2;
  base.lane_shards = 1;
  const std::string want = sweep_digest(sweep_three(sim::LsqChoice::kSamie, base));
  for (const std::uint64_t turn : {1ULL, 37ULL, 1ULL << 20}) {
    sim::SweepOptions laned = base;
    laned.lane_shards = 2;
    laned.lane_turn = turn;
    EXPECT_EQ(sweep_digest(sweep_three(sim::LsqChoice::kSamie, laned)), want)
        << "turn=" << turn;
  }
}

TEST(ShardedLaneSweep, RejectsShardAndTurnKnobsWithoutLanes) {
  sim::SweepOptions shards_only;
  shards_only.lane_shards = 2;
  EXPECT_THROW(sweep_three(sim::LsqChoice::kSamie, shards_only),
               std::invalid_argument);
  sim::SweepOptions turn_only;
  turn_only.lane_turn = 512;
  EXPECT_THROW(sweep_three(sim::LsqChoice::kSamie, turn_only),
               std::invalid_argument);
}

TEST(ShardedLaneSweep, TransientFaultsRetryAcrossShardsToTheSameResults) {
  // Retries go back to the shared due-time queue, so a retried job may
  // land on a different shard than its first attempt. Attempt counts
  // and results must match the single-shard run regardless.
  sim::SweepFaultPlan plan;
  plan.faults.push_back({0, 1, sim::SweepFault::Kind::kThrowTransient, {}});
  plan.faults.push_back({2, 1, sim::SweepFault::Kind::kThrowTransient, {}});
  plan.faults.push_back({2, 2, sim::SweepFault::Kind::kThrowTransient, {}});

  sim::SweepOptions clean;
  clean.threads = 2;
  const sim::SweepReport want = sweep_three(sim::LsqChoice::kSamie, clean);

  sim::SweepOptions laned;
  laned.lanes = 2;
  laned.lane_shards = 2;
  laned.retry.max_attempts = 3;
  laned.retry.backoff_base = std::chrono::milliseconds(1);
  laned.faults = &plan;
  const sim::SweepReport got = sweep_three(sim::LsqChoice::kSamie, laned);

  ASSERT_TRUE(got.all_completed());
  EXPECT_EQ(got.jobs[0].outcome.attempts, 2U);
  EXPECT_EQ(got.jobs[1].outcome.attempts, 1U);
  EXPECT_EQ(got.jobs[2].outcome.attempts, 3U);
  EXPECT_EQ(sweep_digest(got), sweep_digest(want));
}

TEST(ShardedLaneSweep, DeadlineCancelDoesNotStallSiblingJobs) {
  // Job 1 sleeps through its deadline; its cancellation must be
  // contained — the other shard's jobs complete normally and the sweep
  // itself terminates (no shard waits forever on the cancelled job).
  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kDelay,
                         std::chrono::milliseconds(300)});
  sim::SweepOptions laned;
  laned.lanes = 1;
  laned.lane_shards = 2;
  laned.retry.max_attempts = 1;
  laned.job_deadline = std::chrono::milliseconds(50);
  laned.faults = &plan;
  const sim::SweepReport rep = sweep_three(sim::LsqChoice::kSamie, laned);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kTimedOut);
  EXPECT_TRUE(rep.jobs[0].completed());
  EXPECT_TRUE(rep.jobs[2].completed());
  EXPECT_EQ(rep.completed, 2U);
  EXPECT_EQ(rep.timed_out, 1U);
}

TEST(ShardedLaneSweep, CheckpointInterchangesWithPoolInBothDirections) {
  // Scheduling topology is excluded from the sweep fingerprint by
  // design: a journal written by the sharded executor must resume under
  // the pool, and vice versa, to the clean run's exact results.
  const std::string ckpt =
      (std::filesystem::temp_directory_path() /
       ("samie_shard_ckpt_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  sim::SweepOptions clean;
  clean.threads = 2;
  const std::string want = sweep_digest(sweep_three(sim::LsqChoice::kSamie, clean));

  sim::SweepFaultPlan plan;
  plan.faults.push_back({1, 1, sim::SweepFault::Kind::kThrowDeterministic, {}});

  struct Leg {
    bool sharded_first;
  };
  for (const Leg leg : {Leg{true}, Leg{false}}) {
    std::filesystem::remove(ckpt);
    sim::SweepOptions first;
    if (leg.sharded_first) {
      first.lanes = 2;
      first.lane_shards = 2;
    } else {
      first.threads = 2;
    }
    first.faults = &plan;
    first.checkpoint_path = ckpt;
    const sim::SweepReport partial =
        sweep_three(sim::LsqChoice::kSamie, first);
    ASSERT_EQ(partial.completed, 2U) << "sharded_first=" << leg.sharded_first;

    sim::SweepOptions second;
    if (leg.sharded_first) {
      second.threads = 2;
    } else {
      second.lanes = 2;
      second.lane_shards = 2;
    }
    second.checkpoint_path = ckpt;
    second.resume = true;
    const sim::SweepReport resumed =
        sweep_three(sim::LsqChoice::kSamie, second);
    EXPECT_TRUE(resumed.all_completed());
    EXPECT_EQ(resumed.resumed, 2U);
    EXPECT_EQ(sweep_digest(resumed), want)
        << "sharded_first=" << leg.sharded_first;
  }
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace samie
