// Tests for the SAMT binary trace format and the trace-source layer:
// write→read round-trips are byte-stable, mmap and copying replays are
// bit-identical to in-memory simulation for every LSQ kind, malformed
// files are rejected with clear errors, and the text importer builds
// traces that satisfy the generator's invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/sim/perf_harness.h"
#include "src/sim/simulator.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/trace_view.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_trace_io_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  [[nodiscard]] static trace::Trace small_trace(std::uint64_t n = 5000) {
    trace::WorkloadGenerator gen(trace::spec2000_profile("gcc"), 7);
    trace::Trace t = gen.generate(n);
    t.name = "gcc";
    t.seed = 7;
    return t;
  }

  [[nodiscard]] static std::vector<char> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  fs::path dir_;
};

void expect_ops_equal(trace::TraceView a, trace::TraceView b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].pc, b[i].pc) << "op " << i;
    ASSERT_EQ(a[i].mem_addr, b[i].mem_addr) << "op " << i;
    ASSERT_EQ(a[i].br_target, b[i].br_target) << "op " << i;
    ASSERT_EQ(a[i].value, b[i].value) << "op " << i;
    ASSERT_EQ(static_cast<int>(a[i].op), static_cast<int>(b[i].op)) << "op " << i;
    ASSERT_EQ(a[i].mem_size, b[i].mem_size) << "op " << i;
    ASSERT_EQ(a[i].src1, b[i].src1) << "op " << i;
    ASSERT_EQ(a[i].src2, b[i].src2) << "op " << i;
    ASSERT_EQ(a[i].dst, b[i].dst) << "op " << i;
    ASSERT_EQ(a[i].taken, b[i].taken) << "op " << i;
  }
}

/// Full bitwise comparison of two SimResults (every counter and every
/// double must match exactly — replay is contractually deterministic).
void expect_results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.core.cycles, b.core.cycles);
  EXPECT_EQ(a.core.committed, b.core.committed);
  EXPECT_EQ(a.core.ipc, b.core.ipc);
  EXPECT_EQ(a.core.mispredict_squashes, b.core.mispredict_squashes);
  EXPECT_EQ(a.core.deadlock_flushes, b.core.deadlock_flushes);
  EXPECT_EQ(a.core.loads_executed, b.core.loads_executed);
  EXPECT_EQ(a.core.stores_committed, b.core.stores_committed);
  EXPECT_EQ(a.core.forwarded_loads, b.core.forwarded_loads);
  EXPECT_EQ(a.core.partial_forward_waits, b.core.partial_forward_waits);
  EXPECT_EQ(a.core.agen_gated, b.core.agen_gated);
  EXPECT_EQ(a.core.value_mismatches, b.core.value_mismatches);
  EXPECT_EQ(a.core.dcache_way_known, b.core.dcache_way_known);
  EXPECT_EQ(a.core.dcache_full, b.core.dcache_full);
  EXPECT_EQ(a.core.dtlb_accesses, b.core.dtlb_accesses);
  EXPECT_EQ(a.core.dtlb_cached, b.core.dtlb_cached);
  EXPECT_EQ(a.lsq_energy_nj, b.lsq_energy_nj);
  EXPECT_EQ(a.lsq_distrib_nj, b.lsq_distrib_nj);
  EXPECT_EQ(a.lsq_shared_nj, b.lsq_shared_nj);
  EXPECT_EQ(a.lsq_addrbuf_nj, b.lsq_addrbuf_nj);
  EXPECT_EQ(a.lsq_bus_nj, b.lsq_bus_nj);
  EXPECT_EQ(a.dcache_energy_nj, b.dcache_energy_nj);
  EXPECT_EQ(a.dtlb_energy_nj, b.dtlb_energy_nj);
  EXPECT_EQ(a.area_total, b.area_total);
  EXPECT_EQ(a.area_distrib, b.area_distrib);
  EXPECT_EQ(a.area_shared, b.area_shared);
  EXPECT_EQ(a.area_addrbuf, b.area_addrbuf);
  EXPECT_EQ(a.shared_occupancy_mean, b.shared_occupancy_mean);
  EXPECT_EQ(a.shared_occupancy_max, b.shared_occupancy_max);
  EXPECT_EQ(a.buffer_nonempty_frac, b.buffer_nonempty_frac);
  EXPECT_EQ(a.buffer_occupancy_mean, b.buffer_occupancy_mean);
  EXPECT_EQ(a.l1d_hits, b.l1d_hits);
  EXPECT_EQ(a.l1d_misses, b.l1d_misses);
  EXPECT_EQ(a.dtlb_hits, b.dtlb_hits);
  EXPECT_EQ(a.dtlb_misses, b.dtlb_misses);
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
  EXPECT_EQ(a.branch_lookups, b.branch_lookups);
}

// ------------------------------------------------------------ round trip --

TEST_F(TraceIoTest, WriteReadRoundTripPreservesEverything) {
  const trace::Trace t = small_trace();
  trace::write_samt(path("t.samt"), t, t.name, t.seed);

  trace::TraceReader reader(path("t.samt"));
  EXPECT_EQ(reader.name(), "gcc");
  EXPECT_EQ(reader.header().seed, 7U);
  EXPECT_EQ(reader.header().count, t.size());
  EXPECT_EQ(reader.header().version, trace::kSamtVersion);
  EXPECT_EQ(reader.header().record_bytes, sizeof(trace::MicroOp));

  const trace::Trace back = reader.read_all();
  EXPECT_EQ(back.name, "gcc");
  EXPECT_EQ(back.seed, 7U);
  expect_ops_equal(t, back);
}

TEST_F(TraceIoTest, RoundTripIsByteStable) {
  const trace::Trace t = small_trace();
  trace::write_samt(path("a.samt"), t, t.name, t.seed);
  // Same trace written again: byte-identical (canonical records).
  trace::write_samt(path("b.samt"), t, t.name, t.seed);
  EXPECT_EQ(slurp(path("a.samt")), slurp(path("b.samt")));
  // Read back and re-written: still byte-identical.
  const trace::Trace back = trace::TraceReader(path("a.samt")).read_all();
  trace::write_samt(path("c.samt"), back, back.name, back.seed);
  EXPECT_EQ(slurp(path("a.samt")), slurp(path("c.samt")));
}

TEST_F(TraceIoTest, StreamingWriterMatchesOneShot) {
  const trace::Trace t = small_trace(1000);
  trace::write_samt(path("oneshot.samt"), t, t.name, t.seed);
  trace::TraceWriter w(path("streamed.samt"), t.name, t.seed);
  for (const auto& op : t.ops) w.append(op);
  w.finish();
  EXPECT_EQ(slurp(path("oneshot.samt")), slurp(path("streamed.samt")));
}

TEST_F(TraceIoTest, MappedTraceIsZeroCopyView) {
  const trace::Trace t = small_trace();
  trace::write_samt(path("t.samt"), t, t.name, t.seed);
  trace::MappedTrace mapped(path("t.samt"));
  EXPECT_EQ(mapped.name(), "gcc");
  EXPECT_EQ(mapped.size(), t.size());
  expect_ops_equal(t, mapped.view());
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  const trace::Trace empty{.name = "void", .seed = 3, .ops = {}};
  trace::write_samt(path("e.samt"), empty, empty.name, empty.seed);
  EXPECT_EQ(trace::TraceReader(path("e.samt")).read_all().size(), 0U);
  trace::MappedTrace mapped(path("e.samt"));
  EXPECT_EQ(mapped.size(), 0U);
  EXPECT_TRUE(mapped.view().empty());
}

// -------------------------------------------------------- reject corrupt --

TEST_F(TraceIoTest, RejectsBadMagic) {
  const trace::Trace t = small_trace(100);
  trace::write_samt(path("t.samt"), t, t.name, t.seed);
  auto bytes = slurp(path("t.samt"));
  bytes[0] = 'X';
  std::ofstream(path("bad.samt"), std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(
      try { trace::TraceReader r(path("bad.samt")); } catch (const trace::TraceFormatError& e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
        throw;
      },
      trace::TraceFormatError);
  EXPECT_THROW(trace::MappedTrace m(path("bad.samt")), trace::TraceFormatError);
}

TEST_F(TraceIoTest, RejectsWrongVersion) {
  const trace::Trace t = small_trace(100);
  trace::write_samt(path("t.samt"), t, t.name, t.seed);
  auto bytes = slurp(path("t.samt"));
  bytes[8] = 99;  // version field (offset 8, little-endian u32)
  std::ofstream(path("v99.samt"), std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(
      try { trace::TraceReader r(path("v99.samt")); } catch (const trace::TraceFormatError& e) {
        EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos);
        throw;
      },
      trace::TraceFormatError);
}

TEST_F(TraceIoTest, RejectsTruncatedFile) {
  const trace::Trace t = small_trace(100);
  trace::write_samt(path("t.samt"), t, t.name, t.seed);
  auto bytes = slurp(path("t.samt"));
  bytes.resize(bytes.size() - 13);
  std::ofstream(path("trunc.samt"), std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(
      try { trace::TraceReader r(path("trunc.samt")); } catch (const trace::TraceFormatError& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
        throw;
      },
      trace::TraceFormatError);
  EXPECT_THROW(trace::MappedTrace m(path("trunc.samt")),
               trace::TraceFormatError);
}

TEST_F(TraceIoTest, RejectsHeaderOnlyStub) {
  std::ofstream(path("stub.samt"), std::ios::binary).write("SAMT", 4);
  EXPECT_THROW(trace::read_samt_header(path("stub.samt")),
               trace::TraceFormatError);
  EXPECT_THROW(trace::MappedTrace m(path("stub.samt")),
               trace::TraceFormatError);
}

TEST_F(TraceIoTest, RejectsChecksumMismatch) {
  const trace::Trace t = small_trace(100);
  trace::write_samt(path("t.samt"), t, t.name, t.seed);
  auto bytes = slurp(path("t.samt"));
  bytes[sizeof(trace::SamtHeader) + 5] ^= 0x40;  // flip a record bit
  std::ofstream(path("flip.samt"), std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  // The header itself is fine...
  EXPECT_NO_THROW(trace::read_samt_header(path("flip.samt")));
  // ...but both record readers notice.
  EXPECT_THROW((void)trace::TraceReader(path("flip.samt")).read_all(),
               trace::TraceFormatError);
  EXPECT_THROW(trace::MappedTrace m(path("flip.samt")),
               trace::TraceFormatError);
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_THROW(trace::read_samt_header(path("absent.samt")),
               trace::TraceFormatError);
}

// -------------------------------------------------- bit-identical replay --

TEST_F(TraceIoTest, ReplayIsBitIdenticalForEveryLsqKind) {
  trace::WorkloadGenerator gen(trace::spec2000_profile("ammp"), 42);
  const trace::Trace t = gen.generate(30000);
  trace::write_samt(path("ammp.samt"), t, "ammp", 42);

  const trace::MappedTrace mapped(path("ammp.samt"));
  const trace::Trace copied = trace::TraceReader(path("ammp.samt")).read_all();

  for (const auto lsq : {sim::LsqChoice::kConventional, sim::LsqChoice::kArb,
                         sim::LsqChoice::kSamie}) {
    SCOPED_TRACE(sim::lsq_choice_name(lsq));
    sim::SimConfig cfg = sim::paper_config(lsq);
    cfg.instructions = t.size();
    const sim::SimResult in_memory = sim::run_simulation(cfg, t);
    const sim::SimResult via_mmap = sim::run_simulation(cfg, mapped.view());
    const sim::SimResult via_reader = sim::run_simulation(cfg, copied);
    expect_results_identical(in_memory, via_mmap);
    expect_results_identical(in_memory, via_reader);
    // And through the cfg.trace_path front door.
    sim::SimConfig replay_cfg = cfg;
    replay_cfg.trace_path = path("ammp.samt");
    expect_results_identical(in_memory, sim::run_trace_file(replay_cfg));
  }
}

TEST_F(TraceIoTest, RunJobsSharesOneMappingAcrossLsqSweep) {
  trace::WorkloadGenerator gen(trace::spec2000_profile("swim"), 9);
  const trace::Trace t = gen.generate(20000);
  trace::write_samt(path("swim.samt"), t, "swim", 9);

  std::vector<sim::Job> jobs;
  for (const auto lsq : {sim::LsqChoice::kConventional, sim::LsqChoice::kArb,
                         sim::LsqChoice::kSamie}) {
    sim::Job job;
    job.program = "swim";
    job.config = sim::paper_config(lsq);
    job.config.instructions = t.size();
    job.config.trace_path = path("swim.samt");
    job.tag = sim::lsq_choice_name(lsq);
    jobs.push_back(job);
  }
  const auto results = sim::run_jobs(jobs, 3);
  ASSERT_EQ(results.size(), 3U);
  for (std::size_t i = 0; i < results.size(); ++i) {
    sim::SimConfig cfg = jobs[i].config;
    cfg.trace_path.clear();
    expect_results_identical(sim::run_simulation(cfg, t), results[i].result);
  }
}

TEST_F(TraceIoTest, RunJobsSurfacesWorkerErrors) {
  sim::Job job;
  job.program = "nope";
  job.config = sim::paper_config(sim::LsqChoice::kSamie);
  job.config.trace_path = path("does_not_exist.samt");
  EXPECT_THROW((void)sim::run_jobs({job}, 2), trace::TraceFormatError);
}

// ------------------------------------------------------------ TraceSource --

TEST_F(TraceIoTest, TraceSourceProvenance) {
  const trace::TraceSource generated = trace::TraceSource::generate(
      trace::spec2000_profile("gcc"), 7, 1000);
  EXPECT_EQ(generated.name(), "gcc");
  EXPECT_EQ(generated.size(), 1000U);
  EXPECT_FALSE(generated.is_mapped());

  trace::write_samt(path("g.samt"), generated.view(), generated.name(),
                    generated.seed());
  const trace::TraceSource mapped = trace::TraceSource::open_samt(path("g.samt"));
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.name(), "gcc");
  expect_ops_equal(generated.view(), mapped.view());

  const trace::TraceSource copied = trace::TraceSource::read_samt(path("g.samt"));
  EXPECT_FALSE(copied.is_mapped());
  expect_ops_equal(generated.view(), copied.view());
}

// ------------------------------------------------------------ text import --

TEST_F(TraceIoTest, ImportTextBuildsValidTrace) {
  const std::string text =
      "# a small kernel\n"
      "int_alu\n"
      "store 0x1000 8        # plain store\n"
      "load 0x1000 8 1       # depends on the store's address producer\n"
      "int_alu 0 0           # no deps\n"
      "fp_mul 2              # depends on the load\n"
      "branch 1              # taken, synthesized backward target\n"
      "load 0x2000 4\n"
      "nop\n";
  const trace::Trace t =
      trace::import_text_trace_from_string(text, "inline.txt");
  ASSERT_EQ(t.size(), 8U);
  EXPECT_EQ(t[0].op, trace::OpClass::kIntAlu);
  EXPECT_EQ(t[1].op, trace::OpClass::kStore);
  EXPECT_EQ(t[1].mem_addr, 0x1000U);
  EXPECT_EQ(t[1].mem_size, 8U);
  EXPECT_EQ(t[2].op, trace::OpClass::kLoad);
  // The load must observe the store's oracle value.
  EXPECT_EQ(t[2].value, t[1].value);
  // `1` back from the load is the store, which has no dst: dep dropped.
  EXPECT_EQ(t[2].src1, kNoReg);
  EXPECT_EQ(t[4].op, trace::OpClass::kFpMul);
  // `2` back from fp_mul is the load: real register dependency.
  EXPECT_EQ(t[4].src1, t[2].dst);
  EXPECT_TRUE(is_fp_reg(t[4].dst));
  EXPECT_EQ(t[5].op, trace::OpClass::kBranch);
  EXPECT_TRUE(t[5].taken);
  EXPECT_LT(t[5].br_target, t[5].pc);
  // Untouched memory loads as zero.
  EXPECT_EQ(t[6].value, 0U);
  // PCs are sequential.
  EXPECT_EQ(t[7].pc, t[0].pc + 7 * 4);
}

TEST_F(TraceIoTest, ImportedTraceRunsCleanly) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "store 0x" + [&] {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%x", 0x4000 + (i % 16) * 8);
      return std::string(buf);
    }() + " 8\n";
    text += "load 0x" + [&] {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%x", 0x4000 + (i % 16) * 8);
      return std::string(buf);
    }() + " 8\n";
    text += "int_alu 1\n";
    text += "branch 1\n";
  }
  const trace::Trace t = trace::import_text_trace_from_string(text, "gen.txt");
  sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
  cfg.instructions = t.size();
  const sim::SimResult r = sim::run_simulation(cfg, t);
  EXPECT_EQ(r.core.committed, t.size());
  // The oracle values synthesized by the importer must hold up under the
  // core's load-value checking: any mismatch is an importer bug.
  EXPECT_EQ(r.core.value_mismatches, 0U);
}

TEST_F(TraceIoTest, ImportRejectsMalformedLines) {
  const auto expect_bad = [](const std::string& text, const char* needle) {
    try {
      (void)trace::import_text_trace_from_string(text, "bad.txt");
      FAIL() << "expected TraceFormatError for: " << text;
    } catch (const trace::TraceFormatError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_bad("frobnicate 0x10 4\n", "unknown op class");
  expect_bad("load\n", "expected an address");
  expect_bad("load 0x1000\n", "expected an access size");
  expect_bad("load 0x1000 16\n", "must be 4 or 8");
  expect_bad("load 0x1001 8\n", "aligned");
  expect_bad("load 0x1000 8 1 2 3\n", "trailing");
  expect_bad("branch 7\n", "0 or 1");
  expect_bad("store 0x10zz 8\n", "expected an address");
}

TEST_F(TraceIoTest, ImportFileEndToEnd) {
  {
    std::ofstream out(path("k.txt"));
    out << "store 0x800 8\nload 0x800 8\nint_alu 1\n";
  }
  const trace::TraceSource src = trace::TraceSource::import_text(path("k.txt"));
  EXPECT_EQ(src.size(), 3U);
  EXPECT_EQ(src.view()[1].value, src.view()[0].value);
}

// ------------------------------------------- hotpath JSON section bound --

TEST(HotpathJson, KeySearchIsBoundedToItsSection) {
  const std::string json =
      "{\n"
      "  \"lsqs\": {\n"
      "    \"conventional\": {\n"
      "      \"total_sim_cycles\": 5,\n"
      "      \"programs\": [{\"program\": \"gcc\"}]\n"
      "    },\n"
      "    \"samie\": {\n"
      "      \"sim_cycles_per_second\": 123.5,\n"
      "      \"programs\": []\n"
      "    }\n"
      "  }\n"
      "}\n";
  // "conventional" lacks the key: must yield 0, not samie's 123.5.
  EXPECT_EQ(sim::hotpath_cycles_per_second_from_json(json, "conventional"), 0.0);
  EXPECT_EQ(sim::hotpath_cycles_per_second_from_json(json, "samie"), 123.5);
  EXPECT_EQ(sim::hotpath_cycles_per_second_from_json(json, "arb"), 0.0);
}

}  // namespace
}  // namespace samie
