// Unit tests for src/common: RNG determinism and distributions,
// FixedVector semantics, statistics primitives, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "src/common/fixed_vector.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/types.h"

namespace samie {
namespace {

// ---------------------------------------------------------------- types ---
TEST(Types, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0U);
  EXPECT_EQ(log2_floor(2), 1U);
  EXPECT_EQ(log2_floor(3), 1U);
  EXPECT_EQ(log2_floor(4), 2U);
  EXPECT_EQ(log2_floor(1024), 10U);
  EXPECT_EQ(log2_floor(1ULL << 63), 63U);
}

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Types, FpRegClassification) {
  EXPECT_FALSE(is_fp_reg(0));
  EXPECT_FALSE(is_fp_reg(31));
  EXPECT_TRUE(is_fp_reg(32));
  EXPECT_TRUE(is_fp_reg(63));
  EXPECT_FALSE(is_fp_reg(kNoReg));
}

// ------------------------------------------------------------------ rng ---
TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, DeriveSeedDecorrelates) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t salt = 0; salt < 1000; ++salt) {
    seen.insert(derive_seed(42, salt));
  }
  EXPECT_EQ(seen.size(), 1000U);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17U);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 r(11);
  std::vector<int> counts(8, 0);
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[r.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / 8, kN / 8 * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyRight) {
  Xoshiro256 r(5);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(r.geometric(12.0));
  EXPECT_NEAR(sum / kN, 12.0, 1.0);
}

TEST(Rng, GeometricNeverBelowOne) {
  Xoshiro256 r(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.geometric(0.1), 1U);
  }
}

// --------------------------------------------------------- fixed_vector ---
TEST(FixedVector, PushPopAndCapacity) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.push_back(1));
  EXPECT_TRUE(v.push_back(2));
  EXPECT_TRUE(v.push_back(3));
  EXPECT_TRUE(v.push_back(4));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.push_back(5));
  EXPECT_EQ(v.size(), 4U);
  v.pop_back();
  EXPECT_EQ(v.size(), 3U);
  EXPECT_EQ(v.back(), 3);
}

TEST(FixedVector, EraseUnorderedMovesLast) {
  FixedVector<int, 8> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  v.erase_unordered(1);
  EXPECT_EQ(v.size(), 4U);
  EXPECT_EQ(v[1], 4);
}

TEST(FixedVector, EraseOrderedPreservesOrder) {
  FixedVector<int, 8> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  v.erase_ordered(1);
  ASSERT_EQ(v.size(), 4U);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ(v[3], 4);
}

TEST(FixedVector, IterationMatchesContents) {
  FixedVector<int, 16> v;
  for (int i = 0; i < 10; ++i) v.push_back(i * i);
  int idx = 0;
  for (int x : v) {
    EXPECT_EQ(x, idx * idx);
    ++idx;
  }
  EXPECT_EQ(idx, 10);
}

// ---------------------------------------------------------------- stats ---
TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, ClampsMassAndComputesMean) {
  Histogram h(4);
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(99);  // clamps into the last bucket (3)
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.count(3), 1U);
  EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 3) / 4.0);
}

TEST(Histogram, QuantileAndZeroFraction) {
  Histogram h(16);
  for (int i = 0; i < 90; ++i) h.add(0);
  for (int i = 0; i < 10; ++i) h.add(5);
  EXPECT_DOUBLE_EQ(h.fraction_at_zero(), 0.9);
  EXPECT_EQ(h.quantile(0.5), 0U);
  EXPECT_EQ(h.quantile(0.95), 5U);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(4);
  h.add(1, 10);
  EXPECT_EQ(h.total(), 10U);
  EXPECT_EQ(h.count(1), 10U);
}

TEST(StatsHelpers, PercentDeltaAndSaved) {
  EXPECT_DOUBLE_EQ(percent_delta(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(percent_delta(90, 100), -10.0);
  EXPECT_DOUBLE_EQ(percent_saved(18, 100), 82.0);
  EXPECT_DOUBLE_EQ(percent_saved(0, 0), 0.0);
}

TEST(StatsHelpers, Means) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1, 2, 3}), 2.0);
  EXPECT_NEAR(geometric_mean({1, 8}), std::sqrt(8.0), 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
  EXPECT_EQ(geometric_mean({1.0, -2.0}), 0.0);
}

// ---------------------------------------------------------------- table ---
TEST(Table, RendersAlignedCells) {
  Table t({"a", "long-header"});
  t.add_row({"xx", "1"});
  t.add_row({"y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| xx | 1           |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(-1.5, 1), "-1.5%");
  EXPECT_EQ(Table::pct(2.0, 1), "+2.0%");
}

}  // namespace
}  // namespace samie
