// Residency tests for the sweep's trace cache (src/sim/trace_cache.h):
// the per-consumer release discipline must drop each source the moment
// its *last* consumer finishes — not at cache destruction — and a
// lane-mode sweep's resident high-water mark must track the lanes in
// flight, not every trace the sweep ever touched. This is the
// regression fence for the 458 MB lane-suite RSS leak: before the fix
// the cache pinned every generated workload until the sweep returned.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/sim/sweep_scheduler.h"
#include "src/sim/trace_cache.h"
#include "src/trace/trace_source.h"

namespace samie {
namespace {

[[nodiscard]] sim::Job job_for(const std::string& program,
                               std::uint64_t insts = 2000) {
  sim::Job j;
  j.program = program;
  j.config = sim::paper_config(sim::LsqChoice::kSamie);
  j.config.instructions = insts;
  j.tag = "cache-test";
  return j;
}

TEST(TraceCache, ReleasesEachSourceWhenItsLastConsumerFinishes) {
  // Jobs 0 and 1 share one trace (same program/seed/length); job 2 has
  // its own. The shared source must survive the first finished() and
  // drop on the second; the lone source drops immediately.
  const std::vector<sim::Job> jobs = {job_for("gcc"), job_for("gcc"),
                                      job_for("mcf")};
  sim::TraceCache cache(jobs, std::vector<bool>(jobs.size(), false));
  EXPECT_EQ(cache.pending_consumers(jobs[0]), 2U);
  EXPECT_EQ(cache.pending_consumers(jobs[2]), 1U);
  EXPECT_EQ(cache.resident_sources(), 0U);

  auto shared = cache.get(jobs[0]);
  auto lone = cache.get(jobs[2]);
  EXPECT_EQ(cache.get(jobs[1]).get(), shared.get())
      << "identical keys must share one build";
  EXPECT_EQ(cache.resident_sources(), 2U);

  cache.finished(jobs[2]);
  EXPECT_EQ(cache.resident_sources(), 1U)
      << "a lone consumer's trace must drop at its finished()";
  EXPECT_EQ(cache.pending_consumers(jobs[2]), 0U);

  cache.finished(jobs[0]);
  EXPECT_EQ(cache.resident_sources(), 1U)
      << "a shared trace must survive until the last consumer";
  cache.finished(jobs[1]);
  EXPECT_EQ(cache.resident_sources(), 0U);
  EXPECT_EQ(cache.pending_consumers(jobs[0]), 0U);

  // The handed-out shared_ptrs still keep the storage alive — only the
  // cache's own reference is gone.
  EXPECT_NE(shared->view().size(), 0U);
  EXPECT_NE(lone->view().size(), 0U);
  EXPECT_EQ(cache.resident_high_water(), 2U);
}

TEST(TraceCache, ResumeSkippedJobsNeverRegisterAsConsumers) {
  // A resumed job's trace is never requested; registering it would pin
  // the source forever (the consumer count could not reach zero).
  const std::vector<sim::Job> jobs = {job_for("gcc"), job_for("gcc"),
                                      job_for("mcf")};
  sim::TraceCache cache(jobs, {false, true, true});
  EXPECT_EQ(cache.pending_consumers(jobs[0]), 1U);
  EXPECT_EQ(cache.pending_consumers(jobs[2]), 0U);
  (void)cache.get(jobs[0]);
  cache.finished(jobs[0]);
  EXPECT_EQ(cache.resident_sources(), 0U);
}

TEST(TraceCache, LaneSweepHighWaterTracksLanesNotSuiteSize) {
  // Six distinct traces through K=2 lanes at one shard: with the
  // release discipline at most lanes-per-shard + 1 sources are ever
  // resident (the +1 is the refill window where the next trace is
  // built before the retired lane's finished() lands). Before the fix
  // this read 6.
  std::vector<sim::Job> jobs;
  for (const char* p : {"gcc", "mcf", "ammp", "art", "crafty", "gzip"}) {
    jobs.push_back(job_for(p));
  }
  sim::SweepOptions laned;
  laned.lanes = 2;
  laned.lane_shards = 1;
  const sim::SweepReport rep = sim::run_sweep(jobs, laned);
  ASSERT_TRUE(rep.all_completed());
  EXPECT_GE(rep.trace_resident_high_water, 2U);
  EXPECT_LE(rep.trace_resident_high_water, 3U)
      << "lane sweep pinned more traces than lanes in flight";

  // The pool keeps one trace per worker in flight; with 2 threads the
  // high water must likewise stay far below the suite size.
  sim::SweepOptions pool;
  pool.threads = 2;
  const sim::SweepReport pooled = sim::run_sweep(jobs, pool);
  ASSERT_TRUE(pooled.all_completed());
  EXPECT_LE(pooled.trace_resident_high_water, 3U);
}

}  // namespace
}  // namespace samie
