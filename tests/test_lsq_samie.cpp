// Tests for the SAMIE-LSQ: bank/entry/slot placement (§3.2), SharedLSQ
// overflow, AddrBuffer FIFO + drain priority (§3.3), forwarding across
// same-line entries, presentBit / cached-translation reuse and
// invalidation (§3.4), Table 5 energy events, and occupancy accounting.
#include <gtest/gtest.h>

#include "src/energy/ledger.h"
#include "src/lsq/samie_lsq.h"

namespace samie::lsq {
namespace {

using Status = Placement::Status;
using Kind = LoadPlan::Kind;

[[nodiscard]] MemOpDesc load(InstSeq seq, Addr addr, std::uint8_t size = 8) {
  return MemOpDesc{seq, addr, size, true, false};
}
[[nodiscard]] MemOpDesc store(InstSeq seq, Addr addr, std::uint8_t size = 8) {
  return MemOpDesc{seq, addr, size, false, false};
}

/// 4 banks x 1 entry x 2 slots, 2 shared entries, 4-slot AddrBuffer.
[[nodiscard]] SamieConfig tiny() {
  return SamieConfig{.banks = 4,
                     .entries_per_bank = 1,
                     .slots_per_entry = 2,
                     .shared_entries = 2,
                     .unbounded_shared = false,
                     .addr_buffer_slots = 4,
                     .drain_width = 4,
                     .line_bytes = 32,
                     .l1d_sets = 4};
}

/// Address of line `l` (line index), byte offset `off`.
[[nodiscard]] constexpr Addr at(Addr l, Addr off = 0) { return l * 32 + off; }

class SamieTest : public ::testing::Test {
 protected:
  SamieTest()
      : constants_(energy::paper_constants()),
        ledger_(constants_),
        lsq_(tiny(), &ledger_) {}

  energy::LsqEnergyConstants constants_;
  energy::SamieLsqLedger ledger_;
  SamieLsq lsq_;
};

// ------------------------------------------------------------ placement ---
TEST_F(SamieTest, SameLineInstructionsShareAnEntry) {
  EXPECT_EQ(lsq_.on_address_ready(load(1, at(4, 0))).status, Status::kPlaced);
  EXPECT_EQ(lsq_.on_address_ready(load(2, at(4, 8))).status, Status::kPlaced);
  const OccupancySample occ = lsq_.occupancy();
  EXPECT_EQ(occ.distrib_entries_used, 1U);
  EXPECT_EQ(occ.distrib_slots_used, 2U);
}

TEST_F(SamieTest, DifferentBanksDifferentEntries) {
  lsq_.on_address_ready(load(1, at(4)));   // bank 0
  lsq_.on_address_ready(load(2, at(5)));   // bank 1
  const OccupancySample occ = lsq_.occupancy();
  EXPECT_EQ(occ.distrib_entries_used, 2U);
  EXPECT_EQ(occ.shared_entries_used, 0U);
}

TEST_F(SamieTest, BankOverflowGoesToShared) {
  lsq_.on_address_ready(load(1, at(0)));   // bank 0, entry taken
  EXPECT_EQ(lsq_.on_address_ready(load(2, at(4))).status, Status::kPlaced);
  EXPECT_EQ(lsq_.occupancy().shared_entries_used, 1U)
      << "second line of bank 0 must overflow into the SharedLSQ";
}

TEST_F(SamieTest, FullSlotsSameLineAllocatesAnotherEntry) {
  // Paper §3.2: present but without free slots -> allocate a new entry.
  lsq_.on_address_ready(load(1, at(0, 0)));
  lsq_.on_address_ready(load(2, at(0, 8)));   // entry now slot-full
  EXPECT_EQ(lsq_.on_address_ready(load(3, at(0, 16))).status, Status::kPlaced);
  const OccupancySample occ = lsq_.occupancy();
  // Bank 0 has one entry; the overflow same-line entry lives in shared.
  EXPECT_EQ(occ.distrib_entries_used, 1U);
  EXPECT_EQ(occ.shared_entries_used, 1U);
}

TEST_F(SamieTest, ExhaustionBuffersInFifo) {
  // Fill bank 0's entry (line 0) and both shared entries (lines 4, 8 also
  // bank 0), then the next bank-0 line must buffer.
  lsq_.on_address_ready(load(1, at(0)));
  lsq_.on_address_ready(load(2, at(4)));
  lsq_.on_address_ready(load(3, at(8)));
  EXPECT_EQ(lsq_.on_address_ready(load(4, at(12))).status, Status::kBuffered);
  EXPECT_FALSE(lsq_.is_placed(4));
  EXPECT_EQ(lsq_.occupancy().buffer_used, 1U);
  EXPECT_EQ(lsq_.buffered_placements(), 1U);
}

TEST_F(SamieTest, CanComputeAddressGateTracksBufferSpace) {
  lsq_.on_address_ready(load(1, at(0)));
  lsq_.on_address_ready(load(2, at(4)));
  lsq_.on_address_ready(load(3, at(8)));
  for (InstSeq s = 4; s < 8; ++s) {
    ASSERT_TRUE(lsq_.can_compute_address());
    ASSERT_EQ(lsq_.on_address_ready(load(s, at(4 * s))).status,
              Status::kBuffered);
  }
  EXPECT_FALSE(lsq_.can_compute_address()) << "AddrBuffer is full";
}

TEST_F(SamieTest, DrainPlacesBufferedWithPriorityInFifoOrder) {
  lsq_.on_address_ready(load(1, at(0)));
  lsq_.on_address_ready(load(2, at(4)));
  lsq_.on_address_ready(load(3, at(8)));
  lsq_.on_address_ready(load(4, at(12)));  // buffered
  lsq_.on_address_ready(load(5, at(16)));  // buffered
  std::vector<InstSeq> placed;
  lsq_.drain(placed);
  EXPECT_TRUE(placed.empty());
  lsq_.on_commit(1);  // frees bank 0's entry (line 0)
  lsq_.drain(placed);
  ASSERT_EQ(placed.size(), 1U);
  EXPECT_EQ(placed[0], 4U) << "FIFO head first";
  lsq_.on_commit(2);  // frees a shared entry
  lsq_.drain(placed);
  ASSERT_EQ(placed.size(), 2U);
  EXPECT_EQ(placed[1], 5U);
}

// ------------------------------------------------------------ forwarding ---
TEST_F(SamieTest, ForwardWithinEntry) {
  lsq_.on_address_ready(store(1, at(4, 0)));
  lsq_.on_address_ready(load(2, at(4, 0)));
  LoadPlan p = lsq_.plan_load(2);
  EXPECT_EQ(p.kind, Kind::kForwardWait);
  EXPECT_EQ(p.store, 1U);
  lsq_.on_store_data_ready(1);
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kForwardReady);
}

TEST_F(SamieTest, ForwardAcrossSameLineEntries) {
  // Store fills the bank entry's slots; the load for the same line lands
  // in a *different* (shared) entry — forwarding must still be found.
  lsq_.on_address_ready(store(1, at(0, 0)));
  lsq_.on_address_ready(load(2, at(0, 8)));   // fills the bank entry
  lsq_.on_address_ready(load(3, at(0, 0)));   // same line, new shared entry
  EXPECT_EQ(lsq_.occupancy().shared_entries_used, 1U);
  const LoadPlan p = lsq_.plan_load(3);
  EXPECT_EQ(p.kind, Kind::kForwardWait);
  EXPECT_EQ(p.store, 1U);
}

TEST_F(SamieTest, YoungestOlderStoreWins) {
  lsq_.on_address_ready(store(1, at(4, 0)));
  lsq_.on_address_ready(store(2, at(4, 0)));
  lsq_.on_address_ready(load(3, at(4, 0)));
  EXPECT_EQ(lsq_.plan_load(3).store, 2U);
}

TEST_F(SamieTest, PartialCoverageWaitsForCommit) {
  lsq_.on_address_ready(store(1, at(4, 4), 4));
  lsq_.on_address_ready(load(2, at(4, 0), 8));
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kWaitCommit);
  lsq_.on_store_data_ready(1);
  lsq_.on_commit(1);
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
}

TEST_F(SamieTest, LateStoreUpdatesPlacedLoads) {
  lsq_.on_address_ready(load(2, at(4, 0)));
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
  lsq_.on_address_ready(store(1, at(4, 0)));
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kForwardWait);
}

TEST_F(SamieTest, DifferentLinesNeverForward) {
  lsq_.on_address_ready(store(1, at(4, 0)));
  lsq_.on_address_ready(load(2, at(5, 0)));
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
}

// --------------------------------------------- presentBit / translation ---
TEST_F(SamieTest, CachesLocationAndTranslationAfterFirstAccess) {
  lsq_.on_address_ready(load(1, at(4, 0)));
  lsq_.on_address_ready(load(2, at(4, 8)));
  EXPECT_FALSE(lsq_.cache_hints(1).way_known);
  lsq_.on_cache_access_complete(1, /*set=*/1, /*way=*/3);
  const CacheHints h = lsq_.cache_hints(2);
  EXPECT_TRUE(h.way_known);
  EXPECT_EQ(h.set, 1U);
  EXPECT_EQ(h.way, 3U);
  EXPECT_TRUE(h.translation_known);
}

TEST_F(SamieTest, ReplacementResetsPresentBitInAffectedBankOnly) {
  lsq_.on_address_ready(load(1, at(4)));   // bank 0 == set 0 (4 % 4)
  lsq_.on_address_ready(load(2, at(5)));   // bank 1 == set 1
  lsq_.on_cache_access_complete(1, 0, 0);
  lsq_.on_cache_access_complete(2, 1, 0);
  lsq_.on_cache_line_replaced(/*set=*/0);
  EXPECT_FALSE(lsq_.cache_hints(1).way_known);
  EXPECT_TRUE(lsq_.cache_hints(2).way_known) << "bank 1 must be untouched";
  EXPECT_GE(lsq_.present_bit_resets(), 1U);
}

TEST_F(SamieTest, ReplacementResetsAllSharedEntries) {
  lsq_.on_address_ready(load(1, at(0)));
  lsq_.on_address_ready(load(2, at(4)));   // shared (bank 0 full)
  lsq_.on_cache_access_complete(2, 0, 1);
  ASSERT_TRUE(lsq_.cache_hints(2).way_known);
  lsq_.on_cache_line_replaced(/*set=*/3);  // any set resets shared entries
  EXPECT_FALSE(lsq_.cache_hints(2).way_known);
}

TEST_F(SamieTest, TranslationSurvivesReplacement) {
  lsq_.on_address_ready(load(1, at(4)));
  lsq_.on_cache_access_complete(1, 0, 0);
  lsq_.on_cache_line_replaced(0);
  const CacheHints h = lsq_.cache_hints(1);
  EXPECT_FALSE(h.way_known);
  EXPECT_TRUE(h.translation_known)
      << "a cache replacement does not invalidate the page translation";
}

TEST_F(SamieTest, EntryReleaseDropsCachedState) {
  lsq_.on_address_ready(load(1, at(4)));
  lsq_.on_cache_access_complete(1, 1, 1);
  lsq_.on_commit(1);  // last slot -> entry freed
  lsq_.on_address_ready(load(2, at(4)));
  const CacheHints h = lsq_.cache_hints(2);
  EXPECT_FALSE(h.way_known);
  EXPECT_FALSE(h.translation_known);
}

// ------------------------------------------------------- commit / squash ---
TEST_F(SamieTest, EntryFreedWhenLastSlotCommits) {
  lsq_.on_address_ready(load(1, at(4, 0)));
  lsq_.on_address_ready(load(2, at(4, 8)));
  lsq_.on_commit(1);
  EXPECT_EQ(lsq_.occupancy().distrib_entries_used, 1U);
  lsq_.on_commit(2);
  const OccupancySample occ = lsq_.occupancy();
  EXPECT_EQ(occ.distrib_entries_used, 0U);
  EXPECT_EQ(occ.distrib_slots_used, 0U);
}

TEST_F(SamieTest, StoreCommitClearsForwardRefs) {
  lsq_.on_address_ready(store(1, at(4, 0)));
  lsq_.on_address_ready(load(2, at(4, 0)));
  lsq_.on_store_data_ready(1);
  ASSERT_EQ(lsq_.plan_load(2).kind, Kind::kForwardReady);
  lsq_.on_commit(1);
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
}

TEST_F(SamieTest, SquashRemovesYoungerEverywhere) {
  lsq_.on_address_ready(load(1, at(0)));
  lsq_.on_address_ready(load(2, at(4)));
  lsq_.on_address_ready(load(3, at(8)));
  lsq_.on_address_ready(load(4, at(12)));  // buffered
  lsq_.squash_from(2);
  EXPECT_TRUE(lsq_.is_placed(1));
  EXPECT_FALSE(lsq_.is_placed(2));
  EXPECT_FALSE(lsq_.is_placed(3));
  const OccupancySample occ = lsq_.occupancy();
  EXPECT_EQ(occ.distrib_entries_used, 1U);
  EXPECT_EQ(occ.shared_entries_used, 0U);
  EXPECT_EQ(occ.buffer_used, 0U);
}

TEST_F(SamieTest, OccupancyCountersStayConsistentUnderChurn) {
  // Deterministic churn across place/commit/squash; counters must match a
  // from-scratch recount at every step (guards the O(1) bookkeeping).
  std::uint32_t placed_count = 0;
  InstSeq next = 1;
  for (int round = 0; round < 50; ++round) {
    const Addr line = static_cast<Addr>(round * 7 % 16);
    const MemOpDesc op = load(next, at(line, static_cast<Addr>(round % 4) * 8));
    if (lsq_.on_address_ready(op).status == Status::kPlaced) ++placed_count;
    ++next;
    const OccupancySample occ = lsq_.occupancy();
    EXPECT_EQ(occ.distrib_slots_used + occ.shared_slots_used, placed_count);
    if (round % 7 == 6) {
      // Commit the oldest placed instruction.
      for (InstSeq s = 1; s < next; ++s) {
        if (lsq_.is_placed(s)) {
          lsq_.on_commit(s);
          --placed_count;
          break;
        }
      }
    }
  }
}

// ------------------------------------------------------- energy (Table 5) ---
TEST_F(SamieTest, PlacementChargesBusAndParallelSearch) {
  lsq_.on_address_ready(load(1, at(4)));
  // Empty structures: base search costs + bus + entry write + age write.
  const double expected = 54.4                  // bus
                          + 4.33 + 22.7          // bank + shared base compare
                          + 4.07                 // DistribLSQ address write
                          + 1.64;                // age id write
  EXPECT_DOUBLE_EQ(ledger_.energy_pj(), expected);
  EXPECT_EQ(ledger_.bus_sends(), 1U);
  EXPECT_EQ(ledger_.distrib_searches(), 1U);
  EXPECT_EQ(ledger_.shared_searches(), 1U);
}

TEST_F(SamieTest, SearchCostGrowsWithInUseEntries) {
  lsq_.on_address_ready(load(1, at(0)));
  const double after_first = ledger_.energy_pj();
  lsq_.on_address_ready(load(2, at(4)));  // sees 1 in-use entry in bank 0
  const double second_cost = ledger_.energy_pj() - after_first;
  // bus + (bank base + 1 compared + 1 age-entry search of 1 id)
  // + shared base + shared entry write + age write
  const double expected = 54.4 + (4.33 + 2.17) + (19.4 + 1.21) + 22.7 +
                          6.16 + 1.64;
  EXPECT_DOUBLE_EQ(second_cost, expected);
}

TEST_F(SamieTest, BufferedOpsChargeAddrBufferEnergy) {
  lsq_.on_address_ready(load(1, at(0)));
  lsq_.on_address_ready(load(2, at(4)));
  lsq_.on_address_ready(load(3, at(8)));
  const double before = ledger_.addrbuf_pj();
  lsq_.on_address_ready(load(4, at(12)));  // buffered: one FIFO write
  EXPECT_DOUBLE_EQ(ledger_.addrbuf_pj() - before, 31.6 + 15.7);
  std::vector<InstSeq> placed;
  lsq_.drain(placed);  // failed retry still reads the FIFO head
  EXPECT_DOUBLE_EQ(ledger_.addrbuf_pj() - before, 2 * (31.6 + 15.7));
}

TEST_F(SamieTest, HintsChargeCachedReads) {
  lsq_.on_address_ready(load(1, at(4)));
  lsq_.on_cache_access_complete(1, 0, 0);
  const double before = ledger_.distrib_pj();
  (void)lsq_.cache_hints(1);
  EXPECT_DOUBLE_EQ(ledger_.distrib_pj() - before, 0.236 + 6.02)
      << "reading the cached line id + translation from the entry";
}

// ------------------------------------------------------ unbounded shared ---
TEST(SamieUnboundedShared, GrowsBeyondConfiguredEntries) {
  SamieConfig cfg = tiny();
  cfg.unbounded_shared = true;
  SamieLsq lsq(cfg, nullptr);
  // 10 distinct lines, all bank 0: 1 fits the bank, 9 spill to shared.
  for (InstSeq s = 0; s < 10; ++s) {
    ASSERT_EQ(lsq.on_address_ready(load(s + 1, at(s * 4))).status,
              Status::kPlaced);
  }
  EXPECT_EQ(lsq.occupancy().shared_entries_used, 9U);
  EXPECT_EQ(lsq.occupancy().buffer_used, 0U);
}

TEST(SamieConfigDefaults, MatchPaperTable3) {
  const SamieConfig cfg;
  EXPECT_EQ(cfg.banks, 64U);
  EXPECT_EQ(cfg.entries_per_bank, 2U);
  EXPECT_EQ(cfg.slots_per_entry, 8U);
  EXPECT_EQ(cfg.shared_entries, 8U);
  EXPECT_EQ(cfg.addr_buffer_slots, 64U);
}

}  // namespace
}  // namespace samie::lsq
