// Tests for src/trace: generator determinism, instruction-mix fidelity,
// oracle value consistency, the address-stream model's controllable
// properties (line sharing, bank concentration), and all 26 SPEC2000
// profiles.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/trace/analysis.h"
#include "src/trace/instruction.h"
#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

namespace samie::trace {
namespace {

[[nodiscard]] WorkloadProfile simple_profile() {
  WorkloadProfile p;
  p.name = "simple";
  p.load_frac = 0.25;
  p.store_frac = 0.12;
  p.branch_frac = 0.15;
  p.streams = {StreamComponent{1.0, 256, 32, 4, 8, 0.0}};
  return p;
}

TEST(Workload, DeterministicForSameSeed) {
  WorkloadGenerator a(simple_profile(), 99);
  WorkloadGenerator b(simple_profile(), 99);
  const Trace ta = a.generate(5000);
  const Trace tb = b.generate(5000);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].pc, tb[i].pc);
    EXPECT_EQ(ta[i].mem_addr, tb[i].mem_addr);
    EXPECT_EQ(ta[i].value, tb[i].value);
    EXPECT_EQ(static_cast<int>(ta[i].op), static_cast<int>(tb[i].op));
  }
}

TEST(Workload, DifferentSeedsProduceDifferentStreams) {
  WorkloadGenerator a(simple_profile(), 1);
  WorkloadGenerator b(simple_profile(), 2);
  const Trace ta = a.generate(2000);
  const Trace tb = b.generate(2000);
  int diff = 0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    diff += static_cast<int>(ta[i].op) != static_cast<int>(tb[i].op) ? 1 : 0;
  }
  EXPECT_GT(diff, 100);
}

TEST(Workload, MixMatchesProfile) {
  WorkloadGenerator g(simple_profile(), 7);
  const Trace t = g.generate(100000);
  const MixStats m = compute_mix(t);
  EXPECT_NEAR(m.load_frac, 0.25, 0.02);
  EXPECT_NEAR(m.store_frac, 0.12, 0.02);
  // Loop-closing branches add to the explicit branch fraction.
  EXPECT_GT(m.branch_frac, 0.14);
  EXPECT_LT(m.branch_frac, 0.25);
}

TEST(Workload, MemOpsAreAlignedAndSized) {
  WorkloadGenerator g(simple_profile(), 3);
  const Trace t = g.generate(20000);
  for (const auto& op : t.ops) {
    if (!is_mem(op.op)) continue;
    ASSERT_TRUE(op.mem_size == 4 || op.mem_size == 8);
    EXPECT_EQ(op.mem_addr % op.mem_size, 0U) << "unaligned access";
    // Accesses never straddle a 32-byte line.
    EXPECT_EQ(op.mem_addr >> 5, (op.mem_addr + op.mem_size - 1) >> 5);
  }
}

// The embedded oracle: replaying stores in program order must make every
// load's recorded value correct.
TEST(Workload, OracleValuesAreProgramOrderConsistent) {
  WorkloadGenerator g(simple_profile(), 21);
  const Trace t = g.generate(50000);
  std::unordered_map<Addr, std::uint8_t> memory;
  for (const auto& op : t.ops) {
    if (op.op == OpClass::kStore) {
      for (std::uint32_t i = 0; i < op.mem_size; ++i) {
        memory[op.mem_addr + i] = static_cast<std::uint8_t>(op.value >> (8 * i));
      }
    } else if (op.op == OpClass::kLoad) {
      std::uint64_t v = 0;
      for (std::uint32_t i = 0; i < op.mem_size; ++i) {
        auto it = memory.find(op.mem_addr + i);
        const std::uint8_t byte = it == memory.end() ? 0 : it->second;
        v |= static_cast<std::uint64_t>(byte) << (8 * i);
      }
      ASSERT_EQ(v, op.value) << "oracle mismatch";
    }
  }
}

TEST(Workload, LoopBranchesHaveStablePcsAndBackwardTargets) {
  WorkloadGenerator g(simple_profile(), 5);
  const Trace t = g.generate(30000);
  std::uint64_t taken_back = 0;
  for (const auto& op : t.ops) {
    if (op.op != OpClass::kBranch || !op.taken) continue;
    if (op.br_target < op.pc) ++taken_back;
  }
  EXPECT_GT(taken_back, 200U) << "expected loop structure";
}

TEST(Workload, RegistersRespectClasses) {
  WorkloadProfile p = simple_profile();
  p.fp_frac = 1.0;
  p.load_frac = p.store_frac = p.branch_frac = 0.0;
  WorkloadGenerator g(p, 9);
  const Trace t = g.generate(5000);
  for (const auto& op : t.ops) {
    if (is_fp(op.op)) {
      EXPECT_TRUE(op.dst == kNoReg || is_fp_reg(op.dst));
    }
  }
}

// --- the two knobs the SAMIE evaluation depends on -------------------------

TEST(StreamModel, AccessesPerLineControlsSharing) {
  WorkloadProfile lo = simple_profile();
  lo.streams = {StreamComponent{1.0, 4096, 32, 1, 8, 0.0}};
  WorkloadProfile hi = simple_profile();
  hi.streams = {StreamComponent{1.0, 4096, 32, 6, 4, 0.0}};
  const Trace tlo = WorkloadGenerator(lo, 4).generate(60000);
  const Trace thi = WorkloadGenerator(hi, 4).generate(60000);
  const SharingStats slo = compute_sharing(tlo, 96);
  const SharingStats shi = compute_sharing(thi, 96);
  EXPECT_LT(slo.reuse_fraction, 0.25);
  EXPECT_GT(shi.reuse_fraction, 0.70);
  EXPECT_GT(shi.accesses_per_line, slo.accesses_per_line * 2);
}

TEST(StreamModel, PowerOfTwoStrideConcentratesBanks) {
  // 2048-byte stride with 64 banks of 32-byte lines: every line of the
  // stream maps to one bank (the ammp pathology).
  WorkloadProfile conc = simple_profile();
  conc.streams = {StreamComponent{1.0, 4096, 2048, 2, 8, 0.0}};
  WorkloadProfile spread = simple_profile();
  spread.streams = {StreamComponent{1.0, 4096, 32, 2, 8, 0.0}};
  const Trace tc = WorkloadGenerator(conc, 8).generate(60000);
  const Trace ts = WorkloadGenerator(spread, 8).generate(60000);
  const BankSpreadStats bc = compute_bank_spread(tc, 96, 64);
  const BankSpreadStats bs = compute_bank_spread(ts, 96, 64);
  EXPECT_GT(bc.max_lines_per_bank, bs.max_lines_per_bank * 3);
  EXPECT_NEAR(bc.max_lines_per_bank, bc.mean_distinct_lines, 2.0)
      << "concentrated stream should put nearly all lines in one bank";
}

TEST(StreamModel, FootprintBoundsAddressRange) {
  WorkloadProfile p = simple_profile();
  p.streams = {StreamComponent{1.0, 128, 32, 1, 8, 0.0}};
  const Trace t = WorkloadGenerator(p, 2).generate(30000);
  Addr lo = ~0ULL, hi = 0;
  for (const auto& op : t.ops) {
    if (!is_mem(op.op)) continue;
    lo = std::min(lo, op.mem_addr);
    hi = std::max(hi, op.mem_addr);
  }
  EXPECT_LE(hi - lo, 128U * 32U + 32U);
}

// ------------------------------------------------------------- SPEC2000 ---
TEST(Spec2000, AllProfilesExistAndGenerate) {
  ASSERT_EQ(spec2000_names().size(), 26U);
  for (const auto& name : spec2000_names()) {
    const WorkloadProfile p = spec2000_profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_FALSE(p.streams.empty());
    WorkloadGenerator g(p, 1);
    const Trace t = g.generate(2000);
    EXPECT_EQ(t.size(), 2000U);
  }
}

TEST(Spec2000, UnknownNameThrows) {
  EXPECT_THROW(spec2000_profile("quake3"), std::out_of_range);
}

TEST(Spec2000, IntFpSplitIsTwelveFourteen) {
  int ints = 0;
  for (const auto& n : spec2000_names()) ints += spec2000_is_int(n) ? 1 : 0;
  EXPECT_EQ(ints, 12);
  EXPECT_TRUE(spec2000_is_int("gcc"));
  EXPECT_FALSE(spec2000_is_int("swim"));
}

TEST(Spec2000, SharingOrderingMatchesPaper) {
  // ammp and swim have the highest in-flight line reuse; sixtrack the
  // lowest (paper Figure 9: 58% vs 21% Dcache savings).
  auto reuse = [](const std::string& name) {
    WorkloadGenerator g(spec2000_profile(name), 3);
    return compute_sharing(g.generate(60000), 96).reuse_fraction;
  };
  const double ammp = reuse("ammp");
  const double swim = reuse("swim");
  const double sixtrack = reuse("sixtrack");
  const double mcf = reuse("mcf");
  EXPECT_GT(ammp, sixtrack + 0.2);
  EXPECT_GT(swim, sixtrack + 0.2);
  EXPECT_GT(ammp, mcf);
}

TEST(Spec2000, BankConcentrationOrderingMatchesPaper) {
  auto conc = [](const std::string& name) {
    WorkloadGenerator g(spec2000_profile(name), 3);
    return compute_bank_spread(g.generate(60000), 96, 64).max_lines_per_bank;
  };
  // ammp needs many same-bank lines in flight; swim and gcc do not.
  EXPECT_GT(conc("ammp"), conc("swim") + 1.5);
  EXPECT_GT(conc("ammp"), conc("gcc") + 1.5);
}

TEST(Spec2000, AllProfilesHaveDistinctStreamsWithinRegions) {
  // Stream regions must not alias across components of the same profile.
  for (const auto& name : spec2000_names()) {
    const WorkloadProfile p = spec2000_profile(name);
    for (std::size_t i = 0; i < p.streams.size(); ++i) {
      const Addr base = stream_region_base(i);
      const Addr extent = p.streams[i].footprint_lines *
                          std::max<Addr>(p.streams[i].line_stride_bytes, 32);
      EXPECT_LT(base + extent, stream_region_base(i + 1))
          << name << " stream " << i << " bleeds into the next region";
    }
  }
}

TEST(Analysis, MixCountsEverything) {
  WorkloadGenerator g(simple_profile(), 13);
  const Trace t = g.generate(10000);
  const MixStats m = compute_mix(t);
  EXPECT_NEAR(m.load_frac + m.store_frac + m.branch_frac + m.fp_frac +
                  m.int_compute_frac,
              1.0, 1e-9);
}

}  // namespace
}  // namespace samie::trace
