// Property tests for the integer-event energy ledger (src/energy/
// ledger.h): the O(1) count*pj fold must agree with legacy per-event FP
// accumulation on randomized event streams, the fused placement hook
// must be count-identical to the per-event hook sequence it batches,
// and ledger merging must be exactly associative (integer counts make
// the folded energy of merged shards bit-identical to one ledger fed
// the concatenated stream).
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/energy/ledger.h"
#include "src/energy/lsq_model.h"

namespace samie::energy {
namespace {

/// One randomized SAMIE event. The legacy accumulator charges it with
/// one FP add per event (the pre-ledger scheme); the ledger counts it.
struct SamieEvent {
  enum Kind : int {
    kPlacement,      // fused try_place charge
    kDistribWrites,  // addr + age + datum + translation + line-id writes
    kSharedWrites,
    kAddrbuf,
    kKinds
  };
  Kind kind = kPlacement;
  std::uint64_t bank_entries = 0;
  std::uint64_t bank_ids = 0;
  std::uint64_t shared_entries = 0;
  std::uint64_t shared_ids = 0;
};

std::vector<SamieEvent> random_stream(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> kind(0, SamieEvent::kKinds - 1);
  std::uniform_int_distribution<std::uint64_t> entries(0, 8);
  std::uniform_int_distribution<std::uint64_t> ids(0, 64);
  std::vector<SamieEvent> out(n);
  for (SamieEvent& e : out) {
    e.kind = static_cast<SamieEvent::Kind>(kind(rng));
    e.bank_entries = entries(rng);
    e.bank_ids = ids(rng);
    e.shared_entries = entries(rng);
    e.shared_ids = ids(rng);
  }
  return out;
}

void charge_ledger(SamieLsqLedger& led, const SamieEvent& e) {
  switch (e.kind) {
    case SamieEvent::kPlacement:
      led.on_placement_search(e.bank_entries, e.bank_ids, e.shared_entries,
                              e.shared_ids);
      break;
    case SamieEvent::kDistribWrites:
      led.on_distrib_addr_write();
      led.on_distrib_age_write();
      led.on_distrib_datum_rw();
      led.on_distrib_translation_rw();
      led.on_distrib_line_id_rw();
      break;
    case SamieEvent::kSharedWrites:
      led.on_shared_addr_write();
      led.on_shared_age_write();
      led.on_shared_datum_rw();
      led.on_shared_translation_rw();
      led.on_shared_line_id_rw();
      break;
    case SamieEvent::kAddrbuf:
      led.on_addrbuf_write();
      led.on_addrbuf_read();
      break;
    case SamieEvent::kKinds:
      break;
  }
}

/// The pre-ledger accounting: one FP accumulation per event, in stream
/// order. The ledger's fold reassociates these sums (count * pj), so the
/// two agree to rounding, not bitwise — hence the relative tolerance.
double charge_legacy_fp(const LsqEnergyConstants& k,
                        const std::vector<SamieEvent>& stream) {
  double pj = 0.0;
  for (const SamieEvent& e : stream) {
    switch (e.kind) {
      case SamieEvent::kPlacement:
        pj += k.samie.bus_send_addr_pj;
        pj += k.samie.d_addr_cmp_base_pj +
              static_cast<double>(e.bank_entries) * k.samie.d_addr_cmp_per_addr_pj;
        for (std::uint64_t i = 0; i < e.bank_entries; ++i) {
          pj += k.samie.d_age_cmp_base_pj;
        }
        pj += static_cast<double>(e.bank_ids) * k.samie.d_age_cmp_per_id_pj;
        pj += k.samie.s_addr_cmp_base_pj +
              static_cast<double>(e.shared_entries) * k.samie.s_addr_cmp_per_addr_pj;
        for (std::uint64_t i = 0; i < e.shared_entries; ++i) {
          pj += k.samie.s_age_cmp_base_pj;
        }
        pj += static_cast<double>(e.shared_ids) * k.samie.s_age_cmp_per_id_pj;
        break;
      case SamieEvent::kDistribWrites:
        pj += k.samie.d_addr_rw_pj + k.samie.d_age_rw_pj +
              k.samie.d_datum_rw_pj + k.samie.d_translation_rw_pj +
              k.samie.d_line_id_rw_pj;
        break;
      case SamieEvent::kSharedWrites:
        pj += k.samie.s_addr_rw_pj + k.samie.s_age_rw_pj +
              k.samie.s_datum_rw_pj + k.samie.s_translation_rw_pj +
              k.samie.s_line_id_rw_pj;
        break;
      case SamieEvent::kAddrbuf:
        pj += 2.0 * (k.samie.ab_datum_rw_pj + k.samie.ab_age_rw_pj);
        break;
      case SamieEvent::kKinds:
        break;
    }
  }
  return pj;
}

constexpr double kRelTol = 1e-9;

TEST(EnergyFold, IntegerFoldMatchesLegacyFpAccumulationSamie) {
  const LsqEnergyConstants k = paper_constants();
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
    const std::vector<SamieEvent> stream = random_stream(seed, 20'000);
    SamieLsqLedger led(k);
    for (const SamieEvent& e : stream) charge_ledger(led, e);
    const double legacy = charge_legacy_fp(k, stream);
    EXPECT_NEAR(led.energy_pj(), legacy, kRelTol * legacy)
        << "seed " << seed;
  }
}

TEST(EnergyFold, IntegerFoldMatchesLegacyFpAccumulationConventional) {
  const LsqEnergyConstants k = paper_constants();
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint64_t> compared(0, 128);
  ConvLsqLedger led(k);
  double legacy = 0.0;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t n = compared(rng);
    led.on_addr_search(n);
    led.on_addr_write();
    led.on_datum_read();
    legacy += k.conv.addr_cmp_base_pj +
              static_cast<double>(n) * k.conv.addr_cmp_per_addr_pj;
    legacy += k.conv.addr_rw_pj;
    legacy += k.conv.datum_rw_pj;
  }
  EXPECT_NEAR(led.energy_pj(), legacy, kRelTol * legacy);
}

TEST(EnergyFold, FusedPlacementHookEqualsPerEventHooks) {
  // The fused charge and the equivalent per-event hook sequence must
  // produce identical counts, hence bitwise-identical folded energy.
  const LsqEnergyConstants k = paper_constants();
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::uint64_t> entries(0, 8);
  std::uniform_int_distribution<std::uint64_t> ids(0, 64);
  SamieLsqLedger fused(k);
  SamieLsqLedger unfused(k);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t be = entries(rng);
    const std::uint64_t se = entries(rng);
    // A bank with no valid entries has no used slots, so the id counts
    // are zero whenever the entry counts are (as in try_place).
    const std::uint64_t bi = be == 0 ? 0 : ids(rng);
    const std::uint64_t si = se == 0 ? 0 : ids(rng);
    fused.on_placement_search(be, bi, se, si);

    unfused.on_bus_send();
    unfused.on_distrib_addr_search(be);
    // One age search per valid entry; the entries' id counts sum to bi.
    for (std::uint64_t e = 0; e < be; ++e) {
      unfused.on_distrib_age_search(e + 1 == be ? bi : 0);
    }
    unfused.on_shared_addr_search(se);
    for (std::uint64_t e = 0; e < se; ++e) {
      unfused.on_shared_age_search(e + 1 == se ? si : 0);
    }
  }
  EXPECT_EQ(fused.energy_pj(), unfused.energy_pj());
  EXPECT_EQ(fused.distrib_pj(), unfused.distrib_pj());
  EXPECT_EQ(fused.shared_pj(), unfused.shared_pj());
  EXPECT_EQ(fused.bus_pj(), unfused.bus_pj());
}

TEST(EnergyFold, MergeIsExactlyAssociative) {
  // fold(A merge B) == fold(A concat B), bitwise: merged integer counts
  // equal the concatenated stream's counts, and identical counts run the
  // identical fold arithmetic.
  const LsqEnergyConstants k = paper_constants();
  const std::vector<SamieEvent> a = random_stream(11, 7'000);
  const std::vector<SamieEvent> b = random_stream(22, 13'000);

  SamieLsqLedger la(k);
  SamieLsqLedger lb(k);
  SamieLsqLedger lab(k);
  for (const SamieEvent& e : a) {
    charge_ledger(la, e);
    charge_ledger(lab, e);
  }
  for (const SamieEvent& e : b) {
    charge_ledger(lb, e);
    charge_ledger(lab, e);
  }
  SamieLsqLedger merged(k);
  merged.merge(lb);  // order must not matter
  merged.merge(la);
  EXPECT_EQ(merged.energy_pj(), lab.energy_pj());
  EXPECT_EQ(merged.distrib_pj(), lab.distrib_pj());
  EXPECT_EQ(merged.shared_pj(), lab.shared_pj());
  EXPECT_EQ(merged.addrbuf_pj(), lab.addrbuf_pj());
  EXPECT_EQ(merged.bus_pj(), lab.bus_pj());

  ConvLsqLedger ca(k);
  ConvLsqLedger cb(k);
  ConvLsqLedger cab(k);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint64_t> compared(0, 128);
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t n = compared(rng);
    ConvLsqLedger& half = i % 2 == 0 ? ca : cb;
    half.on_addr_search(n);
    half.on_datum_write();
    cab.on_addr_search(n);
    cab.on_datum_write();
  }
  ca.merge(cb);
  EXPECT_EQ(ca.energy_pj(), cab.energy_pj());

  DcacheLedger da(k), db(k), dab(k);
  da.on_full_access();
  db.on_way_known_access();
  db.on_way_known_access();
  dab.on_full_access();
  dab.on_way_known_access();
  dab.on_way_known_access();
  da.merge(db);
  EXPECT_EQ(da.energy_pj(), dab.energy_pj());

  DtlbLedger ta(k), tb(k), tab(k);
  ta.on_access();
  tb.on_access();
  tb.on_cached_translation();
  tab.on_access();
  tab.on_access();
  tab.on_cached_translation();
  ta.merge(tb);
  EXPECT_EQ(ta.energy_pj(), tab.energy_pj());
  EXPECT_EQ(ta.cached_translations(), tab.cached_translations());
}

}  // namespace
}  // namespace samie::energy
