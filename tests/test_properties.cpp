// Property-based suites (parameterized gtest): invariants that must hold
// for every LSQ organization and every workload class.
//
//   P1  Memory correctness: every load observes its program-order value
//       (checked against the trace oracle) — zero mismatches, always.
//   P2  Completeness: every instruction the trace contains commits.
//   P3  The presentBit protocol never produces a way-known miss (the
//       simulator throws if it does — a run completing is the assertion).
//   P4  LSQ energy of SAMIE is bounded by the conventional LSQ's energy on
//       bank-friendly workloads.
//   P5  Occupancy samples remain within structural capacity.
//   P6  Determinism across thread counts and repeated runs.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

namespace samie::sim {
namespace {

using Param = std::tuple<LsqChoice, std::string /*program*/, std::uint64_t /*seed*/>;

class LsqWorkloadProperty : public ::testing::TestWithParam<Param> {};

TEST_P(LsqWorkloadProperty, OrderingCompletenessAndCapacity) {
  const auto& [choice, program, seed] = GetParam();
  SimConfig cfg = paper_config(choice);
  cfg.instructions = 15'000;
  cfg.seed = seed;

  trace::WorkloadGenerator gen(trace::spec2000_profile(program), seed);
  const trace::Trace t = gen.generate(cfg.instructions);
  const SimResult r = run_simulation(cfg, t);

  // P1: zero memory-ordering violations.
  EXPECT_EQ(r.core.value_mismatches, 0U)
      << program << " under " << lsq_choice_name(choice);
  // P2: everything commits.
  EXPECT_EQ(r.core.committed, cfg.instructions);
  // P5: occupancy within structural bounds.
  if (choice == LsqChoice::kSamie) {
    EXPECT_LE(r.shared_occupancy_max, cfg.samie.shared_entries);
    EXPECT_LE(r.buffer_occupancy_mean,
              static_cast<double>(cfg.samie.addr_buffer_slots));
  }
  // Sanity: the run did real work.
  EXPECT_GT(r.core.cycles, 0U);
  EXPECT_GT(r.core.loads_executed + r.core.forwarded_loads, 0U);
}

INSTANTIATE_TEST_SUITE_P(
    AcrossLsqsAndWorkloads, LsqWorkloadProperty,
    ::testing::Combine(
        ::testing::Values(LsqChoice::kConventional, LsqChoice::kUnbounded,
                          LsqChoice::kArb, LsqChoice::kSamie),
        ::testing::Values("ammp", "swim", "gcc", "mcf", "facerec", "crafty",
                          "sixtrack"),
        ::testing::Values(1ULL, 42ULL)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      return std::string(lsq_choice_name(std::get<0>(pinfo.param))) + "_" +
             std::get<1>(pinfo.param) + "_s" +
             std::to_string(std::get<2>(pinfo.param));
    });

// --- P4: energy dominance on bank-friendly programs ------------------------
class EnergyDominance : public ::testing::TestWithParam<std::string> {};

TEST_P(EnergyDominance, SamieUsesLessLsqEnergy) {
  SimConfig samie = paper_config(LsqChoice::kSamie);
  SimConfig conv = paper_config(LsqChoice::kConventional);
  samie.instructions = conv.instructions = 15'000;
  const SimResult rs = run_program(samie, GetParam());
  const SimResult rc = run_program(conv, GetParam());
  EXPECT_LT(rs.lsq_energy_nj, rc.lsq_energy_nj);
  EXPECT_LT(rs.dcache_energy_nj, rc.dcache_energy_nj);
  EXPECT_LT(rs.dtlb_energy_nj, rc.dtlb_energy_nj);
}

INSTANTIATE_TEST_SUITE_P(FriendlyPrograms, EnergyDominance,
                         ::testing::Values("swim", "applu", "gzip", "gcc",
                                           "wupwise", "lucas", "galgel"));

// --- P6: determinism under the parallel runner -----------------------------
TEST(DeterminismProperty, ParallelEqualsSequentialForEveryLsq) {
  std::vector<Job> jobs;
  for (const LsqChoice c : {LsqChoice::kConventional, LsqChoice::kArb,
                            LsqChoice::kSamie}) {
    SimConfig cfg = paper_config(c);
    cfg.instructions = 8'000;
    jobs.push_back(Job{"equake", cfg, lsq_choice_name(c)});
  }
  const auto a = run_jobs(jobs, 1);
  const auto b = run_jobs(jobs, 3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(a[i].result.core.cycles, b[i].result.core.cycles) << i;
    EXPECT_DOUBLE_EQ(a[i].result.lsq_energy_nj, b[i].result.lsq_energy_nj) << i;
  }
}

// --- sizing sweep: capacity monotonicity -----------------------------------
class SharedSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SharedSizeSweep, MoreSharedEntriesNeverIncreaseBufferPressure) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.instructions = 12'000;
  cfg.samie.shared_entries = GetParam();
  const SimResult r = run_program(cfg, "apsi");
  EXPECT_EQ(r.core.value_mismatches, 0U);
  // Record for the monotonicity check below via a static table.
  static std::map<std::uint32_t, double> pressure;
  pressure[GetParam()] = r.buffer_nonempty_frac;
  for (auto smaller = pressure.begin(); smaller != pressure.end(); ++smaller) {
    for (auto larger = std::next(smaller); larger != pressure.end(); ++larger) {
      EXPECT_LE(larger->second, smaller->second + 0.05)
          << "shared=" << larger->first << " vs " << smaller->first;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SharedSizeSweep,
                         ::testing::Values(2U, 4U, 8U, 16U, 32U));

// --- slot-count sweep: reuse monotonicity -----------------------------------
class SlotSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlotSweep, RunsCleanAcrossSlotCounts) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.instructions = 12'000;
  cfg.samie.slots_per_entry = GetParam();
  const SimResult r = run_program(cfg, "swim");
  EXPECT_EQ(r.core.value_mismatches, 0U);
  EXPECT_EQ(r.core.committed, cfg.instructions);
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweep, ::testing::Values(1U, 2U, 4U, 8U, 16U));

// --- bank-count sweep --------------------------------------------------------
class BankSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BankSweep, RunsCleanAcrossBankCounts) {
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.instructions = 12'000;
  cfg.samie.banks = GetParam();
  const SimResult r = run_program(cfg, "equake");
  EXPECT_EQ(r.core.value_mismatches, 0U);
  EXPECT_EQ(r.core.committed, cfg.instructions);
}

INSTANTIATE_TEST_SUITE_P(Banks, BankSweep,
                         ::testing::Values(8U, 16U, 32U, 64U, 128U));

// --- ARB geometry sweep (Figure 1 grid never breaks) -------------------------
class ArbGeometry
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(ArbGeometry, RunsCleanAcrossTheFigure1Grid) {
  SimConfig cfg = paper_config(LsqChoice::kArb);
  cfg.instructions = 10'000;
  cfg.arb.banks = GetParam().first;
  cfg.arb.rows_per_bank = GetParam().second;
  cfg.arb.max_inflight = 128;
  const SimResult r = run_program(cfg, "twolf");
  EXPECT_EQ(r.core.value_mismatches, 0U);
  EXPECT_EQ(r.core.committed, cfg.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArbGeometry,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{1, 128},
                      std::pair<std::uint32_t, std::uint32_t>{2, 64},
                      std::pair<std::uint32_t, std::uint32_t>{4, 32},
                      std::pair<std::uint32_t, std::uint32_t>{8, 16},
                      std::pair<std::uint32_t, std::uint32_t>{16, 8},
                      std::pair<std::uint32_t, std::uint32_t>{32, 4},
                      std::pair<std::uint32_t, std::uint32_t>{64, 2},
                      std::pair<std::uint32_t, std::uint32_t>{128, 1}));

}  // namespace
}  // namespace samie::sim
