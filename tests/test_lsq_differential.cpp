// Differential / oracle testing of the LSQ implementations.
//
// A randomized driver applies identical event sequences (dispatch,
// address-ready, store-data-ready, commit, squash, drain) to the
// conventional LSQ, the ARB and the SAMIE-LSQ, and checks every placed,
// ordering-eligible load's plan against a reference model:
//
//   * if the youngest older overlapping *placed* store fully covers the
//     load, the plan must name exactly that store (ForwardReady/Wait
//     according to its data state);
//   * if it overlaps partially, the plan must be WaitCommit on it;
//   * if nothing overlaps, the plan must be CacheAccess.
//
// All three organizations must agree with the reference — and therefore
// with each other — on every query, across thousands of randomized
// states. This pins the disambiguation logic independently of the core.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"

namespace samie::lsq {
namespace {

struct RefOp {
  InstSeq seq = kNoInst;
  Addr addr = 0;
  std::uint8_t size = 0;
  bool is_load = false;
  bool placed = false;
  bool data_ready = false;
};

/// Reference disambiguator: youngest older overlapping placed store.
struct Reference {
  std::map<InstSeq, RefOp> ops;

  LoadPlan plan(InstSeq load_seq) const {
    const RefOp& l = ops.at(load_seq);
    const RefOp* best = nullptr;
    for (const auto& [s, op] : ops) {
      if (op.is_load || !op.placed || s >= load_seq) continue;
      if (ranges_overlap(l.addr, l.size, op.addr, op.size)) {
        if (best == nullptr || op.seq > best->seq) best = &op;
      }
    }
    LoadPlan p;
    if (best == nullptr) return p;
    p.store = best->seq;
    if (!range_covers(l.addr, l.size, best->addr, best->size)) {
      p.kind = LoadPlan::Kind::kWaitCommit;
    } else if (best->data_ready) {
      p.kind = LoadPlan::Kind::kForwardReady;
    } else {
      p.kind = LoadPlan::Kind::kForwardWait;
    }
    return p;
  }
};

class LsqDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsqDifferential, AllQueuesMatchTheReferenceModel) {
  Xoshiro256 rng(GetParam());

  // Generous geometries so capacity never interferes with the semantics
  // under test (capacity behaviour has its own suites).
  auto conv = std::make_unique<ConventionalLsq>(
      ConventionalLsqConfig{.entries = 256, .unbounded = false}, nullptr);
  auto arb = std::make_unique<ArbLsq>(ArbConfig{
      .banks = 4, .rows_per_bank = 64, .max_inflight = 256, .line_bytes = 32});
  auto samie = std::make_unique<SamieLsq>(
      SamieConfig{.banks = 4,
                  .entries_per_bank = 8,
                  .slots_per_entry = 8,
                  .shared_entries = 16,
                  .unbounded_shared = false,
                  .addr_buffer_slots = 64,
                  .drain_width = 4,
                  .line_bytes = 32,
                  .l1d_sets = 4},
      nullptr);
  std::vector<LoadStoreQueue*> queues = {conv.get(), arb.get(), samie.get()};

  Reference ref;
  InstSeq next_seq = 1;
  std::vector<InstSeq> dispatched_unplaced;  // age-ordered
  std::vector<InstSeq> placed_uncommitted;   // age-ordered

  auto check_all_loads = [&] {
    for (InstSeq s : placed_uncommitted) {
      const RefOp& op = ref.ops.at(s);
      if (!op.is_load) continue;
      const LoadPlan expect = ref.plan(s);
      for (LoadStoreQueue* q : queues) {
        if (!q->is_placed(s)) continue;  // buffered in SAMIE/ARB: no plan yet
        const LoadPlan got = q->plan_load(s);
        // The plan may only be compared when the queue has the same
        // information as the reference: the reference store must be
        // placed in this queue too (SAMIE can buffer a store the
        // reference already counts).
        if (expect.store != kNoInst && !q->is_placed(expect.store)) continue;
        ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(expect.kind))
            << "load " << s << " seed " << GetParam();
        ASSERT_EQ(got.store, expect.store) << "load " << s;
      }
    }
  };

  for (int step = 0; step < 1200; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      // Dispatch + address-ready for a new op (addresses in a small pool
      // of lines so overlaps are frequent).
      const bool is_load = rng.chance(0.55);
      const Addr line = rng.below(8);
      const Addr offset = rng.below(4) * 8;
      const std::uint8_t size = rng.chance(0.3) ? 4 : 8;
      const Addr addr = line * 32 + offset;
      const InstSeq seq = next_seq++;
      bool ok = true;
      for (LoadStoreQueue* q : queues) ok = ok && q->can_dispatch(is_load);
      if (!ok) continue;
      for (LoadStoreQueue* q : queues) q->on_dispatch(seq, is_load);
      RefOp op{seq, addr, size, is_load, false, false};
      const MemOpDesc desc{seq, addr, size, is_load, false};
      bool placed_everywhere = true;
      for (LoadStoreQueue* q : queues) {
        if (q->on_address_ready(desc).status != Placement::Status::kPlaced) {
          placed_everywhere = false;
        }
      }
      op.placed = true;  // the reference sees the address immediately
      ref.ops[seq] = op;
      if (placed_everywhere) {
        placed_uncommitted.push_back(seq);
      } else {
        // Rare with these geometries; retried below via drain.
        dispatched_unplaced.push_back(seq);
      }
    } else if (roll < 0.60 && !placed_uncommitted.empty()) {
      // A store's data arrives (only for ops placed in every queue).
      const std::size_t i = rng.below(placed_uncommitted.size());
      RefOp& op = ref.ops.at(placed_uncommitted[i]);
      if (!op.is_load && !op.data_ready) {
        op.data_ready = true;
        for (LoadStoreQueue* q : queues) q->on_store_data_ready(op.seq);
      }
    } else if (roll < 0.85 && !placed_uncommitted.empty() &&
               (dispatched_unplaced.empty() ||
                placed_uncommitted.front() < dispatched_unplaced.front())) {
      // Commit the globally oldest op (in-order; stores need data first).
      const InstSeq oldest = placed_uncommitted.front();
      RefOp& op = ref.ops.at(oldest);
      if (!op.is_load && !op.data_ready) {
        op.data_ready = true;
        for (LoadStoreQueue* q : queues) q->on_store_data_ready(oldest);
      }
      for (LoadStoreQueue* q : queues) q->on_commit(oldest);
      placed_uncommitted.erase(placed_uncommitted.begin());
      ref.ops.erase(oldest);
    } else if (!placed_uncommitted.empty() || !dispatched_unplaced.empty()) {
      // Squash a random suffix.
      const InstSeq cut = 1 + rng.below(next_seq);
      for (LoadStoreQueue* q : queues) q->squash_from(cut);
      std::erase_if(placed_uncommitted, [&](InstSeq s) { return s >= cut; });
      std::erase_if(dispatched_unplaced, [&](InstSeq s) { return s >= cut; });
      for (auto it = ref.ops.lower_bound(cut); it != ref.ops.end();) {
        it = ref.ops.erase(it);
      }
      next_seq = std::max<InstSeq>(cut, 1);
    }

    // Drain buffered ops each step.
    for (LoadStoreQueue* q : queues) {
      std::vector<InstSeq> placed;
      q->drain(placed);
      for (InstSeq s : placed) {
        auto it = std::find(dispatched_unplaced.begin(),
                            dispatched_unplaced.end(), s);
        if (it != dispatched_unplaced.end()) {
          dispatched_unplaced.erase(it);
          placed_uncommitted.insert(
              std::upper_bound(placed_uncommitted.begin(),
                               placed_uncommitted.end(), s),
              s);
        }
      }
    }
    check_all_loads();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsqDifferential,
                         ::testing::Values(1ULL, 7ULL, 13ULL, 101ULL, 9999ULL,
                                           424242ULL));

}  // namespace
}  // namespace samie::lsq
