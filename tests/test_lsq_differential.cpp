// Differential / oracle testing of the LSQ implementations.
//
// A randomized driver applies identical event sequences (dispatch,
// address-ready, store-data-ready, commit, squash, drain) to the
// conventional LSQ, the ARB and the SAMIE-LSQ, and checks every placed,
// ordering-eligible load's plan against a reference model:
//
//   * if the youngest older overlapping *placed* store fully covers the
//     load, the plan must name exactly that store (ForwardReady/Wait
//     according to its data state);
//   * if it overlaps partially, the plan must be WaitCommit on it;
//   * if nothing overlaps, the plan must be CacheAccess.
//
// All three organizations must agree with the reference — and therefore
// with each other — on every query, across thousands of randomized
// states. This pins the disambiguation logic independently of the core.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"

namespace samie::lsq {
namespace {

struct RefOp {
  InstSeq seq = kNoInst;
  Addr addr = 0;
  std::uint8_t size = 0;
  bool is_load = false;
  bool placed = false;
  bool data_ready = false;
};

/// Reference disambiguator: youngest older overlapping placed store.
struct Reference {
  std::map<InstSeq, RefOp> ops;

  LoadPlan plan(InstSeq load_seq) const {
    const RefOp& l = ops.at(load_seq);
    const RefOp* best = nullptr;
    for (const auto& [s, op] : ops) {
      if (op.is_load || !op.placed || s >= load_seq) continue;
      if (ranges_overlap(l.addr, l.size, op.addr, op.size)) {
        if (best == nullptr || op.seq > best->seq) best = &op;
      }
    }
    LoadPlan p;
    if (best == nullptr) return p;
    p.store = best->seq;
    if (!range_covers(l.addr, l.size, best->addr, best->size)) {
      p.kind = LoadPlan::Kind::kWaitCommit;
    } else if (best->data_ready) {
      p.kind = LoadPlan::Kind::kForwardReady;
    } else {
      p.kind = LoadPlan::Kind::kForwardWait;
    }
    return p;
  }
};

class LsqDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsqDifferential, AllQueuesMatchTheReferenceModel) {
  Xoshiro256 rng(GetParam());

  // Generous geometries so capacity never interferes with the semantics
  // under test (capacity behaviour has its own suites).
  auto conv = std::make_unique<ConventionalLsq>(
      ConventionalLsqConfig{.entries = 256, .unbounded = false}, nullptr);
  auto arb = std::make_unique<ArbLsq>(ArbConfig{
      .banks = 4, .rows_per_bank = 64, .max_inflight = 256, .line_bytes = 32});
  auto samie = std::make_unique<SamieLsq>(
      SamieConfig{.banks = 4,
                  .entries_per_bank = 8,
                  .slots_per_entry = 8,
                  .shared_entries = 16,
                  .unbounded_shared = false,
                  .addr_buffer_slots = 64,
                  .drain_width = 4,
                  .line_bytes = 32,
                  .l1d_sets = 4},
      nullptr);
  std::vector<LoadStoreQueue*> queues = {conv.get(), arb.get(), samie.get()};

  Reference ref;
  InstSeq next_seq = 1;
  std::vector<InstSeq> dispatched_unplaced;  // age-ordered
  std::vector<InstSeq> placed_uncommitted;   // age-ordered

  auto check_all_loads = [&] {
    for (InstSeq s : placed_uncommitted) {
      const RefOp& op = ref.ops.at(s);
      if (!op.is_load) continue;
      const LoadPlan expect = ref.plan(s);
      for (LoadStoreQueue* q : queues) {
        if (!q->is_placed(s)) continue;  // buffered in SAMIE/ARB: no plan yet
        const LoadPlan got = q->plan_load(s);
        // The plan may only be compared when the queue has the same
        // information as the reference: the reference store must be
        // placed in this queue too (SAMIE can buffer a store the
        // reference already counts).
        if (expect.store != kNoInst && !q->is_placed(expect.store)) continue;
        ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(expect.kind))
            << "load " << s << " seed " << GetParam();
        ASSERT_EQ(got.store, expect.store) << "load " << s;
      }
    }
  };

  for (int step = 0; step < 1200; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      // Dispatch + address-ready for a new op (addresses in a small pool
      // of lines so overlaps are frequent).
      const bool is_load = rng.chance(0.55);
      const Addr line = rng.below(8);
      const Addr offset = rng.below(4) * 8;
      const std::uint8_t size = rng.chance(0.3) ? 4 : 8;
      const Addr addr = line * 32 + offset;
      const InstSeq seq = next_seq++;
      bool ok = true;
      for (LoadStoreQueue* q : queues) ok = ok && q->can_dispatch(is_load);
      if (!ok) continue;
      for (LoadStoreQueue* q : queues) q->on_dispatch(seq, is_load);
      RefOp op{seq, addr, size, is_load, false, false};
      const MemOpDesc desc{seq, addr, size, is_load, false};
      bool placed_everywhere = true;
      for (LoadStoreQueue* q : queues) {
        if (q->on_address_ready(desc).status != Placement::Status::kPlaced) {
          placed_everywhere = false;
        }
      }
      op.placed = true;  // the reference sees the address immediately
      ref.ops[seq] = op;
      if (placed_everywhere) {
        placed_uncommitted.push_back(seq);
      } else {
        // Rare with these geometries; retried below via drain.
        dispatched_unplaced.push_back(seq);
      }
    } else if (roll < 0.60 && !placed_uncommitted.empty()) {
      // A store's data arrives (only for ops placed in every queue).
      const std::size_t i = rng.below(placed_uncommitted.size());
      RefOp& op = ref.ops.at(placed_uncommitted[i]);
      if (!op.is_load && !op.data_ready) {
        op.data_ready = true;
        for (LoadStoreQueue* q : queues) q->on_store_data_ready(op.seq);
      }
    } else if (roll < 0.85 && !placed_uncommitted.empty() &&
               (dispatched_unplaced.empty() ||
                placed_uncommitted.front() < dispatched_unplaced.front())) {
      // Commit the globally oldest op (in-order; stores need data first).
      const InstSeq oldest = placed_uncommitted.front();
      RefOp& op = ref.ops.at(oldest);
      if (!op.is_load && !op.data_ready) {
        op.data_ready = true;
        for (LoadStoreQueue* q : queues) q->on_store_data_ready(oldest);
      }
      for (LoadStoreQueue* q : queues) q->on_commit(oldest);
      placed_uncommitted.erase(placed_uncommitted.begin());
      ref.ops.erase(oldest);
    } else if (!placed_uncommitted.empty() || !dispatched_unplaced.empty()) {
      // Squash a random suffix.
      const InstSeq cut = 1 + rng.below(next_seq);
      for (LoadStoreQueue* q : queues) q->squash_from(cut);
      std::erase_if(placed_uncommitted, [&](InstSeq s) { return s >= cut; });
      std::erase_if(dispatched_unplaced, [&](InstSeq s) { return s >= cut; });
      for (auto it = ref.ops.lower_bound(cut); it != ref.ops.end();) {
        it = ref.ops.erase(it);
      }
      next_seq = std::max<InstSeq>(cut, 1);
    }

    // Drain buffered ops each step.
    for (LoadStoreQueue* q : queues) {
      std::vector<InstSeq> placed;
      q->drain(placed);
      for (InstSeq s : placed) {
        auto it = std::find(dispatched_unplaced.begin(),
                            dispatched_unplaced.end(), s);
        if (it != dispatched_unplaced.end()) {
          dispatched_unplaced.erase(it);
          placed_uncommitted.insert(
              std::upper_bound(placed_uncommitted.begin(),
                               placed_uncommitted.end(), s),
              s);
        }
      }
    }
    check_all_loads();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsqDifferential,
                         ::testing::Values(1ULL, 7ULL, 13ULL, 101ULL, 9999ULL,
                                           424242ULL));

// ---------------------------------------------------------------------------
// Randomized SAMIE-vs-conventional equivalence sweep.
//
// A tighter SAMIE geometry than the reference test above, so placements
// regularly overflow into the SharedLSQ and the AddrBuffer, exercising the
// bitmask search, the ring-indexed in-flight table, the AddrBuffer ring
// and the drain path. The conventional LSQ (placement never fails) acts as
// the oracle: whenever a load is placed in both queues and its reference
// store (if any) is also placed in both, the two plans must agree exactly.
// Squashes and in-order commits are interleaved aggressively, and after
// every step the O(1) occupancy counters are checked against a
// from-scratch recount (the bitmask-refactor regression test).
// ---------------------------------------------------------------------------

class SamieVsConventional : public ::testing::TestWithParam<std::uint64_t> {};

namespace {

void expect_occupancy_counters_match(const SamieLsq& samie) {
  const OccupancySample fast = samie.occupancy();
  const OccupancySample slow = samie.recount_occupancy();
  ASSERT_EQ(fast.distrib_entries_used, slow.distrib_entries_used);
  ASSERT_EQ(fast.distrib_slots_used, slow.distrib_slots_used);
  ASSERT_EQ(fast.distrib_banks_full, slow.distrib_banks_full);
  ASSERT_EQ(fast.distrib_entries_full, slow.distrib_entries_full);
  ASSERT_EQ(fast.shared_entries_used, slow.shared_entries_used);
  ASSERT_EQ(fast.shared_slots_used, slow.shared_slots_used);
  ASSERT_EQ(fast.shared_entries_full, slow.shared_entries_full);
  ASSERT_EQ(fast.buffer_used, slow.buffer_used);
}

}  // namespace

TEST_P(SamieVsConventional, RandomizedEquivalenceUnderPressure) {
  Xoshiro256 rng(GetParam());

  ConventionalLsq conv(ConventionalLsqConfig{.entries = 512, .unbounded = false},
                       nullptr);
  SamieLsq samie(SamieConfig{.banks = 2,
                             .entries_per_bank = 1,
                             .slots_per_entry = 2,
                             .shared_entries = 2,
                             .unbounded_shared = false,
                             .addr_buffer_slots = 16,
                             .drain_width = 2,
                             .line_bytes = 32,
                             .l1d_sets = 2,
                             .clear_stale_present_bits = false,
                             // Tiny window: the ring-indexed table must
                             // grow on live-residue collisions and stay
                             // correct.
                             .seq_window_hint = 8},
                 nullptr);

  std::map<InstSeq, RefOp> ops;  // in flight (placed in conv = addr known)
  std::vector<InstSeq> order;    // age-ordered in-flight seqs
  InstSeq next_seq = 1;

  auto samie_headroom_ok = [&] {
    // Headroom is consistent with the gate at every step (the former
    // underflow bug made it wrap to ~4e9 when the buffer was full).
    const std::uint32_t headroom = samie.placement_headroom();
    EXPECT_LE(headroom, samie.config().addr_buffer_slots);
    EXPECT_EQ(headroom > 0, samie.can_compute_address());
  };

  auto check_plans = [&] {
    for (InstSeq s : order) {
      const RefOp& op = ops.at(s);
      if (!op.is_load) continue;
      if (!samie.is_placed(s) || !conv.is_placed(s)) continue;
      const LoadPlan expect = conv.plan_load(s);
      if (expect.store != kNoInst && !samie.is_placed(expect.store)) continue;
      const LoadPlan got = samie.plan_load(s);
      ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(expect.kind))
          << "load " << s << " seed " << GetParam();
      ASSERT_EQ(got.store, expect.store) << "load " << s << " seed "
                                         << GetParam();
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.50) {
      // New memory op; SAMIE may buffer (kBuffered) where the generous
      // conventional queue always places.
      if (!samie.can_compute_address()) {
        // The agen gate: headroom exhausted, no new address computations.
        samie.note_agen_gated();
      } else if (conv.can_dispatch(true)) {
        const bool is_load = rng.chance(0.5);
        const Addr line = rng.below(6);
        const Addr offset = rng.below(4) * 8;
        const std::uint8_t size = rng.chance(0.3) ? 4 : 8;
        const MemOpDesc desc{next_seq, line * 32 + offset, size, is_load,
                             false};
        conv.on_dispatch(next_seq, is_load);
        samie.on_dispatch(next_seq, is_load);
        const auto conv_placed = conv.on_address_ready(desc);
        ASSERT_EQ(static_cast<int>(conv_placed.status),
                  static_cast<int>(Placement::Status::kPlaced));
        const auto samie_placed = samie.on_address_ready(desc);
        ASSERT_NE(static_cast<int>(samie_placed.status),
                  static_cast<int>(Placement::Status::kRejected))
            << "rejected despite the agen gate, seed " << GetParam();
        ops[next_seq] = RefOp{next_seq, desc.addr, size, is_load, true, false};
        order.push_back(next_seq);
        ++next_seq;
      }
    } else if (roll < 0.62 && !order.empty()) {
      // Store data arrives (both queues must know the op).
      const InstSeq s = order[rng.below(order.size())];
      RefOp& op = ops.at(s);
      if (!op.is_load && !op.data_ready && samie.is_placed(s)) {
        op.data_ready = true;
        conv.on_store_data_ready(s);
        samie.on_store_data_ready(s);
      }
    } else if (roll < 0.85 && !order.empty()) {
      // Commit the oldest op if it is placed everywhere (in-order).
      const InstSeq oldest = order.front();
      if (samie.is_placed(oldest)) {
        RefOp& op = ops.at(oldest);
        if (!op.is_load && !op.data_ready) {
          op.data_ready = true;
          conv.on_store_data_ready(oldest);
          samie.on_store_data_ready(oldest);
        }
        conv.on_commit(oldest);
        samie.on_commit(oldest);
        order.erase(order.begin());
        ops.erase(oldest);
      }
    } else if (!order.empty()) {
      // Squash a random suffix.
      const InstSeq cut = order[rng.below(order.size())];
      conv.squash_from(cut);
      samie.squash_from(cut);
      std::erase_if(order, [&](InstSeq s) { return s >= cut; });
      for (auto it = ops.lower_bound(cut); it != ops.end();) {
        it = ops.erase(it);
      }
      next_seq = std::max<InstSeq>(cut, 1);
    }

    // Drain SAMIE's AddrBuffer every step.
    std::vector<InstSeq> placed;
    samie.drain(placed);
    for (InstSeq s : placed) {
      ASSERT_TRUE(ops.count(s) != 0) << "drained unknown seq " << s;
      ASSERT_TRUE(samie.is_placed(s));
    }

    samie_headroom_ok();
    ASSERT_NO_FATAL_FAILURE(expect_occupancy_counters_match(samie));
    check_plans();
  }

  // The geometry is tight enough that the sweep must have exercised the
  // AddrBuffer (and therefore the drain/ring paths).
  EXPECT_GT(samie.buffered_placements(), 0U) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamieVsConventional,
                         ::testing::Values(3ULL, 17ULL, 271ULL, 65537ULL,
                                           31337ULL, 987654321ULL));

// ---------------------------------------------------------------------------
// O(1) occupancy counters vs from-scratch recount, across every structural
// transition: fills into distrib + shared, AddrBuffer overflow, drains,
// suffix squashes, and a full drain-out at the end.
// ---------------------------------------------------------------------------
TEST(SamieOccupancyCounters, MatchRecountAcrossLifecycle) {
  Xoshiro256 rng(99);
  SamieLsq samie(SamieConfig{.banks = 4,
                             .entries_per_bank = 2,
                             .slots_per_entry = 2,
                             .shared_entries = 2,
                             .unbounded_shared = false,
                             .addr_buffer_slots = 8,
                             .drain_width = 1,
                             .line_bytes = 32,
                             .l1d_sets = 4},
                 nullptr);

  std::vector<InstSeq> live;
  InstSeq next_seq = 1;
  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.55 && samie.can_compute_address()) {
      const MemOpDesc desc{next_seq, rng.below(16) * 8,
                           8, rng.chance(0.5), false};
      const auto p = samie.on_address_ready(desc);
      ASSERT_NE(static_cast<int>(p.status),
                static_cast<int>(Placement::Status::kRejected));
      live.push_back(next_seq);
      ++next_seq;
    } else if (roll < 0.80 && !live.empty()) {
      const InstSeq oldest = live.front();
      if (samie.is_placed(oldest)) {
        samie.on_commit(oldest);
        live.erase(live.begin());
      }
    } else if (!live.empty()) {
      const InstSeq cut = live[rng.below(live.size())];
      samie.squash_from(cut);
      std::erase_if(live, [&](InstSeq s) { return s >= cut; });
    }
    std::vector<InstSeq> placed;
    samie.drain(placed);
    ASSERT_NO_FATAL_FAILURE(expect_occupancy_counters_match(samie));
  }

  // Drain out: commit everything placed, squash the rest; all counters
  // must return to zero and still match the recount.
  samie.squash_from(0);
  ASSERT_NO_FATAL_FAILURE(expect_occupancy_counters_match(samie));
  const OccupancySample end = samie.occupancy();
  EXPECT_EQ(end.distrib_entries_used, 0U);
  EXPECT_EQ(end.distrib_slots_used, 0U);
  EXPECT_EQ(end.shared_entries_used, 0U);
  EXPECT_EQ(end.shared_slots_used, 0U);
  EXPECT_EQ(end.buffer_used, 0U);
}

// The former placement_headroom() underflowed when the buffer held more
// ops than a (shrunken) addr_buffer_slots claims; it must saturate at 0
// and agree with can_compute_address().
TEST(SamiePlacementHeadroom, SaturatesWhenBufferFull) {
  SamieLsq samie(SamieConfig{.banks = 1,
                             .entries_per_bank = 1,
                             .slots_per_entry = 1,
                             .shared_entries = 1,
                             .unbounded_shared = false,
                             .addr_buffer_slots = 2,
                             .drain_width = 1,
                             .line_bytes = 32,
                             .l1d_sets = 1},
                 nullptr);
  // Fill the single distrib slot + single shared slot, then overflow two
  // ops into the AddrBuffer (capacity 2).
  for (InstSeq s = 1; s <= 4; ++s) {
    ASSERT_NE(static_cast<int>(
                  samie.on_address_ready(MemOpDesc{s, s * 64, 8, true, false})
                      .status),
              static_cast<int>(Placement::Status::kRejected));
  }
  EXPECT_EQ(samie.placement_headroom(), 0U);
  EXPECT_FALSE(samie.can_compute_address());
  // A fifth placement must be rejected, not wrapped into a huge headroom.
  EXPECT_EQ(static_cast<int>(
                samie.on_address_ready(MemOpDesc{5, 5 * 64, 8, true, false})
                    .status),
            static_cast<int>(Placement::Status::kRejected));
  EXPECT_EQ(samie.placement_headroom(), 0U);
}

}  // namespace
}  // namespace samie::lsq
