// Differential validation of the event-driven cycle engine: the
// quiescent-cycle fast-forward must be *bit-identical* to the always-step
// loop (`CoreConfig::always_step`, samie_sim --no-skip) on every
// simulation statistic — cycles, IPC, every counter, every energy and
// area double — across all three LSQ organizations and under squash /
// full-flush / drain pressure.
//
// The engine skips a cycle only when the work ledgers prove every stage
// a no-op, so any divergence here means a ledger lied (a stage could
// have acted) or a wake source was missed (the jump overshot an event).
// The pressure configurations deliberately shrink queue geometries so
// mispredict squashes, deadlock-avoidance full flushes and AddrBuffer /
// retry-FIFO drains all fire; each scenario asserts the pressure it is
// named for actually occurred, so a regression cannot silently pass by
// never exercising the path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/fu_pool.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/sim/sim_config.h"
#include "src/sim/simulator.h"

namespace samie::sim {
namespace {

/// Runs `cfg` twice — event-driven and always-step — and asserts every
/// simulation statistic matches exactly (doubles compared bit-for-bit).
/// Returns the event-driven result for scenario-specific assertions.
/// Both runs enable CoreConfig::check_quiescence, so every stepped cycle
/// of every scenario also asserts the incremental wake ledger against
/// the from-scratch quiescent() predicate (the core throws on the first
/// disagreement, failing the test loudly).
SimResult expect_engines_identical(SimConfig cfg, const std::string& program,
                                   std::uint64_t insts) {
  cfg.instructions = insts;
  cfg.core.check_quiescence = true;
  cfg.core.always_step = false;
  const SimResult fast = run_program(cfg, program);
  cfg.core.always_step = true;
  const SimResult step = run_program(cfg, program);

  const std::string what =
      std::string(lsq_choice_name(cfg.lsq)) + "/" + program;
  EXPECT_EQ(step.core.quiescent_cycles_skipped, 0U) << what;
  EXPECT_EQ(step.core.fast_forwards, 0U) << what;

  // Timing.
  EXPECT_EQ(fast.core.cycles, step.core.cycles) << what;
  EXPECT_EQ(fast.core.committed, step.core.committed) << what;
  EXPECT_EQ(fast.core.ipc, step.core.ipc) << what;
  // Recovery and LSQ counters.
  EXPECT_EQ(fast.core.mispredict_squashes, step.core.mispredict_squashes) << what;
  EXPECT_EQ(fast.core.deadlock_flushes, step.core.deadlock_flushes) << what;
  EXPECT_EQ(fast.core.loads_executed, step.core.loads_executed) << what;
  EXPECT_EQ(fast.core.stores_committed, step.core.stores_committed) << what;
  EXPECT_EQ(fast.core.forwarded_loads, step.core.forwarded_loads) << what;
  EXPECT_EQ(fast.core.partial_forward_waits, step.core.partial_forward_waits)
      << what;
  EXPECT_EQ(fast.core.agen_gated, step.core.agen_gated) << what;
  EXPECT_EQ(fast.core.value_mismatches, step.core.value_mismatches) << what;
  EXPECT_EQ(fast.core.dcache_way_known, step.core.dcache_way_known) << what;
  EXPECT_EQ(fast.core.dcache_full, step.core.dcache_full) << what;
  EXPECT_EQ(fast.core.dtlb_accesses, step.core.dtlb_accesses) << what;
  EXPECT_EQ(fast.core.dtlb_cached, step.core.dtlb_cached) << what;
  EXPECT_EQ(fast.core.value_mismatches, 0U) << what << ": ordering bug";
  // Energies (exact double equality: same FP operation sequence).
  EXPECT_EQ(fast.lsq_energy_nj, step.lsq_energy_nj) << what;
  EXPECT_EQ(fast.lsq_distrib_nj, step.lsq_distrib_nj) << what;
  EXPECT_EQ(fast.lsq_shared_nj, step.lsq_shared_nj) << what;
  EXPECT_EQ(fast.lsq_addrbuf_nj, step.lsq_addrbuf_nj) << what;
  EXPECT_EQ(fast.lsq_bus_nj, step.lsq_bus_nj) << what;
  EXPECT_EQ(fast.dcache_energy_nj, step.dcache_energy_nj) << what;
  EXPECT_EQ(fast.dtlb_energy_nj, step.dtlb_energy_nj) << what;
  // Per-cycle occupancy integrals — the part the batched observer replay
  // must keep bit-identical over skipped spans.
  EXPECT_EQ(fast.area_total, step.area_total) << what;
  EXPECT_EQ(fast.area_distrib, step.area_distrib) << what;
  EXPECT_EQ(fast.area_shared, step.area_shared) << what;
  EXPECT_EQ(fast.area_addrbuf, step.area_addrbuf) << what;
  EXPECT_EQ(fast.shared_occupancy_mean, step.shared_occupancy_mean) << what;
  EXPECT_EQ(fast.shared_occupancy_max, step.shared_occupancy_max) << what;
  EXPECT_EQ(fast.buffer_occupancy_mean, step.buffer_occupancy_mean) << what;
  EXPECT_EQ(fast.buffer_nonempty_frac, step.buffer_nonempty_frac) << what;
  // Memory system and branch state (identical access sequences).
  EXPECT_EQ(fast.l1d_hits, step.l1d_hits) << what;
  EXPECT_EQ(fast.l1d_misses, step.l1d_misses) << what;
  EXPECT_EQ(fast.dtlb_hits, step.dtlb_hits) << what;
  EXPECT_EQ(fast.dtlb_misses, step.dtlb_misses) << what;
  EXPECT_EQ(fast.branch_mispredicts, step.branch_mispredicts) << what;
  EXPECT_EQ(fast.branch_lookups, step.branch_lookups) << what;
  return fast;
}

constexpr std::uint64_t kInsts = 30'000;

TEST(EngineDifferential, PaperConfigAllLsqKindsAllProgramsMatch) {
  // The paper configuration over a branchy, a memory-bound and a
  // forwarding-heavy program; mispredict squashes fire everywhere.
  for (const LsqChoice lsq : {LsqChoice::kConventional, LsqChoice::kArb,
                              LsqChoice::kSamie, LsqChoice::kUnbounded}) {
    for (const char* program : {"gcc", "mcf", "ammp"}) {
      const SimResult r =
          expect_engines_identical(paper_config(lsq), program, kInsts);
      EXPECT_GT(r.core.mispredict_squashes, 0U)
          << lsq_choice_name(lsq) << "/" << program
          << ": squash recovery was not exercised";
    }
  }
}

TEST(EngineDifferential, MemoryBoundProgramsActuallyFastForward) {
  // On memory-latency-dominated programs the engine must engage — a
  // conservative-but-never-firing ledger would silently revert the PR.
  const SimResult r = expect_engines_identical(
      paper_config(LsqChoice::kConventional), "mcf", kInsts);
  EXPECT_GT(r.core.quiescent_cycles_skipped, r.core.cycles / 10)
      << "fast-forward never engaged on a memory-bound program";
  EXPECT_GT(r.core.fast_forwards, 0U);
}

TEST(EngineDifferential, SamieUnderAddrBufferPressureWithFullFlushes) {
  // Tiny SAMIE geometry: constant AddrBuffer drains and §3.3
  // deadlock-avoidance full flushes (the checkpointed-recovery path).
  SimConfig cfg = paper_config(LsqChoice::kSamie);
  cfg.samie.banks = 4;
  cfg.samie.entries_per_bank = 1;
  cfg.samie.slots_per_entry = 2;
  cfg.samie.shared_entries = 1;
  cfg.samie.addr_buffer_slots = 4;
  for (const char* program : {"ammp", "mcf", "swim"}) {
    const SimResult r = expect_engines_identical(cfg, program, kInsts);
    EXPECT_GT(r.core.deadlock_flushes, 0U)
        << program << ": full_flush was not exercised";
    EXPECT_GT(r.buffer_nonempty_frac, 0.0)
        << program << ": AddrBuffer drain was not exercised";
  }
}

TEST(EngineDifferential, ArbUnderBankConflictAndFlushPressure) {
  SimConfig cfg = paper_config(LsqChoice::kArb);
  cfg.arb.banks = 2;
  cfg.arb.rows_per_bank = 2;
  cfg.arb.max_inflight = 12;
  for (const char* program : {"ammp", "art"}) {
    const SimResult r = expect_engines_identical(cfg, program, kInsts);
    EXPECT_GT(r.core.deadlock_flushes, 0U)
        << program << ": full_flush was not exercised";
  }
}

TEST(EngineDifferential, ConventionalUnderCapacityPressure) {
  SimConfig cfg = paper_config(LsqChoice::kConventional);
  cfg.conventional.entries = 12;
  for (const char* program : {"gcc", "swim"}) {
    expect_engines_identical(cfg, program, kInsts);
  }
}

// Work-ledger hook contracts. The engine's quiescence proof leans on
// these invariants even where it does not *call* the hook: a busy
// OccupyingPool must never be a hidden wake source (its operation's
// completion is already on the wheel, and any waiter sits in a ready
// queue), and the LSQs must be purely call-driven (next_ready_cycle ==
// kNeverCycle — a time-triggered LSQ would need wiring into
// try_fast_forward's wake computation, like
// MemoryHierarchy::pending_completion_cycle).
TEST(EngineWorkLedger, FuPoolHooksReportBusynessAndFreeCycles) {
  core::OccupyingPool pool(2);
  EXPECT_FALSE(pool.has_pending_work(0));
  EXPECT_EQ(pool.busy_units(0), 0U);
  EXPECT_EQ(pool.next_ready_cycle(5), 5U) << "a free unit is ready now";
  ASSERT_TRUE(pool.try_issue(10, 20));  // busy until 30
  ASSERT_TRUE(pool.try_issue(10, 3));   // busy until 13
  EXPECT_FALSE(pool.try_issue(10, 1));
  EXPECT_EQ(pool.busy_units(10), 2U);
  EXPECT_TRUE(pool.has_pending_work(10));
  EXPECT_EQ(pool.next_ready_cycle(10), 13U) << "earliest unit to free";
  EXPECT_EQ(pool.busy_units(13), 1U) << "busy_until <= now means free";
  EXPECT_EQ(pool.next_ready_cycle(13), 13U);
  EXPECT_EQ(pool.busy_units(30), 0U);
  pool.reset();
  EXPECT_EQ(pool.busy_units(11), 0U);

  core::PipelinedPool pipe(1);
  EXPECT_FALSE(pipe.has_pending_work()) << "saturation lasts one cycle";
  EXPECT_EQ(pipe.next_ready_cycle(7), 7U);
  ASSERT_TRUE(pipe.try_issue());
  EXPECT_EQ(pipe.next_ready_cycle(7), 8U) << "full this cycle, free next";
  pipe.new_cycle();
  EXPECT_EQ(pipe.next_ready_cycle(8), 8U);
}

TEST(EngineWorkLedger, LsqsAreCallDrivenNotTimeTriggered) {
  lsq::ConventionalLsq conv(lsq::ConventionalLsqConfig{}, nullptr);
  lsq::ArbLsq arb(lsq::ArbConfig{});
  lsq::SamieLsq samie(lsq::SamieConfig{}, nullptr);
  EXPECT_EQ(conv.next_ready_cycle(123), kNeverCycle);
  EXPECT_EQ(arb.next_ready_cycle(123), kNeverCycle);
  EXPECT_EQ(samie.next_ready_cycle(123), kNeverCycle);
  EXPECT_FALSE(conv.has_pending_work());
  EXPECT_FALSE(arb.has_pending_work());
  EXPECT_FALSE(samie.has_pending_work());
  // SAMIE: any buffered op is pending work (failed retries charge
  // energy), and it stays pending until the buffer drains.
  lsq::SamieConfig tiny;
  tiny.banks = 1;
  tiny.entries_per_bank = 1;
  tiny.slots_per_entry = 1;
  tiny.shared_entries = 1;
  tiny.addr_buffer_slots = 4;
  lsq::SamieLsq pressed(tiny, nullptr);
  // Distinct lines exhaust the single bank entry + single shared entry;
  // the third op lands in the AddrBuffer.
  using lsq::MemOpDesc;
  pressed.on_address_ready(MemOpDesc{0, 0x000, 8, true, false});
  pressed.on_address_ready(MemOpDesc{1, 0x100, 8, true, false});
  pressed.on_address_ready(MemOpDesc{2, 0x200, 8, true, false});
  EXPECT_TRUE(pressed.has_pending_work());
}

// Quiescence-ledger differential: the incremental dirty-bit ledger must
// agree with the legacy from-scratch predicate on *every stepped cycle*
// (expect_engines_identical turns the in-core cross-check on, so the
// core throws at the first divergent cycle). This sweep drives it
// through the hard cases explicitly: all three LSQ kinds under shrunken
// geometries where mispredict squashes, §3.3 full flushes and
// AddrBuffer / retry-FIFO drain pressure all fire, in both engine
// modes, across randomized workload seeds.
class QuiescenceLedgerSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuiescenceLedgerSeeds, LedgerAgreesWithPredicateUnderPressure) {
  const std::uint64_t seed = GetParam();
  // SAMIE, tiny geometry: constant AddrBuffer pressure + full flushes.
  SimConfig samie = paper_config(LsqChoice::kSamie);
  samie.seed = seed;
  samie.samie.banks = 4;
  samie.samie.entries_per_bank = 1;
  samie.samie.slots_per_entry = 2;
  samie.samie.shared_entries = 1;
  samie.samie.addr_buffer_slots = 4;
  const SimResult sr = expect_engines_identical(samie, "mcf", 20'000);
  EXPECT_GT(sr.core.deadlock_flushes, 0U) << "full_flush not exercised";
  EXPECT_GT(sr.buffer_nonempty_frac, 0.0) << "AddrBuffer drain not exercised";

  // ARB, tiny geometry: bank-conflict retries keep the FIFO hot.
  SimConfig arb = paper_config(LsqChoice::kArb);
  arb.seed = seed;
  arb.arb.banks = 2;
  arb.arb.rows_per_bank = 2;
  arb.arb.max_inflight = 12;
  const SimResult ar = expect_engines_identical(arb, "ammp", 20'000);
  EXPECT_GT(ar.core.deadlock_flushes, 0U) << "full_flush not exercised";

  // Conventional under capacity pressure: dispatch stalls + squashes.
  SimConfig conv = paper_config(LsqChoice::kConventional);
  conv.seed = seed;
  conv.conventional.entries = 12;
  const SimResult cr = expect_engines_identical(conv, "gcc", 20'000);
  EXPECT_GT(cr.core.mispredict_squashes, 0U) << "squash not exercised";
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuiescenceLedgerSeeds,
                         ::testing::Values(3U, 911U, 424242U));

// Randomized sweep: seeds perturb the generated workloads (different
// dependence chains, branch patterns, address streams), so the two
// engines are compared across thousands of distinct squash/stall shapes.
class EngineDifferentialSeeds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EngineDifferentialSeeds, RandomizedWorkloadsMatch) {
  for (const LsqChoice lsq :
       {LsqChoice::kConventional, LsqChoice::kArb, LsqChoice::kSamie}) {
    SimConfig cfg = paper_config(lsq);
    cfg.seed = GetParam();
    expect_engines_identical(cfg, "gcc", 15'000);
    expect_engines_identical(cfg, "mcf", 15'000);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialSeeds,
                         ::testing::Values(7U, 1776U, 31337U));

}  // namespace
}  // namespace samie::sim
