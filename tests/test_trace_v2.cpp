// SAMT v2 round-trip, random access, importer atomicity/resume and
// injected-I/O-fault behavior (src/trace/trace_io.h). The fuzz matrix
// for mutated files lives in test_trace_fuzz.cpp; this file covers the
// *intended* v2 behaviors: exact decode, O(1) range reads off the
// index, the v1<->v2 converter invariants, resumable atomic import, and
// the enospc/torn import faults leaving a tmp but never a final file.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/instruction.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool same_ops(const std::vector<trace::MicroOp>& a,
                            const std::vector<trace::MicroOp>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(trace::MicroOp)) == 0);
}

class TraceV2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_v2_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    trace::clear_io_faults();
  }
  void TearDown() override {
    trace::clear_io_faults();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  /// A generated workload: realistic op mix, excellent delta locality.
  [[nodiscard]] static std::vector<trace::MicroOp> workload(std::size_t n) {
    trace::WorkloadGenerator gen(trace::spec2000_profile("gcc"), 23);
    return gen.generate(n).ops;
  }

  /// Adversarial records: maximal deltas (sign flips across the whole
  /// address space), all op kinds, extreme field values — the varint
  /// encoder's worst case.
  [[nodiscard]] static std::vector<trace::MicroOp> adversarial(std::size_t n) {
    std::vector<trace::MicroOp> ops(n);
    Xoshiro256 rng(0xfeedULL);
    for (std::size_t i = 0; i < n; ++i) {
      trace::MicroOp& op = ops[i];
      op.pc = (i % 2 != 0) ? ~std::uint64_t{0} - rng.below(7) : rng();
      op.mem_addr = rng();
      op.br_target = rng();
      op.value = rng();
      op.op = static_cast<trace::OpClass>(rng.below(10));  // every OpClass
      op.mem_size = static_cast<std::uint8_t>(1u << rng.below(4));
      op.src1 = static_cast<RegId>(rng.below(64));
      op.src2 = static_cast<RegId>(rng.below(64));
      op.dst = static_cast<RegId>(rng.below(64));
      op.taken = rng.below(2) != 0;
    }
    return ops;
  }

  fs::path dir_;
};

TEST_F(TraceV2Test, RoundTripsGeneratedWorkload) {
  const std::vector<trace::MicroOp> ops = workload(10'000);
  const std::string p = path("w.samt");
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       512);
  const trace::TraceV2Reader r(p);
  EXPECT_EQ(r.header().version, trace::kSamtVersion2);
  EXPECT_EQ(r.name(), "gcc");
  EXPECT_EQ(r.record_count(), ops.size());
  EXPECT_EQ(r.block_count(), (ops.size() + 511) / 512);
  const trace::Trace t = r.read_all();
  EXPECT_TRUE(same_ops(t.ops, ops));
  // read_samt_header works on v2 files too (version sniffing for
  // replay autodetect and the sharder).
  EXPECT_EQ(trace::read_samt_header(p).version, trace::kSamtVersion2);
  EXPECT_EQ(trace::read_samt_header(p).count, ops.size());
}

TEST_F(TraceV2Test, RoundTripsAdversarialRecords) {
  // Worst-case deltas must survive encode/decode exactly, including a
  // block size that doesn't divide the record count.
  const std::vector<trace::MicroOp> ops = adversarial(1'000);
  const std::string p = path("adv.samt");
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "adv", 7,
                       96);
  EXPECT_TRUE(same_ops(trace::TraceV2Reader(p).read_all().ops, ops));
}

TEST_F(TraceV2Test, RoundTripsEmptyTrace) {
  const std::string p = path("empty.samt");
  trace::write_samt_v2(p, trace::TraceView(nullptr, 0), "empty", 0);
  const trace::TraceV2Reader r(p);
  EXPECT_EQ(r.record_count(), 0u);
  EXPECT_EQ(r.block_count(), 0u);
  EXPECT_TRUE(r.read_all().ops.empty());
  EXPECT_TRUE(trace::trace_health(p).ok());
}

TEST_F(TraceV2Test, RangeReadsMatchReadAll) {
  const std::vector<trace::MicroOp> ops = workload(5'000);
  const std::string p = path("r.samt");
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       256);
  const trace::TraceV2Reader r(p);
  // Ranges chosen to hit: block-aligned, straddling, single-record,
  // clamped-past-the-end, inverted and empty.
  const std::pair<std::uint64_t, std::uint64_t> ranges[] = {
      {0, 5'000}, {0, 256},    {256, 512},    {100, 4'900}, {255, 257},
      {777, 778}, {4'999, 5'000}, {4'000, 99'999}, {42, 42}, {600, 100}};
  for (const auto& [b, e] : ranges) {
    const std::vector<trace::MicroOp> got = r.read_range(b, e);
    const std::uint64_t lo = std::min<std::uint64_t>(b, ops.size());
    const std::uint64_t hi =
        std::max(lo, std::min<std::uint64_t>(e, ops.size()));
    const std::vector<trace::MicroOp> want(
        ops.begin() + static_cast<std::ptrdiff_t>(lo),
        ops.begin() + static_cast<std::ptrdiff_t>(hi));
    EXPECT_TRUE(same_ops(got, want)) << "range [" << b << ", " << e << ")";
  }
}

TEST_F(TraceV2Test, IndexSeeksAreBlockLocal) {
  // A corrupt interior block must only fail reads whose range touches
  // it — reads over other blocks keep working off the intact index.
  const std::vector<trace::MicroOp> ops = workload(4'096);
  const std::string p = path("seek.samt");
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       512);
  {
    const trace::TraceV2Reader pristine(p);
    ASSERT_EQ(pristine.block_count(), 8u);
    const std::size_t off =
        static_cast<std::size_t>(pristine.index()[5].file_offset) +
        sizeof(trace::SamtBlockHeader) + 1;
    std::ifstream in(p, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes[off] = static_cast<char>(bytes[off] ^ 0x40);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const trace::TraceV2Reader r(p);  // index intact: construction succeeds
  EXPECT_TRUE(same_ops(r.read_range(0, 5 * 512),
                       {ops.begin(), ops.begin() + 5 * 512}));
  EXPECT_TRUE(same_ops(r.read_range(6 * 512, 4'096),
                       {ops.begin() + 6 * 512, ops.end()}));
  try {
    (void)r.read_range(5 * 512, 5 * 512 + 1);
    FAIL() << "read over the corrupt block was accepted";
  } catch (const trace::TraceCorruptError& e) {
    EXPECT_EQ(e.damage, trace::TraceDamage::kInteriorCorrupt);
    EXPECT_EQ(e.block, 5u);
  }
}

TEST_F(TraceV2Test, ResumePicksUpIntactBlocksOfATornTmp) {
  const std::vector<trace::MicroOp> ops = workload(2'000);
  const std::string p = path("resume.samt");
  // First attempt dies between block flushes (writer destroyed without
  // finish(), as a SIGKILL would): the flushed whole blocks survive in
  // the tmp, the 464-record partial block is lost, and no final file is
  // ever published.
  {
    trace::TraceWriterV2 w(p, "gcc", 23, 512);
    w.append(trace::TraceView(ops.data(), ops.size()));
  }
  EXPECT_FALSE(fs::exists(p));
  ASSERT_TRUE(fs::exists(trace::TraceWriterV2::tmp_path_for(p)));

  // Resume: only the records past the durable prefix are re-appended.
  trace::TraceWriterV2 w(p, "gcc", 23, 512, trace::TraceWriterV2::Mode::kResume);
  EXPECT_EQ(w.durable_records(), 1536u);  // 3 whole blocks of 512
  w.append(trace::TraceView(ops.data() + w.durable_records(),
                            ops.size() - w.durable_records()));
  w.finish();
  EXPECT_FALSE(fs::exists(trace::TraceWriterV2::tmp_path_for(p)));
  EXPECT_TRUE(same_ops(trace::TraceV2Reader(p).read_all().ops, ops));

  // The resumed file is byte-identical to a never-interrupted write.
  const std::string q = path("oneshot.samt");
  trace::write_samt_v2(q, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       512);
  std::ifstream fa(p, std::ios::binary);
  std::ifstream fb(q, std::ios::binary);
  const std::string ba((std::istreambuf_iterator<char>(fa)),
                       std::istreambuf_iterator<char>());
  const std::string bb((std::istreambuf_iterator<char>(fb)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(ba, bb);
}

TEST_F(TraceV2Test, EnospcFaultKeepsTmpNeverFinal) {
  const std::vector<trace::MicroOp> ops = workload(600);
  const std::string p = path("enospc.samt");
  trace::set_io_fault(p, {trace::IoFault::Kind::kEnospcOnImport, 0});
  EXPECT_THROW(
      trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc",
                           23, 256),
      trace::TraceFormatError);
  EXPECT_FALSE(fs::exists(p)) << "a failed import must not publish a file";
  EXPECT_TRUE(fs::exists(trace::TraceWriterV2::tmp_path_for(p)));
  // The fault was consumed: a retry on the same path succeeds.
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       256);
  EXPECT_TRUE(same_ops(trace::TraceV2Reader(p).read_all().ops, ops));
}

TEST_F(TraceV2Test, V1ImportFaultIsAtomicToo) {
  // The v1 writer consumes the same import faults; it removes its tmp
  // (v1 has no resume) and never publishes the final file.
  const std::vector<trace::MicroOp> ops = workload(300);
  const std::string p = path("v1.samt");
  trace::set_io_fault(p, {trace::IoFault::Kind::kEnospcOnImport, 0});
  EXPECT_THROW(
      trace::write_samt(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23),
      trace::TraceFormatError);
  EXPECT_FALSE(fs::exists(p));
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(TraceV2Test, ShortReadFaultReadsAsTornTail) {
  const std::vector<trace::MicroOp> ops = workload(1'000);
  const std::string p = path("short.samt");
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       256);
  trace::set_io_fault(p, {trace::IoFault::Kind::kShortRead, 100});
  try {
    const trace::TraceV2Reader r(p);
    FAIL() << "short read was accepted";
  } catch (const trace::TraceCorruptError& e) {
    EXPECT_EQ(e.damage, trace::TraceDamage::kTornTail);
  }
  // Consumed: the next open sees the intact file.
  EXPECT_TRUE(same_ops(trace::TraceV2Reader(p).read_all().ops, ops));
}

TEST_F(TraceV2Test, BitFlipFaultReadsAsInteriorCorruption) {
  const std::vector<trace::MicroOp> ops = workload(1'000);
  const std::string p = path("flip.samt");
  trace::write_samt_v2(p, trace::TraceView(ops.data(), ops.size()), "gcc", 23,
                       256);
  trace::set_io_fault(p, {trace::IoFault::Kind::kBitFlipBlock, 2});
  try {
    (void)trace::TraceV2Reader(p).read_all();
    FAIL() << "bit flip was accepted";
  } catch (const trace::TraceCorruptError& e) {
    EXPECT_EQ(e.damage, trace::TraceDamage::kInteriorCorrupt);
    EXPECT_EQ(e.block, 2u);
  }
  // In-memory flip only: the file on disk is still clean.
  EXPECT_TRUE(trace::trace_health(p).ok());
}

}  // namespace
}  // namespace samie
