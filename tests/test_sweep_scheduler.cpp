// Tests for the supervised sweep scheduler and the crash-safe checkpoint
// layer: failure classification and isolation, transient retry with
// capped backoff, cooperative deadline cancellation, max-failures drain,
// checkpoint/resume bit-identity (including torn-tail tolerance and
// wrong-sweep refusal), and the exact SimResult text round-trip. Faults
// are injected deterministically via SweepFaultPlan — no test here
// depends on timing races to reproduce.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/core.h"
#include "src/sim/checkpoint.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_scheduler.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace samie {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class SweepSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("samie_sweep_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  /// Three small jobs over distinct programs (distinct trace-cache keys).
  [[nodiscard]] static std::vector<sim::Job> three_jobs(
      std::uint64_t insts = 3000) {
    sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
    cfg.instructions = insts;
    std::vector<sim::Job> jobs;
    for (const char* p : {"gcc", "ammp", "mcf"}) {
      jobs.push_back(sim::Job{p, cfg, "samie"});
    }
    return jobs;
  }

  fs::path dir_;
};

/// Bit-exact SimResult equality via the hexfloat serialization (equal
/// strings <=> equal bits for every field).
void expect_results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(sim::serialize_sim_result(a), sim::serialize_sim_result(b));
}

TEST(RetryPolicy, BackoffDoublesFromBaseAndCaps) {
  sim::RetryPolicy p;
  p.backoff_base = 10ms;
  p.backoff_cap = 70ms;
  EXPECT_EQ(p.backoff_for(2), 10ms);  // first retry
  EXPECT_EQ(p.backoff_for(3), 20ms);
  EXPECT_EQ(p.backoff_for(4), 40ms);
  EXPECT_EQ(p.backoff_for(5), 70ms);  // capped, not 80
  EXPECT_EQ(p.backoff_for(6), 70ms);
}

TEST(ClassifyFailure, SeparatesTransientFromDeterministic) {
  auto classify = [](auto&& make) {
    try {
      throw make();
    } catch (...) {
      return sim::classify_failure(std::current_exception());
    }
  };
  EXPECT_EQ(classify([] { return sim::TransientFault("flake"); }),
            sim::FailureClass::kTransient);
  EXPECT_EQ(classify([] { return std::bad_alloc(); }),
            sim::FailureClass::kTransient);
  EXPECT_EQ(classify([] { return trace::TraceFormatError("torn"); }),
            sim::FailureClass::kTransient);
  // Classified damage is deterministic — replaying corrupt blocks will
  // corrupt again; retrying would just reread the same bad bytes.
  EXPECT_EQ(classify([] {
              return trace::TraceCorruptError(
                  "bad block", trace::TraceDamage::kInteriorCorrupt, 3, 4096);
            }),
            sim::FailureClass::kDeterministic);
  EXPECT_EQ(classify([] { return std::logic_error("bug"); }),
            sim::FailureClass::kDeterministic);
  EXPECT_EQ(classify([] { return std::runtime_error("watchdog"); }),
            sim::FailureClass::kDeterministic);
  EXPECT_EQ(sim::classify_failure(nullptr), sim::FailureClass::kNone);
}

TEST_F(SweepSchedulerTest, CleanSweepMatchesRunJobs) {
  const auto jobs = three_jobs();
  const auto direct = sim::run_jobs(jobs, 2);
  sim::SweepOptions opt;
  opt.threads = 2;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  ASSERT_TRUE(rep.all_completed());
  EXPECT_EQ(rep.completed, 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(rep.jobs[i].outcome.attempts, 1u);
    expect_results_identical(rep.jobs[i].result, direct[i].result);
  }
}

TEST_F(SweepSchedulerTest, TransientFaultIsRetriedToSuccess) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{1, 1, sim::SweepFault::Kind::kThrowTransient, 0ms},
                 {1, 2, sim::SweepFault::Kind::kThrowTransient, 0ms}};
  sim::SweepOptions opt;
  opt.threads = 2;
  opt.retry.max_attempts = 3;
  opt.retry.backoff_base = 1ms;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  ASSERT_TRUE(rep.all_completed());
  EXPECT_EQ(rep.jobs[1].outcome.attempts, 3u);
  EXPECT_EQ(rep.jobs[0].outcome.attempts, 1u);
  // A retried job's statistics are still the deterministic ones.
  const auto clean = sim::run_jobs(jobs, 1);
  expect_results_identical(rep.jobs[1].result, clean[1].result);
}

TEST_F(SweepSchedulerTest, TransientExhaustionReportsFailedTransient) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  for (std::uint32_t a = 1; a <= 3; ++a) {
    plan.faults.push_back({0, a, sim::SweepFault::Kind::kThrowTransient, 0ms});
  }
  sim::SweepOptions opt;
  opt.threads = 2;
  opt.retry.max_attempts = 3;
  opt.retry.backoff_base = 1ms;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.failed, 1u);
  const sim::SweepJobResult& bad = rep.jobs[0];
  EXPECT_EQ(bad.outcome.status, sim::JobStatus::kFailed);
  EXPECT_EQ(bad.outcome.failure, sim::FailureClass::kTransient);
  EXPECT_EQ(bad.outcome.attempts, 3u);
  ASSERT_TRUE(bad.error);
  EXPECT_THROW(std::rethrow_exception(bad.error), sim::TransientFault);
}

TEST_F(SweepSchedulerTest, DeterministicFaultIsolatesOnlyThatJob) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{1, 1, sim::SweepFault::Kind::kThrowDeterministic, 0ms}};
  sim::SweepOptions opt;
  opt.threads = 3;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kFailed);
  EXPECT_EQ(rep.jobs[1].outcome.failure, sim::FailureClass::kDeterministic);
  EXPECT_EQ(rep.jobs[1].outcome.attempts, 1u);  // never retried
  // Siblings completed with the exact clean-run statistics.
  const auto clean = sim::run_jobs(jobs, 1);
  expect_results_identical(rep.jobs[0].result, clean[0].result);
  expect_results_identical(rep.jobs[2].result, clean[2].result);
}

TEST_F(SweepSchedulerTest, DeadlineCancelsOverrunningJob) {
  // The injected 200ms delay runs inside the armed 30ms deadline, so the
  // token is set before the simulation's first stepped cycle: the
  // timeout is deterministic, not a race on simulation speed.
  auto jobs = three_jobs(200'000);
  jobs.resize(1);
  sim::SweepFaultPlan plan;
  plan.faults = {{0, 1, sim::SweepFault::Kind::kDelay, 200ms}};
  sim::SweepOptions opt;
  opt.threads = 1;
  opt.job_deadline = 30ms;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_EQ(rep.timed_out, 1u);
  const sim::SweepJobResult& jr = rep.jobs[0];
  EXPECT_EQ(jr.outcome.status, sim::JobStatus::kTimedOut);
  EXPECT_EQ(jr.outcome.attempts, 1u);  // terminal: no retry
  ASSERT_TRUE(jr.error);
  EXPECT_THROW(std::rethrow_exception(jr.error), core::SimulationAborted);
}

TEST_F(SweepSchedulerTest, SpuriousSupervisorWakeIsHarmless) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{0, 1, sim::SweepFault::Kind::kSpuriousWake, 0ms},
                 {2, 1, sim::SweepFault::Kind::kSpuriousWake, 0ms}};
  sim::SweepOptions opt;
  opt.threads = 2;
  opt.job_deadline = 60s;  // generous: nothing should actually expire
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_TRUE(rep.all_completed());
}

TEST_F(SweepSchedulerTest, MaxFailuresDrainsRemainingJobsToSkipped) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{0, 1, sim::SweepFault::Kind::kThrowDeterministic, 0ms}};
  sim::SweepOptions opt;
  opt.threads = 1;  // deterministic order: job 0 fails before 1 and 2 start
  opt.max_failures = 1;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.skipped, 2u);
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kSkipped);
  EXPECT_EQ(rep.jobs[2].outcome.status, sim::JobStatus::kSkipped);
  EXPECT_EQ(rep.jobs[1].outcome.attempts, 0u);  // never attempted
}

TEST_F(SweepSchedulerTest, ResumedSweepIsBitIdenticalToUninterrupted) {
  const auto jobs = three_jobs();
  const std::string ck = path("sweep.ckpt");

  // First run: job 2 fails deterministically, 0 and 1 are journaled.
  sim::SweepFaultPlan plan;
  plan.faults = {{2, 1, sim::SweepFault::Kind::kThrowDeterministic, 0ms}};
  sim::SweepOptions opt;
  opt.threads = 2;
  opt.checkpoint_path = ck;
  opt.faults = &plan;
  const sim::SweepReport partial = sim::run_sweep(jobs, opt);
  EXPECT_EQ(partial.completed, 2u);
  EXPECT_EQ(partial.failed, 1u);

  // Resume without the fault: only job 2 re-runs.
  sim::SweepOptions res;
  res.threads = 2;
  res.checkpoint_path = ck;
  res.resume = true;
  const sim::SweepReport rep = sim::run_sweep(jobs, res);
  ASSERT_TRUE(rep.all_completed());
  EXPECT_EQ(rep.resumed, 2u);
  EXPECT_TRUE(rep.jobs[0].outcome.from_checkpoint);
  EXPECT_TRUE(rep.jobs[1].outcome.from_checkpoint);
  EXPECT_FALSE(rep.jobs[2].outcome.from_checkpoint);

  const auto clean = sim::run_jobs(jobs, 1);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_results_identical(rep.jobs[i].result, clean[i].result);
  }
}

TEST_F(SweepSchedulerTest, ResumeIgnoresTornTailLine) {
  const auto jobs = three_jobs();
  const std::string ck = path("sweep.ckpt");
  sim::SweepOptions opt;
  opt.threads = 2;
  opt.checkpoint_path = ck;
  (void)sim::run_sweep(jobs, opt);

  // Simulate a kill mid-append: a record line cut off before its
  // payload survives the FNV guard.
  {
    std::ofstream torn(ck, std::ios::app | std::ios::binary);
    torn << "R\t0123456789abcdef\t2\tgcc\tsamie\ttruncat";  // no newline
  }
  sim::SweepOptions res;
  res.threads = 2;
  res.checkpoint_path = ck;
  res.resume = true;
  const sim::SweepReport rep = sim::run_sweep(jobs, res);
  EXPECT_TRUE(rep.all_completed());
  EXPECT_EQ(rep.resumed, 3u);
  EXPECT_EQ(rep.checkpoint_lines_ignored, 1u);
}

TEST_F(SweepSchedulerTest, ResumeRefusesADifferentSweep) {
  const auto jobs = three_jobs();
  const std::string ck = path("sweep.ckpt");
  sim::SweepOptions opt;
  opt.checkpoint_path = ck;
  (void)sim::run_sweep(jobs, opt);

  // Same file, different workload length => different fingerprint.
  const auto other = three_jobs(4000);
  sim::SweepOptions res;
  res.checkpoint_path = ck;
  res.resume = true;
  EXPECT_THROW((void)sim::run_sweep(other, res), sim::CheckpointError);

  // Different job count is refused too.
  auto fewer = three_jobs();
  fewer.pop_back();
  EXPECT_THROW((void)sim::run_sweep(fewer, res), sim::CheckpointError);
}

TEST_F(SweepSchedulerTest, CancellationTokenAbortsASimulationDirectly) {
  sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
  cfg.instructions = 50'000;
  const trace::TraceSource src = trace::TraceSource::generate(
      trace::spec2000_profile("gcc"), cfg.seed, cfg.instructions);
  std::atomic<bool> cancel{true};  // pre-set: aborts on the first cycle
  cfg.core.should_abort = &cancel;
  EXPECT_THROW((void)sim::run_simulation(cfg, src.view()),
               core::SimulationAborted);

  // An unset token changes nothing — bit-identical to no token at all.
  cancel.store(false);
  const sim::SimResult with_token = sim::run_simulation(cfg, src.view());
  cfg.core.should_abort = nullptr;
  const sim::SimResult without = sim::run_simulation(cfg, src.view());
  expect_results_identical(with_token, without);
}

TEST_F(SweepSchedulerTest, FailureReportNamesEveryNonCompletedJob) {
  const auto jobs = three_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{1, 1, sim::SweepFault::Kind::kThrowDeterministic, 0ms}};
  sim::SweepOptions opt;
  opt.threads = 1;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  std::ostringstream os;
  sim::print_failure_report(os, rep);
  const std::string text = os.str();
  EXPECT_NE(text.find("job=1"), std::string::npos);
  EXPECT_NE(text.find("program=ammp"), std::string::npos);
  EXPECT_NE(text.find("outcome=failed"), std::string::npos);
  EXPECT_NE(text.find("class=deterministic"), std::string::npos);
  EXPECT_NE(text.find("2/3 completed"), std::string::npos);
  EXPECT_EQ(text.find("job=0"), std::string::npos);  // completed: no line
}

// -- checkpoint layer --------------------------------------------------------

TEST_F(SweepSchedulerTest, CheckpointRoundTripsRecords) {
  const std::string ck = path("plain.ckpt");
  {
    auto w = sim::CheckpointWriter::create(ck, 7, 0xdeadbeefULL);
    w.append_record("first");
    w.append_record("second\twith\ttabs");
  }
  const sim::CheckpointContents c = sim::load_checkpoint(ck);
  EXPECT_EQ(c.njobs, 7u);
  EXPECT_EQ(c.fingerprint, 0xdeadbeefULL);
  ASSERT_EQ(c.records.size(), 2u);
  EXPECT_EQ(c.records[0], "first");
  EXPECT_EQ(c.records[1], "second\twith\ttabs");
  EXPECT_EQ(c.ignored_lines, 0u);
}

TEST_F(SweepSchedulerTest, CheckpointRejectsCorruptGuardAndBadHeader) {
  const std::string ck = path("guard.ckpt");
  {
    auto w = sim::CheckpointWriter::create(ck, 1, 1);
    w.append_record("payload");
  }
  // Flip a payload byte: the record's FNV guard must reject it.
  {
    std::fstream f(ck, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  const sim::CheckpointContents c = sim::load_checkpoint(ck);
  EXPECT_TRUE(c.records.empty());
  EXPECT_EQ(c.ignored_lines, 1u);

  // A wrong magic line is fatal, not skippable.
  const std::string bad = path("bad.ckpt");
  std::ofstream(bad) << "not a checkpoint\n";
  EXPECT_THROW((void)sim::load_checkpoint(bad), sim::CheckpointError);
  EXPECT_THROW((void)sim::load_checkpoint(path("missing.ckpt")),
               sim::CheckpointError);
}

TEST(SimResultRoundTrip, IsBitExactForAwkwardDoubles) {
  sim::SimResult r{};
  r.core.cycles = 123456789;
  r.core.committed = 0xffffffffffffffffULL;
  r.core.ipc = 1.0 / 3.0;
  r.lsq_energy_nj = 0.1;
  r.lsq_distrib_nj = 1e-300;          // subnormal-adjacent
  r.lsq_shared_nj = 5e-324;           // smallest denormal
  r.lsq_addrbuf_nj = 1.7976931348623157e308;  // DBL_MAX
  r.lsq_bus_nj = -0.0;
  r.dcache_energy_nj = 2.5;
  r.shared_occupancy_mean = 0.30000000000000004;
  r.buffer_nonempty_frac = 1.0 - 1e-16;
  r.shared_occupancy_max = 42;
  const std::string text = sim::serialize_sim_result(r);
  sim::SimResult back{};
  ASSERT_TRUE(sim::parse_sim_result(text, back));
  EXPECT_EQ(sim::serialize_sim_result(back), text);
  // Negative zero survives (hexfloat keeps the sign bit).
  EXPECT_TRUE(std::signbit(back.lsq_bus_nj));
  EXPECT_EQ(back.core.committed, 0xffffffffffffffffULL);

  // Wrong field count or a garbage token parses as torn, never as a
  // silently-misassigned result.
  EXPECT_FALSE(sim::parse_sim_result(text + " 7", back));
  EXPECT_FALSE(sim::parse_sim_result("1 2 3", back));
  std::string mangled = text;
  mangled.replace(mangled.find(' ') + 1, 1, "q");
  EXPECT_FALSE(sim::parse_sim_result(mangled, back));
}

// ------------------------------------------------- trace-damage outcomes --
//
// Injected I/O faults (short-read, bit-flip) surface as the structured
// kTraceDamaged outcome: deterministic (never retried), quarantining
// only the job whose replay touched the damage, journaled as a 'D'
// record and sealed on resume — while every undamaged job's results
// stay byte-identical to a clean sweep's.

class TraceDamageSweepTest : public SweepSchedulerTest {
 protected:
  /// Three replay jobs over small recorded v2 traces.
  [[nodiscard]] std::vector<sim::Job> trace_jobs() const {
    std::vector<sim::Job> jobs;
    for (const char* p : {"gcc", "ammp", "mcf"}) {
      trace::WorkloadGenerator gen(trace::spec2000_profile(p), 5);
      const trace::Trace t = gen.generate(3000);
      const std::string f = path(std::string(p) + ".samt");
      trace::write_samt_v2(f, trace::TraceView(t.ops.data(), t.ops.size()), p,
                           5, 512);
      sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
      cfg.instructions = 3000;
      cfg.trace_path = f;
      jobs.push_back(sim::Job{p, cfg, "samie"});
    }
    return jobs;
  }
};

TEST_F(TraceDamageSweepTest, ShortReadFaultQuarantinesOnlyThatJob) {
  const auto jobs = trace_jobs();
  const auto clean = sim::run_jobs(jobs, 1);
  sim::SweepFaultPlan plan;
  plan.faults = {{1, 1, sim::SweepFault::Kind::kShortRead, 0ms, 100}};
  sim::SweepOptions opt;
  opt.threads = 2;
  opt.retry.max_attempts = 3;  // damage must NOT consume retries
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);

  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.trace_damaged, 1u);
  const sim::JobOutcome& oc = rep.jobs[1].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kTraceDamaged);
  EXPECT_EQ(oc.failure, sim::FailureClass::kDeterministic);
  EXPECT_EQ(oc.attempts, 1u);  // deterministic: one attempt, no retry
  EXPECT_EQ(oc.damage, trace::TraceDamage::kTornTail);
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
  // The undamaged jobs are byte-identical to a clean run.
  expect_results_identical(rep.jobs[0].result, clean[0].result);
  expect_results_identical(rep.jobs[2].result, clean[2].result);
  // The failure report names the damage.
  std::ostringstream os;
  sim::print_failure_report(os, rep);
  EXPECT_NE(os.str().find("trace-damaged"), std::string::npos);
  EXPECT_NE(os.str().find("damage=torn-tail"), std::string::npos);
}

TEST_F(TraceDamageSweepTest, BitFlipFaultReportsBlockAndOffset) {
  const auto jobs = trace_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{0, 1, sim::SweepFault::Kind::kBitFlipBlock, 0ms, 2}};
  sim::SweepOptions opt;
  opt.threads = 1;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  const sim::JobOutcome& oc = rep.jobs[0].outcome;
  EXPECT_EQ(oc.status, sim::JobStatus::kTraceDamaged);
  EXPECT_EQ(oc.damage, trace::TraceDamage::kInteriorCorrupt);
  EXPECT_EQ(oc.damage_block, 2u);
  EXPECT_GT(oc.damage_offset, 0u);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
}

TEST_F(TraceDamageSweepTest, DamageIsJournaledAndSealedOnResume) {
  const auto jobs = trace_jobs();
  const std::string ckpt = path("sweep.ckpt");
  sim::SweepFaultPlan plan;
  plan.faults = {{2, 1, sim::SweepFault::Kind::kShortRead, 0ms, 0}};
  {
    sim::SweepOptions opt;
    opt.threads = 1;
    opt.checkpoint_path = ckpt;
    opt.faults = &plan;
    const sim::SweepReport rep = sim::run_sweep(jobs, opt);
    EXPECT_EQ(rep.trace_damaged, 1u);
    EXPECT_EQ(rep.damage_sealed, 0u);  // found live, not from the journal
  }
  // The journal carries a guarded 'D' record for the damaged job.
  const sim::CheckpointContents c = sim::load_checkpoint(ckpt);
  EXPECT_EQ(c.records.size(), 2u);
  ASSERT_EQ(c.damaged.size(), 1u);
  EXPECT_NE(c.damaged[0].find("mcf"), std::string::npos);

  // Resume with no faults: the damaged job is sealed from the journal,
  // not re-run (the trace is clean now — a resume must still not trust
  // it, because the damage decision was already journaled).
  sim::SweepOptions opt;
  opt.threads = 1;
  opt.checkpoint_path = ckpt;
  opt.resume = true;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(rep.resumed, 2u);
  EXPECT_EQ(rep.trace_damaged, 1u);
  EXPECT_EQ(rep.damage_sealed, 1u);
  EXPECT_TRUE(rep.jobs[2].outcome.from_checkpoint);
  EXPECT_EQ(rep.jobs[2].outcome.status, sim::JobStatus::kTraceDamaged);
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
}

TEST_F(TraceDamageSweepTest, LaneExecutorClassifiesDamageToo) {
  const auto jobs = trace_jobs();
  sim::SweepFaultPlan plan;
  plan.faults = {{1, 1, sim::SweepFault::Kind::kShortRead, 0ms, 0}};
  sim::SweepOptions opt;
  opt.lanes = 2;
  opt.lane_shards = 1;
  opt.faults = &plan;
  const sim::SweepReport rep = sim::run_sweep(jobs, opt);
  EXPECT_EQ(rep.jobs[1].outcome.status, sim::JobStatus::kTraceDamaged);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_EQ(sim::sweep_exit_code(rep), 3);
}

TEST_F(TraceDamageSweepTest, RejectsImportOnlyAndTracelessIoFaults) {
  // Import-only kinds never belong in a sweep (a sweep replays, it does
  // not import) ...
  {
    sim::SweepFaultPlan plan;
    plan.faults = {{0, 1, sim::SweepFault::Kind::kEnospcOnImport, 0ms, 0}};
    sim::SweepOptions opt;
    opt.faults = &plan;
    EXPECT_THROW((void)sim::run_sweep(trace_jobs(), opt),
                 std::invalid_argument);
  }
  // ... and a read-side I/O fault aimed at a job with no trace file has
  // nothing to corrupt: misconfiguration, fail fast.
  {
    sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
    cfg.instructions = 1000;
    const std::vector<sim::Job> generated{sim::Job{"gcc", cfg, "samie"}};
    sim::SweepFaultPlan plan;
    plan.faults = {{0, 1, sim::SweepFault::Kind::kShortRead, 0ms, 0}};
    sim::SweepOptions opt;
    opt.faults = &plan;
    EXPECT_THROW((void)sim::run_sweep(generated, opt), std::invalid_argument);
  }
}

}  // namespace
}  // namespace samie
