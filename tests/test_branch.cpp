// Tests for src/branch: saturating counters, bimodal/gshare learning,
// hybrid selection, and BTB behaviour.
#include <gtest/gtest.h>

#include "src/branch/predictor.h"
#include "src/common/rng.h"

namespace samie::branch {
namespace {

TEST(Counters, SaturateBothEnds) {
  std::uint8_t c = 0;
  c = counter_update(c, false);
  EXPECT_EQ(c, 0);
  c = counter_update(c, true);
  c = counter_update(c, true);
  c = counter_update(c, true);
  c = counter_update(c, true);
  EXPECT_EQ(c, 3);
  EXPECT_TRUE(counter_taken(c));
  c = counter_update(c, false);
  c = counter_update(c, false);
  EXPECT_FALSE(counter_taken(c));
}

TEST(Bimodal, LearnsAlwaysTaken) {
  BimodalPredictor p(256);
  const Addr pc = 0x400100;
  for (int i = 0; i < 4; ++i) p.update(pc, true);
  EXPECT_TRUE(p.predict(pc));
  for (int i = 0; i < 4; ++i) p.update(pc, false);
  EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, DistinctPcsIndependent) {
  BimodalPredictor p(256);
  for (int i = 0; i < 4; ++i) {
    p.update(0x1000, true);
    p.update(0x1004, false);
  }
  EXPECT_TRUE(p.predict(0x1000));
  EXPECT_FALSE(p.predict(0x1004));
}

TEST(Gshare, LearnsAlternatingPattern) {
  // T,N,T,N ... correlates perfectly with one history bit; bimodal cannot
  // do better than 50% here, gshare approaches 100%.
  GsharePredictor g(2048);
  BimodalPredictor b(2048);
  const Addr pc = 0x40200C;
  int g_correct = 0, b_correct = 0;
  bool dir = false;
  for (int i = 0; i < 2000; ++i) {
    dir = !dir;
    if (i > 200) {
      g_correct += g.predict(pc) == dir ? 1 : 0;
      b_correct += b.predict(pc) == dir ? 1 : 0;
    }
    g.update(pc, dir);
    b.update(pc, dir);
  }
  EXPECT_GT(g_correct, 1700);
  EXPECT_LT(b_correct, 1200);
}

TEST(Hybrid, SelectorPicksTheBetterComponent) {
  HybridPredictor h;
  const Addr pc = 0x403000;
  bool dir = false;
  int correct = 0;
  for (int i = 0; i < 3000; ++i) {
    dir = !dir;  // alternating: gshare wins, selector must learn that
    if (i > 500) correct += h.predict(pc) == dir ? 1 : 0;
    h.update(pc, dir);
  }
  EXPECT_GT(correct, 2200);
}

TEST(Hybrid, CountsLookupsAndMispredicts) {
  HybridPredictor h;
  Xoshiro256 rng(17);
  std::uint64_t wrong = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool actual = rng.chance(0.5);
    const bool pred = h.predict_and_update(0x1234, actual);
    wrong += pred != actual ? 1U : 0U;
  }
  EXPECT_EQ(h.lookups(), 1000U);
  EXPECT_EQ(h.mispredicts(), wrong);
  // Random directions: mispredict rate near 50%.
  EXPECT_NEAR(static_cast<double>(wrong), 500.0, 80.0);
}

TEST(Hybrid, PredictableLoopBranchRarelyMisses) {
  // A loop taken 15x then not-taken once: a decent predictor misses about
  // once per exit, i.e. <= ~2/16 of the time.
  HybridPredictor h;
  std::uint64_t misses = 0, total = 0;
  for (int loop = 0; loop < 400; ++loop) {
    for (int it = 0; it < 16; ++it) {
      const bool taken = it != 15;
      if (loop > 50) {
        ++total;
        misses += h.predict(0x500000) != taken ? 1U : 0U;
      }
      h.update(0x500000, taken);
    }
  }
  EXPECT_LT(static_cast<double>(misses) / static_cast<double>(total), 0.15);
}

// ---------------------------------------------------------------- BTB ----
TEST(Btb, MissThenHitAfterUpdate) {
  Btb btb(64, 4);
  EXPECT_FALSE(btb.lookup(0x400000).hit);
  btb.update(0x400000, 0x500000);
  const auto r = btb.lookup(0x400000);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.target, 0x500000U);
}

TEST(Btb, UpdateOverwritesTarget) {
  Btb btb(64, 4);
  btb.update(0x400000, 0x500000);
  btb.update(0x400000, 0x600000);
  EXPECT_EQ(btb.lookup(0x400000).target, 0x600000U);
}

TEST(Btb, SetConflictEvictsLru) {
  Btb btb(16, 4);  // 4 sets x 4 ways
  // Five branches mapping to the same set (stride = sets * 4 bytes).
  const Addr base = 0x400000;
  for (int i = 0; i < 5; ++i) {
    btb.update(base + static_cast<Addr>(i) * 4 * 4, 0x1000);
  }
  // The first (LRU) entry is gone, the rest remain.
  EXPECT_FALSE(btb.lookup(base).hit);
  for (int i = 1; i < 5; ++i) {
    EXPECT_TRUE(btb.lookup(base + static_cast<Addr>(i) * 4 * 4).hit);
  }
}

TEST(Btb, PaperConfiguration) {
  Btb btb;  // 2048 entries, 4-way
  for (Addr i = 0; i < 2048; ++i) btb.update(0x400000 + i * 4, i);
  std::uint64_t hits = 0;
  for (Addr i = 0; i < 2048; ++i) {
    hits += btb.lookup(0x400000 + i * 4).hit ? 1U : 0U;
  }
  EXPECT_EQ(hits, 2048U);  // perfectly fits
}

}  // namespace
}  // namespace samie::branch
