// Tests for the conventional fully-associative LSQ: allocation, capacity,
// disambiguation/forwarding semantics, squash/commit bookkeeping, and the
// Table 4 energy accounting policy.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/energy/ledger.h"
#include "src/lsq/conventional_lsq.h"

namespace samie::lsq {
namespace {

using Status = Placement::Status;
using Kind = LoadPlan::Kind;

[[nodiscard]] MemOpDesc load(InstSeq seq, Addr addr, std::uint8_t size = 8) {
  return MemOpDesc{seq, addr, size, /*is_load=*/true, false};
}
[[nodiscard]] MemOpDesc store(InstSeq seq, Addr addr, std::uint8_t size = 8) {
  return MemOpDesc{seq, addr, size, /*is_load=*/false, false};
}

class ConvLsqTest : public ::testing::Test {
 protected:
  ConvLsqTest()
      : constants_(energy::paper_constants()),
        ledger_(constants_),
        lsq_(ConventionalLsqConfig{.entries = 8, .unbounded = false}, &ledger_) {}

  energy::LsqEnergyConstants constants_;
  energy::ConvLsqLedger ledger_;
  ConventionalLsq lsq_;
};

TEST_F(ConvLsqTest, CapacityGatesDispatch) {
  for (InstSeq s = 0; s < 8; ++s) {
    ASSERT_TRUE(lsq_.can_dispatch(true));
    lsq_.on_dispatch(s, true);
  }
  EXPECT_FALSE(lsq_.can_dispatch(true));
  lsq_.on_address_ready(load(0, 0x1000));
  lsq_.on_commit(0);
  EXPECT_TRUE(lsq_.can_dispatch(true));
}

TEST_F(ConvLsqTest, PlacedOnlyAfterAddressReady) {
  lsq_.on_dispatch(1, true);
  EXPECT_FALSE(lsq_.is_placed(1));
  EXPECT_EQ(lsq_.on_address_ready(load(1, 0x2000)).status, Status::kPlaced);
  EXPECT_TRUE(lsq_.is_placed(1));
}

TEST_F(ConvLsqTest, LoadForwardsFromYoungestOlderStore) {
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, false);
  lsq_.on_dispatch(3, true);
  lsq_.on_address_ready(store(1, 0x100));
  lsq_.on_address_ready(store(2, 0x100));
  lsq_.on_address_ready(load(3, 0x100));
  const LoadPlan p = lsq_.plan_load(3);
  EXPECT_EQ(p.store, 2U) << "must forward from the *youngest* older store";
  EXPECT_EQ(p.kind, Kind::kForwardWait);  // no data yet
  lsq_.on_store_data_ready(2);
  EXPECT_EQ(lsq_.plan_load(3).kind, Kind::kForwardReady);
}

TEST_F(ConvLsqTest, NoOverlapMeansCacheAccess) {
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, true);
  lsq_.on_address_ready(store(1, 0x100));
  lsq_.on_address_ready(load(2, 0x200));
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
}

TEST_F(ConvLsqTest, PartialCoverageWaitsForCommit) {
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, true);
  lsq_.on_address_ready(store(1, 0x104, 4));  // store covers [0x104,0x108)
  lsq_.on_address_ready(load(2, 0x100, 8));   // load needs [0x100,0x108)
  const LoadPlan p = lsq_.plan_load(2);
  EXPECT_EQ(p.kind, Kind::kWaitCommit);
  EXPECT_EQ(p.store, 1U);
  // After the store commits, memory is authoritative again.
  lsq_.on_store_data_ready(1);
  lsq_.on_commit(1);
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
}

TEST_F(ConvLsqTest, LateStoreUpdatesEarlierPlacedLoad) {
  // Load places first (no conflict), older store's address arrives later:
  // the store-side search must update the load's forwarding information.
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, true);
  lsq_.on_address_ready(load(2, 0x300));
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
  lsq_.on_address_ready(store(1, 0x300));
  const LoadPlan p = lsq_.plan_load(2);
  EXPECT_EQ(p.kind, Kind::kForwardWait);
  EXPECT_EQ(p.store, 1U);
}

TEST_F(ConvLsqTest, YoungerStoreDoesNotAffectOlderLoad) {
  lsq_.on_dispatch(1, true);
  lsq_.on_dispatch(2, false);
  lsq_.on_address_ready(load(1, 0x400));
  lsq_.on_address_ready(store(2, 0x400));
  EXPECT_EQ(lsq_.plan_load(1).kind, Kind::kCacheAccess);
}

TEST_F(ConvLsqTest, SquashRemovesYoungerOnly) {
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, true);
  lsq_.on_dispatch(3, true);
  lsq_.on_address_ready(store(1, 0x100));
  lsq_.on_address_ready(load(2, 0x100));
  lsq_.squash_from(3);
  EXPECT_TRUE(lsq_.is_placed(1));
  EXPECT_TRUE(lsq_.is_placed(2));
  EXPECT_FALSE(lsq_.is_placed(3));
  lsq_.squash_from(2);
  EXPECT_TRUE(lsq_.is_placed(1));
  EXPECT_FALSE(lsq_.is_placed(2));
  EXPECT_EQ(lsq_.occupancy().entries_used, 1U);
}

TEST_F(ConvLsqTest, CommitReleasesInOrder) {
  lsq_.on_dispatch(1, true);
  lsq_.on_dispatch(2, false);
  lsq_.on_address_ready(load(1, 0x100));
  lsq_.on_address_ready(store(2, 0x200));
  EXPECT_EQ(lsq_.occupancy().entries_used, 2U);
  lsq_.on_commit(1);
  EXPECT_EQ(lsq_.occupancy().entries_used, 1U);
  lsq_.on_store_data_ready(2);
  lsq_.on_commit(2);
  EXPECT_EQ(lsq_.occupancy().entries_used, 0U);
}

TEST_F(ConvLsqTest, StoreCommitClearsForwardRefsOfWaiters) {
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, true);
  lsq_.on_address_ready(store(1, 0x104, 4));
  lsq_.on_address_ready(load(2, 0x100, 8));
  ASSERT_EQ(lsq_.plan_load(2).kind, Kind::kWaitCommit);
  lsq_.on_store_data_ready(1);
  lsq_.on_commit(1);
  EXPECT_EQ(lsq_.plan_load(2).kind, Kind::kCacheAccess);
}

// -------------------------------------------------------- energy policy ---
TEST_F(ConvLsqTest, SearchComparesOnlyKnownAddresses) {
  // Paper §4.2 fairness: a load compares only against older stores whose
  // address is known.
  lsq_.on_dispatch(1, false);  // store, address unknown
  lsq_.on_dispatch(2, false);  // store, address will be known
  lsq_.on_dispatch(3, true);
  lsq_.on_address_ready(store(2, 0x500));
  const std::uint64_t before = ledger_.addresses_compared();
  lsq_.on_address_ready(load(3, 0x600));
  EXPECT_EQ(ledger_.addresses_compared() - before, 1U)
      << "only store 2's (known) address may be compared";
}

TEST_F(ConvLsqTest, StoreSearchComparesYoungerKnownLoads) {
  lsq_.on_dispatch(1, false);
  lsq_.on_dispatch(2, true);
  lsq_.on_dispatch(3, true);
  lsq_.on_address_ready(load(2, 0x100));
  // load 3's address still unknown
  const std::uint64_t before = ledger_.addresses_compared();
  lsq_.on_address_ready(store(1, 0x700));
  EXPECT_EQ(ledger_.addresses_compared() - before, 1U);
}

TEST_F(ConvLsqTest, EnergyEventsFollowTable4) {
  lsq_.on_dispatch(1, false);
  lsq_.on_address_ready(store(1, 0x100));  // addr write + search(0)
  EXPECT_DOUBLE_EQ(ledger_.energy_pj(), 57.1 + 452.0);
  lsq_.on_store_data_ready(1);  // datum write
  EXPECT_DOUBLE_EQ(ledger_.energy_pj(), 57.1 + 452.0 + 93.2);
}

TEST(ConvLsqUnbounded, NeverStalls) {
  auto u = make_unbounded_lsq(256);
  EXPECT_EQ(u->kind(), LsqKind::kUnbounded);
  for (InstSeq s = 0; s < 256; ++s) {
    ASSERT_TRUE(u->can_dispatch(true));
    u->on_dispatch(s, s % 2 == 0);
  }
  EXPECT_EQ(u->occupancy().entries_used, 256U);
}

// O(1)-lookup-vs-recount regression for the SeqRingTable port (mirrors
// the ArbLsq/SamieLsq recount tests): randomized dispatch / address /
// commit / squash traffic, cross-checking after every step that the seq
// table resolves every queued entry to its ring position and that the
// absolute-index arithmetic stayed consistent.
TEST(ConvLsqRingTable, RandomizedRecountStaysConsistent) {
  std::mt19937_64 rng(4242);
  ConventionalLsq lsq(ConventionalLsqConfig{.entries = 32, .unbounded = false},
                      nullptr);
  std::vector<InstSeq> queued;  // age order, mirrors the ring
  InstSeq next_seq = 0;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t dice = rng() % 100;
    if (dice < 45) {
      if (lsq.can_dispatch(true)) {
        const bool is_load = rng() % 2 == 0;
        lsq.on_dispatch(next_seq, is_load);
        queued.push_back(next_seq);
        // Addresses land on a handful of lines so forwarding refs form.
        const Addr addr = 0x1000 + (rng() % 8) * 8;
        if (rng() % 4 != 0) {
          MemOpDesc op{next_seq, addr, 8, is_load, false};
          lsq.on_address_ready(op);
        }
        ++next_seq;
      }
    } else if (dice < 80) {
      if (!queued.empty()) {
        lsq.on_commit(queued.front());
        queued.erase(queued.begin());
      }
    } else if (dice < 95) {
      if (!queued.empty()) {
        const std::size_t keep = rng() % queued.size();
        lsq.squash_from(queued[keep]);
        queued.resize(keep);
        next_seq = queued.empty() ? next_seq : queued.back() + 1;
      }
    } else {
      // Window gap: seqs of non-memory instructions never enter the LSQ.
      next_seq += 1 + rng() % 5;
    }
    // recount_occupancy() itself asserts every table lookup resolves to
    // the right ring position; the EXPECT pins the external count.
    const OccupancySample recount = lsq.recount_occupancy();
    ASSERT_EQ(recount.entries_used, queued.size()) << "step " << step;
  }
}

// The table survives the squash-then-refill pattern that rewinds and
// reuses absolute indices.
TEST(ConvLsqRingTable, SquashRewindsAllocationIndices) {
  ConventionalLsq lsq(ConventionalLsqConfig{.entries = 8, .unbounded = false},
                      nullptr);
  for (InstSeq s = 0; s < 6; ++s) lsq.on_dispatch(s, true);
  lsq.squash_from(2);  // pops 2..5, rewinding four indices
  for (InstSeq s = 2; s < 8; ++s) lsq.on_dispatch(s + 100, true);
  EXPECT_EQ(lsq.recount_occupancy().entries_used, 8U);
  EXPECT_EQ(lsq.on_address_ready(load(103, 0x40)).status, Status::kPlaced);
  EXPECT_TRUE(lsq.is_placed(103));
  lsq.on_commit(0);
  lsq.on_commit(1);
  EXPECT_EQ(lsq.recount_occupancy().entries_used, 6U);
  EXPECT_TRUE(lsq.is_placed(103));
}

TEST(ConvLsqOverlapHelpers, RangesAndCoverage) {
  EXPECT_TRUE(ranges_overlap(0x100, 8, 0x104, 8));
  EXPECT_FALSE(ranges_overlap(0x100, 4, 0x104, 4));
  EXPECT_TRUE(range_covers(0x104, 4, 0x100, 8));   // store [100,108) covers load [104,108)
  EXPECT_FALSE(range_covers(0x100, 8, 0x104, 4));  // partial
  EXPECT_TRUE(range_covers(0x100, 8, 0x100, 8));
}

}  // namespace
}  // namespace samie::lsq
