// Tests for the out-of-order core: dataflow scheduling, branch recovery,
// memory ordering through each LSQ, deadlock-avoidance flushes, port and
// width limits, determinism. Traces are built by hand for precise control.
#include <gtest/gtest.h>

#include <memory>

#include "src/branch/predictor.h"
#include "src/core/core.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/mem/hierarchy.h"
#include "src/trace/instruction.h"

namespace samie::core {
namespace {

using trace::MicroOp;
using trace::OpClass;
using trace::Trace;

/// Builder for hand-written traces (PCs auto-assigned).
class TraceBuilder {
 public:
  MicroOp& add(OpClass op) {
    MicroOp o;
    o.pc = pc_;
    pc_ += 4;
    o.op = op;
    t_.ops.push_back(o);
    return t_.ops.back();
  }
  MicroOp& alu(RegId dst = kNoReg, RegId s1 = kNoReg, RegId s2 = kNoReg) {
    MicroOp& o = add(OpClass::kIntAlu);
    o.dst = dst;
    o.src1 = s1;
    o.src2 = s2;
    return o;
  }
  MicroOp& div(RegId dst, RegId s1 = kNoReg) {
    MicroOp& o = add(OpClass::kIntDiv);
    o.dst = dst;
    o.src1 = s1;
    return o;
  }
  MicroOp& load(Addr addr, std::uint64_t expected, RegId dst = kNoReg,
                std::uint8_t size = 8, RegId addr_src = kNoReg) {
    MicroOp& o = add(OpClass::kLoad);
    o.mem_addr = addr;
    o.mem_size = size;
    o.value = expected;
    o.dst = dst;
    o.src1 = addr_src;
    return o;
  }
  MicroOp& store(Addr addr, std::uint64_t value, std::uint8_t size = 8,
                 RegId addr_src = kNoReg, RegId data_src = kNoReg) {
    MicroOp& o = add(OpClass::kStore);
    o.mem_addr = addr;
    o.mem_size = size;
    o.value = value;
    o.src1 = addr_src;
    o.src2 = data_src;
    return o;
  }
  MicroOp& branch(bool taken) {
    MicroOp& o = add(OpClass::kBranch);
    o.taken = taken;
    o.br_target = pc_ + 16;
    return o;
  }
  Trace take() { return std::move(t_); }

 private:
  Trace t_{.name = "hand", .seed = 0, .ops = {}};
  Addr pc_ = 0x400000;
};

enum class Which { kConventional, kArb, kSamie };

CoreResult run_trace(const Trace& t, Which which = Which::kConventional,
                     CoreConfig cfg = CoreConfig{},
                     lsq::SamieConfig samie_cfg = lsq::SamieConfig{}) {
  std::unique_ptr<lsq::LoadStoreQueue> q;
  switch (which) {
    case Which::kConventional:
      q = std::make_unique<lsq::ConventionalLsq>(lsq::ConventionalLsqConfig{},
                                                 nullptr);
      break;
    case Which::kArb:
      q = std::make_unique<lsq::ArbLsq>(
          lsq::ArbConfig{.banks = 8, .rows_per_bank = 16, .max_inflight = 128,
                         .line_bytes = 32});
      break;
    case Which::kSamie:
      q = std::make_unique<lsq::SamieLsq>(samie_cfg, nullptr);
      break;
  }
  mem::MemoryHierarchy memory{mem::HierarchyConfig{}};
  branch::HybridPredictor pred;
  branch::Btb btb;
  Core c(cfg, t, *q, memory, pred, btb, nullptr, nullptr, nullptr);
  return c.run(t.size());
}

// ----------------------------------------------------------- basic flow ---
TEST(Core, EmptyTraceFinishesImmediately) {
  Trace t{.name = "empty", .seed = 0, .ops = {}};
  const CoreResult r = run_trace(t);
  EXPECT_EQ(r.committed, 0U);
}

TEST(Core, CommitsEveryInstructionOfAPlainBlock) {
  TraceBuilder b;
  for (int i = 0; i < 500; ++i) b.alu(static_cast<RegId>(1 + i % 30));
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  EXPECT_EQ(r.committed, 500U);
  EXPECT_EQ(r.value_mismatches, 0U);
}

TEST(Core, SerialChainIsLatencyBound) {
  TraceBuilder b;
  for (int i = 0; i < 400; ++i) b.alu(/*dst=*/1, /*s1=*/1);
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  // One-cycle ALU chain: at least one cycle per instruction, plus the
  // cold-start cost (first I-line from memory + ITLB walk, ~145 cycles).
  EXPECT_GE(r.cycles, 400U);
  EXPECT_LE(r.cycles, 600U);
}

TEST(Core, IndependentOpsReachAluThroughput) {
  TraceBuilder b;
  for (int i = 0; i < 4800; ++i) b.alu(static_cast<RegId>(1 + i % 30));
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  // 6 INT ALUs: IPC must approach 6 once the cold start is amortized.
  EXPECT_GT(r.ipc, 5.0);
}

TEST(Core, NonPipelinedDividerSerializes) {
  TraceBuilder b;
  for (int i = 0; i < 30; ++i) b.div(static_cast<RegId>(1 + i % 8));
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  // 3 dividers, 20-cycle non-pipelined ops, 30 independent divides:
  // at least ceil(30/3)*20 cycles.
  EXPECT_GE(r.cycles, 200U);
}

TEST(Core, DeterministicAcrossRuns) {
  TraceBuilder b;
  for (int i = 0; i < 300; ++i) {
    b.alu(static_cast<RegId>(1 + i % 16), static_cast<RegId>(1 + (i + 5) % 16));
    if (i % 7 == 0) b.load(0x10000 + static_cast<Addr>(i) * 8, 0);
  }
  const Trace t = b.take();
  const CoreResult a = run_trace(t);
  const CoreResult bres = run_trace(t);
  EXPECT_EQ(a.cycles, bres.cycles);
  EXPECT_EQ(a.committed, bres.committed);
}

// ---------------------------------------------------------------- memory ---
TEST(Core, LoadObservesCommittedStore) {
  TraceBuilder b;
  b.store(0x20000, 0xDEADBEEFCAFE0001ULL);
  // Push the store far out of the window before the load is fetched.
  for (int i = 0; i < 400; ++i) b.alu();
  b.load(0x20000, 0xDEADBEEFCAFE0001ULL, /*dst=*/5);
  const Trace t = b.take();
  for (Which w : {Which::kConventional, Which::kArb, Which::kSamie}) {
    const CoreResult r = run_trace(t, w);
    EXPECT_EQ(r.committed, t.size());
    EXPECT_EQ(r.value_mismatches, 0U);
  }
}

TEST(Core, InFlightForwardingDeliversStoreValue) {
  TraceBuilder b;
  b.store(0x30000, 0x1122334455667788ULL);
  b.load(0x30000, 0x1122334455667788ULL, /*dst=*/6);
  const Trace t = b.take();
  for (Which w : {Which::kConventional, Which::kArb, Which::kSamie}) {
    const CoreResult r = run_trace(t, w);
    EXPECT_EQ(r.value_mismatches, 0U);
    EXPECT_EQ(r.forwarded_loads, 1U) << "load must forward, not access cache";
  }
}

TEST(Core, SubwordForwardExtractsCorrectBytes) {
  TraceBuilder b;
  b.store(0x40000, 0x8877665544332211ULL, 8);
  b.load(0x40004, 0x88776655ULL, /*dst=*/7, /*size=*/4);
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  EXPECT_EQ(r.value_mismatches, 0U);
  EXPECT_EQ(r.forwarded_loads, 1U);
}

TEST(Core, PartialOverlapWaitsAndStaysCorrect) {
  TraceBuilder b;
  b.store(0x50000, 0xAAAAAAAAAAAAAAAAULL, 8);
  b.store(0x50004, 0xBBBBBBBBULL, 4);
  // Load covers both stores: must wait for the partial one to commit.
  b.load(0x50000, 0xBBBBBBBBAAAAAAAAULL, /*dst=*/8, /*size=*/8);
  const Trace t = b.take();
  for (Which w : {Which::kConventional, Which::kArb, Which::kSamie}) {
    const CoreResult r = run_trace(t, w);
    EXPECT_EQ(r.value_mismatches, 0U) << "which=" << static_cast<int>(w);
    EXPECT_GE(r.partial_forward_waits, 1U);
  }
}

TEST(Core, StoreAddressUnknownBlocksYoungerLoad) {
  // Store's address register comes off a divider chain; the younger load
  // to an unrelated address must still wait (conservative readyBit).
  TraceBuilder blocked;
  blocked.div(/*dst=*/1);
  blocked.store(0x60000, 1, 8, /*addr_src=*/1);
  blocked.load(0x61000, 0, /*dst=*/2);
  const Trace tb = blocked.take();
  const CoreResult rb = run_trace(tb);

  TraceBuilder free_t;
  free_t.div(/*dst=*/1);
  free_t.store(0x60000, 1, 8);  // address ready immediately
  free_t.load(0x61000, 0, /*dst=*/2);
  const Trace tf = free_t.take();
  const CoreResult rf = run_trace(tf);
  EXPECT_GT(rb.cycles, rf.cycles)
      << "load behind an unknown-address store must be delayed";
}

TEST(Core, DcachePortsBoundLoadThroughput) {
  CoreConfig cfg;
  cfg.dcache_ports = 1;
  TraceBuilder b;
  // Warm the lines, push the warm-up out of the window, then finish with a
  // dense block of independent loads whose execution rate is port-bound
  // (the block is the program tail, so nothing hides it).
  for (int i = 0; i < 4; ++i) b.load(0x70000 + static_cast<Addr>(i) * 8, 0);
  for (int i = 0; i < 400; ++i) b.alu();
  for (int i = 0; i < 256; ++i) {
    b.load(0x70000 + static_cast<Addr>(i % 4) * 8, 0);
  }
  const Trace t = b.take();
  const CoreResult one_port = run_trace(t, Which::kConventional, cfg);
  const CoreResult four_ports = run_trace(t);
  // 256 tail loads at 1/cycle vs 4/cycle: a clear gap must appear.
  EXPECT_GT(one_port.cycles, four_ports.cycles + 100);
}

// --------------------------------------------------------------- branches ---
TEST(Core, MispredictsSquashAndRecover) {
  TraceBuilder b;
  // A pseudo-random direction pattern the predictor cannot fully learn.
  std::uint32_t lfsr = 0xACE1;
  for (int i = 0; i < 400; ++i) {
    b.alu(static_cast<RegId>(1 + i % 8));
    lfsr = (lfsr >> 1) ^ (-(lfsr & 1U) & 0xB400U);
    b.branch((lfsr & 1) != 0);
  }
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  EXPECT_EQ(r.committed, t.size());
  EXPECT_GT(r.mispredict_squashes, 20U);
  EXPECT_EQ(r.value_mismatches, 0U);
}

TEST(Core, PredictableBranchesBarelySquash) {
  TraceBuilder b;
  for (int i = 0; i < 400; ++i) {
    b.alu(static_cast<RegId>(1 + i % 8));
    b.branch(false);
  }
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  EXPECT_LT(r.mispredict_squashes, 8U);
}

TEST(Core, SquashKeepsMemoryCorrect) {
  TraceBuilder b;
  std::uint32_t lfsr = 0xBEEF;
  std::uint64_t v = 1;
  for (int i = 0; i < 300; ++i) {
    const Addr a = 0x80000 + static_cast<Addr>(i % 16) * 8;
    b.store(a, v);
    lfsr = (lfsr >> 1) ^ (-(lfsr & 1U) & 0xB400U);
    b.branch((lfsr & 1) != 0);
    b.load(a, v, /*dst=*/static_cast<RegId>(1 + i % 8));
    ++v;
  }
  const Trace t = b.take();
  for (Which w : {Which::kConventional, Which::kArb, Which::kSamie}) {
    const CoreResult r = run_trace(t, w);
    EXPECT_EQ(r.committed, t.size());
    EXPECT_EQ(r.value_mismatches, 0U) << "which=" << static_cast<int>(w);
  }
}

// ----------------------------------------------------- deadlock avoidance ---
TEST(Core, SamieDeadlockFlushGuaranteesProgress) {
  // A brutally small SAMIE: 2 banks x 1 entry x 1 slot, 1 shared entry,
  // 2-slot AddrBuffer. A stream of distinct lines in one bank wedges it.
  lsq::SamieConfig cfg;
  cfg.banks = 2;
  cfg.entries_per_bank = 1;
  cfg.slots_per_entry = 1;
  cfg.shared_entries = 1;
  cfg.addr_buffer_slots = 2;
  cfg.l1d_sets = 64;
  TraceBuilder b;
  Addr line = 0;
  for (int i = 0; i < 50; ++i) {
    // The old load's address hangs off a 20-cycle divide, so the younger
    // loads behind it place first and fill every slot this bank can use.
    b.div(/*dst=*/1);
    b.load(line * 64, 0, /*dst=*/2, 8, /*addr_src=*/1);
    ++line;
    for (int j = 0; j < 6; ++j) {
      b.load(line * 64, 0, static_cast<RegId>(3 + j));
      ++line;
    }
  }
  const Trace t = b.take();
  const CoreResult r = run_trace(t, Which::kSamie, CoreConfig{}, cfg);
  EXPECT_EQ(r.committed, t.size()) << "flushes must guarantee forward progress";
  EXPECT_GT(r.deadlock_flushes, 0U);
  EXPECT_EQ(r.value_mismatches, 0U);
}

TEST(Core, ConventionalNeverDeadlocks) {
  TraceBuilder b;
  for (int i = 0; i < 300; ++i) {
    b.load(static_cast<Addr>(i) * 64, 0, static_cast<RegId>(1 + i % 8));
  }
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  EXPECT_EQ(r.deadlock_flushes, 0U);
}

// ----------------------------------------------------------------- hints ---
TEST(Core, SamieSkipsTagsAndTlbOnReuse) {
  TraceBuilder b;
  // Eight loads to the same line, far from each other in dependency terms.
  for (int i = 0; i < 8; ++i) {
    b.load(0x90000 + static_cast<Addr>(i % 4) * 8, 0,
           static_cast<RegId>(1 + i));
  }
  const Trace t = b.take();
  const CoreResult r = run_trace(t, Which::kSamie);
  EXPECT_GT(r.dcache_way_known, 0U);
  EXPECT_GT(r.dtlb_cached, 0U);
  EXPECT_EQ(r.dcache_way_known + r.dcache_full, 8U);
}

TEST(Core, ConventionalAlwaysPaysFullAccess) {
  TraceBuilder b;
  for (int i = 0; i < 8; ++i) {
    b.load(0x90000 + static_cast<Addr>(i % 4) * 8, 0,
           static_cast<RegId>(1 + i));
  }
  const Trace t = b.take();
  const CoreResult r = run_trace(t);
  EXPECT_EQ(r.dcache_way_known, 0U);
  EXPECT_EQ(r.dtlb_cached, 0U);
  EXPECT_EQ(r.dcache_full, 8U);
}

TEST(Core, KnownLineLatencyAblationHelps) {
  // A dependent load chain with same-line *companions* that keep the
  // entry (and thus the cached way) alive across chain steps. Note that a
  // bare serial chain would NOT benefit: each entry dies when its only
  // slot commits, before the next chain load places — the caching only
  // pays off when several same-line instructions are in flight, which is
  // exactly the paper's premise.
  CoreConfig fast;
  fast.exploit_known_line_latency = true;
  TraceBuilder b;
  b.load(0xA0000, 0, /*dst=*/1);
  for (int i = 0; i < 150; ++i) {
    // Chain step plus three independent same-line companions (distinct
    // dests) dispatched between the chain loads.
    b.load(0xA0000 + static_cast<Addr>(i % 4) * 8, 0, /*dst=*/1, 8,
           /*addr_src=*/1);
    for (int j = 0; j < 3; ++j) {
      b.load(0xA0000 + static_cast<Addr>((i + j) % 4) * 8, 0,
             static_cast<RegId>(10 + j));
    }
  }
  const Trace t = b.take();
  const CoreResult base = run_trace(t, Which::kSamie);
  const CoreResult abl = run_trace(t, Which::kSamie, fast);
  // The mechanism must engage heavily, and the shortcut can never hurt.
  EXPECT_GT(base.dcache_way_known, base.dcache_full);
  EXPECT_LE(abl.cycles, base.cycles);
  EXPECT_GT(abl.dcache_way_known, 0U);
}

}  // namespace
}  // namespace samie::core
