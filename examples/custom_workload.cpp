// custom_workload: define a synthetic workload through the public API —
// an in-memory B-tree-ish lookup loop with a hot root, a warm internal
// level and a cold leaf level — and compare the LSQ organizations on it.
//
// This is the "bring your own workload" path a downstream user would take
// to evaluate SAMIE-LSQ for an application the SPEC2000 profiles don't
// cover.
#include <iostream>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

int main() {
  using namespace samie;

  // Three levels of a search structure, hottest to coldest. The root is a
  // handful of lines touched constantly; leaves are a pointer-chased sea.
  trace::WorkloadProfile p;
  p.name = "btree-lookup";
  p.load_frac = 0.34;
  p.store_frac = 0.06;
  p.branch_frac = 0.18;
  p.branch_entropy = 0.30;  // data-dependent comparisons
  p.dep_mean = 4.0;
  p.addr_dep_p = 0.65;      // child pointers come from loads
  p.streams = {
      trace::StreamComponent{.weight = 0.30, .footprint_lines = 8,
                             .line_stride_bytes = 32, .accesses_per_line = 4,
                             .access_bytes = 8, .jump_p = 0.5},   // root
      trace::StreamComponent{.weight = 0.30, .footprint_lines = 2048,
                             .line_stride_bytes = 32, .accesses_per_line = 3,
                             .access_bytes = 8, .jump_p = 0.7},   // internal
      trace::StreamComponent{.weight = 0.40, .footprint_lines = 200000,
                             .line_stride_bytes = 32, .accesses_per_line = 2,
                             .access_bytes = 8, .jump_p = 0.9},   // leaves
  };

  constexpr std::uint64_t kInsts = 150'000;
  trace::WorkloadGenerator gen(p, /*seed=*/2024);
  const trace::Trace t = gen.generate(kInsts);

  Table out({"LSQ", "IPC", "LSQ uJ", "Dcache uJ", "DTLB uJ", "fwd loads",
             "mismatches"});
  double conv_ipc = 0;
  for (const auto choice : {sim::LsqChoice::kConventional, sim::LsqChoice::kArb,
                            sim::LsqChoice::kSamie}) {
    sim::SimConfig cfg = sim::paper_config(choice);
    cfg.instructions = kInsts;
    const sim::SimResult r = sim::run_simulation(cfg, t);
    if (choice == sim::LsqChoice::kConventional) conv_ipc = r.core.ipc;
    out.add_row({sim::lsq_choice_name(choice), Table::num(r.core.ipc),
                 Table::num(r.lsq_energy_nj / 1e3),
                 Table::num(r.dcache_energy_nj / 1e3),
                 Table::num(r.dtlb_energy_nj / 1e3),
                 std::to_string(r.core.forwarded_loads),
                 std::to_string(r.core.value_mismatches)});
  }
  out.print(std::cout);
  std::cout << "\n(conventional IPC " << Table::num(conv_ipc)
            << "; pointer-chasing workloads place fewer instructions per\n"
            << "line, so SAMIE's Dcache/DTLB reuse is smaller here than on\n"
            << "the FP suite — exactly the trade-off the paper describes.)\n";
  return 0;
}
