// design_space: the Section 3.5 sizing exercise as a tool — sweep the
// SAMIE-LSQ shape (banks x entries, slots/entry, SharedLSQ size) on a
// chosen program and print IPC / energy / pressure so a designer can pick
// a configuration for *their* workload.
//
//   ./design_space [program] [instructions]
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"

int main(int argc, char** argv) {
  using namespace samie;
  const std::string program = argc > 1 ? argv[1] : "apsi";
  const std::uint64_t insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;

  std::cout << "SAMIE-LSQ design-space sweep on '" << program << "'\n";

  struct Shape {
    std::uint32_t banks, entries, slots, shared;
  };
  const Shape shapes[] = {
      {128, 1, 8, 8}, {64, 2, 8, 8},  {32, 4, 8, 8},   // Figure 3's grid
      {64, 2, 4, 8},  {64, 2, 16, 8},                  // slot sweep
      {64, 2, 8, 4},  {64, 2, 8, 16},                  // shared sweep
  };

  std::vector<sim::Job> jobs;
  for (const auto& s : shapes) {
    sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
    cfg.instructions = insts;
    cfg.samie.banks = s.banks;
    cfg.samie.entries_per_bank = s.entries;
    cfg.samie.slots_per_entry = s.slots;
    cfg.samie.shared_entries = s.shared;
    jobs.push_back(sim::Job{program, cfg,
                            std::to_string(s.banks) + "x" +
                                std::to_string(s.entries) + " s" +
                                std::to_string(s.slots) + " sh" +
                                std::to_string(s.shared)});
  }
  // Conventional reference.
  sim::SimConfig conv = sim::paper_config(sim::LsqChoice::kConventional);
  conv.instructions = insts;
  jobs.push_back(sim::Job{program, conv, "conventional-128"});

  const auto results = sim::run_jobs(jobs);
  Table t({"shape", "IPC", "LSQ uJ", "Dcache uJ", "deadlk/Mcyc", "buf busy%"});
  for (const auto& r : results) {
    t.add_row({r.job.tag, Table::num(r.result.core.ipc),
               Table::num(r.result.lsq_energy_nj / 1e3),
               Table::num(r.result.dcache_energy_nj / 1e3),
               Table::num(r.result.deadlocks_per_mcycle(), 1),
               Table::num(r.result.buffer_nonempty_frac * 100, 1)});
  }
  t.print(std::cout);
  std::cout << "\nThe paper picks 64x2 with 8 slots and an 8-entry SharedLSQ\n"
            << "(Section 3.5); this sweep shows where that sits for your\n"
            << "workload.\n";
  return 0;
}
