// Quickstart: simulate one SPEC2000-profile workload on the paper's
// processor with the SAMIE-LSQ and with the conventional 128-entry LSQ,
// then print the headline comparison (IPC, LSQ/Dcache/DTLB energy).
//
//   ./quickstart [program] [instructions]
//
// Defaults: swim, 200000 instructions.
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"

int main(int argc, char** argv) {
  using namespace samie;

  const std::string program = argc > 1 ? argv[1] : "swim";
  const std::uint64_t insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;

  sim::SimConfig samie_cfg = sim::paper_config(sim::LsqChoice::kSamie);
  sim::SimConfig conv_cfg = sim::paper_config(sim::LsqChoice::kConventional);
  samie_cfg.instructions = conv_cfg.instructions = insts;

  std::cout << "Simulating " << insts << " instructions of '" << program
            << "' (paper Table 2 processor)...\n\n";

  const sim::SimResult samie = sim::run_program(samie_cfg, program);
  const sim::SimResult conv = sim::run_program(conv_cfg, program);

  Table t({"metric", "conventional LSQ", "SAMIE-LSQ", "delta"});
  t.add_row({"IPC", Table::num(conv.core.ipc), Table::num(samie.core.ipc),
             Table::pct(percent_delta(samie.core.ipc, conv.core.ipc))});
  t.add_row({"LSQ energy (uJ)", Table::num(conv.lsq_energy_nj / 1e3),
             Table::num(samie.lsq_energy_nj / 1e3),
             Table::pct(-percent_saved(samie.lsq_energy_nj, conv.lsq_energy_nj))});
  t.add_row({"L1D energy (uJ)", Table::num(conv.dcache_energy_nj / 1e3),
             Table::num(samie.dcache_energy_nj / 1e3),
             Table::pct(-percent_saved(samie.dcache_energy_nj, conv.dcache_energy_nj))});
  t.add_row({"DTLB energy (uJ)", Table::num(conv.dtlb_energy_nj / 1e3),
             Table::num(samie.dtlb_energy_nj / 1e3),
             Table::pct(-percent_saved(samie.dtlb_energy_nj, conv.dtlb_energy_nj))});
  t.add_row({"deadlock flushes", std::to_string(conv.core.deadlock_flushes),
             std::to_string(samie.core.deadlock_flushes), ""});
  t.add_row({"forwarded loads", std::to_string(conv.core.forwarded_loads),
             std::to_string(samie.core.forwarded_loads), ""});
  t.add_row({"way-known accesses", std::to_string(conv.core.dcache_way_known),
             std::to_string(samie.core.dcache_way_known), ""});
  t.add_row({"value mismatches", std::to_string(conv.core.value_mismatches),
             std::to_string(samie.core.value_mismatches), ""});
  t.print(std::cout);

  if (conv.core.value_mismatches != 0 || samie.core.value_mismatches != 0) {
    std::cerr << "ERROR: memory ordering violated\n";
    return 1;
  }
  std::cout << "\nAll loads observed program-order-correct values.\n";
  return 0;
}
