// trace_inspector: print the statistical properties of a workload that
// determine how well SAMIE-LSQ will do on it — instruction mix, in-flight
// cache-line sharing, and DistribLSQ bank concentration (the two
// observations Section 1 of the paper is built on).
//
//   ./trace_inspector [program ...]
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/trace/analysis.h"
#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

int main(int argc, char** argv) {
  using namespace samie;

  std::vector<std::string> programs;
  for (int i = 1; i < argc; ++i) programs.emplace_back(argv[i]);
  if (programs.empty()) programs = trace::spec2000_names();

  constexpr std::uint64_t kInsts = 100'000;
  constexpr std::size_t kWindow = 96;  // ~in-flight memory instructions

  Table t({"program", "load%", "store%", "branch%", "reuse frac",
           "acc/line", "max lines/bank", "distinct lines"});
  for (const auto& name : programs) {
    trace::WorkloadGenerator gen(trace::spec2000_profile(name), 7);
    const trace::Trace tr = gen.generate(kInsts);
    const trace::MixStats mix = trace::compute_mix(tr);
    const trace::SharingStats sh = trace::compute_sharing(tr, kWindow);
    const trace::BankSpreadStats bk = trace::compute_bank_spread(tr, kWindow, 64);
    t.add_row({name, Table::num(mix.load_frac * 100, 1),
               Table::num(mix.store_frac * 100, 1),
               Table::num(mix.branch_frac * 100, 1),
               Table::num(sh.reuse_fraction, 2),
               Table::num(sh.accesses_per_line, 2),
               Table::num(bk.max_lines_per_bank, 1),
               Table::num(bk.mean_distinct_lines, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\nreuse frac   — fraction of in-window accesses whose line was\n"
         "               already touched (drives Dcache/DTLB reuse, Fig 9/10)\n"
         "max lines/bank — in-flight lines colliding on one DistribLSQ bank\n"
         "               (drives SharedLSQ pressure and deadlocks, Fig 3/6)\n";
  return 0;
}
