// trace_inspector: print the statistical properties of a workload that
// determine how well SAMIE-LSQ will do on it — instruction mix, in-flight
// cache-line sharing, and DistribLSQ bank concentration (the two
// observations Section 1 of the paper is built on).
//
//   ./trace_inspector [program | trace.samt ...]
//
// Arguments naming a file are opened as recorded SAMT traces: the header
// (version, record count, provenance, checksum) is dumped and the same
// statistics are computed over the mmap'd records — without copying the
// trace to the heap. Other arguments are SPEC2000 profile names.
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/trace/analysis.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace {

using namespace samie;

void dump_samt_header(const std::string& path, const trace::SamtHeader& h) {
  std::ostringstream sum;
  sum << std::hex << std::setw(16) << std::setfill('0') << h.checksum;
  std::cout << path << ":\n"
            << "  magic        SAMTRACE (v" << h.version << ")\n"
            << "  name         "
            << std::string(h.name, ::strnlen(h.name, sizeof h.name)) << "\n"
            << "  records      " << h.count << " x " << h.record_bytes
            << " bytes\n"
            << "  seed         " << h.seed << "\n"
            << "  checksum     0x" << sum.str() << " (fnv1a-64)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  if (args.empty()) args = trace::spec2000_names();

  constexpr std::uint64_t kInsts = 100'000;
  constexpr std::size_t kWindow = 96;  // ~in-flight memory instructions

  Table t({"program", "load%", "store%", "branch%", "reuse frac",
           "acc/line", "max lines/bank", "distinct lines"});
  for (const auto& arg : args) {
    trace::TraceSource src = [&]() -> trace::TraceSource {
      try {
        // Only a regular file can be a SAMT trace; a stray *directory*
        // named like a program must not shadow the profile.
        if (std::filesystem::is_regular_file(arg)) {
          trace::TraceSource s = trace::TraceSource::open_samt(arg);
          dump_samt_header(arg, trace::read_samt_header(arg));
          return s;
        }
        return trace::TraceSource::generate(trace::spec2000_profile(arg), 7,
                                            kInsts);
      } catch (const std::exception& e) {
        std::cerr << "trace_inspector: " << arg
                  << ": not a SAMT file or SPEC2000 program (" << e.what()
                  << ")\n";
        std::exit(1);
      }
    }();
    const trace::TraceView tr = src.view();
    const trace::MixStats mix = trace::compute_mix(tr);
    const trace::SharingStats sh = trace::compute_sharing(tr, kWindow);
    const trace::BankSpreadStats bk = trace::compute_bank_spread(tr, kWindow, 64);
    t.add_row({src.name().empty() ? arg : src.name(),
               Table::num(mix.load_frac * 100, 1),
               Table::num(mix.store_frac * 100, 1),
               Table::num(mix.branch_frac * 100, 1),
               Table::num(sh.reuse_fraction, 2),
               Table::num(sh.accesses_per_line, 2),
               Table::num(bk.max_lines_per_bank, 1),
               Table::num(bk.mean_distinct_lines, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\nreuse frac   — fraction of in-window accesses whose line was\n"
         "               already touched (drives Dcache/DTLB reuse, Fig 9/10)\n"
         "max lines/bank — in-flight lines colliding on one DistribLSQ bank\n"
         "               (drives SharedLSQ pressure and deadlocks, Fig 3/6)\n";
  return 0;
}
