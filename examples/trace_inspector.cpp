// trace_inspector: print the statistical properties of a workload that
// determine how well SAMIE-LSQ will do on it — instruction mix, in-flight
// cache-line sharing, and DistribLSQ bank concentration (the two
// observations Section 1 of the paper is built on).
//
//   ./trace_inspector [--verify] [program | trace.samt ...]
//
// Arguments naming a file are opened as recorded SAMT traces: the header
// (version, record count, provenance, checksum) is dumped and the same
// statistics are computed over the mmap'd records — without copying the
// trace to the heap. Other arguments are SPEC2000 profile names.
//
// --verify mode instead deep-walks each named SAMT file checking every
// integrity guard (v1: whole-file checksum; v2: footer, index and every
// block guard) and prints a per-block status line plus, on damage, the
// damage class and the file offset of the first corrupt byte. Exit
// status: 0 when every file verified clean, 2 when any file is damaged,
// 1 on usage errors or files that are not SAMT traces at all.
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/trace/analysis.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace {

using namespace samie;

void dump_samt_header(const std::string& path, const trace::SamtHeader& h) {
  std::ostringstream sum;
  sum << std::hex << std::setw(16) << std::setfill('0') << h.checksum;
  std::cout << path << ":\n"
            << "  magic        SAMTRACE (v" << h.version << ")\n"
            << "  name         "
            << std::string(h.name, ::strnlen(h.name, sizeof h.name)) << "\n"
            << "  records      " << h.count << " x " << h.record_bytes
            << " bytes\n"
            << "  seed         " << h.seed << "\n"
            << "  checksum     0x" << sum.str() << " (fnv1a-64)\n";
}

/// --verify: full integrity walk of one SAMT file. Returns 0 (clean) or
/// 2 (damaged); exits 1 if the file is not a SAMT trace at all.
int verify_file(const std::string& path) {
  trace::TraceHealth h;
  try {
    h = trace::trace_health(path);
  } catch (const trace::TraceFormatError& e) {
    std::cerr << "trace_inspector: " << path << ": " << e.what() << "\n";
    std::exit(1);
  }
  std::cout << path << ": v" << h.version << ", " << h.record_count
            << " records, " << h.blocks.size() << " blocks\n";
  for (std::size_t i = 0; i < h.blocks.size(); ++i) {
    const trace::BlockHealth& b = h.blocks[i];
    std::cout << "  block " << i << ": records [" << b.first_record << ", "
              << (b.first_record + b.record_count) << ") @ offset "
              << b.file_offset << "  " << (b.ok ? "ok" : "CORRUPT") << "\n";
  }
  if (h.ok()) {
    std::cout << "  verdict: clean\n";
    return 0;
  }
  std::cout << "  verdict: DAMAGED (" << trace::trace_damage_name(h.damage)
            << "), " << h.bad_blocks << " bad block"
            << (h.bad_blocks == 1 ? "" : "s")
            << ", first corrupt byte at offset " << h.first_bad_offset
            << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") verify = true;
    else args.emplace_back(arg);
  }
  if (verify) {
    if (args.empty()) {
      std::cerr << "trace_inspector: --verify wants SAMT file paths\n";
      return 1;
    }
    int worst = 0;
    for (const auto& arg : args) worst = std::max(worst, verify_file(arg));
    return worst;
  }
  if (args.empty()) args = trace::spec2000_names();

  constexpr std::uint64_t kInsts = 100'000;
  constexpr std::size_t kWindow = 96;  // ~in-flight memory instructions

  Table t({"program", "load%", "store%", "branch%", "reuse frac",
           "acc/line", "max lines/bank", "distinct lines"});
  for (const auto& arg : args) {
    trace::TraceSource src = [&]() -> trace::TraceSource {
      try {
        // Only a regular file can be a SAMT trace; a stray *directory*
        // named like a program must not shadow the profile.
        if (std::filesystem::is_regular_file(arg)) {
          trace::TraceSource s = trace::TraceSource::open_samt(arg);
          dump_samt_header(arg, trace::read_samt_header(arg));
          return s;
        }
        return trace::TraceSource::generate(trace::spec2000_profile(arg), 7,
                                            kInsts);
      } catch (const std::exception& e) {
        std::cerr << "trace_inspector: " << arg
                  << ": not a SAMT file or SPEC2000 program (" << e.what()
                  << ")\n";
        std::exit(1);
      }
    }();
    const trace::TraceView tr = src.view();
    const trace::MixStats mix = trace::compute_mix(tr);
    const trace::SharingStats sh = trace::compute_sharing(tr, kWindow);
    const trace::BankSpreadStats bk = trace::compute_bank_spread(tr, kWindow, 64);
    t.add_row({src.name().empty() ? arg : src.name(),
               Table::num(mix.load_frac * 100, 1),
               Table::num(mix.store_frac * 100, 1),
               Table::num(mix.branch_frac * 100, 1),
               Table::num(sh.reuse_fraction, 2),
               Table::num(sh.accesses_per_line, 2),
               Table::num(bk.max_lines_per_bank, 1),
               Table::num(bk.mean_distinct_lines, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\nreuse frac   — fraction of in-window accesses whose line was\n"
         "               already touched (drives Dcache/DTLB reuse, Fig 9/10)\n"
         "max lines/bank — in-flight lines colliding on one DistribLSQ bank\n"
         "               (drives SharedLSQ pressure and deadlocks, Fig 3/6)\n";
  return 0;
}
