// compare_lsq: run one or more programs under all four LSQ organizations
// (conventional / unbounded / ARB / SAMIE) and print a side-by-side
// comparison — the per-program view behind Figures 1 and 5.
//
//   ./compare_lsq [program ...]
//
// With no arguments a representative cross-section of the suite is used.
#include <iostream>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"

int main(int argc, char** argv) {
  using namespace samie;

  std::vector<std::string> programs;
  for (int i = 1; i < argc; ++i) programs.emplace_back(argv[i]);
  if (programs.empty()) {
    programs = {"ammp", "swim", "facerec", "fma3d", "gcc", "mcf", "sixtrack"};
  }
  const std::uint64_t insts = sim::bench_instructions(150'000);

  std::vector<sim::Job> jobs;
  for (const auto& p : programs) {
    for (const auto choice :
         {sim::LsqChoice::kConventional, sim::LsqChoice::kUnbounded,
          sim::LsqChoice::kArb, sim::LsqChoice::kSamie}) {
      sim::SimConfig cfg = sim::paper_config(choice);
      cfg.instructions = insts;
      if (choice == sim::LsqChoice::kArb) {
        cfg.arb = lsq::ArbConfig{.banks = 8, .rows_per_bank = 16,
                                 .max_inflight = 128, .line_bytes = 32};
      }
      jobs.push_back(sim::Job{p, cfg, std::string(sim::lsq_choice_name(choice))});
    }
  }
  const auto results = sim::run_jobs(jobs);

  Table t({"program", "LSQ", "IPC", "vs conv", "LSQ uJ", "deadlk/Mcyc",
           "shared occ", "buf busy%", "mismatch"});
  double conv_ipc = 0.0;
  for (const auto& r : results) {
    if (r.job.tag == "conventional") conv_ipc = r.result.core.ipc;
    t.add_row({r.job.program, r.job.tag, Table::num(r.result.core.ipc),
               Table::pct(percent_delta(r.result.core.ipc, conv_ipc)),
               Table::num(r.result.lsq_energy_nj / 1e3),
               Table::num(r.result.deadlocks_per_mcycle(), 1),
               Table::num(r.result.shared_occupancy_mean, 2),
               Table::num(r.result.buffer_nonempty_frac * 100.0, 1),
               std::to_string(r.result.core.value_mismatches)});
  }
  t.print(std::cout);
  return 0;
}
