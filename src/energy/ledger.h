// Runtime energy and active-area accounting.
//
// The simulator emits one ledger event per microarchitectural activity.
// Hooks are pure 64-bit counter increments — no floating point runs on
// the hot path. Variable-cost associative searches keep a sufficient
// statistic (search count, total operands compared), which makes the
// energy fold exact:
//
//   sum over N searches of (base + per * n_i)  ==  N*base + (sum n_i)*per
//
// Energy is computed once, at fold time, as `count * pj` from the
// constants in lsq_model.h; the fold is O(1) in the number of events and
// merging two ledgers is an associative integer add (see merge()).
// docs/ENERGY_LEDGER.md documents the fold semantics and why the golden
// statistics were re-frozen when this scheme replaced per-event FP
// accumulation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/energy/lsq_model.h"

namespace samie::energy {

/// Events of the conventional fully-associative LSQ (Table 4 rows).
class ConvLsqLedger {
 public:
  explicit ConvLsqLedger(const LsqEnergyConstants& k) : k_(&k) {}

  /// One associative search comparing against `compared` addresses.
  void on_addr_search(std::uint64_t compared) {
    ++searches_;
    addrs_compared_ += compared;
  }
  void on_addr_write() { ++addr_rw_; }
  void on_addr_read() { ++addr_rw_; }
  void on_datum_write() { ++datum_rw_; }
  void on_datum_read() { ++datum_rw_; }

  /// Fold the event counts into picojoules. Called once per run.
  [[nodiscard]] double energy_pj() const {
    return static_cast<double>(searches_) * k_->conv.addr_cmp_base_pj +
           static_cast<double>(addrs_compared_) * k_->conv.addr_cmp_per_addr_pj +
           static_cast<double>(addr_rw_) * k_->conv.addr_rw_pj +
           static_cast<double>(datum_rw_) * k_->conv.datum_rw_pj;
  }
  [[nodiscard]] std::uint64_t searches() const { return searches_; }
  [[nodiscard]] std::uint64_t addresses_compared() const { return addrs_compared_; }
  [[nodiscard]] std::uint64_t addr_accesses() const { return addr_rw_; }
  [[nodiscard]] std::uint64_t datum_accesses() const { return datum_rw_; }

  /// Integer-add the counts of `o` into this ledger. Associative and
  /// commutative: merging per-shard ledgers in any order yields the same
  /// counts, hence bit-identical folded energy.
  void merge(const ConvLsqLedger& o) {
    searches_ += o.searches_;
    addrs_compared_ += o.addrs_compared_;
    addr_rw_ += o.addr_rw_;
    datum_rw_ += o.datum_rw_;
  }

  static constexpr std::size_t kSavedCounts = 4;
  /// Raw counts out to / in from a flat array (SimResult carries them so
  /// sharded replay can re-fold energy from exactly-merged integers).
  void save(std::uint64_t* out) const {
    out[0] = searches_;
    out[1] = addrs_compared_;
    out[2] = addr_rw_;
    out[3] = datum_rw_;
  }
  void load(const std::uint64_t* in) {
    searches_ = in[0];
    addrs_compared_ = in[1];
    addr_rw_ = in[2];
    datum_rw_ = in[3];
  }

 private:
  const LsqEnergyConstants* k_;
  std::uint64_t searches_ = 0;
  std::uint64_t addrs_compared_ = 0;
  std::uint64_t addr_rw_ = 0;
  std::uint64_t datum_rw_ = 0;
};

/// Events of the SAMIE-LSQ (Table 5 rows), with the Figure 8 breakdown.
class SamieLsqLedger {
 public:
  explicit SamieLsqLedger(const LsqEnergyConstants& k) : k_(&k) {}

  // --- bus -----------------------------------------------------------------
  void on_bus_send() { ++bus_sends_; }

  // --- DistribLSQ ------------------------------------------------------------
  void on_distrib_addr_search(std::uint64_t compared) {
    ++d_addr_searches_;
    d_addrs_compared_ += compared;
  }
  void on_distrib_age_search(std::uint64_t ids_compared) {
    ++d_age_searches_;
    d_age_ids_compared_ += ids_compared;
  }
  void on_distrib_addr_write() { ++d_addr_rw_; }
  void on_distrib_age_write() { ++d_age_rw_; }
  void on_distrib_datum_rw() { ++d_datum_rw_; }
  void on_distrib_translation_rw() { ++d_translation_rw_; }
  void on_distrib_line_id_rw() { ++d_line_id_rw_; }

  // --- SharedLSQ -------------------------------------------------------------
  void on_shared_addr_search(std::uint64_t compared) {
    ++s_addr_searches_;
    s_addrs_compared_ += compared;
  }
  void on_shared_age_search(std::uint64_t ids_compared) {
    ++s_age_searches_;
    s_age_ids_compared_ += ids_compared;
  }
  void on_shared_addr_write() { ++s_addr_rw_; }
  void on_shared_age_write() { ++s_age_rw_; }
  void on_shared_datum_rw() { ++s_datum_rw_; }
  void on_shared_translation_rw() { ++s_translation_rw_; }
  void on_shared_line_id_rw() { ++s_line_id_rw_; }

  /// Fused Table-5 charge for one SAMIE placement search (try_place):
  /// one bus send, then in the target bank one address search over
  /// `bank_entries` valid entries plus one age search per valid entry
  /// (their in-use slot counts summing to `bank_ids`), and the mirrored
  /// SharedLSQ search over `shared_entries` entries / `shared_ids` ids.
  /// Identical counts to the equivalent sequence of per-event hooks —
  /// the sufficient statistics make the batching exact.
  void on_placement_search(std::uint64_t bank_entries, std::uint64_t bank_ids,
                           std::uint64_t shared_entries,
                           std::uint64_t shared_ids) {
    ++bus_sends_;
    ++d_addr_searches_;
    d_addrs_compared_ += bank_entries;
    d_age_searches_ += bank_entries;
    d_age_ids_compared_ += bank_ids;
    ++s_addr_searches_;
    s_addrs_compared_ += shared_entries;
    s_age_searches_ += shared_entries;
    s_age_ids_compared_ += shared_ids;
  }

  // --- AddrBuffer ------------------------------------------------------------
  /// One FIFO slot write or read (address word + age id).
  void on_addrbuf_write() { ++addrbuf_accesses_; }
  void on_addrbuf_read() { ++addrbuf_accesses_; }

  // --- fold ----------------------------------------------------------------
  [[nodiscard]] double energy_pj() const {
    return distrib_pj() + shared_pj() + addrbuf_pj() + bus_pj();
  }
  [[nodiscard]] double distrib_pj() const {
    return static_cast<double>(d_addr_searches_) * k_->samie.d_addr_cmp_base_pj +
           static_cast<double>(d_addrs_compared_) * k_->samie.d_addr_cmp_per_addr_pj +
           static_cast<double>(d_age_searches_) * k_->samie.d_age_cmp_base_pj +
           static_cast<double>(d_age_ids_compared_) * k_->samie.d_age_cmp_per_id_pj +
           static_cast<double>(d_addr_rw_) * k_->samie.d_addr_rw_pj +
           static_cast<double>(d_age_rw_) * k_->samie.d_age_rw_pj +
           static_cast<double>(d_datum_rw_) * k_->samie.d_datum_rw_pj +
           static_cast<double>(d_translation_rw_) * k_->samie.d_translation_rw_pj +
           static_cast<double>(d_line_id_rw_) * k_->samie.d_line_id_rw_pj;
  }
  [[nodiscard]] double shared_pj() const {
    return static_cast<double>(s_addr_searches_) * k_->samie.s_addr_cmp_base_pj +
           static_cast<double>(s_addrs_compared_) * k_->samie.s_addr_cmp_per_addr_pj +
           static_cast<double>(s_age_searches_) * k_->samie.s_age_cmp_base_pj +
           static_cast<double>(s_age_ids_compared_) * k_->samie.s_age_cmp_per_id_pj +
           static_cast<double>(s_addr_rw_) * k_->samie.s_addr_rw_pj +
           static_cast<double>(s_age_rw_) * k_->samie.s_age_rw_pj +
           static_cast<double>(s_datum_rw_) * k_->samie.s_datum_rw_pj +
           static_cast<double>(s_translation_rw_) * k_->samie.s_translation_rw_pj +
           static_cast<double>(s_line_id_rw_) * k_->samie.s_line_id_rw_pj;
  }
  [[nodiscard]] double addrbuf_pj() const {
    return static_cast<double>(addrbuf_accesses_) *
           (k_->samie.ab_datum_rw_pj + k_->samie.ab_age_rw_pj);
  }
  [[nodiscard]] double bus_pj() const {
    return static_cast<double>(bus_sends_) * k_->samie.bus_send_addr_pj;
  }
  [[nodiscard]] std::uint64_t bus_sends() const { return bus_sends_; }
  [[nodiscard]] std::uint64_t distrib_searches() const { return d_addr_searches_; }
  [[nodiscard]] std::uint64_t shared_searches() const { return s_addr_searches_; }
  [[nodiscard]] std::uint64_t addrbuf_accesses() const { return addrbuf_accesses_; }

  void merge(const SamieLsqLedger& o) {
    bus_sends_ += o.bus_sends_;
    d_addr_searches_ += o.d_addr_searches_;
    d_addrs_compared_ += o.d_addrs_compared_;
    d_age_searches_ += o.d_age_searches_;
    d_age_ids_compared_ += o.d_age_ids_compared_;
    d_addr_rw_ += o.d_addr_rw_;
    d_age_rw_ += o.d_age_rw_;
    d_datum_rw_ += o.d_datum_rw_;
    d_translation_rw_ += o.d_translation_rw_;
    d_line_id_rw_ += o.d_line_id_rw_;
    s_addr_searches_ += o.s_addr_searches_;
    s_addrs_compared_ += o.s_addrs_compared_;
    s_age_searches_ += o.s_age_searches_;
    s_age_ids_compared_ += o.s_age_ids_compared_;
    s_addr_rw_ += o.s_addr_rw_;
    s_age_rw_ += o.s_age_rw_;
    s_datum_rw_ += o.s_datum_rw_;
    s_translation_rw_ += o.s_translation_rw_;
    s_line_id_rw_ += o.s_line_id_rw_;
    addrbuf_accesses_ += o.addrbuf_accesses_;
  }

  static constexpr std::size_t kSavedCounts = 20;
  void save(std::uint64_t* out) const {
    const std::uint64_t counts[kSavedCounts] = {
        bus_sends_,        d_addr_searches_, d_addrs_compared_,
        d_age_searches_,   d_age_ids_compared_, d_addr_rw_,
        d_age_rw_,         d_datum_rw_,      d_translation_rw_,
        d_line_id_rw_,     s_addr_searches_, s_addrs_compared_,
        s_age_searches_,   s_age_ids_compared_, s_addr_rw_,
        s_age_rw_,         s_datum_rw_,      s_translation_rw_,
        s_line_id_rw_,     addrbuf_accesses_};
    for (std::size_t i = 0; i < kSavedCounts; ++i) out[i] = counts[i];
  }
  void load(const std::uint64_t* in) {
    bus_sends_ = in[0];
    d_addr_searches_ = in[1];
    d_addrs_compared_ = in[2];
    d_age_searches_ = in[3];
    d_age_ids_compared_ = in[4];
    d_addr_rw_ = in[5];
    d_age_rw_ = in[6];
    d_datum_rw_ = in[7];
    d_translation_rw_ = in[8];
    d_line_id_rw_ = in[9];
    s_addr_searches_ = in[10];
    s_addrs_compared_ = in[11];
    s_age_searches_ = in[12];
    s_age_ids_compared_ = in[13];
    s_addr_rw_ = in[14];
    s_age_rw_ = in[15];
    s_datum_rw_ = in[16];
    s_translation_rw_ = in[17];
    s_line_id_rw_ = in[18];
    addrbuf_accesses_ = in[19];
  }

 private:
  const LsqEnergyConstants* k_;
  std::uint64_t bus_sends_ = 0;
  std::uint64_t d_addr_searches_ = 0;
  std::uint64_t d_addrs_compared_ = 0;
  std::uint64_t d_age_searches_ = 0;
  std::uint64_t d_age_ids_compared_ = 0;
  std::uint64_t d_addr_rw_ = 0;
  std::uint64_t d_age_rw_ = 0;
  std::uint64_t d_datum_rw_ = 0;
  std::uint64_t d_translation_rw_ = 0;
  std::uint64_t d_line_id_rw_ = 0;
  std::uint64_t s_addr_searches_ = 0;
  std::uint64_t s_addrs_compared_ = 0;
  std::uint64_t s_age_searches_ = 0;
  std::uint64_t s_age_ids_compared_ = 0;
  std::uint64_t s_addr_rw_ = 0;
  std::uint64_t s_age_rw_ = 0;
  std::uint64_t s_datum_rw_ = 0;
  std::uint64_t s_translation_rw_ = 0;
  std::uint64_t s_line_id_rw_ = 0;
  std::uint64_t addrbuf_accesses_ = 0;
};

/// L1 data cache access energy (full vs way-known accesses, Figure 9).
class DcacheLedger {
 public:
  explicit DcacheLedger(const LsqEnergyConstants& k) : k_(&k) {}

  void on_full_access() { ++full_; }
  void on_way_known_access() { ++known_; }

  [[nodiscard]] double energy_pj() const {
    return static_cast<double>(full_) * k_->mem.dcache_full_access_pj +
           static_cast<double>(known_) * k_->mem.dcache_way_known_pj;
  }
  [[nodiscard]] std::uint64_t full_accesses() const { return full_; }
  [[nodiscard]] std::uint64_t way_known_accesses() const { return known_; }

  void merge(const DcacheLedger& o) {
    full_ += o.full_;
    known_ += o.known_;
  }

  static constexpr std::size_t kSavedCounts = 2;
  void save(std::uint64_t* out) const {
    out[0] = full_;
    out[1] = known_;
  }
  void load(const std::uint64_t* in) {
    full_ = in[0];
    known_ = in[1];
  }

 private:
  const LsqEnergyConstants* k_;
  std::uint64_t full_ = 0;
  std::uint64_t known_ = 0;
};

/// Data TLB access energy (Figure 10). Cached translations cost nothing in
/// the DTLB (the LSQ-side read is booked by SamieLsqLedger).
class DtlbLedger {
 public:
  explicit DtlbLedger(const LsqEnergyConstants& k) : k_(&k) {}

  void on_access() { ++accesses_; }
  void on_cached_translation() { ++cached_; }

  [[nodiscard]] double energy_pj() const {
    return static_cast<double>(accesses_) * k_->mem.dtlb_access_pj;
  }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t cached_translations() const { return cached_; }

  void merge(const DtlbLedger& o) {
    accesses_ += o.accesses_;
    cached_ += o.cached_;
  }

  static constexpr std::size_t kSavedCounts = 2;
  void save(std::uint64_t* out) const {
    out[0] = accesses_;
    out[1] = cached_;
  }
  void load(const std::uint64_t* in) {
    accesses_ = in[0];
    cached_ = in[1];
  }

 private:
  const LsqEnergyConstants* k_;
  std::uint64_t accesses_ = 0;
  std::uint64_t cached_ = 0;
};

/// Integrates active area over cycles (Figures 11 and 12). Units are
/// um^2 * cycles; the figures' shapes are invariant to the unit choice.
/// Deliberately FP: the integrand varies per cycle with occupancy, so
/// there is no integer sufficient statistic; StatsCollector batches the
/// per-cycle adds run-length-wise instead.
class AreaIntegrator {
 public:
  void add_cycle(double distrib_um2, double shared_um2, double addrbuf_um2) {
    distrib_ += distrib_um2;
    shared_ += shared_um2;
    addrbuf_ += addrbuf_um2;
  }
  void add_cycle_conventional(double um2) { conventional_ += um2; }

  [[nodiscard]] double conventional() const { return conventional_; }
  [[nodiscard]] double distrib() const { return distrib_; }
  [[nodiscard]] double shared() const { return shared_; }
  [[nodiscard]] double addrbuf() const { return addrbuf_; }
  [[nodiscard]] double samie_total() const { return distrib_ + shared_ + addrbuf_; }

 private:
  double conventional_ = 0.0;
  double distrib_ = 0.0;
  double shared_ = 0.0;
  double addrbuf_ = 0.0;
};

}  // namespace samie::energy
