// Runtime energy and active-area accounting.
//
// The simulator emits one ledger event per microarchitectural activity;
// the ledgers weight events with the constants from lsq_model.h. Event
// *counts* are kept alongside accumulated energy so tests can check the
// accounting independently of the constants.
#pragma once

#include <cstdint>

#include "src/energy/lsq_model.h"

namespace samie::energy {

/// Events of the conventional fully-associative LSQ (Table 4 rows).
class ConvLsqLedger {
 public:
  explicit ConvLsqLedger(const LsqEnergyConstants& k) : k_(&k) {}

  /// One associative search comparing against `compared` addresses.
  void on_addr_search(std::uint64_t compared) {
    ++searches_;
    addrs_compared_ += compared;
    energy_pj_ += k_->conv.addr_cmp_base_pj +
                  k_->conv.addr_cmp_per_addr_pj * static_cast<double>(compared);
  }
  void on_addr_write() { ++addr_rw_; energy_pj_ += k_->conv.addr_rw_pj; }
  void on_addr_read() { ++addr_rw_; energy_pj_ += k_->conv.addr_rw_pj; }
  void on_datum_write() { ++datum_rw_; energy_pj_ += k_->conv.datum_rw_pj; }
  void on_datum_read() { ++datum_rw_; energy_pj_ += k_->conv.datum_rw_pj; }

  [[nodiscard]] double energy_pj() const { return energy_pj_; }
  [[nodiscard]] std::uint64_t searches() const { return searches_; }
  [[nodiscard]] std::uint64_t addresses_compared() const { return addrs_compared_; }
  [[nodiscard]] std::uint64_t addr_accesses() const { return addr_rw_; }
  [[nodiscard]] std::uint64_t datum_accesses() const { return datum_rw_; }

 private:
  const LsqEnergyConstants* k_;
  double energy_pj_ = 0.0;
  std::uint64_t searches_ = 0;
  std::uint64_t addrs_compared_ = 0;
  std::uint64_t addr_rw_ = 0;
  std::uint64_t datum_rw_ = 0;
};

/// Events of the SAMIE-LSQ (Table 5 rows), with the Figure 8 breakdown.
class SamieLsqLedger {
 public:
  explicit SamieLsqLedger(const LsqEnergyConstants& k) : k_(&k) {}

  // --- bus -----------------------------------------------------------------
  void on_bus_send() { ++bus_sends_; bus_pj_ += k_->samie.bus_send_addr_pj; }

  // --- DistribLSQ ------------------------------------------------------------
  void on_distrib_addr_search(std::uint64_t compared) {
    ++distrib_searches_;
    distrib_pj_ += k_->samie.d_addr_cmp_base_pj +
                   k_->samie.d_addr_cmp_per_addr_pj * static_cast<double>(compared);
  }
  void on_distrib_age_search(std::uint64_t ids_compared) {
    distrib_pj_ += k_->samie.d_age_cmp_base_pj +
                   k_->samie.d_age_cmp_per_id_pj * static_cast<double>(ids_compared);
  }
  void on_distrib_addr_write() { distrib_pj_ += k_->samie.d_addr_rw_pj; }
  void on_distrib_age_write() { distrib_pj_ += k_->samie.d_age_rw_pj; }
  void on_distrib_datum_rw() { distrib_pj_ += k_->samie.d_datum_rw_pj; }
  void on_distrib_translation_rw() { distrib_pj_ += k_->samie.d_translation_rw_pj; }
  void on_distrib_line_id_rw() { distrib_pj_ += k_->samie.d_line_id_rw_pj; }

  // --- SharedLSQ -------------------------------------------------------------
  void on_shared_addr_search(std::uint64_t compared) {
    ++shared_searches_;
    shared_pj_ += k_->samie.s_addr_cmp_base_pj +
                  k_->samie.s_addr_cmp_per_addr_pj * static_cast<double>(compared);
  }
  void on_shared_age_search(std::uint64_t ids_compared) {
    shared_pj_ += k_->samie.s_age_cmp_base_pj +
                  k_->samie.s_age_cmp_per_id_pj * static_cast<double>(ids_compared);
  }
  void on_shared_addr_write() { shared_pj_ += k_->samie.s_addr_rw_pj; }
  void on_shared_age_write() { shared_pj_ += k_->samie.s_age_rw_pj; }
  void on_shared_datum_rw() { shared_pj_ += k_->samie.s_datum_rw_pj; }
  void on_shared_translation_rw() { shared_pj_ += k_->samie.s_translation_rw_pj; }
  void on_shared_line_id_rw() { shared_pj_ += k_->samie.s_line_id_rw_pj; }

  // --- AddrBuffer ------------------------------------------------------------
  /// One FIFO slot write or read (address word + age id).
  void on_addrbuf_write() {
    ++addrbuf_accesses_;
    addrbuf_pj_ += k_->samie.ab_datum_rw_pj + k_->samie.ab_age_rw_pj;
  }
  void on_addrbuf_read() {
    ++addrbuf_accesses_;
    addrbuf_pj_ += k_->samie.ab_datum_rw_pj + k_->samie.ab_age_rw_pj;
  }

  [[nodiscard]] double energy_pj() const {
    return distrib_pj_ + shared_pj_ + addrbuf_pj_ + bus_pj_;
  }
  [[nodiscard]] double distrib_pj() const { return distrib_pj_; }
  [[nodiscard]] double shared_pj() const { return shared_pj_; }
  [[nodiscard]] double addrbuf_pj() const { return addrbuf_pj_; }
  [[nodiscard]] double bus_pj() const { return bus_pj_; }
  [[nodiscard]] std::uint64_t bus_sends() const { return bus_sends_; }
  [[nodiscard]] std::uint64_t distrib_searches() const { return distrib_searches_; }
  [[nodiscard]] std::uint64_t shared_searches() const { return shared_searches_; }
  [[nodiscard]] std::uint64_t addrbuf_accesses() const { return addrbuf_accesses_; }

 private:
  const LsqEnergyConstants* k_;
  double distrib_pj_ = 0.0;
  double shared_pj_ = 0.0;
  double addrbuf_pj_ = 0.0;
  double bus_pj_ = 0.0;
  std::uint64_t bus_sends_ = 0;
  std::uint64_t distrib_searches_ = 0;
  std::uint64_t shared_searches_ = 0;
  std::uint64_t addrbuf_accesses_ = 0;
};

/// L1 data cache access energy (full vs way-known accesses, Figure 9).
class DcacheLedger {
 public:
  explicit DcacheLedger(const LsqEnergyConstants& k) : k_(&k) {}

  void on_full_access() { ++full_; energy_pj_ += k_->mem.dcache_full_access_pj; }
  void on_way_known_access() { ++known_; energy_pj_ += k_->mem.dcache_way_known_pj; }

  [[nodiscard]] double energy_pj() const { return energy_pj_; }
  [[nodiscard]] std::uint64_t full_accesses() const { return full_; }
  [[nodiscard]] std::uint64_t way_known_accesses() const { return known_; }

 private:
  const LsqEnergyConstants* k_;
  double energy_pj_ = 0.0;
  std::uint64_t full_ = 0;
  std::uint64_t known_ = 0;
};

/// Data TLB access energy (Figure 10). Cached translations cost nothing in
/// the DTLB (the LSQ-side read is booked by SamieLsqLedger).
class DtlbLedger {
 public:
  explicit DtlbLedger(const LsqEnergyConstants& k) : k_(&k) {}

  void on_access() { ++accesses_; energy_pj_ += k_->mem.dtlb_access_pj; }
  void on_cached_translation() { ++cached_; }

  [[nodiscard]] double energy_pj() const { return energy_pj_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t cached_translations() const { return cached_; }

 private:
  const LsqEnergyConstants* k_;
  double energy_pj_ = 0.0;
  std::uint64_t accesses_ = 0;
  std::uint64_t cached_ = 0;
};

/// Integrates active area over cycles (Figures 11 and 12). Units are
/// um^2 * cycles; the figures' shapes are invariant to the unit choice.
class AreaIntegrator {
 public:
  void add_cycle(double distrib_um2, double shared_um2, double addrbuf_um2) {
    distrib_ += distrib_um2;
    shared_ += shared_um2;
    addrbuf_ += addrbuf_um2;
  }
  void add_cycle_conventional(double um2) { conventional_ += um2; }

  [[nodiscard]] double conventional() const { return conventional_; }
  [[nodiscard]] double distrib() const { return distrib_; }
  [[nodiscard]] double shared() const { return shared_; }
  [[nodiscard]] double addrbuf() const { return addrbuf_; }
  [[nodiscard]] double samie_total() const { return distrib_ + shared_ + addrbuf_; }

 private:
  double conventional_ = 0.0;
  double distrib_ = 0.0;
  double shared_ = 0.0;
  double addrbuf_ = 0.0;
};

}  // namespace samie::energy
