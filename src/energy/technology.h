// Process-technology parameters for the CACTI-3.0-style surrogate model.
//
// The paper evaluates at 0.10 um using CACTI 3.0. CACTI itself is not
// available offline, so src/energy re-implements its *shape*: RC-flavoured
// analytical formulas for RAM and CAM arrays whose coefficients are fitted
// to the CACTI outputs the paper publishes (Table 1, Tables 4-6, the
// Section 3.6 delays). The fit is documented and tested; the simulator's
// accounting defaults to the paper's exact published constants so that the
// reproduced figures are apples-to-apples with the paper.
#pragma once

namespace samie::energy {

struct Technology {
  /// Feature size in micrometres (paper: 0.10 um).
  double feature_um = 0.10;

  // --- Cell geometry (um). Cells are square; each extra port adds one
  // wordline/bitline pair in both dimensions. Fitted so that Table 6 cell
  // areas are reproduced exactly at the paper's port counts.
  double ram_cell_base_um = 1.78;
  double ram_cell_port_pitch_um = 0.337;
  double cam_cell_base_um = 2.45;
  double cam_cell_port_pitch_um = 0.355;

  // --- Wire (the DistribLSQ broadcast bus).
  double wire_delay_ns_per_um = 0.000136;
  double wire_energy_pj_per_um = 0.0715;

  // --- RAM access delay (ns): t = a + b*log2(rows) + c*ports + d*cols.
  double ram_t_base = 0.100;
  double ram_t_log_rows = 0.028;
  double ram_t_port = 0.003;
  double ram_t_col = 0.0004;

  // --- CAM search delay (ns): t = base(ports,width) + k(ports)*log2(entries).
  double cam_t_base = 0.52;
  double cam_t_port = 0.006;
  double cam_t_width = 0.001;
  double cam_t_log_base = 0.005;
  double cam_t_log_port = 0.005;

  // --- RAM read/write energy (pJ):
  // (rows*er + cols*ec + e0) * (1 + ep*(ports-1)).
  double ram_e_row = 0.015;
  double ram_e_col = 0.13;
  double ram_e_base = 3.0;
  double ram_e_port = 0.30;

  // --- CAM per-entry compare energy (pJ); search energy is
  // entries*e + compared*e (broadcast to all entries, match evaluation on
  // the compared ones), matching the two-term form of Tables 4/5.
  double cam_e_width = 0.035;
  double cam_e_base = 0.3;
  double cam_e_port = 0.10;
  double cam_e_log_entries = 0.03;

  // --- CAM write energy (pJ): width*(a + b*rows) * (1 + ep*(ports-1)).
  double cam_w_bit_base = 0.05;
  double cam_w_bit_row = 0.002;
  double cam_w_port = 0.50;
};

/// The technology point used throughout the paper.
[[nodiscard]] inline Technology tech_100nm() { return Technology{}; }

}  // namespace samie::energy
