#include "src/energy/array_model.h"

#include <cmath>

namespace samie::energy {

namespace {
[[nodiscard]] double log2d(double x) { return std::log2(x < 1.0 ? 1.0 : x); }
}  // namespace

ArrayModel::ArrayModel(const Technology& tech, ArrayGeometry geom)
    : tech_(tech), geom_(geom) {}

double ArrayModel::cell_area_um2() const {
  const double p = static_cast<double>(geom_.ports);
  const double side = geom_.cell == CellType::kRam
                          ? tech_.ram_cell_base_um + p * tech_.ram_cell_port_pitch_um
                          : tech_.cam_cell_base_um + p * tech_.cam_cell_port_pitch_um;
  return side * side;
}

double ArrayModel::row_area_um2() const {
  return cell_area_um2() * static_cast<double>(geom_.width_bits);
}

double ArrayModel::total_area_um2() const {
  return row_area_um2() * static_cast<double>(geom_.rows);
}

double ArrayModel::ram_access_delay_ns() const {
  return tech_.ram_t_base + tech_.ram_t_log_rows * log2d(static_cast<double>(geom_.rows)) +
         tech_.ram_t_port * static_cast<double>(geom_.ports) +
         tech_.ram_t_col * static_cast<double>(geom_.width_bits);
}

double ArrayModel::cam_search_delay_ns() const {
  const double base = tech_.cam_t_base +
                      tech_.cam_t_port * static_cast<double>(geom_.ports) +
                      tech_.cam_t_width * static_cast<double>(geom_.width_bits);
  const double per_doubling =
      tech_.cam_t_log_base + tech_.cam_t_log_port * static_cast<double>(geom_.ports);
  return base + per_doubling * log2d(static_cast<double>(geom_.rows));
}

double ArrayModel::ram_rw_energy_pj() const {
  const double raw = tech_.ram_e_row * static_cast<double>(geom_.rows) +
                     tech_.ram_e_col * static_cast<double>(geom_.width_bits) +
                     tech_.ram_e_base;
  return raw * (1.0 + tech_.ram_e_port * (static_cast<double>(geom_.ports) - 1.0));
}

double ArrayModel::cam_per_entry_energy_pj() const {
  const double width_term =
      tech_.cam_e_width * static_cast<double>(geom_.width_bits) + tech_.cam_e_base;
  const double port_factor =
      1.0 + tech_.cam_e_port * (static_cast<double>(geom_.ports) - 1.0);
  const double height_factor =
      1.0 + tech_.cam_e_log_entries * log2d(static_cast<double>(geom_.rows));
  return width_term * port_factor * height_factor;
}

double ArrayModel::cam_search_energy_pj(std::uint64_t compared) const {
  const double e = cam_per_entry_energy_pj();
  return e * static_cast<double>(geom_.rows) + e * static_cast<double>(compared);
}

double ArrayModel::cam_write_energy_pj() const {
  const double per_bit = tech_.cam_w_bit_base +
                         tech_.cam_w_bit_row * static_cast<double>(geom_.rows);
  const double port_factor =
      1.0 + tech_.cam_w_port * (static_cast<double>(geom_.ports) - 1.0);
  return per_bit * static_cast<double>(geom_.width_bits) * port_factor;
}

double bus_delay_ns(const Technology& tech, double area_um2) {
  return 0.02 + tech.wire_delay_ns_per_um * std::sqrt(area_um2);
}

double bus_energy_pj(const Technology& tech, double area_um2) {
  return tech.wire_energy_pj_per_um * std::sqrt(area_um2);
}

}  // namespace samie::energy
