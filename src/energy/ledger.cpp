// ledger.h is header-only; this translation unit exists so the energy
// library always has at least one object file and to catch ODR issues in
// the inline definitions early.
#include "src/energy/ledger.h"

namespace samie::energy {
// Intentionally empty.
}  // namespace samie::energy
