// Analytical area / delay / energy model for RAM and CAM arrays.
//
// This is the reusable building block behind the cache model (Table 1) and
// the LSQ model (Tables 4-6). See technology.h for the calibration story.
#pragma once

#include <cstdint>

#include "src/energy/technology.h"

namespace samie::energy {

enum class CellType : std::uint8_t { kRam, kCam };

/// A memory array: `rows` entries of `width_bits` bits with `ports`
/// identical read/write ports.
struct ArrayGeometry {
  std::uint64_t rows = 1;
  std::uint64_t width_bits = 1;
  std::uint32_t ports = 1;
  CellType cell = CellType::kRam;
};

class ArrayModel {
 public:
  ArrayModel(const Technology& tech, ArrayGeometry geom);

  /// Area of one bit cell in um^2 (Table 6 reports exactly this).
  [[nodiscard]] double cell_area_um2() const;
  /// Area of one row (entry) in um^2.
  [[nodiscard]] double row_area_um2() const;
  /// Total array area in um^2.
  [[nodiscard]] double total_area_um2() const;

  /// RAM-style read or write access delay (ns).
  [[nodiscard]] double ram_access_delay_ns() const;
  /// CAM search delay (broadcast + match + encode), ns.
  [[nodiscard]] double cam_search_delay_ns() const;

  /// RAM read/write energy for one access (pJ).
  [[nodiscard]] double ram_rw_energy_pj() const;
  /// CAM search energy: broadcast to every entry plus match-line
  /// evaluation on `compared` entries (pJ).
  [[nodiscard]] double cam_search_energy_pj(std::uint64_t compared) const;
  /// The per-entry term of the search energy — the "x pJ per address
  /// compared" column of Tables 4/5 (pJ).
  [[nodiscard]] double cam_per_entry_energy_pj() const;
  /// CAM tag write energy (pJ).
  [[nodiscard]] double cam_write_energy_pj() const;

  [[nodiscard]] const ArrayGeometry& geometry() const { return geom_; }

 private:
  Technology tech_;
  ArrayGeometry geom_;
};

/// Delay of a broadcast wire spanning an array of `area_um2` (ns).
[[nodiscard]] double bus_delay_ns(const Technology& tech, double area_um2);
/// Energy of one transfer over that wire (pJ).
[[nodiscard]] double bus_energy_pj(const Technology& tech, double area_um2);

}  // namespace samie::energy
