// Energy / delay / area constants for the two LSQ organizations.
//
// Two sources are available for every constant:
//   * `paper()`  — the exact values published in Tables 4, 5 and 6 and in
//     Section 3.6 of the paper (CACTI 3.0 outputs). The simulator accounts
//     with these by default so the reproduced figures are apples-to-apples.
//   * `derived(tech)` — the same quantities computed from this repository's
//     analytical surrogate (src/energy/array_model.h). The surrogate is
//     fitted to the handful of published CACTI points, so some individual
//     constants deviate; bench_tab04_06_energy_model prints both columns
//     and tests/test_energy_model.cpp pins the documented tolerances.
#pragma once

#include <cstdint>

#include "src/energy/array_model.h"
#include "src/energy/technology.h"

namespace samie::energy {

/// Bit widths of the LSQ fields, used for both energy and area modelling.
struct LsqFieldWidths {
  std::uint32_t address_bits = 32;      ///< full effective address
  std::uint32_t line_addr_bits = 27;    ///< 32-bit address, 32-byte lines
  std::uint32_t age_id_bits = 9;        ///< ROB position (8b) + wrap bit
  std::uint32_t datum_bits = 64;
  std::uint32_t translation_bits = 20;  ///< physical page number
  std::uint32_t line_id_bits = 10;      ///< set+way of a 32KB/32B cache
  std::uint32_t slot_ctrl_bits = 6;     ///< offset-in-line + size + flags
  std::uint32_t addrbuf_datum_bits = 40;///< full address + type/size bits
};

/// Energy per access type for the conventional fully-associative LSQ
/// (Table 4 of the paper).
struct ConventionalLsqEnergy {
  double addr_cmp_base_pj = 0.0;      ///< address comparison, fixed part
  double addr_cmp_per_addr_pj = 0.0;  ///< ... plus this per address compared
  double addr_rw_pj = 0.0;            ///< read/write an address
  double datum_rw_pj = 0.0;           ///< read/write a datum
};

/// Energy per activity for the SAMIE-LSQ (Table 5 of the paper).
struct SamieLsqEnergy {
  // DistribLSQ (one bank).
  double d_addr_cmp_base_pj = 0.0;
  double d_addr_cmp_per_addr_pj = 0.0;
  double d_addr_rw_pj = 0.0;
  double d_age_cmp_base_pj = 0.0;
  double d_age_cmp_per_id_pj = 0.0;
  double d_age_rw_pj = 0.0;
  double d_datum_rw_pj = 0.0;
  double d_translation_rw_pj = 0.0;
  double d_line_id_rw_pj = 0.0;
  // Broadcast bus to the DistribLSQ banks.
  double bus_send_addr_pj = 0.0;
  // SharedLSQ.
  double s_addr_cmp_base_pj = 0.0;
  double s_addr_cmp_per_addr_pj = 0.0;
  double s_addr_rw_pj = 0.0;
  double s_age_cmp_base_pj = 0.0;
  double s_age_cmp_per_id_pj = 0.0;
  double s_age_rw_pj = 0.0;
  double s_datum_rw_pj = 0.0;
  double s_translation_rw_pj = 0.0;
  double s_line_id_rw_pj = 0.0;
  // AddrBuffer.
  double ab_datum_rw_pj = 0.0;
  double ab_age_rw_pj = 0.0;
};

/// Per-cell areas in um^2 (Table 6 of the paper).
struct LsqCellAreas {
  double conv_addr_cam = 0.0;
  double conv_datum_ram = 0.0;
  double samie_addr_cam = 0.0;   // DistribLSQ and SharedLSQ
  double samie_age_cam = 0.0;
  double samie_datum_ram = 0.0;
  double samie_translation_ram = 0.0;
  double samie_line_id_ram = 0.0;
  double addrbuf_datum_ram = 0.0;
  double addrbuf_age_ram = 0.0;
};

/// Structure delays from Section 3.6 of the paper (ns).
struct LsqDelays {
  double conventional_128 = 0.0;
  double conventional_16 = 0.0;
  double distrib_bank = 0.0;   ///< compare within one bank
  double distrib_bus = 0.0;    ///< send the address to the banks
  double distrib_total = 0.0;  ///< bank + bus
  double shared = 0.0;
  double addr_buffer = 0.0;
};

/// Dcache / DTLB per-access energies referenced in Section 4.2 (pJ).
struct MemSystemEnergy {
  double dcache_full_access_pj = 0.0;
  double dcache_way_known_pj = 0.0;
  double dtlb_access_pj = 0.0;
};

/// Everything the runtime accounting needs, from one source.
struct LsqEnergyConstants {
  ConventionalLsqEnergy conv;
  SamieLsqEnergy samie;
  LsqCellAreas areas;
  LsqDelays delays;
  MemSystemEnergy mem;
  LsqFieldWidths widths;
};

/// The structural configuration the constants are evaluated for (matches
/// the paper's Tables 2/3; the derived model uses it for array geometry).
struct LsqStructureShape {
  std::uint64_t conv_entries = 128;
  std::uint32_t conv_ports = 8;
  std::uint64_t distrib_banks = 64;
  std::uint64_t distrib_entries_per_bank = 2;
  std::uint64_t slots_per_entry = 8;
  std::uint32_t distrib_ports = 2;
  std::uint64_t shared_entries = 8;
  std::uint32_t shared_ports = 2;
  std::uint64_t addrbuf_slots = 64;
  std::uint32_t addrbuf_ports = 8;
};

/// Exact constants as published in the paper.
[[nodiscard]] LsqEnergyConstants paper_constants();

/// Constants recomputed with the analytical surrogate at `tech`.
[[nodiscard]] LsqEnergyConstants derived_constants(
    const Technology& tech, const LsqStructureShape& shape = {});

// --- Area helpers (um^2), used by the active-area integrator -------------

/// Area of one conventional-LSQ entry (address CAM + datum RAM).
[[nodiscard]] double conv_entry_area_um2(const LsqEnergyConstants& c);
/// Fixed (per-entry, slot-independent) area of a DistribLSQ/SharedLSQ
/// entry: line-address CAM + cached translation + cached line id.
[[nodiscard]] double samie_entry_fixed_area_um2(const LsqEnergyConstants& c);
/// Area of one slot of a DistribLSQ/SharedLSQ entry: age CAM + datum RAM +
/// slot control bits.
[[nodiscard]] double samie_slot_area_um2(const LsqEnergyConstants& c);
/// Area of one AddrBuffer slot.
[[nodiscard]] double addrbuf_slot_area_um2(const LsqEnergyConstants& c);

}  // namespace samie::energy
