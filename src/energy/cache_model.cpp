#include "src/energy/cache_model.h"

#include <cmath>

#include "src/common/types.h"

namespace samie::energy {

namespace {

// Delay-model coefficients fitted to the eight CACTI 3.0 points the paper
// publishes in Table 1 (see DESIGN.md section 1, substitution 2). The
// known-line access time follows a physical decoder/wordline/bitline form;
// the conventional-vs-known gap is a fitted interaction surface (CACTI's
// internal subarray partitioning makes the gap non-separable).
constexpr double kKnownConst = 0.07384;       // ns
constexpr double kKnownLogRows = 0.025153;    // ns per doubling of sets
constexpr double kKnownPerCol = 0.000443;     // ns per data column (bit)
constexpr double kKnownPerRow = 0.000711;     // ns per set
constexpr double kPortFactor = 0.357379;      // wordline/bitline stretch per extra port

constexpr double kGapBase = 0.165;            // ns, 8KB 2-way 2-port
constexpr double kGapPerSizeDoubling = 0.031 / 2.0;
constexpr double kGapPerAssoc = 0.035;        // per (assoc-2)/2
constexpr double kGapPerPort = 0.026;         // per (ports-2)/2
constexpr double kGapAssocPort = 0.063;
constexpr double kGapSizePort = 0.008 / 2.0;
constexpr double kGapSizeAssoc = 0.0195 / 2.0;

// Energy-model coefficients calibrated to the paper's 8KB 4-way 4-port
// Dcache pair: 1009 pJ conventional, 276 pJ way-known.
constexpr double kEnergyPortFactor = 0.30;
constexpr double kEFixBase = 20.0;            // decoder + control, pJ
constexpr double kEFixLogRows = 1.0;
constexpr double kEWayPerRow = 0.29;          // bitline precharge per set
constexpr double kEWayPerCol = 0.40;          // per data bit read
constexpr double kETagPerRow = 0.05;
constexpr double kETagPerBit = 0.15;
constexpr double kECmpPerWay = 3.0;

[[nodiscard]] double log2d(double x) { return std::log2(x < 1.0 ? 1.0 : x); }

}  // namespace

std::uint32_t CacheGeometry::tag_bits() const {
  const auto set_bits = log2_floor(num_sets());
  const auto offset_bits = log2_floor(line_bytes);
  return address_bits - set_bits - offset_bits;
}

CacheModel::CacheModel(const Technology& tech, CacheGeometry geom)
    : tech_(tech), geom_(geom) {}

double CacheModel::data_path_ns(bool /*all_ways*/) const {
  const double rows = static_cast<double>(geom_.num_sets());
  const double cols = static_cast<double>(geom_.associativity) *
                      static_cast<double>(geom_.line_bytes) * 8.0;
  const double fp = 1.0 + kPortFactor * (static_cast<double>(geom_.ports) - 1.0);
  return kKnownConst + kKnownLogRows * log2d(rows) +
         (kKnownPerCol * cols + kKnownPerRow * rows) * fp;
}

double CacheModel::tag_path_ns() const {
  // The gap surface already folds the tag path in; expose the implied tag
  // path for introspection as known + gap.
  return known_line_delay_ns() + (conventional_delay_ns() - known_line_delay_ns());
}

double CacheModel::known_line_delay_ns() const { return data_path_ns(false); }

double CacheModel::conventional_delay_ns() const {
  const double s = log2d(static_cast<double>(geom_.size_bytes) / 8192.0);
  const double a = (static_cast<double>(geom_.associativity) - 2.0) / 2.0;
  const double p = (static_cast<double>(geom_.ports) - 2.0) / 2.0;
  const double gap = kGapBase - kGapPerSizeDoubling * s * 2.0 - kGapPerAssoc * a -
                     kGapPerPort * p - kGapAssocPort * a * p -
                     kGapSizePort * s * 2.0 * p - kGapSizeAssoc * s * 2.0 * a;
  return known_line_delay_ns() + (gap > 0.0 ? gap : 0.0);
}

double CacheModel::delay_improvement() const {
  const double conv = conventional_delay_ns();
  if (conv <= 0.0) return 0.0;
  return (conv - known_line_delay_ns()) / conv;
}

double CacheModel::known_line_energy_pj() const {
  const double rows = static_cast<double>(geom_.num_sets());
  const double line_bits = static_cast<double>(geom_.line_bytes) * 8.0;
  const double fpe =
      1.0 + kEnergyPortFactor * (static_cast<double>(geom_.ports) - 1.0);
  const double fix = (kEFixBase + kEFixLogRows * log2d(rows)) * fpe;
  const double way = (kEWayPerRow * rows + kEWayPerCol * line_bits) * fpe;
  return fix + way;
}

double CacheModel::conventional_energy_pj() const {
  const double rows = static_cast<double>(geom_.num_sets());
  const double line_bits = static_cast<double>(geom_.line_bytes) * 8.0;
  const double assoc = static_cast<double>(geom_.associativity);
  const double fpe =
      1.0 + kEnergyPortFactor * (static_cast<double>(geom_.ports) - 1.0);
  const double fix = (kEFixBase + kEFixLogRows * log2d(rows)) * fpe;
  const double way = (kEWayPerRow * rows + kEWayPerCol * line_bits) * fpe;
  const double tag =
      (kETagPerRow * rows + kETagPerBit * assoc * static_cast<double>(geom_.tag_bits())) *
      fpe;
  const double cmp = kECmpPerWay * assoc;
  return fix + assoc * way + tag + cmp;
}

double CacheModel::total_area_um2() const {
  const ArrayModel data(tech_,
                        ArrayGeometry{geom_.num_sets(),
                                      static_cast<std::uint64_t>(geom_.associativity) *
                                          geom_.line_bytes * 8ULL,
                                      geom_.ports, CellType::kRam});
  const ArrayModel tags(tech_,
                        ArrayGeometry{geom_.num_sets(),
                                      static_cast<std::uint64_t>(geom_.associativity) *
                                          geom_.tag_bits(),
                                      geom_.ports, CellType::kRam});
  return data.total_area_um2() + tags.total_area_um2();
}

double tlb_access_energy_pj(const Technology& tech, std::uint64_t entries,
                            std::uint32_t tag_bits, std::uint32_t data_bits,
                            std::uint32_t ports) {
  const ArrayModel cam(tech, ArrayGeometry{entries, tag_bits, ports, CellType::kCam});
  const ArrayModel ram(tech, ArrayGeometry{entries, data_bits, ports, CellType::kRam});
  return cam.cam_search_energy_pj(1) + ram.ram_rw_energy_pj();
}

}  // namespace samie::energy
