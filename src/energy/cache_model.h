// Cache timing/energy model: conventional accesses vs accesses where the
// physical cache line (set and way) is already known (Table 1 of the
// paper, and the 1009 pJ / 276 pJ Dcache energy pair of Section 4.2).
#pragma once

#include <cstdint>

#include "src/energy/array_model.h"
#include "src/energy/technology.h"

namespace samie::energy {

struct CacheGeometry {
  std::uint64_t size_bytes = 8 * 1024;
  std::uint32_t associativity = 4;
  std::uint32_t line_bytes = 32;
  std::uint32_t ports = 4;
  std::uint32_t address_bits = 32;

  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(associativity) * line_bytes);
  }
  [[nodiscard]] std::uint32_t tag_bits() const;
};

class CacheModel {
 public:
  CacheModel(const Technology& tech, CacheGeometry geom);

  /// Access time of a conventional access: max(data path, tag path with
  /// compare + way select) + output drive. (ns)
  [[nodiscard]] double conventional_delay_ns() const;
  /// Access time when set and way are known beforehand: the tag path and
  /// the way-select disappear from the critical path. (ns)
  [[nodiscard]] double known_line_delay_ns() const;
  /// Relative improvement of the known-line access (0..1).
  [[nodiscard]] double delay_improvement() const;

  /// Energy of a conventional access: all ways + tags + comparators. (pJ)
  [[nodiscard]] double conventional_energy_pj() const;
  /// Energy when only the known way is read and no tag is checked. (pJ)
  [[nodiscard]] double known_line_energy_pj() const;

  /// Total data+tag array area. (um^2)
  [[nodiscard]] double total_area_um2() const;

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }

 private:
  [[nodiscard]] double data_path_ns(bool all_ways) const;
  [[nodiscard]] double tag_path_ns() const;

  Technology tech_;
  CacheGeometry geom_;
};

/// Fully-associative TLB access energy (the paper's DTLB costs 273 pJ).
[[nodiscard]] double tlb_access_energy_pj(const Technology& tech,
                                          std::uint64_t entries,
                                          std::uint32_t tag_bits,
                                          std::uint32_t data_bits,
                                          std::uint32_t ports);

}  // namespace samie::energy
