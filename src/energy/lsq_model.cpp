#include "src/energy/lsq_model.h"

#include "src/energy/cache_model.h"

namespace samie::energy {

LsqEnergyConstants paper_constants() {
  LsqEnergyConstants c;
  // Table 4 — conventional 128-entry LSQ.
  c.conv.addr_cmp_base_pj = 452.0;
  c.conv.addr_cmp_per_addr_pj = 3.53;
  c.conv.addr_rw_pj = 57.1;
  c.conv.datum_rw_pj = 93.2;
  // Table 5 — SAMIE-LSQ.
  c.samie.d_addr_cmp_base_pj = 4.33;
  c.samie.d_addr_cmp_per_addr_pj = 2.17;
  c.samie.d_addr_rw_pj = 4.07;
  c.samie.d_age_cmp_base_pj = 19.4;
  c.samie.d_age_cmp_per_id_pj = 1.21;
  c.samie.d_age_rw_pj = 1.64;
  c.samie.d_datum_rw_pj = 10.9;
  c.samie.d_translation_rw_pj = 6.02;
  c.samie.d_line_id_rw_pj = 0.236;
  c.samie.bus_send_addr_pj = 54.4;
  c.samie.s_addr_cmp_base_pj = 22.7;
  c.samie.s_addr_cmp_per_addr_pj = 2.83;
  c.samie.s_addr_rw_pj = 6.16;
  c.samie.s_age_cmp_base_pj = 19.4;
  c.samie.s_age_cmp_per_id_pj = 2.43;
  c.samie.s_age_rw_pj = 1.64;
  c.samie.s_datum_rw_pj = 10.9;
  c.samie.s_translation_rw_pj = 8.73;
  c.samie.s_line_id_rw_pj = 0.342;
  c.samie.ab_datum_rw_pj = 31.6;
  c.samie.ab_age_rw_pj = 15.7;
  // Table 6 — cell areas.
  c.areas.conv_addr_cam = 28.0;
  c.areas.conv_datum_ram = 20.0;
  c.areas.samie_addr_cam = 10.0;
  c.areas.samie_age_cam = 10.0;
  c.areas.samie_datum_ram = 6.0;
  c.areas.samie_translation_ram = 6.0;
  c.areas.samie_line_id_ram = 6.0;
  c.areas.addrbuf_datum_ram = 20.0;
  c.areas.addrbuf_age_ram = 20.0;
  // Section 3.6 — delays.
  c.delays.conventional_128 = 0.881;
  c.delays.conventional_16 = 0.743;  // "similar (4% larger) to SAMIE" => 0.714*1.04
  c.delays.distrib_bank = 0.590;
  c.delays.distrib_bus = 0.124;
  c.delays.distrib_total = 0.714;
  c.delays.shared = 0.617;
  c.delays.addr_buffer = 0.319;
  // Section 4.2 — memory-system energies.
  c.mem.dcache_full_access_pj = 1009.0;
  c.mem.dcache_way_known_pj = 276.0;
  c.mem.dtlb_access_pj = 273.0;
  return c;
}

LsqEnergyConstants derived_constants(const Technology& tech,
                                     const LsqStructureShape& shape) {
  LsqEnergyConstants c;
  const LsqFieldWidths w = c.widths;

  // --- Arrays --------------------------------------------------------------
  const ArrayModel conv_addr(
      tech, ArrayGeometry{shape.conv_entries, w.address_bits, shape.conv_ports,
                          CellType::kCam});
  // The conventional datum array is read and written through separate port
  // groups (the machine forwards and fills in the same cycle), so it is
  // modelled with twice the access ports.
  const ArrayModel conv_datum(
      tech, ArrayGeometry{shape.conv_entries, w.datum_bits, 2 * shape.conv_ports,
                          CellType::kRam});
  const ArrayModel conv_16(tech, ArrayGeometry{16, w.address_bits,
                                               shape.conv_ports, CellType::kCam});

  const ArrayModel d_addr(tech,
                          ArrayGeometry{shape.distrib_entries_per_bank,
                                        w.line_addr_bits, shape.distrib_ports,
                                        CellType::kCam});
  const ArrayModel d_age(
      tech, ArrayGeometry{shape.slots_per_entry, w.age_id_bits,
                          shape.distrib_ports, CellType::kCam});
  const ArrayModel d_datum(
      tech, ArrayGeometry{shape.distrib_entries_per_bank * shape.slots_per_entry,
                          w.datum_bits, shape.distrib_ports, CellType::kRam});
  const ArrayModel d_xlat(tech, ArrayGeometry{shape.distrib_entries_per_bank,
                                              w.translation_bits,
                                              shape.distrib_ports, CellType::kRam});
  const ArrayModel d_lineid(tech, ArrayGeometry{shape.distrib_entries_per_bank,
                                                w.line_id_bits, shape.distrib_ports,
                                                CellType::kRam});

  const ArrayModel s_addr(tech,
                          ArrayGeometry{shape.shared_entries, w.line_addr_bits,
                                        shape.shared_ports, CellType::kCam});
  const ArrayModel s_age(tech, ArrayGeometry{shape.slots_per_entry, w.age_id_bits,
                                             shape.shared_ports, CellType::kCam});
  const ArrayModel s_datum(
      tech, ArrayGeometry{shape.shared_entries * shape.slots_per_entry,
                          w.datum_bits, shape.shared_ports, CellType::kRam});
  const ArrayModel s_xlat(tech,
                          ArrayGeometry{shape.shared_entries, w.translation_bits,
                                        shape.shared_ports, CellType::kRam});
  const ArrayModel s_lineid(tech,
                            ArrayGeometry{shape.shared_entries, w.line_id_bits,
                                          shape.shared_ports, CellType::kRam});

  const ArrayModel ab_datum(tech,
                            ArrayGeometry{shape.addrbuf_slots, w.addrbuf_datum_bits,
                                          shape.addrbuf_ports, CellType::kRam});
  const ArrayModel ab_age(tech, ArrayGeometry{shape.addrbuf_slots, w.age_id_bits,
                                              shape.addrbuf_ports, CellType::kRam});

  // --- Energies ------------------------------------------------------------
  c.conv.addr_cmp_per_addr_pj = conv_addr.cam_per_entry_energy_pj();
  c.conv.addr_cmp_base_pj =
      c.conv.addr_cmp_per_addr_pj * static_cast<double>(shape.conv_entries);
  c.conv.addr_rw_pj = conv_addr.cam_write_energy_pj();
  c.conv.datum_rw_pj = conv_datum.ram_rw_energy_pj();

  c.samie.d_addr_cmp_per_addr_pj = d_addr.cam_per_entry_energy_pj();
  c.samie.d_addr_cmp_base_pj = c.samie.d_addr_cmp_per_addr_pj *
                               static_cast<double>(shape.distrib_entries_per_bank);
  c.samie.d_addr_rw_pj = d_addr.cam_write_energy_pj();
  c.samie.d_age_cmp_per_id_pj = d_age.cam_per_entry_energy_pj();
  c.samie.d_age_cmp_base_pj =
      c.samie.d_age_cmp_per_id_pj * static_cast<double>(shape.slots_per_entry);
  c.samie.d_age_rw_pj = d_age.cam_write_energy_pj();
  c.samie.d_datum_rw_pj = d_datum.ram_rw_energy_pj();
  c.samie.d_translation_rw_pj = d_xlat.ram_rw_energy_pj();
  c.samie.d_line_id_rw_pj = d_lineid.ram_rw_energy_pj();

  c.samie.s_addr_cmp_per_addr_pj = s_addr.cam_per_entry_energy_pj();
  c.samie.s_addr_cmp_base_pj =
      c.samie.s_addr_cmp_per_addr_pj * static_cast<double>(shape.shared_entries);
  c.samie.s_addr_rw_pj = s_addr.cam_write_energy_pj();
  c.samie.s_age_cmp_per_id_pj = s_age.cam_per_entry_energy_pj();
  c.samie.s_age_cmp_base_pj =
      c.samie.s_age_cmp_per_id_pj * static_cast<double>(shape.slots_per_entry);
  c.samie.s_age_rw_pj = s_age.cam_write_energy_pj();
  c.samie.s_datum_rw_pj = s_datum.ram_rw_energy_pj();
  c.samie.s_translation_rw_pj = s_xlat.ram_rw_energy_pj();
  c.samie.s_line_id_rw_pj = s_lineid.ram_rw_energy_pj();

  c.samie.ab_datum_rw_pj = ab_datum.ram_rw_energy_pj();
  c.samie.ab_age_rw_pj = ab_age.ram_rw_energy_pj();

  // --- Areas ---------------------------------------------------------------
  c.areas.conv_addr_cam = conv_addr.cell_area_um2();
  c.areas.conv_datum_ram =
      ArrayModel(tech, ArrayGeometry{shape.conv_entries, w.datum_bits,
                                     shape.conv_ports, CellType::kRam})
          .cell_area_um2();
  c.areas.samie_addr_cam = d_addr.cell_area_um2();
  c.areas.samie_age_cam = d_age.cell_area_um2();
  c.areas.samie_datum_ram = d_datum.cell_area_um2();
  c.areas.samie_translation_ram = d_xlat.cell_area_um2();
  c.areas.samie_line_id_ram = d_lineid.cell_area_um2();
  c.areas.addrbuf_datum_ram = ab_datum.cell_area_um2();
  c.areas.addrbuf_age_ram = ab_age.cell_area_um2();

  // --- Delays --------------------------------------------------------------
  c.delays.conventional_128 = conv_addr.cam_search_delay_ns();
  c.delays.conventional_16 = conv_16.cam_search_delay_ns();
  c.delays.distrib_bank = d_addr.cam_search_delay_ns();
  // The broadcast bus spans the full DistribLSQ array.
  const double entry_area =
      samie_entry_fixed_area_um2(c) +
      static_cast<double>(shape.slots_per_entry) * samie_slot_area_um2(c);
  const double distrib_area = entry_area *
                              static_cast<double>(shape.distrib_entries_per_bank) *
                              static_cast<double>(shape.distrib_banks);
  c.delays.distrib_bus = bus_delay_ns(tech, distrib_area);
  c.delays.distrib_total = c.delays.distrib_bank + c.delays.distrib_bus;
  c.delays.shared = s_addr.cam_search_delay_ns();
  c.delays.addr_buffer = ab_datum.ram_access_delay_ns();

  c.samie.bus_send_addr_pj = bus_energy_pj(tech, distrib_area);

  // --- Memory system ---------------------------------------------------------
  const CacheModel dcache(tech, CacheGeometry{8 * 1024, 4, 32, 4, w.address_bits});
  c.mem.dcache_full_access_pj = dcache.conventional_energy_pj();
  c.mem.dcache_way_known_pj = dcache.known_line_energy_pj();
  c.mem.dtlb_access_pj = tlb_access_energy_pj(tech, 128, 32, w.translation_bits, 2);
  return c;
}

double conv_entry_area_um2(const LsqEnergyConstants& c) {
  return static_cast<double>(c.widths.address_bits) * c.areas.conv_addr_cam +
         static_cast<double>(c.widths.datum_bits) * c.areas.conv_datum_ram;
}

double samie_entry_fixed_area_um2(const LsqEnergyConstants& c) {
  return static_cast<double>(c.widths.line_addr_bits) * c.areas.samie_addr_cam +
         static_cast<double>(c.widths.translation_bits) *
             c.areas.samie_translation_ram +
         static_cast<double>(c.widths.line_id_bits) * c.areas.samie_line_id_ram;
}

double samie_slot_area_um2(const LsqEnergyConstants& c) {
  return static_cast<double>(c.widths.age_id_bits) * c.areas.samie_age_cam +
         static_cast<double>(c.widths.datum_bits) * c.areas.samie_datum_ram +
         static_cast<double>(c.widths.slot_ctrl_bits) * c.areas.samie_datum_ram;
}

double addrbuf_slot_area_um2(const LsqEnergyConstants& c) {
  return static_cast<double>(c.widths.addrbuf_datum_bits) * c.areas.addrbuf_datum_ram +
         static_cast<double>(c.widths.age_id_bits) * c.areas.addrbuf_age_ram;
}

}  // namespace samie::energy
