// DepSlab: a flat arena of dependence-reference chunks with a freelist.
//
// The core keeps three token lists per ROB slot (dependents, forward
// waiters, commit waiters). As `std::vector` members of a per-slot
// struct they cost 24 bytes of header each inside the hot record and
// their backing stores land wherever the allocator put them; as slab
// lists the per-slot footprint is two 32-bit chunk indices and every
// ref lives in one contiguous arena. Chunks are recycled through a
// freelist, so steady state never allocates; the arena grows (by
// appending chunks) only when more refs are simultaneously live than
// ever before.
//
// Invariants (cross-checked by tests/test_dep_slab.cpp via the recount
// hooks):
//   * every chunk is on exactly one list or on the freelist:
//     chunks_in_use() + free_chunks() == total_chunks(), and
//     recount_free_chunks() (a freelist walk) equals free_chunks();
//   * live_refs() is the sum of all list lengths — 0 once every list
//     has been cleared (no leaked DepRefs after squash/flush/commit);
//   * iteration order is insertion order (the core's wake order — and
//     therefore issue order and every downstream statistic — depends on
//     it).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie::core {

/// A (seq, ROB-slot incarnation) token plus the operand role a dependent
/// is waiting in (see Core::SrcRole; waiter lists leave it 0). Consumers
/// whose token no longer matches the slot are stale and dropped in O(1).
struct DepRef {
  InstSeq seq = kNoInst;
  std::uint32_t gen = 0;
  std::uint8_t role = 0;
};

class DepSlab {
 public:
  /// Refs per chunk: sized so a chunk (4 refs + header) stays within one
  /// or two cache lines while typical lists (1-3 dependents) fit in one.
  static constexpr std::uint32_t kChunkRefs = 4;
  static constexpr std::uint32_t kNil = ~0U;

  /// A list handle: head/tail chunk indices into the slab. Plain 8-byte
  /// POD so per-slot list state stays inside the slot metadata array.
  struct List {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  explicit DepSlab(std::size_t initial_chunks = 0) {
    arena_.reserve(initial_chunks);
    for (std::size_t i = 0; i < initial_chunks; ++i) append_free_chunk();
  }

  [[nodiscard]] bool empty(const List& l) const noexcept {
    return l.head == kNil;
  }

  /// Appends `r` (insertion order is preserved across the whole list).
  void push(List& l, const DepRef& r) {
    if (l.tail == kNil || arena_[l.tail].count == kChunkRefs) {
      const std::uint32_t c = take_chunk();
      if (l.tail == kNil) {
        l.head = c;
      } else {
        arena_[l.tail].next = c;
      }
      l.tail = c;
    }
    Chunk& t = arena_[l.tail];
    t.refs[t.count++] = r;
    ++live_refs_;
  }

  /// Visits every ref in insertion order. `fn` may push to *other*
  /// lists — a push can grow (and therefore reallocate) the arena, so
  /// the loop re-indexes `arena_` after every callback instead of
  /// holding a Chunk reference across it; the visited chunks' indices,
  /// counts and contents are stable (they are off the freelist and no
  /// push touches them). `fn` must not mutate `l` itself — detach()
  /// first when the body can re-enter.
  template <typename Fn>
  void for_each(const List& l, Fn&& fn) const {
    for (std::uint32_t c = l.head; c != kNil; c = arena_[c].next) {
      for (std::uint32_t i = 0; i < arena_[c].count; ++i) {
        fn(arena_[c].refs[i]);
      }
    }
  }

  /// Steals the chain: `l` becomes empty, the returned handle owns the
  /// refs. The caller iterates it (for_each) and must free() it — this
  /// is the reentrancy-safe replacement for the copy-to-scratch pattern
  /// (wake handlers can push to the very list being woken).
  [[nodiscard]] List detach(List& l) noexcept {
    const List taken = l;
    l = List{};
    return taken;
  }

  /// Returns every chunk of `l` to the freelist and empties the handle.
  /// Freeing an empty list is a single predictable branch — the commit
  /// path frees all three slot lists unconditionally.
  void free(List& l) noexcept {
    if (l.head == kNil) return;
    std::uint32_t c = l.head;
    while (c != kNil) {
      const std::uint32_t next = arena_[c].next;
      assert(live_refs_ >= arena_[c].count);
      live_refs_ -= arena_[c].count;
      release_chunk(c);
      c = next;
    }
    l = List{};
  }

  // -- accounting (O(1) counters; recount hooks cross-check them) ------------
  [[nodiscard]] std::uint64_t live_refs() const noexcept { return live_refs_; }
  [[nodiscard]] std::size_t total_chunks() const noexcept {
    return arena_.size();
  }
  [[nodiscard]] std::size_t free_chunks() const noexcept { return free_count_; }
  [[nodiscard]] std::size_t chunks_in_use() const noexcept {
    return arena_.size() - free_count_;
  }
  /// Walks the freelist and counts it — the regression hook that catches
  /// a chunk leaked (freed twice, or dropped from both a list and the
  /// freelist) by disagreeing with the O(1) counter.
  [[nodiscard]] std::size_t recount_free_chunks() const noexcept {
    std::size_t n = 0;
    for (std::uint32_t c = free_head_; c != kNil; c = arena_[c].next) ++n;
    return n;
  }

 private:
  struct Chunk {
    DepRef refs[kChunkRefs];
    std::uint32_t count = 0;
    std::uint32_t next = kNil;  ///< next chunk in the list / freelist
  };

  void append_free_chunk() {
    arena_.emplace_back();
    arena_.back().next = free_head_;
    free_head_ = static_cast<std::uint32_t>(arena_.size() - 1);
    ++free_count_;
  }

  [[nodiscard]] std::uint32_t take_chunk() {
    if (free_head_ == kNil) append_free_chunk();
    const std::uint32_t c = free_head_;
    free_head_ = arena_[c].next;
    --free_count_;
    arena_[c].count = 0;
    arena_[c].next = kNil;
    return c;
  }

  void release_chunk(std::uint32_t c) noexcept {
    arena_[c].next = free_head_;
    free_head_ = c;
    ++free_count_;
  }

  std::vector<Chunk> arena_;
  std::uint32_t free_head_ = kNil;
  std::size_t free_count_ = 0;
  std::uint64_t live_refs_ = 0;
};

}  // namespace samie::core
