// Explicit instantiation of the type-erased core. Concrete
// instantiations (Core<SamieLsq, StatsCollector> etc.) are produced
// where they are used — the simulator façade — so this TU stays
// independent of the individual queue implementations.
#include "src/core/core.h"

namespace samie::core {

template class Core<lsq::LoadStoreQueue, CycleObserver>;

}  // namespace samie::core
