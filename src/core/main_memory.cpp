#include "src/core/main_memory.h"

namespace samie::core {

namespace {
constexpr Addr kPageMask = ~0xFFFULL;
}

std::vector<std::uint8_t>& MainMemory::page_for(Addr addr) {
  const Addr page = addr & kPageMask;
  if (page == last_page_) return *last_;
  auto [it, inserted] = pages_.try_emplace(page);
  if (inserted) it->second.assign(4096, 0);
  last_page_ = page;
  last_ = &it->second;
  return it->second;
}

void MainMemory::write(Addr addr, std::uint32_t bytes, std::uint64_t value) {
  auto& page = page_for(addr);
  const std::size_t off = static_cast<std::size_t>(addr & 0xFFFULL);
  for (std::uint32_t i = 0; i < bytes; ++i) {
    page[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint64_t MainMemory::read(Addr addr, std::uint32_t bytes) {
  auto& page = page_for(addr);
  const std::size_t off = static_cast<std::size_t>(addr & 0xFFFULL);
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(page[off + i]) << (8 * i);
  }
  return v;
}

}  // namespace samie::core
