// Functional-unit pools (paper Table 2): pipelined pools accept one
// operation per unit per cycle; non-pipelined units (dividers) stay busy
// for the whole operation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie::core {

/// Fully-pipelined pool: up to `units` issues per cycle.
class PipelinedPool {
 public:
  explicit PipelinedPool(std::uint32_t units) : units_(units) {}

  void new_cycle() noexcept { issued_ = 0; }
  [[nodiscard]] bool can_issue() const noexcept { return issued_ < units_; }
  bool try_issue() noexcept {
    if (!can_issue()) return false;
    ++issued_;
    return true;
  }
  [[nodiscard]] std::uint32_t units() const noexcept { return units_; }

 private:
  std::uint32_t units_;
  std::uint32_t issued_ = 0;
};

/// Pool of units that an operation occupies for `busy` cycles (dividers:
/// busy == latency; pipelined multipliers: busy == 1 with latency > 1).
class OccupyingPool {
 public:
  explicit OccupyingPool(std::uint32_t units) : busy_until_(units, 0) {}

  [[nodiscard]] bool can_issue(Cycle now) const noexcept {
    for (Cycle b : busy_until_) {
      if (b <= now) return true;
    }
    return false;
  }
  bool try_issue(Cycle now, Cycle busy) noexcept {
    for (Cycle& b : busy_until_) {
      if (b <= now) {
        b = now + busy;
        return true;
      }
    }
    return false;
  }
  void reset() noexcept {
    for (Cycle& b : busy_until_) b = 0;
  }

 private:
  std::vector<Cycle> busy_until_;
};

}  // namespace samie::core
