// Functional-unit pools (paper Table 2): pipelined pools accept one
// operation per unit per cycle; non-pipelined units (dividers) stay busy
// for the whole operation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie::core {

/// Fully-pipelined pool: up to `units` issues per cycle.
class PipelinedPool {
 public:
  explicit PipelinedPool(std::uint32_t units) : units_(units) {}

  void new_cycle() noexcept { issued_ = 0; }
  [[nodiscard]] bool can_issue() const noexcept { return issued_ < units_; }
  bool try_issue() noexcept {
    if (!can_issue()) return false;
    ++issued_;
    return true;
  }
  [[nodiscard]] std::uint32_t units() const noexcept { return units_; }

  // -- work-ledger hooks (event-driven engine) -------------------------------
  /// A pipelined pool holds no cross-cycle state: saturation lasts one
  /// cycle (new_cycle resets it), so it can never be the thing a
  /// quiescent core is waiting on.
  [[nodiscard]] bool has_pending_work() const noexcept { return false; }
  [[nodiscard]] Cycle next_ready_cycle(Cycle now) const noexcept {
    return can_issue() ? now : now + 1;
  }

 private:
  std::uint32_t units_;
  std::uint32_t issued_ = 0;
};

/// Pool of units that an operation occupies for `busy` cycles (dividers:
/// busy == latency; pipelined multipliers: busy == 1 with latency > 1).
class OccupyingPool {
 public:
  explicit OccupyingPool(std::uint32_t units) : busy_until_(units, 0) {
    free_scratch_.reserve(units);
  }

  [[nodiscard]] bool can_issue(Cycle now) const noexcept {
    for (Cycle b : busy_until_) {
      if (b <= now) return true;
    }
    return false;
  }
  bool try_issue(Cycle now, Cycle busy) noexcept {
    for (Cycle& b : busy_until_) {
      if (b <= now) {
        b = now + busy;
        return true;
      }
    }
    return false;
  }
  void reset() noexcept {
    for (Cycle& b : busy_until_) b = 0;
  }

  // -- batch arbitration (issue_stage) ---------------------------------------
  /// Snapshots the free units once per cycle; try_issue_batched then
  /// takes them in ascending-index order without rescanning. This is
  /// exactly try_issue's first-fit policy — busy state only changes
  /// through takes within the cycle (a reset() mid-cycle, the
  /// full-flush path, happens before issue runs), so the snapshot
  /// cannot go stale.
  void begin_arbitration(Cycle now) noexcept {
    free_scratch_.clear();
    for (std::uint32_t i = 0; i < busy_until_.size(); ++i) {
      if (busy_until_[i] <= now) free_scratch_.push_back(i);
    }
    taken_ = 0;
  }
  bool try_issue_batched(Cycle now, Cycle busy) noexcept {
    if (taken_ >= free_scratch_.size()) return false;
    busy_until_[free_scratch_[taken_++]] = now + busy;
    return true;
  }

  // -- work-ledger hooks (event-driven engine) -------------------------------
  /// Units still occupied at `now`. A busy unit by itself never blocks
  /// the fast-forward: the operation occupying it already has its
  /// completion on the calendar wheel, and any instruction *waiting* for
  /// the unit sits in a ready queue (a non-empty ready ledger).
  [[nodiscard]] std::uint32_t busy_units(Cycle now) const noexcept {
    std::uint32_t n = 0;
    for (Cycle b : busy_until_) n += b > now ? 1 : 0;
    return n;
  }
  [[nodiscard]] bool has_pending_work(Cycle now) const noexcept {
    return busy_units(now) != 0;
  }
  /// Earliest cycle a unit frees up (`now` when one is already free).
  [[nodiscard]] Cycle next_ready_cycle(Cycle now) const noexcept {
    Cycle first = kNeverCycle;
    for (Cycle b : busy_until_) first = std::min(first, b);
    return std::max(first, now);
  }

 private:
  std::vector<Cycle> busy_until_;
  /// Per-cycle arbitration snapshot: indices of units free at
  /// begin_arbitration time, consumed front to back. Sized once (the
  /// unit count is fixed), so snapshots never allocate.
  std::vector<std::uint32_t> free_scratch_;
  std::uint32_t taken_ = 0;
};

}  // namespace samie::core
