// Header-only; translation unit anchors the library target.
#include "src/core/fu_pool.h"

namespace samie::core {
// Intentionally empty.
}  // namespace samie::core
