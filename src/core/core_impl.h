// Template member definitions for core::Core<LsqT> (included by core.h).
// Keep this file free of non-template code; shared helpers live in the
// anonymous-namespace-free `detail` namespace so every instantiation
// (type-erased and devirtualized) compiles from one source of truth.
//
// Wake-ledger maintenance (the incremental quiescence check). Each
// WakeBit mirrors one clause of `quiescent()`'s negation; the post-cycle
// check is `wake_ledger_ == 0`, and `CoreConfig::check_quiescence`
// cross-checks it against the from-scratch predicate every stepped
// cycle. Site-by-site:
//   kWakeCommitHead — recomputed at the end of commit_stage; set by
//     complete() on the head; recomputed by on_agen_complete on the head
//     (a kBuffered placement makes the §3.3 predicate true), by
//     memory_stage when a drain placed anything (placement can flip the
//     predicate either way, for the head directly or via AddrBuffer
//     headroom), and at the end of squash_after/full_flush (an LSQ
//     squash can raise headroom). The remaining transition — the
//     headroom/wait-counter disjunct becoming true for a head that is
//     not agen-issued — is always accompanied by that head sitting in a
//     ready queue (it entered when wait_agen hit 0 and agen gating only
//     re-queues), so kWakeReady covers the verdict.
//   kWakeReady — set by every ready-queue push (push_ready_*);
//     recomputed at the end of issue_stage (the only stage that pops)
//     and cleared by full_flush (the only other consumer).
//   kWakeLsq — recomputed wherever LSQ deferred work can change: end of
//     commit_stage (on_commit can unblock the ARB retry FIFO), after
//     on_address_ready in on_agen_complete (kBuffered grows a buffer),
//     end of memory_stage (drain consumes / proves itself blocked), and
//     after squash_from in the recovery paths.
//   kWakeDispatch / kWakeFetch — recomputed at the end of fetch_stage;
//     no later code in a cycle mutates the fetch queue, the dispatch
//     resources, or the stall state. kWakeFetch is evaluated for
//     cycle_ + 1 because the quiescence check runs after the increment.
#pragma once

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace samie::core {

namespace detail {

[[nodiscard]] constexpr std::uint64_t value_mask(std::uint32_t bytes) noexcept {
  return bytes >= 8 ? ~0ULL : ((1ULL << (8 * bytes)) - 1);
}

/// Calendar-wheel span sizing rule: one power of two above the largest
/// latency any completion can be scheduled with — the worst-case data
/// access (TLB walk + L1D + L2 + memory fill) or the slowest functional
/// unit — so steady-state scheduling never touches the overflow list.
[[nodiscard]] inline std::size_t completion_wheel_span(
    const CoreConfig& cfg, const mem::MemoryHierarchy& memory) {
  Cycle worst = memory.worst_case_data_latency();
  for (const Cycle lat : {cfg.lat_int_alu, cfg.lat_int_mul, cfg.lat_int_div,
                          cfg.lat_fp_alu, cfg.lat_fp_mul, cfg.lat_fp_div}) {
    worst = std::max(worst, lat);
  }
  return static_cast<std::size_t>(std::bit_ceil(worst + 2));
}

}  // namespace detail

template <typename LsqT, typename ObserverT>
Core<LsqT, ObserverT>::Core(const CoreConfig& cfg, trace::TraceView trace, LsqT& lsq,
                 mem::MemoryHierarchy& memory,
                 branch::HybridPredictor& predictor, branch::Btb& btb,
                 energy::DcacheLedger* dcache_ledger,
                 energy::DtlbLedger* dtlb_ledger, ObserverT* observer)
    : cfg_(cfg),
      trace_(trace),
      lsq_(lsq),
      mem_(memory),
      predictor_(predictor),
      btb_(btb),
      dcache_ledger_(dcache_ledger),
      dtlb_ledger_(dtlb_ledger),
      observer_(observer),
      rob_status_(cfg.rob_size),
      rob_token_(cfg.rob_size),
      rob_op_(cfg.rob_size, nullptr),
      rob_lists_(cfg.rob_size),
      rob_cold_(cfg.rob_size),
      dep_slab_(cfg.rob_size),
      rename_(kNumArchRegs, kNoInst),
      completions_(detail::completion_wheel_span(cfg, memory)),
      int_alu_(cfg.n_int_alu),
      fp_alu_(cfg.n_fp_alu),
      int_muldiv_(cfg.n_int_muldiv),
      fp_muldiv_(cfg.n_fp_muldiv) {
  lsq_.set_present_bit_clearer(this);
  if constexpr (!requires(const LsqT& q) { q.has_pending_work(); }) {
    // Type-erased queue: lsq_has_pending_work() is conservatively true,
    // so the legacy predicate never reports quiescence. Pin the ledger
    // bit for the same conservatism — every re-derivation re-asserts it
    // — and the word test, the cross-check and the stage gates agree:
    // the type-erased core simply never skips anything.
    wake_set(kWakeLsq);
  }
  if (std::has_single_bit(static_cast<std::uint64_t>(cfg.rob_size))) {
    rob_mask_ = cfg.rob_size - 1;
  }
  fetch_queue_.reserve(cfg.fetch_queue);
  ready_int_.reserve(cfg.rob_size);
  ready_fp_.reserve(cfg.rob_size);
  ready_mem_.reserve(cfg.rob_size);
  unplaced_stores_.reserve(cfg.rob_size);
  ordering_waiting_loads_.reserve(cfg.rob_size);
  drain_scratch_.reserve(64);
  eligible_scratch_.reserve(64);
  issue_batch_.reserve(cfg.rob_size);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::clear_present_bit(std::uint32_t set, std::uint32_t way) {
  mem_.l1d().set_present_bit(set, way, false);
}

template <typename LsqT, typename ObserverT>
std::uint64_t Core<LsqT, ObserverT>::forwarded_value(const trace::MicroOp& load,
                                          const trace::MicroOp& store) const {
  const std::uint64_t shift = (load.mem_addr - store.mem_addr) * 8;
  return (store.value >> shift) & detail::value_mask(load.mem_size);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::schedule_completion(InstSeq seq, Cycle at) {
  completions_.schedule(cycle_, at,
                        CompletionRef{seq, rob_token_[rob_index(seq)].gen});
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::wake_dependents(std::size_t idx) {
  if (dep_slab_.empty(rob_lists_[idx].dependents)) return;
  // Detach-then-iterate: the chain is stolen from the slot before the
  // wake handlers run, so re-entrant pushes (a woken load registering on
  // another store's waiter list) can never touch the chunks in flight.
  DepSlab::List deps = dep_slab_.detach(rob_lists_[idx].dependents);
  dep_slab_.for_each(deps, [this](const DepRef& ref) {
    const InstSeq d = ref.seq;
    // Stale tokens (squashed dependents — possibly re-dispatched under a
    // new gen after refetch) die here; squash never scrubs these lists.
    if (!ref_live(d, ref.gen)) return;
    SlotStatus& dep = status_of(d);
    if (static_cast<SrcRole>(ref.role) == SrcRole::kAgen) {
      assert(dep.wait_agen() > 0);
      if (dep.dec_wait_agen() && dep.in_iq()) {
        const SeqRef r = ref_of(d);
        if (dep.is_fp()) {
          push_ready_fp(r);
        } else {
          push_ready_int(r);
        }
        // A head whose last address source just arrived can satisfy the
        // §3.3 predicate's headroom disjunct — re-derive its clause so
        // the commit gate cannot sit on a stale bit.
        if (d == head_) {
          wake_assign(kWakeCommitHead, commit_head_actionable());
        }
      }
    } else {
      assert(dep.wait_data() > 0);
      if (dep.dec_wait_data()) {
        dep.set(SlotStatus::kDataReady);
        if (dep.placed()) {
          lsq_.on_store_data_ready(d);
          // Forward-waiting loads can now take the store's datum.
          SlotLists& dl = rob_lists_[rob_index(d)];
          if (!dep_slab_.empty(dl.fwd_waiters)) {
            DepSlab::List w = dep_slab_.detach(dl.fwd_waiters);
            dep_slab_.for_each(w, [this](const DepRef& l) {
              if (ref_live(l.seq, l.gen)) try_schedule_load(l.seq);
            });
            dep_slab_.free(w);
          }
          if (!dep.executing() && !dep.completed()) {
            dep.set(SlotStatus::kExecuting);
            schedule_completion(d, cycle_ + 1);
          }
        }
      }
    }
  });
  dep_slab_.free(deps);
}

template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::load_ordering_clear(InstSeq seq) const {
  return unplaced_stores_.empty() || unplaced_stores_.min() > seq;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::try_schedule_load(InstSeq seq) {
  if (!live(seq)) return;
  SlotStatus& f = status_of(seq);
  if (!f.placed() || !f.agen_done() || f.completed() || f.executing()) return;
  if (!load_ordering_clear(seq)) {
    ordering_waiting_loads_.insert(seq);
    return;
  }
  ordering_waiting_loads_.erase(seq);

  const lsq::LoadPlan plan = lsq_.plan_load(seq);
  switch (plan.kind) {
    case lsq::LoadPlan::Kind::kCacheAccess:
      f.set(SlotStatus::kExecuting);
      push_ready_mem(ref_of(seq));
      break;
    case lsq::LoadPlan::Kind::kForwardReady: {
      f.set(SlotStatus::kExecuting);
      ++res_.forwarded_loads;
      rob_cold_[rob_index(seq)].load_value =
          forwarded_value(op_of(seq), trace_[plan.store]);
      schedule_completion(seq, cycle_ + 1);
      break;
    }
    case lsq::LoadPlan::Kind::kForwardWait:
      dep_slab_.push(rob_lists_[rob_index(plan.store)].fwd_waiters,
                     DepRef{seq, rob_token_[rob_index(seq)].gen, 0});
      break;
    case lsq::LoadPlan::Kind::kWaitCommit:
      ++res_.partial_forward_waits;
      dep_slab_.push(rob_lists_[rob_index(plan.store)].commit_waiters,
                     DepRef{seq, rob_token_[rob_index(seq)].gen, 0});
      break;
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::on_store_placed(InstSeq seq) {
  SlotStatus& f = status_of(seq);
  f.set(SlotStatus::kPlaced);
  unplaced_stores_.erase(seq);
  // Data that arrived before (or with) placement is written to the slot
  // now; this is the single point that informs the LSQ of store data.
  if (f.data_ready()) {
    lsq_.on_store_data_ready(seq);
    if (!f.executing() && !f.completed()) {
      f.set(SlotStatus::kExecuting);
      schedule_completion(seq, cycle_ + 1);
    }
  }
  // readyBit sweep (paper §3.1): loads up to the next unknown-address
  // store become eligible.
  const InstSeq min_unplaced =
      unplaced_stores_.empty() ? kNoInst : unplaced_stores_.min();
  eligible_scratch_.clear();
  for (InstSeq l : ordering_waiting_loads_) {
    if (l >= min_unplaced) break;
    eligible_scratch_.push_back(l);
  }
  // The eligible loads are exactly the sorted prefix; drop them in one
  // compaction before rescheduling (try_schedule_load may re-insert a
  // load whose plan still blocks, so the erase must happen first).
  ordering_waiting_loads_.erase_prefix(eligible_scratch_.size());
  for (InstSeq l : eligible_scratch_) try_schedule_load(l);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::on_agen_complete(InstSeq seq) {
  const std::size_t idx = rob_index(seq);
  SlotStatus& f = rob_status_[idx];
  f.set(SlotStatus::kAgenDone);
  assert(agens_outstanding_ > 0);
  --agens_outstanding_;
  const trace::MicroOp& op = *rob_op_[idx];
  const bool is_load = f.op_class() == trace::OpClass::kLoad;
  lsq::MemOpDesc desc;
  desc.seq = seq;
  desc.addr = op.mem_addr;
  desc.size = op.mem_size;
  desc.is_load = is_load;
  // Store data is reported through on_store_data_ready after placement so
  // the datum write is charged exactly once (see on_store_placed).
  desc.data_ready = false;
  const lsq::Placement p = lsq_.on_address_ready(desc);
  switch (p.status) {
    case lsq::Placement::Status::kPlaced:
      f.set(SlotStatus::kPlaced);
      if (is_load) {
        try_schedule_load(seq);
      } else {
        on_store_placed(seq);
      }
      break;
    case lsq::Placement::Status::kBuffered:
      break;  // drain() will surface it
    case lsq::Placement::Status::kRejected:
      // The agen gate makes this unreachable; treat as a hard error so
      // configuration bugs surface loudly.
      throw std::logic_error("LSQ rejected a placement despite the agen gate");
  }
  // Ledger: only a kBuffered placement changes deferred work (kPlaced
  // touches neither the AddrBuffer nor the retry FIFO). The head clause
  // is re-derived for a placement of the head itself (either way) and
  // for *any* buffered placement — the AddrBuffer just shrank the
  // placement headroom, which can make the §3.3 predicate true for a
  // head that is still waiting to compute its address.
  if (p.status == lsq::Placement::Status::kBuffered) {
    wake_assign(kWakeLsq, lsq_has_pending_work());
    wake_assign(kWakeCommitHead, commit_head_actionable());
  } else if (seq == head_) {
    wake_assign(kWakeCommitHead, commit_head_actionable());
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::handle_eviction(bool evicted, std::uint32_t set,
                                 bool had_present_bit) {
  if (evicted && had_present_bit) lsq_.on_cache_line_replaced(set);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::execute_load_access(InstSeq seq) {
  const std::size_t idx = rob_index(seq);
  SlotStatus& f = rob_status_[idx];
  const trace::MicroOp& op = *rob_op_[idx];
  // Re-plan: a store may have been placed between scheduling and issue.
  const lsq::LoadPlan plan = lsq_.plan_load(seq);
  if (plan.kind != lsq::LoadPlan::Kind::kCacheAccess) {
    f.clear(SlotStatus::kExecuting);
    try_schedule_load(seq);
    return;
  }
  ++dcache_ports_used_;
  const Addr addr = op.mem_addr;
  const lsq::CacheHints hints = lsq_.cache_hints(seq);
  Cycle lat = 0;
  if (hints.translation_known) {
    ++res_.dtlb_cached;
    if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_cached_translation();
  }
  if (hints.way_known) {
    const auto k = mem_.data_access_known(hints.set, hints.way, addr);
    // The presentBit protocol guarantees residency; a violation is a bug.
    if (!k.ok) throw std::logic_error("presentBit protocol violation (load)");
    lat = k.latency;
    if (cfg_.exploit_known_line_latency && lat > 1) --lat;
    ++res_.dcache_way_known;
    if (dcache_ledger_ != nullptr) dcache_ledger_->on_way_known_access();
  } else {
    const mem::DataAccess a = hints.translation_known
                                  ? mem_.data_access_translated(addr)
                                  : mem_.data_access(addr);
    if (!hints.translation_known) {
      ++res_.dtlb_accesses;
      if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_access();
    }
    lat = a.latency;
    ++res_.dcache_full;
    if (dcache_ledger_ != nullptr) dcache_ledger_->on_full_access();
    lsq_.on_cache_access_complete(seq, a.set, a.way);
    if (lsq_.kind() == lsq::LsqKind::kSamie) {
      mem_.l1d().set_present_bit(a.set, a.way, true);
    }
    handle_eviction(a.evicted, a.evicted_set, a.evicted_present_bit);
  }
  rob_cold_[idx].load_value = memory_state_.read(addr, op.mem_size);
  ++res_.loads_executed;
  schedule_completion(seq, cycle_ + lat);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::complete(InstSeq seq) {
  const std::size_t idx = rob_index(seq);
  SlotStatus& f = rob_status_[idx];
  assert(!f.completed());
  f.set(SlotStatus::kCompleted);
  f.clear(SlotStatus::kExecuting);
  const trace::OpClass cls = f.op_class();
  if (cls == trace::OpClass::kLoad) {
    if (rob_cold_[idx].load_value != rob_op_[idx]->value) {
      ++res_.value_mismatches;
    }
    lsq_.on_load_complete(seq);
  }
  wake_dependents(idx);
  // Ledger: a completed head is commit work (commit already ran this
  // cycle); the bit holds until commit retires it.
  if (seq == head_) wake_set(kWakeCommitHead);
  if (cls == trace::OpClass::kBranch && f.mispredicted()) {
    ++res_.mispredict_squashes;
    squash_after(seq);
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::writeback_stage() {
  completions_.pop_due(cycle_, [this](const CompletionRef& c) {
    const std::size_t idx = rob_index(c.seq);
    // Stale events (squashed instruction, flushed pipeline, re-dispatched
    // slot) fail the (seq, gen) token match and are dropped here — the
    // squash paths never walk the wheel.
    const SlotToken t = rob_token_[idx];
    if (t.seq != c.seq || t.gen != c.gen) return;
    const SlotStatus s = rob_status_[idx];
    if (s.is_mem() && !s.agen_done()) {
      on_agen_complete(c.seq);
    } else if (!s.completed()) {
      complete(c.seq);
    }
  });
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::memory_stage() {
  // The drain hook's own contract makes the skip exact: pending work
  // false means the buffer is empty (SAMIE, conventional) or the retry
  // FIFO head is proven stuck against unchanged state (ARB) — in both
  // cases drain() would mutate nothing and charge nothing, so not
  // calling it is bit-identical and saves the provably-failing retry
  // the always-walk loop used to pay every stepped cycle.
  if (!lsq_has_pending_work()) {
    // Every pending-work transition to false re-derives the bit at its
    // site, so it must already be clear here.
    assert((wake_ledger_ & kWakeLsq) == 0);
    return;
  }
  drain_scratch_.clear();
  lsq_.drain(drain_scratch_);
  for (InstSeq seq : drain_scratch_) {
    if (!live(seq)) continue;
    SlotStatus& f = status_of(seq);
    f.set(SlotStatus::kPlaced);
    if (f.op_class() == trace::OpClass::kLoad) {
      try_schedule_load(seq);
    } else {
      on_store_placed(seq);
    }
  }
  // Ledger: a clear kWakeLsq proves drain() was a no-op (nothing since
  // the last re-derivation could have added deferred work), so the bit
  // is re-derived only when it was set — drain consumed work or proved
  // itself blocked (the ARB sets drain_blocked_ on a failed retry). A
  // successful placement can also flip the head's §3.3 predicate —
  // directly, or through the AddrBuffer headroom it freed.
  if ((wake_ledger_ & kWakeLsq) != 0) {
    wake_assign(kWakeLsq, lsq_has_pending_work());
    if (!drain_scratch_.empty()) {
      wake_assign(kWakeCommitHead, commit_head_actionable());
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::issue_stage() {
  // Loads cleared for memory access contend for the remaining cache ports.
  while (!ready_mem_.empty()) {
    if (dcache_ports_used_ >= cfg_.dcache_ports) break;
    const SeqRef ref = ready_mem_.front();
    ready_mem_.pop_front();
    if (!ref_live(ref.seq, ref.gen)) continue;  // squash-stale token
    const SlotStatus s = status_of(ref.seq);
    if (s.completed() || !s.executing()) continue;
    execute_load_access(ref.seq);
  }

  // INT side: agen, integer compute, branches. One pass over the ready
  // ring, stopping at the issue width exactly as the stage's width gate
  // demands (entries beyond it are never examined — the ledger proof
  // requires re-arbitration of *examined* entries only). Skipped entries
  // collect in the scratch ring and re-enter at the front in original
  // order; the occupying pools arbitrate against a per-cycle snapshot of
  // their free units (taken lazily on the first mul/div) instead of
  // rescanning every unit per entry.
  if (!ready_int_.empty()) {
  std::uint32_t issued = 0;
  bool int_arb_begun = false;
  issue_batch_.clear();
  while (!ready_int_.empty() && issued < cfg_.issue_width_int) {
    const SeqRef ref = ready_int_.front();
    const InstSeq seq = ref.seq;
    ready_int_.pop_front();
    if (!ref_live(seq, ref.gen)) continue;
    SlotStatus& f = status_of(seq);
    if (!f.in_iq() || f.wait_agen() > 0) continue;
    const trace::OpClass op = f.op_class();
    bool ok = false;
    Cycle latency = cfg_.lat_int_alu;
    if (trace::is_mem(op)) {
      if (agens_outstanding_ >= lsq_.placement_headroom()) {
        ++res_.agen_gated;
        issue_batch_.push_back(ref);
        continue;
      }
      ok = int_alu_.try_issue();
      if (ok) {
        f.set(SlotStatus::kAgenIssued);
        ++agens_outstanding_;
      }
    } else if (op == trace::OpClass::kIntMul) {
      if (!int_arb_begun) {
        int_muldiv_.begin_arbitration(cycle_);
        int_arb_begun = true;
      }
      ok = int_muldiv_.try_issue_batched(cycle_, 1);
      latency = cfg_.lat_int_mul;
    } else if (op == trace::OpClass::kIntDiv) {
      if (!int_arb_begun) {
        int_muldiv_.begin_arbitration(cycle_);
        int_arb_begun = true;
      }
      ok = int_muldiv_.try_issue_batched(cycle_, cfg_.lat_int_div);
      latency = cfg_.lat_int_div;
    } else {
      ok = int_alu_.try_issue();
    }
    if (!ok) {
      issue_batch_.push_back(ref);
      continue;
    }
    f.clear(SlotStatus::kInIq);
    assert(iq_int_used_ > 0);
    --iq_int_used_;
    ++issued;
    schedule_completion(seq, cycle_ + latency);
  }
  for (auto it = issue_batch_.rbegin(); it != issue_batch_.rend(); ++it) {
    ready_int_.push_front(*it);
  }
  }

  // FP side (same structure).
  if (!ready_fp_.empty()) {
  std::uint32_t issued = 0;
  bool fp_arb_begun = false;
  issue_batch_.clear();
  while (!ready_fp_.empty() && issued < cfg_.issue_width_fp) {
    const SeqRef ref = ready_fp_.front();
    const InstSeq seq = ref.seq;
    ready_fp_.pop_front();
    if (!ref_live(seq, ref.gen)) continue;
    SlotStatus& f = status_of(seq);
    if (!f.in_iq() || f.wait_agen() > 0) continue;
    const trace::OpClass op = f.op_class();
    bool ok = false;
    Cycle latency = cfg_.lat_fp_alu;
    if (op == trace::OpClass::kFpMul) {
      if (!fp_arb_begun) {
        fp_muldiv_.begin_arbitration(cycle_);
        fp_arb_begun = true;
      }
      ok = fp_muldiv_.try_issue_batched(cycle_, 1);
      latency = cfg_.lat_fp_mul;
    } else if (op == trace::OpClass::kFpDiv) {
      if (!fp_arb_begun) {
        fp_muldiv_.begin_arbitration(cycle_);
        fp_arb_begun = true;
      }
      ok = fp_muldiv_.try_issue_batched(cycle_, cfg_.lat_fp_div);
      latency = cfg_.lat_fp_div;
    } else {
      ok = fp_alu_.try_issue();
    }
    if (!ok) {
      issue_batch_.push_back(ref);
      continue;
    }
    f.clear(SlotStatus::kInIq);
    assert(iq_fp_used_ > 0);
    --iq_fp_used_;
    ++issued;
    schedule_completion(seq, cycle_ + latency);
  }
  for (auto it = issue_batch_.rbegin(); it != issue_batch_.rend(); ++it) {
    ready_fp_.push_front(*it);
  }
  }

  // Ledger: issue is the only stage that pops the ready rings, so their
  // end-of-stage emptiness is final up to later pushes (which set the
  // bit themselves). A clear bit proves the rings were already empty —
  // nothing to re-derive.
  if ((wake_ledger_ & kWakeReady) != 0) {
    wake_assign(kWakeReady, any_ready_queue());
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::dispatch_stage() {
  const bool rob_was_empty = head_ == tail_;
  std::uint32_t n = 0;
  for (; n < cfg_.dispatch_width && !fetch_queue_.empty(); ++n) {
    // Head-of-queue resource checks: the same predicate the quiescence
    // ledger consults (in-order dispatch: a blocked head blocks all).
    if (dispatch_blocked()) break;
    const Fetched fr = fetch_queue_.front();
    const trace::MicroOp& op = trace_[fr.seq];
    const bool fp = fr.fp;
    const bool mem_op = fr.mem;

    fetch_queue_.pop_front();
    const InstSeq seq = fr.seq;
    assert(seq == tail_);
    const std::size_t idx = rob_index(seq);
    SlotToken& tok = rob_token_[idx];
    tok.seq = seq;
    ++tok.gen;  // new incarnation: completion events of prior occupants die
    rob_op_[idx] = &op;
    SlotStatus& f = rob_status_[idx];
    f.reset(SlotStatus::kInIq |
            (fr.mispredicted ? SlotStatus::kMispredicted : 0U) |
            (mem_op ? SlotStatus::kIsMem : 0U) |
            (fp ? SlotStatus::kIsFp : 0U) |
            (static_cast<std::uint32_t>(op.op) << SlotStatus::kOpShift));
    rob_cold_[idx] = SlotCold{};
    // The slot's lists were returned to the slab at commit/squash/flush
    // (every way a slot dies frees them), so dispatch has nothing to
    // clear — the invariant the dep-slab leak test pins down.
    assert(dep_slab_.empty(rob_lists_[idx].dependents) &&
           dep_slab_.empty(rob_lists_[idx].fwd_waiters) &&
           dep_slab_.empty(rob_lists_[idx].commit_waiters));
    tail_ = seq + 1;

    auto add_dep = [&](RegId src, SrcRole role) {
      if (src == kNoReg) return;
      const InstSeq p = rename_[src];
      if (p != kNoInst && live(p) && !status_of(p).completed()) {
        dep_slab_.push(rob_lists_[rob_index(p)].dependents,
                       DepRef{seq, tok.gen, static_cast<std::uint8_t>(role)});
        if (role == SrcRole::kAgen) {
          f.inc_wait_agen();
        } else {
          f.inc_wait_data();
        }
      }
    };

    if (op.op == trace::OpClass::kStore) {
      add_dep(op.src1, SrcRole::kAgen);   // address base
      add_dep(op.src2, SrcRole::kData);   // store data
    } else {
      add_dep(op.src1, SrcRole::kAgen);
      add_dep(op.src2, SrcRole::kAgen);
    }

    if (op.dst != kNoReg) {
      (is_fp_reg(op.dst) ? fp_regs_used_ : int_regs_used_)++;
      rob_cold_[idx].dst = op.dst;
      rob_cold_[idx].prev_rename = rename_[op.dst];  // O(squashed) undo
      rename_[op.dst] = seq;
    }

    if (mem_op) {
      lsq_.on_dispatch(seq, fr.load);
      if (!fr.load) {
        unplaced_stores_.insert(seq);
        if (f.wait_data() == 0) f.set(SlotStatus::kDataReady);
      }
    }

    (fp ? iq_fp_used_ : iq_int_used_)++;
    if (f.wait_agen() == 0) {
      const SeqRef r{seq, tok.gen};
      if (fp) {
        push_ready_fp(r);
      } else {
        push_ready_int(r);
      }
    }
  }
  // Ledger: a dispatch into an empty ROB created a brand-new head whose
  // §3.3 clause nobody else derives (a dep-free memory op against a full
  // AddrBuffer is flush-pending immediately).
  if (rob_was_empty && head_ != tail_) {
    wake_assign(kWakeCommitHead, commit_head_actionable());
  }
  // Ledger: the stage decides the dispatch clause from its own exit —
  // empty queue or a blocked head is a settled "no work" (only fetch
  // runs later, and appending to the queue cannot unblock its head); an
  // exhausted width with instructions still queued leaves the clause
  // open for fetch_stage to re-derive.
  if (fetch_queue_.empty() || n < cfg_.dispatch_width) {
    wake_assign(kWakeDispatch, false);
    dispatch_clause_open_ = false;
  } else {
    dispatch_clause_open_ = true;
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::fetch_stage() {
  const bool was_empty = fetch_queue_.empty();
  if (cycle_ >= fetch_stall_until_) {
    for (std::uint32_t n = 0; n < cfg_.fetch_width; ++n) {
      if (fetch_queue_.size() >= cfg_.fetch_queue) break;
      if (fetch_seq_ >= trace_.size()) break;
      const trace::MicroOp& op = trace_[fetch_seq_];

      const Addr line = op.pc >> 5U;
      if (line != last_fetch_line_) {
        const Cycle lat = mem_.inst_access(op.pc);
        last_fetch_line_ = line;
        if (lat > mem_.l1i().hit_latency()) {
          fetch_stall_until_ = cycle_ + lat;
          break;
        }
      }

      Fetched fr;
      fr.seq = fetch_seq_;
      fr.dst = op.dst;
      fr.fp = trace::is_fp(op.op);
      fr.mem = trace::is_mem(op.op);
      fr.load = op.op == trace::OpClass::kLoad;
      if (op.op == trace::OpClass::kBranch) {
        const bool pred = predictor_.predict_and_update(op.pc, op.taken);
        const branch::Btb::Result target = btb_.lookup(op.pc);
        if (op.taken) btb_.update(op.pc, op.br_target);
        fr.mispredicted = (pred != op.taken) || (pred && op.taken && !target.hit);
        fetch_queue_.push_back(fr);
        ++fetch_seq_;
        if (pred) break;  // a predicted-taken branch ends the fetch group
      } else {
        fetch_queue_.push_back(fr);
        ++fetch_seq_;
      }
    }
  }
  // Ledger: fetch is the last stage, so the dispatch and fetch clauses
  // are final here. The resource predicate is evaluated only when
  // dispatch left the clause open (width exhausted) or this stage gave
  // the queue a new head (pushed into an empty queue) — appending
  // behind a head dispatch already proved blocked changes nothing. The
  // fetch clause is evaluated for cycle_ + 1 — the cycle the
  // post-increment quiescence check (and the first skipped cycle of a
  // fast-forward) actually asks about.
  const bool fetch_able = fetch_queue_.size() < cfg_.fetch_queue &&
                          fetch_seq_ < trace_.size();
  wake_assign(kWakeFetch, fetch_able && cycle_ + 1 >= fetch_stall_until_);
  if (dispatch_clause_open_ || (was_empty && !fetch_queue_.empty())) {
    // Fetch is the last stage, so every other bit is final for the
    // upcoming check. When one of them already proves the cycle
    // non-quiescent, the resource predicate's answer cannot change the
    // verdict — defer it (assign false; the clause is re-derived next
    // cycle, so a deferred false can never outlive the bits that
    // justified it). Only a potentially-quiescent cycle pays for the
    // full evaluation, exactly like the short-circuiting predicate.
    if ((wake_ledger_ & ~static_cast<std::uint32_t>(kWakeDispatch)) != 0) {
      wake_assign(kWakeDispatch, false);
    } else {
      wake_assign(kWakeDispatch,
                  !fetch_queue_.empty() && !dispatch_blocked());
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::squash_after(InstSeq last_kept) {
  const InstSeq first_bad = last_kept + 1;
  if (first_bad >= tail_) {
    // Nothing younger in flight; still redirect fetch.
    fetch_queue_.clear();
    fetch_seq_ = first_bad;
    fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
    last_fetch_line_ = ~0ULL;
    return;
  }
  lsq_.squash_from(first_bad);
  // One reverse walk over the *squashed range only*. Walking youngest to
  // oldest replays the rename checkpoints in undo order, so the table
  // lands exactly on its state at first_bad's dispatch. (A restored
  // value may name a committed producer — benign, every consumer filters
  // through live().) Nothing else is walked: ready queues, surviving
  // dependent/waiter lists and the wheel all hold (seq, gen) tokens that
  // go stale right here, when the slots clear, and are dropped at pop.
  for (InstSeq s = tail_; s-- > first_bad;) {
    const std::size_t idx = rob_index(s);
    assert(rob_token_[idx].seq == s);
    const SlotStatus f = rob_status_[idx];
    const SlotCold& cold = rob_cold_[idx];
    if (f.agen_issued() && !f.agen_done()) {
      assert(agens_outstanding_ > 0);
      --agens_outstanding_;
    }
    if (cold.dst != kNoReg) {
      auto& used = is_fp_reg(cold.dst) ? fp_regs_used_ : int_regs_used_;
      assert(used > 0);
      --used;
      rename_[cold.dst] = cold.prev_rename;
    }
    if (f.in_iq()) {
      auto& used = f.is_fp() ? iq_fp_used_ : iq_int_used_;
      assert(used > 0);
      --used;
    }
    rob_token_[idx].seq = kNoInst;
    SlotLists& lists = rob_lists_[idx];
    dep_slab_.free(lists.dependents);
    dep_slab_.free(lists.fwd_waiters);
    dep_slab_.free(lists.commit_waiters);
  }
  tail_ = first_bad;

  // The ordering sets are consulted by value (min()), so they must be
  // exact — but they are sorted, so the squash is an O(log n) truncation.
  unplaced_stores_.erase_from(first_bad);
  ordering_waiting_loads_.erase_from(first_bad);

  fetch_queue_.clear();
  fetch_seq_ = first_bad;
  fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
  last_fetch_line_ = ~0ULL;

  // Ledger: the LSQ squash dropped deferred work (and can raise the
  // AddrBuffer headroom, flipping the head's §3.3 predicate).
  wake_assign(kWakeLsq, lsq_has_pending_work());
  wake_assign(kWakeCommitHead, commit_head_actionable());
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::full_flush() {
  ++res_.deadlock_flushes;
  lsq_.squash_from(head_);
  // The flush squashes *everything* in flight, so the same reverse
  // checkpoint replay used by squash_after restores the rename table in
  // O(squashed) — the former O(arch-regs + ROB) "clear and refetch from
  // head_" rebuild is gone. After undoing every in-flight dispatch the
  // table holds only pre-head_ producers, all committed, all filtered by
  // live(): semantically the empty table.
  for (InstSeq s = tail_; s-- > head_;) {
    const std::size_t idx = rob_index(s);
    assert(rob_token_[idx].seq == s);
    const SlotCold& cold = rob_cold_[idx];
    if (cold.dst != kNoReg) rename_[cold.dst] = cold.prev_rename;
    rob_token_[idx].seq = kNoInst;
    SlotLists& lists = rob_lists_[idx];
    dep_slab_.free(lists.dependents);
    dep_slab_.free(lists.fwd_waiters);
    dep_slab_.free(lists.commit_waiters);
  }
  tail_ = head_;
  int_regs_used_ = 0;
  fp_regs_used_ = 0;
  iq_int_used_ = 0;
  iq_fp_used_ = 0;
  unplaced_stores_.clear();
  ordering_waiting_loads_.clear();
  ready_int_.clear();
  ready_fp_.clear();
  ready_mem_.clear();
  // completions_ keeps its (now token-stale) events; see squash_after.
  int_muldiv_.reset();
  fp_muldiv_.reset();
  agens_outstanding_ = 0;
  fetch_queue_.clear();
  fetch_seq_ = head_;
  fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
  last_fetch_line_ = ~0ULL;

  // Ledger: the ready rings were just cleared (the one consumer besides
  // issue_stage), nothing is in flight, and the LSQ was squashed empty.
  wake_assign(kWakeReady, false);
  wake_assign(kWakeCommitHead, false);
  wake_assign(kWakeLsq, lsq_has_pending_work());
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::commit_stage() {
  // Wake-ledger bookkeeping: every exit path below decides the commit
  // clause from state it already examined, so the §3.3 predicate is
  // never re-evaluated at stage end; kWakeLsq is re-derived only when
  // an on_commit actually ran (the only LSQ mutation in this stage).
  bool head_clause_known = false;
  bool head_clause = false;
  bool committed_any = false;
  for (std::uint32_t n = 0; n < cfg_.commit_width && head_ < tail_; ++n) {
    const std::size_t idx = rob_index(head_);
    assert(rob_token_[idx].seq == head_);
    const SlotStatus h = rob_status_[idx];
    if (!h.completed()) {
      // Deadlock avoidance (paper §3.3): the oldest instruction cannot be
      // placed — either its address is computed and every candidate slot
      // is held by younger instructions, or its address computation is
      // gated by a full AddrBuffer. Flush the pipeline; the oldest
      // instruction re-enters first and is guaranteed a slot.
      if (deadlock_flush_pending(idx)) {
        full_flush();  // assigns the ledger itself (nothing in flight)
      } else {
        head_clause_known = true;  // head blocked: not completed, no flush
      }
      break;
    }

    const trace::OpClass cls = h.op_class();
    if (cls == trace::OpClass::kStore) {
      if (dcache_ports_used_ >= cfg_.dcache_ports) {
        head_clause_known = true;
        head_clause = true;  // completed head held only by the port limit
        break;
      }
      ++dcache_ports_used_;
      const trace::MicroOp& op = *rob_op_[idx];
      const Addr addr = op.mem_addr;
      const lsq::CacheHints hints = lsq_.cache_hints(head_);
      if (hints.translation_known) {
        ++res_.dtlb_cached;
        if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_cached_translation();
      }
      if (hints.way_known) {
        const auto k = mem_.data_access_known(hints.set, hints.way, addr);
        if (!k.ok) throw std::logic_error("presentBit protocol violation (store)");
        ++res_.dcache_way_known;
        if (dcache_ledger_ != nullptr) dcache_ledger_->on_way_known_access();
      } else {
        const mem::DataAccess a = hints.translation_known
                                      ? mem_.data_access_translated(addr)
                                      : mem_.data_access(addr);
        if (!hints.translation_known) {
          ++res_.dtlb_accesses;
          if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_access();
        }
        ++res_.dcache_full;
        if (dcache_ledger_ != nullptr) dcache_ledger_->on_full_access();
        lsq_.on_cache_access_complete(head_, a.set, a.way);
        if (lsq_.kind() == lsq::LsqKind::kSamie) {
          mem_.l1d().set_present_bit(a.set, a.way, true);
        }
        handle_eviction(a.evicted, a.evicted_set, a.evicted_present_bit);
      }
      memory_state_.write(addr, op.mem_size, op.value);
      ++res_.stores_committed;
      committed_any = true;
      SlotLists& hl = rob_lists_[idx];
      if (!dep_slab_.empty(hl.commit_waiters)) {
        DepSlab::List w = dep_slab_.detach(hl.commit_waiters);
        lsq_.on_commit(head_);
        dep_slab_.for_each(w, [this](const DepRef& l) {
          if (ref_live(l.seq, l.gen)) try_schedule_load(l.seq);
        });
        dep_slab_.free(w);
      } else {
        lsq_.on_commit(head_);
      }
    } else if (cls == trace::OpClass::kLoad) {
      lsq_.on_commit(head_);
      committed_any = true;
    }

    const RegId dst = rob_cold_[idx].dst;
    if (dst != kNoReg) {
      auto& used = is_fp_reg(dst) ? fp_regs_used_ : int_regs_used_;
      assert(used > 0);
      --used;
      if (rename_[dst] == head_) rename_[dst] = kNoInst;
    }
    rob_token_[idx].seq = kNoInst;
    // Return the slot's dependence chunks now (they are empty in the
    // common case: completion woke the dependents, data-ready woke the
    // forward waiters) so the slab never carries refs for dead slots.
    SlotLists& lists = rob_lists_[idx];
    dep_slab_.free(lists.dependents);
    dep_slab_.free(lists.fwd_waiters);
    dep_slab_.free(lists.commit_waiters);
    ++res_.committed;
    ++head_;
    last_commit_cycle_ = cycle_;
  }
  wake_assign(kWakeCommitHead,
              head_clause_known ? head_clause : commit_head_actionable());
  // on_commit can unblock the ARB retry FIFO; without one the stage
  // never touched the LSQ and the bit stands.
  if (committed_any) wake_assign(kWakeLsq, lsq_has_pending_work());
}

// The from-scratch quiescence predicate: proves no stage can change
// architectural state at cycle_ — and, because every clause below
// depends only on state that stages themselves mutate, at any later
// cycle until a wake source (calendar-wheel event, fetch re-enable,
// hierarchy completion, watchdog) fires. Stage by stage:
//   commit    — the head is not completed and the §3.3 deadlock-flush
//               predicate is false; both change only via writeback.
//   writeback — no event is due before the wheel's next_event_cycle
//               (the jump target), and stale events popping is a no-op.
//   memory    — drain() is provably a no-op (lsq has_pending_work hook;
//               SAMIE reports work whenever the AddrBuffer is non-empty
//               because failed retries still charge energy).
//   issue     — the ready ledgers are empty. A non-empty ledger is never
//               skippable: gated agens count agen_gated per cycle, and
//               FU-blocked entries re-arbitrate. (A *busy* FU alone
//               never blocks skipping — its operation's completion is
//               already on the wheel; see OccupyingPool's hooks.)
//   dispatch  — the fetch queue is empty or its head fails the same
//               resource checks dispatch_stage would apply.
//   fetch     — stalled (wake at fetch_stall_until_), the queue is full,
//               or the trace is exhausted.
// The cycle loop tests the incremental wake_ledger_ word instead of
// calling this; CoreConfig::check_quiescence asserts the two agree after
// every stepped cycle.
template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::quiescent() const {
  if (commit_head_actionable()) return false;
  if (any_ready_queue()) return false;
  if (lsq_has_pending_work()) return false;
  if (!fetch_queue_.empty() && !dispatch_blocked()) return false;
  const bool fetch_able = fetch_queue_.size() < cfg_.fetch_queue &&
                          fetch_seq_ < trace_.size();
  if (fetch_able && cycle_ >= fetch_stall_until_) return false;
  return true;
}

template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::dispatch_blocked() const {
  // Decode facts ride in the fetch ring (see Fetched): the head-of-queue
  // resource checks never touch the trace record.
  const Fetched& fr = fetch_queue_.front();
  if (tail_ - head_ >= cfg_.rob_size) return true;
  if (fr.fp ? iq_fp_used_ >= cfg_.iq_fp : iq_int_used_ >= cfg_.iq_int) {
    return true;
  }
  if (fr.dst != kNoReg && (is_fp_reg(fr.dst) ? fp_regs_used_ >= cfg_.fp_regs
                                             : int_regs_used_ >= cfg_.int_regs)) {
    return true;
  }
  return fr.mem && !lsq_.can_dispatch(fr.load);
}

template <typename LsqT, typename ObserverT>
Cycle Core<LsqT, ObserverT>::wake_horizon() const {
  // Wake sources. The fetch stall participates only when fetch could act
  // once it lifts; the hierarchy hook is constant kNeverCycle for the
  // synchronous model but keeps async models honest (see hierarchy.h).
  Cycle wake = completions_.next_event_cycle(cycle_);
  wake = std::min(wake, mem_.pending_completion_cycle());
  if (fetch_queue_.size() < cfg_.fetch_queue && fetch_seq_ < trace_.size()) {
    wake = std::min(wake, fetch_stall_until_);
  }
  // Clamp to the cycle the watchdog would fire at: if no wake source
  // exists before it, the always-step loop would have spun there and
  // thrown — jump to the same cycle and let run() throw identically.
  return std::min(wake, last_commit_cycle_ + cfg_.commit_timeout + 1);
}

template <typename LsqT, typename ObserverT>
Cycle Core<LsqT, ObserverT>::next_wake_cycle() const {
  if (cfg_.always_step || wake_ledger_ != 0) return cycle_;
  return std::max(cycle_, wake_horizon());
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::try_fast_forward() {
  if (wake_ledger_ != 0) return;
  const Cycle wake = wake_horizon();
  if (wake <= cycle_) return;

  const std::uint64_t span = wake - cycle_;
  // The skipped cycles are observable only through the per-cycle
  // occupancy hook; nothing ran, so the sample is constant over the span
  // and the run-length observer folds it in one call, bit-identically.
  if (observer_ != nullptr) {
    observer_->on_cycles(cycle_, span, sampled_occupancy());
  }
  res_.quiescent_cycles_skipped += span;
  ++res_.fast_forwards;
  cycle_ = wake;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::begin(std::uint64_t max_insts) {
  target_ = std::min<std::uint64_t>(max_insts, trace_.size());
  last_commit_cycle_ = 0;
}

template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::step(std::uint64_t max_cycles) {
  // One iteration here is one iteration of the legacy run() loop — the
  // body is verbatim, so stepping in blocks of any size (the LaneEngine
  // round-robins lanes in ~kilocycle turns) commits the same
  // instructions at the same cycles as one uninterrupted run.
  for (std::uint64_t stepped = 0; stepped < max_cycles; ++stepped) {
    if (res_.committed >= target_) return false;
    dcache_ports_used_ = 0;
    int_alu_.new_cycle();
    fp_alu_.new_cycle();

    // Stage gates: at the top of a cycle the commit and ready bits are
    // exact (commit's clause only moves through writeback/placement
    // sites, and nothing pops a ready ring outside issue), so a clear
    // bit proves the stage a no-op and the event-driven loop skips the
    // call. The always-step escape hatch stays an ungated reference
    // walk — the differential suite comparing both modes is then a
    // tripwire for the gates themselves, on top of the quiescence
    // cross-check.
    if (cfg_.always_step || (wake_ledger_ & kWakeCommitHead) != 0) {
      commit_stage();
      if (res_.committed >= target_) return false;
    }
    if (cfg_.always_step || completions_.has_due(cycle_)) {
      writeback_stage();
    }
    memory_stage();
    if (cfg_.always_step || (wake_ledger_ & kWakeReady) != 0) {
      issue_stage();
    }
    dispatch_stage();
    fetch_stage();

    if (observer_ != nullptr) observer_->on_cycle(cycle_, sampled_occupancy());

    ++cycle_;
    // Trace exhausted. Checked before the fast-forward so a quiescent,
    // finished machine breaks instead of jumping at stale wheel events —
    // and it cannot mask a wedge: this holds within commit_width cycles
    // of the final commit, 200k cycles before the watchdog could.
    if (head_ == tail_ && fetch_queue_.empty() && fetch_seq_ >= trace_.size()) {
      return false;
    }
    // Differential cross-check (tests, SAMIE_CHECK_QUIESCENCE builds):
    // the incremental ledger and the from-scratch predicate must agree
    // after *every* stepped cycle, in both engine modes.
    if (cfg_.check_quiescence && (wake_ledger_ == 0) != quiescent()) {
      throw std::logic_error(
          "wake ledger (word=" + std::to_string(wake_ledger_) +
          ") disagrees with quiescent() at cycle " + std::to_string(cycle_));
    }
    if (!cfg_.always_step) try_fast_forward();
    // Watchdog, both engine modes: a fast-forward is clamped at this
    // horizon, so a wedged pipeline throws at the same cycle with the
    // same message whether the loop stepped or jumped there.
    if (cycle_ - last_commit_cycle_ > cfg_.commit_timeout) {
      throw std::runtime_error("commit watchdog fired: pipeline wedged at cycle " +
                               std::to_string(cycle_));
    }
    // Cooperative cancellation: one relaxed load per stepped iteration,
    // after the fast-forward so a deadline expiring mid-span still
    // aborts within commit_timeout cycles of wall-clock work.
    if (cfg_.should_abort != nullptr &&
        cfg_.should_abort->load(std::memory_order_relaxed)) [[unlikely]] {
      throw SimulationAborted("simulation aborted by cancellation token at cycle " +
                              std::to_string(cycle_));
    }
  }
  return res_.committed < target_;
}

template <typename LsqT, typename ObserverT>
CoreResult Core<LsqT, ObserverT>::finish() {
  res_.cycles = cycle_;
  res_.ipc = cycle_ > 0 ? static_cast<double>(res_.committed) /
                              static_cast<double>(cycle_)
                        : 0.0;
  return res_;
}

template <typename LsqT, typename ObserverT>
CoreResult Core<LsqT, ObserverT>::run(std::uint64_t max_insts) {
  begin(max_insts);
  while (step(std::numeric_limits<std::uint64_t>::max())) {
  }
  return finish();
}

}  // namespace samie::core
