// Template member definitions for core::Core<LsqT> (included by core.h).
// Keep this file free of non-template code; shared helpers live in the
// anonymous-namespace-free `detail` namespace so every instantiation
// (type-erased and devirtualized) compiles from one source of truth.
#pragma once

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace samie::core {

namespace detail {

[[nodiscard]] constexpr std::uint64_t value_mask(std::uint32_t bytes) noexcept {
  return bytes >= 8 ? ~0ULL : ((1ULL << (8 * bytes)) - 1);
}

/// Calendar-wheel span sizing rule: one power of two above the largest
/// latency any completion can be scheduled with — the worst-case data
/// access (TLB walk + L1D + L2 + memory fill) or the slowest functional
/// unit — so steady-state scheduling never touches the overflow list.
[[nodiscard]] inline std::size_t completion_wheel_span(
    const CoreConfig& cfg, const mem::MemoryHierarchy& memory) {
  Cycle worst = memory.worst_case_data_latency();
  for (const Cycle lat : {cfg.lat_int_alu, cfg.lat_int_mul, cfg.lat_int_div,
                          cfg.lat_fp_alu, cfg.lat_fp_mul, cfg.lat_fp_div}) {
    worst = std::max(worst, lat);
  }
  return static_cast<std::size_t>(std::bit_ceil(worst + 2));
}

}  // namespace detail

template <typename LsqT, typename ObserverT>
Core<LsqT, ObserverT>::Core(const CoreConfig& cfg, trace::TraceView trace, LsqT& lsq,
                 mem::MemoryHierarchy& memory,
                 branch::HybridPredictor& predictor, branch::Btb& btb,
                 energy::DcacheLedger* dcache_ledger,
                 energy::DtlbLedger* dtlb_ledger, ObserverT* observer)
    : cfg_(cfg),
      trace_(trace),
      lsq_(lsq),
      mem_(memory),
      predictor_(predictor),
      btb_(btb),
      dcache_ledger_(dcache_ledger),
      dtlb_ledger_(dtlb_ledger),
      observer_(observer),
      rob_(cfg.rob_size),
      rename_(kNumArchRegs, kNoInst),
      completions_(detail::completion_wheel_span(cfg, memory)),
      int_alu_(cfg.n_int_alu),
      fp_alu_(cfg.n_fp_alu),
      int_muldiv_(cfg.n_int_muldiv),
      fp_muldiv_(cfg.n_fp_muldiv) {
  lsq_.set_present_bit_clearer(this);
  if (std::has_single_bit(static_cast<std::uint64_t>(cfg.rob_size))) {
    rob_mask_ = cfg.rob_size - 1;
  }
  fetch_queue_.reserve(cfg.fetch_queue);
  ready_int_.reserve(cfg.rob_size);
  ready_fp_.reserve(cfg.rob_size);
  ready_mem_.reserve(cfg.rob_size);
  unplaced_stores_.reserve(cfg.rob_size);
  ordering_waiting_loads_.reserve(cfg.rob_size);
  drain_scratch_.reserve(64);
  eligible_scratch_.reserve(64);
  waiter_scratch_.reserve(64);
  commit_waiter_scratch_.reserve(64);
  skipped_int_.reserve(64);
  skipped_fp_.reserve(64);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::clear_present_bit(std::uint32_t set, std::uint32_t way) {
  mem_.l1d().set_present_bit(set, way, false);
}

template <typename LsqT, typename ObserverT>
std::uint64_t Core<LsqT, ObserverT>::forwarded_value(const trace::MicroOp& load,
                                          const trace::MicroOp& store) const {
  const std::uint64_t shift = (load.mem_addr - store.mem_addr) * 8;
  return (store.value >> shift) & detail::value_mask(load.mem_size);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::schedule_completion(InstSeq seq, Cycle at) {
  completions_.schedule(cycle_, at, CompletionRef{seq, slot(seq).gen});
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::wake_dependents(InFlight& inst) {
  for (const DepRef& ref : inst.dependents) {
    const InstSeq d = ref.seq;
    // Stale tokens (squashed dependents — possibly re-dispatched under a
    // new gen after refetch) die here; squash never scrubs these lists.
    if (!ref_live(d, ref.gen)) continue;
    InFlight& dep = slot(d);
    if (static_cast<SrcRole>(ref.role) == SrcRole::kAgen) {
      assert(dep.wait_agen > 0);
      if (--dep.wait_agen == 0 && dep.in_iq) {
        (trace::is_fp(dep.op->op) ? ready_fp_ : ready_int_).push_back(ref_of(d));
      }
    } else {
      assert(dep.wait_data > 0);
      if (--dep.wait_data == 0) {
        dep.data_ready = true;
        if (dep.placed) {
          lsq_.on_store_data_ready(d);
          // Forward-waiting loads can now take the store's datum.
          if (!dep.fwd_waiters.empty()) {
            waiter_scratch_.assign(dep.fwd_waiters.begin(),
                                   dep.fwd_waiters.end());
            dep.fwd_waiters.clear();
            for (const SeqRef& l : waiter_scratch_) {
              if (ref_live(l.seq, l.gen)) try_schedule_load(l.seq);
            }
          }
          if (!dep.executing && !dep.completed) {
            dep.executing = true;
            schedule_completion(d, cycle_ + 1);
          }
        }
      }
    }
  }
  inst.dependents.clear();
}

template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::load_ordering_clear(InstSeq seq) const {
  return unplaced_stores_.empty() || unplaced_stores_.min() > seq;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::try_schedule_load(InstSeq seq) {
  if (!live(seq)) return;
  InFlight& f = slot(seq);
  if (!f.placed || !f.agen_done || f.completed || f.executing) return;
  if (!load_ordering_clear(seq)) {
    ordering_waiting_loads_.insert(seq);
    return;
  }
  ordering_waiting_loads_.erase(seq);

  const lsq::LoadPlan plan = lsq_.plan_load(seq);
  switch (plan.kind) {
    case lsq::LoadPlan::Kind::kCacheAccess:
      f.executing = true;
      ready_mem_.push_back(ref_of(seq));
      break;
    case lsq::LoadPlan::Kind::kForwardReady: {
      f.executing = true;
      ++res_.forwarded_loads;
      f.load_value = forwarded_value(*f.op, trace_[plan.store]);
      schedule_completion(seq, cycle_ + 1);
      break;
    }
    case lsq::LoadPlan::Kind::kForwardWait:
      slot(plan.store).fwd_waiters.push_back(ref_of(seq));
      break;
    case lsq::LoadPlan::Kind::kWaitCommit:
      ++res_.partial_forward_waits;
      slot(plan.store).commit_waiters.push_back(ref_of(seq));
      break;
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::on_store_placed(InstSeq seq) {
  InFlight& f = slot(seq);
  f.placed = true;
  unplaced_stores_.erase(seq);
  // Data that arrived before (or with) placement is written to the slot
  // now; this is the single point that informs the LSQ of store data.
  if (f.data_ready) {
    lsq_.on_store_data_ready(seq);
    if (!f.executing && !f.completed) {
      f.executing = true;
      schedule_completion(seq, cycle_ + 1);
    }
  }
  // readyBit sweep (paper §3.1): loads up to the next unknown-address
  // store become eligible.
  const InstSeq min_unplaced =
      unplaced_stores_.empty() ? kNoInst : unplaced_stores_.min();
  eligible_scratch_.clear();
  for (InstSeq l : ordering_waiting_loads_) {
    if (l >= min_unplaced) break;
    eligible_scratch_.push_back(l);
  }
  // The eligible loads are exactly the sorted prefix; drop them in one
  // compaction before rescheduling (try_schedule_load may re-insert a
  // load whose plan still blocks, so the erase must happen first).
  ordering_waiting_loads_.erase_prefix(eligible_scratch_.size());
  for (InstSeq l : eligible_scratch_) try_schedule_load(l);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::on_agen_complete(InstSeq seq) {
  InFlight& f = slot(seq);
  f.agen_done = true;
  assert(agens_outstanding_ > 0);
  --agens_outstanding_;
  const bool is_load = f.op->op == trace::OpClass::kLoad;
  lsq::MemOpDesc desc;
  desc.seq = seq;
  desc.addr = f.op->mem_addr;
  desc.size = f.op->mem_size;
  desc.is_load = is_load;
  // Store data is reported through on_store_data_ready after placement so
  // the datum write is charged exactly once (see on_store_placed).
  desc.data_ready = false;
  const lsq::Placement p = lsq_.on_address_ready(desc);
  switch (p.status) {
    case lsq::Placement::Status::kPlaced:
      f.placed = true;
      if (is_load) {
        try_schedule_load(seq);
      } else {
        on_store_placed(seq);
      }
      break;
    case lsq::Placement::Status::kBuffered:
      break;  // drain() will surface it
    case lsq::Placement::Status::kRejected:
      // The agen gate makes this unreachable; treat as a hard error so
      // configuration bugs surface loudly.
      throw std::logic_error("LSQ rejected a placement despite the agen gate");
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::handle_eviction(bool evicted, std::uint32_t set,
                                 bool had_present_bit) {
  if (evicted && had_present_bit) lsq_.on_cache_line_replaced(set);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::execute_load_access(InstSeq seq) {
  InFlight& f = slot(seq);
  // Re-plan: a store may have been placed between scheduling and issue.
  const lsq::LoadPlan plan = lsq_.plan_load(seq);
  if (plan.kind != lsq::LoadPlan::Kind::kCacheAccess) {
    f.executing = false;
    try_schedule_load(seq);
    return;
  }
  ++dcache_ports_used_;
  const Addr addr = f.op->mem_addr;
  const lsq::CacheHints hints = lsq_.cache_hints(seq);
  Cycle lat = 0;
  if (hints.translation_known) {
    ++res_.dtlb_cached;
    if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_cached_translation();
  }
  if (hints.way_known) {
    const auto k = mem_.data_access_known(hints.set, hints.way, addr);
    // The presentBit protocol guarantees residency; a violation is a bug.
    if (!k.ok) throw std::logic_error("presentBit protocol violation (load)");
    lat = k.latency;
    if (cfg_.exploit_known_line_latency && lat > 1) --lat;
    ++res_.dcache_way_known;
    if (dcache_ledger_ != nullptr) dcache_ledger_->on_way_known_access();
  } else {
    const mem::DataAccess a = hints.translation_known
                                  ? mem_.data_access_translated(addr)
                                  : mem_.data_access(addr);
    if (!hints.translation_known) {
      ++res_.dtlb_accesses;
      if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_access();
    }
    lat = a.latency;
    ++res_.dcache_full;
    if (dcache_ledger_ != nullptr) dcache_ledger_->on_full_access();
    lsq_.on_cache_access_complete(seq, a.set, a.way);
    if (lsq_.kind() == lsq::LsqKind::kSamie) {
      mem_.l1d().set_present_bit(a.set, a.way, true);
    }
    handle_eviction(a.evicted, a.evicted_set, a.evicted_present_bit);
  }
  f.load_value = memory_state_.read(addr, f.op->mem_size);
  ++res_.loads_executed;
  schedule_completion(seq, cycle_ + lat);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::complete(InstSeq seq) {
  InFlight& f = slot(seq);
  assert(!f.completed);
  f.completed = true;
  f.executing = false;
  if (f.op->op == trace::OpClass::kLoad) {
    if (f.load_value != f.op->value) ++res_.value_mismatches;
    lsq_.on_load_complete(seq);
  }
  wake_dependents(f);
  if (f.op->op == trace::OpClass::kBranch && f.mispredicted) {
    ++res_.mispredict_squashes;
    squash_after(seq);
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::writeback_stage() {
  completions_.pop_due(cycle_, [this](const CompletionRef& c) {
    InFlight& f = slot(c.seq);
    // Stale events (squashed instruction, flushed pipeline, re-dispatched
    // slot) fail the (seq, gen) token match and are dropped here — the
    // squash paths never walk the wheel.
    if (f.seq != c.seq || f.gen != c.gen) return;
    if (trace::is_mem(f.op->op) && !f.agen_done) {
      on_agen_complete(c.seq);
    } else if (!f.completed) {
      complete(c.seq);
    }
  });
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::memory_stage() {
  drain_scratch_.clear();
  lsq_.drain(drain_scratch_);
  for (InstSeq seq : drain_scratch_) {
    if (!live(seq)) continue;
    InFlight& f = slot(seq);
    f.placed = true;
    if (f.op->op == trace::OpClass::kLoad) {
      try_schedule_load(seq);
    } else {
      on_store_placed(seq);
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::issue_stage() {
  // Loads cleared for memory access contend for the remaining cache ports.
  while (!ready_mem_.empty()) {
    if (dcache_ports_used_ >= cfg_.dcache_ports) break;
    const SeqRef ref = ready_mem_.front();
    ready_mem_.pop_front();
    if (!ref_live(ref.seq, ref.gen)) continue;  // squash-stale token
    InFlight& f = slot(ref.seq);
    if (f.completed || !f.executing) continue;
    execute_load_access(ref.seq);
  }

  // INT side: agen, integer compute, branches.
  std::uint32_t issued = 0;
  skipped_int_.clear();
  while (!ready_int_.empty() && issued < cfg_.issue_width_int) {
    const SeqRef ref = ready_int_.front();
    const InstSeq seq = ref.seq;
    ready_int_.pop_front();
    if (!ref_live(seq, ref.gen)) continue;  // squash-stale token
    InFlight& f = slot(seq);
    if (!f.in_iq || f.wait_agen > 0) continue;
    const trace::OpClass op = f.op->op;
    bool ok = false;
    Cycle latency = cfg_.lat_int_alu;
    if (trace::is_mem(op)) {
      if (agens_outstanding_ >= lsq_.placement_headroom()) {
        ++res_.agen_gated;
        skipped_int_.push_back(ref);
        continue;
      }
      ok = int_alu_.try_issue();
      if (ok) {
        f.agen_issued = true;
        ++agens_outstanding_;
      }
    } else if (op == trace::OpClass::kIntMul) {
      ok = int_muldiv_.try_issue(cycle_, 1);
      latency = cfg_.lat_int_mul;
    } else if (op == trace::OpClass::kIntDiv) {
      ok = int_muldiv_.try_issue(cycle_, cfg_.lat_int_div);
      latency = cfg_.lat_int_div;
    } else {
      ok = int_alu_.try_issue();
    }
    if (!ok) {
      skipped_int_.push_back(ref);
      continue;
    }
    f.in_iq = false;
    assert(iq_int_used_ > 0);
    --iq_int_used_;
    ++issued;
    schedule_completion(seq, cycle_ + latency);
  }
  for (auto it = skipped_int_.rbegin(); it != skipped_int_.rend(); ++it) {
    ready_int_.push_front(*it);
  }

  // FP side.
  issued = 0;
  skipped_fp_.clear();
  while (!ready_fp_.empty() && issued < cfg_.issue_width_fp) {
    const SeqRef ref = ready_fp_.front();
    const InstSeq seq = ref.seq;
    ready_fp_.pop_front();
    if (!ref_live(seq, ref.gen)) continue;  // squash-stale token
    InFlight& f = slot(seq);
    if (!f.in_iq || f.wait_agen > 0) continue;
    const trace::OpClass op = f.op->op;
    bool ok = false;
    Cycle latency = cfg_.lat_fp_alu;
    if (op == trace::OpClass::kFpMul) {
      ok = fp_muldiv_.try_issue(cycle_, 1);
      latency = cfg_.lat_fp_mul;
    } else if (op == trace::OpClass::kFpDiv) {
      ok = fp_muldiv_.try_issue(cycle_, cfg_.lat_fp_div);
      latency = cfg_.lat_fp_div;
    } else {
      ok = fp_alu_.try_issue();
    }
    if (!ok) {
      skipped_fp_.push_back(ref);
      continue;
    }
    f.in_iq = false;
    assert(iq_fp_used_ > 0);
    --iq_fp_used_;
    ++issued;
    schedule_completion(seq, cycle_ + latency);
  }
  for (auto it = skipped_fp_.rbegin(); it != skipped_fp_.rend(); ++it) {
    ready_fp_.push_front(*it);
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::dispatch_stage() {
  for (std::uint32_t n = 0; n < cfg_.dispatch_width && !fetch_queue_.empty(); ++n) {
    // Head-of-queue resource checks: the same predicate the quiescence
    // ledger consults (in-order dispatch: a blocked head blocks all).
    if (dispatch_blocked()) break;
    const Fetched fr = fetch_queue_.front();
    const trace::MicroOp& op = trace_[fr.seq];
    const bool fp = trace::is_fp(op.op);
    const bool mem_op = trace::is_mem(op.op);

    fetch_queue_.pop_front();
    const InstSeq seq = fr.seq;
    assert(seq == tail_);
    InFlight& f = slot(seq);
    f.seq = seq;
    ++f.gen;  // new incarnation: completion events of prior occupants die
    f.op = &op;
    f.wait_agen = 0;
    f.wait_data = 0;
    f.in_iq = true;
    f.agen_issued = false;
    f.agen_done = false;
    f.placed = false;
    f.data_ready = false;
    f.executing = false;
    f.completed = false;
    f.mispredicted = fr.mispredicted;
    f.load_value = 0;
    f.prev_rename = kNoInst;
    f.dependents.clear();
    f.fwd_waiters.clear();
    f.commit_waiters.clear();
    tail_ = seq + 1;

    auto add_dep = [&](RegId src, SrcRole role) {
      if (src == kNoReg) return;
      const InstSeq p = rename_[src];
      if (p != kNoInst && live(p) && !slot(p).completed) {
        slot(p).dependents.push_back(
            DepRef{seq, f.gen, static_cast<std::uint8_t>(role)});
        if (role == SrcRole::kAgen) {
          ++f.wait_agen;
        } else {
          ++f.wait_data;
        }
      }
    };

    if (op.op == trace::OpClass::kStore) {
      add_dep(op.src1, SrcRole::kAgen);   // address base
      add_dep(op.src2, SrcRole::kData);   // store data
    } else {
      add_dep(op.src1, SrcRole::kAgen);
      add_dep(op.src2, SrcRole::kAgen);
    }

    if (op.dst != kNoReg) {
      (is_fp_reg(op.dst) ? fp_regs_used_ : int_regs_used_)++;
      f.prev_rename = rename_[op.dst];  // checkpoint for O(squashed) undo
      rename_[op.dst] = seq;
    }

    if (mem_op) {
      lsq_.on_dispatch(seq, op.op == trace::OpClass::kLoad);
      if (op.op == trace::OpClass::kStore) {
        unplaced_stores_.insert(seq);
        f.data_ready = f.wait_data == 0;
      }
    }

    (fp ? iq_fp_used_ : iq_int_used_)++;
    if (f.wait_agen == 0) {
      (fp ? ready_fp_ : ready_int_).push_back(SeqRef{seq, f.gen});
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::fetch_stage() {
  if (cycle_ < fetch_stall_until_) return;
  for (std::uint32_t n = 0; n < cfg_.fetch_width; ++n) {
    if (fetch_queue_.size() >= cfg_.fetch_queue) break;
    if (fetch_seq_ >= trace_.size()) break;
    const trace::MicroOp& op = trace_[fetch_seq_];

    const Addr line = op.pc >> 5U;
    if (line != last_fetch_line_) {
      const Cycle lat = mem_.inst_access(op.pc);
      last_fetch_line_ = line;
      if (lat > mem_.l1i().hit_latency()) {
        fetch_stall_until_ = cycle_ + lat;
        break;
      }
    }

    Fetched fr;
    fr.seq = fetch_seq_;
    if (op.op == trace::OpClass::kBranch) {
      const bool pred = predictor_.predict_and_update(op.pc, op.taken);
      const branch::Btb::Result target = btb_.lookup(op.pc);
      if (op.taken) btb_.update(op.pc, op.br_target);
      fr.mispredicted = (pred != op.taken) || (pred && op.taken && !target.hit);
      fetch_queue_.push_back(fr);
      ++fetch_seq_;
      if (pred) break;  // a predicted-taken branch ends the fetch group
    } else {
      fetch_queue_.push_back(fr);
      ++fetch_seq_;
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::squash_after(InstSeq last_kept) {
  const InstSeq first_bad = last_kept + 1;
  if (first_bad >= tail_) {
    // Nothing younger in flight; still redirect fetch.
    fetch_queue_.clear();
    fetch_seq_ = first_bad;
    fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
    last_fetch_line_ = ~0ULL;
    return;
  }
  lsq_.squash_from(first_bad);
  // One reverse walk over the *squashed range only*. Walking youngest to
  // oldest replays the rename checkpoints in undo order, so the table
  // lands exactly on its state at first_bad's dispatch. (A restored
  // value may name a committed producer — benign, every consumer filters
  // through live().) Nothing else is walked: ready queues, surviving
  // dependent/waiter lists and the wheel all hold (seq, gen) tokens that
  // go stale right here, when the slots clear, and are dropped at pop.
  for (InstSeq s = tail_; s-- > first_bad;) {
    InFlight& f = slot(s);
    assert(f.seq == s);
    if (f.agen_issued && !f.agen_done) {
      assert(agens_outstanding_ > 0);
      --agens_outstanding_;
    }
    if (f.op->dst != kNoReg) {
      auto& used = is_fp_reg(f.op->dst) ? fp_regs_used_ : int_regs_used_;
      assert(used > 0);
      --used;
      rename_[f.op->dst] = f.prev_rename;
    }
    if (f.in_iq) {
      auto& used = trace::is_fp(f.op->op) ? iq_fp_used_ : iq_int_used_;
      assert(used > 0);
      --used;
    }
    f.seq = kNoInst;
    f.dependents.clear();
    f.fwd_waiters.clear();
    f.commit_waiters.clear();
  }
  tail_ = first_bad;

  // The ordering sets are consulted by value (min()), so they must be
  // exact — but they are sorted, so the squash is an O(log n) truncation.
  unplaced_stores_.erase_from(first_bad);
  ordering_waiting_loads_.erase_from(first_bad);

  fetch_queue_.clear();
  fetch_seq_ = first_bad;
  fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
  last_fetch_line_ = ~0ULL;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::full_flush() {
  ++res_.deadlock_flushes;
  lsq_.squash_from(head_);
  // The flush squashes *everything* in flight, so the same reverse
  // checkpoint replay used by squash_after restores the rename table in
  // O(squashed) — the former O(arch-regs + ROB) "clear and refetch from
  // head_" rebuild is gone. After undoing every in-flight dispatch the
  // table holds only pre-head_ producers, all committed, all filtered by
  // live(): semantically the empty table.
  for (InstSeq s = tail_; s-- > head_;) {
    InFlight& f = slot(s);
    assert(f.seq == s);
    if (f.op->dst != kNoReg) rename_[f.op->dst] = f.prev_rename;
    f.seq = kNoInst;
    f.dependents.clear();
    f.fwd_waiters.clear();
    f.commit_waiters.clear();
  }
  tail_ = head_;
  int_regs_used_ = 0;
  fp_regs_used_ = 0;
  iq_int_used_ = 0;
  iq_fp_used_ = 0;
  unplaced_stores_.clear();
  ordering_waiting_loads_.clear();
  ready_int_.clear();
  ready_fp_.clear();
  ready_mem_.clear();
  // completions_ keeps its (now token-stale) events; see squash_after.
  int_muldiv_.reset();
  fp_muldiv_.reset();
  agens_outstanding_ = 0;
  fetch_queue_.clear();
  fetch_seq_ = head_;
  fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
  last_fetch_line_ = ~0ULL;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::commit_stage() {
  for (std::uint32_t n = 0; n < cfg_.commit_width && head_ < tail_; ++n) {
    InFlight& h = slot(head_);
    assert(h.seq == head_);
    if (!h.completed) {
      // Deadlock avoidance (paper §3.3): the oldest instruction cannot be
      // placed — either its address is computed and every candidate slot
      // is held by younger instructions, or its address computation is
      // gated by a full AddrBuffer. Flush the pipeline; the oldest
      // instruction re-enters first and is guaranteed a slot.
      if (deadlock_flush_pending(h)) full_flush();
      break;
    }

    if (h.op->op == trace::OpClass::kStore) {
      if (dcache_ports_used_ >= cfg_.dcache_ports) break;
      ++dcache_ports_used_;
      const Addr addr = h.op->mem_addr;
      const lsq::CacheHints hints = lsq_.cache_hints(head_);
      if (hints.translation_known) {
        ++res_.dtlb_cached;
        if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_cached_translation();
      }
      if (hints.way_known) {
        const auto k = mem_.data_access_known(hints.set, hints.way, addr);
        if (!k.ok) throw std::logic_error("presentBit protocol violation (store)");
        ++res_.dcache_way_known;
        if (dcache_ledger_ != nullptr) dcache_ledger_->on_way_known_access();
      } else {
        const mem::DataAccess a = hints.translation_known
                                      ? mem_.data_access_translated(addr)
                                      : mem_.data_access(addr);
        if (!hints.translation_known) {
          ++res_.dtlb_accesses;
          if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_access();
        }
        ++res_.dcache_full;
        if (dcache_ledger_ != nullptr) dcache_ledger_->on_full_access();
        lsq_.on_cache_access_complete(head_, a.set, a.way);
        if (lsq_.kind() == lsq::LsqKind::kSamie) {
          mem_.l1d().set_present_bit(a.set, a.way, true);
        }
        handle_eviction(a.evicted, a.evicted_set, a.evicted_present_bit);
      }
      memory_state_.write(addr, h.op->mem_size, h.op->value);
      ++res_.stores_committed;
      if (!h.commit_waiters.empty()) {
        commit_waiter_scratch_.assign(h.commit_waiters.begin(),
                                      h.commit_waiters.end());
        h.commit_waiters.clear();
        lsq_.on_commit(head_);
        for (const SeqRef& l : commit_waiter_scratch_) {
          if (ref_live(l.seq, l.gen)) try_schedule_load(l.seq);
        }
      } else {
        lsq_.on_commit(head_);
      }
    } else if (h.op->op == trace::OpClass::kLoad) {
      lsq_.on_commit(head_);
    }

    if (h.op->dst != kNoReg) {
      auto& used = is_fp_reg(h.op->dst) ? fp_regs_used_ : int_regs_used_;
      assert(used > 0);
      --used;
      if (rename_[h.op->dst] == head_) rename_[h.op->dst] = kNoInst;
    }
    h.seq = kNoInst;
    ++res_.committed;
    ++head_;
    last_commit_cycle_ = cycle_;
  }
}

// Quiescence ledger: proves no stage can change architectural state at
// cycle_ — and, because every clause below depends only on state that
// stages themselves mutate, at any later cycle until a wake source
// (calendar-wheel event, fetch re-enable, hierarchy completion,
// watchdog) fires. Stage by stage:
//   commit    — the head is not completed and the §3.3 deadlock-flush
//               predicate is false; both change only via writeback.
//   writeback — no event is due before the wheel's next_event_cycle
//               (the jump target), and stale events popping is a no-op.
//   memory    — drain() is provably a no-op (lsq has_pending_work hook;
//               SAMIE reports work whenever the AddrBuffer is non-empty
//               because failed retries still charge energy).
//   issue     — the ready ledgers are empty. A non-empty ledger is never
//               skippable: gated agens count agen_gated per cycle, and
//               FU-blocked entries re-arbitrate. (A *busy* FU alone
//               never blocks skipping — its operation's completion is
//               already on the wheel; see OccupyingPool's hooks.)
//   dispatch  — the fetch queue is empty or its head fails the same
//               resource checks dispatch_stage would apply.
//   fetch     — stalled (wake at fetch_stall_until_), the queue is full,
//               or the trace is exhausted.
template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::quiescent() const {
  if (head_ != tail_) {
    const InFlight& h = rob_[rob_index(head_)];
    if (h.completed) return false;  // commit would retire it
    if (deadlock_flush_pending(h)) return false;  // full_flush would fire
  }
  if (!ready_int_.empty() || !ready_fp_.empty() || !ready_mem_.empty()) {
    return false;
  }
  if (lsq_has_pending_work()) return false;
  if (!fetch_queue_.empty() && !dispatch_blocked()) return false;
  const bool fetch_able = fetch_queue_.size() < cfg_.fetch_queue &&
                          fetch_seq_ < trace_.size();
  if (fetch_able && cycle_ >= fetch_stall_until_) return false;
  return true;
}

template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::dispatch_blocked() const {
  const Fetched& fr = fetch_queue_.front();
  const trace::MicroOp& op = trace_[fr.seq];
  const bool fp = trace::is_fp(op.op);
  if (tail_ - head_ >= cfg_.rob_size) return true;
  if (fp ? iq_fp_used_ >= cfg_.iq_fp : iq_int_used_ >= cfg_.iq_int) return true;
  if (op.dst != kNoReg && (is_fp_reg(op.dst) ? fp_regs_used_ >= cfg_.fp_regs
                                             : int_regs_used_ >= cfg_.int_regs)) {
    return true;
  }
  return trace::is_mem(op.op) &&
         !lsq_.can_dispatch(op.op == trace::OpClass::kLoad);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::try_fast_forward() {
  if (!quiescent()) return;
  // Wake sources. The fetch stall participates only when fetch could act
  // once it lifts; the hierarchy hook is constant kNeverCycle for the
  // synchronous model but keeps async models honest (see hierarchy.h).
  Cycle wake = completions_.next_event_cycle(cycle_);
  wake = std::min(wake, mem_.pending_completion_cycle());
  if (fetch_queue_.size() < cfg_.fetch_queue && fetch_seq_ < trace_.size()) {
    wake = std::min(wake, fetch_stall_until_);
  }
  // Clamp to the cycle the watchdog would fire at: if no wake source
  // exists before it, the always-step loop would have spun there and
  // thrown — jump to the same cycle and let run() throw identically.
  wake = std::min(wake, last_commit_cycle_ + cfg_.commit_timeout + 1);
  if (wake <= cycle_) return;

  const std::uint64_t span = wake - cycle_;
  // The skipped cycles are observable only through the per-cycle
  // occupancy hook; nothing ran, so the sample is constant over the span
  // and the run-length observer folds it in one call, bit-identically.
  if (observer_ != nullptr) observer_->on_cycles(cycle_, span, lsq_.occupancy());
  res_.quiescent_cycles_skipped += span;
  ++res_.fast_forwards;
  cycle_ = wake;
}

template <typename LsqT, typename ObserverT>
CoreResult Core<LsqT, ObserverT>::run(std::uint64_t max_insts) {
  const std::uint64_t target = std::min<std::uint64_t>(max_insts, trace_.size());
  last_commit_cycle_ = 0;
  while (res_.committed < target) {
    dcache_ports_used_ = 0;
    int_alu_.new_cycle();
    fp_alu_.new_cycle();

    commit_stage();
    if (res_.committed >= target) break;
    writeback_stage();
    memory_stage();
    issue_stage();
    dispatch_stage();
    fetch_stage();

    if (observer_ != nullptr) observer_->on_cycle(cycle_, lsq_.occupancy());

    ++cycle_;
    // Trace exhausted. Checked before the fast-forward so a quiescent,
    // finished machine breaks instead of jumping at stale wheel events —
    // and it cannot mask a wedge: this holds within commit_width cycles
    // of the final commit, 200k cycles before the watchdog could.
    if (head_ == tail_ && fetch_queue_.empty() && fetch_seq_ >= trace_.size()) {
      break;
    }
    if (!cfg_.always_step) try_fast_forward();
    // Watchdog, both engine modes: a fast-forward is clamped at this
    // horizon, so a wedged pipeline throws at the same cycle with the
    // same message whether the loop stepped or jumped there.
    if (cycle_ - last_commit_cycle_ > cfg_.commit_timeout) {
      throw std::runtime_error("commit watchdog fired: pipeline wedged at cycle " +
                               std::to_string(cycle_));
    }
  }
  res_.cycles = cycle_;
  res_.ipc = cycle_ > 0 ? static_cast<double>(res_.committed) /
                              static_cast<double>(cycle_)
                        : 0.0;
  return res_;
}

}  // namespace samie::core
