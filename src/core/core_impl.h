// Template member definitions for core::Core<LsqT> (included by core.h).
// Keep this file free of non-template code; shared helpers live in the
// anonymous-namespace-free `detail` namespace so every instantiation
// (type-erased and devirtualized) compiles from one source of truth.
#pragma once

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace samie::core {

namespace detail {

[[nodiscard]] constexpr std::uint64_t encode_dep(InstSeq seq,
                                                 std::uint8_t role) noexcept {
  return (seq << 1U) | role;
}

[[nodiscard]] constexpr std::uint64_t value_mask(std::uint32_t bytes) noexcept {
  return bytes >= 8 ? ~0ULL : ((1ULL << (8 * bytes)) - 1);
}

/// Calendar-wheel span sizing rule: one power of two above the largest
/// latency any completion can be scheduled with — the worst-case data
/// access (TLB walk + L1D + L2 + memory fill) or the slowest functional
/// unit — so steady-state scheduling never touches the overflow list.
[[nodiscard]] inline std::size_t completion_wheel_span(
    const CoreConfig& cfg, const mem::MemoryHierarchy& memory) {
  Cycle worst = memory.worst_case_data_latency();
  for (const Cycle lat : {cfg.lat_int_alu, cfg.lat_int_mul, cfg.lat_int_div,
                          cfg.lat_fp_alu, cfg.lat_fp_mul, cfg.lat_fp_div}) {
    worst = std::max(worst, lat);
  }
  return static_cast<std::size_t>(std::bit_ceil(worst + 2));
}

}  // namespace detail

template <typename LsqT, typename ObserverT>
Core<LsqT, ObserverT>::Core(const CoreConfig& cfg, trace::TraceView trace, LsqT& lsq,
                 mem::MemoryHierarchy& memory,
                 branch::HybridPredictor& predictor, branch::Btb& btb,
                 energy::DcacheLedger* dcache_ledger,
                 energy::DtlbLedger* dtlb_ledger, ObserverT* observer)
    : cfg_(cfg),
      trace_(trace),
      lsq_(lsq),
      mem_(memory),
      predictor_(predictor),
      btb_(btb),
      dcache_ledger_(dcache_ledger),
      dtlb_ledger_(dtlb_ledger),
      observer_(observer),
      rob_(cfg.rob_size),
      rename_(kNumArchRegs, kNoInst),
      completions_(detail::completion_wheel_span(cfg, memory)),
      int_alu_(cfg.n_int_alu),
      fp_alu_(cfg.n_fp_alu),
      int_muldiv_(cfg.n_int_muldiv),
      fp_muldiv_(cfg.n_fp_muldiv) {
  lsq_.set_present_bit_clearer(this);
  if (std::has_single_bit(static_cast<std::uint64_t>(cfg.rob_size))) {
    rob_mask_ = cfg.rob_size - 1;
  }
  fetch_queue_.reserve(cfg.fetch_queue);
  ready_int_.reserve(cfg.rob_size);
  ready_fp_.reserve(cfg.rob_size);
  ready_mem_.reserve(cfg.rob_size);
  unplaced_stores_.reserve(cfg.rob_size);
  ordering_waiting_loads_.reserve(cfg.rob_size);
  drain_scratch_.reserve(64);
  eligible_scratch_.reserve(64);
  waiter_scratch_.reserve(64);
  commit_waiter_scratch_.reserve(64);
  skipped_int_.reserve(64);
  skipped_fp_.reserve(64);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::clear_present_bit(std::uint32_t set, std::uint32_t way) {
  mem_.l1d().set_present_bit(set, way, false);
}

template <typename LsqT, typename ObserverT>
std::uint64_t Core<LsqT, ObserverT>::forwarded_value(const trace::MicroOp& load,
                                          const trace::MicroOp& store) const {
  const std::uint64_t shift = (load.mem_addr - store.mem_addr) * 8;
  return (store.value >> shift) & detail::value_mask(load.mem_size);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::schedule_completion(InstSeq seq, Cycle at) {
  completions_.schedule(cycle_, at, CompletionRef{seq, slot(seq).gen});
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::wake_dependents(InFlight& inst) {
  for (std::uint64_t enc : inst.dependents) {
    const InstSeq d = enc >> 1U;
    const auto role = static_cast<SrcRole>(enc & 1U);
    if (!live(d)) continue;
    InFlight& dep = slot(d);
    if (role == SrcRole::kAgen) {
      assert(dep.wait_agen > 0);
      if (--dep.wait_agen == 0 && dep.in_iq) {
        (trace::is_fp(dep.op->op) ? ready_fp_ : ready_int_).push_back(d);
      }
    } else {
      assert(dep.wait_data > 0);
      if (--dep.wait_data == 0) {
        dep.data_ready = true;
        if (dep.placed) {
          lsq_.on_store_data_ready(d);
          // Forward-waiting loads can now take the store's datum.
          if (!dep.fwd_waiters.empty()) {
            waiter_scratch_.assign(dep.fwd_waiters.begin(),
                                   dep.fwd_waiters.end());
            dep.fwd_waiters.clear();
            for (InstSeq l : waiter_scratch_) try_schedule_load(l);
          }
          if (!dep.executing && !dep.completed) {
            dep.executing = true;
            schedule_completion(d, cycle_ + 1);
          }
        }
      }
    }
  }
  inst.dependents.clear();
}

template <typename LsqT, typename ObserverT>
bool Core<LsqT, ObserverT>::load_ordering_clear(InstSeq seq) const {
  return unplaced_stores_.empty() || unplaced_stores_.min() > seq;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::try_schedule_load(InstSeq seq) {
  if (!live(seq)) return;
  InFlight& f = slot(seq);
  if (!f.placed || !f.agen_done || f.completed || f.executing) return;
  if (!load_ordering_clear(seq)) {
    ordering_waiting_loads_.insert(seq);
    return;
  }
  ordering_waiting_loads_.erase(seq);

  const lsq::LoadPlan plan = lsq_.plan_load(seq);
  switch (plan.kind) {
    case lsq::LoadPlan::Kind::kCacheAccess:
      f.executing = true;
      ready_mem_.push_back(seq);
      break;
    case lsq::LoadPlan::Kind::kForwardReady: {
      f.executing = true;
      ++res_.forwarded_loads;
      f.load_value = forwarded_value(*f.op, trace_[plan.store]);
      schedule_completion(seq, cycle_ + 1);
      break;
    }
    case lsq::LoadPlan::Kind::kForwardWait:
      slot(plan.store).fwd_waiters.push_back(seq);
      break;
    case lsq::LoadPlan::Kind::kWaitCommit:
      ++res_.partial_forward_waits;
      slot(plan.store).commit_waiters.push_back(seq);
      break;
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::on_store_placed(InstSeq seq) {
  InFlight& f = slot(seq);
  f.placed = true;
  unplaced_stores_.erase(seq);
  // Data that arrived before (or with) placement is written to the slot
  // now; this is the single point that informs the LSQ of store data.
  if (f.data_ready) {
    lsq_.on_store_data_ready(seq);
    if (!f.executing && !f.completed) {
      f.executing = true;
      schedule_completion(seq, cycle_ + 1);
    }
  }
  // readyBit sweep (paper §3.1): loads up to the next unknown-address
  // store become eligible.
  const InstSeq min_unplaced =
      unplaced_stores_.empty() ? kNoInst : unplaced_stores_.min();
  eligible_scratch_.clear();
  for (InstSeq l : ordering_waiting_loads_) {
    if (l >= min_unplaced) break;
    eligible_scratch_.push_back(l);
  }
  // The eligible loads are exactly the sorted prefix; drop them in one
  // compaction before rescheduling (try_schedule_load may re-insert a
  // load whose plan still blocks, so the erase must happen first).
  ordering_waiting_loads_.erase_prefix(eligible_scratch_.size());
  for (InstSeq l : eligible_scratch_) try_schedule_load(l);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::on_agen_complete(InstSeq seq) {
  InFlight& f = slot(seq);
  f.agen_done = true;
  assert(agens_outstanding_ > 0);
  --agens_outstanding_;
  const bool is_load = f.op->op == trace::OpClass::kLoad;
  lsq::MemOpDesc desc;
  desc.seq = seq;
  desc.addr = f.op->mem_addr;
  desc.size = f.op->mem_size;
  desc.is_load = is_load;
  // Store data is reported through on_store_data_ready after placement so
  // the datum write is charged exactly once (see on_store_placed).
  desc.data_ready = false;
  const lsq::Placement p = lsq_.on_address_ready(desc);
  switch (p.status) {
    case lsq::Placement::Status::kPlaced:
      f.placed = true;
      if (is_load) {
        try_schedule_load(seq);
      } else {
        on_store_placed(seq);
      }
      break;
    case lsq::Placement::Status::kBuffered:
      break;  // drain() will surface it
    case lsq::Placement::Status::kRejected:
      // The agen gate makes this unreachable; treat as a hard error so
      // configuration bugs surface loudly.
      throw std::logic_error("LSQ rejected a placement despite the agen gate");
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::handle_eviction(bool evicted, std::uint32_t set,
                                 bool had_present_bit) {
  if (evicted && had_present_bit) lsq_.on_cache_line_replaced(set);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::execute_load_access(InstSeq seq) {
  InFlight& f = slot(seq);
  // Re-plan: a store may have been placed between scheduling and issue.
  const lsq::LoadPlan plan = lsq_.plan_load(seq);
  if (plan.kind != lsq::LoadPlan::Kind::kCacheAccess) {
    f.executing = false;
    try_schedule_load(seq);
    return;
  }
  ++dcache_ports_used_;
  const Addr addr = f.op->mem_addr;
  const lsq::CacheHints hints = lsq_.cache_hints(seq);
  Cycle lat = 0;
  if (hints.translation_known) {
    ++res_.dtlb_cached;
    if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_cached_translation();
  }
  if (hints.way_known) {
    const auto k = mem_.data_access_known(hints.set, hints.way, addr);
    // The presentBit protocol guarantees residency; a violation is a bug.
    if (!k.ok) throw std::logic_error("presentBit protocol violation (load)");
    lat = k.latency;
    if (cfg_.exploit_known_line_latency && lat > 1) --lat;
    ++res_.dcache_way_known;
    if (dcache_ledger_ != nullptr) dcache_ledger_->on_way_known_access();
  } else {
    const mem::DataAccess a = hints.translation_known
                                  ? mem_.data_access_translated(addr)
                                  : mem_.data_access(addr);
    if (!hints.translation_known) {
      ++res_.dtlb_accesses;
      if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_access();
    }
    lat = a.latency;
    ++res_.dcache_full;
    if (dcache_ledger_ != nullptr) dcache_ledger_->on_full_access();
    lsq_.on_cache_access_complete(seq, a.set, a.way);
    if (lsq_.kind() == lsq::LsqKind::kSamie) {
      mem_.l1d().set_present_bit(a.set, a.way, true);
    }
    handle_eviction(a.evicted, a.evicted_set, a.evicted_present_bit);
  }
  f.load_value = memory_state_.read(addr, f.op->mem_size);
  ++res_.loads_executed;
  schedule_completion(seq, cycle_ + lat);
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::complete(InstSeq seq) {
  InFlight& f = slot(seq);
  assert(!f.completed);
  f.completed = true;
  f.executing = false;
  if (f.op->op == trace::OpClass::kLoad) {
    if (f.load_value != f.op->value) ++res_.value_mismatches;
    lsq_.on_load_complete(seq);
  }
  wake_dependents(f);
  if (f.op->op == trace::OpClass::kBranch && f.mispredicted) {
    ++res_.mispredict_squashes;
    squash_after(seq);
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::writeback_stage() {
  completions_.pop_due(cycle_, [this](const CompletionRef& c) {
    InFlight& f = slot(c.seq);
    // Stale events (squashed instruction, flushed pipeline, re-dispatched
    // slot) fail the (seq, gen) token match and are dropped here — the
    // squash paths never walk the wheel.
    if (f.seq != c.seq || f.gen != c.gen) return;
    if (trace::is_mem(f.op->op) && !f.agen_done) {
      on_agen_complete(c.seq);
    } else if (!f.completed) {
      complete(c.seq);
    }
  });
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::memory_stage() {
  drain_scratch_.clear();
  lsq_.drain(drain_scratch_);
  for (InstSeq seq : drain_scratch_) {
    if (!live(seq)) continue;
    InFlight& f = slot(seq);
    f.placed = true;
    if (f.op->op == trace::OpClass::kLoad) {
      try_schedule_load(seq);
    } else {
      on_store_placed(seq);
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::issue_stage() {
  // Loads cleared for memory access contend for the remaining cache ports.
  while (!ready_mem_.empty()) {
    if (dcache_ports_used_ >= cfg_.dcache_ports) break;
    const InstSeq seq = ready_mem_.front();
    ready_mem_.pop_front();
    if (!live(seq)) continue;
    InFlight& f = slot(seq);
    if (f.completed || !f.executing) continue;
    execute_load_access(seq);
  }

  // INT side: agen, integer compute, branches.
  std::uint32_t issued = 0;
  skipped_int_.clear();
  while (!ready_int_.empty() && issued < cfg_.issue_width_int) {
    const InstSeq seq = ready_int_.front();
    ready_int_.pop_front();
    if (!live(seq)) continue;
    InFlight& f = slot(seq);
    if (!f.in_iq || f.wait_agen > 0) continue;
    const trace::OpClass op = f.op->op;
    bool ok = false;
    Cycle latency = cfg_.lat_int_alu;
    if (trace::is_mem(op)) {
      if (agens_outstanding_ >= lsq_.placement_headroom()) {
        ++res_.agen_gated;
        skipped_int_.push_back(seq);
        continue;
      }
      ok = int_alu_.try_issue();
      if (ok) {
        f.agen_issued = true;
        ++agens_outstanding_;
      }
    } else if (op == trace::OpClass::kIntMul) {
      ok = int_muldiv_.try_issue(cycle_, 1);
      latency = cfg_.lat_int_mul;
    } else if (op == trace::OpClass::kIntDiv) {
      ok = int_muldiv_.try_issue(cycle_, cfg_.lat_int_div);
      latency = cfg_.lat_int_div;
    } else {
      ok = int_alu_.try_issue();
    }
    if (!ok) {
      skipped_int_.push_back(seq);
      continue;
    }
    f.in_iq = false;
    assert(iq_int_used_ > 0);
    --iq_int_used_;
    ++issued;
    schedule_completion(seq, cycle_ + latency);
  }
  for (auto it = skipped_int_.rbegin(); it != skipped_int_.rend(); ++it) {
    ready_int_.push_front(*it);
  }

  // FP side.
  issued = 0;
  skipped_fp_.clear();
  while (!ready_fp_.empty() && issued < cfg_.issue_width_fp) {
    const InstSeq seq = ready_fp_.front();
    ready_fp_.pop_front();
    if (!live(seq)) continue;
    InFlight& f = slot(seq);
    if (!f.in_iq || f.wait_agen > 0) continue;
    const trace::OpClass op = f.op->op;
    bool ok = false;
    Cycle latency = cfg_.lat_fp_alu;
    if (op == trace::OpClass::kFpMul) {
      ok = fp_muldiv_.try_issue(cycle_, 1);
      latency = cfg_.lat_fp_mul;
    } else if (op == trace::OpClass::kFpDiv) {
      ok = fp_muldiv_.try_issue(cycle_, cfg_.lat_fp_div);
      latency = cfg_.lat_fp_div;
    } else {
      ok = fp_alu_.try_issue();
    }
    if (!ok) {
      skipped_fp_.push_back(seq);
      continue;
    }
    f.in_iq = false;
    assert(iq_fp_used_ > 0);
    --iq_fp_used_;
    ++issued;
    schedule_completion(seq, cycle_ + latency);
  }
  for (auto it = skipped_fp_.rbegin(); it != skipped_fp_.rend(); ++it) {
    ready_fp_.push_front(*it);
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::dispatch_stage() {
  for (std::uint32_t n = 0; n < cfg_.dispatch_width && !fetch_queue_.empty(); ++n) {
    const Fetched fr = fetch_queue_.front();
    const trace::MicroOp& op = trace_[fr.seq];
    const bool fp = trace::is_fp(op.op);
    const bool mem_op = trace::is_mem(op.op);

    if (tail_ - head_ >= cfg_.rob_size) break;
    if (fp ? iq_fp_used_ >= cfg_.iq_fp : iq_int_used_ >= cfg_.iq_int) break;
    if (op.dst != kNoReg) {
      if (is_fp_reg(op.dst) ? fp_regs_used_ >= cfg_.fp_regs
                            : int_regs_used_ >= cfg_.int_regs) {
        break;
      }
    }
    if (mem_op && !lsq_.can_dispatch(op.op == trace::OpClass::kLoad)) break;

    fetch_queue_.pop_front();
    const InstSeq seq = fr.seq;
    assert(seq == tail_);
    InFlight& f = slot(seq);
    f.seq = seq;
    ++f.gen;  // new incarnation: completion events of prior occupants die
    f.op = &op;
    f.wait_agen = 0;
    f.wait_data = 0;
    f.in_iq = true;
    f.agen_issued = false;
    f.agen_done = false;
    f.placed = false;
    f.data_ready = false;
    f.executing = false;
    f.completed = false;
    f.mispredicted = fr.mispredicted;
    f.load_value = 0;
    f.dependents.clear();
    f.fwd_waiters.clear();
    f.commit_waiters.clear();
    tail_ = seq + 1;

    auto add_dep = [&](RegId src, SrcRole role) {
      if (src == kNoReg) return;
      const InstSeq p = rename_[src];
      if (p != kNoInst && live(p) && !slot(p).completed) {
        slot(p).dependents.push_back(
            detail::encode_dep(seq, static_cast<std::uint8_t>(role)));
        if (role == SrcRole::kAgen) {
          ++f.wait_agen;
        } else {
          ++f.wait_data;
        }
      }
    };

    if (op.op == trace::OpClass::kStore) {
      add_dep(op.src1, SrcRole::kAgen);   // address base
      add_dep(op.src2, SrcRole::kData);   // store data
    } else {
      add_dep(op.src1, SrcRole::kAgen);
      add_dep(op.src2, SrcRole::kAgen);
    }

    if (op.dst != kNoReg) {
      (is_fp_reg(op.dst) ? fp_regs_used_ : int_regs_used_)++;
      rename_[op.dst] = seq;
    }

    if (mem_op) {
      lsq_.on_dispatch(seq, op.op == trace::OpClass::kLoad);
      if (op.op == trace::OpClass::kStore) {
        unplaced_stores_.insert(seq);
        f.data_ready = f.wait_data == 0;
      }
    }

    (fp ? iq_fp_used_ : iq_int_used_)++;
    if (f.wait_agen == 0) {
      (fp ? ready_fp_ : ready_int_).push_back(seq);
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::fetch_stage() {
  if (cycle_ < fetch_stall_until_) return;
  for (std::uint32_t n = 0; n < cfg_.fetch_width; ++n) {
    if (fetch_queue_.size() >= cfg_.fetch_queue) break;
    if (fetch_seq_ >= trace_.size()) break;
    const trace::MicroOp& op = trace_[fetch_seq_];

    const Addr line = op.pc >> 5U;
    if (line != last_fetch_line_) {
      const Cycle lat = mem_.inst_access(op.pc);
      last_fetch_line_ = line;
      if (lat > mem_.l1i().hit_latency()) {
        fetch_stall_until_ = cycle_ + lat;
        break;
      }
    }

    Fetched fr;
    fr.seq = fetch_seq_;
    if (op.op == trace::OpClass::kBranch) {
      const bool pred = predictor_.predict_and_update(op.pc, op.taken);
      const branch::Btb::Result target = btb_.lookup(op.pc);
      if (op.taken) btb_.update(op.pc, op.br_target);
      fr.mispredicted = (pred != op.taken) || (pred && op.taken && !target.hit);
      fetch_queue_.push_back(fr);
      ++fetch_seq_;
      if (pred) break;  // a predicted-taken branch ends the fetch group
    } else {
      fetch_queue_.push_back(fr);
      ++fetch_seq_;
    }
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::rebuild_rename() {
  for (auto& r : rename_) r = kNoInst;
  for (InstSeq s = head_; s < tail_; ++s) {
    const InFlight& f = slot(s);
    if (f.op->dst != kNoReg) rename_[f.op->dst] = s;
  }
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::squash_after(InstSeq last_kept) {
  const InstSeq first_bad = last_kept + 1;
  if (first_bad >= tail_) {
    // Nothing younger in flight; still redirect fetch.
    fetch_queue_.clear();
    fetch_seq_ = first_bad;
    fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
    last_fetch_line_ = ~0ULL;
    return;
  }
  lsq_.squash_from(first_bad);
  for (InstSeq s = first_bad; s < tail_; ++s) {
    InFlight& f = slot(s);
    assert(f.seq == s);
    if (f.agen_issued && !f.agen_done) {
      assert(agens_outstanding_ > 0);
      --agens_outstanding_;
    }
    if (f.op->dst != kNoReg) {
      auto& used = is_fp_reg(f.op->dst) ? fp_regs_used_ : int_regs_used_;
      assert(used > 0);
      --used;
    }
    if (f.in_iq) {
      auto& used = trace::is_fp(f.op->op) ? iq_fp_used_ : iq_int_used_;
      assert(used > 0);
      --used;
    }
    f.seq = kNoInst;
    f.dependents.clear();
    f.fwd_waiters.clear();
    f.commit_waiters.clear();
  }
  tail_ = first_bad;

  unplaced_stores_.erase_from(first_bad);
  ordering_waiting_loads_.erase_from(first_bad);
  auto filter_queue = [&](RingDeque<InstSeq>& q) {
    q.erase_if([&](InstSeq s) { return s >= first_bad; });
  };
  filter_queue(ready_int_);
  filter_queue(ready_fp_);
  filter_queue(ready_mem_);
  // Surviving producers must forget squashed dependents and waiters: the
  // same seq can be re-dispatched after the refetch and would otherwise
  // be woken twice.
  for (InstSeq s = head_; s < tail_; ++s) {
    InFlight& f = slot(s);
    std::erase_if(f.dependents, [&](std::uint64_t enc) {
      return (enc >> 1U) >= first_bad;
    });
    std::erase_if(f.fwd_waiters, [&](InstSeq l) { return l >= first_bad; });
    std::erase_if(f.commit_waiters, [&](InstSeq l) { return l >= first_bad; });
  }
  // Completion events of squashed instructions stay in the wheel; their
  // (seq, gen) tokens are stale the moment the slots above were cleared
  // (and re-dispatching bumps gen), so writeback drops them in O(1).

  rebuild_rename();
  fetch_queue_.clear();
  fetch_seq_ = first_bad;
  fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
  last_fetch_line_ = ~0ULL;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::full_flush() {
  ++res_.deadlock_flushes;
  lsq_.squash_from(head_);
  for (InstSeq s = head_; s < tail_; ++s) {
    InFlight& f = slot(s);
    f.seq = kNoInst;
    f.dependents.clear();
    f.fwd_waiters.clear();
    f.commit_waiters.clear();
  }
  tail_ = head_;
  int_regs_used_ = 0;
  fp_regs_used_ = 0;
  iq_int_used_ = 0;
  iq_fp_used_ = 0;
  unplaced_stores_.clear();
  ordering_waiting_loads_.clear();
  ready_int_.clear();
  ready_fp_.clear();
  ready_mem_.clear();
  // completions_ keeps its (now token-stale) events; see squash_after.
  int_muldiv_.reset();
  fp_muldiv_.reset();
  agens_outstanding_ = 0;
  for (auto& r : rename_) r = kNoInst;
  fetch_queue_.clear();
  fetch_seq_ = head_;
  fetch_stall_until_ = cycle_ + cfg_.redirect_penalty;
  last_fetch_line_ = ~0ULL;
}

template <typename LsqT, typename ObserverT>
void Core<LsqT, ObserverT>::commit_stage() {
  for (std::uint32_t n = 0; n < cfg_.commit_width && head_ < tail_; ++n) {
    InFlight& h = slot(head_);
    assert(h.seq == head_);
    if (!h.completed) {
      // Deadlock avoidance (paper §3.3): the oldest instruction cannot be
      // placed — either its address is computed and every candidate slot
      // is held by younger instructions, or its address computation is
      // gated by a full AddrBuffer. Flush the pipeline; the oldest
      // instruction re-enters first and is guaranteed a slot.
      if (trace::is_mem(h.op->op) && !h.placed &&
          (h.agen_done || (!h.agen_issued && h.wait_agen == 0 &&
                           lsq_.placement_headroom() == 0))) {
        full_flush();
      }
      break;
    }

    if (h.op->op == trace::OpClass::kStore) {
      if (dcache_ports_used_ >= cfg_.dcache_ports) break;
      ++dcache_ports_used_;
      const Addr addr = h.op->mem_addr;
      const lsq::CacheHints hints = lsq_.cache_hints(head_);
      if (hints.translation_known) {
        ++res_.dtlb_cached;
        if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_cached_translation();
      }
      if (hints.way_known) {
        const auto k = mem_.data_access_known(hints.set, hints.way, addr);
        if (!k.ok) throw std::logic_error("presentBit protocol violation (store)");
        ++res_.dcache_way_known;
        if (dcache_ledger_ != nullptr) dcache_ledger_->on_way_known_access();
      } else {
        const mem::DataAccess a = hints.translation_known
                                      ? mem_.data_access_translated(addr)
                                      : mem_.data_access(addr);
        if (!hints.translation_known) {
          ++res_.dtlb_accesses;
          if (dtlb_ledger_ != nullptr) dtlb_ledger_->on_access();
        }
        ++res_.dcache_full;
        if (dcache_ledger_ != nullptr) dcache_ledger_->on_full_access();
        lsq_.on_cache_access_complete(head_, a.set, a.way);
        if (lsq_.kind() == lsq::LsqKind::kSamie) {
          mem_.l1d().set_present_bit(a.set, a.way, true);
        }
        handle_eviction(a.evicted, a.evicted_set, a.evicted_present_bit);
      }
      memory_state_.write(addr, h.op->mem_size, h.op->value);
      ++res_.stores_committed;
      if (!h.commit_waiters.empty()) {
        commit_waiter_scratch_.assign(h.commit_waiters.begin(),
                                      h.commit_waiters.end());
        h.commit_waiters.clear();
        lsq_.on_commit(head_);
        for (InstSeq l : commit_waiter_scratch_) try_schedule_load(l);
      } else {
        lsq_.on_commit(head_);
      }
    } else if (h.op->op == trace::OpClass::kLoad) {
      lsq_.on_commit(head_);
    }

    if (h.op->dst != kNoReg) {
      auto& used = is_fp_reg(h.op->dst) ? fp_regs_used_ : int_regs_used_;
      assert(used > 0);
      --used;
      if (rename_[h.op->dst] == head_) rename_[h.op->dst] = kNoInst;
    }
    h.seq = kNoInst;
    ++res_.committed;
    ++head_;
    last_commit_cycle_ = cycle_;
  }
}

template <typename LsqT, typename ObserverT>
CoreResult Core<LsqT, ObserverT>::run(std::uint64_t max_insts) {
  const std::uint64_t target = std::min<std::uint64_t>(max_insts, trace_.size());
  last_commit_cycle_ = 0;
  while (res_.committed < target) {
    dcache_ports_used_ = 0;
    int_alu_.new_cycle();
    fp_alu_.new_cycle();

    commit_stage();
    if (res_.committed >= target) break;
    writeback_stage();
    memory_stage();
    issue_stage();
    dispatch_stage();
    fetch_stage();

    if (observer_ != nullptr) observer_->on_cycle(cycle_, lsq_.occupancy());

    ++cycle_;
    if (cycle_ - last_commit_cycle_ > cfg_.commit_timeout) {
      throw std::runtime_error("commit watchdog fired: pipeline wedged at cycle " +
                               std::to_string(cycle_));
    }
    if (head_ == tail_ && fetch_queue_.empty() && fetch_seq_ >= trace_.size()) {
      break;  // trace exhausted
    }
  }
  res_.cycles = cycle_;
  res_.ipc = cycle_ > 0 ? static_cast<double>(res_.committed) /
                              static_cast<double>(cycle_)
                        : 0.0;
  return res_;
}

}  // namespace samie::core
