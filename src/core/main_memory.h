// Byte-accurate committed architectural memory.
//
// Stores write here at commit; loads that reach the cache read from here.
// Together with the trace generator's oracle values this closes the loop
// that lets tests prove the disambiguation/forwarding machinery returns
// program-order-correct data for every load.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace samie::core {

class MainMemory {
 public:
  MainMemory() = default;
  /// Non-copyable: the MRU cache points into pages_, and a copied cache
  /// would silently alias the source's memory image.
  MainMemory(const MainMemory&) = delete;
  MainMemory& operator=(const MainMemory&) = delete;

  void write(Addr addr, std::uint32_t bytes, std::uint64_t value);
  [[nodiscard]] std::uint64_t read(Addr addr, std::uint32_t bytes);

  [[nodiscard]] std::size_t touched_pages() const { return pages_.size(); }

 private:
  [[nodiscard]] std::vector<std::uint8_t>& page_for(Addr addr);
  std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
  /// MRU page: loads/stores cluster heavily, so most accesses skip the
  /// hash lookup. Pointers into the node-based map stay valid on rehash.
  Addr last_page_ = 1;  ///< not page-aligned == never matches
  std::vector<std::uint8_t>* last_ = nullptr;
};

}  // namespace samie::core
