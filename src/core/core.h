// The out-of-order superscalar core (paper Table 2): 8-wide fetch/
// dispatch/issue/commit, 256-entry ROB with the readyBit/whereLSQ
// extension, separate INT/FP issue queues, the Table 2 functional units,
// and pluggable load/store queues.
//
// Trace-driven: fetch follows the (correct-path) trace; branch mispredicts
// squash younger in-flight instructions and restart fetch after a redirect
// penalty, which models the recovery cost without wrong-path execution
// (DESIGN.md §4.2).
//
// `Core` is a template over the concrete LSQ type *and* the per-cycle
// observer type: instantiating it with final classes
// (Core<lsq::SamieLsq, StatsCollector>) devirtualizes every LSQ call on
// the per-memory-op hot path and inlines the once-per-cycle occupancy
// hook, leaving the steady-state cycle loop with zero virtual dispatch.
// The default arguments Core<lsq::LoadStoreQueue, CycleObserver> are the
// type-erased variant kept for tools, examples and tests that pick the
// queue at runtime — CTAD from a LoadStoreQueue& (and a nullptr or
// CycleObserver* observer) selects it automatically, so
// `Core c(cfg, trace, *queue, ...)` keeps working.
//
// In-flight state is laid out for the access pattern, not the object
// model (the same argument SAMIE-LSQ makes for the queue itself): the
// former ~100-byte per-slot `InFlight` record is split into parallel
// arrays indexed by ROB slot — a packed `SlotStatus` word (the pipeline
// booleans and wait counters), a `(seq, gen)` token array, an op-pointer
// array, the dependence-list handles, and a cold array (`load_value`,
// `prev_rename`) the stage scans never touch. Dependent/waiter refs live
// in a shared `DepSlab` arena instead of per-slot vectors. See
// docs/BENCH_hotpath.md "Engine structures".
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/branch/predictor.h"
#include "src/common/calendar_wheel.h"
#include "src/common/ring_deque.h"
#include "src/common/seq_set.h"
#include "src/core/dep_slab.h"
#include "src/core/fu_pool.h"
#include "src/core/main_memory.h"
#include "src/energy/ledger.h"
#include "src/lsq/lsq_interface.h"
#include "src/mem/hierarchy.h"
#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::core {

/// Thrown by Core::run when the cooperative cancellation token
/// (CoreConfig::should_abort) is observed set. The machine state is
/// abandoned, not drained — the caller owns what to do with the
/// aborted job (the sweep scheduler reports it TimedOut).
class SimulationAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CoreConfig {
  std::uint32_t fetch_width = 8;
  std::uint32_t dispatch_width = 8;
  std::uint32_t issue_width_int = 8;
  std::uint32_t issue_width_fp = 8;
  std::uint32_t commit_width = 8;
  std::uint32_t rob_size = 256;
  std::uint32_t iq_int = 128;
  std::uint32_t iq_fp = 128;
  std::uint32_t fetch_queue = 64;
  std::uint32_t int_regs = 160;
  std::uint32_t fp_regs = 160;
  std::uint32_t dcache_ports = 4;
  Cycle redirect_penalty = 3;  ///< resolve-to-refetch bubble

  // Functional units (Table 2).
  std::uint32_t n_int_alu = 6;
  std::uint32_t n_int_muldiv = 3;
  std::uint32_t n_fp_alu = 4;
  std::uint32_t n_fp_muldiv = 2;
  Cycle lat_int_alu = 1;
  Cycle lat_int_mul = 3;
  Cycle lat_int_div = 20;  // non-pipelined
  Cycle lat_fp_alu = 2;
  Cycle lat_fp_mul = 4;
  Cycle lat_fp_div = 12;  // non-pipelined

  /// Ablation (paper §3.6 future work): way-known L1D accesses complete
  /// one cycle earlier.
  bool exploit_known_line_latency = false;

  /// Watchdog: abort if no instruction commits for this many cycles.
  Cycle commit_timeout = 200000;

  /// Escape hatch (`samie_sim --no-skip`): run every cycle through the
  /// six-stage walk even when the work ledgers prove it a no-op. The
  /// event-driven fast-forward is bit-identical to this by construction;
  /// the differential suite runs both and asserts it.
  bool always_step = false;

  /// Cross-check the incremental wake ledger against the from-scratch
  /// `quiescent()` predicate after every stepped cycle (throws
  /// std::logic_error on disagreement). Costs one branch per cycle when
  /// off; the differential tests turn it on, and building with
  /// -DSAMIE_CHECK_QUIESCENCE (the CI sanitizer job) defaults it on for
  /// every run in the process.
#ifdef SAMIE_CHECK_QUIESCENCE
  bool check_quiescence = true;
#else
  bool check_quiescence = false;
#endif

  /// Cooperative cancellation token (borrowed; null = never cancel).
  /// Polled with a relaxed load once per *stepped* cycle at the bottom
  /// of the run loop — never inside a fast-forward span, whose length is
  /// already bounded by the watchdog horizon — so wiring a token changes
  /// no statistic. When observed set, run() throws SimulationAborted.
  const std::atomic<bool>* should_abort = nullptr;
};

/// Per-cycle hook for occupancy sampling (area integration, Figures 3/4).
/// This is the *type-erased* observer: Core is templated over the
/// observer type, so a concrete non-virtual class (the simulator's
/// StatsCollector) gets its on_cycle inlined into the cycle loop; this
/// interface exists for call sites that need a runtime-chosen observer.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle(Cycle cycle, const lsq::OccupancySample& occ) = 0;
  /// Batched form used by the fast-forward: `count` consecutive cycles
  /// starting at `first`, all with the same occupancy (nothing ran, so
  /// nothing could change it). The default replays the per-cycle hook so
  /// any observer stays bit-identical; run-length collectors (the
  /// simulator's StatsCollector) override with a counter bump.
  virtual void on_cycles(Cycle first, std::uint64_t count,
                         const lsq::OccupancySample& occ) {
    for (std::uint64_t i = 0; i < count; ++i) on_cycle(first + i, occ);
  }
};

/// Aggregate outcome of a simulation run.
struct CoreResult {
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  double ipc = 0.0;
  std::uint64_t mispredict_squashes = 0;
  std::uint64_t deadlock_flushes = 0;
  std::uint64_t loads_executed = 0;
  std::uint64_t stores_committed = 0;
  std::uint64_t forwarded_loads = 0;
  std::uint64_t partial_forward_waits = 0;
  std::uint64_t agen_gated = 0;
  /// Loads whose observed value differed from the trace oracle — any
  /// nonzero value is a memory-ordering bug in the LSQ under test.
  std::uint64_t value_mismatches = 0;
  std::uint64_t dcache_way_known = 0;
  std::uint64_t dcache_full = 0;
  std::uint64_t dtlb_accesses = 0;
  std::uint64_t dtlb_cached = 0;
  /// Engine metrics, not simulation statistics: cycles the event-driven
  /// loop fast-forwarded over (0 under `always_step`) and the number of
  /// fast-forward jumps. Every *simulation* statistic above is
  /// bit-identical whether these are zero or not.
  std::uint64_t quiescent_cycles_skipped = 0;
  std::uint64_t fast_forwards = 0;
};

/// Packed per-slot pipeline status — the hot word of the ROB's SoA
/// layout. One 32-bit load answers every per-stage question about a
/// slot; the former record spread the same eight booleans and two wait
/// counters over ten bytes of a ~100-byte struct. Bit assignments
/// (documented in docs/BENCH_hotpath.md):
///   bit 0  in_iq          bit 4  data_ready (stores)
///   bit 1  agen_issued    bit 5  executing
///   bit 2  agen_done      bit 6  completed
///   bit 3  placed         bit 7  mispredicted
///   bits 8..15  wait_agen (outstanding sources / address sources)
///   bits 16..23 wait_data (stores: outstanding data operand)
///   bit 24 is_mem, bit 25 is_fp (derived once at dispatch)
///   bits 28..31 the trace::OpClass
/// Caching the op class here means the per-cycle scans (issue FU
/// selection, the §3.3 head predicate, writeback routing, wake-target
/// queue choice) never chase the op pointer — the status word already
/// answers them.
class SlotStatus {
 public:
  enum : std::uint32_t {
    kInIq = 1U << 0,
    kAgenIssued = 1U << 1,
    kAgenDone = 1U << 2,
    kPlaced = 1U << 3,
    kDataReady = 1U << 4,
    kExecuting = 1U << 5,
    kCompleted = 1U << 6,
    kMispredicted = 1U << 7,
    kIsMem = 1U << 24,
    kIsFp = 1U << 25,
  };
  static constexpr std::uint32_t kWaitAgenShift = 8;
  static constexpr std::uint32_t kWaitDataShift = 16;
  static constexpr std::uint32_t kWaitMask = 0xFFU;
  static constexpr std::uint32_t kOpShift = 28;

  /// Fresh dispatch state: everything clear except the given flags.
  void reset(std::uint32_t flags) noexcept { w_ = flags; }

  [[nodiscard]] bool in_iq() const noexcept { return (w_ & kInIq) != 0; }
  [[nodiscard]] bool agen_issued() const noexcept {
    return (w_ & kAgenIssued) != 0;
  }
  [[nodiscard]] bool agen_done() const noexcept {
    return (w_ & kAgenDone) != 0;
  }
  [[nodiscard]] bool placed() const noexcept { return (w_ & kPlaced) != 0; }
  [[nodiscard]] bool data_ready() const noexcept {
    return (w_ & kDataReady) != 0;
  }
  [[nodiscard]] bool executing() const noexcept {
    return (w_ & kExecuting) != 0;
  }
  [[nodiscard]] bool completed() const noexcept {
    return (w_ & kCompleted) != 0;
  }
  [[nodiscard]] bool mispredicted() const noexcept {
    return (w_ & kMispredicted) != 0;
  }
  [[nodiscard]] bool is_mem() const noexcept { return (w_ & kIsMem) != 0; }
  [[nodiscard]] bool is_fp() const noexcept { return (w_ & kIsFp) != 0; }
  [[nodiscard]] trace::OpClass op_class() const noexcept {
    return static_cast<trace::OpClass>(w_ >> kOpShift);
  }
  void set(std::uint32_t flag) noexcept { w_ |= flag; }
  void clear(std::uint32_t flag) noexcept { w_ &= ~flag; }

  [[nodiscard]] std::uint32_t wait_agen() const noexcept {
    return (w_ >> kWaitAgenShift) & kWaitMask;
  }
  [[nodiscard]] std::uint32_t wait_data() const noexcept {
    return (w_ >> kWaitDataShift) & kWaitMask;
  }
  void inc_wait_agen() noexcept { w_ += 1U << kWaitAgenShift; }
  void inc_wait_data() noexcept { w_ += 1U << kWaitDataShift; }
  /// Decrements and returns true when the counter reached zero.
  bool dec_wait_agen() noexcept {
    w_ -= 1U << kWaitAgenShift;
    return wait_agen() == 0;
  }
  bool dec_wait_data() noexcept {
    w_ -= 1U << kWaitDataShift;
    return wait_data() == 0;
  }

 private:
  std::uint32_t w_ = 0;
};

template <typename LsqT = lsq::LoadStoreQueue,
          typename ObserverT = CycleObserver>
class Core final : private lsq::PresentBitClearer {
 public:
  /// `trace` is a borrowed view: the backing storage (an owned Trace, a
  /// TraceSource, a file mapping) must outlive the core.
  Core(const CoreConfig& cfg, trace::TraceView trace, LsqT& lsq,
       mem::MemoryHierarchy& memory, branch::HybridPredictor& predictor,
       branch::Btb& btb, energy::DcacheLedger* dcache_ledger,
       energy::DtlbLedger* dtlb_ledger, ObserverT* observer);
  /// The queue outlives the core (see run_with_queue): unregister the
  /// present-bit clearer so it never holds a dangling receiver.
  ~Core() override { lsq_.set_present_bit_clearer(nullptr); }

  /// Runs until `max_insts` instructions commit (or the trace ends).
  /// Equivalent to begin(max_insts); while (step(...)) {}; finish() —
  /// the stepped decomposition exists for the LaneEngine, which
  /// interleaves many cores in one loop; results are bit-identical by
  /// construction (the cycle loop body is shared).
  CoreResult run(std::uint64_t max_insts);

  // -- resumable stepping (lane mode) ----------------------------------------
  /// Arms a run targeting `max_insts` committed instructions.
  void begin(std::uint64_t max_insts);
  /// Advances up to `max_cycles` stepped cycles. Returns false once the
  /// run is over (target reached or trace drained); the watchdog /
  /// quiescence-check / abort exceptions of run() propagate from here.
  bool step(std::uint64_t max_cycles);
  /// Seals the run and returns the result. Call once, after step()
  /// returned false.
  CoreResult finish();

  // -- observability / microbenchmark probes ---------------------------------
  /// The legacy from-scratch quiescence predicate: true iff no stage can
  /// change architectural state at the current cycle (see core_impl.h
  /// for the stage-by-stage proof obligations). The cycle loop itself
  /// tests the incremental `wake_ledger()` word instead; this predicate
  /// is kept as the cross-check (`CoreConfig::check_quiescence`,
  /// SAMIE_CHECK_QUIESCENCE builds) and for bench_micro_structures'
  /// ledger-vs-predicate microbenchmark. All O(1).
  [[nodiscard]] bool quiescent() const;
  /// The incremental wake ledger word (0 == quiescent); see WakeBit.
  [[nodiscard]] std::uint32_t wake_ledger() const noexcept {
    return wake_ledger_;
  }
  /// The earliest cycle at which this core can next change architectural
  /// state: the current cycle when any wake bit is set (or in always-step
  /// mode, which never fast-forwards), else the fast-forward horizon —
  /// min over the calendar wheel's next event, the hierarchy's pending
  /// completion, the fetch re-enable and the watchdog, clamped to never
  /// run backwards (right after a jump the wheel can hold an event due
  /// *now* with the ledger still clear). A pure scheduling hint for the
  /// LaneEngine's earliest-wake heap: it never mutates state, and lane
  /// results do not depend on it.
  [[nodiscard]] Cycle next_wake_cycle() const;
  /// The shared dependence-ref arena (leak/reuse regression hooks).
  [[nodiscard]] const DepSlab& dep_slab() const noexcept { return dep_slab_; }

 private:
  enum class SrcRole : std::uint8_t { kAgen = 0, kData = 1 };

  /// A (seq, ROB-slot incarnation) token. Everything that *refers* to an
  /// in-flight instruction across cycles — completion events, dependent
  /// lists, waiter lists, ready-queue entries — carries one; a consumer
  /// whose token no longer matches the slot is stale (squash, flush or
  /// slot reuse after refetch of the same trace index) and drops it in
  /// O(1). This is what makes squash recovery O(squashed): no survivor
  /// scrubbing, no ready-queue filtering.
  struct SeqRef {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
  };

  /// The (seq, gen) incarnation token of a ROB slot — one entry of the
  /// hot SoA token array. `seq` is bumped to the occupant at dispatch
  /// and to kNoInst at commit/squash; `gen` counts incarnations so
  /// cross-cycle references die on slot reuse (see SeqRef).
  struct SlotToken {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
  };

  /// Per-slot dependence-list handles into the shared DepSlab arena:
  /// instructions waiting on this slot's result, and (stores only) loads
  /// waiting to forward from / retire behind it. Stale tokens are
  /// dropped at wake time.
  struct SlotLists {
    DepSlab::List dependents;      ///< waiting on this result (DepRef.role)
    DepSlab::List fwd_waiters;     ///< ForwardWait: need the datum
    DepSlab::List commit_waiters;  ///< WaitCommit: need retirement
  };

  /// Cold per-slot state: touched once per instruction (value check at
  /// completion, rename undo on squash), never by the per-cycle scans —
  /// keeping it out of the hot arrays is the point of the SoA split.
  struct SlotCold {
    std::uint64_t load_value = 0;  ///< value the load observed (checked
                                   ///< against the trace oracle)
    /// Destination register, cached at dispatch: commit and squash read
    /// it next to prev_rename, so neither recovery path touches the op.
    RegId dst = kNoReg;
    /// Rename checkpoint: the producer this instruction's dst displaced
    /// at dispatch (kNoInst included). Squash/flush restore the rename
    /// table by replaying these in reverse over the squashed range only —
    /// O(squashed), no survivor walk. A restored value may name an
    /// already-committed producer; that is benign because every rename
    /// consumer filters through live().
    InstSeq prev_rename = kNoInst;
  };

  /// A fetched instruction plus the decode facts dispatch's resource
  /// checks need. dispatch_blocked() runs for every dispatch attempt
  /// *and* closes the quiescence ledger's dispatch clause, so it reads
  /// this hot 16-byte ring entry instead of the 48-byte trace record.
  struct Fetched {
    InstSeq seq = kNoInst;
    RegId dst = kNoReg;
    bool fp = false;
    bool mem = false;
    bool load = false;
    bool mispredicted = false;
  };

  /// A scheduled completion event: the instruction plus its ROB-slot
  /// incarnation at schedule time (see SlotToken::gen). Delivery order is
  /// the calendar wheel's contract: same-cycle events pop in schedule
  /// order, identical to the (cycle, order) min-heap this replaced.
  struct CompletionRef {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
  };

  /// Wake ledger bits (the non-quiescence sources). Each bit mirrors one
  /// clause of `quiescent()`'s negation; the stages that can change a
  /// clause re-derive its bit (see core_impl.h "Wake-ledger maintenance"
  /// for the site-by-site argument), so the post-cycle quiescence check
  /// is the single word test `wake_ledger_ == 0`.
  enum WakeBit : std::uint32_t {
    kWakeCommitHead = 1U << 0,  ///< head completed or §3.3 flush pending
    kWakeReady = 1U << 1,       ///< some ready queue is non-empty
    kWakeLsq = 1U << 2,         ///< lsq_has_pending_work()
    kWakeDispatch = 1U << 3,    ///< fetch queue head passes resource checks
    kWakeFetch = 1U << 4,       ///< fetch could act at the checked cycle
  };

  // -- stages (called commit-first each cycle) -------------------------------
  void commit_stage();
  void writeback_stage();
  void memory_stage();
  void issue_stage();
  void dispatch_stage();
  void fetch_stage();

  // -- helpers ---------------------------------------------------------------
  /// ROB slot index. A power-of-two ROB (the common case, paper default
  /// 256) masks; only odd-sized configurations pay the division.
  [[nodiscard]] std::size_t rob_index(InstSeq seq) const {
    return rob_mask_ != 0 ? static_cast<std::size_t>(seq & rob_mask_)
                          : static_cast<std::size_t>(seq % cfg_.rob_size);
  }
  [[nodiscard]] SlotStatus& status_of(InstSeq seq) {
    return rob_status_[rob_index(seq)];
  }
  [[nodiscard]] const SlotStatus& status_of(InstSeq seq) const {
    return rob_status_[rob_index(seq)];
  }
  [[nodiscard]] const trace::MicroOp& op_of(InstSeq seq) const {
    return *rob_op_[rob_index(seq)];
  }
  [[nodiscard]] bool live(InstSeq seq) const {
    return seq >= head_ && seq < tail_ && rob_token_[rob_index(seq)].seq == seq;
  }
  void schedule_completion(InstSeq seq, Cycle at);
  void complete(InstSeq seq);
  void wake_dependents(std::size_t idx);
  void on_agen_complete(InstSeq seq);
  void on_store_placed(InstSeq seq);
  void try_schedule_load(InstSeq seq);
  void execute_load_access(InstSeq seq);
  [[nodiscard]] bool load_ordering_clear(InstSeq seq) const;
  void handle_eviction(bool evicted, std::uint32_t set, bool had_present_bit);
  void squash_after(InstSeq last_kept);
  void full_flush();
  [[nodiscard]] std::uint64_t forwarded_value(const trace::MicroOp& load,
                                              const trace::MicroOp& store) const;

  // -- event-driven engine ---------------------------------------------------
  /// True when `ref` still names the incarnation it was created for.
  [[nodiscard]] bool ref_live(InstSeq seq, std::uint32_t gen) const {
    const SlotToken& t = rob_token_[rob_index(seq)];
    return seq >= head_ && seq < tail_ && t.seq == seq && t.gen == gen;
  }
  [[nodiscard]] SeqRef ref_of(InstSeq seq) const {
    return SeqRef{seq, rob_token_[rob_index(seq)].gen};
  }
  /// §3.3 deadlock-avoidance predicate on the ROB head: the oldest
  /// instruction can never be placed without a flush. One definition
  /// shared by commit_stage (which flushes on it), quiescent() and the
  /// wake ledger, so they can never drift apart.
  [[nodiscard]] bool deadlock_flush_pending(std::size_t idx) const {
    const SlotStatus s = rob_status_[idx];
    return s.is_mem() && !s.placed() &&
           (s.agen_done() || (!s.agen_issued() && s.wait_agen() == 0 &&
                              lsq_.placement_headroom() == 0));
  }
  /// The commit clause of the wake ledger / quiescence predicate: the
  /// head exists and commit_stage would act on it (retire or flush).
  [[nodiscard]] bool commit_head_actionable() const {
    if (head_ == tail_) return false;
    const std::size_t idx = rob_index(head_);
    return rob_status_[idx].completed() || deadlock_flush_pending(idx);
  }
  /// The dispatch stage's head-of-queue resource checks, O(1). The stage
  /// itself breaks on this same predicate, so the quiescence ledger and
  /// the stage agree by construction.
  [[nodiscard]] bool dispatch_blocked() const;
  /// Drain-work hook, statically bound for concrete queues; the
  /// type-erased LoadStoreQueue has no hook and conservatively reports
  /// pending work (the type-erased core simply never fast-forwards).
  [[nodiscard]] bool lsq_has_pending_work() const {
    if constexpr (requires(const LsqT& q) { q.has_pending_work(); }) {
      return lsq_.has_pending_work();
    } else {
      return true;
    }
  }
  /// The once-per-cycle occupancy sample, cached behind the LSQ's
  /// occupancy epoch: most stepped cycles change nothing the sample
  /// reads (the run-length StatsCollector would compare-and-fold it
  /// anyway), so the rebuild happens only when a placement, free,
  /// buffer move or dispatch actually moved a counter.
  [[nodiscard]] const lsq::OccupancySample& sampled_occupancy() {
    if constexpr (requires(const LsqT& q) { q.occupancy_epoch(); }) {
      const std::uint64_t e = lsq_.occupancy_epoch();
      if (e != occ_epoch_seen_) {
        occ_cache_ = lsq_.occupancy();
        occ_epoch_seen_ = e;
      }
      return occ_cache_;
    } else {
      occ_cache_ = lsq_.occupancy();
      return occ_cache_;
    }
  }
  // -- wake-ledger maintenance (see core_impl.h for the proof) ---------------
  void wake_set(std::uint32_t bit) noexcept { wake_ledger_ |= bit; }
  void wake_assign(std::uint32_t bit, bool on) noexcept {
    wake_ledger_ = on ? (wake_ledger_ | bit) : (wake_ledger_ & ~bit);
  }
  [[nodiscard]] bool any_ready_queue() const noexcept {
    return !ready_int_.empty() || !ready_fp_.empty() || !ready_mem_.empty();
  }
  void push_ready_int(SeqRef r) {
    ready_int_.push_back(r);
    wake_set(kWakeReady);
  }
  void push_ready_fp(SeqRef r) {
    ready_fp_.push_back(r);
    wake_set(kWakeReady);
  }
  void push_ready_mem(SeqRef r) {
    ready_mem_.push_back(r);
    wake_set(kWakeReady);
  }
  /// When quiescent, jumps cycle_ to the next wake source (wheel event,
  /// fetch re-enable, hierarchy completion, watchdog), replaying the
  /// skipped span through the observer in one batched call.
  void try_fast_forward();
  /// The fast-forward jump target: earliest cycle any wake source fires.
  /// Shared by try_fast_forward() and the next_wake_cycle() hint so the
  /// two can never drift.
  [[nodiscard]] Cycle wake_horizon() const;
  /// lsq::PresentBitClearer — the queue tells us a cached L1D location
  /// was released; clear the cache-side presentBit.
  void clear_present_bit(std::uint32_t set, std::uint32_t way) override;

  CoreConfig cfg_;
  trace::TraceView trace_;
  LsqT& lsq_;
  mem::MemoryHierarchy& mem_;
  branch::HybridPredictor& predictor_;
  branch::Btb& btb_;
  energy::DcacheLedger* dcache_ledger_;
  energy::DtlbLedger* dtlb_ledger_;
  ObserverT* observer_;
  MainMemory memory_state_;

  // Pipeline state.
  Cycle cycle_ = 0;
  InstSeq head_ = 0;          ///< oldest in-flight (== next to commit)
  InstSeq tail_ = 0;          ///< next seq to dispatch
  InstSeq fetch_seq_ = 0;     ///< next trace index to fetch
  Cycle fetch_stall_until_ = 0;
  Addr last_fetch_line_ = ~0ULL;
  std::uint64_t rob_mask_ = 0;  ///< rob_size - 1 when rob_size is pow2

  // ROB state as parallel arrays indexed by rob_index (hot → cold); see
  // the class comment. The per-stage scans read only the arrays they
  // need: commit/issue checks touch 4-byte status words, token
  // validation touches the 16-byte token array, and the cold array is
  // only read at completion and squash.
  std::vector<SlotStatus> rob_status_;
  std::vector<SlotToken> rob_token_;
  std::vector<const trace::MicroOp*> rob_op_;
  std::vector<SlotLists> rob_lists_;
  std::vector<SlotCold> rob_cold_;
  DepSlab dep_slab_;

  RingDeque<Fetched> fetch_queue_;
  std::uint32_t iq_int_used_ = 0;
  std::uint32_t iq_fp_used_ = 0;
  std::uint32_t int_regs_used_ = 0;
  std::uint32_t fp_regs_used_ = 0;
  std::vector<InstSeq> rename_;  ///< arch reg -> youngest in-flight producer

  // Scheduling queues. Entries carry (seq, gen) tokens validated at pop
  // time, so squashes do not filter them at all (stale tokens — including
  // a re-dispatched *same* seq after refetch — die on pop). Rings + flat
  // sorted sets: reserved once, allocation-free in steady state. The
  // sorted sets are exact (their min() gates load ordering) and truncate
  // in O(log n) on squash.
  RingDeque<SeqRef> ready_int_;
  RingDeque<SeqRef> ready_fp_;
  RingDeque<SeqRef> ready_mem_;  ///< loads cleared to access the cache
  SortedSeqSet unplaced_stores_;
  SortedSeqSet ordering_waiting_loads_;

  // Completion events: O(1) calendar wheel indexed by cycle & (span-1),
  // span sized above the worst-case completion latency (overflow bucket
  // for anything beyond the horizon). Squashed/flushed events are not
  // removed; they die by (seq, gen) token mismatch at pop time.
  CalendarWheel<CompletionRef> completions_;

  /// Incremental quiescence ledger: bitwise OR of the WakeBit sources.
  /// Non-zero means some stage could act; the post-cycle check is this
  /// single word against zero. kWakeFetch starts set: cycle 0 fetches.
  std::uint32_t wake_ledger_ = kWakeFetch;
  /// dispatch_stage exhausted its width with the queue non-empty, so it
  /// could not decide the dispatch clause; fetch_stage (the only later
  /// mutator of fetch/dispatch state) re-derives it. In every other exit
  /// the stage assigns kWakeDispatch itself — the expensive resource
  /// predicate is then never evaluated on a cycle that proved it moot.
  bool dispatch_clause_open_ = false;

  // Reused per-cycle scratch — cleared, never reallocated in steady state.
  std::vector<InstSeq> drain_scratch_;     ///< memory_stage: drained seqs
  std::vector<InstSeq> eligible_scratch_;  ///< on_store_placed: readyBit sweep
  std::vector<SeqRef> issue_batch_;  ///< issue_stage: the cycle's ready set,
                                     ///< collected once and arbitrated in
                                     ///< one pass over the FU pools

  // Functional units.
  PipelinedPool int_alu_;
  PipelinedPool fp_alu_;
  OccupyingPool int_muldiv_;
  OccupyingPool fp_muldiv_;
  std::uint32_t dcache_ports_used_ = 0;
  /// Address computations issued but not yet resolved into a placement —
  /// each reserves one unit of the LSQ's placement headroom.
  std::uint32_t agens_outstanding_ = 0;

  // Per-cycle occupancy sampling cache: rebuilt only when the LSQ's
  // occupancy_epoch() moved (type-erased queues have no epoch hook and
  // rebuild every cycle, as before).
  lsq::OccupancySample occ_cache_;
  std::uint64_t occ_epoch_seen_ = ~0ULL;

  // Results.
  CoreResult res_;
  Cycle last_commit_cycle_ = 0;
  /// Commit target of the armed run (see begin()).
  std::uint64_t target_ = 0;
};

/// A literal nullptr observer cannot deduce ObserverT; it means "no
/// observer", which the type-erased default expresses.
template <typename LsqT>
Core(const CoreConfig&, trace::TraceView, LsqT&, mem::MemoryHierarchy&,
     branch::HybridPredictor&, branch::Btb&, energy::DcacheLedger*,
     energy::DtlbLedger*, std::nullptr_t) -> Core<LsqT, CycleObserver>;

}  // namespace samie::core

#include "src/core/core_impl.h"  // template member definitions

namespace samie::core {
/// The type-erased instantiation is compiled once in core.cpp; every
/// other TU links against it instead of re-instantiating.
extern template class Core<lsq::LoadStoreQueue, CycleObserver>;
}  // namespace samie::core
