// The out-of-order superscalar core (paper Table 2): 8-wide fetch/
// dispatch/issue/commit, 256-entry ROB with the readyBit/whereLSQ
// extension, separate INT/FP issue queues, the Table 2 functional units,
// and pluggable load/store queues.
//
// Trace-driven: fetch follows the (correct-path) trace; branch mispredicts
// squash younger in-flight instructions and restart fetch after a redirect
// penalty, which models the recovery cost without wrong-path execution
// (DESIGN.md §4.2).
//
// `Core` is a template over the concrete LSQ type *and* the per-cycle
// observer type: instantiating it with final classes
// (Core<lsq::SamieLsq, StatsCollector>) devirtualizes every LSQ call on
// the per-memory-op hot path and inlines the once-per-cycle occupancy
// hook, leaving the steady-state cycle loop with zero virtual dispatch.
// The default arguments Core<lsq::LoadStoreQueue, CycleObserver> are the
// type-erased variant kept for tools, examples and tests that pick the
// queue at runtime — CTAD from a LoadStoreQueue& (and a nullptr or
// CycleObserver* observer) selects it automatically, so
// `Core c(cfg, trace, *queue, ...)` keeps working.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/branch/predictor.h"
#include "src/common/calendar_wheel.h"
#include "src/common/ring_deque.h"
#include "src/common/seq_set.h"
#include "src/core/fu_pool.h"
#include "src/core/main_memory.h"
#include "src/energy/ledger.h"
#include "src/lsq/lsq_interface.h"
#include "src/mem/hierarchy.h"
#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::core {

struct CoreConfig {
  std::uint32_t fetch_width = 8;
  std::uint32_t dispatch_width = 8;
  std::uint32_t issue_width_int = 8;
  std::uint32_t issue_width_fp = 8;
  std::uint32_t commit_width = 8;
  std::uint32_t rob_size = 256;
  std::uint32_t iq_int = 128;
  std::uint32_t iq_fp = 128;
  std::uint32_t fetch_queue = 64;
  std::uint32_t int_regs = 160;
  std::uint32_t fp_regs = 160;
  std::uint32_t dcache_ports = 4;
  Cycle redirect_penalty = 3;  ///< resolve-to-refetch bubble

  // Functional units (Table 2).
  std::uint32_t n_int_alu = 6;
  std::uint32_t n_int_muldiv = 3;
  std::uint32_t n_fp_alu = 4;
  std::uint32_t n_fp_muldiv = 2;
  Cycle lat_int_alu = 1;
  Cycle lat_int_mul = 3;
  Cycle lat_int_div = 20;  // non-pipelined
  Cycle lat_fp_alu = 2;
  Cycle lat_fp_mul = 4;
  Cycle lat_fp_div = 12;  // non-pipelined

  /// Ablation (paper §3.6 future work): way-known L1D accesses complete
  /// one cycle earlier.
  bool exploit_known_line_latency = false;

  /// Watchdog: abort if no instruction commits for this many cycles.
  Cycle commit_timeout = 200000;
};

/// Per-cycle hook for occupancy sampling (area integration, Figures 3/4).
/// This is the *type-erased* observer: Core is templated over the
/// observer type, so a concrete non-virtual class (the simulator's
/// StatsCollector) gets its on_cycle inlined into the cycle loop; this
/// interface exists for call sites that need a runtime-chosen observer.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle(Cycle cycle, const lsq::OccupancySample& occ) = 0;
};

/// Aggregate outcome of a simulation run.
struct CoreResult {
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  double ipc = 0.0;
  std::uint64_t mispredict_squashes = 0;
  std::uint64_t deadlock_flushes = 0;
  std::uint64_t loads_executed = 0;
  std::uint64_t stores_committed = 0;
  std::uint64_t forwarded_loads = 0;
  std::uint64_t partial_forward_waits = 0;
  std::uint64_t agen_gated = 0;
  /// Loads whose observed value differed from the trace oracle — any
  /// nonzero value is a memory-ordering bug in the LSQ under test.
  std::uint64_t value_mismatches = 0;
  std::uint64_t dcache_way_known = 0;
  std::uint64_t dcache_full = 0;
  std::uint64_t dtlb_accesses = 0;
  std::uint64_t dtlb_cached = 0;
};

template <typename LsqT = lsq::LoadStoreQueue,
          typename ObserverT = CycleObserver>
class Core final : private lsq::PresentBitClearer {
 public:
  /// `trace` is a borrowed view: the backing storage (an owned Trace, a
  /// TraceSource, a file mapping) must outlive the core.
  Core(const CoreConfig& cfg, trace::TraceView trace, LsqT& lsq,
       mem::MemoryHierarchy& memory, branch::HybridPredictor& predictor,
       branch::Btb& btb, energy::DcacheLedger* dcache_ledger,
       energy::DtlbLedger* dtlb_ledger, ObserverT* observer);
  /// The queue outlives the core (see run_with_queue): unregister the
  /// present-bit clearer so it never holds a dangling receiver.
  ~Core() override { lsq_.set_present_bit_clearer(nullptr); }

  /// Runs until `max_insts` instructions commit (or the trace ends).
  CoreResult run(std::uint64_t max_insts);

 private:
  enum class SrcRole : std::uint8_t { kAgen = 0, kData = 1 };

  struct InFlight {
    InstSeq seq = kNoInst;
    /// Incarnation counter of this ROB slot, bumped at every dispatch
    /// into it. Completion events carry (seq, gen); a popped event whose
    /// token no longer matches is stale (squash, flush or slot reuse) and
    /// is dropped — which is what lets squashes skip walking the wheel.
    std::uint32_t gen = 0;
    const trace::MicroOp* op = nullptr;
    std::uint8_t wait_agen = 0;  ///< outstanding source operands (all, or
                                 ///< the address sources for stores)
    std::uint8_t wait_data = 0;  ///< stores: outstanding data operand
    bool in_iq = false;
    bool agen_issued = false;
    bool agen_done = false;
    bool placed = false;
    bool data_ready = false;  ///< stores
    bool executing = false;
    bool completed = false;
    bool mispredicted = false;
    std::uint64_t load_value = 0;  ///< value the load observed (checked
                                   ///< against the trace oracle)
    std::vector<std::uint64_t> dependents;  ///< (seq << 1) | role
    /// Stores only — loads waiting on this slot's instruction, indexed
    /// flat by ROB slot (replaces the former unordered_map waiter tables;
    /// capacity is retained across slot reuse, so steady state never
    /// allocates).
    std::vector<InstSeq> fwd_waiters;     ///< ForwardWait: need the datum
    std::vector<InstSeq> commit_waiters;  ///< WaitCommit: need retirement
  };

  struct Fetched {
    InstSeq seq = kNoInst;
    bool mispredicted = false;
  };

  /// A scheduled completion event: the instruction plus its ROB-slot
  /// incarnation at schedule time (see InFlight::gen). Delivery order is
  /// the calendar wheel's contract: same-cycle events pop in schedule
  /// order, identical to the (cycle, order) min-heap this replaced.
  struct CompletionRef {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
  };

  // -- stages (called commit-first each cycle) -------------------------------
  void commit_stage();
  void writeback_stage();
  void memory_stage();
  void issue_stage();
  void dispatch_stage();
  void fetch_stage();

  // -- helpers ---------------------------------------------------------------
  /// ROB slot index. A power-of-two ROB (the common case, paper default
  /// 256) masks; only odd-sized configurations pay the division.
  [[nodiscard]] std::size_t rob_index(InstSeq seq) const {
    return rob_mask_ != 0 ? static_cast<std::size_t>(seq & rob_mask_)
                          : static_cast<std::size_t>(seq % cfg_.rob_size);
  }
  [[nodiscard]] InFlight& slot(InstSeq seq) { return rob_[rob_index(seq)]; }
  [[nodiscard]] bool live(InstSeq seq) const {
    return seq >= head_ && seq < tail_ && rob_[rob_index(seq)].seq == seq;
  }
  void schedule_completion(InstSeq seq, Cycle at);
  void complete(InstSeq seq);
  void wake_dependents(InFlight& inst);
  void on_agen_complete(InstSeq seq);
  void on_store_placed(InstSeq seq);
  void try_schedule_load(InstSeq seq);
  void execute_load_access(InstSeq seq);
  [[nodiscard]] bool load_ordering_clear(InstSeq seq) const;
  void handle_eviction(bool evicted, std::uint32_t set, bool had_present_bit);
  void squash_after(InstSeq last_kept);
  void full_flush();
  void rebuild_rename();
  [[nodiscard]] std::uint64_t forwarded_value(const trace::MicroOp& load,
                                              const trace::MicroOp& store) const;
  /// lsq::PresentBitClearer — the queue tells us a cached L1D location
  /// was released; clear the cache-side presentBit.
  void clear_present_bit(std::uint32_t set, std::uint32_t way) override;

  CoreConfig cfg_;
  trace::TraceView trace_;
  LsqT& lsq_;
  mem::MemoryHierarchy& mem_;
  branch::HybridPredictor& predictor_;
  branch::Btb& btb_;
  energy::DcacheLedger* dcache_ledger_;
  energy::DtlbLedger* dtlb_ledger_;
  ObserverT* observer_;
  MainMemory memory_state_;

  // Pipeline state.
  Cycle cycle_ = 0;
  InstSeq head_ = 0;          ///< oldest in-flight (== next to commit)
  InstSeq tail_ = 0;          ///< next seq to dispatch
  InstSeq fetch_seq_ = 0;     ///< next trace index to fetch
  Cycle fetch_stall_until_ = 0;
  Addr last_fetch_line_ = ~0ULL;
  std::uint64_t rob_mask_ = 0;  ///< rob_size - 1 when rob_size is pow2
  std::vector<InFlight> rob_;
  RingDeque<Fetched> fetch_queue_;
  std::uint32_t iq_int_used_ = 0;
  std::uint32_t iq_fp_used_ = 0;
  std::uint32_t int_regs_used_ = 0;
  std::uint32_t fp_regs_used_ = 0;
  std::vector<InstSeq> rename_;  ///< arch reg -> youngest in-flight producer

  // Scheduling queues. Entries are validated against the ROB at pop time,
  // so squashes do not need to filter them. Rings + flat sorted sets:
  // reserved once, allocation-free in steady state.
  RingDeque<InstSeq> ready_int_;
  RingDeque<InstSeq> ready_fp_;
  RingDeque<InstSeq> ready_mem_;  ///< loads cleared to access the cache
  SortedSeqSet unplaced_stores_;
  SortedSeqSet ordering_waiting_loads_;

  // Completion events: O(1) calendar wheel indexed by cycle & (span-1),
  // span sized above the worst-case completion latency (overflow bucket
  // for anything beyond the horizon). Squashed/flushed events are not
  // removed; they die by (seq, gen) token mismatch at pop time.
  CalendarWheel<CompletionRef> completions_;

  // Reused per-cycle scratch — cleared, never reallocated in steady state.
  std::vector<InstSeq> drain_scratch_;     ///< memory_stage: drained seqs
  std::vector<InstSeq> eligible_scratch_;  ///< on_store_placed: readyBit sweep
  std::vector<InstSeq> waiter_scratch_;    ///< waking forward-waiting loads
  std::vector<InstSeq> commit_waiter_scratch_;  ///< commit_stage wakeups
  std::vector<InstSeq> skipped_int_;       ///< issue_stage re-queues
  std::vector<InstSeq> skipped_fp_;

  // Functional units.
  PipelinedPool int_alu_;
  PipelinedPool fp_alu_;
  OccupyingPool int_muldiv_;
  OccupyingPool fp_muldiv_;
  std::uint32_t dcache_ports_used_ = 0;
  /// Address computations issued but not yet resolved into a placement —
  /// each reserves one unit of the LSQ's placement headroom.
  std::uint32_t agens_outstanding_ = 0;

  // Results.
  CoreResult res_;
  Cycle last_commit_cycle_ = 0;
};

/// A literal nullptr observer cannot deduce ObserverT; it means "no
/// observer", which the type-erased default expresses.
template <typename LsqT>
Core(const CoreConfig&, trace::TraceView, LsqT&, mem::MemoryHierarchy&,
     branch::HybridPredictor&, branch::Btb&, energy::DcacheLedger*,
     energy::DtlbLedger*, std::nullptr_t) -> Core<LsqT, CycleObserver>;

}  // namespace samie::core

#include "src/core/core_impl.h"  // template member definitions

namespace samie::core {
/// The type-erased instantiation is compiled once in core.cpp; every
/// other TU links against it instead of re-instantiating.
extern template class Core<lsq::LoadStoreQueue, CycleObserver>;
}  // namespace samie::core
