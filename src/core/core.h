// The out-of-order superscalar core (paper Table 2): 8-wide fetch/
// dispatch/issue/commit, 256-entry ROB with the readyBit/whereLSQ
// extension, separate INT/FP issue queues, the Table 2 functional units,
// and pluggable load/store queues.
//
// Trace-driven: fetch follows the (correct-path) trace; branch mispredicts
// squash younger in-flight instructions and restart fetch after a redirect
// penalty, which models the recovery cost without wrong-path execution
// (DESIGN.md §4.2).
//
// `Core` is a template over the concrete LSQ type *and* the per-cycle
// observer type: instantiating it with final classes
// (Core<lsq::SamieLsq, StatsCollector>) devirtualizes every LSQ call on
// the per-memory-op hot path and inlines the once-per-cycle occupancy
// hook, leaving the steady-state cycle loop with zero virtual dispatch.
// The default arguments Core<lsq::LoadStoreQueue, CycleObserver> are the
// type-erased variant kept for tools, examples and tests that pick the
// queue at runtime — CTAD from a LoadStoreQueue& (and a nullptr or
// CycleObserver* observer) selects it automatically, so
// `Core c(cfg, trace, *queue, ...)` keeps working.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/branch/predictor.h"
#include "src/common/calendar_wheel.h"
#include "src/common/ring_deque.h"
#include "src/common/seq_set.h"
#include "src/core/fu_pool.h"
#include "src/core/main_memory.h"
#include "src/energy/ledger.h"
#include "src/lsq/lsq_interface.h"
#include "src/mem/hierarchy.h"
#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::core {

struct CoreConfig {
  std::uint32_t fetch_width = 8;
  std::uint32_t dispatch_width = 8;
  std::uint32_t issue_width_int = 8;
  std::uint32_t issue_width_fp = 8;
  std::uint32_t commit_width = 8;
  std::uint32_t rob_size = 256;
  std::uint32_t iq_int = 128;
  std::uint32_t iq_fp = 128;
  std::uint32_t fetch_queue = 64;
  std::uint32_t int_regs = 160;
  std::uint32_t fp_regs = 160;
  std::uint32_t dcache_ports = 4;
  Cycle redirect_penalty = 3;  ///< resolve-to-refetch bubble

  // Functional units (Table 2).
  std::uint32_t n_int_alu = 6;
  std::uint32_t n_int_muldiv = 3;
  std::uint32_t n_fp_alu = 4;
  std::uint32_t n_fp_muldiv = 2;
  Cycle lat_int_alu = 1;
  Cycle lat_int_mul = 3;
  Cycle lat_int_div = 20;  // non-pipelined
  Cycle lat_fp_alu = 2;
  Cycle lat_fp_mul = 4;
  Cycle lat_fp_div = 12;  // non-pipelined

  /// Ablation (paper §3.6 future work): way-known L1D accesses complete
  /// one cycle earlier.
  bool exploit_known_line_latency = false;

  /// Watchdog: abort if no instruction commits for this many cycles.
  Cycle commit_timeout = 200000;

  /// Escape hatch (`samie_sim --no-skip`): run every cycle through the
  /// six-stage walk even when the work ledgers prove it a no-op. The
  /// event-driven fast-forward is bit-identical to this by construction;
  /// the differential suite runs both and asserts it.
  bool always_step = false;
};

/// Per-cycle hook for occupancy sampling (area integration, Figures 3/4).
/// This is the *type-erased* observer: Core is templated over the
/// observer type, so a concrete non-virtual class (the simulator's
/// StatsCollector) gets its on_cycle inlined into the cycle loop; this
/// interface exists for call sites that need a runtime-chosen observer.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle(Cycle cycle, const lsq::OccupancySample& occ) = 0;
  /// Batched form used by the fast-forward: `count` consecutive cycles
  /// starting at `first`, all with the same occupancy (nothing ran, so
  /// nothing could change it). The default replays the per-cycle hook so
  /// any observer stays bit-identical; run-length collectors (the
  /// simulator's StatsCollector) override with a counter bump.
  virtual void on_cycles(Cycle first, std::uint64_t count,
                         const lsq::OccupancySample& occ) {
    for (std::uint64_t i = 0; i < count; ++i) on_cycle(first + i, occ);
  }
};

/// Aggregate outcome of a simulation run.
struct CoreResult {
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  double ipc = 0.0;
  std::uint64_t mispredict_squashes = 0;
  std::uint64_t deadlock_flushes = 0;
  std::uint64_t loads_executed = 0;
  std::uint64_t stores_committed = 0;
  std::uint64_t forwarded_loads = 0;
  std::uint64_t partial_forward_waits = 0;
  std::uint64_t agen_gated = 0;
  /// Loads whose observed value differed from the trace oracle — any
  /// nonzero value is a memory-ordering bug in the LSQ under test.
  std::uint64_t value_mismatches = 0;
  std::uint64_t dcache_way_known = 0;
  std::uint64_t dcache_full = 0;
  std::uint64_t dtlb_accesses = 0;
  std::uint64_t dtlb_cached = 0;
  /// Engine metrics, not simulation statistics: cycles the event-driven
  /// loop fast-forwarded over (0 under `always_step`) and the number of
  /// fast-forward jumps. Every *simulation* statistic above is
  /// bit-identical whether these are zero or not.
  std::uint64_t quiescent_cycles_skipped = 0;
  std::uint64_t fast_forwards = 0;
};

template <typename LsqT = lsq::LoadStoreQueue,
          typename ObserverT = CycleObserver>
class Core final : private lsq::PresentBitClearer {
 public:
  /// `trace` is a borrowed view: the backing storage (an owned Trace, a
  /// TraceSource, a file mapping) must outlive the core.
  Core(const CoreConfig& cfg, trace::TraceView trace, LsqT& lsq,
       mem::MemoryHierarchy& memory, branch::HybridPredictor& predictor,
       branch::Btb& btb, energy::DcacheLedger* dcache_ledger,
       energy::DtlbLedger* dtlb_ledger, ObserverT* observer);
  /// The queue outlives the core (see run_with_queue): unregister the
  /// present-bit clearer so it never holds a dangling receiver.
  ~Core() override { lsq_.set_present_bit_clearer(nullptr); }

  /// Runs until `max_insts` instructions commit (or the trace ends).
  CoreResult run(std::uint64_t max_insts);

 private:
  enum class SrcRole : std::uint8_t { kAgen = 0, kData = 1 };

  /// A (seq, ROB-slot incarnation) token. Everything that *refers* to an
  /// in-flight instruction across cycles — completion events, dependent
  /// lists, waiter lists, ready-queue entries — carries one; a consumer
  /// whose token no longer matches the slot is stale (squash, flush or
  /// slot reuse after refetch of the same trace index) and drops it in
  /// O(1). This is what makes squash recovery O(squashed): no survivor
  /// scrubbing, no ready-queue filtering.
  struct SeqRef {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
  };
  /// SeqRef plus the operand role the dependent is waiting in.
  struct DepRef {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
    std::uint8_t role = 0;  ///< SrcRole
  };

  struct InFlight {
    InstSeq seq = kNoInst;
    /// Incarnation counter of this ROB slot, bumped at every dispatch
    /// into it. Completion events carry (seq, gen); a popped event whose
    /// token no longer matches is stale (squash, flush or slot reuse) and
    /// is dropped — which is what lets squashes skip walking the wheel.
    std::uint32_t gen = 0;
    const trace::MicroOp* op = nullptr;
    std::uint8_t wait_agen = 0;  ///< outstanding source operands (all, or
                                 ///< the address sources for stores)
    std::uint8_t wait_data = 0;  ///< stores: outstanding data operand
    bool in_iq = false;
    bool agen_issued = false;
    bool agen_done = false;
    bool placed = false;
    bool data_ready = false;  ///< stores
    bool executing = false;
    bool completed = false;
    bool mispredicted = false;
    std::uint64_t load_value = 0;  ///< value the load observed (checked
                                   ///< against the trace oracle)
    /// Rename checkpoint: the producer this instruction's dst displaced
    /// at dispatch (kNoInst included). Squash/flush restore the rename
    /// table by replaying these in reverse over the squashed range only —
    /// O(squashed), no survivor walk. A restored value may name an
    /// already-committed producer; that is benign because every rename
    /// consumer filters through live().
    InstSeq prev_rename = kNoInst;
    std::vector<DepRef> dependents;  ///< instructions waiting on this result
    /// Stores only — loads waiting on this slot's instruction, indexed
    /// flat by ROB slot (replaces the former unordered_map waiter tables;
    /// capacity is retained across slot reuse, so steady state never
    /// allocates). Stale tokens are dropped at wake time.
    std::vector<SeqRef> fwd_waiters;     ///< ForwardWait: need the datum
    std::vector<SeqRef> commit_waiters;  ///< WaitCommit: need retirement
  };

  struct Fetched {
    InstSeq seq = kNoInst;
    bool mispredicted = false;
  };

  /// A scheduled completion event: the instruction plus its ROB-slot
  /// incarnation at schedule time (see InFlight::gen). Delivery order is
  /// the calendar wheel's contract: same-cycle events pop in schedule
  /// order, identical to the (cycle, order) min-heap this replaced.
  struct CompletionRef {
    InstSeq seq = kNoInst;
    std::uint32_t gen = 0;
  };

  // -- stages (called commit-first each cycle) -------------------------------
  void commit_stage();
  void writeback_stage();
  void memory_stage();
  void issue_stage();
  void dispatch_stage();
  void fetch_stage();

  // -- helpers ---------------------------------------------------------------
  /// ROB slot index. A power-of-two ROB (the common case, paper default
  /// 256) masks; only odd-sized configurations pay the division.
  [[nodiscard]] std::size_t rob_index(InstSeq seq) const {
    return rob_mask_ != 0 ? static_cast<std::size_t>(seq & rob_mask_)
                          : static_cast<std::size_t>(seq % cfg_.rob_size);
  }
  [[nodiscard]] InFlight& slot(InstSeq seq) { return rob_[rob_index(seq)]; }
  [[nodiscard]] bool live(InstSeq seq) const {
    return seq >= head_ && seq < tail_ && rob_[rob_index(seq)].seq == seq;
  }
  void schedule_completion(InstSeq seq, Cycle at);
  void complete(InstSeq seq);
  void wake_dependents(InFlight& inst);
  void on_agen_complete(InstSeq seq);
  void on_store_placed(InstSeq seq);
  void try_schedule_load(InstSeq seq);
  void execute_load_access(InstSeq seq);
  [[nodiscard]] bool load_ordering_clear(InstSeq seq) const;
  void handle_eviction(bool evicted, std::uint32_t set, bool had_present_bit);
  void squash_after(InstSeq last_kept);
  void full_flush();
  [[nodiscard]] std::uint64_t forwarded_value(const trace::MicroOp& load,
                                              const trace::MicroOp& store) const;

  // -- event-driven engine ---------------------------------------------------
  /// True when `ref` still names the incarnation it was created for.
  [[nodiscard]] bool ref_live(InstSeq seq, std::uint32_t gen) const {
    return live(seq) && rob_[rob_index(seq)].gen == gen;
  }
  [[nodiscard]] SeqRef ref_of(InstSeq seq) {
    return SeqRef{seq, slot(seq).gen};
  }
  /// Work ledger: true iff some stage could change architectural state at
  /// the *current* cycle_ (see core_impl.h for the stage-by-stage proof
  /// obligations). All O(1).
  [[nodiscard]] bool quiescent() const;
  /// §3.3 deadlock-avoidance predicate on the ROB head: the oldest
  /// instruction can never be placed without a flush. One definition
  /// shared by commit_stage (which flushes on it) and quiescent() (which
  /// reports work on it), so the two can never drift apart.
  [[nodiscard]] bool deadlock_flush_pending(const InFlight& h) const {
    return trace::is_mem(h.op->op) && !h.placed &&
           (h.agen_done || (!h.agen_issued && h.wait_agen == 0 &&
                            lsq_.placement_headroom() == 0));
  }
  /// The dispatch stage's head-of-queue resource checks, O(1). The stage
  /// itself breaks on this same predicate, so the quiescence ledger and
  /// the stage agree by construction.
  [[nodiscard]] bool dispatch_blocked() const;
  /// Drain-work hook, statically bound for concrete queues; the
  /// type-erased LoadStoreQueue has no hook and conservatively reports
  /// pending work (the type-erased core simply never fast-forwards).
  [[nodiscard]] bool lsq_has_pending_work() const {
    if constexpr (requires(const LsqT& q) { q.has_pending_work(); }) {
      return lsq_.has_pending_work();
    } else {
      return true;
    }
  }
  /// When quiescent, jumps cycle_ to the next wake source (wheel event,
  /// fetch re-enable, hierarchy completion, watchdog), replaying the
  /// skipped span through the observer in one batched call.
  void try_fast_forward();
  /// lsq::PresentBitClearer — the queue tells us a cached L1D location
  /// was released; clear the cache-side presentBit.
  void clear_present_bit(std::uint32_t set, std::uint32_t way) override;

  CoreConfig cfg_;
  trace::TraceView trace_;
  LsqT& lsq_;
  mem::MemoryHierarchy& mem_;
  branch::HybridPredictor& predictor_;
  branch::Btb& btb_;
  energy::DcacheLedger* dcache_ledger_;
  energy::DtlbLedger* dtlb_ledger_;
  ObserverT* observer_;
  MainMemory memory_state_;

  // Pipeline state.
  Cycle cycle_ = 0;
  InstSeq head_ = 0;          ///< oldest in-flight (== next to commit)
  InstSeq tail_ = 0;          ///< next seq to dispatch
  InstSeq fetch_seq_ = 0;     ///< next trace index to fetch
  Cycle fetch_stall_until_ = 0;
  Addr last_fetch_line_ = ~0ULL;
  std::uint64_t rob_mask_ = 0;  ///< rob_size - 1 when rob_size is pow2
  std::vector<InFlight> rob_;
  RingDeque<Fetched> fetch_queue_;
  std::uint32_t iq_int_used_ = 0;
  std::uint32_t iq_fp_used_ = 0;
  std::uint32_t int_regs_used_ = 0;
  std::uint32_t fp_regs_used_ = 0;
  std::vector<InstSeq> rename_;  ///< arch reg -> youngest in-flight producer

  // Scheduling queues. Entries carry (seq, gen) tokens validated at pop
  // time, so squashes do not filter them at all (stale tokens — including
  // a re-dispatched *same* seq after refetch — die on pop). Rings + flat
  // sorted sets: reserved once, allocation-free in steady state. The
  // sorted sets are exact (their min() gates load ordering) and truncate
  // in O(log n) on squash.
  RingDeque<SeqRef> ready_int_;
  RingDeque<SeqRef> ready_fp_;
  RingDeque<SeqRef> ready_mem_;  ///< loads cleared to access the cache
  SortedSeqSet unplaced_stores_;
  SortedSeqSet ordering_waiting_loads_;

  // Completion events: O(1) calendar wheel indexed by cycle & (span-1),
  // span sized above the worst-case completion latency (overflow bucket
  // for anything beyond the horizon). Squashed/flushed events are not
  // removed; they die by (seq, gen) token mismatch at pop time.
  CalendarWheel<CompletionRef> completions_;

  // Reused per-cycle scratch — cleared, never reallocated in steady state.
  std::vector<InstSeq> drain_scratch_;     ///< memory_stage: drained seqs
  std::vector<InstSeq> eligible_scratch_;  ///< on_store_placed: readyBit sweep
  std::vector<SeqRef> waiter_scratch_;     ///< waking forward-waiting loads
  std::vector<SeqRef> commit_waiter_scratch_;  ///< commit_stage wakeups
  std::vector<SeqRef> skipped_int_;        ///< issue_stage re-queues
  std::vector<SeqRef> skipped_fp_;

  // Functional units.
  PipelinedPool int_alu_;
  PipelinedPool fp_alu_;
  OccupyingPool int_muldiv_;
  OccupyingPool fp_muldiv_;
  std::uint32_t dcache_ports_used_ = 0;
  /// Address computations issued but not yet resolved into a placement —
  /// each reserves one unit of the LSQ's placement headroom.
  std::uint32_t agens_outstanding_ = 0;

  // Results.
  CoreResult res_;
  Cycle last_commit_cycle_ = 0;
};

/// A literal nullptr observer cannot deduce ObserverT; it means "no
/// observer", which the type-erased default expresses.
template <typename LsqT>
Core(const CoreConfig&, trace::TraceView, LsqT&, mem::MemoryHierarchy&,
     branch::HybridPredictor&, branch::Btb&, energy::DcacheLedger*,
     energy::DtlbLedger*, std::nullptr_t) -> Core<LsqT, CycleObserver>;

}  // namespace samie::core

#include "src/core/core_impl.h"  // template member definitions

namespace samie::core {
/// The type-erased instantiation is compiled once in core.cpp; every
/// other TU links against it instead of re-instantiating.
extern template class Core<lsq::LoadStoreQueue, CycleObserver>;
}  // namespace samie::core
