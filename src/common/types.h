// Core scalar types shared by every subsystem.
//
// The simulator models a 64-bit virtual address space, cycle time as an
// unsigned 64-bit counter, and identifies dynamic instructions by their
// position in the trace. Strong typedefs are deliberately *not* used for
// these three: they are combined arithmetically everywhere (address
// slicing, cycle deltas, trace windows) and the Core Guidelines' advice on
// precise typing is instead applied to the enum-heavy interfaces built on
// top of them.
#pragma once

#include <cstdint>
#include <limits>

namespace samie {

/// Virtual or physical byte address.
using Addr = std::uint64_t;

/// Simulation time in cycles.
using Cycle = std::uint64_t;

/// Index of a dynamic instruction within a trace (program order).
using InstSeq = std::uint64_t;

/// Sentinel for "no instruction".
inline constexpr InstSeq kNoInst = std::numeric_limits<InstSeq>::max();

/// Sentinel for "no cycle scheduled yet".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Architectural register identifier. 0..31 integer, 32..63 floating point.
using RegId = std::uint8_t;

/// Sentinel for "no register operand".
inline constexpr RegId kNoReg = 0xFF;

inline constexpr int kNumIntRegs = 32;
inline constexpr int kNumFpRegs = 32;
inline constexpr int kNumArchRegs = kNumIntRegs + kNumFpRegs;

/// Returns true if `r` names a floating-point architectural register.
[[nodiscard]] constexpr bool is_fp_reg(RegId r) noexcept {
  return r != kNoReg && r >= kNumIntRegs;
}

/// floor(log2(x)) for x > 0.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  unsigned r = 0;
  while (x > 1) {
    x >>= 1U;
    ++r;
  }
  return r;
}

/// True if x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace samie
