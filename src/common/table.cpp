#include "src/common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace samie {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(precision) << v << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace samie
