// Lightweight statistics primitives used by the simulator and the
// experiment harness: counters, running means, and bounded histograms.
// Everything is instance-local (no global registries) so that concurrent
// simulations never share mutable state (Core Guidelines CP.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace samie {

/// Running mean / min / max / variance over a stream of doubles
/// (Welford's algorithm, numerically stable).
///
/// add() is header-inline: the occupancy collectors call it twice per
/// simulated cycle, and the out-of-line call was measurable in the
/// cycle-loop profile. The arithmetic is unchanged — same operations,
/// same order — so every accumulated statistic stays bit-identical.
class RunningStat {
 public:
  void add(double x) noexcept {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [0, buckets); values beyond the last bucket
/// are clamped into it. Used for occupancy distributions (Figures 3/4).
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const noexcept {
    return bucket < counts_.size() ? counts_[bucket] : 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept;
  /// Smallest v such that at least `fraction` of the mass lies in [0, v].
  [[nodiscard]] std::uint64_t quantile(double fraction) const noexcept;
  /// Fraction of mass at bucket 0 (e.g. "cycles with an empty AddrBuffer").
  [[nodiscard]] double fraction_at_zero() const noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percent difference of `value` vs `baseline` ((value-baseline)/baseline,
/// in percent). Returns 0 when the baseline is 0.
[[nodiscard]] double percent_delta(double value, double baseline) noexcept;

/// Percent saved going from `baseline` to `value` (positive = savings).
[[nodiscard]] double percent_saved(double value, double baseline) noexcept;

/// Geometric mean of a non-empty vector of positive values (0 otherwise).
[[nodiscard]] double geometric_mean(const std::vector<double>& xs) noexcept;

/// Arithmetic mean (0 for an empty vector).
[[nodiscard]] double arithmetic_mean(const std::vector<double>& xs) noexcept;

}  // namespace samie
