// FixedVector<T, N>: a bounded, inline (no heap) vector.
//
// Hot microarchitectural structures (LSQ entries, issue-queue scan lists,
// cache ways) have small compile-time capacity; keeping their storage
// inline avoids allocation on the simulator's critical path (Core
// Guidelines Per.14/Per.16) and keeps entries cache-resident.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>

namespace samie {

template <typename T, std::size_t N>
class FixedVector {
  static_assert(N > 0, "FixedVector capacity must be positive");
  static_assert(std::is_trivially_destructible_v<T>,
                "FixedVector is designed for trivially-destructible payloads");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr FixedVector() noexcept = default;

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return N; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr bool full() const noexcept { return size_ == N; }

  constexpr T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }

  constexpr T& front() noexcept { return (*this)[0]; }
  constexpr const T& front() const noexcept { return (*this)[0]; }
  constexpr T& back() noexcept { return (*this)[size_ - 1]; }
  constexpr const T& back() const noexcept { return (*this)[size_ - 1]; }

  constexpr iterator begin() noexcept { return data_; }
  constexpr iterator end() noexcept { return data_ + size_; }
  constexpr const_iterator begin() const noexcept { return data_; }
  constexpr const_iterator end() const noexcept { return data_ + size_; }

  constexpr void clear() noexcept { size_ = 0; }

  constexpr bool push_back(const T& v) noexcept {
    if (full()) return false;
    data_[size_++] = v;
    return true;
  }

  template <typename... Args>
  constexpr T& emplace_back(Args&&... args) noexcept {
    assert(!full());
    data_[size_] = T{std::forward<Args>(args)...};
    return data_[size_++];
  }

  constexpr void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

  /// Removes element i by swapping the last element into its place (O(1),
  /// does not preserve order).
  constexpr void erase_unordered(std::size_t i) noexcept {
    assert(i < size_);
    data_[i] = data_[size_ - 1];
    --size_;
  }

  /// Removes element i preserving order (O(n)).
  constexpr void erase_ordered(std::size_t i) noexcept {
    assert(i < size_);
    for (std::size_t j = i + 1; j < size_; ++j) data_[j - 1] = data_[j];
    --size_;
  }

 private:
  T data_[N]{};
  std::size_t size_ = 0;
};

}  // namespace samie
