// CalendarWheel<Payload>: an O(1) timing wheel for cycle-granular event
// scheduling (Brown's calendar queue, the structure behind gem5-style
// event schedulers).
//
// The simulator schedules every completion a bounded number of cycles
// ahead (a functional-unit or memory latency), so a wheel whose span
// exceeds that bound serves schedule and pop in O(1): bucket index is
// `at & (span - 1)`, and the per-cycle pop drains exactly the bucket of
// the current cycle. Events beyond the horizon — possible only under
// configurations with latencies larger than the constructor's sizing
// bound — fall into an overflow list that is sorted lazily when its
// earliest event comes within the horizon.
//
// Ordering contract (the reason this can replace a (cycle, order)
// min-heap bit-identically): events due the same cycle pop in schedule
// order. In-horizon events get this for free — bucket appends are
// monotonic in the order counter — and overflow events carry the counter
// so the lazy drain can merge them in front of (or between) direct
// appends.
//
// Invalidation is the caller's job: popped payloads may be stale (the
// instruction completed another way, was squashed, or its ROB slot was
// re-dispatched). Callers attach a generation token to the payload and
// drop events whose token no longer matches — O(1), so squashes never
// need to walk the wheel.
//
// Fast-forward support: the wheel keeps a bitmask with one bit per
// bucket (bit set <=> bucket non-empty), so `next_event_cycle(now)`
// finds the earliest scheduled event in O(span/64) words. An
// event-driven caller may then jump its clock straight to that cycle and
// call pop_due there — skipping the pops of provably-empty cycles. The
// only requirement is that the caller never jumps *past* a non-empty
// bucket (next_event_cycle by construction never asks it to): buckets
// between `now` and the target are empty, so the per-cycle pop they
// would have received is a no-op.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie {

template <typename Payload>
class CalendarWheel {
 public:
  /// `min_span` must exceed the largest (at - now) the caller will ever
  /// schedule for events that should stay on the O(1) path; it is rounded
  /// up to a power of two. Larger deltas are still correct (overflow).
  explicit CalendarWheel(std::size_t min_span = 256)
      : span_(std::bit_ceil(std::max<std::size_t>(min_span, 2))),
        mask_(span_ - 1),
        buckets_(span_),
        occupancy_((span_ + 63) / 64, 0) {}

  [[nodiscard]] std::size_t span() const noexcept { return span_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t overflow_size() const noexcept {
    return overflow_.size();
  }

  void clear() noexcept {
    for (auto& b : buckets_) b.clear();
    for (auto& w : occupancy_) w = 0;
    overflow_.clear();
    overflow_min_ = kNeverCycle;
    size_ = 0;
  }

  /// Cycle of the earliest scheduled event at or after `now` (including
  /// events due exactly at `now`), or kNeverCycle when the wheel is
  /// empty. O(span/64): a wrapped scan over the occupancy bitmask, plus
  /// the tracked overflow minimum. Precondition (the pop_due contract):
  /// every non-empty bucket holds a cycle in [now, now + span), which
  /// holds as long as the caller popped — or fast-forwarded over
  /// provably-empty cycles to — every cycle before `now`.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const noexcept {
    const std::size_t delta = next_nonempty_bucket(now);
    const Cycle in_wheel = delta == span_ ? kNeverCycle : now + delta;
    return std::min(in_wheel, overflow_min_);
  }

  /// Distance (in cycles) from `now` to the first non-empty bucket,
  /// scanning buckets in the cyclic order now, now+1, ..., now+span-1;
  /// returns span() when every bucket is empty.
  [[nodiscard]] std::size_t next_nonempty_bucket(Cycle now) const noexcept {
    const std::size_t start = static_cast<std::size_t>(now & mask_);
    // First (possibly partial) word: only bits at or above `start`.
    std::size_t wi = start / 64;
    std::uint64_t w = occupancy_[wi] & (~0ULL << (start % 64));
    if (w != 0) return bit_index(wi, w) - start;
    // Forward words, then wrap; the start word's low bits come last.
    const std::size_t words = occupancy_.size();
    for (std::size_t step = 1; step <= words; ++step) {
      wi = (start / 64 + step) % words;
      w = occupancy_[wi];
      if (step == words) w &= ~(~0ULL << (start % 64));  // low remainder
      if (w != 0) {
        const std::size_t bucket = bit_index(wi, w);
        return (bucket + span_ - start) & mask_;
      }
    }
    return span_;
  }

  /// Schedules `payload` for cycle `at`. `now` is the current cycle; the
  /// caller must pop every cycle (pop_due(now), pop_due(now + 1), ...).
  /// An `at` in the past or present is clamped to `now + 1` — the same
  /// cycle the heap this replaced would have delivered it, since events
  /// scheduled after the current pop were only ever seen by the next one.
  void schedule(Cycle now, Cycle at, Payload payload) {
    if (at <= now) at = now + 1;
    const Event ev{at, order_++, payload};
    if (at - now >= span_) {
      overflow_.push_back(ev);
      overflow_min_ = std::min(overflow_min_, at);
    } else {
      buckets_[at & mask_].push_back(ev);
      mark_bucket(at & mask_);
    }
    ++size_;
  }

  /// O(1): an event is due at (or has entered the horizon before)
  /// `now`. The cycle loop gates the writeback stage on this, so
  /// event-free stepped cycles skip the bucket machinery entirely.
  [[nodiscard]] bool has_due(Cycle now) const noexcept {
    return ((occupancy_[(now & mask_) / 64] >> ((now & mask_) % 64)) & 1ULL) !=
               0 ||
           overflow_min_ < now + span_;
  }

  /// Delivers every event due at `now` (in schedule order) to
  /// `fn(payload)`. `fn` may schedule new events; they land in other
  /// buckets (or the overflow) because schedule() never targets `now`.
  template <typename Fn>
  void pop_due(Cycle now, Fn&& fn) {
    if (overflow_min_ < now + span_) drain_overflow(now);
    std::vector<Event>& b = buckets_[now & mask_];
    for (const Event& ev : b) {
      assert(ev.at == now && "wheel invariant: bucket holds one cycle");
      fn(ev.payload);
    }
    size_ -= b.size();
    b.clear();
    clear_bucket(now & mask_);
  }

 private:
  struct Event {
    Cycle at = 0;
    std::uint64_t order = 0;
    Payload payload{};
  };

  /// Moves overflow events whose cycle entered the horizon into their
  /// buckets. Rare by construction (span > max latency), so the sort and
  /// the per-bucket order merge are off the steady-state path.
  void drain_overflow(Cycle now) {
    std::sort(overflow_.begin(), overflow_.end(),
              [](const Event& a, const Event& b) {
                return a.at < b.at || (a.at == b.at && a.order < b.order);
              });
    std::size_t moved = 0;
    while (moved < overflow_.size() && overflow_[moved].at < now + span_) {
      const Event& ev = overflow_[moved];
      // A fast-forwarding caller may jump straight to an overflow event's
      // cycle, so `at == now` is legal here (the pop delivers it below);
      // only a cycle already behind `now` would be a contract violation.
      assert(ev.at >= now && "overflow drains no later than its cycle");
      buckets_[ev.at & mask_].push_back(ev);
      mark_bucket(ev.at & mask_);
      ++moved;
    }
    overflow_.erase(overflow_.begin(),
                    overflow_.begin() + static_cast<std::ptrdiff_t>(moved));
    overflow_min_ = kNeverCycle;
    for (const Event& ev : overflow_) overflow_min_ = std::min(overflow_min_, ev.at);
    // A drained event may interleave with direct appends already in its
    // bucket; restore schedule order (the order counter is global).
    if (moved != 0) {
      for (auto& b : buckets_) {
        if (!std::is_sorted(b.begin(), b.end(), by_order)) {
          std::sort(b.begin(), b.end(), by_order);
        }
      }
    }
  }

  static bool by_order(const Event& a, const Event& b) noexcept {
    return a.order < b.order;
  }

  void mark_bucket(std::size_t b) noexcept {
    occupancy_[b / 64] |= 1ULL << (b % 64);
  }
  void clear_bucket(std::size_t b) noexcept {
    occupancy_[b / 64] &= ~(1ULL << (b % 64));
  }
  [[nodiscard]] static std::size_t bit_index(std::size_t word,
                                             std::uint64_t bits) noexcept {
    return word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
  }

  std::size_t span_;
  std::size_t mask_;
  std::vector<std::vector<Event>> buckets_;
  /// Bit b <=> buckets_[b] non-empty (the next_event_cycle scan).
  std::vector<std::uint64_t> occupancy_;
  std::vector<Event> overflow_;
  Cycle overflow_min_ = kNeverCycle;
  std::uint64_t order_ = 0;
  std::size_t size_ = 0;
};

}  // namespace samie
