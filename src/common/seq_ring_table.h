// SeqRingTable<Loc>: a flat ring-indexed map from live InstSeq to a
// small location payload.
//
// LSQs need seq -> location lookups on every plan/complete/commit call;
// an unordered_map pays hashing and pointer chasing on each one. Because
// live sequence numbers span at most the ROB window, indexing a
// power-of-two table by `seq & mask` is collision-free in practice:
// two live seqs share a cell only when the table is smaller than the
// spread of live seqs, a cold configuration case handled by doubling the
// table until every live entry relocates cleanly.
//
// Extracted from SamieLsq's in-flight table (PR 1) so ArbLsq can share
// the exact layout; the growth strategy is unchanged.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie {

template <typename Loc>
class SeqRingTable {
 public:
  explicit SeqRingTable(std::uint64_t size_hint = 1024) {
    const std::uint64_t size =
        std::bit_ceil(std::max<std::uint64_t>(64, size_hint));
    cells_.resize(size);
    mask_ = size - 1;
  }

  /// Pointer to the payload for `seq`, or nullptr when absent.
  [[nodiscard]] const Loc* find(InstSeq seq) const noexcept {
    const Cell& c = cells_[seq & mask_];
    return c.seq == seq ? &c.loc : nullptr;
  }
  [[nodiscard]] Loc* find(InstSeq seq) noexcept {
    Cell& c = cells_[seq & mask_];
    return c.seq == seq ? &c.loc : nullptr;
  }

  void insert(InstSeq seq, const Loc& loc) {
    for (;;) {
      Cell& c = cells_[seq & mask_];
      if (c.seq == kNoInst || c.seq == seq) {
        c.seq = seq;
        c.loc = loc;
        return;
      }
      grow();  // live-residue collision: cold path
    }
  }

  void erase(InstSeq seq) noexcept {
    Cell& c = cells_[seq & mask_];
    if (c.seq == seq) c.seq = kNoInst;
  }

  void clear() noexcept {
    for (Cell& c : cells_) c.seq = kNoInst;
  }

 private:
  struct Cell {
    InstSeq seq = kNoInst;
    Loc loc{};
  };

  /// Doubles until every live entry lands in a distinct cell.
  void grow() {
    std::size_t size = cells_.size();
    for (;;) {
      size *= 2;
      std::vector<Cell> bigger(size);
      const std::uint64_t mask = size - 1;
      bool ok = true;
      for (const Cell& c : cells_) {
        if (c.seq == kNoInst) continue;
        Cell& cell = bigger[c.seq & mask];
        if (cell.seq != kNoInst) {
          ok = false;
          break;
        }
        cell = c;
      }
      if (ok) {
        cells_ = std::move(bigger);
        mask_ = mask;
        return;
      }
    }
  }

  std::vector<Cell> cells_;
  std::uint64_t mask_ = 0;
};

}  // namespace samie
