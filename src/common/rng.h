// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library flows through one of these
// generators so that a (seed, parameters) pair fully determines a run.
// xoshiro256** is used for the bulk stream (fast, 2^256-1 period) and
// SplitMix64 both to seed it and to derive independent child seeds.
#pragma once

#include <array>
#include <cstdint>

namespace samie {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used for seeding and for
/// deriving decorrelated child seeds from a parent seed plus a salt.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31U);
  }

 private:
  std::uint64_t state_;
};

/// Derives a child seed that is statistically independent of other salts.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                                  std::uint64_t salt) noexcept {
  SplitMix64 mix(parent ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  return mix.next();
}

/// xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 mix(seed);
    for (auto& s : state_) s = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17U;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style multiply-shift rejection-free mapping; the tiny modulo
    // bias (< 2^-64 * bound) is irrelevant for simulation workloads.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64U);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11U) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish positive integer with mean approximately `mean` (>= 1).
  /// Used for dependency distances and run lengths.
  std::uint64_t geometric(double mean) noexcept {
    if (mean <= 1.0) return 1;
    const double p = 1.0 / mean;
    std::uint64_t n = 1;
    // Cap the tail so a pathological parameter cannot stall generation.
    while (n < 4096 && !chance(p)) ++n;
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << static_cast<unsigned>(k)) | (x >> static_cast<unsigned>(64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace samie
