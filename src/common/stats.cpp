#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace samie {

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void Histogram::add(std::uint64_t value, std::uint64_t weight) noexcept {
  if (counts_.empty()) return;
  const std::size_t bucket =
      std::min<std::size_t>(static_cast<std::size_t>(value), counts_.size() - 1);
  counts_[bucket] += weight;
  total_ += weight;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  return acc / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double fraction) const noexcept {
  if (total_ == 0) return 0;
  const double target = fraction * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(counts_[i]);
    if (acc >= target) return i;
  }
  return counts_.size() - 1;
}

double Histogram::fraction_at_zero() const noexcept {
  if (total_ == 0) return 1.0;
  return static_cast<double>(counts_[0]) / static_cast<double>(total_);
}

double percent_delta(double value, double baseline) noexcept {
  if (baseline == 0.0) return 0.0;
  return (value - baseline) / baseline * 100.0;
}

double percent_saved(double value, double baseline) noexcept {
  if (baseline == 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

double geometric_mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double arithmetic_mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

}  // namespace samie
