// Bit-scan helpers for the 64-bit occupancy masks the LSQs are built on
// (set-bit walks via `m &= m - 1`, free-slot searches via first zero).
// Shared by SamieLsq and ArbLsq so the two queues' mask code cannot
// silently diverge.
#pragma once

#include <bit>
#include <cstdint>

namespace samie {

/// Index of the lowest set bit (m != 0).
[[nodiscard]] inline std::uint32_t ctz(std::uint64_t m) noexcept {
  return static_cast<std::uint32_t>(std::countr_zero(m));
}

/// First zero bit among the low `limit` bits of the word array `words`
/// (ceil(limit/64) words), or `limit` when all are set.
[[nodiscard]] inline std::uint32_t first_free(const std::uint64_t* words,
                                              std::uint32_t limit) noexcept {
  for (std::uint32_t wi = 0; wi * 64 < limit; ++wi) {
    const std::uint64_t free_bits = ~words[wi];
    if (free_bits != 0) {
      const std::uint32_t i = wi * 64 + ctz(free_bits);
      return i < limit ? i : limit;
    }
  }
  return limit;
}

}  // namespace samie
