// SortedSeqSet: an ordered set of InstSeqs backed by a flat sorted vector.
//
// Replaces std::set on the core's hot path (unplaced stores, ordering-
// waiting loads). Membership stays small (bounded by the ROB), so the
// O(n) memmove of a mid-vector insert/erase beats the red-black tree's
// per-node allocation and pointer chasing — and the squash path becomes a
// truncation.
#pragma once

#include <algorithm>
#include <vector>

#include "src/common/types.h"

namespace samie {

class SortedSeqSet {
 public:
  void reserve(std::size_t n) { v_.reserve(n); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
  /// Smallest element; undefined when empty.
  [[nodiscard]] InstSeq min() const noexcept { return v_.front(); }

  [[nodiscard]] auto begin() const noexcept { return v_.begin(); }
  [[nodiscard]] auto end() const noexcept { return v_.end(); }

  void insert(InstSeq s) {
    // Hot case: elements arrive in increasing order (program order).
    if (v_.empty() || v_.back() < s) {
      v_.push_back(s);
      return;
    }
    const auto it = std::lower_bound(v_.begin(), v_.end(), s);
    if (it == v_.end() || *it != s) v_.insert(it, s);
  }

  void erase(InstSeq s) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), s);
    if (it != v_.end() && *it == s) v_.erase(it);
  }

  /// Removes every element >= s (squash).
  void erase_from(InstSeq s) {
    v_.resize(static_cast<std::size_t>(
        std::lower_bound(v_.begin(), v_.end(), s) - v_.begin()));
  }

  /// Removes the first `k` (smallest) elements in one compaction.
  void erase_prefix(std::size_t k) {
    v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(k));
  }

  void clear() noexcept { v_.clear(); }

 private:
  std::vector<InstSeq> v_;
};

}  // namespace samie
