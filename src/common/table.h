// ASCII table rendering for benches and examples.
//
// Every reproduction binary prints paper-style tables ("paper reports X,
// we measure Y"); this tiny formatter keeps them aligned and consistent.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace samie {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` decimals.
  static std::string num(double v, int precision = 2);
  /// Convenience: formats a percentage with sign, e.g. "+1.25%".
  static std::string pct(double v, int precision = 2);

  /// Renders with box-drawing rules to `os`.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace samie
