// RingDeque<T>: a power-of-two ring buffer with deque semantics.
//
// The core's scheduling queues (ready lists, fetch queue) are bounded by
// configuration (ROB size, fetch-queue depth), but std::deque allocates
// and frees chunk nodes as elements stream through it. This ring is
// reserved once and never allocates in steady state; it grows (doubling,
// order-preserving) only if a caller under-reserved.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace samie {

template <typename T>
class RingDeque {
 public:
  RingDeque() : data_(kMinCapacity), mask_(kMinCapacity - 1) {}

  /// Ensures capacity for at least `n` elements without future growth.
  void reserve(std::size_t n) {
    if (n > data_.size()) regrow(std::bit_ceil(n));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] T& front() noexcept {
    assert(size_ > 0);
    return data_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(size_ > 0);
    return data_[head_];
  }
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[(head_ + i) & mask_];
  }

  // By value: a self-aliased insert (q.push_back(q.front())) must not
  // read through a reference regrow() just invalidated.
  void push_back(T v) {
    if (size_ == data_.size()) regrow(data_.size() * 2);
    data_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }
  void push_front(T v) {
    if (size_ == data_.size()) regrow(data_.size() * 2);
    head_ = (head_ + data_.size() - 1) & mask_;
    data_[head_] = std::move(v);
    ++size_;
  }
  void pop_front() noexcept {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }
  [[nodiscard]] T& back() noexcept {
    assert(size_ > 0);
    return data_[(head_ + size_ - 1) & mask_];
  }
  [[nodiscard]] const T& back() const noexcept {
    assert(size_ > 0);
    return data_[(head_ + size_ - 1) & mask_];
  }
  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

  /// Removes every element matching `pred`, preserving order.
  template <typename Pred>
  void erase_if(Pred pred) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const T& v = data_[(head_ + i) & mask_];
      if (!pred(v)) {
        data_[(head_ + kept) & mask_] = v;
        ++kept;
      }
    }
    size_ = kept;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  void regrow(std::size_t new_cap) {
    std::vector<T> bigger(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = data_[(head_ + i) & mask_];
    }
    data_ = std::move(bigger);
    head_ = 0;
    mask_ = data_.size() - 1;
  }

  std::vector<T> data_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace samie
