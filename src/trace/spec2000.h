// Synthetic stand-ins for the 26 SPEC CPU2000 programs the paper evaluates.
//
// Each profile is tuned so the *properties the SAMIE-LSQ evaluation
// depends on* match the paper's per-program observations (DESIGN.md S9):
//
//   * in-flight cache-line sharing degree (drives Dcache/DTLB reuse,
//     Figures 9/10: ammp/swim highest, sixtrack lowest, mcf low TLB reuse);
//   * bank concentration of the line addresses (drives SharedLSQ pressure
//     and deadlocks, Figures 3/6: ammp >> apsi/mgrid/facerec/art > rest);
//   * LSQ occupancy pressure (drives the IPC deltas of Figure 5:
//     facerec/fma3d exceed a 128-entry conventional LSQ and *gain*);
//   * instruction mix / ILP / branch behaviour (drives baseline IPC).
//
// The absolute IPCs of the real Alpha binaries are not reproduced — the
// shapes of the paper's figures are. See DESIGN.md, substitution 1.
#pragma once

#include <string>
#include <vector>

#include "src/trace/workload.h"

namespace samie::trace {

/// Names of all 26 programs in the paper's figure order.
[[nodiscard]] const std::vector<std::string>& spec2000_names();

/// True if `name` is one of the 12 integer programs.
[[nodiscard]] bool spec2000_is_int(const std::string& name);

/// Profile for one program; throws std::out_of_range for unknown names.
[[nodiscard]] WorkloadProfile spec2000_profile(const std::string& name);

/// All 26 profiles in figure order.
[[nodiscard]] std::vector<WorkloadProfile> spec2000_all();

}  // namespace samie::trace
