// TraceSource: one owner type for trace storage of any provenance.
//
// The simulator, tools and benches all consume TraceView; a TraceSource
// pairs such a view with whatever keeps it alive — an owned in-RAM Trace
// (generated or imported) or an mmap-backed MappedTrace (zero-copy
// replay). Sweep infrastructure holds `shared_ptr<const TraceSource>` so
// N workers replaying one program share a single mapping instead of N
// ~70 MB heap copies.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "src/trace/trace_io.h"
#include "src/trace/trace_view.h"
#include "src/trace/workload.h"

namespace samie::trace {

class TraceSource {
 public:
  /// Generates `n` instructions of the given profile in RAM.
  [[nodiscard]] static TraceSource generate(const WorkloadProfile& profile,
                                            std::uint64_t seed,
                                            std::uint64_t n);
  /// Takes ownership of an existing trace.
  [[nodiscard]] static TraceSource from_trace(Trace t);
  /// Opens a SAMT file, autodetecting the version by its header. v1
  /// mmaps (zero-copy, shared page cache across processes and workers);
  /// v2 decodes its guarded blocks into an owned Trace. Throws
  /// TraceFormatError on malformed files (TraceCorruptError for damaged
  /// v2 files). For v1 the checksum pass touches every page once;
  /// `verify_checksum = false` skips it for replay hot paths that
  /// re-open an already-verified trace (v2 blocks are always verified —
  /// their guards are checked as a side effect of decoding).
  [[nodiscard]] static TraceSource open_samt(const std::string& path,
                                             bool verify_checksum = true);
  /// Opens records [begin, end) of a SAMT file (clamped to the trace):
  /// the shard-replay entry point. v1 windows the mapping; v2 decodes
  /// only the covering blocks, so damage outside the range is never
  /// touched.
  [[nodiscard]] static TraceSource open_samt_range(const std::string& path,
                                                   std::uint64_t begin,
                                                   std::uint64_t end,
                                                   bool verify_checksum = true);
  /// Reads a SAMT file into an owned in-RAM copy (TraceReader path).
  [[nodiscard]] static TraceSource read_samt(const std::string& path);
  /// Imports a plain-text trace (grammar: docs/TRACE_FORMAT.md).
  [[nodiscard]] static TraceSource import_text(const std::string& path);

  [[nodiscard]] TraceView view() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return view().size(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// True when backed by a file mapping rather than heap memory.
  [[nodiscard]] bool is_mapped() const noexcept {
    return std::holds_alternative<MappedTrace>(storage_);
  }
  /// For mapped sources: drop resident pages now (MADV_DONTNEED; see
  /// MappedTrace::advise_dontneed). No-op for in-RAM traces. Call when
  /// the last consumer of this source is done but the object itself
  /// lives on (e.g. in a sweep's trace cache).
  void advise_dontneed() const noexcept {
    if (const auto* m = std::get_if<MappedTrace>(&storage_)) {
      m->advise_dontneed();
    }
  }

 private:
  TraceSource(std::variant<Trace, MappedTrace> storage, std::string name,
              std::uint64_t seed)
      : storage_(std::move(storage)), name_(std::move(name)), seed_(seed) {}

  std::variant<Trace, MappedTrace> storage_;
  std::string name_;
  std::uint64_t seed_ = 0;
  /// Range-opened sources expose a window of the backing storage; the
  /// defaults expose all of it.
  std::size_t view_offset_ = 0;
  std::size_t view_len_ = ~std::size_t{0};
};

}  // namespace samie::trace
