// The dynamic instruction (micro-op) record the simulator consumes.
//
// Traces are fully materialized, immutable vectors of MicroOp. A MicroOp
// carries everything the timing model needs (operands, class, address) and
// everything the *correctness* checks need (store values and the
// program-order-correct expected value of every load, precomputed by the
// generator's oracle memory).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace samie::trace {

enum class OpClass : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMul,
  kFpDiv,
  kLoad,
  kStore,
  kBranch,
  kNop,
};

[[nodiscard]] constexpr bool is_mem(OpClass op) noexcept {
  return op == OpClass::kLoad || op == OpClass::kStore;
}
[[nodiscard]] constexpr bool is_fp(OpClass op) noexcept {
  return op == OpClass::kFpAlu || op == OpClass::kFpMul || op == OpClass::kFpDiv;
}
[[nodiscard]] const char* op_class_name(OpClass op) noexcept;

/// One dynamic instruction. Compact POD: traces hold hundreds of
/// thousands of these and are shared read-only across worker threads.
struct MicroOp {
  Addr pc = 0;
  /// Effective address (loads/stores only).
  Addr mem_addr = 0;
  /// Branch target (branches only).
  Addr br_target = 0;
  /// Stores: the value written. Loads: the program-order-correct value the
  /// load must observe (oracle value, used by tests).
  std::uint64_t value = 0;
  OpClass op = OpClass::kNop;
  /// Access size in bytes (loads/stores): 4 or 8, naturally aligned.
  std::uint8_t mem_size = 0;
  RegId src1 = kNoReg;
  RegId src2 = kNoReg;
  RegId dst = kNoReg;
  /// Branches: actual direction.
  bool taken = false;
};

static_assert(sizeof(MicroOp) <= 48, "MicroOp should stay compact");

/// An immutable dynamic instruction stream plus its provenance.
struct Trace {
  std::string name;
  std::uint64_t seed = 0;
  std::vector<MicroOp> ops;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
  [[nodiscard]] const MicroOp& operator[](std::size_t i) const noexcept {
    return ops[i];
  }
};

}  // namespace samie::trace
