#include "src/trace/workload.h"

#include <algorithm>
#include <cassert>

namespace samie::trace {

namespace {
constexpr Addr kPageMask = ~0xFFFULL;
constexpr std::uint32_t kLineBytes = 32;
constexpr std::size_t kRecentRing = 64;
}  // namespace

const char* op_class_name(OpClass op) noexcept {
  switch (op) {
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kIntMul: return "int_mul";
    case OpClass::kIntDiv: return "int_div";
    case OpClass::kFpAlu: return "fp_alu";
    case OpClass::kFpMul: return "fp_mul";
    case OpClass::kFpDiv: return "fp_div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
    case OpClass::kNop: return "nop";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(const WorkloadProfile& profile,
                                     std::uint64_t seed)
    : profile_(profile), rng_(derive_seed(seed, 0x7ace)) {
  streams_.resize(profile_.streams.size());
  double total = 0.0;
  for (const auto& s : profile_.streams) total += s.weight;
  double acc = 0.0;
  for (const auto& s : profile_.streams) {
    acc += s.weight / (total > 0.0 ? total : 1.0);
    stream_cdf_.push_back(acc);
  }
  recent_int_.assign(kRecentRing, RegId{1});
  recent_fp_.assign(kRecentRing, RegId{kNumIntRegs});
  // Decorrelate stream starting points.
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    streams_[i].cursor_line = rng_.below(
        std::max<std::uint64_t>(1, profile_.streams[i].footprint_lines));
  }
}

std::vector<std::uint8_t>& WorkloadGenerator::page_for(Addr addr) {
  const Addr base = addr & kPageMask;
  auto [it, inserted] = pages_.try_emplace(base);
  if (inserted) it->second.assign(4096, 0);
  return it->second;
}

void WorkloadGenerator::oracle_store(Addr addr, std::uint32_t bytes,
                                     std::uint64_t value) {
  auto& page = page_for(addr);
  const std::size_t off = static_cast<std::size_t>(addr & 0xFFFULL);
  for (std::uint32_t i = 0; i < bytes; ++i) {
    page[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint64_t WorkloadGenerator::oracle_load(Addr addr, std::uint32_t bytes) {
  auto& page = page_for(addr);
  const std::size_t off = static_cast<std::size_t>(addr & 0xFFFULL);
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(page[off + i]) << (8 * i);
  }
  return v;
}

Addr WorkloadGenerator::next_mem_addr(std::size_t stream_idx, std::uint32_t bytes) {
  const StreamComponent& sc = profile_.streams[stream_idx];
  StreamState& st = streams_[stream_idx];
  const std::uint64_t footprint = std::max<std::uint64_t>(1, sc.footprint_lines);

  if (st.line_left == 0) {
    // Advance the walk to the next line.
    if (sc.jump_p > 0.0 && rng_.chance(sc.jump_p)) {
      st.cursor_line = rng_.below(footprint);
    } else {
      ++st.cursor_line;
    }
    st.line_left = std::max<std::uint32_t>(1, sc.accesses_per_line);
    st.offset = 0;
  }
  --st.line_left;

  // Walk step k touches byte address base + k*line_stride; the footprint
  // wraps in *line-index* space so the region stays bounded while the
  // stride pattern (and hence the bank mapping) is preserved.
  const std::uint64_t step = st.cursor_line % footprint;
  const Addr line_base = stream_region_base(stream_idx) + step * sc.line_stride_bytes;
  const Addr line_aligned = line_base & ~static_cast<Addr>(kLineBytes - 1);

  Addr addr = line_aligned + st.offset;
  st.offset += bytes;
  if (st.offset + bytes > kLineBytes) st.offset = 0;
  return addr & ~static_cast<Addr>(bytes - 1);
}

RegId WorkloadGenerator::pick_source(bool fp) {
  auto& ring = fp ? recent_fp_ : recent_int_;
  const std::uint64_t dist = rng_.geometric(profile_.dep_mean);
  const std::size_t idx = (dist - 1) % ring.size();
  return ring[idx];
}

RegId WorkloadGenerator::pick_dest(bool fp) {
  // Avoid register 0 (hardwired zero in most ISAs) for realism.
  const RegId base = fp ? static_cast<RegId>(kNumIntRegs) : RegId{0};
  const RegId r = static_cast<RegId>(base + 1 + rng_.below(kNumIntRegs - 1));
  auto& ring = fp ? recent_fp_ : recent_int_;
  ring.pop_back();
  ring.insert(ring.begin(), r);
  return r;
}

MicroOp WorkloadGenerator::next_op() {
  MicroOp op;
  op.pc = pc_;

  // Loop bookkeeping: when inside a loop body, count down to the closing
  // branch; the closing branch is taken while iterations remain.
  const bool at_loop_end = loop_body_len_ > 0 && loop_body_left_ == 0;
  if (at_loop_end) {
    // Loop-closing branch: tests the induction variable, which is ready
    // early in real codes — no deep data dependency.
    op.op = OpClass::kBranch;
    op.br_target = loop_start_pc_;
    if (loop_iters_left_ > 1) {
      --loop_iters_left_;
      loop_body_left_ = loop_body_len_;
      op.taken = true;
      pc_ = loop_start_pc_;
    } else {
      loop_body_len_ = 0;
      op.taken = false;
      pc_ += 4;
    }
    return op;
  }

  if (loop_body_len_ == 0) {
    // Start a fresh loop nest.
    loop_body_len_ = std::max<std::uint64_t>(4, rng_.geometric(profile_.avg_loop_body));
    loop_iters_left_ = std::max<std::uint64_t>(1, rng_.geometric(profile_.avg_loop_iters));
    loop_start_pc_ = pc_;
    loop_body_left_ = loop_body_len_;
  }
  --loop_body_left_;

  const double roll = rng_.uniform();
  const double mem_frac = profile_.load_frac + profile_.store_frac;

  if (roll < mem_frac && !profile_.streams.empty()) {
    const bool is_load =
        rng_.uniform() < profile_.load_frac / (mem_frac > 0.0 ? mem_frac : 1.0);
    const double pick = rng_.uniform();
    std::size_t si = 0;
    while (si + 1 < stream_cdf_.size() && pick > stream_cdf_[si]) ++si;
    const std::uint32_t bytes = profile_.streams[si].access_bytes;
    const Addr addr = next_mem_addr(si, bytes);
    op.mem_addr = addr;
    op.mem_size = static_cast<std::uint8_t>(bytes);
    // Address base register: early-ready induction variable unless this
    // profile chases pointers.
    op.src1 = rng_.chance(profile_.addr_dep_p) ? pick_source(false) : kNoReg;
    if (is_load) {
      op.op = OpClass::kLoad;
      op.dst = pick_dest(false);
      op.value = oracle_load(addr, bytes);
    } else {
      op.op = OpClass::kStore;
      op.src2 = pick_source(false);  // data register
      op.value = rng_();
      oracle_store(addr, bytes, op.value);
    }
  } else if (roll < mem_frac + profile_.branch_frac) {
    // Data-dependent branch (entropy) or a forward, mostly-not-taken one.
    // Direction bits train the predictor; the trace's PC flow stays linear
    // so loop-branch PCs remain stable across iterations (trace-driven
    // convention: the fetch unit follows the trace and charges redirects /
    // squashes based on predicted-vs-actual direction).
    op.op = OpClass::kBranch;
    op.src1 = pick_source(false);
    op.br_target = pc_ + 4 + 4 * (1 + (op.pc >> 2) % 16);
    if (rng_.chance(profile_.branch_entropy)) {
      op.taken = rng_.chance(0.5);
    } else {
      op.taken = rng_.chance(0.08);
    }
  } else {
    const bool fp = rng_.chance(profile_.fp_frac);
    double kind = rng_.uniform();
    if (fp) {
      if (kind < profile_.fp_div_frac) op.op = OpClass::kFpDiv;
      else if (kind < profile_.fp_div_frac + profile_.fp_mul_frac) op.op = OpClass::kFpMul;
      else op.op = OpClass::kFpAlu;
    } else {
      if (kind < profile_.int_div_frac) op.op = OpClass::kIntDiv;
      else if (kind < profile_.int_div_frac + profile_.int_mul_frac) op.op = OpClass::kIntMul;
      else op.op = OpClass::kIntAlu;
    }
    op.src1 = pick_source(fp);
    op.src2 = pick_source(fp);
    op.dst = pick_dest(fp);
  }

  pc_ += 4;
  return op;
}

Trace WorkloadGenerator::generate(std::uint64_t n) {
  Trace t;
  t.name = profile_.name;
  t.seed = 0;  // provenance filled by callers that know the original seed
  t.ops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) t.ops.push_back(next_op());
  return t;
}

}  // namespace samie::trace
