// Offline trace analysis: the statistical properties the SAMIE-LSQ design
// rests on (Section 1 of the paper: "many in-flight memory instructions
// access the same cache line" and "in-flight loads/stores access very few
// cache lines with the same low-order bits").
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::trace {

/// Instruction-mix fractions of a trace.
struct MixStats {
  double load_frac = 0.0;
  double store_frac = 0.0;
  double branch_frac = 0.0;
  double fp_frac = 0.0;
  double int_compute_frac = 0.0;
  std::uint64_t count = 0;
};

[[nodiscard]] MixStats compute_mix(TraceView t);

/// Cache-line sharing within a sliding window of `window` instructions
/// (a proxy for the instruction window of the machine).
struct SharingStats {
  /// Mean number of memory accesses per distinct line in the window.
  double accesses_per_line = 0.0;
  /// Fraction of memory accesses whose line was already touched by an
  /// older in-window access ("reuse" accesses — candidates for SAMIE's
  /// way-known / cached-translation path).
  double reuse_fraction = 0.0;
  std::uint64_t mem_accesses = 0;
};

[[nodiscard]] SharingStats compute_sharing(TraceView t, std::size_t window,
                                           std::uint32_t line_bytes = 32);

/// How distinct in-flight lines spread over `banks` address-indexed banks.
struct BankSpreadStats {
  /// Mean distinct lines mapping to the most-loaded bank per window.
  double max_lines_per_bank = 0.0;
  /// Mean distinct lines per *occupied* bank.
  double mean_lines_per_occupied_bank = 0.0;
  /// Mean number of distinct lines per window.
  double mean_distinct_lines = 0.0;
};

[[nodiscard]] BankSpreadStats compute_bank_spread(TraceView t, std::size_t window,
                                                  std::uint32_t banks,
                                                  std::uint32_t line_bytes = 32);

}  // namespace samie::trace
