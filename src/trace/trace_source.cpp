#include "src/trace/trace_source.h"

#include <utility>

namespace samie::trace {

TraceSource TraceSource::generate(const WorkloadProfile& profile,
                                  std::uint64_t seed, std::uint64_t n) {
  WorkloadGenerator gen(profile, seed);
  Trace t = gen.generate(n);
  return from_trace(std::move(t));
}

TraceSource TraceSource::from_trace(Trace t) {
  std::string name = t.name;
  const std::uint64_t seed = t.seed;
  return TraceSource(std::move(t), std::move(name), seed);
}

TraceSource TraceSource::open_samt(const std::string& path,
                                   bool verify_checksum) {
  MappedTrace mapped(path, verify_checksum);
  std::string name = mapped.name();
  const std::uint64_t seed = mapped.header().seed;
  return TraceSource(std::move(mapped), std::move(name), seed);
}

TraceSource TraceSource::read_samt(const std::string& path) {
  return from_trace(TraceReader(path).read_all());
}

TraceSource TraceSource::import_text(const std::string& path) {
  return from_trace(import_text_trace(path));
}

TraceView TraceSource::view() const noexcept {
  if (const auto* owned = std::get_if<Trace>(&storage_)) return *owned;
  return std::get<MappedTrace>(storage_).view();
}

}  // namespace samie::trace
