#include "src/trace/trace_source.h"

#include <utility>

namespace samie::trace {

TraceSource TraceSource::generate(const WorkloadProfile& profile,
                                  std::uint64_t seed, std::uint64_t n) {
  WorkloadGenerator gen(profile, seed);
  Trace t = gen.generate(n);
  return from_trace(std::move(t));
}

TraceSource TraceSource::from_trace(Trace t) {
  std::string name = t.name;
  const std::uint64_t seed = t.seed;
  return TraceSource(std::move(t), std::move(name), seed);
}

TraceSource TraceSource::open_samt(const std::string& path,
                                   bool verify_checksum) {
  if (read_samt_header(path).version == kSamtVersion2) {
    return from_trace(TraceV2Reader(path).read_all());
  }
  MappedTrace mapped(path, verify_checksum);
  std::string name = mapped.name();
  const std::uint64_t seed = mapped.header().seed;
  return TraceSource(std::move(mapped), std::move(name), seed);
}

TraceSource TraceSource::open_samt_range(const std::string& path,
                                         std::uint64_t begin,
                                         std::uint64_t end,
                                         bool verify_checksum) {
  if (read_samt_header(path).version == kSamtVersion2) {
    const TraceV2Reader reader(path);
    Trace t;
    t.name = reader.name();
    t.seed = reader.header().seed;
    t.ops = reader.read_range(begin, end);
    return from_trace(std::move(t));
  }
  MappedTrace mapped(path, verify_checksum);
  std::string name = mapped.name();
  const std::uint64_t seed = mapped.header().seed;
  TraceSource src(std::move(mapped), std::move(name), seed);
  if (end > src.size()) end = src.size();
  if (begin > end) begin = end;
  src.view_offset_ = static_cast<std::size_t>(begin);
  src.view_len_ = static_cast<std::size_t>(end - begin);
  return src;
}

TraceSource TraceSource::read_samt(const std::string& path) {
  if (read_samt_header(path).version == kSamtVersion2) {
    return from_trace(TraceV2Reader(path).read_all());
  }
  return from_trace(TraceReader(path).read_all());
}

TraceSource TraceSource::import_text(const std::string& path) {
  return from_trace(import_text_trace(path));
}

TraceView TraceSource::view() const noexcept {
  TraceView base;
  if (const auto* owned = std::get_if<Trace>(&storage_)) {
    base = *owned;
  } else {
    base = std::get<MappedTrace>(storage_).view();
  }
  return base.subview(view_offset_, view_len_);
}

}  // namespace samie::trace
