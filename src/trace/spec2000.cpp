#include "src/trace/spec2000.h"

#include <stdexcept>

namespace samie::trace {

namespace {

/// Shorthand builder for one address-stream component.
[[nodiscard]] StreamComponent stream(double weight, std::uint64_t footprint_lines,
                                     std::uint64_t line_stride, std::uint32_t per_line,
                                     std::uint32_t bytes, double jump_p = 0.0) {
  StreamComponent s;
  s.weight = weight;
  s.footprint_lines = footprint_lines;
  s.line_stride_bytes = line_stride;
  s.accesses_per_line = per_line;
  s.access_bytes = bytes;
  s.jump_p = jump_p;
  return s;
}

/// A hot stack/scalar-spill region: few lines, heavily reused.
[[nodiscard]] StreamComponent stack_stream(double weight) {
  return stream(weight, 12, 32, 4, 8, 0.35);
}

/// Common integer-program skeleton.
[[nodiscard]] WorkloadProfile int_base(std::string name) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.load_frac = 0.26;
  p.store_frac = 0.11;
  p.branch_frac = 0.17;
  p.fp_frac = 0.02;
  p.branch_entropy = 0.25;
  p.avg_loop_iters = 12.0;
  p.avg_loop_body = 20.0;
  p.dep_mean = 4.0;
  p.addr_dep_p = 0.35;
  return p;
}

/// Common floating-point-program skeleton.
[[nodiscard]] WorkloadProfile fp_base(std::string name) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.load_frac = 0.28;
  p.store_frac = 0.12;
  p.branch_frac = 0.06;
  p.fp_frac = 0.85;
  p.branch_entropy = 0.04;
  p.avg_loop_iters = 80.0;
  p.avg_loop_body = 40.0;
  p.dep_mean = 10.0;
  p.addr_dep_p = 0.08;
  return p;
}

}  // namespace

const std::vector<std::string>& spec2000_names() {
  static const std::vector<std::string> names = {
      "ammp",   "applu",  "apsi",    "art",    "bzip2",    "crafty", "eon",
      "equake", "facerec", "fma3d",  "galgel", "gap",      "gcc",    "gzip",
      "lucas",  "mcf",    "mesa",    "mgrid",  "parser",   "perlbmk",
      "sixtrack", "swim", "twolf",   "vortex", "vpr",      "wupwise"};
  return names;
}

bool spec2000_is_int(const std::string& name) {
  static const std::vector<std::string> ints = {
      "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
      "mcf",   "parser", "perlbmk", "twolf", "vortex", "vpr"};
  for (const auto& n : ints) {
    if (n == name) return true;
  }
  return false;
}

WorkloadProfile spec2000_profile(const std::string& name) {
  // --------------------------- pathological FP ---------------------------
  // ammp: molecular dynamics over an array-of-structures with a 2KB record
  // pitch — every record lands in the same DistribLSQ bank (64 banks x 32B
  // = 2KB period) while each record is touched ~6 times (highest Dcache /
  // DTLB reuse in the suite and by far the highest SharedLSQ pressure).
  if (name == "ammp") {
    auto p = fp_base(name);
    p.load_frac = 0.30;
    p.store_frac = 0.13;
    // Two concurrent record walks, each pinned to its own bank, fight for
    // the SharedLSQ — the paper's dominant deadlock case (Figure 6).
    p.streams = {stream(0.31, 6000, 2048, 6, 4, 0.04),
                 stream(0.24, 6000, 2048, 6, 4, 0.04),
                 stream(0.24, 4000, 32, 7, 8),
                 stack_stream(0.21)};
    return p;
  }
  // apsi: meso-scale weather; mixed dense walks plus a column (large
  // power-of-two stride) component — moderate bank concentration.
  if (name == "apsi") {
    auto p = fp_base(name);
    p.streams = {stream(0.30, 3000, 2048, 4, 8),
                 stream(0.40, 3000, 32, 4, 8),
                 stack_stream(0.30)};
    return p;
  }
  // art: neural-net image recognition; small footprint, strided scans that
  // rotate over only four banks (512B pitch).
  if (name == "art") {
    auto p = fp_base(name);
    p.load_frac = 0.32;
    p.store_frac = 0.10;
    p.dep_mean = 6.0;
    p.streams = {stream(0.16, 1500, 512, 3, 4, 0.08),
                 stream(0.59, 2000, 32, 3, 4),
                 stack_stream(0.25)};
    return p;
  }
  // facerec: image matching with both a concentrated column walk and a
  // very large dense footprint — high LSQ pressure (it *gains* IPC under
  // SAMIE thanks to the larger effective capacity) and high SharedLSQ use.
  if (name == "facerec") {
    auto p = fp_base(name);
    p.load_frac = 0.42;
    p.store_frac = 0.12;
    p.dep_mean = 14.0;
    p.streams = {stream(0.16, 20000, 2048, 4, 4, 0.02),
                 stream(0.64, 30000, 32, 4, 4),
                 stack_stream(0.20)};
    return p;
  }
  // mgrid: multigrid stencil; dense sweeps plus a 1KB-pitch plane walk
  // that alternates between two banks.
  if (name == "mgrid") {
    auto p = fp_base(name);
    p.streams = {stream(0.27, 8000, 1024, 3, 8),
                 stream(0.58, 8000, 32, 5, 8),
                 stack_stream(0.15)};
    return p;
  }

  // ----------------------------- regular FP ------------------------------
  if (name == "swim") {  // shallow-water stencil: highest dense-line reuse
    auto p = fp_base(name);
    p.streams = {stream(0.50, 12000, 32, 7, 8),
                 stream(0.40, 12000, 32, 6, 8),
                 stack_stream(0.10)};
    return p;
  }
  if (name == "applu") {
    auto p = fp_base(name);
    p.streams = {stream(0.45, 9000, 32, 5, 8),
                 stream(0.40, 9000, 32, 4, 8),
                 stack_stream(0.15)};
    return p;
  }
  if (name == "equake") {
    auto p = fp_base(name);
    p.branch_frac = 0.10;
    p.dep_mean = 7.0;
    p.streams = {stream(0.40, 16000, 32, 4, 8, 0.10),
                 stream(0.35, 8000, 32, 3, 8, 0.30),
                 stack_stream(0.25)};
    return p;
  }
  if (name == "fma3d") {  // crash simulation: load-heavy, huge footprint,
    auto p = fp_base(name);  // gains IPC from SAMIE's capacity
    p.load_frac = 0.40;
    p.store_frac = 0.12;
    p.dep_mean = 13.0;
    p.streams = {stream(0.45, 40000, 32, 4, 8),
                 stream(0.35, 24000, 32, 4, 8, 0.05),
                 stack_stream(0.20)};
    return p;
  }
  if (name == "galgel") {
    auto p = fp_base(name);
    p.streams = {stream(0.45, 6000, 32, 5, 8),
                 stream(0.35, 6000, 32, 4, 8),
                 stack_stream(0.20)};
    return p;
  }
  if (name == "lucas") {
    auto p = fp_base(name);
    p.streams = {stream(0.50, 20000, 32, 4, 8),
                 stream(0.35, 20000, 32, 3, 8),
                 stack_stream(0.15)};
    return p;
  }
  if (name == "mesa") {  // 3D rendering: FP/INT mix, moderate reuse
    auto p = fp_base(name);
    p.fp_frac = 0.55;
    p.branch_frac = 0.12;
    p.branch_entropy = 0.12;
    p.dep_mean = 6.0;
    p.streams = {stream(0.40, 4000, 32, 4, 4),
                 stream(0.30, 8000, 32, 3, 4, 0.20),
                 stack_stream(0.30)};
    return p;
  }
  if (name == "sixtrack") {  // particle tracking: lowest line reuse
    auto p = fp_base(name);
    p.dep_mean = 8.0;
    p.load_frac = 0.23;
    p.store_frac = 0.10;
    p.streams = {stream(0.40, 10000, 32, 2, 8),
                 stream(0.33, 10000, 64, 2, 8),
                 stack_stream(0.27)};
    return p;
  }
  if (name == "wupwise") {
    auto p = fp_base(name);
    p.streams = {stream(0.50, 14000, 32, 4, 8),
                 stream(0.35, 14000, 32, 3, 8),
                 stack_stream(0.15)};
    return p;
  }

  // ------------------------------- integer --------------------------------
  if (name == "bzip2") {
    auto p = int_base(name);
    p.streams = {stream(0.40, 16000, 32, 4, 4),
                 stream(0.25, 8000, 32, 3, 4, 0.50),
                 stack_stream(0.35)};
    return p;
  }
  if (name == "crafty") {  // chess: branchy, tiny footprint
    auto p = int_base(name);
    p.branch_frac = 0.20;
    p.branch_entropy = 0.30;
    p.streams = {stream(0.35, 2000, 32, 4, 8, 0.40),
                 stream(0.25, 1000, 32, 4, 8, 0.30),
                 stack_stream(0.40)};
    return p;
  }
  if (name == "eon") {  // C++ ray tracer
    auto p = int_base(name);
    p.fp_frac = 0.25;
    p.branch_entropy = 0.18;
    p.streams = {stream(0.35, 3000, 32, 4, 8, 0.25),
                 stream(0.25, 2000, 32, 3, 8, 0.25),
                 stack_stream(0.40)};
    return p;
  }
  if (name == "gap") {
    auto p = int_base(name);
    p.streams = {stream(0.40, 12000, 32, 4, 4, 0.15),
                 stream(0.25, 12000, 32, 3, 4, 0.40),
                 stack_stream(0.35)};
    return p;
  }
  if (name == "gcc") {  // pointer-heavy, unpredictable branches
    auto p = int_base(name);
    p.branch_frac = 0.19;
    p.branch_entropy = 0.35;
    p.addr_dep_p = 0.50;
    p.streams = {stream(0.35, 24000, 32, 4, 4, 0.55),
                 stream(0.25, 8000, 32, 4, 4, 0.25),
                 stack_stream(0.40)};
    return p;
  }
  if (name == "gzip") {
    auto p = int_base(name);
    p.streams = {stream(0.45, 8000, 32, 5, 4),
                 stream(0.25, 4000, 32, 3, 4, 0.35),
                 stack_stream(0.30)};
    return p;
  }
  if (name == "mcf") {  // sparse-graph pointer chasing over a huge arena:
    auto p = int_base(name);  // lowest DTLB reuse in the suite
    p.load_frac = 0.30;
    p.store_frac = 0.09;
    p.branch_entropy = 0.28;
    p.dep_mean = 3.0;
    p.addr_dep_p = 0.70;
    p.streams = {stream(0.55, 1000000, 32, 4, 8, 0.90),
                 stream(0.20, 4000, 32, 2, 8),
                 stack_stream(0.25)};
    return p;
  }
  if (name == "parser") {
    auto p = int_base(name);
    p.branch_entropy = 0.30;
    p.streams = {stream(0.35, 10000, 32, 4, 4, 0.45),
                 stream(0.25, 4000, 32, 5, 4),
                 stack_stream(0.40)};
    return p;
  }
  if (name == "perlbmk") {
    auto p = int_base(name);
    p.branch_frac = 0.20;
    p.branch_entropy = 0.30;
    p.streams = {stream(0.35, 12000, 32, 4, 4, 0.40),
                 stream(0.25, 6000, 32, 5, 4),
                 stack_stream(0.40)};
    return p;
  }
  if (name == "twolf") {  // place&route: random small-structure access
    auto p = int_base(name);
    p.branch_entropy = 0.30;
    p.streams = {stream(0.40, 6000, 32, 4, 8, 0.55),
                 stream(0.25, 3000, 32, 4, 8, 0.25),
                 stack_stream(0.35)};
    return p;
  }
  if (name == "vortex") {  // object database
    auto p = int_base(name);
    p.branch_entropy = 0.18;
    p.streams = {stream(0.40, 20000, 32, 4, 4, 0.25),
                 stream(0.25, 10000, 32, 3, 4, 0.35),
                 stack_stream(0.35)};
    return p;
  }
  if (name == "vpr") {
    auto p = int_base(name);
    p.branch_entropy = 0.28;
    p.streams = {stream(0.40, 8000, 32, 4, 4, 0.45),
                 stream(0.25, 4000, 32, 4, 4, 0.20),
                 stack_stream(0.35)};
    return p;
  }

  throw std::out_of_range("unknown SPEC2000 program: " + name);
}

std::vector<WorkloadProfile> spec2000_all() {
  std::vector<WorkloadProfile> v;
  v.reserve(spec2000_names().size());
  for (const auto& n : spec2000_names()) v.push_back(spec2000_profile(n));
  return v;
}

}  // namespace samie::trace
