// SAMT — the repo's versioned binary trace format — plus a plain-text
// import path for traces recorded by external simulators.
//
// Layout (all fields little-endian):
//
//   [SamtHeader: 64 bytes]  magic "SAMTRACE", version, record size,
//                           record count, generator seed, FNV-1a checksum
//                           of the record bytes, NUL-padded profile name
//   [count x MicroOp: 40 bytes each]  the in-memory record, verbatim,
//                           with padding bytes zeroed by the writer
//
// Because the on-disk record *is* the in-memory `MicroOp` (layout pinned
// by static_asserts below), a reader can either copy the array out
// (TraceReader) or map the file and replay straight from the page cache
// (MappedTrace) — zero copies, and one physical mapping shared by every
// worker replaying the same file. docs/TRACE_FORMAT.md specifies the
// format and its versioning rules.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::trace {

/// Any malformed SAMT or text-trace input: bad magic, version or record
/// size mismatch, truncation, checksum failure, unparseable text line.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How a damaged-but-recognizable SAMT v2 file is broken. The taxonomy is
/// what the sweep scheduler keys quarantine decisions on (torn tails are
/// what a killed import leaves behind; interior corruption and a bad
/// index point at damaged media).
enum class TraceDamage : std::uint8_t {
  kNone = 0,
  /// The file ends early: missing/garbled footer, or a final block cut
  /// short. Everything before the tear is intact.
  kTornTail,
  /// A block in the middle of the file fails its guard; the footer and
  /// index are intact, so every other block is still addressable.
  kInteriorCorrupt,
  /// The footer points at an index that is inconsistent, fails its guard,
  /// or disagrees with the header binding — no block is trustworthy.
  kBadIndex,
};

[[nodiscard]] const char* trace_damage_name(TraceDamage d) noexcept;

/// Structured damage: a TraceFormatError that additionally carries the
/// damage class, the damaged block and its file offset, so the sweep
/// scheduler can quarantine precisely instead of failing generically.
class TraceCorruptError : public TraceFormatError {
 public:
  TraceCorruptError(const std::string& what, TraceDamage damage,
                    std::uint64_t block, std::uint64_t offset)
      : TraceFormatError(what), damage(damage), block(block), offset(offset) {}

  TraceDamage damage;
  std::uint64_t block;   ///< damaged block index (kNoBlock if not per-block)
  std::uint64_t offset;  ///< file byte offset where the damage starts

  static constexpr std::uint64_t kNoBlock = ~std::uint64_t{0};
};

inline constexpr std::uint32_t kSamtVersion = 1;
inline constexpr std::uint32_t kSamtVersion2 = 2;
inline constexpr char kSamtMagic[8] = {'S', 'A', 'M', 'T', 'R', 'A', 'C', 'E'};

#pragma pack(push, 1)
struct SamtHeader {
  char magic[8];                ///< "SAMTRACE" (not NUL-terminated)
  std::uint32_t version = kSamtVersion;
  std::uint32_t record_bytes = 0;  ///< sizeof(MicroOp); rejects layout drift
  std::uint64_t count = 0;         ///< MicroOp records after the header
  std::uint64_t seed = 0;          ///< provenance (generator seed, or 0)
  std::uint64_t checksum = 0;      ///< FNV-1a 64 over all record bytes
  char name[24] = {};              ///< profile/program name, NUL-padded
};
#pragma pack(pop)
static_assert(sizeof(SamtHeader) == 64, "SAMT header is 64 bytes");

// The on-disk record is the in-memory MicroOp; pin the layout so a build
// whose MicroOp drifted cannot silently read or write garbage. A layout
// change requires bumping kSamtVersion (see docs/TRACE_FORMAT.md).
static_assert(std::endian::native == std::endian::little,
              "SAMT I/O assumes a little-endian host");
static_assert(sizeof(MicroOp) == 40);
static_assert(offsetof(MicroOp, pc) == 0);
static_assert(offsetof(MicroOp, mem_addr) == 8);
static_assert(offsetof(MicroOp, br_target) == 16);
static_assert(offsetof(MicroOp, value) == 24);
static_assert(offsetof(MicroOp, op) == 32);
static_assert(offsetof(MicroOp, mem_size) == 33);
static_assert(offsetof(MicroOp, src1) == 34);
static_assert(offsetof(MicroOp, src2) == 35);
static_assert(offsetof(MicroOp, dst) == 36);
static_assert(offsetof(MicroOp, taken) == 37);

/// FNV-1a 64-bit over `n` bytes, continuing from `h` (pass the offset
/// basis for a fresh hash).
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
[[nodiscard]] std::uint64_t fnv1a_64(const void* bytes, std::size_t n,
                                     std::uint64_t h = kFnvBasis) noexcept;

/// Streaming SAMT writer. Records are appended in canonical form (padding
/// bytes zeroed, so identical traces produce byte-identical files);
/// `finish()` patches count + checksum into the header and atomically
/// renames the file into place. All writes go to `path + ".tmp"`, so a
/// writer that dies — exception, SIGKILL, full disk — never leaves a
/// partial file at `path`.
class TraceWriter {
 public:
  /// Opens `path + ".tmp"` for writing and emits a provisional header.
  /// Throws TraceFormatError if the file cannot be created.
  TraceWriter(const std::string& path, const std::string& name,
              std::uint64_t seed);
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;
  /// Removes the tmp file if finish() was never called.
  ~TraceWriter();

  void append(const MicroOp& op);
  void append(TraceView ops);
  /// Patches the final header, fsyncs and renames the tmp into place.
  /// Throws on I/O error (the tmp is removed, `path` untouched).
  void finish();

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  SamtHeader header_{};
  std::uint64_t checksum_ = kFnvBasis;
};

/// Convenience: writes a whole trace in one call.
void write_samt(const std::string& path, TraceView ops,
                const std::string& name, std::uint64_t seed);

/// Reads and validates only the 64-byte header (magic, version, record
/// size, file length vs count). Cheap: does not touch the records.
[[nodiscard]] SamtHeader read_samt_header(const std::string& path);

/// Copying reader: validates the header, reads the record array into an
/// owned Trace and verifies the checksum.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] const SamtHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::string name() const;
  /// Reads all records; throws TraceFormatError on truncation or
  /// checksum mismatch.
  [[nodiscard]] Trace read_all() const;

 private:
  std::string path_;
  SamtHeader header_{};
};

/// mmap-backed zero-copy trace. The record array is replayed directly
/// from the page cache; N workers opening the same file share one
/// physical mapping instead of N heap copies.
class MappedTrace {
 public:
  /// Maps `path` read-only and validates header + checksum (the checksum
  /// pass touches every page once; pass verify_checksum=false to defer
  /// faulting to replay).
  explicit MappedTrace(const std::string& path, bool verify_checksum = true);
  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;
  ~MappedTrace();

  [[nodiscard]] const SamtHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(header_.count);
  }
  [[nodiscard]] TraceView view() const noexcept {
    return TraceView{records_, static_cast<std::size_t>(header_.count)};
  }

  /// Tells the kernel this mapping's pages are no longer needed
  /// (MADV_DONTNEED): resident pages are dropped immediately instead of
  /// lingering until munmap, so long multi-trace sweeps shed page-cache
  /// residency as soon as each trace finishes. Re-reading afterwards is
  /// still valid (pages fault back in from the page cache / file).
  void advise_dontneed() const noexcept;

 private:
  void unmap() noexcept;

  SamtHeader header_{};
  void* map_ = nullptr;        ///< whole-file mapping (header + records)
  std::size_t map_len_ = 0;
  const MicroOp* records_ = nullptr;
};

// ------------------------------------------------------------- SAMT v2 --
//
// Version 2 keeps the 64-byte SamtHeader but replaces the raw record
// array with guarded, delta-encoded blocks plus a footer index:
//
//   [SamtHeader]            version = 2; `checksum` is FNV-1a over the
//                           whole index region (binds header <-> index)
//   [block]*                32-byte SamtBlockHeader + varint payload,
//                           each guarded by its own FNV-1a
//   [index region]          u32 "SIDX" magic, u32 block_count,
//                           block_count x SamtIndexEntry, u64 guard
//                           (FNV-1a over everything before the guard)
//   [SamtFooter: 32 bytes]  "SAMTIDX2", index offset + size, guard
//
// Delta state (previous pc, previous memory address) resets at every
// block boundary, so any block decodes independently of its neighbors —
// that is what makes O(1) random seeks and block-aligned sharded replay
// possible. Full layout and damage taxonomy: docs/TRACE_FORMAT.md.

inline constexpr std::uint32_t kBlockMagic = 0x4B4C4253;   // "SBLK" (LE)
inline constexpr std::uint32_t kIndexMagic = 0x58444953;   // "SIDX" (LE)
inline constexpr char kFooterMagic[8] = {'S', 'A', 'M', 'T',
                                         'I', 'D', 'X', '2'};
/// Default records per block: big enough to amortize headers and let the
/// deltas compress, small enough that damage costs little and shard
/// boundaries stay fine-grained.
inline constexpr std::uint32_t kDefaultBlockRecords = 4096;

#pragma pack(push, 1)
struct SamtBlockHeader {
  std::uint32_t magic = kBlockMagic;
  std::uint32_t record_count = 0;
  std::uint64_t first_record = 0;  ///< global index of the first record
  std::uint32_t payload_bytes = 0;
  std::uint32_t reserved = 0;
  /// FNV-1a over the 24 header bytes above, continued over the payload.
  std::uint64_t guard = 0;
};

struct SamtIndexEntry {
  std::uint64_t file_offset = 0;  ///< of the SamtBlockHeader
  std::uint64_t first_record = 0;
  std::uint32_t record_count = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t guard = 0;  ///< copy of the block's guard
};

struct SamtFooter {
  char magic[8] = {};  ///< "SAMTIDX2"
  std::uint64_t index_offset = 0;
  std::uint64_t index_bytes = 0;  ///< magic + count + entries + guard
  std::uint64_t guard = 0;        ///< FNV-1a over the 24 bytes above
};
#pragma pack(pop)
static_assert(sizeof(SamtBlockHeader) == 32);
static_assert(sizeof(SamtIndexEntry) == 32);
static_assert(sizeof(SamtFooter) == 32);

// ------------------------------------------------------ I/O fault hooks --

/// Deterministic I/O fault injection for the robustness test matrix. A
/// fault armed against a path is consumed by the next reader open
/// (kShortRead, kBitFlipBlock) or writer finish (kEnospcOnImport,
/// kTornImport) touching that path, then disarms itself.
struct IoFault {
  enum class Kind : std::uint8_t {
    kNone = 0,
    /// Reader sees the file `param` bytes shorter than it is (0 = 64):
    /// a torn tail without touching the media.
    kShortRead,
    /// Reader flips one bit in block `param`'s payload after reading it:
    /// interior corruption without touching the media.
    kBitFlipBlock,
    /// Writer finish() fails as if the disk filled before the trace was
    /// sealed. The final path is untouched (v1 removes its tmp; v2 keeps
    /// its tmp for resume).
    kEnospcOnImport,
    /// Writer finish() dies mid-block: a torn tmp file survives (no
    /// index, no rename) exactly as a SIGKILLed import would leave it.
    kTornImport,
  };
  Kind kind = Kind::kNone;
  std::uint64_t param = 0;
};

/// Arms `fault` against `path` (process-global, thread-safe). A default
/// constructed fault disarms.
void set_io_fault(const std::string& path, IoFault fault);
/// Disarms every armed fault (test teardown).
void clear_io_faults();

// ------------------------------------------------------------ v2 health --

/// Per-block verification outcome from a full damage walk.
struct BlockHealth {
  std::uint64_t file_offset = 0;
  std::uint64_t first_record = 0;
  std::uint32_t record_count = 0;
  bool ok = false;
};

/// Full-file damage report: what trace_inspector --verify prints and what
/// the sweep scheduler uses to quarantine only the jobs whose replay
/// range touches a bad block.
struct TraceHealth {
  std::uint32_t version = 0;
  TraceDamage damage = TraceDamage::kNone;
  std::uint64_t record_count = 0;   ///< per the header
  std::uint64_t bad_blocks = 0;
  /// File offset of the first damaged region (block-granular for block
  /// damage); ~0 when clean.
  std::uint64_t first_bad_offset = ~std::uint64_t{0};
  std::vector<BlockHealth> blocks;  ///< empty for kBadIndex / v1

  [[nodiscard]] bool ok() const noexcept {
    return damage == TraceDamage::kNone;
  }
};

/// Walks the whole file (v1 or v2) verifying every guard, and reports
/// damage instead of throwing for it. Throws TraceFormatError only when
/// the file is not a SAMT trace at all (unopenable, bad magic/version).
[[nodiscard]] TraceHealth trace_health(const std::string& path);

// ------------------------------------------------------------ v2 writer --

/// Streaming SAMT v2 writer with atomic, resumable publication. All
/// writes go to `path + ".tmp"`; every completed block is flushed so a
/// killed import loses at most the block in flight; `finish()` writes
/// index + footer, patches the header, fsyncs and renames into place
/// (readers never observe a partial file at `path`). An unfinished tmp
/// is *kept* on destruction — kResume picks its intact blocks back up.
class TraceWriterV2 {
 public:
  enum class Mode : std::uint8_t {
    kTruncate,  ///< start a fresh tmp
    kResume,    ///< keep the intact leading blocks of an existing tmp
  };

  TraceWriterV2(const std::string& path, const std::string& name,
                std::uint64_t seed,
                std::uint32_t block_records = kDefaultBlockRecords,
                Mode mode = Mode::kTruncate);
  TraceWriterV2(const TraceWriterV2&) = delete;
  TraceWriterV2& operator=(const TraceWriterV2&) = delete;
  /// Keeps the tmp file if finish() was never called (resumable).
  ~TraceWriterV2();

  /// Records already durable in the resumed tmp (0 for kTruncate). The
  /// caller appends from this record onward.
  [[nodiscard]] std::uint64_t durable_records() const noexcept;

  void append(const MicroOp& op);
  void append(TraceView ops);
  /// Flushes the final block, writes index + footer, patches the header,
  /// fsyncs and atomically renames the tmp into place.
  void finish();
  /// Explicitly discards the tmp file (the destructor never does).
  void abandon() noexcept;

  [[nodiscard]] static std::string tmp_path_for(const std::string& path) {
    return path + ".tmp";
  }

 private:
  void flush_block();

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  SamtHeader header_{};
  std::uint32_t block_records_ = kDefaultBlockRecords;
  std::uint64_t durable_records_ = 0;
  std::vector<MicroOp> pending_;       ///< records of the open block
  std::vector<SamtIndexEntry> index_;  ///< blocks written so far
  std::uint64_t write_offset_ = 0;     ///< next block's file offset
};

/// Convenience: writes a whole v2 trace in one call.
void write_samt_v2(const std::string& path, TraceView ops,
                   const std::string& name, std::uint64_t seed,
                   std::uint32_t block_records = kDefaultBlockRecords);

// ------------------------------------------------------------ v2 reader --

/// SAMT v2 reader. Construction validates header, footer and index
/// eagerly (classifying damage into TraceCorruptError); block payloads
/// are read and guard-verified lazily, on the first read that touches
/// them — a corrupt block only fails the reads whose range covers it.
class TraceV2Reader {
 public:
  explicit TraceV2Reader(const std::string& path);

  [[nodiscard]] const SamtHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::uint64_t record_count() const noexcept {
    return header_.count;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return index_.size();
  }
  [[nodiscard]] const std::vector<SamtIndexEntry>& index() const noexcept {
    return index_;
  }

  /// Decodes records [begin, end) (clamped to the trace), verifying each
  /// touched block's guard. Throws TraceCorruptError on damage.
  [[nodiscard]] std::vector<MicroOp> read_range(std::uint64_t begin,
                                                std::uint64_t end) const;
  /// Decodes the whole trace.
  [[nodiscard]] Trace read_all() const;

 private:
  std::string path_;
  SamtHeader header_{};
  std::vector<SamtIndexEntry> index_;
  IoFault fault_{};  ///< armed fault consumed at open, applied on reads
};

/// Imports a plain-text trace (one op per line: class, addr, size, dep
/// distances — grammar in docs/TRACE_FORMAT.md). PCs, registers and
/// oracle load values are synthesized so the imported trace satisfies the
/// same invariants as a generated one. Throws TraceFormatError naming the
/// offending line on malformed input.
[[nodiscard]] Trace import_text_trace(const std::string& path);

/// The same importer over an already-read text buffer (`origin` names the
/// source in error messages).
[[nodiscard]] Trace import_text_trace_from_string(const std::string& text,
                                                  const std::string& origin);

}  // namespace samie::trace
