// SAMT — the repo's versioned binary trace format — plus a plain-text
// import path for traces recorded by external simulators.
//
// Layout (all fields little-endian):
//
//   [SamtHeader: 64 bytes]  magic "SAMTRACE", version, record size,
//                           record count, generator seed, FNV-1a checksum
//                           of the record bytes, NUL-padded profile name
//   [count x MicroOp: 40 bytes each]  the in-memory record, verbatim,
//                           with padding bytes zeroed by the writer
//
// Because the on-disk record *is* the in-memory `MicroOp` (layout pinned
// by static_asserts below), a reader can either copy the array out
// (TraceReader) or map the file and replay straight from the page cache
// (MappedTrace) — zero copies, and one physical mapping shared by every
// worker replaying the same file. docs/TRACE_FORMAT.md specifies the
// format and its versioning rules.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::trace {

/// Any malformed SAMT or text-trace input: bad magic, version or record
/// size mismatch, truncation, checksum failure, unparseable text line.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kSamtVersion = 1;
inline constexpr char kSamtMagic[8] = {'S', 'A', 'M', 'T', 'R', 'A', 'C', 'E'};

#pragma pack(push, 1)
struct SamtHeader {
  char magic[8];                ///< "SAMTRACE" (not NUL-terminated)
  std::uint32_t version = kSamtVersion;
  std::uint32_t record_bytes = 0;  ///< sizeof(MicroOp); rejects layout drift
  std::uint64_t count = 0;         ///< MicroOp records after the header
  std::uint64_t seed = 0;          ///< provenance (generator seed, or 0)
  std::uint64_t checksum = 0;      ///< FNV-1a 64 over all record bytes
  char name[24] = {};              ///< profile/program name, NUL-padded
};
#pragma pack(pop)
static_assert(sizeof(SamtHeader) == 64, "SAMT header is 64 bytes");

// The on-disk record is the in-memory MicroOp; pin the layout so a build
// whose MicroOp drifted cannot silently read or write garbage. A layout
// change requires bumping kSamtVersion (see docs/TRACE_FORMAT.md).
static_assert(std::endian::native == std::endian::little,
              "SAMT I/O assumes a little-endian host");
static_assert(sizeof(MicroOp) == 40);
static_assert(offsetof(MicroOp, pc) == 0);
static_assert(offsetof(MicroOp, mem_addr) == 8);
static_assert(offsetof(MicroOp, br_target) == 16);
static_assert(offsetof(MicroOp, value) == 24);
static_assert(offsetof(MicroOp, op) == 32);
static_assert(offsetof(MicroOp, mem_size) == 33);
static_assert(offsetof(MicroOp, src1) == 34);
static_assert(offsetof(MicroOp, src2) == 35);
static_assert(offsetof(MicroOp, dst) == 36);
static_assert(offsetof(MicroOp, taken) == 37);

/// FNV-1a 64-bit over `n` bytes, continuing from `h` (pass the offset
/// basis for a fresh hash).
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
[[nodiscard]] std::uint64_t fnv1a_64(const void* bytes, std::size_t n,
                                     std::uint64_t h = kFnvBasis) noexcept;

/// Streaming SAMT writer. Records are appended in canonical form (padding
/// bytes zeroed, so identical traces produce byte-identical files);
/// `finish()` seeks back and patches count + checksum into the header.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits a provisional header. Throws
  /// TraceFormatError if the file cannot be created.
  TraceWriter(const std::string& path, const std::string& name,
              std::uint64_t seed);
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;
  /// Abandons the file if finish() was never called.
  ~TraceWriter();

  void append(const MicroOp& op);
  void append(TraceView ops);
  /// Patches the final header and closes the file. Throws on I/O error.
  void finish();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  SamtHeader header_{};
  std::uint64_t checksum_ = kFnvBasis;
};

/// Convenience: writes a whole trace in one call.
void write_samt(const std::string& path, TraceView ops,
                const std::string& name, std::uint64_t seed);

/// Reads and validates only the 64-byte header (magic, version, record
/// size, file length vs count). Cheap: does not touch the records.
[[nodiscard]] SamtHeader read_samt_header(const std::string& path);

/// Copying reader: validates the header, reads the record array into an
/// owned Trace and verifies the checksum.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] const SamtHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::string name() const;
  /// Reads all records; throws TraceFormatError on truncation or
  /// checksum mismatch.
  [[nodiscard]] Trace read_all() const;

 private:
  std::string path_;
  SamtHeader header_{};
};

/// mmap-backed zero-copy trace. The record array is replayed directly
/// from the page cache; N workers opening the same file share one
/// physical mapping instead of N heap copies.
class MappedTrace {
 public:
  /// Maps `path` read-only and validates header + checksum (the checksum
  /// pass touches every page once; pass verify_checksum=false to defer
  /// faulting to replay).
  explicit MappedTrace(const std::string& path, bool verify_checksum = true);
  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;
  ~MappedTrace();

  [[nodiscard]] const SamtHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(header_.count);
  }
  [[nodiscard]] TraceView view() const noexcept {
    return TraceView{records_, static_cast<std::size_t>(header_.count)};
  }

  /// Tells the kernel this mapping's pages are no longer needed
  /// (MADV_DONTNEED): resident pages are dropped immediately instead of
  /// lingering until munmap, so long multi-trace sweeps shed page-cache
  /// residency as soon as each trace finishes. Re-reading afterwards is
  /// still valid (pages fault back in from the page cache / file).
  void advise_dontneed() const noexcept;

 private:
  void unmap() noexcept;

  SamtHeader header_{};
  void* map_ = nullptr;        ///< whole-file mapping (header + records)
  std::size_t map_len_ = 0;
  const MicroOp* records_ = nullptr;
};

/// Imports a plain-text trace (one op per line: class, addr, size, dep
/// distances — grammar in docs/TRACE_FORMAT.md). PCs, registers and
/// oracle load values are synthesized so the imported trace satisfies the
/// same invariants as a generated one. Throws TraceFormatError naming the
/// offending line on malformed input.
[[nodiscard]] Trace import_text_trace(const std::string& path);

/// The same importer over an already-read text buffer (`origin` names the
/// source in error messages).
[[nodiscard]] Trace import_text_trace_from_string(const std::string& text,
                                                  const std::string& origin);

}  // namespace samie::trace
