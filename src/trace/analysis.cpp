#include "src/trace/analysis.h"

#include <deque>
#include <unordered_map>

namespace samie::trace {

MixStats compute_mix(TraceView t) {
  MixStats m;
  m.count = t.size();
  if (t.size() == 0) return m;
  std::uint64_t loads = 0, stores = 0, branches = 0, fp = 0, intc = 0;
  for (const auto& op : t) {
    switch (op.op) {
      case OpClass::kLoad: ++loads; break;
      case OpClass::kStore: ++stores; break;
      case OpClass::kBranch: ++branches; break;
      case OpClass::kFpAlu:
      case OpClass::kFpMul:
      case OpClass::kFpDiv: ++fp; break;
      default: ++intc; break;
    }
  }
  const double n = static_cast<double>(t.size());
  m.load_frac = static_cast<double>(loads) / n;
  m.store_frac = static_cast<double>(stores) / n;
  m.branch_frac = static_cast<double>(branches) / n;
  m.fp_frac = static_cast<double>(fp) / n;
  m.int_compute_frac = static_cast<double>(intc) / n;
  return m;
}

SharingStats compute_sharing(TraceView t, std::size_t window,
                             std::uint32_t line_bytes) {
  SharingStats s;
  const Addr line_mask = ~static_cast<Addr>(line_bytes - 1);
  // Sliding window of the line addresses of in-window memory accesses.
  std::deque<Addr> in_window;
  std::unordered_map<Addr, std::uint32_t> line_count;
  std::uint64_t reuse = 0;
  double accesses_per_line_acc = 0.0;
  std::uint64_t samples = 0;

  for (const auto& op : t) {
    if (!is_mem(op.op)) continue;
    const Addr line = op.mem_addr & line_mask;
    if (auto it = line_count.find(line); it != line_count.end() && it->second > 0) {
      ++reuse;
    }
    in_window.push_back(line);
    ++line_count[line];
    ++s.mem_accesses;
    if (in_window.size() > window) {
      const Addr old = in_window.front();
      in_window.pop_front();
      auto it = line_count.find(old);
      if (--it->second == 0) line_count.erase(it);
    }
    // Sample the in-window sharing degree once per window-quantum to keep
    // the statistic cheap and unbiased.
    if (s.mem_accesses % (window / 2 + 1) == 0 && !line_count.empty()) {
      accesses_per_line_acc += static_cast<double>(in_window.size()) /
                               static_cast<double>(line_count.size());
      ++samples;
    }
  }
  s.reuse_fraction =
      s.mem_accesses ? static_cast<double>(reuse) / static_cast<double>(s.mem_accesses)
                     : 0.0;
  s.accesses_per_line = samples ? accesses_per_line_acc / static_cast<double>(samples)
                                : 0.0;
  return s;
}

BankSpreadStats compute_bank_spread(TraceView t, std::size_t window,
                                    std::uint32_t banks, std::uint32_t line_bytes) {
  BankSpreadStats b;
  const Addr line_shift = log2_floor(line_bytes);
  std::deque<Addr> in_window;
  std::unordered_map<Addr, std::uint32_t> line_count;
  double max_acc = 0.0, occ_acc = 0.0, distinct_acc = 0.0;
  std::uint64_t samples = 0;
  std::vector<std::uint32_t> per_bank(banks, 0);

  std::uint64_t mem_seen = 0;
  for (const auto& op : t) {
    if (!is_mem(op.op)) continue;
    const Addr line = op.mem_addr >> line_shift;
    in_window.push_back(line);
    ++line_count[line];
    ++mem_seen;
    if (in_window.size() > window) {
      const Addr old = in_window.front();
      in_window.pop_front();
      auto it = line_count.find(old);
      if (--it->second == 0) line_count.erase(it);
    }
    if (mem_seen % (window / 2 + 1) == 0 && !line_count.empty()) {
      std::fill(per_bank.begin(), per_bank.end(), 0U);
      for (const auto& [l, cnt] : line_count) {
        ++per_bank[static_cast<std::size_t>(l % banks)];
      }
      std::uint32_t mx = 0, occupied = 0, distinct = 0;
      for (std::uint32_t c : per_bank) {
        mx = c > mx ? c : mx;
        occupied += c > 0 ? 1U : 0U;
        distinct += c;
      }
      max_acc += mx;
      occ_acc += occupied ? static_cast<double>(distinct) / occupied : 0.0;
      distinct_acc += distinct;
      ++samples;
    }
  }
  if (samples > 0) {
    const double n = static_cast<double>(samples);
    b.max_lines_per_bank = max_acc / n;
    b.mean_lines_per_occupied_bank = occ_acc / n;
    b.mean_distinct_lines = distinct_acc / n;
  }
  return b;
}

}  // namespace samie::trace
