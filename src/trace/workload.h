// Synthetic workload model.
//
// A WorkloadProfile describes a program statistically; WorkloadGenerator
// turns a (profile, seed, length) triple into a deterministic Trace. The
// memory side is a mixture of address streams, each of which walks cache
// lines with a configurable *intra-line* access count and *inter-line*
// stride:
//
//   * `accesses_per_line` controls how many in-flight instructions share a
//     line — the property SAMIE-LSQ's multi-instruction entries exploit;
//   * `line_stride_bytes` controls how consecutive lines spread over the
//     DistribLSQ banks. Bank count in the paper's configuration is 64 with
//     32-byte lines, so a 2048-byte stride (64*32) maps *every* line of the
//     stream to the same bank — the pathology the paper reports for ammp,
//     apsi, mgrid, facerec and art.
//
// The control side emits loops (predictable backward branches) plus
// data-dependent branches with configurable entropy; the dataflow side
// draws dependency distances from a geometric distribution so issue-level
// ILP is tunable per program.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/trace/instruction.h"

namespace samie::trace {

/// One component of the memory address mixture.
struct StreamComponent {
  /// Relative probability of a memory access using this stream.
  double weight = 1.0;
  /// Region size in cache lines (the walk wraps around).
  std::uint64_t footprint_lines = 1024;
  /// Distance between the *lines* of consecutive walk steps, in bytes.
  /// 32 = dense sequential; 2048 = one line per DistribLSQ bank period.
  std::uint64_t line_stride_bytes = 32;
  /// Consecutive accesses falling in a line before the walk advances.
  std::uint32_t accesses_per_line = 1;
  /// Bytes per access (4 or 8; accesses are naturally aligned).
  std::uint32_t access_bytes = 8;
  /// Probability of abandoning the walk for a random line in the region
  /// (models pointer chasing / hash lookups).
  double jump_p = 0.0;
};

/// Statistical description of one program.
struct WorkloadProfile {
  std::string name = "synthetic";
  /// Fraction of instructions that are loads / stores.
  double load_frac = 0.25;
  double store_frac = 0.12;
  /// Fraction of instructions that are conditional branches.
  double branch_frac = 0.15;
  /// Of non-memory non-branch instructions, fraction that are FP.
  double fp_frac = 0.0;
  /// Within INT compute: multiplier / divider usage.
  double int_mul_frac = 0.05;
  double int_div_frac = 0.01;
  /// Within FP compute: multiplier / divider usage.
  double fp_mul_frac = 0.30;
  double fp_div_frac = 0.03;
  /// Mean iterations of the emitted loops (drives loop-branch
  /// predictability: one mispredict per ~avg_loop_iters).
  double avg_loop_iters = 16.0;
  /// Mean loop-body length in instructions.
  double avg_loop_body = 24.0;
  /// Fraction of branches that are data-dependent coin flips (taken with
  /// p=0.5) rather than loop-closing branches.
  double branch_entropy = 0.15;
  /// Mean register dependency distance; larger = more ILP.
  double dep_mean = 5.0;
  /// Probability that a memory instruction's address depends on an
  /// in-flight value (pointer chasing). Array codes compute addresses from
  /// early-ready induction variables, so this is low for FP workloads and
  /// high for codes like mcf.
  double addr_dep_p = 0.2;
  /// Memory address mixture (must be non-empty for load_frac+store_frac>0).
  std::vector<StreamComponent> streams;
};

/// Deterministic trace generator. Not copyable while generating; cheap to
/// construct per (profile, seed).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadProfile& profile, std::uint64_t seed);

  /// Generates `n` instructions. The returned trace embeds oracle values:
  /// each load's `value` is the program-order-correct loaded value.
  [[nodiscard]] Trace generate(std::uint64_t n);

 private:
  struct StreamState {
    std::uint64_t cursor_line = 0;  ///< line index within the walk sequence
    std::uint32_t line_left = 0;    ///< accesses remaining in current line
    std::uint64_t offset = 0;       ///< next offset within the line
  };

  [[nodiscard]] MicroOp next_op();
  [[nodiscard]] Addr next_mem_addr(std::size_t stream_idx, std::uint32_t bytes);
  [[nodiscard]] RegId pick_source(bool fp);
  [[nodiscard]] RegId pick_dest(bool fp);
  void oracle_store(Addr addr, std::uint32_t bytes, std::uint64_t value);
  [[nodiscard]] std::uint64_t oracle_load(Addr addr, std::uint32_t bytes);

  const WorkloadProfile profile_;
  Xoshiro256 rng_;
  std::vector<StreamState> streams_;
  std::vector<double> stream_cdf_;

  // Loop state machine for the control stream.
  Addr pc_ = 0x00400000;
  Addr loop_start_pc_ = 0;
  std::uint64_t loop_body_left_ = 0;
  std::uint64_t loop_iters_left_ = 0;
  std::uint64_t loop_body_len_ = 0;

  // Recent destination registers, for dependency-distance sampling.
  std::vector<RegId> recent_int_;
  std::vector<RegId> recent_fp_;

  // Oracle memory: 4KB pages of bytes, program-order semantics.
  std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
  [[nodiscard]] std::vector<std::uint8_t>& page_for(Addr addr);
};

/// Region base addresses handed to streams, spaced far apart so streams
/// never alias. Bases are line-aligned but *staggered* by 37 lines per
/// stream so that two power-of-two-strided streams map to different
/// DistribLSQ banks (64 MiB-aligned bases would all collide on bank 0).
[[nodiscard]] constexpr Addr stream_region_base(std::size_t i) noexcept {
  return 0x10000000ULL + static_cast<Addr>(i) * (0x04000000ULL + 37 * 32);
}

}  // namespace samie::trace
