// TraceView: a non-owning (pointer, length) window over MicroOps.
//
// Every trace producer — the in-RAM WorkloadGenerator, the mmap-backed
// MappedTrace, the plain-text importer — converts to a TraceView, and
// every consumer (Core, run_simulation, the analysis functions, the perf
// harness) reads through one. The view is two words, passed by value, and
// the indexing it offers is identical to what Core compiled against when
// it held `const Trace&`, so the hot fetch path pays nothing for the
// indirection.
#pragma once

#include <cstddef>

#include "src/trace/instruction.h"

namespace samie::trace {

class TraceView {
 public:
  constexpr TraceView() noexcept = default;
  constexpr TraceView(const MicroOp* data, std::size_t count) noexcept
      : data_(data), count_(count) {}
  /// Implicit on purpose: every `run_simulation(cfg, trace)` /
  /// `Core(cfg, trace, ...)` call site keeps compiling unchanged.
  constexpr TraceView(const Trace& t) noexcept  // NOLINT(google-explicit-constructor)
      : data_(t.ops.data()), count_(t.ops.size()) {}

  [[nodiscard]] constexpr std::size_t size() const noexcept { return count_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] constexpr const MicroOp* data() const noexcept { return data_; }
  [[nodiscard]] constexpr const MicroOp& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] constexpr const MicroOp* begin() const noexcept { return data_; }
  [[nodiscard]] constexpr const MicroOp* end() const noexcept {
    return data_ + count_;
  }
  /// Sub-window [first, first + n), clamped to the view.
  [[nodiscard]] constexpr TraceView subview(std::size_t first,
                                            std::size_t n) const noexcept {
    if (first > count_) first = count_;
    if (n > count_ - first) n = count_ - first;
    return TraceView{data_ + first, n};
  }

 private:
  const MicroOp* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace samie::trace
