#include "src/trace/trace_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace samie::trace {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Writes the record into `dst` in canonical form: the MicroOp fields
/// copied one by one into a zeroed staging object whose full object
/// representation is then memcpy'd, so padding bytes are
/// deterministically zero and the same trace always produces
/// byte-identical files (copy *assignment* would not do — it need not
/// preserve padding).
void canonical_record(const MicroOp& op, MicroOp* dst) noexcept {
  MicroOp r;
  std::memset(static_cast<void*>(&r), 0, sizeof r);
  r.pc = op.pc;
  r.mem_addr = op.mem_addr;
  r.br_target = op.br_target;
  r.value = op.value;
  r.op = op.op;
  r.mem_size = op.mem_size;
  r.src1 = op.src1;
  r.src2 = op.src2;
  r.dst = op.dst;
  r.taken = op.taken;
  std::memcpy(static_cast<void*>(dst), &r, sizeof r);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw TraceFormatError(path + ": " + what);
}

void validate_header(const std::string& path, const SamtHeader& h,
                     std::uint64_t file_bytes) {
  if (std::memcmp(h.magic, kSamtMagic, sizeof kSamtMagic) != 0) {
    fail(path, "not a SAMT trace (bad magic)");
  }
  if (h.version != kSamtVersion && h.version != kSamtVersion2) {
    fail(path, "unsupported SAMT version " + std::to_string(h.version) +
                   " (this build reads versions 1 and 2)");
  }
  if (h.record_bytes != sizeof(MicroOp)) {
    fail(path, "record size " + std::to_string(h.record_bytes) +
                   " does not match this build's MicroOp (" +
                   std::to_string(sizeof(MicroOp)) + " bytes)");
  }
  // v2 payloads are block-encoded; count-vs-size consistency is enforced
  // by the guarded index, not by header arithmetic.
  if (h.version != kSamtVersion) return;
  // Divide, never multiply: `h.count * sizeof(MicroOp)` can wrap
  // (count += 2^61 makes the product overflow to the exact valid size,
  // and the checksum length wraps identically — the corrupt-trace fuzz
  // suite found the file being *accepted*). Comparing against the
  // record count the payload actually holds is overflow-free.
  const std::uint64_t payload = file_bytes - sizeof(SamtHeader);
  if (payload % sizeof(MicroOp) != 0 || h.count != payload / sizeof(MicroOp)) {
    fail(path, "truncated or oversized: header promises " +
                   std::to_string(h.count) + " records, file payload is " +
                   std::to_string(payload) + " bytes (" +
                   std::to_string(payload / sizeof(MicroOp)) + " records)");
  }
}

[[noreturn]] void fail_v1_only(const std::string& path, const char* reader) {
  fail(path, std::string("SAMT v2 traces are block-encoded; ") + reader +
                 " reads only v1 — open via TraceSource or TraceV2Reader");
}

[[nodiscard]] std::string header_name(const SamtHeader& h) {
  const std::size_t len = ::strnlen(h.name, sizeof h.name);
  return std::string(h.name, len);
}

[[nodiscard]] std::uint64_t file_size_of(const std::string& path,
                                         std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) fail(path, "seek failed");
  const long n = std::ftell(f);
  if (n < 0) fail(path, "tell failed");
  if (std::fseek(f, 0, SEEK_SET) != 0) fail(path, "seek failed");
  return static_cast<std::uint64_t>(n);
}

/// Closes a FILE* on scope exit (exception-safe read paths).
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Armed I/O faults, keyed by path. Consumed (erased) by the first reader
// open / writer finish that looks its path up.
std::mutex g_io_fault_mu;
std::unordered_map<std::string, IoFault> g_io_faults;

[[nodiscard]] IoFault take_io_fault(const std::string& path) {
  const std::lock_guard<std::mutex> lock(g_io_fault_mu);
  const auto it = g_io_faults.find(path);
  if (it == g_io_faults.end()) return IoFault{};
  const IoFault f = it->second;
  g_io_faults.erase(it);
  return f;
}

/// Bytes a short-read fault hides from the reader (0 defaults to 64: the
/// whole footer plus half the index header of a small file).
[[nodiscard]] std::uint64_t short_read_cut(const IoFault& f) noexcept {
  if (f.kind != IoFault::Kind::kShortRead) return 0;
  return f.param != 0 ? f.param : 64;
}

/// fsync the directory containing `path`, so the rename that published a
/// trace is itself durable. Best-effort: a failure here cannot un-publish
/// the file, so it is not reported.
void fsync_parent_dir(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  (void)ec;
}

void fill_header(SamtHeader& h, std::uint32_t version, const std::string& name,
                 std::uint64_t seed) {
  std::memcpy(h.magic, kSamtMagic, sizeof kSamtMagic);
  h.version = version;
  h.record_bytes = sizeof(MicroOp);
  h.seed = seed;
  std::memset(h.name, 0, sizeof h.name);
  std::memcpy(h.name, name.data(), std::min(name.size(), sizeof h.name - 1));
}

}  // namespace

std::uint64_t fnv1a_64(const void* bytes, std::size_t n,
                       std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

const char* trace_damage_name(TraceDamage d) noexcept {
  switch (d) {
    case TraceDamage::kNone:
      return "none";
    case TraceDamage::kTornTail:
      return "torn-tail";
    case TraceDamage::kInteriorCorrupt:
      return "interior-corrupt";
    case TraceDamage::kBadIndex:
      return "bad-index";
  }
  return "?";
}

void set_io_fault(const std::string& path, IoFault fault) {
  const std::lock_guard<std::mutex> lock(g_io_fault_mu);
  if (fault.kind == IoFault::Kind::kNone) {
    g_io_faults.erase(path);
  } else {
    g_io_faults[path] = fault;
  }
}

void clear_io_faults() {
  const std::lock_guard<std::mutex> lock(g_io_fault_mu);
  g_io_faults.clear();
}

// ----------------------------------------------------------- TraceWriter --

TraceWriter::TraceWriter(const std::string& path, const std::string& name,
                         std::uint64_t seed)
    : path_(path),
      tmp_path_(path + ".tmp"),
      file_(std::fopen(tmp_path_.c_str(), "wb")) {
  if (file_ == nullptr) {
    fail(path, std::string("cannot open for writing: ") + std::strerror(errno));
  }
  fill_header(header_, kSamtVersion, name, seed);
  if (std::fwrite(&header_, sizeof header_, 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    fail(path, "cannot write header");
  }
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());  // unfinished: don't leave a torso
  }
}

void TraceWriter::append(const MicroOp& op) {
  append(TraceView{&op, 1});
}

void TraceWriter::append(TraceView ops) {
  if (file_ == nullptr) fail(path_, "append after finish()");
  std::array<MicroOp, 256> chunk;
  std::size_t i = 0;
  while (i < ops.size()) {
    const std::size_t n = std::min(ops.size() - i, chunk.size());
    for (std::size_t j = 0; j < n; ++j) canonical_record(ops[i + j], &chunk[j]);
    checksum_ = fnv1a_64(chunk.data(), n * sizeof(MicroOp), checksum_);
    if (std::fwrite(chunk.data(), sizeof(MicroOp), n, file_) != n) {
      fail(path_, "short write");
    }
    header_.count += n;
    i += n;
  }
}

void TraceWriter::finish() {
  if (file_ == nullptr) fail(path_, "finish() called twice");
  const IoFault fault = take_io_fault(path_);
  if (fault.kind == IoFault::Kind::kEnospcOnImport ||
      fault.kind == IoFault::Kind::kTornImport) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    fail(path_, "injected import fault: no space left on device");
  }
  header_.checksum = checksum_;
  const bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
                  std::fwrite(&header_, sizeof header_, 1, file_) == 1 &&
                  std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok || !closed ||
      std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    fail(path_, "cannot finalize trace");
  }
  fsync_parent_dir(path_);
}

void write_samt(const std::string& path, TraceView ops,
                const std::string& name, std::uint64_t seed) {
  TraceWriter w(path, name, seed);
  w.append(ops);
  w.finish();
}

// ----------------------------------------------------------- TraceReader --

SamtHeader read_samt_header(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  const std::uint64_t bytes = file_size_of(path, f);
  SamtHeader h{};
  if (bytes < sizeof h || std::fread(&h, sizeof h, 1, f) != 1) {
    std::fclose(f);
    fail(path, "too short for a SAMT header");
  }
  std::fclose(f);
  validate_header(path, h, bytes);
  return h;
}

TraceReader::TraceReader(const std::string& path)
    : path_(path), header_(read_samt_header(path)) {
  if (header_.version != kSamtVersion) fail_v1_only(path, "TraceReader");
}

std::string TraceReader::name() const { return header_name(header_); }

Trace TraceReader::read_all() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    fail(path_, std::string("cannot open: ") + std::strerror(errno));
  }
  Trace t;
  t.name = name();
  t.seed = header_.seed;
  bool ok = std::fseek(f, sizeof(SamtHeader), SEEK_SET) == 0;
  if (ok) {
    t.ops.resize(static_cast<std::size_t>(header_.count));
    ok = header_.count == 0 ||
         std::fread(t.ops.data(), sizeof(MicroOp),
                    static_cast<std::size_t>(header_.count),
                    f) == header_.count;
  }
  std::fclose(f);
  if (!ok) fail(path_, "truncated record array");
  const std::uint64_t sum =
      fnv1a_64(t.ops.data(), t.ops.size() * sizeof(MicroOp));
  if (sum != header_.checksum) fail(path_, "record checksum mismatch");
  return t;
}

// ----------------------------------------------------------- MappedTrace --

MappedTrace::MappedTrace(const std::string& path, bool verify_checksum) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "stat failed");
  }
  const auto bytes = static_cast<std::uint64_t>(st.st_size);
  if (bytes < sizeof(SamtHeader)) {
    ::close(fd);
    fail(path, "too short for a SAMT header");
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(bytes), PROT_READ,
                     MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    fail(path, std::string("mmap failed: ") + std::strerror(errno));
  }
  map_ = map;
  map_len_ = static_cast<std::size_t>(bytes);
  std::memcpy(&header_, map_, sizeof header_);
  try {
    validate_header(path, header_, bytes);
    if (header_.version != kSamtVersion) fail_v1_only(path, "MappedTrace");
  } catch (...) {
    unmap();
    throw;
  }
  records_ = reinterpret_cast<const MicroOp*>(
      static_cast<const char*>(map_) + sizeof(SamtHeader));
  // Sequential replay: tell the kernel to read ahead aggressively.
  ::madvise(map_, map_len_, MADV_SEQUENTIAL);
  if (verify_checksum) {
    const std::uint64_t sum =
        fnv1a_64(records_, static_cast<std::size_t>(header_.count) *
                               sizeof(MicroOp));
    if (sum != header_.checksum) {
      unmap();
      fail(path, "record checksum mismatch");
    }
  }
}

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : header_(other.header_),
      map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      records_(std::exchange(other.records_, nullptr)) {}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    unmap();
    header_ = other.header_;
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    records_ = std::exchange(other.records_, nullptr);
  }
  return *this;
}

MappedTrace::~MappedTrace() { unmap(); }

void MappedTrace::advise_dontneed() const noexcept {
  if (map_ != nullptr) ::madvise(map_, map_len_, MADV_DONTNEED);
}

void MappedTrace::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
    records_ = nullptr;
  }
}

std::string MappedTrace::name() const { return header_name(header_); }

// ----------------------------------------------------------- SAMT v2 -----

namespace {

// --- varint / zigzag codecs -----------------------------------------------

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::uint64_t delta)
    noexcept {
  const auto v = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::uint64_t zigzag_decode(std::uint64_t u) noexcept {
  return (u >> 1) ^ (~(u & 1) + 1);
}

void put_varint(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

/// Strict LEB128: bounds-checked, at most 10 bytes, the 10th byte may
/// only carry the top bit of a 64-bit value. Returns false on any
/// malformed input instead of reading past `n` or wrapping.
[[nodiscard]] bool get_varint(const unsigned char* p, std::size_t n,
                              std::size_t& pos, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= n) return false;
    const unsigned char b = p[pos++];
    if (shift == 63 && (b & 0xFE) != 0) return false;  // overflow / junk
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

// --- record codec ---------------------------------------------------------
//
// Per record: one presence byte (op class in the low nibble, taken bit,
// and has-mem/has-br/has-value bits — "absent" means the field is zero,
// which is exactly what canonical records hold for inapplicable fields),
// four raw bytes (mem_size, src1, src2, dst), then varints: zigzag pc
// delta vs the previous record, zigzag mem_addr delta vs the previous
// *memory* record, zigzag br_target delta vs this record's pc, and the
// raw value. Delta state resets per block, so blocks decode independently.

constexpr unsigned char kTakenBit = 0x10;
constexpr unsigned char kHasMemBit = 0x20;
constexpr unsigned char kHasBrBit = 0x40;
constexpr unsigned char kHasValueBit = 0x80;
constexpr std::uint8_t kMaxOpClass = static_cast<std::uint8_t>(OpClass::kNop);

struct DeltaState {
  std::uint64_t prev_pc = 0;
  std::uint64_t prev_mem = 0;
};

void encode_record(const MicroOp& op, DeltaState& st,
                   std::vector<unsigned char>& out) {
  const bool has_mem = op.mem_addr != 0;
  const bool has_br = op.br_target != 0;
  const bool has_value = op.value != 0;
  unsigned char b0 = static_cast<unsigned char>(op.op) & 0x0F;
  if (op.taken) b0 |= kTakenBit;
  if (has_mem) b0 |= kHasMemBit;
  if (has_br) b0 |= kHasBrBit;
  if (has_value) b0 |= kHasValueBit;
  out.push_back(b0);
  out.push_back(op.mem_size);
  out.push_back(op.src1);
  out.push_back(op.src2);
  out.push_back(op.dst);
  put_varint(out, zigzag_encode(op.pc - st.prev_pc));
  st.prev_pc = op.pc;
  if (has_mem) {
    put_varint(out, zigzag_encode(op.mem_addr - st.prev_mem));
    st.prev_mem = op.mem_addr;
  }
  if (has_br) put_varint(out, zigzag_encode(op.br_target - op.pc));
  if (has_value) put_varint(out, op.value);
}

[[nodiscard]] bool decode_record(const unsigned char* p, std::size_t n,
                                 std::size_t& pos, DeltaState& st,
                                 MicroOp& out) {
  if (pos + 5 > n) return false;
  const unsigned char b0 = p[pos++];
  if ((b0 & 0x0F) > kMaxOpClass) return false;
  MicroOp op;
  op.op = static_cast<OpClass>(b0 & 0x0F);
  op.taken = (b0 & kTakenBit) != 0;
  op.mem_size = p[pos++];
  op.src1 = p[pos++];
  op.src2 = p[pos++];
  op.dst = p[pos++];
  std::uint64_t u = 0;
  if (!get_varint(p, n, pos, u)) return false;
  op.pc = st.prev_pc + zigzag_decode(u);
  st.prev_pc = op.pc;
  op.mem_addr = 0;
  if ((b0 & kHasMemBit) != 0) {
    if (!get_varint(p, n, pos, u)) return false;
    op.mem_addr = st.prev_mem + zigzag_decode(u);
    st.prev_mem = op.mem_addr;
  }
  op.br_target = 0;
  if ((b0 & kHasBrBit) != 0) {
    if (!get_varint(p, n, pos, u)) return false;
    op.br_target = op.pc + zigzag_decode(u);
  }
  op.value = 0;
  if ((b0 & kHasValueBit) != 0) {
    if (!get_varint(p, n, pos, op.value)) return false;
  }
  out = op;
  return true;
}

// --- block codec ----------------------------------------------------------

constexpr std::size_t kBlockGuardedHeaderBytes =
    sizeof(SamtBlockHeader) - sizeof(std::uint64_t);  // all but the guard

[[nodiscard]] std::uint64_t block_guard(const SamtBlockHeader& h,
                                        const unsigned char* payload,
                                        std::size_t payload_bytes) noexcept {
  std::uint64_t g = fnv1a_64(&h, kBlockGuardedHeaderBytes);
  return fnv1a_64(payload, payload_bytes, g);
}

struct EncodedBlock {
  SamtBlockHeader header{};
  std::vector<unsigned char> payload;
};

[[nodiscard]] EncodedBlock encode_block(const MicroOp* ops, std::uint32_t n,
                                        std::uint64_t first_record) {
  EncodedBlock b;
  b.payload.reserve(static_cast<std::size_t>(n) * 12);
  DeltaState st;
  for (std::uint32_t i = 0; i < n; ++i) encode_record(ops[i], st, b.payload);
  b.header.magic = kBlockMagic;
  b.header.record_count = n;
  b.header.first_record = first_record;
  b.header.payload_bytes = static_cast<std::uint32_t>(b.payload.size());
  b.header.reserved = 0;
  b.header.guard = block_guard(b.header, b.payload.data(), b.payload.size());
  return b;
}

/// Verifies one raw block (header + payload as read from the file)
/// against its index entry and its own guard, then decodes it into `out`.
/// Any mismatch throws TraceCorruptError(kInteriorCorrupt): the footer
/// and index were already validated, so a bad block is interior damage.
void decode_block(const std::string& path, const unsigned char* raw,
                  std::size_t raw_bytes, const SamtIndexEntry& entry,
                  std::uint64_t block_idx, std::vector<MicroOp>& out) {
  auto corrupt = [&](const std::string& what) -> TraceCorruptError {
    return TraceCorruptError(
        path + ": block " + std::to_string(block_idx) + " at offset " +
            std::to_string(entry.file_offset) + ": " + what,
        TraceDamage::kInteriorCorrupt, block_idx, entry.file_offset);
  };
  SamtBlockHeader h{};
  if (raw_bytes != sizeof h + entry.payload_bytes) throw corrupt("short read");
  std::memcpy(&h, raw, sizeof h);
  const unsigned char* payload = raw + sizeof h;
  if (h.magic != kBlockMagic || h.record_count != entry.record_count ||
      h.first_record != entry.first_record ||
      h.payload_bytes != entry.payload_bytes || h.guard != entry.guard) {
    throw corrupt("block header disagrees with the index");
  }
  if (block_guard(h, payload, h.payload_bytes) != h.guard) {
    throw corrupt("guard mismatch (corrupt payload)");
  }
  DeltaState st;
  std::size_t pos = 0;
  MicroOp op;
  for (std::uint32_t i = 0; i < h.record_count; ++i) {
    if (!decode_record(payload, h.payload_bytes, pos, st, op)) {
      throw corrupt("undecodable record " + std::to_string(i));
    }
    out.push_back(op);
  }
  if (pos != h.payload_bytes) throw corrupt("trailing payload bytes");
}

// --- layout (header + footer + index) validation --------------------------

/// Everything read at open time, plus a damage classification instead of
/// an exception so trace_health() can report rather than throw.
struct V2Layout {
  SamtHeader header{};
  std::vector<SamtIndexEntry> index;
  std::uint64_t file_bytes = 0;
  TraceDamage damage = TraceDamage::kNone;
  std::uint64_t bad_offset = 0;
  std::string note;
};

[[nodiscard]] bool read_at(std::FILE* f, std::uint64_t offset, void* dst,
                           std::size_t n) {
  return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0 &&
         (n == 0 || std::fread(dst, 1, n, f) == n);
}

/// Opens a v2 file and validates header, footer and index. Throws
/// TraceFormatError for files that are not SAMT v2 at all; classifies
/// damage (torn tail / bad index) into the returned struct otherwise.
/// `cut` simulates a short read: the last `cut` bytes are invisible.
[[nodiscard]] V2Layout load_v2_layout(const std::string& path,
                                      std::uint64_t cut) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  std::uint64_t bytes = file_size_of(path, f.get());
  bytes = bytes > cut ? bytes - cut : 0;

  V2Layout L;
  L.file_bytes = bytes;
  if (bytes < sizeof(SamtHeader) ||
      !read_at(f.get(), 0, &L.header, sizeof L.header)) {
    fail(path, "too short for a SAMT header");
  }
  if (std::memcmp(L.header.magic, kSamtMagic, sizeof kSamtMagic) != 0) {
    fail(path, "not a SAMT trace (bad magic)");
  }
  if (L.header.version != kSamtVersion2) {
    fail(path, "not a SAMT v2 trace (version " +
                   std::to_string(L.header.version) + ")");
  }
  if (L.header.record_bytes != sizeof(MicroOp)) {
    fail(path, "record size " + std::to_string(L.header.record_bytes) +
                   " does not match this build's MicroOp (" +
                   std::to_string(sizeof(MicroOp)) + " bytes)");
  }

  auto damaged = [&](TraceDamage d, std::uint64_t off, std::string note) {
    L.damage = d;
    L.bad_offset = off;
    L.note = std::move(note);
    return L;
  };

  // Footer: the last thing a successful finish() writes, so a file that
  // lacks one is a torn tail by definition.
  constexpr std::uint64_t kMinIndexBytes = 16;  // magic+count+guard, 0 blocks
  if (bytes < sizeof(SamtHeader) + kMinIndexBytes + sizeof(SamtFooter)) {
    return damaged(TraceDamage::kTornTail, bytes,
                   "file too short for an index and footer (torn tail)");
  }
  SamtFooter footer{};
  if (!read_at(f.get(), bytes - sizeof footer, &footer, sizeof footer)) {
    return damaged(TraceDamage::kTornTail, bytes - sizeof footer,
                   "unreadable footer (torn tail)");
  }
  if (std::memcmp(footer.magic, kFooterMagic, sizeof kFooterMagic) != 0) {
    return damaged(TraceDamage::kTornTail, bytes - sizeof footer,
                   "missing footer magic (torn tail)");
  }
  if (footer.guard !=
      fnv1a_64(&footer, sizeof footer - sizeof footer.guard)) {
    return damaged(TraceDamage::kTornTail, bytes - sizeof footer,
                   "footer guard mismatch (torn tail)");
  }

  // Index region bounds, guard and header binding.
  const std::uint64_t index_end = bytes - sizeof footer;
  if (footer.index_offset < sizeof(SamtHeader) ||
      footer.index_offset > index_end ||
      footer.index_bytes != index_end - footer.index_offset ||
      footer.index_bytes < kMinIndexBytes) {
    return damaged(TraceDamage::kBadIndex, footer.index_offset,
                   "footer index bounds are inconsistent");
  }
  std::vector<unsigned char> region(
      static_cast<std::size_t>(footer.index_bytes));
  if (!read_at(f.get(), footer.index_offset, region.data(), region.size())) {
    return damaged(TraceDamage::kBadIndex, footer.index_offset,
                   "unreadable index region");
  }
  std::uint32_t imagic = 0;
  std::uint32_t block_count = 0;
  std::memcpy(&imagic, region.data(), 4);
  std::memcpy(&block_count, region.data() + 4, 4);
  std::uint64_t iguard = 0;
  std::memcpy(&iguard, region.data() + region.size() - 8, 8);
  if (imagic != kIndexMagic ||
      footer.index_bytes !=
          kMinIndexBytes + std::uint64_t{block_count} * sizeof(SamtIndexEntry)) {
    return damaged(TraceDamage::kBadIndex, footer.index_offset,
                   "index header is inconsistent");
  }
  if (iguard != fnv1a_64(region.data(), region.size() - 8)) {
    return damaged(TraceDamage::kBadIndex, footer.index_offset,
                   "index guard mismatch");
  }
  if (L.header.checksum != fnv1a_64(region.data(), region.size())) {
    return damaged(TraceDamage::kBadIndex, footer.index_offset,
                   "header checksum does not bind this index");
  }

  // Entries must tile [header, index) exactly, with contiguous record
  // ranges summing to the header count.
  L.index.resize(block_count);
  if (block_count != 0) {
    std::memcpy(L.index.data(), region.data() + 8,
                std::size_t{block_count} * sizeof(SamtIndexEntry));
  }
  std::uint64_t expect_offset = sizeof(SamtHeader);
  std::uint64_t expect_record = 0;
  for (std::uint32_t i = 0; i < block_count; ++i) {
    const SamtIndexEntry& e = L.index[i];
    const std::uint64_t room = footer.index_offset - expect_offset;
    if (e.file_offset != expect_offset || e.first_record != expect_record ||
        e.record_count == 0 || room < sizeof(SamtBlockHeader) ||
        e.payload_bytes > room - sizeof(SamtBlockHeader)) {
      return damaged(TraceDamage::kBadIndex, footer.index_offset,
                     "index entry " + std::to_string(i) +
                         " is inconsistent");
    }
    expect_offset += sizeof(SamtBlockHeader) + e.payload_bytes;
    expect_record += e.record_count;
  }
  if (expect_offset != footer.index_offset ||
      expect_record != L.header.count) {
    return damaged(TraceDamage::kBadIndex, footer.index_offset,
                   "index does not cover the file / header count");
  }
  return L;
}

/// Reads one raw block (header + payload), applying an armed bit-flip
/// fault to the in-memory copy, and decodes it via decode_block.
void read_and_decode_block(const std::string& path, std::FILE* f,
                           const SamtIndexEntry& entry,
                           std::uint64_t block_idx, const IoFault& fault,
                           std::vector<MicroOp>& out) {
  std::vector<unsigned char> raw(sizeof(SamtBlockHeader) +
                                 entry.payload_bytes);
  if (!read_at(f, entry.file_offset, raw.data(), raw.size())) {
    throw TraceCorruptError(
        path + ": block " + std::to_string(block_idx) + " unreadable",
        TraceDamage::kTornTail, block_idx, entry.file_offset);
  }
  if (fault.kind == IoFault::Kind::kBitFlipBlock &&
      fault.param == block_idx) {
    raw[raw.size() > sizeof(SamtBlockHeader) ? sizeof(SamtBlockHeader)
                                             : raw.size() - 1] ^= 0x01;
  }
  decode_block(path, raw.data(), raw.size(), entry, block_idx, out);
}

}  // namespace

// --------------------------------------------------------- TraceWriterV2 --

TraceWriterV2::TraceWriterV2(const std::string& path, const std::string& name,
                             std::uint64_t seed, std::uint32_t block_records,
                             Mode mode)
    : path_(path),
      tmp_path_(tmp_path_for(path)),
      block_records_(block_records != 0 ? block_records
                                        : kDefaultBlockRecords) {
  fill_header(header_, kSamtVersion2, name, seed);
  pending_.reserve(block_records_);

  if (mode == Mode::kResume) {
    // Keep the intact leading blocks of an existing tmp: scan forward
    // verifying every guard, truncate at the first break, append there.
    std::FILE* f = std::fopen(tmp_path_.c_str(), "r+b");
    if (f != nullptr) {
      SamtHeader h{};
      const std::uint64_t bytes = file_size_of(tmp_path_, f);
      bool usable = bytes >= sizeof h && read_at(f, 0, &h, sizeof h) &&
                    std::memcmp(h.magic, kSamtMagic, sizeof kSamtMagic) == 0 &&
                    h.version == kSamtVersion2 &&
                    h.record_bytes == sizeof(MicroOp);
      if (usable) {
        std::uint64_t off = sizeof h;
        std::vector<unsigned char> raw;
        while (off + sizeof(SamtBlockHeader) <= bytes) {
          SamtBlockHeader bh{};
          if (!read_at(f, off, &bh, sizeof bh) || bh.magic != kBlockMagic ||
              bh.first_record != durable_records_ || bh.record_count == 0 ||
              bh.payload_bytes > bytes - off - sizeof bh) {
            break;
          }
          raw.resize(bh.payload_bytes);
          if (!read_at(f, off + sizeof bh, raw.data(), raw.size()) ||
              block_guard(bh, raw.data(), raw.size()) != bh.guard) {
            break;
          }
          index_.push_back(SamtIndexEntry{off, bh.first_record,
                                          bh.record_count, bh.payload_bytes,
                                          bh.guard});
          durable_records_ += bh.record_count;
          off += sizeof bh + bh.payload_bytes;
        }
        usable = ::ftruncate(::fileno(f), static_cast<off_t>(off)) == 0 &&
                 std::fseek(f, static_cast<long>(off), SEEK_SET) == 0;
        if (usable) {
          file_ = f;
          write_offset_ = off;
          header_.count = durable_records_;
          return;
        }
      }
      std::fclose(f);
      index_.clear();
      durable_records_ = 0;
    }
  }

  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    fail(path, std::string("cannot open for writing: ") + std::strerror(errno));
  }
  if (std::fwrite(&header_, sizeof header_, 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    fail(path, "cannot write header");
  }
  write_offset_ = sizeof header_;
}

TraceWriterV2::~TraceWriterV2() {
  // Unlike v1, an unfinished tmp is deliberately KEPT: its flushed blocks
  // are intact, and Mode::kResume picks them back up.
  if (file_ != nullptr) std::fclose(file_);
}

std::uint64_t TraceWriterV2::durable_records() const noexcept {
  return durable_records_;
}

void TraceWriterV2::append(const MicroOp& op) {
  append(TraceView{&op, 1});
}

void TraceWriterV2::append(TraceView ops) {
  if (file_ == nullptr) fail(path_, "append after finish()");
  for (const MicroOp& op : ops) {
    MicroOp canon;
    canonical_record(op, &canon);
    pending_.push_back(canon);
    if (pending_.size() == block_records_) flush_block();
  }
}

void TraceWriterV2::flush_block() {
  if (pending_.empty()) return;
  const EncodedBlock b =
      encode_block(pending_.data(), static_cast<std::uint32_t>(pending_.size()),
                   durable_records_);
  if (std::fwrite(&b.header, sizeof b.header, 1, file_) != 1 ||
      (b.payload.empty()
           ? false
           : std::fwrite(b.payload.data(), 1, b.payload.size(), file_) !=
                 b.payload.size()) ||
      std::fflush(file_) != 0) {
    fail(path_, "short write");
  }
  index_.push_back(SamtIndexEntry{write_offset_, b.header.first_record,
                                  b.header.record_count,
                                  b.header.payload_bytes, b.header.guard});
  durable_records_ += pending_.size();
  write_offset_ += sizeof b.header + b.payload.size();
  pending_.clear();
}

void TraceWriterV2::finish() {
  if (file_ == nullptr) fail(path_, "finish() called twice");
  const IoFault fault = take_io_fault(path_);
  if (fault.kind == IoFault::Kind::kTornImport) {
    // Die mid-block, as a SIGKILL would: half a block header lands in the
    // tmp, no index, no rename. The tmp survives for kResume.
    flush_block();
    const SamtBlockHeader torn{};
    std::fwrite(&torn, 1, sizeof torn / 2, file_);
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    fail(path_, "injected import fault: killed mid-block (torn tmp kept)");
  }
  if (fault.kind == IoFault::Kind::kEnospcOnImport) {
    flush_block();
    std::fclose(file_);
    file_ = nullptr;
    fail(path_, "injected import fault: no space left on device (tmp kept)");
  }
  flush_block();

  // Index region: magic + count + entries + guard; the header checksum
  // binds the whole region, footer guard covers the footer.
  std::vector<unsigned char> region(
      16 + index_.size() * sizeof(SamtIndexEntry));
  const std::uint32_t block_count = static_cast<std::uint32_t>(index_.size());
  std::memcpy(region.data(), &kIndexMagic, 4);
  std::memcpy(region.data() + 4, &block_count, 4);
  if (!index_.empty()) {
    std::memcpy(region.data() + 8, index_.data(),
                index_.size() * sizeof(SamtIndexEntry));
  }
  const std::uint64_t iguard = fnv1a_64(region.data(), region.size() - 8);
  std::memcpy(region.data() + region.size() - 8, &iguard, 8);

  SamtFooter footer{};
  std::memcpy(footer.magic, kFooterMagic, sizeof kFooterMagic);
  footer.index_offset = write_offset_;
  footer.index_bytes = region.size();
  footer.guard = fnv1a_64(&footer, sizeof footer - sizeof footer.guard);

  header_.count = durable_records_;
  header_.checksum = fnv1a_64(region.data(), region.size());

  const bool ok =
      std::fwrite(region.data(), 1, region.size(), file_) == region.size() &&
      std::fwrite(&footer, sizeof footer, 1, file_) == 1 &&
      std::fseek(file_, 0, SEEK_SET) == 0 &&
      std::fwrite(&header_, sizeof header_, 1, file_) == 1 &&
      std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok || !closed ||
      std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    fail(path_, "cannot finalize trace (tmp kept)");
  }
  fsync_parent_dir(path_);
}

void TraceWriterV2::abandon() noexcept {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_path_.c_str());
}

void write_samt_v2(const std::string& path, TraceView ops,
                   const std::string& name, std::uint64_t seed,
                   std::uint32_t block_records) {
  TraceWriterV2 w(path, name, seed, block_records);
  w.append(ops);
  w.finish();
}

// --------------------------------------------------------- TraceV2Reader --

TraceV2Reader::TraceV2Reader(const std::string& path) : path_(path) {
  fault_ = take_io_fault(path);
  V2Layout L = load_v2_layout(path, short_read_cut(fault_));
  if (L.damage != TraceDamage::kNone) {
    throw TraceCorruptError(path + ": " + L.note, L.damage,
                            TraceCorruptError::kNoBlock, L.bad_offset);
  }
  header_ = L.header;
  index_ = std::move(L.index);
}

std::string TraceV2Reader::name() const { return header_name(header_); }

std::vector<MicroOp> TraceV2Reader::read_range(std::uint64_t begin,
                                               std::uint64_t end) const {
  if (end > header_.count) end = header_.count;
  if (begin > end) begin = end;
  std::vector<MicroOp> out;
  if (begin == end) return out;
  out.reserve(static_cast<std::size_t>(end - begin));

  // First block whose record range reaches `begin` (index entries carry
  // contiguous first_record values, so this is a binary search).
  std::size_t bi = 0;
  {
    std::size_t lo = 0;
    std::size_t hi = index_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (index_[mid].first_record + index_[mid].record_count <= begin) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bi = lo;
  }

  FilePtr f(std::fopen(path_.c_str(), "rb"));
  if (f == nullptr) {
    fail(path_, std::string("cannot open: ") + std::strerror(errno));
  }
  std::vector<MicroOp> decoded;
  for (; bi < index_.size() && index_[bi].first_record < end; ++bi) {
    const SamtIndexEntry& e = index_[bi];
    decoded.clear();
    read_and_decode_block(path_, f.get(), e, bi, fault_, decoded);
    const std::uint64_t lo = std::max(begin, e.first_record);
    const std::uint64_t hi = std::min(end, e.first_record + e.record_count);
    out.insert(out.end(),
               decoded.begin() + static_cast<std::ptrdiff_t>(lo -
                                                             e.first_record),
               decoded.begin() + static_cast<std::ptrdiff_t>(hi -
                                                             e.first_record));
  }
  return out;
}

Trace TraceV2Reader::read_all() const {
  Trace t;
  t.name = name();
  t.seed = header_.seed;
  t.ops = read_range(0, header_.count);
  return t;
}

// ---------------------------------------------------------- trace_health --

TraceHealth trace_health(const std::string& path) {
  const IoFault fault = take_io_fault(path);
  const std::uint64_t cut = short_read_cut(fault);

  // Sniff the version first; v1 and v2 walk differently.
  SamtHeader sniff{};
  {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (f == nullptr) {
      fail(path, std::string("cannot open: ") + std::strerror(errno));
    }
    const std::uint64_t bytes = file_size_of(path, f.get());
    if (bytes < sizeof sniff || !read_at(f.get(), 0, &sniff, sizeof sniff)) {
      fail(path, "too short for a SAMT header");
    }
    if (std::memcmp(sniff.magic, kSamtMagic, sizeof kSamtMagic) != 0) {
      fail(path, "not a SAMT trace (bad magic)");
    }
    if (sniff.version != kSamtVersion && sniff.version != kSamtVersion2) {
      fail(path, "unsupported SAMT version " + std::to_string(sniff.version) +
                     " (this build reads versions 1 and 2)");
    }
    if (sniff.record_bytes != sizeof(MicroOp)) {
      fail(path, "record size " + std::to_string(sniff.record_bytes) +
                     " does not match this build's MicroOp (" +
                     std::to_string(sizeof(MicroOp)) + " bytes)");
    }
  }

  TraceHealth h;
  h.version = sniff.version;
  h.record_count = sniff.count;

  if (sniff.version == kSamtVersion) {
    // v1 is one whole-file checksum: report it as a single pseudo-block.
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (f == nullptr) {
      fail(path, std::string("cannot open: ") + std::strerror(errno));
    }
    std::uint64_t bytes = file_size_of(path, f.get());
    bytes = bytes > cut ? bytes - cut : 0;
    BlockHealth blk{sizeof(SamtHeader), 0,
                    static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(sniff.count, ~std::uint32_t{0})),
                    false};
    const std::uint64_t payload =
        bytes >= sizeof(SamtHeader) ? bytes - sizeof(SamtHeader) : 0;
    if (payload % sizeof(MicroOp) != 0 ||
        sniff.count != payload / sizeof(MicroOp)) {
      h.damage = TraceDamage::kTornTail;
      h.first_bad_offset = bytes;
      h.bad_blocks = 1;
      h.blocks.push_back(blk);
      return h;
    }
    std::vector<MicroOp> recs(static_cast<std::size_t>(sniff.count));
    if (!read_at(f.get(), sizeof(SamtHeader), recs.data(),
                 recs.size() * sizeof(MicroOp))) {
      h.damage = TraceDamage::kTornTail;
      h.first_bad_offset = bytes;
      h.bad_blocks = 1;
      h.blocks.push_back(blk);
      return h;
    }
    blk.ok =
        fnv1a_64(recs.data(), recs.size() * sizeof(MicroOp)) == sniff.checksum;
    if (!blk.ok) {
      h.damage = TraceDamage::kInteriorCorrupt;
      h.first_bad_offset = sizeof(SamtHeader);
      h.bad_blocks = 1;
    }
    h.blocks.push_back(blk);
    return h;
  }

  V2Layout L = load_v2_layout(path, cut);
  h.record_count = L.header.count;
  if (L.damage != TraceDamage::kNone) {
    h.damage = L.damage;
    h.first_bad_offset = L.bad_offset;
    return h;
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  std::vector<MicroOp> scratch;
  h.blocks.reserve(L.index.size());
  for (std::size_t i = 0; i < L.index.size(); ++i) {
    const SamtIndexEntry& e = L.index[i];
    BlockHealth blk{e.file_offset, e.first_record, e.record_count, true};
    scratch.clear();
    try {
      read_and_decode_block(path, f.get(), e, i, fault, scratch);
    } catch (const TraceCorruptError&) {
      blk.ok = false;
      ++h.bad_blocks;
      if (h.damage == TraceDamage::kNone) {
        h.damage = TraceDamage::kInteriorCorrupt;
        h.first_bad_offset = e.file_offset;
      }
    }
    h.blocks.push_back(blk);
  }
  return h;
}

// ----------------------------------------------------------- text import --

namespace {

/// Oracle memory for the importer: program-order byte store, same
/// semantics as WorkloadGenerator's page map.
class OracleMemory {
 public:
  void store(Addr addr, std::uint32_t bytes, std::uint64_t value) {
    for (std::uint32_t i = 0; i < bytes; ++i) {
      bytes_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
  [[nodiscard]] std::uint64_t load(Addr addr, std::uint32_t bytes) const {
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < bytes; ++i) {
      const auto it = bytes_.find(addr + i);
      const std::uint8_t b = it == bytes_.end() ? 0 : it->second;
      v |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    return v;
  }

 private:
  std::unordered_map<Addr, std::uint8_t> bytes_;
};

[[nodiscard]] bool parse_op_class(const std::string& tok, OpClass& out) {
  for (const OpClass c :
       {OpClass::kIntAlu, OpClass::kIntMul, OpClass::kIntDiv, OpClass::kFpAlu,
        OpClass::kFpMul, OpClass::kFpDiv, OpClass::kLoad, OpClass::kStore,
        OpClass::kBranch, OpClass::kNop}) {
    if (tok == op_class_name(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

/// Parses a non-negative integer (decimal, or hex with 0x prefix),
/// rejecting trailing junk.
[[nodiscard]] bool parse_number(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(tok.c_str(), &end, 0);
  return errno == 0 && end == tok.c_str() + tok.size();
}

/// The producing op's destination register, provided it is still the
/// youngest writer of that register at `ops.size()` (otherwise the
/// dependency is unrepresentable through rename and is dropped).
[[nodiscard]] RegId dep_register(const std::vector<MicroOp>& ops,
                                 std::uint64_t distance) {
  if (distance == 0 || distance > ops.size()) return kNoReg;
  const std::size_t producer = ops.size() - static_cast<std::size_t>(distance);
  const RegId reg = ops[producer].dst;
  if (reg == kNoReg) return kNoReg;
  for (std::size_t i = producer + 1; i < ops.size(); ++i) {
    if (ops[i].dst == reg) return kNoReg;
  }
  return reg;
}

}  // namespace

Trace import_text_trace_from_string(const std::string& text,
                                    const std::string& origin) {
  Trace t;
  t.name = origin;
  t.seed = 0;
  OracleMemory oracle;
  Addr pc = 0x00400000;
  std::uint32_t next_int_dst = 0;
  std::uint32_t next_fp_dst = 0;
  std::uint64_t store_counter = 0;

  std::istringstream lines(text);
  std::string line;
  std::uint64_t lineno = 0;
  auto bad = [&](const std::string& what) -> TraceFormatError {
    return TraceFormatError(origin + ":" + std::to_string(lineno) + ": " +
                            what);
  };

  while (std::getline(lines, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::vector<std::string> tok;
    for (std::string f; fields >> f;) tok.push_back(std::move(f));
    if (tok.empty()) continue;

    OpClass cls{};
    if (!parse_op_class(tok[0], cls)) {
      throw bad("unknown op class '" + tok[0] + "'");
    }

    MicroOp op;
    op.op = cls;
    op.pc = pc;

    // Positional fields after the class: addr, size, dep1, dep2 (for
    // branches the addr column is the target and the size column the
    // taken flag; compute classes start at dep1).
    std::size_t f = 1;
    auto number_at = [&](std::size_t idx, const char* what) {
      std::uint64_t v = 0;
      if (idx >= tok.size() || !parse_number(tok[idx], v)) {
        throw bad(std::string("expected ") + what + " for '" + tok[0] + "'");
      }
      return v;
    };

    if (is_mem(cls)) {
      op.mem_addr = number_at(f++, "an address");
      const std::uint64_t size = number_at(f++, "an access size");
      if (size != 4 && size != 8) {
        throw bad("access size must be 4 or 8, got " + std::to_string(size));
      }
      if (op.mem_addr % size != 0) {
        throw bad("address 0x" + [&] {
          std::ostringstream os;
          os << std::hex << op.mem_addr;
          return os.str();
        }() + " is not " + std::to_string(size) + "-byte aligned");
      }
      op.mem_size = static_cast<std::uint8_t>(size);
    } else if (cls == OpClass::kBranch) {
      if (f < tok.size()) {
        const std::uint64_t taken = number_at(f++, "a taken flag (0/1)");
        if (taken > 1) throw bad("taken flag must be 0 or 1");
        op.taken = taken != 0;
      }
      if (f < tok.size()) {
        op.br_target = number_at(f++, "a branch target");
      } else {
        // Synthesized control flow: taken branches close a short backward
        // loop, not-taken ones skip ahead (both deterministic).
        op.br_target = op.taken && pc >= 64 ? pc - 64 : pc + 8;
      }
    }

    // Dependency distances (dynamic instructions back to the producer).
    RegId deps[2] = {kNoReg, kNoReg};
    for (int d = 0; d < 2 && f < tok.size(); ++d) {
      deps[d] = dep_register(t.ops, number_at(f++, "a dependency distance"));
    }
    if (f < tok.size()) throw bad("trailing fields after '" + tok[f] + "'");
    op.src1 = deps[0];
    op.src2 = deps[1];

    // Destinations: loads and compute ops produce a value; round-robin
    // over the architectural registers so recent producers stay live for
    // dependency encoding.
    if (cls == OpClass::kLoad || cls == OpClass::kIntAlu ||
        cls == OpClass::kIntMul || cls == OpClass::kIntDiv) {
      op.dst = static_cast<RegId>(1 + next_int_dst++ % (kNumIntRegs - 1));
    } else if (is_fp(cls)) {
      op.dst = static_cast<RegId>(kNumIntRegs + next_fp_dst++ % kNumFpRegs);
    }

    // Oracle values: stores write a deterministic token, loads record the
    // program-order-correct value (so the core's value check still runs).
    if (cls == OpClass::kStore) {
      op.value = 0x9E3779B97F4A7C15ULL * ++store_counter;
      oracle.store(op.mem_addr, op.mem_size, op.value);
    } else if (cls == OpClass::kLoad) {
      op.value = oracle.load(op.mem_addr, op.mem_size);
    }

    t.ops.push_back(op);
    pc += 4;
  }
  return t;
}

Trace import_text_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Trace t = import_text_trace_from_string(buf.str(), path);
  // Name the trace after the file, not its full path (the SAMT header
  // name field is 23 chars; error messages keep the full path).
  t.name = std::filesystem::path(path).stem().string();
  return t;
}

}  // namespace samie::trace
