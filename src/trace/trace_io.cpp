#include "src/trace/trace_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace samie::trace {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Writes the record into `dst` in canonical form: the MicroOp fields
/// copied one by one into a zeroed staging object whose full object
/// representation is then memcpy'd, so padding bytes are
/// deterministically zero and the same trace always produces
/// byte-identical files (copy *assignment* would not do — it need not
/// preserve padding).
void canonical_record(const MicroOp& op, MicroOp* dst) noexcept {
  MicroOp r;
  std::memset(static_cast<void*>(&r), 0, sizeof r);
  r.pc = op.pc;
  r.mem_addr = op.mem_addr;
  r.br_target = op.br_target;
  r.value = op.value;
  r.op = op.op;
  r.mem_size = op.mem_size;
  r.src1 = op.src1;
  r.src2 = op.src2;
  r.dst = op.dst;
  r.taken = op.taken;
  std::memcpy(static_cast<void*>(dst), &r, sizeof r);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw TraceFormatError(path + ": " + what);
}

void validate_header(const std::string& path, const SamtHeader& h,
                     std::uint64_t file_bytes) {
  if (std::memcmp(h.magic, kSamtMagic, sizeof kSamtMagic) != 0) {
    fail(path, "not a SAMT trace (bad magic)");
  }
  if (h.version != kSamtVersion) {
    fail(path, "unsupported SAMT version " + std::to_string(h.version) +
                   " (this build reads version " +
                   std::to_string(kSamtVersion) + ")");
  }
  if (h.record_bytes != sizeof(MicroOp)) {
    fail(path, "record size " + std::to_string(h.record_bytes) +
                   " does not match this build's MicroOp (" +
                   std::to_string(sizeof(MicroOp)) + " bytes)");
  }
  // Divide, never multiply: `h.count * sizeof(MicroOp)` can wrap
  // (count += 2^61 makes the product overflow to the exact valid size,
  // and the checksum length wraps identically — the corrupt-trace fuzz
  // suite found the file being *accepted*). Comparing against the
  // record count the payload actually holds is overflow-free.
  const std::uint64_t payload = file_bytes - sizeof(SamtHeader);
  if (payload % sizeof(MicroOp) != 0 || h.count != payload / sizeof(MicroOp)) {
    fail(path, "truncated or oversized: header promises " +
                   std::to_string(h.count) + " records, file payload is " +
                   std::to_string(payload) + " bytes (" +
                   std::to_string(payload / sizeof(MicroOp)) + " records)");
  }
}

[[nodiscard]] std::string header_name(const SamtHeader& h) {
  const std::size_t len = ::strnlen(h.name, sizeof h.name);
  return std::string(h.name, len);
}

[[nodiscard]] std::uint64_t file_size_of(const std::string& path,
                                         std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) fail(path, "seek failed");
  const long n = std::ftell(f);
  if (n < 0) fail(path, "tell failed");
  if (std::fseek(f, 0, SEEK_SET) != 0) fail(path, "seek failed");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

std::uint64_t fnv1a_64(const void* bytes, std::size_t n,
                       std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// ----------------------------------------------------------- TraceWriter --

TraceWriter::TraceWriter(const std::string& path, const std::string& name,
                         std::uint64_t seed)
    : path_(path), file_(std::fopen(path.c_str(), "wb")) {
  if (file_ == nullptr) {
    fail(path, std::string("cannot open for writing: ") + std::strerror(errno));
  }
  std::memcpy(header_.magic, kSamtMagic, sizeof kSamtMagic);
  header_.version = kSamtVersion;
  header_.record_bytes = sizeof(MicroOp);
  header_.seed = seed;
  std::memset(header_.name, 0, sizeof header_.name);
  std::memcpy(header_.name, name.data(),
              std::min(name.size(), sizeof header_.name - 1));
  if (std::fwrite(&header_, sizeof header_, 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    fail(path, "cannot write header");
  }
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());  // unfinished file: don't leave a torso
  }
}

void TraceWriter::append(const MicroOp& op) {
  append(TraceView{&op, 1});
}

void TraceWriter::append(TraceView ops) {
  if (file_ == nullptr) fail(path_, "append after finish()");
  std::array<MicroOp, 256> chunk;
  std::size_t i = 0;
  while (i < ops.size()) {
    const std::size_t n = std::min(ops.size() - i, chunk.size());
    for (std::size_t j = 0; j < n; ++j) canonical_record(ops[i + j], &chunk[j]);
    checksum_ = fnv1a_64(chunk.data(), n * sizeof(MicroOp), checksum_);
    if (std::fwrite(chunk.data(), sizeof(MicroOp), n, file_) != n) {
      fail(path_, "short write");
    }
    header_.count += n;
    i += n;
  }
}

void TraceWriter::finish() {
  if (file_ == nullptr) fail(path_, "finish() called twice");
  header_.checksum = checksum_;
  const bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
                  std::fwrite(&header_, sizeof header_, 1, file_) == 1 &&
                  std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok) {
    std::remove(path_.c_str());
    fail(path_, "cannot finalize header");
  }
}

void write_samt(const std::string& path, TraceView ops,
                const std::string& name, std::uint64_t seed) {
  TraceWriter w(path, name, seed);
  w.append(ops);
  w.finish();
}

// ----------------------------------------------------------- TraceReader --

SamtHeader read_samt_header(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  const std::uint64_t bytes = file_size_of(path, f);
  SamtHeader h{};
  if (bytes < sizeof h || std::fread(&h, sizeof h, 1, f) != 1) {
    std::fclose(f);
    fail(path, "too short for a SAMT header");
  }
  std::fclose(f);
  validate_header(path, h, bytes);
  return h;
}

TraceReader::TraceReader(const std::string& path)
    : path_(path), header_(read_samt_header(path)) {}

std::string TraceReader::name() const { return header_name(header_); }

Trace TraceReader::read_all() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    fail(path_, std::string("cannot open: ") + std::strerror(errno));
  }
  Trace t;
  t.name = name();
  t.seed = header_.seed;
  bool ok = std::fseek(f, sizeof(SamtHeader), SEEK_SET) == 0;
  if (ok) {
    t.ops.resize(static_cast<std::size_t>(header_.count));
    ok = header_.count == 0 ||
         std::fread(t.ops.data(), sizeof(MicroOp),
                    static_cast<std::size_t>(header_.count),
                    f) == header_.count;
  }
  std::fclose(f);
  if (!ok) fail(path_, "truncated record array");
  const std::uint64_t sum =
      fnv1a_64(t.ops.data(), t.ops.size() * sizeof(MicroOp));
  if (sum != header_.checksum) fail(path_, "record checksum mismatch");
  return t;
}

// ----------------------------------------------------------- MappedTrace --

MappedTrace::MappedTrace(const std::string& path, bool verify_checksum) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "stat failed");
  }
  const auto bytes = static_cast<std::uint64_t>(st.st_size);
  if (bytes < sizeof(SamtHeader)) {
    ::close(fd);
    fail(path, "too short for a SAMT header");
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(bytes), PROT_READ,
                     MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    fail(path, std::string("mmap failed: ") + std::strerror(errno));
  }
  map_ = map;
  map_len_ = static_cast<std::size_t>(bytes);
  std::memcpy(&header_, map_, sizeof header_);
  try {
    validate_header(path, header_, bytes);
  } catch (...) {
    unmap();
    throw;
  }
  records_ = reinterpret_cast<const MicroOp*>(
      static_cast<const char*>(map_) + sizeof(SamtHeader));
  // Sequential replay: tell the kernel to read ahead aggressively.
  ::madvise(map_, map_len_, MADV_SEQUENTIAL);
  if (verify_checksum) {
    const std::uint64_t sum =
        fnv1a_64(records_, static_cast<std::size_t>(header_.count) *
                               sizeof(MicroOp));
    if (sum != header_.checksum) {
      unmap();
      fail(path, "record checksum mismatch");
    }
  }
}

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : header_(other.header_),
      map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      records_(std::exchange(other.records_, nullptr)) {}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    unmap();
    header_ = other.header_;
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    records_ = std::exchange(other.records_, nullptr);
  }
  return *this;
}

MappedTrace::~MappedTrace() { unmap(); }

void MappedTrace::advise_dontneed() const noexcept {
  if (map_ != nullptr) ::madvise(map_, map_len_, MADV_DONTNEED);
}

void MappedTrace::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
    records_ = nullptr;
  }
}

std::string MappedTrace::name() const { return header_name(header_); }

// ----------------------------------------------------------- text import --

namespace {

/// Oracle memory for the importer: program-order byte store, same
/// semantics as WorkloadGenerator's page map.
class OracleMemory {
 public:
  void store(Addr addr, std::uint32_t bytes, std::uint64_t value) {
    for (std::uint32_t i = 0; i < bytes; ++i) {
      bytes_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
  [[nodiscard]] std::uint64_t load(Addr addr, std::uint32_t bytes) const {
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < bytes; ++i) {
      const auto it = bytes_.find(addr + i);
      const std::uint8_t b = it == bytes_.end() ? 0 : it->second;
      v |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    return v;
  }

 private:
  std::unordered_map<Addr, std::uint8_t> bytes_;
};

[[nodiscard]] bool parse_op_class(const std::string& tok, OpClass& out) {
  for (const OpClass c :
       {OpClass::kIntAlu, OpClass::kIntMul, OpClass::kIntDiv, OpClass::kFpAlu,
        OpClass::kFpMul, OpClass::kFpDiv, OpClass::kLoad, OpClass::kStore,
        OpClass::kBranch, OpClass::kNop}) {
    if (tok == op_class_name(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

/// Parses a non-negative integer (decimal, or hex with 0x prefix),
/// rejecting trailing junk.
[[nodiscard]] bool parse_number(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(tok.c_str(), &end, 0);
  return errno == 0 && end == tok.c_str() + tok.size();
}

/// The producing op's destination register, provided it is still the
/// youngest writer of that register at `ops.size()` (otherwise the
/// dependency is unrepresentable through rename and is dropped).
[[nodiscard]] RegId dep_register(const std::vector<MicroOp>& ops,
                                 std::uint64_t distance) {
  if (distance == 0 || distance > ops.size()) return kNoReg;
  const std::size_t producer = ops.size() - static_cast<std::size_t>(distance);
  const RegId reg = ops[producer].dst;
  if (reg == kNoReg) return kNoReg;
  for (std::size_t i = producer + 1; i < ops.size(); ++i) {
    if (ops[i].dst == reg) return kNoReg;
  }
  return reg;
}

}  // namespace

Trace import_text_trace_from_string(const std::string& text,
                                    const std::string& origin) {
  Trace t;
  t.name = origin;
  t.seed = 0;
  OracleMemory oracle;
  Addr pc = 0x00400000;
  std::uint32_t next_int_dst = 0;
  std::uint32_t next_fp_dst = 0;
  std::uint64_t store_counter = 0;

  std::istringstream lines(text);
  std::string line;
  std::uint64_t lineno = 0;
  auto bad = [&](const std::string& what) -> TraceFormatError {
    return TraceFormatError(origin + ":" + std::to_string(lineno) + ": " +
                            what);
  };

  while (std::getline(lines, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::vector<std::string> tok;
    for (std::string f; fields >> f;) tok.push_back(std::move(f));
    if (tok.empty()) continue;

    OpClass cls{};
    if (!parse_op_class(tok[0], cls)) {
      throw bad("unknown op class '" + tok[0] + "'");
    }

    MicroOp op;
    op.op = cls;
    op.pc = pc;

    // Positional fields after the class: addr, size, dep1, dep2 (for
    // branches the addr column is the target and the size column the
    // taken flag; compute classes start at dep1).
    std::size_t f = 1;
    auto number_at = [&](std::size_t idx, const char* what) {
      std::uint64_t v = 0;
      if (idx >= tok.size() || !parse_number(tok[idx], v)) {
        throw bad(std::string("expected ") + what + " for '" + tok[0] + "'");
      }
      return v;
    };

    if (is_mem(cls)) {
      op.mem_addr = number_at(f++, "an address");
      const std::uint64_t size = number_at(f++, "an access size");
      if (size != 4 && size != 8) {
        throw bad("access size must be 4 or 8, got " + std::to_string(size));
      }
      if (op.mem_addr % size != 0) {
        throw bad("address 0x" + [&] {
          std::ostringstream os;
          os << std::hex << op.mem_addr;
          return os.str();
        }() + " is not " + std::to_string(size) + "-byte aligned");
      }
      op.mem_size = static_cast<std::uint8_t>(size);
    } else if (cls == OpClass::kBranch) {
      if (f < tok.size()) {
        const std::uint64_t taken = number_at(f++, "a taken flag (0/1)");
        if (taken > 1) throw bad("taken flag must be 0 or 1");
        op.taken = taken != 0;
      }
      if (f < tok.size()) {
        op.br_target = number_at(f++, "a branch target");
      } else {
        // Synthesized control flow: taken branches close a short backward
        // loop, not-taken ones skip ahead (both deterministic).
        op.br_target = op.taken && pc >= 64 ? pc - 64 : pc + 8;
      }
    }

    // Dependency distances (dynamic instructions back to the producer).
    RegId deps[2] = {kNoReg, kNoReg};
    for (int d = 0; d < 2 && f < tok.size(); ++d) {
      deps[d] = dep_register(t.ops, number_at(f++, "a dependency distance"));
    }
    if (f < tok.size()) throw bad("trailing fields after '" + tok[f] + "'");
    op.src1 = deps[0];
    op.src2 = deps[1];

    // Destinations: loads and compute ops produce a value; round-robin
    // over the architectural registers so recent producers stay live for
    // dependency encoding.
    if (cls == OpClass::kLoad || cls == OpClass::kIntAlu ||
        cls == OpClass::kIntMul || cls == OpClass::kIntDiv) {
      op.dst = static_cast<RegId>(1 + next_int_dst++ % (kNumIntRegs - 1));
    } else if (is_fp(cls)) {
      op.dst = static_cast<RegId>(kNumIntRegs + next_fp_dst++ % kNumFpRegs);
    }

    // Oracle values: stores write a deterministic token, loads record the
    // program-order-correct value (so the core's value check still runs).
    if (cls == OpClass::kStore) {
      op.value = 0x9E3779B97F4A7C15ULL * ++store_counter;
      oracle.store(op.mem_addr, op.mem_size, op.value);
    } else if (cls == OpClass::kLoad) {
      op.value = oracle.load(op.mem_addr, op.mem_size);
    }

    t.ops.push_back(op);
    pc += 4;
  }
  return t;
}

Trace import_text_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Trace t = import_text_trace_from_string(buf.str(), path);
  // Name the trace after the file, not its full path (the SAMT header
  // name field is 23 chars; error messages keep the full path).
  t.name = std::filesystem::path(path).stem().string();
  return t;
}

}  // namespace samie::trace
