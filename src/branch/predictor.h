// Branch prediction: 2-bit bimodal, gshare, the hybrid
// (bimodal + gshare + selector) of the paper's Table 2, and a
// set-associative BTB.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie::branch {

/// Saturating 2-bit counter helpers (00/01 = not taken, 10/11 = taken).
[[nodiscard]] constexpr bool counter_taken(std::uint8_t c) noexcept { return c >= 2; }
[[nodiscard]] constexpr std::uint8_t counter_update(std::uint8_t c, bool taken) noexcept {
  if (taken) return c < 3 ? static_cast<std::uint8_t>(c + 1) : c;
  return c > 0 ? static_cast<std::uint8_t>(c - 1) : c;
}

class BimodalPredictor {
 public:
  explicit BimodalPredictor(std::size_t entries = 2048);
  [[nodiscard]] bool predict(Addr pc) const;
  void update(Addr pc, bool taken);

 private:
  [[nodiscard]] std::size_t index(Addr pc) const;
  std::vector<std::uint8_t> table_;
};

class GsharePredictor {
 public:
  explicit GsharePredictor(std::size_t entries = 2048);
  [[nodiscard]] bool predict(Addr pc) const;
  void update(Addr pc, bool taken);

 private:
  [[nodiscard]] std::size_t index(Addr pc) const;
  std::vector<std::uint8_t> table_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

/// Hybrid: a selector table of 2-bit counters arbitrates between the
/// bimodal and gshare components (Table 2: 2K gshare, 2K bimodal, 1K
/// selector).
class HybridPredictor {
 public:
  HybridPredictor(std::size_t gshare_entries = 2048,
                  std::size_t bimodal_entries = 2048,
                  std::size_t selector_entries = 1024);

  [[nodiscard]] bool predict(Addr pc) const;
  void update(Addr pc, bool taken);

  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t mispredicts() const { return mispredicts_; }
  /// Predict + bookkeeping in one step: returns the prediction and counts
  /// a mispredict if it disagrees with `actual`.
  bool predict_and_update(Addr pc, bool actual);

 private:
  BimodalPredictor bimodal_;
  GsharePredictor gshare_;
  std::vector<std::uint8_t> selector_;
  mutable std::uint64_t lookups_ = 0;
  std::uint64_t mispredicts_ = 0;
};

/// Set-associative branch target buffer (Table 2: 2048 entries, 4-way).
class Btb {
 public:
  Btb(std::size_t entries = 2048, std::uint32_t ways = 4);

  struct Result {
    bool hit = false;
    Addr target = 0;
  };
  [[nodiscard]] Result lookup(Addr pc) const;
  void update(Addr pc, Addr target);

 private:
  struct Entry {
    Addr pc = 0;
    Addr target = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };
  std::size_t sets_;
  std::uint32_t ways_;
  std::vector<Entry> table_;
  std::uint64_t tick_ = 0;
};

}  // namespace samie::branch
