#include "src/branch/predictor.h"

#include <cassert>

namespace samie::branch {

BimodalPredictor::BimodalPredictor(std::size_t entries) : table_(entries, 1) {
  assert(is_pow2(entries));
}

std::size_t BimodalPredictor::index(Addr pc) const {
  return static_cast<std::size_t>((pc >> 2) & (table_.size() - 1));
}

bool BimodalPredictor::predict(Addr pc) const {
  return counter_taken(table_[index(pc)]);
}

void BimodalPredictor::update(Addr pc, bool taken) {
  auto& c = table_[index(pc)];
  c = counter_update(c, taken);
}

GsharePredictor::GsharePredictor(std::size_t entries)
    : table_(entries, 1), history_mask_(entries - 1) {
  assert(is_pow2(entries));
}

std::size_t GsharePredictor::index(Addr pc) const {
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & (table_.size() - 1));
}

bool GsharePredictor::predict(Addr pc) const {
  return counter_taken(table_[index(pc)]);
}

void GsharePredictor::update(Addr pc, bool taken) {
  auto& c = table_[index(pc)];
  c = counter_update(c, taken);
  history_ = ((history_ << 1U) | (taken ? 1U : 0U)) & history_mask_;
}

HybridPredictor::HybridPredictor(std::size_t gshare_entries,
                                 std::size_t bimodal_entries,
                                 std::size_t selector_entries)
    : bimodal_(bimodal_entries), gshare_(gshare_entries),
      selector_(selector_entries, 2) {
  assert(is_pow2(selector_entries));
}

bool HybridPredictor::predict(Addr pc) const {
  ++lookups_;
  const std::size_t si = static_cast<std::size_t>((pc >> 2) & (selector_.size() - 1));
  const bool use_gshare = counter_taken(selector_[si]);
  return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void HybridPredictor::update(Addr pc, bool taken) {
  const std::size_t si = static_cast<std::size_t>((pc >> 2) & (selector_.size() - 1));
  const bool g = gshare_.predict(pc);
  const bool b = bimodal_.predict(pc);
  // Train the selector toward the component that was right.
  if (g != b) selector_[si] = counter_update(selector_[si], g == taken);
  gshare_.update(pc, taken);
  bimodal_.update(pc, taken);
}

bool HybridPredictor::predict_and_update(Addr pc, bool actual) {
  const bool p = predict(pc);
  if (p != actual) ++mispredicts_;
  update(pc, actual);
  return p;
}

Btb::Btb(std::size_t entries, std::uint32_t ways)
    : sets_(entries / ways), ways_(ways), table_(entries) {
  assert(is_pow2(sets_));
}

Btb::Result Btb::lookup(Addr pc) const {
  const std::size_t set = static_cast<std::size_t>((pc >> 2) & (sets_ - 1));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const Entry& e = table_[set * ways_ + w];
    if (e.valid && e.pc == pc) return {true, e.target};
  }
  return {};
}

void Btb::update(Addr pc, Addr target) {
  const std::size_t set = static_cast<std::size_t>((pc >> 2) & (sets_ - 1));
  Entry* victim = &table_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = table_[set * ways_ + w];
    if (e.valid && e.pc == pc) {
      e.target = target;
      e.lru = ++tick_;
      return;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.lru < victim->lru) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->pc = pc;
  victim->target = target;
  victim->lru = ++tick_;
}

}  // namespace samie::branch
