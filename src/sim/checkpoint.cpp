#include "src/sim/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/trace/trace_io.h"  // fnv1a_64

namespace samie::sim {

namespace {

constexpr char kMagicLine[] = "# samie-sweep-checkpoint v1";

[[noreturn]] void io_fail(const std::string& path, const std::string& what) {
  throw CheckpointError(path + ": " + what);
}

[[nodiscard]] std::string fnv_hex(const std::string& payload) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64,
                trace::fnv1a_64(payload.data(), payload.size()));
  return buf;
}

/// Splits "TYPE\t<fnv64>\t<payload>" and validates the guard. Returns
/// false (torn line) on any mismatch.
[[nodiscard]] bool parse_guarded(const std::string& line, char type,
                                 std::string& payload) {
  if (line.size() < 20 || line[0] != type || line[1] != '\t' ||
      line[18] != '\t') {
    return false;
  }
  payload = line.substr(19);
  return line.compare(2, 16, fnv_hex(payload)) == 0;
}

void flush_and_sync(const std::string& path, std::FILE* f) {
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    io_fail(path, std::string("cannot sync: ") + std::strerror(errno));
  }
}

/// fsyncs the directory holding `path`, making the directory entry
/// itself durable: the per-record fsyncs persist the file's *contents*,
/// but the rename that created the file lives in the directory, and a
/// machine crash before a directory sync can lose the whole journal.
[[nodiscard]] bool sync_parent_dir(const std::string& path) noexcept {
  std::string dir;
  const std::size_t slash = path.find_last_of('/');
  dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

CheckpointWriter CheckpointWriter::create(const std::string& path,
                                          std::uint64_t njobs,
                                          std::uint64_t fingerprint) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    io_fail(tmp, std::string("cannot create: ") + std::strerror(errno));
  }
  std::ostringstream header;
  char fp[17];
  std::snprintf(fp, sizeof fp, "%016" PRIx64, fingerprint);
  header << njobs << '\t' << fp;
  const std::string line = std::string(kMagicLine) + "\nH\t" +
                           fnv_hex(header.str()) + '\t' + header.str() + '\n';
  if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    io_fail(tmp, "short write");
  }
  flush_and_sync(tmp, f);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    io_fail(path, std::string("cannot rename into place: ") +
                      std::strerror(errno));
  }
  if (!sync_parent_dir(path)) {
    io_fail(path, "cannot fsync parent directory after rename");
  }
  return append_to(path);
}

CheckpointWriter CheckpointWriter::append_to(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    io_fail(path, std::string("cannot open for append: ") +
                      std::strerror(errno));
  }
  return CheckpointWriter(path, f);
}

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : path_(std::move(other.path_)),
      file_(std::exchange(other.file_, nullptr)) {}

CheckpointWriter& CheckpointWriter::operator=(CheckpointWriter&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    file_ = std::exchange(other.file_, nullptr);
  }
  return *this;
}

CheckpointWriter::~CheckpointWriter() { close(); }

void CheckpointWriter::close() noexcept {
  if (file_ == nullptr) return;
  std::fflush(file_);
  ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  (void)sync_parent_dir(path_);
}

void CheckpointWriter::append_line(char type, const std::string& payload) {
  if (file_ == nullptr) io_fail(path_, "append on a closed or moved-from writer");
  if (payload.find('\n') != std::string::npos) {
    io_fail(path_, "record payload contains a newline");
  }
  const std::string line =
      std::string(1, type) + '\t' + fnv_hex(payload) + '\t' + payload + '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    io_fail(path_, "short write");
  }
  flush_and_sync(path_, file_);
}

void CheckpointWriter::append_record(const std::string& payload) {
  append_line('R', payload);
}

void CheckpointWriter::append_quarantine(const std::string& payload) {
  append_line('Q', payload);
}

void CheckpointWriter::append_damaged(const std::string& payload) {
  append_line('D', payload);
}

CheckpointContents load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    io_fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  CheckpointContents out;
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    io_fail(path, "not a sweep checkpoint (bad magic line)");
  }
  std::string payload;
  if (!std::getline(in, line) || !parse_guarded(line, 'H', payload)) {
    io_fail(path, "torn or missing checkpoint header");
  }
  {
    std::istringstream hs(payload);
    std::string fp;
    if (!(hs >> out.njobs >> fp) || fp.size() != 16) {
      io_fail(path, "malformed checkpoint header fields");
    }
    out.fingerprint = std::strtoull(fp.c_str(), nullptr, 16);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (parse_guarded(line, 'R', payload)) {
      out.records.push_back(std::move(payload));
    } else if (parse_guarded(line, 'Q', payload)) {
      out.quarantined.push_back(std::move(payload));
    } else if (parse_guarded(line, 'D', payload)) {
      out.damaged.push_back(std::move(payload));
    } else {
      // A torn tail after a kill mid-append, or bit rot: the FNV guard
      // rejects it and the job simply re-runs on resume.
      ++out.ignored_lines;
    }
  }
  return out;
}

// -- SimResult round-trip ----------------------------------------------------

namespace {

void put_u64(std::ostringstream& os, std::uint64_t v) { os << v << ' '; }

void put_f64(std::ostringstream& os, double v) {
  // C99 hexfloat: exact round-trip through strtod, independent of
  // locale and precision settings.
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf << ' ';
}

class TokenReader {
 public:
  explicit TokenReader(const std::string& text) : in_(text) {}
  bool u64(std::uint64_t& v) {
    std::string t;
    if (!(in_ >> t) || t.empty()) return false;
    char* end = nullptr;
    errno = 0;
    v = std::strtoull(t.c_str(), &end, 10);
    return errno == 0 && end == t.c_str() + t.size();
  }
  bool f64(double& v) {
    std::string t;
    if (!(in_ >> t) || t.empty()) return false;
    char* end = nullptr;
    v = std::strtod(t.c_str(), &end);
    return end == t.c_str() + t.size();
  }
  bool exhausted() {
    std::string t;
    return !(in_ >> t);
  }

 private:
  std::istringstream in_;
};

}  // namespace

std::string serialize_sim_result(const SimResult& r) {
  std::ostringstream os;
  const core::CoreResult& c = r.core;
  put_u64(os, c.cycles);
  put_u64(os, c.committed);
  put_f64(os, c.ipc);
  put_u64(os, c.mispredict_squashes);
  put_u64(os, c.deadlock_flushes);
  put_u64(os, c.loads_executed);
  put_u64(os, c.stores_committed);
  put_u64(os, c.forwarded_loads);
  put_u64(os, c.partial_forward_waits);
  put_u64(os, c.agen_gated);
  put_u64(os, c.value_mismatches);
  put_u64(os, c.dcache_way_known);
  put_u64(os, c.dcache_full);
  put_u64(os, c.dtlb_accesses);
  put_u64(os, c.dtlb_cached);
  put_u64(os, c.quiescent_cycles_skipped);
  put_u64(os, c.fast_forwards);
  put_f64(os, r.lsq_energy_nj);
  put_f64(os, r.lsq_distrib_nj);
  put_f64(os, r.lsq_shared_nj);
  put_f64(os, r.lsq_addrbuf_nj);
  put_f64(os, r.lsq_bus_nj);
  put_f64(os, r.dcache_energy_nj);
  put_f64(os, r.dtlb_energy_nj);
  put_f64(os, r.area_total);
  put_f64(os, r.area_distrib);
  put_f64(os, r.area_shared);
  put_f64(os, r.area_addrbuf);
  put_f64(os, r.shared_occupancy_mean);
  put_u64(os, r.shared_occupancy_max);
  put_f64(os, r.buffer_nonempty_frac);
  put_f64(os, r.buffer_occupancy_mean);
  put_u64(os, r.l1d_hits);
  put_u64(os, r.l1d_misses);
  put_u64(os, r.dtlb_hits);
  put_u64(os, r.dtlb_misses);
  put_u64(os, r.branch_mispredicts);
  put_u64(os, r.branch_lookups);
  for (std::size_t i = 0; i < LedgerCounts::kCount; ++i) {
    put_u64(os, r.ledgers.v[i]);
  }
  std::string s = os.str();
  if (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

bool parse_sim_result(const std::string& text, SimResult& out) {
  TokenReader in(text);
  SimResult r;
  core::CoreResult& c = r.core;
  const bool ok =
      in.u64(c.cycles) && in.u64(c.committed) && in.f64(c.ipc) &&
      in.u64(c.mispredict_squashes) && in.u64(c.deadlock_flushes) &&
      in.u64(c.loads_executed) && in.u64(c.stores_committed) &&
      in.u64(c.forwarded_loads) && in.u64(c.partial_forward_waits) &&
      in.u64(c.agen_gated) && in.u64(c.value_mismatches) &&
      in.u64(c.dcache_way_known) && in.u64(c.dcache_full) &&
      in.u64(c.dtlb_accesses) && in.u64(c.dtlb_cached) &&
      in.u64(c.quiescent_cycles_skipped) && in.u64(c.fast_forwards) &&
      in.f64(r.lsq_energy_nj) && in.f64(r.lsq_distrib_nj) &&
      in.f64(r.lsq_shared_nj) && in.f64(r.lsq_addrbuf_nj) &&
      in.f64(r.lsq_bus_nj) && in.f64(r.dcache_energy_nj) &&
      in.f64(r.dtlb_energy_nj) && in.f64(r.area_total) &&
      in.f64(r.area_distrib) && in.f64(r.area_shared) &&
      in.f64(r.area_addrbuf) && in.f64(r.shared_occupancy_mean) &&
      in.u64(r.shared_occupancy_max) && in.f64(r.buffer_nonempty_frac) &&
      in.f64(r.buffer_occupancy_mean) && in.u64(r.l1d_hits) &&
      in.u64(r.l1d_misses) && in.u64(r.dtlb_hits) && in.u64(r.dtlb_misses) &&
      in.u64(r.branch_mispredicts) && in.u64(r.branch_lookups);
  if (!ok) return false;
  for (std::size_t i = 0; i < LedgerCounts::kCount; ++i) {
    if (!in.u64(r.ledgers.v[i])) return false;
  }
  if (!in.exhausted()) return false;
  out = r;
  return true;
}

}  // namespace samie::sim
