// Process-isolated job execution: fork a child per job, jail it with
// rlimits, and read its SimResult back over a guarded pipe frame
// (src/sim/proc_frame.h).
//
// This is the containment layer under `samie_sim --isolate` /
// SweepOptions::isolate_procs. The in-process executors survive
// anything a job can *throw*; this one survives anything a job can *do
// to the process* — SIGSEGV, a glibc abort, an allocation bomb, a
// runaway loop that never reaches the cooperative cancel check. The
// child is fork() without exec: it inherits the parent's mappings (the
// trace view stays valid, and crash backtrace addresses symbolize in
// the parent), runs exactly the run_simulation the in-process executors
// run, serializes the result through the same hexfloat text as the
// checkpoint journal, and _exit()s. That round trip is bit-exact, which
// is what makes isolated sweeps byte-identical to pool/lane sweeps.
//
// Child lifecycle:
//   1. install async-signal-safe crash handlers (SIGSEGV/SIGBUS/SIGILL/
//      SIGFPE/SIGABRT) writing a CrashWire record to a pre-opened pipe,
//      and a SIGTERM handler that flips the cooperative cancel token
//   2. apply ChildLimits (RLIMIT_AS / RLIMIT_CPU)
//   3. run the injected fault, if any, then run_simulation
//   4. write one result or error frame, _exit(0)
//
// The parent polls children with waitpid(WNOHANG) and decodes each fate
// into an Event; policy (retry, quarantine, outcome taxonomy) stays in
// the sweep scheduler. ProcessExecutor itself is single-threaded and
// must only be used from a single-threaded parent: fork() in a
// multi-threaded process clones only the calling thread, so a child
// forked while another thread holds (say) the malloc lock can deadlock.
// The sweep scheduler guarantees this by not starting the deadline
// supervisor thread in isolate mode.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/sweep_scheduler.h"
#include "src/trace/trace_view.h"

namespace samie::sim {

/// Per-child resource jail; 0 = unlimited.
struct ChildLimits {
  std::uint64_t mem_mb = 0;  ///< RLIMIT_AS, MiB (whole address space)
  std::uint64_t cpu_s = 0;   ///< RLIMIT_CPU, seconds
};

class ProcessExecutor {
 public:
  /// How a child ended, before sweep policy is applied.
  enum class FateKind : std::uint8_t {
    kResult,            ///< exit 0 with a valid result frame
    kError,             ///< exit 0 with a valid error frame (see error_class)
    kCrashed,           ///< fatal signal not sent by us (SIGSEGV, ...)
    kResourceExceeded,  ///< SIGXCPU, or a SIGKILL we did not send (OOM killer)
    kKilled,            ///< our own SIGTERM/SIGKILL landed (deadline path)
    kBadFrame,          ///< exit 0 but the result frame is torn or corrupt
    kBadExit,           ///< nonzero exit without a usable frame
  };

  struct Event {
    std::uint64_t key = 0;
    FateKind fate = FateKind::kBadExit;
    SimResult result;         ///< kResult only
    std::string error_class;  ///< kError only: a kErr* tag from proc_frame.h
    std::string what;         ///< human-readable fate description
    int signal = 0;           ///< terminating signal, if any
    int exit_code = 0;        ///< kBadExit only
    CrashRecord crash;        ///< kCrashed only, best effort
  };

  ProcessExecutor() = default;
  ProcessExecutor(const ProcessExecutor&) = delete;
  ProcessExecutor& operator=(const ProcessExecutor&) = delete;
  /// SIGKILLs and reaps any children still alive (abnormal unwind only —
  /// the scheduler drains via poll()).
  ~ProcessExecutor();

  /// Forks one child for `key`. The trace view must stay valid in the
  /// parent until the child's Event is returned (the child reads the
  /// inherited mapping). `fault` may be nullptr; isolation-only fault
  /// kinds execute inside the child. Throws TransientFault when pipe(2)
  /// or fork(2) fail (EAGAIN/ENOMEM are load conditions — the scheduler
  /// retries with backoff).
  void spawn(std::uint64_t key, const SimConfig& cfg, trace::TraceView trace,
             const SweepFault* fault, const ChildLimits& limits);

  [[nodiscard]] std::size_t active() const noexcept { return children_.size(); }

  /// Reaps at most one exited child (non-blocking) and decodes its fate.
  /// Returns nullopt when every child is still running.
  [[nodiscard]] std::optional<Event> poll();

  /// Deadline escalation: SIGTERM (the child's handler flips its cancel
  /// token and it unwinds into an "aborted" error frame), then — for
  /// children that ignore it — kill() after the grace period.
  void term(std::uint64_t key) noexcept;
  void kill(std::uint64_t key) noexcept;

 private:
  struct Child {
    std::uint64_t key = 0;
    pid_t pid = -1;
    int result_fd = -1;  ///< read end of the result-frame pipe
    int crash_fd = -1;   ///< read end of the crash-forensics pipe
    bool sent_term = false;
    bool sent_kill = false;
  };

  [[nodiscard]] Event decode_fate(const Child& ch, int status);

  std::vector<Child> children_;
};

}  // namespace samie::sim
