// Wire format between an isolated child process and its parent
// supervisor (src/sim/process_executor.h): a versioned, length-prefixed
// frame with an FNV-1a guard over the payload, written once down the
// result pipe before the child exits.
//
// Frame layout (little-endian, 16-byte header):
//
//   u32 magic    "SMFR"
//   u16 version  kFrameVersion
//   u16 kind     FrameKind
//   u64 payload_bytes
//   ... payload ...
//   u64 fnv1a_64(payload)
//
// A result frame's payload is the serialize_sim_result text (hexfloat
// doubles — the parent reconstructs the exact SimResult bits, which is
// what makes isolated sweeps bit-identical to in-process ones). An
// error frame's payload is "<class>\x1f<what>" where class is one of
// the kErr* strings below. decode_frame returns nullopt on ANY defect —
// short buffer, bad magic/version, length mismatch, guard mismatch — so
// a child killed mid-write surfaces as a structured failure, never as
// garbage statistics.
//
// CrashWire is the fixed-size binary record the child's async-signal-
// safe crash handler writes to its pre-opened crash pipe: plain stores
// and one write(2), nothing that allocates.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include "src/trace/trace_io.h"  // fnv1a_64

namespace samie::sim {

enum class FrameKind : std::uint16_t { kResult = 1, kError = 2 };

inline constexpr std::uint32_t kFrameMagic = 0x52464d53u;  // "SMFR"
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Sanity cap: a serialized SimResult is ~1 KB; anything near this is a
/// corrupt length field, not a real payload.
inline constexpr std::uint64_t kFrameMaxPayload = 1u << 20;

/// Error-frame class tags (payload = class + '\x1f' + what).
inline constexpr char kErrTransient[] = "transient";
inline constexpr char kErrDeterministic[] = "deterministic";
inline constexpr char kErrResource[] = "resource";
inline constexpr char kErrAborted[] = "aborted";

[[nodiscard]] inline std::string encode_frame(FrameKind kind,
                                              const std::string& payload) {
  std::string out;
  out.resize(kFrameHeaderBytes + payload.size() + 8);
  char* p = out.data();
  const std::uint32_t magic = kFrameMagic;
  const std::uint16_t version = kFrameVersion;
  const std::uint16_t k = static_cast<std::uint16_t>(kind);
  const std::uint64_t len = payload.size();
  std::memcpy(p + 0, &magic, 4);
  std::memcpy(p + 4, &version, 2);
  std::memcpy(p + 6, &k, 2);
  std::memcpy(p + 8, &len, 8);
  std::memcpy(p + 16, payload.data(), payload.size());
  const std::uint64_t guard = trace::fnv1a_64(payload.data(), payload.size());
  std::memcpy(p + 16 + payload.size(), &guard, 8);
  return out;
}

struct DecodedFrame {
  FrameKind kind = FrameKind::kError;
  std::string payload;
};

/// Strict decode of one frame occupying `bytes` exactly (trailing junk
/// is a defect too: the child writes one frame and exits).
[[nodiscard]] inline std::optional<DecodedFrame> decode_frame(
    const std::string& bytes) {
  if (bytes.size() < kFrameHeaderBytes + 8) return std::nullopt;
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t kind = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, bytes.data() + 0, 4);
  std::memcpy(&version, bytes.data() + 4, 2);
  std::memcpy(&kind, bytes.data() + 6, 2);
  std::memcpy(&len, bytes.data() + 8, 8);
  if (magic != kFrameMagic || version != kFrameVersion) return std::nullopt;
  if (kind != static_cast<std::uint16_t>(FrameKind::kResult) &&
      kind != static_cast<std::uint16_t>(FrameKind::kError)) {
    return std::nullopt;
  }
  if (len > kFrameMaxPayload ||
      bytes.size() != kFrameHeaderBytes + len + 8) {
    return std::nullopt;
  }
  DecodedFrame out;
  out.kind = static_cast<FrameKind>(kind);
  out.payload.assign(bytes.data() + kFrameHeaderBytes,
                     static_cast<std::size_t>(len));
  std::uint64_t guard = 0;
  std::memcpy(&guard, bytes.data() + kFrameHeaderBytes + len, 8);
  if (guard != trace::fnv1a_64(out.payload.data(), out.payload.size())) {
    return std::nullopt;
  }
  return out;
}

// -- crash forensics wire record ---------------------------------------------

inline constexpr int kCrashMaxFrames = 32;
inline constexpr std::uint64_t kCrashMagic = 0x48535243494d4153ULL;  // "SAMICRSH"

/// Written whole from the signal handler with a single write(2): the
/// record is well under PIPE_BUF, so the write is atomic.
struct CrashWire {
  std::uint64_t magic = kCrashMagic;
  std::int32_t signal = 0;
  std::int32_t nframes = 0;
  std::uint64_t fault_addr = 0;
  std::uint64_t frames[kCrashMaxFrames] = {};
};
static_assert(std::is_trivially_copyable_v<CrashWire>);

[[nodiscard]] inline std::optional<CrashWire> decode_crash_wire(
    const std::string& bytes) {
  if (bytes.size() < sizeof(CrashWire)) return std::nullopt;
  CrashWire w;
  std::memcpy(&w, bytes.data(), sizeof w);
  if (w.magic != kCrashMagic) return std::nullopt;
  if (w.nframes < 0) w.nframes = 0;
  if (w.nframes > kCrashMaxFrames) w.nframes = kCrashMaxFrames;
  return w;
}

}  // namespace samie::sim
