#include "src/sim/process_executor.h"

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <thread>

#include "src/core/core.h"
#include "src/sim/checkpoint.h"  // serialize_sim_result / parse_sim_result
#include "src/sim/proc_frame.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"

namespace samie::sim {

namespace {

// -- child side --------------------------------------------------------------

/// Cooperative cancel token: the SIGTERM handler flips it, the core's
/// cycle loop polls it, and the child unwinds into an "aborted" frame.
std::atomic<bool> g_cancel{false};

/// Crash pipe write end, opened before the handlers are installed so
/// the handler itself never opens anything.
int g_crash_fd = -1;

extern "C" void sigterm_handler(int) {
  g_cancel.store(true, std::memory_order_relaxed);
}

/// Async-signal-safe by construction: plain stores into a stack
/// CrashWire, backtrace() (primed at install time so its lazy libgcc
/// init already happened), one write(2), then re-raise with the default
/// disposition so the parent's waitpid sees the real signal.
extern "C" void crash_handler(int sig, siginfo_t* si, void*) {
  CrashWire w;
  w.signal = sig;
  w.fault_addr =
      si != nullptr ? reinterpret_cast<std::uint64_t>(si->si_addr) : 0;
  void* frames[kCrashMaxFrames];
  int n = ::backtrace(frames, kCrashMaxFrames);
  if (n < 0) n = 0;
  if (n > kCrashMaxFrames) n = kCrashMaxFrames;
  w.nframes = n;
  for (int i = 0; i < n; ++i) {
    w.frames[i] = reinterpret_cast<std::uint64_t>(frames[i]);
  }
  if (g_crash_fd >= 0) {
    const char* p = reinterpret_cast<const char*>(&w);
    std::size_t left = sizeof w;
    while (left > 0) {
      const ssize_t r = ::write(g_crash_fd, p, left);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        break;
      }
      p += r;
      left -= static_cast<std::size_t>(r);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_child_handlers(int crash_fd) {
  g_crash_fd = crash_fd;
  // Prime backtrace's one-time unwinder setup outside the handler.
  void* prime[2];
  (void)::backtrace(prime, 2);
  // Alternate stack so a stack-overflow SIGSEGV still gets a record.
  // (SIGSTKSZ stopped being a compile-time constant in glibc 2.34.)
  static char alt_stack[64 * 1024];
  stack_t ss{};
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof alt_stack;
  (void)::sigaltstack(&ss, nullptr);
  struct sigaction sa{};
  sa.sa_sigaction = crash_handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    (void)::sigaction(sig, &sa, nullptr);
  }
  struct sigaction term{};
  term.sa_handler = sigterm_handler;
  sigemptyset(&term.sa_mask);
  (void)::sigaction(SIGTERM, &term, nullptr);
}

void apply_limits(const ChildLimits& lim) {
  if (lim.mem_mb != 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max = lim.mem_mb << 20;
    (void)::setrlimit(RLIMIT_AS, &rl);
  }
  if (lim.cpu_s != 0) {
    rlimit rl{};
    // Soft limit delivers SIGXCPU (the fate the parent decodes); the
    // hard limit sits a little above as the SIGKILL backstop — with
    // soft == hard Linux goes straight to SIGKILL.
    rl.rlim_cur = lim.cpu_s;
    rl.rlim_max = lim.cpu_s + 2;
    (void)::setrlimit(RLIMIT_CPU, &rl);
  }
}

[[nodiscard]] bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

[[nodiscard]] std::string error_payload(const char* cls,
                                        const std::string& what) {
  return std::string(cls) + '\x1f' + what;
}

/// Executes an isolation-only (or generic) injected fault inside the
/// child. kCrash/kOom/kSpin deliberately take the process down — the
/// whole point is proving the parent contains them.
void run_child_fault(const SweepFault& f) {
  switch (f.kind) {
    case SweepFault::Kind::kThrowTransient:
      throw TransientFault("injected transient fault (job " +
                           std::to_string(f.job) + ", attempt " +
                           std::to_string(f.attempt) + ")");
    case SweepFault::Kind::kThrowDeterministic:
      throw std::logic_error("injected deterministic fault (job " +
                             std::to_string(f.job) + ", attempt " +
                             std::to_string(f.attempt) + ")");
    case SweepFault::Kind::kDelay:
      std::this_thread::sleep_for(f.delay);
      break;
    case SweepFault::Kind::kSpuriousWake:
      break;  // no supervisor thread exists in isolate mode
    case SweepFault::Kind::kCrash: {
      // Poisoned, non-null address so the forensics record carries a
      // recognizable si_addr. The volatile reload of the address keeps
      // the compiler from proving (and flagging) the bad store.
      volatile std::uintptr_t addr = 0x2a;
      volatile int* poison = reinterpret_cast<volatile int*>(addr);
      *poison = 1;
      break;
    }
    case SweepFault::Kind::kOom: {
      // Allocation bomb: 8 MiB chunks, touched so overcommit cannot
      // defer the failure, until the RLIMIT_AS jail throws bad_alloc.
      std::vector<std::unique_ptr<char[]>> bomb;
      constexpr std::size_t kChunk = 8u << 20;
      for (;;) {
        bomb.push_back(std::make_unique<char[]>(kChunk));
        std::memset(bomb.back().get(), 0xab, kChunk);
      }
    }
    case SweepFault::Kind::kSpin:
      // Ignores the cancel token on purpose: only the parent's
      // SIGKILL (or the RLIMIT_CPU jail) can end this.
      for (volatile std::uint64_t n = 0;;) n = n + 1;
    case SweepFault::Kind::kTornFrame:
      break;  // handled in child_main (needs the result fd)
  }
}

[[noreturn]] void child_main(const SimConfig& cfg_in, trace::TraceView trace,
                             const SweepFault* fault, const ChildLimits& lim,
                             int result_fd, int crash_fd) {
  install_child_handlers(crash_fd);
  apply_limits(lim);
  FrameKind kind = FrameKind::kError;
  std::string payload;
  try {
    if (fault != nullptr && fault->kind == SweepFault::Kind::kTornFrame) {
      // Simulate a child dying mid-write: half a valid frame, clean exit.
      const std::string full =
          encode_frame(FrameKind::kResult, std::string(64, 'x'));
      (void)write_all(result_fd, full.data(), full.size() / 2);
      ::_exit(0);
    }
    if (fault != nullptr) run_child_fault(*fault);
    SimConfig cfg = cfg_in;
    cfg.core.should_abort = &g_cancel;
    const SimResult r = run_simulation(cfg, trace);
    kind = FrameKind::kResult;
    payload = serialize_sim_result(r);
  } catch (const core::SimulationAborted& e) {
    payload = error_payload(kErrAborted, e.what());
  } catch (const TransientFault& e) {
    payload = error_payload(kErrTransient, e.what());
  } catch (const trace::TraceFormatError& e) {
    payload = error_payload(kErrTransient, e.what());
  } catch (const std::bad_alloc&) {
    payload =
        lim.mem_mb != 0
            ? error_payload(kErrResource,
                            "allocation failed inside the RLIMIT_AS jail (" +
                                std::to_string(lim.mem_mb) + " MiB)")
            : error_payload(kErrTransient, "std::bad_alloc");
  } catch (const std::exception& e) {
    payload = error_payload(kErrDeterministic, e.what());
  } catch (...) {
    payload = error_payload(kErrDeterministic, "non-standard exception");
  }
  const std::string frame = encode_frame(kind, payload);
  // _exit, never exit: the child must not run the parent's atexit
  // handlers or flush its copies of the parent's stdio buffers.
  ::_exit(write_all(result_fd, frame.data(), frame.size()) ? 0 : 121);
}

// -- parent side -------------------------------------------------------------

/// Drains a pipe to EOF. Only called after the child is reaped, so the
/// write end is gone and this never blocks indefinitely. Capped well
/// above kFrameMaxPayload; a corrupt frame length cannot balloon this.
[[nodiscard]] std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  while (out.size() < kFrameMaxPayload + 64 * 1024) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    out.append(buf, static_cast<std::size_t>(r));
  }
  return out;
}

[[nodiscard]] std::string hex_addr(std::uint64_t a) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, a);
  return buf;
}

/// Symbolizes the CrashWire addresses. fork() without exec means the
/// child shared our mappings, so backtrace_symbols on *our* side
/// resolves the child's frames. Tabs/newlines are scrubbed so frames
/// survive the journal and report grammars.
[[nodiscard]] CrashRecord decode_crash(const std::string& bytes,
                                       int fallback_signal) {
  CrashRecord rec;
  rec.signal = fallback_signal;
  const std::optional<CrashWire> w = decode_crash_wire(bytes);
  if (!w) return rec;
  if (w->signal != 0) rec.signal = w->signal;
  rec.fault_addr = w->fault_addr;
  std::vector<void*> addrs(static_cast<std::size_t>(w->nframes));
  for (int i = 0; i < w->nframes; ++i) {
    addrs[static_cast<std::size_t>(i)] =
        reinterpret_cast<void*>(w->frames[i]);
  }
  char** syms = addrs.empty()
                    ? nullptr
                    : ::backtrace_symbols(addrs.data(),
                                          static_cast<int>(addrs.size()));
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    std::string frame = syms != nullptr && syms[i] != nullptr
                            ? syms[i]
                            : hex_addr(w->frames[i]);
    for (char& c : frame) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    rec.frames.push_back(std::move(frame));
  }
  std::free(syms);
  return rec;
}

}  // namespace

ProcessExecutor::~ProcessExecutor() {
  for (Child& ch : children_) {
    (void)::kill(ch.pid, SIGKILL);
    int status = 0;
    while (::waitpid(ch.pid, &status, 0) < 0 && errno == EINTR) {
    }
    ::close(ch.result_fd);
    ::close(ch.crash_fd);
  }
}

void ProcessExecutor::spawn(std::uint64_t key, const SimConfig& cfg,
                            trace::TraceView trace, const SweepFault* fault,
                            const ChildLimits& limits) {
  int result_fds[2] = {-1, -1};
  int crash_fds[2] = {-1, -1};
  if (::pipe(result_fds) != 0) {
    throw TransientFault(std::string("pipe failed: ") + std::strerror(errno));
  }
  if (::pipe(crash_fds) != 0) {
    const int e = errno;
    ::close(result_fds[0]);
    ::close(result_fds[1]);
    throw TransientFault(std::string("pipe failed: ") + std::strerror(e));
  }
  // The child shares our stdio buffers; flush so it cannot re-emit them.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int e = errno;
    for (int fd : {result_fds[0], result_fds[1], crash_fds[0], crash_fds[1]}) {
      ::close(fd);
    }
    throw TransientFault(std::string("fork failed: ") + std::strerror(e));
  }
  if (pid == 0) {
    ::close(result_fds[0]);
    ::close(crash_fds[0]);
    child_main(cfg, trace, fault, limits, result_fds[1], crash_fds[1]);
  }
  // Close the write ends immediately: EOF on the read ends must mean
  // "this child is done", even with later children inheriting our fds.
  ::close(result_fds[1]);
  ::close(crash_fds[1]);
  Child ch;
  ch.key = key;
  ch.pid = pid;
  ch.result_fd = result_fds[0];
  ch.crash_fd = crash_fds[0];
  children_.push_back(ch);
}

std::optional<ProcessExecutor::Event> ProcessExecutor::poll() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    Child& ch = children_[i];
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(ch.pid, &status, WNOHANG);
    } while (r < 0 && errno == EINTR);
    if (r == 0) continue;
    Event ev = decode_fate(ch, r < 0 ? -1 : status);
    ::close(ch.result_fd);
    ::close(ch.crash_fd);
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(i));
    return ev;
  }
  return std::nullopt;
}

void ProcessExecutor::term(std::uint64_t key) noexcept {
  for (Child& ch : children_) {
    if (ch.key == key && !ch.sent_term) {
      ch.sent_term = true;
      (void)::kill(ch.pid, SIGTERM);
    }
  }
}

void ProcessExecutor::kill(std::uint64_t key) noexcept {
  for (Child& ch : children_) {
    if (ch.key == key && !ch.sent_kill) {
      ch.sent_kill = true;
      (void)::kill(ch.pid, SIGKILL);
    }
  }
}

ProcessExecutor::Event ProcessExecutor::decode_fate(const Child& ch,
                                                    int status) {
  Event ev;
  ev.key = ch.key;
  // The child is reaped: both pipes drain to EOF without blocking.
  const std::string frame_bytes = read_all(ch.result_fd);
  const std::string crash_bytes = read_all(ch.crash_fd);
  if (status < 0) {
    ev.fate = FateKind::kBadExit;
    ev.what = "waitpid failed for the child";
    return ev;
  }
  if (WIFSIGNALED(status)) {
    ev.signal = WTERMSIG(status);
    if ((ev.signal == SIGTERM && ch.sent_term) ||
        (ev.signal == SIGKILL && ch.sent_kill)) {
      ev.fate = FateKind::kKilled;
      ev.what = ev.signal == SIGKILL
                    ? "hard-killed (SIGKILL) after the SIGTERM grace expired"
                    : "terminated (SIGTERM) at the deadline";
      return ev;
    }
    if (ev.signal == SIGXCPU) {
      ev.fate = FateKind::kResourceExceeded;
      ev.what = "RLIMIT_CPU exceeded (SIGXCPU)";
      return ev;
    }
    if (ev.signal == SIGKILL) {
      // We did not send it and no rlimit delivers SIGKILL: almost
      // certainly the kernel OOM killer.
      ev.fate = FateKind::kResourceExceeded;
      ev.what = "killed (SIGKILL not sent by the supervisor — likely the "
                "kernel OOM killer)";
      return ev;
    }
    ev.fate = FateKind::kCrashed;
    ev.crash = decode_crash(crash_bytes, ev.signal);
    ev.what = "child crashed with " + signal_name(ev.signal);
    if (ev.crash.fault_addr != 0) {
      ev.what += " at " + hex_addr(ev.crash.fault_addr);
    }
    return ev;
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  ev.exit_code = code;
  if (code != 0) {
    ev.fate = FateKind::kBadExit;
    ev.what = "child exited with code " + std::to_string(code) +
              " without a usable result";
    return ev;
  }
  const std::optional<DecodedFrame> frame = decode_frame(frame_bytes);
  if (!frame) {
    ev.fate = FateKind::kBadFrame;
    ev.what = "truncated or corrupt result frame (" +
              std::to_string(frame_bytes.size()) + " bytes)";
    return ev;
  }
  if (frame->kind == FrameKind::kResult) {
    if (!parse_sim_result(frame->payload, ev.result)) {
      ev.fate = FateKind::kBadFrame;
      ev.what = "result frame payload failed to parse";
      return ev;
    }
    ev.fate = FateKind::kResult;
    return ev;
  }
  const std::size_t sep = frame->payload.find('\x1f');
  if (sep == std::string::npos) {
    ev.fate = FateKind::kBadFrame;
    ev.what = "error frame payload missing its class separator";
    return ev;
  }
  ev.fate = FateKind::kError;
  ev.error_class = frame->payload.substr(0, sep);
  ev.what = frame->payload.substr(sep + 1);
  return ev;
}

}  // namespace samie::sim
