// Sharded replay of one long SAMT v2 trace, with exact integer-ledger
// stat reconciliation.
//
// The v2 footer index makes block boundaries addressable, so a single
// long recording can run as N block-aligned shard jobs — each an
// ordinary sweep job (pool, lanes or an isolated child), each decoding
// only its own blocks. Every shard replays a warm-up prefix ahead of its
// measured range and reports *measured-region* statistics as the
// difference of two complete runs (ShardLane in lane_engine.cpp):
//
//   measured(shard i) = R([warm_start_i, end_i)) - R([warm_start_i, begin_i))
//
// With a full warm-up prefix (warm_start_i == 0, the default), shard
// i's base run and shard i-1's whole run are the SAME complete
// deterministic run, so summing the per-shard differences telescopes:
// every integer counter — cycles and drain overhead included — of the
// merged result equals the unsharded run's bit for bit, and the energy
// re-fold over the merged raw ledger counts reproduces the unsharded
// energies bit for bit too. A partial warm-up (--shard-warmup=W) trades
// that exactness for O(N*W) instead of O(N*T) replay cost: the classic
// sampled-simulation approximation. FP-accumulated statistics (occupancy
// means, area integrals) have no integer sufficient statistic and are
// reconciled cycle-weighted — documented approximate either way.
// docs/SWEEP_ROBUSTNESS.md covers the semantics and the exactness scope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/sim/sim_config.h"
#include "src/sim/simulator.h"

namespace samie::sim {

/// One shard of a sharded-replay plan: the job plus the measured range
/// it covers (for reporting and reconciliation bookkeeping).
struct TraceShardJob {
  Job job;
  std::uint64_t measure_begin = 0;
  std::uint64_t measure_end = 0;
};

/// Splits `base` (a job whose config.trace_path names a SAMT v2 trace)
/// into `shards` block-aligned shard jobs covering the records `base`
/// would replay (min(header count, base.config.instructions)). Shard
/// boundaries land on block starts — blocks are the v2 unit of random
/// access — distributed as evenly as the block sizes allow; shards that
/// would be empty are dropped, so fewer jobs than `shards` can return.
/// `warmup` is the per-shard warm-up prefix in records (UINT64_MAX =
/// full prefix: the exact mode). Shard job programs are suffixed
/// "#i/N" so journal lines and CSV rows stay distinguishable.
/// Throws TraceFormatError (or TraceCorruptError) if the trace cannot
/// be opened or indexed, and std::invalid_argument for a v1 trace or
/// shards == 0.
[[nodiscard]] std::vector<TraceShardJob> make_trace_shard_jobs(
    const Job& base, std::uint32_t shards, std::uint64_t warmup);

/// Measured-region statistics as the difference of two complete runs of
/// the same machine (whole minus base). Integer counters subtract in
/// wrap-around space — per-shard values can transiently "borrow" when a
/// drain effect lands in the base run, and the borrow cancels exactly in
/// the telescoped sum. Energies are re-folded from the subtracted raw
/// ledger counts through `cfg`'s constants; ipc is recomputed; occupancy
/// means are reconstructed cycle-weighted; area integrals subtract in FP
/// (approximate).
[[nodiscard]] SimResult subtract_measured(const SimResult& whole,
                                          const SimResult& base,
                                          const SimConfig& cfg);

/// Reconciles per-shard measured results into one whole-trace result:
/// integer counters and raw ledger counts sum (associative, any order),
/// energies re-fold from the summed counts, ipc is recomputed, occupancy
/// means merge cycle-weighted, maxima take the max, area integrals sum.
/// With full warm-up the integer fields and every energy are bit-equal
/// to the unsharded run over the same region. Throws
/// std::invalid_argument on an empty vector.
[[nodiscard]] SimResult merge_shard_results(
    const std::vector<SimResult>& shards, const SimConfig& cfg);

}  // namespace samie::sim
