// The simulator façade: builds core + memory + predictor + LSQ + ledgers
// from a SimConfig, runs a trace, and folds everything the paper's figures
// need into one SimResult.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/stats.h"
#include "src/sim/sim_config.h"
#include "src/trace/instruction.h"
#include "src/trace/trace_view.h"

namespace samie::sim {

/// Raw integer event counts of every energy ledger, in one flat array.
/// Carrying them beside the folded energies is what makes sharded-replay
/// reconciliation exact: per-shard counts subtract and merge as integers
/// (associative, order-independent), and the merged counts re-fold to
/// energy through the same constants — bit-identical to an unsharded
/// run's fold. Layout: [kConv..) ConvLsqLedger, [kSamie..) SamieLsqLedger,
/// [kDcache..) DcacheLedger, [kDtlb..) DtlbLedger.
struct LedgerCounts {
  static constexpr std::size_t kConv = 0;     ///< 4 counts
  static constexpr std::size_t kSamie = 4;    ///< 20 counts
  static constexpr std::size_t kDcache = 24;  ///< 2 counts
  static constexpr std::size_t kDtlb = 26;    ///< 2 counts
  static constexpr std::size_t kCount = 28;
  std::uint64_t v[kCount] = {};
};

struct SimResult {
  // -- timing -----------------------------------------------------------------
  core::CoreResult core;

  // -- dynamic energy (nJ) ------------------------------------------------------
  double lsq_energy_nj = 0.0;      ///< total for the LSQ organization
  double lsq_distrib_nj = 0.0;     ///< SAMIE breakdown (Figure 8)
  double lsq_shared_nj = 0.0;
  double lsq_addrbuf_nj = 0.0;
  double lsq_bus_nj = 0.0;
  double dcache_energy_nj = 0.0;   ///< Figure 9
  double dtlb_energy_nj = 0.0;     ///< Figure 10

  // -- active area integrals (um^2 * cycles) -----------------------------------
  double area_total = 0.0;         ///< Figure 11
  double area_distrib = 0.0;       ///< Figure 12 breakdown
  double area_shared = 0.0;
  double area_addrbuf = 0.0;

  // -- occupancy ------------------------------------------------------------------
  double shared_occupancy_mean = 0.0;   ///< Figure 3 (unbounded SharedLSQ)
  std::uint64_t shared_occupancy_max = 0;
  double buffer_nonempty_frac = 0.0;    ///< Figure 4 (cycles AddrBuffer busy)
  double buffer_occupancy_mean = 0.0;

  // -- memory-system counters ---------------------------------------------------
  std::uint64_t l1d_hits = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t dtlb_hits = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t branch_mispredicts = 0;
  std::uint64_t branch_lookups = 0;

  // -- raw ledger counts (shard reconciliation; see LedgerCounts) ---------------
  LedgerCounts ledgers;

  /// Deadlock-avoidance flushes per million cycles (Figure 6).
  [[nodiscard]] double deadlocks_per_mcycle() const {
    return core.cycles == 0 ? 0.0
                            : static_cast<double>(core.deadlock_flushes) * 1e6 /
                                  static_cast<double>(core.cycles);
  }
};

/// Runs `cfg` over `trace` (a fresh machine per call; deterministic).
/// The view's backing storage — an owned Trace, a TraceSource, a file
/// mapping — must stay alive for the duration of the call; `const
/// trace::Trace&` call sites convert implicitly.
[[nodiscard]] SimResult run_simulation(const SimConfig& cfg,
                                       trace::TraceView trace);

/// Convenience: generates the named SPEC2000-profile trace and runs it.
[[nodiscard]] SimResult run_program(const SimConfig& cfg,
                                    const std::string& program);

/// Convenience: replays the recorded SAMT trace at `cfg.trace_path`
/// (mmap, zero-copy). Throws trace::TraceFormatError on malformed files
/// and std::invalid_argument when `cfg.trace_path` is empty.
[[nodiscard]] SimResult run_trace_file(const SimConfig& cfg);

}  // namespace samie::sim
