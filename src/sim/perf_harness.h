// Hot-path performance harness: measures *simulator* throughput
// (simulated cycles per wall-clock second) for each LSQ organization over
// the SPEC2000 suite, excluding trace generation from the timed region.
//
// This is the repo's perf trajectory: `tools/perf_report` writes
// BENCH_hotpath.json (schema documented in docs/BENCH_hotpath.md) and
// `bench/bench_hotpath` prints the same measurement as a table and
// compares it against the checked-in pre-refactor baseline
// (bench/baseline_hotpath.json).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/sim_config.h"
#include "src/sim/simulator.h"

namespace samie::sim {

/// One (LSQ, program) measurement. The *reported* wall time is the
/// minimum over `repeats` timed simulations — not a sum or mean — so
/// one descheduled repeat on a noisy host cannot inflate the program's
/// number (the minimum of a nonnegative-noise process is the best
/// estimator of the true cost). `wall_all` keeps every repeat, in run
/// order, for noise diagnosis. The SimResult is taken from the first
/// run and is deterministic (bit-identical across runs and refactors by
/// contract).
struct HotpathProgramResult {
  std::string program;
  double best_wall_seconds = 0.0;
  std::vector<double> wall_all;  ///< per-repeat walls (min == best)
  SimResult result;
};

struct HotpathLsqResult {
  LsqChoice lsq = LsqChoice::kSamie;
  std::vector<HotpathProgramResult> programs;
  std::uint64_t total_sim_cycles = 0;
  /// Engine metric: cycles the event-driven loop fast-forwarded over,
  /// summed over programs (0 under --no-skip). The per-program skip
  /// ratio is skipped / cycles.
  std::uint64_t total_skipped_cycles = 0;
  double total_wall_seconds = 0.0;  ///< sum of per-program best walls
  double sim_cycles_per_second = 0.0;
  /// Schema v2 (HotpathOptions::lanes != 0): wall seconds for one
  /// whole-suite sweep of this LSQ's job list, best of `repeats`, run
  /// through the per-job worker pool, through the batched-lane executor
  /// at one shard, and through the sharded lane executor at
  /// HotpathReport::lane_shards shards. Unlike the per-program walls,
  /// these time run_sweep end to end (trace-cache builds included) —
  /// identically for all executors, so pool/lane is the lane-mode
  /// speedup and lane/sharded the shard scaling. 0.0 when disabled.
  double pool_sweep_wall_seconds = 0.0;
  double lane_sweep_wall_seconds = 0.0;
  double sharded_sweep_wall_seconds = 0.0;
  /// Process peak RSS (VmHWM) after this LSQ's runs, in kB. Monotonic
  /// across the whole process: meaningful as "peak so far".
  std::uint64_t peak_rss_kb = 0;
};

struct HotpathReport {
  std::uint64_t instructions = 0;
  std::uint64_t seed = 0;
  std::uint32_t repeats = 0;
  /// The measurement ran the always-step loop (--no-skip): skip metrics
  /// are definitionally zero and consumers suppress them.
  bool no_skip = false;
  /// Lane count of the sweep measurement (0 = sweep timing disabled and
  /// the schema-v2 sweep fields read 0).
  unsigned lanes = 0;
  /// Shard count of the sharded_sweep measurement (the resolved T — an
  /// explicit HotpathOptions::lane_shards or the host's bench
  /// parallelism; 0 when sweep timing is disabled).
  unsigned lane_shards = 0;
  std::vector<HotpathLsqResult> lsqs;
  /// One "lsq=K program=P error=..." line per measurement that threw
  /// (e.g. a corrupt trace in --trace-dir). Failed programs are absent
  /// from their LSQ's `programs` and totals; empty = clean run.
  std::vector<std::string> failures;
  /// Measurements loaded from the resume journal instead of re-run.
  std::size_t resumed = 0;
};

struct HotpathOptions {
  std::uint64_t instructions = 200'000;
  std::uint64_t seed = 42;
  std::uint32_t repeats = 3;
  /// Empty = the whole SPEC2000 suite.
  std::vector<std::string> programs;
  /// LSQs to measure; empty = conventional, arb, samie.
  std::vector<LsqChoice> lsqs;
  /// When non-empty: sweep the *.samt traces in this directory (sorted by
  /// filename, mmap-replayed) instead of generating `programs`. Program
  /// labels come from the SAMT headers; `instructions` and `seed` are
  /// ignored (each trace replays in full).
  std::string trace_dir;
  /// Run the always-step cycle loop (no quiescent-cycle fast-forward);
  /// the measured statistics are identical, only throughput and the
  /// skipped_cycles fields change.
  bool always_step = false;
  /// When nonzero, additionally measure whole-suite *sweep* throughput
  /// per LSQ: the same job list timed through the per-job worker pool,
  /// the batched-lane executor with this many lanes at one shard, and
  /// the sharded lane executor at `lane_shards` shards (SweepOptions::
  /// lanes/lane_shards), best of `repeats` each. Results land in the
  /// schema-v2 pool_sweep/lane_sweep/sharded_sweep fields and are never
  /// journaled (they are timings, re-measured every run).
  unsigned lanes = 0;
  /// Shards for the sharded_sweep measurement; 0 picks bench_threads().
  unsigned lane_shards = 0;
  /// Stepped cycles per lane turn for both lane sweeps; 0 picks
  /// LaneEngine::kDefaultCyclesPerTurn.
  std::uint64_t lane_turn = 0;
  /// Checkpoint journal (src/sim/checkpoint.h): when non-empty, every
  /// finished (lsq, program) measurement — statistics *and* walls — is
  /// appended crash-safely, and an existing journal for the same
  /// configuration is loaded first so those measurements are not re-run.
  /// A journal written under a different configuration is refused
  /// (CheckpointError).
  std::string resume_path;
};

/// Share of `total` cycles that were fast-forwarded: skipped / total,
/// 0 when total is 0. One definition serves the JSON's skip_ratio, the
/// perf_report stdout line and bench_hotpath's table column.
[[nodiscard]] inline double skip_fraction(std::uint64_t skipped,
                                          std::uint64_t total) noexcept {
  return total == 0 ? 0.0
                    : static_cast<double>(skipped) / static_cast<double>(total);
}

/// Runs the measurement (single-threaded, deterministic job order).
[[nodiscard]] HotpathReport run_hotpath_measurement(const HotpathOptions& opt);

/// Serializes the report as BENCH_hotpath.json (schema v1). Simulation
/// statistics are printed with max_digits10, so comparing two reports
/// with the timing/engine fields (wall_seconds, total_wall_seconds,
/// sim_cycles_per_second, peak_rss_kb, skipped_cycles, skip_ratio,
/// total_skipped_cycles) filtered out checks bit-identical simulation
/// results; a raw byte diff will always differ on timing.
void write_hotpath_json(std::ostream& os, const HotpathReport& report);

/// Extracts `"sim_cycles_per_second": <x>` for the given LSQ tag from a
/// BENCH_hotpath.json document. The search is bounded to the tag's own
/// JSON object, so a section missing the key yields 0.0 instead of
/// silently reading the next section's value. Returns 0.0 when absent.
[[nodiscard]] double hotpath_cycles_per_second_from_json(
    const std::string& json_text, const std::string& lsq_tag);

/// One point of the PR-indexed perf trajectory
/// (bench/trajectory_hotpath.json, schema samie-bench-trajectory-v1):
/// sim_cycles_per_second per LSQ as measured back-to-back on one host.
struct TrajectoryEntry {
  std::string label;  ///< e.g. "PR1"
  double conventional = 0.0;
  double arb = 0.0;
  double samie = 0.0;
};

/// Parses the checked-in trajectory file's text. Entries missing a field
/// carry 0.0 there; malformed documents yield an empty vector.
[[nodiscard]] std::vector<TrajectoryEntry> parse_hotpath_trajectory(
    const std::string& json_text);

/// Current process peak RSS (VmHWM) in kB; 0 when /proc is unavailable.
[[nodiscard]] std::uint64_t peak_rss_kb();

}  // namespace samie::sim
