// Batched-lane execution: many independent (core, trace) simulations
// stepped through one interleaved loop.
//
// A Lane is one fully built machine — queue, ledgers, memory hierarchy,
// predictor, collector, Core — behind a two-method interface. The
// concrete LaneImpl<LsqT> keeps Core statically dispatched over the
// queue and observer exactly as run_simulation does; the only virtual
// boundary is one step() call per multi-kilocycle turn, so lane
// interleaving costs nothing measurable per cycle.
//
// Lane results are bit-identical to run_simulation by construction:
// run_simulation *is* a single lane stepped to completion (see
// simulator.cpp), and Core::step() shares the run() loop body verbatim,
// so slicing a run into turns cannot change any statistic. The per-lane
// energy fold is the integer-event ledger fold (src/energy/ledger.h) —
// O(1) per lane regardless of event count.
//
// LaneEngine is the round-robin driver: it owns up to K live lanes and
// steps each non-retired lane `cycles_per_turn` cycles per pass. A lane
// retires by finishing (result event) or throwing (error event —
// watchdog, quiescence cross-check, cancellation); the engine surfaces
// one retirement at a time so callers (the sweep's lane executor,
// samie_sim --lanes) can refill the slot, retry, or journal in job
// order. docs/ENERGY_LEDGER.md describes the execution model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "src/sim/simulator.h"
#include "src/trace/trace_view.h"

namespace samie::sim {

/// One resumable simulation. Exceptions from the underlying core
/// (commit watchdog, SimulationAborted, quiescence cross-check)
/// propagate out of step().
class Lane {
 public:
  virtual ~Lane() = default;
  /// Advances up to `max_cycles` stepped cycles; false when the run is
  /// complete and finish() may be called.
  virtual bool step(std::uint64_t max_cycles) = 0;
  /// Seals the run and folds the statistics. Call once.
  [[nodiscard]] virtual SimResult finish() = 0;
};

/// Builds the machine for `cfg` over the borrowed `trace` view (the
/// backing storage must outlive the lane). Dispatches on cfg.lsq like
/// run_simulation; cfg is copied into the lane.
[[nodiscard]] std::unique_ptr<Lane> make_lane(const SimConfig& cfg,
                                              trace::TraceView trace);

/// Round-robin stepper over a set of live lanes.
class LaneEngine {
 public:
  /// A retired lane: `key` is the caller's identifier from add().
  /// Exactly one of {ok, error} holds: on ok the folded result, else the
  /// exception that ended the lane.
  struct Event {
    std::uint64_t key = 0;
    bool ok = false;
    SimResult result;
    std::exception_ptr error;
  };

  explicit LaneEngine(std::uint64_t cycles_per_turn = kDefaultCyclesPerTurn)
      : cycles_per_turn_(cycles_per_turn) {}

  /// Admits a lane under the caller's key (e.g. a sweep job index).
  void add(std::uint64_t key, std::unique_ptr<Lane> lane);
  [[nodiscard]] std::size_t active() const { return lanes_.size(); }

  /// Steps the live lanes round-robin until one retires; returns its
  /// event, or nullopt when no lanes are live. Lanes admitted first are
  /// stepped first within a pass.
  std::optional<Event> run_until_event();

  static constexpr std::uint64_t kDefaultCyclesPerTurn = 4096;

 private:
  struct Slot {
    std::uint64_t key;
    std::unique_ptr<Lane> lane;
  };
  std::uint64_t cycles_per_turn_;
  std::vector<Slot> lanes_;
  std::size_t next_ = 0;  ///< round-robin cursor into lanes_
};

}  // namespace samie::sim
