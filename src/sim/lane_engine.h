// Batched-lane execution: many independent (core, trace) simulations
// stepped through one interleaved loop.
//
// A Lane is one fully built machine — queue, ledgers, memory hierarchy,
// predictor, collector, Core — behind a two-method interface. The
// concrete LaneImpl<LsqT> keeps Core statically dispatched over the
// queue and observer exactly as run_simulation does; the only virtual
// boundary is one step() call per multi-kilocycle turn, so lane
// interleaving costs nothing measurable per cycle.
//
// Lane results are bit-identical to run_simulation by construction:
// run_simulation *is* a single lane stepped to completion (see
// simulator.cpp), and Core::step() shares the run() loop body verbatim,
// so slicing a run into turns cannot change any statistic. The per-lane
// energy fold is the integer-event ledger fold (src/energy/ledger.h) —
// O(1) per lane regardless of event count.
//
// LaneEngine is the earliest-wake driver: it owns up to K live lanes on
// a min-heap keyed by each lane's next_wake_cycle() hint (the lane's
// own virtual clock — Core's quiescence ledger / fast-forward horizon)
// and always steps the lane whose next event is soonest. Turns are
// budgeted in *stepped* cycles — Core::step() counts loop iterations,
// so a fast-forward through a megacycle quiescent span costs one unit
// of the turn, not the whole turn — and any turn size N ≥ 1 yields
// bit-identical results (lanes are independent machines; the hint and
// the schedule built on it never feed back into simulation state). A
// lane retires by finishing (result event) or throwing (error event —
// watchdog, quiescence cross-check, cancellation); the engine surfaces
// one retirement at a time so callers (the sweep's lane executor,
// samie_sim --lanes) can refill the slot, retry, or journal in job
// order. docs/ENERGY_LEDGER.md describes the execution model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "src/sim/simulator.h"
#include "src/trace/trace_view.h"

namespace samie::sim {

/// One resumable simulation. Exceptions from the underlying core
/// (commit watchdog, SimulationAborted, quiescence cross-check)
/// propagate out of step().
class Lane {
 public:
  virtual ~Lane() = default;
  /// Advances up to `max_cycles` stepped cycles; false when the run is
  /// complete and finish() may be called.
  virtual bool step(std::uint64_t max_cycles) = 0;
  /// Scheduling hint: the earliest cycle (on this lane's own clock) at
  /// which the machine can next change architectural state. Pure — the
  /// engine's wake heap orders lanes by it, and results never depend on
  /// the value.
  [[nodiscard]] virtual std::uint64_t next_wake_cycle() const = 0;
  /// Seals the run and folds the statistics. Call once.
  [[nodiscard]] virtual SimResult finish() = 0;
};

/// Builds the machine for `cfg` over the borrowed `trace` view (the
/// backing storage must outlive the lane). Dispatches on cfg.lsq like
/// run_simulation; cfg is copied into the lane.
[[nodiscard]] std::unique_ptr<Lane> make_lane(const SimConfig& cfg,
                                              trace::TraceView trace);

/// Earliest-wake stepper over a set of live lanes.
class LaneEngine {
 public:
  /// A retired lane: `key` is the caller's identifier from add().
  /// Exactly one of {ok, error} holds: on ok the folded result, else the
  /// exception that ended the lane.
  struct Event {
    std::uint64_t key = 0;
    bool ok = false;
    SimResult result;
    std::exception_ptr error;
  };

  /// Throws std::invalid_argument on a zero turn — a lane stepped zero
  /// cycles per turn would never retire.
  explicit LaneEngine(std::uint64_t cycles_per_turn = kDefaultCyclesPerTurn);

  /// Admits a lane under the caller's key (e.g. a sweep job index).
  void add(std::uint64_t key, std::unique_ptr<Lane> lane);
  [[nodiscard]] std::size_t active() const { return heap_.size(); }

  /// Steps the live lanes until one retires; returns its event, or
  /// nullopt when no lanes are live. Each turn goes to the lane whose
  /// next_wake_cycle() hint is smallest (admission order breaks ties),
  /// so deeply-quiescent lanes — whose virtual clocks race ahead on
  /// fast-forwards — are not polled every pass. Any schedule yields
  /// bit-identical per-lane results; the heap only changes which lane's
  /// wall-clock work happens when.
  std::optional<Event> run_until_event();

  static constexpr std::uint64_t kDefaultCyclesPerTurn = 4096;

 private:
  struct Slot {
    std::uint64_t key;
    std::unique_ptr<Lane> lane;
    std::uint64_t wake;   ///< cached next_wake_cycle() hint
    std::uint64_t order;  ///< admission sequence, the deterministic tie-break
  };
  /// Min-heap comparator (std::push_heap/pop_heap are max-heaps, so the
  /// "less" relation is inverted): earliest wake wins, first-admitted
  /// wins a tie.
  static bool later(const Slot& a, const Slot& b) noexcept {
    if (a.wake != b.wake) return a.wake > b.wake;
    return a.order > b.order;
  }
  std::uint64_t cycles_per_turn_;
  std::uint64_t admitted_ = 0;  ///< admission counter feeding Slot::order
  std::vector<Slot> heap_;      ///< binary heap ordered by later()
};

}  // namespace samie::sim
