#include "src/sim/perf_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "src/sim/checkpoint.h"
#include "src/sim/sweep_scheduler.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"

namespace samie::sim {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void json_number(std::ostream& os, double v) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

[[nodiscard]] std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Binds a measurement journal to its configuration (same role as
/// sweep_fingerprint for sweeps): every knob that changes what is
/// measured, none that only changes how fast.
[[nodiscard]] std::uint64_t hotpath_fingerprint(
    const HotpathOptions& opt, const std::vector<LsqChoice>& lsqs,
    const std::vector<std::string>& programs) {
  std::ostringstream os;
  os << opt.instructions << '\x1f' << opt.seed << '\x1f' << opt.repeats
     << '\x1f' << opt.always_step << '\x1f' << opt.trace_dir << '\x1e';
  for (const LsqChoice l : lsqs) os << lsq_choice_name(l) << '\x1f';
  os << '\x1e';
  for (const auto& p : programs) os << p << '\x1f';
  const std::string s = os.str();
  return trace::fnv1a_64(s.data(), s.size());
}

/// Journal record payload for one (lsq, program) measurement:
///   lsq \t program \t best_wall \t walls (space-separated) \t SimResult
[[nodiscard]] std::string encode_measurement(const char* lsq_tag,
                                             const HotpathProgramResult& pr) {
  std::ostringstream os;
  os << lsq_tag << '\t' << pr.program << '\t' << hex_double(pr.best_wall_seconds)
     << '\t';
  for (std::size_t i = 0; i < pr.wall_all.size(); ++i) {
    if (i != 0) os << ' ';
    os << hex_double(pr.wall_all[i]);
  }
  os << '\t' << serialize_sim_result(pr.result);
  return os.str();
}

[[nodiscard]] bool decode_measurement(const std::string& payload,
                                      std::string& lsq_tag,
                                      HotpathProgramResult& pr) {
  std::vector<std::string> f;
  std::size_t at = 0;
  while (f.size() < 4) {
    const std::size_t tab = payload.find('\t', at);
    if (tab == std::string::npos) return false;
    f.push_back(payload.substr(at, tab - at));
    at = tab + 1;
  }
  lsq_tag = f[0];
  pr.program = f[1];
  char* end = nullptr;
  pr.best_wall_seconds = std::strtod(f[2].c_str(), &end);
  if (end != f[2].c_str() + f[2].size()) return false;
  pr.wall_all.clear();
  std::istringstream walls(f[3]);
  std::string w;
  while (walls >> w) {
    const double v = std::strtod(w.c_str(), &end);
    if (end != w.c_str() + w.size()) return false;
    pr.wall_all.push_back(v);
  }
  return parse_sim_result(payload.substr(at), pr.result);
}

}  // namespace

std::uint64_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

HotpathReport run_hotpath_measurement(const HotpathOptions& opt) {
  HotpathReport report;
  report.instructions = opt.instructions;
  report.seed = opt.seed;
  report.repeats = opt.repeats == 0 ? 1 : opt.repeats;
  report.no_skip = opt.always_step;
  report.lanes = opt.lanes;
  if (opt.lanes != 0) {
    report.lane_shards =
        opt.lane_shards != 0 ? opt.lane_shards : bench_threads();
  }

  const std::vector<LsqChoice> lsqs =
      opt.lsqs.empty()
          ? std::vector<LsqChoice>{LsqChoice::kConventional, LsqChoice::kArb,
                                   LsqChoice::kSamie}
          : opt.lsqs;

  // Workloads stream: a generated trace is materialized right before
  // its timed repeats (outside the timed region — allocation and RNG
  // never land in a wall measurement) and freed right after, and a
  // canned trace is mmapped and unmapped the same way, so the suite's
  // peak RSS tracks one trace at a time instead of all 26 — the probe
  // the per-consumer TraceCache release discipline is measured against.
  // For canned traces the checksum verification at open faults the
  // pages in, keeping the timed replay on a warm page cache.
  std::vector<std::string> trace_files;
  std::vector<std::string> programs;
  if (!opt.trace_dir.empty()) {
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt.trace_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".samt") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      // An empty report would read as "no baseline" downstream and
      // silently disable perf-regression gating — refuse instead.
      throw trace::TraceFormatError("no *.samt traces under '" +
                                    opt.trace_dir + "'");
    }
    std::uint64_t common_count = 0;
    bool uniform = true;
    for (const auto& f : files) {
      trace_files.push_back(f.string());
      const trace::SamtHeader h = trace::read_samt_header(f.string());
      const std::size_t len = ::strnlen(h.name, sizeof h.name);
      programs.push_back(len > 0 ? std::string(h.name, len)
                                 : f.stem().string());
      if (common_count == 0) common_count = h.count;
      uniform = uniform && h.count == common_count;
    }
    // opt.instructions is unused in replay mode; report the real
    // per-program trace length (0 when the traces differ in length —
    // the per-program "committed" fields then carry the truth).
    report.instructions = uniform ? common_count : 0;
  } else {
    programs = opt.programs.empty() ? trace::spec2000_names() : opt.programs;
  }

  // Resume journal: load finished (lsq, program) measurements — walls
  // included, so a resumed report is byte-identical to the partial run
  // it continues — and append new ones as they complete.
  std::map<std::string, HotpathProgramResult> resumed;
  std::optional<CheckpointWriter> journal;
  if (!opt.resume_path.empty()) {
    const std::uint64_t fp = hotpath_fingerprint(opt, lsqs, programs);
    if (std::filesystem::exists(opt.resume_path)) {
      CheckpointContents c = load_checkpoint(opt.resume_path);
      if (c.njobs != lsqs.size() * programs.size() || c.fingerprint != fp) {
        throw CheckpointError(
            opt.resume_path +
            ": journal belongs to a different measurement configuration — "
            "delete it or fix the command line");
      }
      for (const std::string& payload : c.records) {
        std::string lsq_tag;
        HotpathProgramResult pr;
        if (decode_measurement(payload, lsq_tag, pr)) {
          resumed.emplace(lsq_tag + '\t' + pr.program, std::move(pr));
        }
      }
      journal = CheckpointWriter::append_to(opt.resume_path);
    } else {
      journal = CheckpointWriter::create(
          opt.resume_path, lsqs.size() * programs.size(), fp);
    }
  }

  for (const LsqChoice lsq : lsqs) {
    HotpathLsqResult lr;
    lr.lsq = lsq;
    SimConfig cfg = paper_config(lsq);
    cfg.instructions = opt.instructions;
    cfg.seed = opt.seed;
    cfg.core.always_step = opt.always_step;

    for (std::size_t i = 0; i < programs.size(); ++i) {
      if (auto it = resumed.find(std::string(lsq_choice_name(lsq)) + '\t' +
                                 programs[i]);
          it != resumed.end()) {
        HotpathProgramResult pr = std::move(it->second);
        lr.total_sim_cycles += pr.result.core.cycles;
        lr.total_skipped_cycles += pr.result.core.quiescent_cycles_skipped;
        lr.total_wall_seconds += pr.best_wall_seconds;
        lr.programs.push_back(std::move(pr));
        ++report.resumed;
        continue;
      }
      HotpathProgramResult pr;
      pr.program = programs[i];
      pr.best_wall_seconds = std::numeric_limits<double>::infinity();
      pr.wall_all.reserve(report.repeats);
      try {
        std::optional<trace::TraceSource> source;
        trace::TraceView view;
        if (opt.trace_dir.empty()) {
          source.emplace(trace::TraceSource::generate(
              trace::spec2000_profile(programs[i]), opt.seed,
              opt.instructions));
          view = source->view();
          cfg.instructions = opt.instructions;
        } else {
          source.emplace(trace::TraceSource::open_samt(trace_files[i]));
          view = source->view();
          cfg.instructions = static_cast<std::uint64_t>(source->size());
        }
        for (std::uint32_t r = 0; r < report.repeats; ++r) {
          const auto t0 = Clock::now();
          SimResult res = run_simulation(cfg, view);
          const double wall = seconds_since(t0);
          pr.wall_all.push_back(wall);
          // Min-of-repeats, never sum/mean: intermittent host noise only
          // ever adds time, so the minimum is the robust estimate (see
          // docs/BENCH_hotpath.md).
          if (wall < pr.best_wall_seconds) pr.best_wall_seconds = wall;
          if (r == 0) pr.result = std::move(res);
        }
      } catch (const std::exception& e) {
        // One bad measurement (say, a corrupt trace in the sweep
        // directory) is reported and excluded; the rest still measure.
        report.failures.push_back("lsq=" + std::string(lsq_choice_name(lsq)) +
                                  " program=" + programs[i] +
                                  " error=" + e.what());
        continue;
      }
      if (journal) {
        journal->append_record(encode_measurement(lsq_choice_name(lsq), pr));
      }
      lr.total_sim_cycles += pr.result.core.cycles;
      lr.total_skipped_cycles += pr.result.core.quiescent_cycles_skipped;
      lr.total_wall_seconds += pr.best_wall_seconds;
      lr.programs.push_back(std::move(pr));
    }
    lr.sim_cycles_per_second =
        lr.total_wall_seconds > 0.0
            ? static_cast<double>(lr.total_sim_cycles) / lr.total_wall_seconds
            : 0.0;

    // Schema v2: whole-suite sweep walls through both executors. The
    // identical job list runs end to end through run_sweep (trace-cache
    // builds inside the timed region for both), best of `repeats`; a
    // sweep that did not fully complete is discarded rather than timed.
    if (opt.lanes != 0) {
      std::vector<Job> jobs;
      jobs.reserve(programs.size());
      for (std::size_t i = 0; i < programs.size(); ++i) {
        Job job;
        job.program = programs[i];
        job.config = cfg;
        if (!opt.trace_dir.empty()) {
          job.config.trace_path = trace_files[i];
          job.config.instructions =
              trace::read_samt_header(trace_files[i]).count;
        } else {
          job.config.instructions = opt.instructions;
        }
        job.tag = lsq_choice_name(lsq);
        jobs.push_back(std::move(job));
      }
      auto timed_sweep = [&](const SweepOptions& sw) {
        double best = std::numeric_limits<double>::infinity();
        for (std::uint32_t r = 0; r < report.repeats; ++r) {
          const auto t0 = Clock::now();
          const SweepReport sr = run_sweep(jobs, sw);
          const double wall = seconds_since(t0);
          if (sr.all_completed() && wall < best) best = wall;
        }
        return std::isfinite(best) ? best : 0.0;
      };
      SweepOptions pool;
      SweepOptions lane;
      lane.lanes = opt.lanes;
      lane.lane_shards = 1;  // pinned: this field is the one-shard wall
      lane.lane_turn = opt.lane_turn;
      SweepOptions sharded = lane;
      sharded.lane_shards = report.lane_shards;
      lr.pool_sweep_wall_seconds = timed_sweep(pool);
      lr.lane_sweep_wall_seconds = timed_sweep(lane);
      lr.sharded_sweep_wall_seconds = timed_sweep(sharded);
    }

    lr.peak_rss_kb = peak_rss_kb();
    report.lsqs.push_back(std::move(lr));
  }
  return report;
}

void write_hotpath_json(std::ostream& os, const HotpathReport& report) {
  os << "{\n";
  os << "  \"schema\": \"samie-bench-hotpath-v2\",\n";
  os << "  \"instructions\": " << report.instructions << ",\n";
  os << "  \"seed\": " << report.seed << ",\n";
  os << "  \"repeats\": " << report.repeats << ",\n";
  os << "  \"no_skip\": " << (report.no_skip ? "true" : "false") << ",\n";
  os << "  \"lanes\": " << report.lanes << ",\n";
  // Additive to schema v2: shards of the sharded_sweep measurement
  // (timing-only, excluded from bit-identity diffs like the walls).
  os << "  \"lane_shards\": " << report.lane_shards << ",\n";
  // Additive to schema v1: measurements that threw (absent from their
  // LSQ's programs/totals). Always emitted so a resumed report stays
  // byte-identical to the uninterrupted one.
  os << "  \"failures\": [";
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"';
    for (const char ch : report.failures[i]) {
      if (ch == '"' || ch == '\\') os << '\\';
      os << ch;
    }
    os << '"';
  }
  os << "],\n";
  os << "  \"lsqs\": {\n";
  for (std::size_t li = 0; li < report.lsqs.size(); ++li) {
    const HotpathLsqResult& lr = report.lsqs[li];
    os << "    \"" << lsq_choice_name(lr.lsq) << "\": {\n";
    os << "      \"total_sim_cycles\": " << lr.total_sim_cycles << ",\n";
    os << "      \"total_skipped_cycles\": " << lr.total_skipped_cycles
       << ",\n";
    os << "      \"total_wall_seconds\": ";
    json_number(os, lr.total_wall_seconds);
    os << ",\n      \"sim_cycles_per_second\": ";
    json_number(os, lr.sim_cycles_per_second);
    // Schema v2 (timing fields, excluded from bit-identity diffs like
    // the walls): whole-suite sweep seconds per executor, 0 when the
    // sweep measurement was disabled.
    os << ",\n      \"pool_sweep_wall_seconds\": ";
    json_number(os, lr.pool_sweep_wall_seconds);
    os << ",\n      \"lane_sweep_wall_seconds\": ";
    json_number(os, lr.lane_sweep_wall_seconds);
    os << ",\n      \"sharded_sweep_wall_seconds\": ";
    json_number(os, lr.sharded_sweep_wall_seconds);
    os << ",\n      \"peak_rss_kb\": " << lr.peak_rss_kb << ",\n";
    os << "      \"programs\": [\n";
    for (std::size_t pi = 0; pi < lr.programs.size(); ++pi) {
      const HotpathProgramResult& pr = lr.programs[pi];
      const SimResult& s = pr.result;
      os << "        {\"program\": \"" << pr.program << "\""
         << ", \"cycles\": " << s.core.cycles
         << ", \"committed\": " << s.core.committed << ", \"ipc\": ";
      json_number(os, s.core.ipc);
      os << ", \"wall_seconds\": ";
      json_number(os, pr.best_wall_seconds);
      os << ", \"wall_all\": [";
      for (std::size_t wi = 0; wi < pr.wall_all.size(); ++wi) {
        if (wi != 0) os << ", ";
        json_number(os, pr.wall_all[wi]);
      }
      os << "]";
      // Engine metrics (like wall_seconds, excluded from bit-identity
      // diffs): quiescent cycles fast-forwarded and their share. Under
      // --no-skip both are exact literal zeros, never a stale or
      // divide-by-zero artefact.
      os << ", \"skipped_cycles\": " << s.core.quiescent_cycles_skipped
         << ", \"skip_ratio\": ";
      if (report.no_skip) {
        os << 0;
      } else {
        json_number(os,
                    skip_fraction(s.core.quiescent_cycles_skipped,
                                  s.core.cycles));
      }
      os << ", \"mispredict_squashes\": " << s.core.mispredict_squashes
         << ", \"deadlock_flushes\": " << s.core.deadlock_flushes
         << ", \"forwarded_loads\": " << s.core.forwarded_loads
         << ", \"value_mismatches\": " << s.core.value_mismatches
         << ", \"lsq_energy_nj\": ";
      json_number(os, s.lsq_energy_nj);
      os << ", \"dcache_energy_nj\": ";
      json_number(os, s.dcache_energy_nj);
      os << ", \"dtlb_energy_nj\": ";
      json_number(os, s.dtlb_energy_nj);
      os << ", \"area_total\": ";
      json_number(os, s.area_total);
      os << ", \"shared_occupancy_mean\": ";
      json_number(os, s.shared_occupancy_mean);
      os << ", \"buffer_nonempty_frac\": ";
      json_number(os, s.buffer_nonempty_frac);
      os << "}" << (pi + 1 < lr.programs.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (li + 1 < report.lsqs.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

std::vector<TrajectoryEntry> parse_hotpath_trajectory(
    const std::string& json_text) {
  std::vector<TrajectoryEntry> out;
  const std::size_t entries = json_text.find("\"entries\"");
  if (entries == std::string::npos) return out;
  std::size_t at = json_text.find('[', entries);
  if (at == std::string::npos) return out;
  // Entry objects are flat, so the first ']' closes the array; bound the
  // object scan to it — a sibling key after "entries" must not be read
  // as a phantom entry (same bounding rule as the lsq-tag search below).
  const std::size_t array_end = json_text.find(']', at);
  if (array_end == std::string::npos) return out;
  // Each entry is one flat {...} object; scan them in order.
  for (;;) {
    const std::size_t open = json_text.find('{', at);
    if (open == std::string::npos || open > array_end) break;
    const std::size_t close = json_text.find('}', open);
    if (close == std::string::npos || close > array_end) break;
    const std::string obj = json_text.substr(open, close - open + 1);
    TrajectoryEntry e;
    const std::size_t lk = obj.find("\"label\"");
    if (lk != std::string::npos) {
      const std::size_t q1 = obj.find('"', obj.find(':', lk));
      const std::size_t q2 = q1 == std::string::npos
                                 ? std::string::npos
                                 : obj.find('"', q1 + 1);
      if (q2 != std::string::npos) e.label = obj.substr(q1 + 1, q2 - q1 - 1);
    }
    auto number = [&obj](const char* key) {
      const std::size_t k = obj.find(key);
      if (k == std::string::npos) return 0.0;
      return std::strtod(obj.c_str() + obj.find(':', k) + 1, nullptr);
    };
    e.conventional = number("\"conventional\"");
    e.arb = number("\"arb\"");
    e.samie = number("\"samie\"");
    out.push_back(std::move(e));
    at = close + 1;
    const std::size_t next = json_text.find_first_not_of(", \n\t", at);
    if (next == std::string::npos || json_text[next] == ']') break;
  }
  return out;
}

double hotpath_cycles_per_second_from_json(const std::string& json_text,
                                           const std::string& lsq_tag) {
  const std::string section = "\"" + lsq_tag + "\"";
  const std::size_t at = json_text.find(section);
  if (at == std::string::npos) return 0.0;
  // Bound the key search to this tag's own object: find its opening
  // brace, then the matching close. Without the bound, a section missing
  // the key would silently read the next section's value.
  const std::size_t open = json_text.find('{', at + section.size());
  if (open == std::string::npos) return 0.0;
  std::size_t end = open;
  for (int depth = 0; end < json_text.size(); ++end) {
    if (json_text[end] == '{') ++depth;
    else if (json_text[end] == '}' && --depth == 0) break;
  }
  const std::string key = "\"sim_cycles_per_second\":";
  const std::size_t k = json_text.find(key, open);
  if (k == std::string::npos || k >= end) return 0.0;
  return std::strtod(json_text.c_str() + k + key.size(), nullptr);
}

}  // namespace samie::sim
