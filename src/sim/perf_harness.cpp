#include "src/sim/perf_harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>

#include "src/trace/spec2000.h"
#include "src/trace/trace_source.h"

namespace samie::sim {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void json_number(std::ostream& os, double v) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

}  // namespace

std::uint64_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

HotpathReport run_hotpath_measurement(const HotpathOptions& opt) {
  HotpathReport report;
  report.instructions = opt.instructions;
  report.seed = opt.seed;
  report.repeats = opt.repeats == 0 ? 1 : opt.repeats;
  report.no_skip = opt.always_step;

  const std::vector<LsqChoice> lsqs =
      opt.lsqs.empty()
          ? std::vector<LsqChoice>{LsqChoice::kConventional, LsqChoice::kArb,
                                   LsqChoice::kSamie}
          : opt.lsqs;

  // Generated workloads are materialized up front so allocation and RNG
  // work never land in a timed region. Canned traces are only *named*
  // here (cheap header reads for the labels); each file is mmapped right
  // before its timed runs and unmapped right after, so the sweep's peak
  // RSS tracks one trace at a time instead of the whole suite. The
  // checksum verification at open faults the pages in, keeping the timed
  // replay on a warm page cache.
  std::vector<trace::TraceSource> traces;
  std::vector<std::string> trace_files;
  std::vector<std::string> programs;
  if (!opt.trace_dir.empty()) {
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt.trace_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".samt") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      // An empty report would read as "no baseline" downstream and
      // silently disable perf-regression gating — refuse instead.
      throw trace::TraceFormatError("no *.samt traces under '" +
                                    opt.trace_dir + "'");
    }
    std::uint64_t common_count = 0;
    bool uniform = true;
    for (const auto& f : files) {
      trace_files.push_back(f.string());
      const trace::SamtHeader h = trace::read_samt_header(f.string());
      const std::size_t len = ::strnlen(h.name, sizeof h.name);
      programs.push_back(len > 0 ? std::string(h.name, len)
                                 : f.stem().string());
      if (common_count == 0) common_count = h.count;
      uniform = uniform && h.count == common_count;
    }
    // opt.instructions is unused in replay mode; report the real
    // per-program trace length (0 when the traces differ in length —
    // the per-program "committed" fields then carry the truth).
    report.instructions = uniform ? common_count : 0;
  } else {
    programs = opt.programs.empty() ? trace::spec2000_names() : opt.programs;
    for (const auto& p : programs) {
      traces.push_back(trace::TraceSource::generate(trace::spec2000_profile(p),
                                                    opt.seed,
                                                    opt.instructions));
    }
  }

  for (const LsqChoice lsq : lsqs) {
    HotpathLsqResult lr;
    lr.lsq = lsq;
    SimConfig cfg = paper_config(lsq);
    cfg.instructions = opt.instructions;
    cfg.seed = opt.seed;
    cfg.core.always_step = opt.always_step;

    for (std::size_t i = 0; i < programs.size(); ++i) {
      std::optional<trace::TraceSource> mapped;
      trace::TraceView view;
      if (opt.trace_dir.empty()) {
        view = traces[i].view();
        cfg.instructions = opt.instructions;
      } else {
        mapped.emplace(trace::TraceSource::open_samt(trace_files[i]));
        view = mapped->view();
        cfg.instructions = static_cast<std::uint64_t>(mapped->size());
      }
      HotpathProgramResult pr;
      pr.program = programs[i];
      pr.best_wall_seconds = std::numeric_limits<double>::infinity();
      pr.wall_all.reserve(report.repeats);
      for (std::uint32_t r = 0; r < report.repeats; ++r) {
        const auto t0 = Clock::now();
        SimResult res = run_simulation(cfg, view);
        const double wall = seconds_since(t0);
        pr.wall_all.push_back(wall);
        // Min-of-repeats, never sum/mean: intermittent host noise only
        // ever adds time, so the minimum is the robust estimate (see
        // docs/BENCH_hotpath.md).
        if (wall < pr.best_wall_seconds) pr.best_wall_seconds = wall;
        if (r == 0) pr.result = std::move(res);
      }
      lr.total_sim_cycles += pr.result.core.cycles;
      lr.total_skipped_cycles += pr.result.core.quiescent_cycles_skipped;
      lr.total_wall_seconds += pr.best_wall_seconds;
      lr.programs.push_back(std::move(pr));
    }
    lr.sim_cycles_per_second =
        lr.total_wall_seconds > 0.0
            ? static_cast<double>(lr.total_sim_cycles) / lr.total_wall_seconds
            : 0.0;
    lr.peak_rss_kb = peak_rss_kb();
    report.lsqs.push_back(std::move(lr));
  }
  return report;
}

void write_hotpath_json(std::ostream& os, const HotpathReport& report) {
  os << "{\n";
  os << "  \"schema\": \"samie-bench-hotpath-v1\",\n";
  os << "  \"instructions\": " << report.instructions << ",\n";
  os << "  \"seed\": " << report.seed << ",\n";
  os << "  \"repeats\": " << report.repeats << ",\n";
  os << "  \"no_skip\": " << (report.no_skip ? "true" : "false") << ",\n";
  os << "  \"lsqs\": {\n";
  for (std::size_t li = 0; li < report.lsqs.size(); ++li) {
    const HotpathLsqResult& lr = report.lsqs[li];
    os << "    \"" << lsq_choice_name(lr.lsq) << "\": {\n";
    os << "      \"total_sim_cycles\": " << lr.total_sim_cycles << ",\n";
    os << "      \"total_skipped_cycles\": " << lr.total_skipped_cycles
       << ",\n";
    os << "      \"total_wall_seconds\": ";
    json_number(os, lr.total_wall_seconds);
    os << ",\n      \"sim_cycles_per_second\": ";
    json_number(os, lr.sim_cycles_per_second);
    os << ",\n      \"peak_rss_kb\": " << lr.peak_rss_kb << ",\n";
    os << "      \"programs\": [\n";
    for (std::size_t pi = 0; pi < lr.programs.size(); ++pi) {
      const HotpathProgramResult& pr = lr.programs[pi];
      const SimResult& s = pr.result;
      os << "        {\"program\": \"" << pr.program << "\""
         << ", \"cycles\": " << s.core.cycles
         << ", \"committed\": " << s.core.committed << ", \"ipc\": ";
      json_number(os, s.core.ipc);
      os << ", \"wall_seconds\": ";
      json_number(os, pr.best_wall_seconds);
      os << ", \"wall_all\": [";
      for (std::size_t wi = 0; wi < pr.wall_all.size(); ++wi) {
        if (wi != 0) os << ", ";
        json_number(os, pr.wall_all[wi]);
      }
      os << "]";
      // Engine metrics (like wall_seconds, excluded from bit-identity
      // diffs): quiescent cycles fast-forwarded and their share. Under
      // --no-skip both are exact literal zeros, never a stale or
      // divide-by-zero artefact.
      os << ", \"skipped_cycles\": " << s.core.quiescent_cycles_skipped
         << ", \"skip_ratio\": ";
      if (report.no_skip) {
        os << 0;
      } else {
        json_number(os,
                    skip_fraction(s.core.quiescent_cycles_skipped,
                                  s.core.cycles));
      }
      os << ", \"mispredict_squashes\": " << s.core.mispredict_squashes
         << ", \"deadlock_flushes\": " << s.core.deadlock_flushes
         << ", \"forwarded_loads\": " << s.core.forwarded_loads
         << ", \"value_mismatches\": " << s.core.value_mismatches
         << ", \"lsq_energy_nj\": ";
      json_number(os, s.lsq_energy_nj);
      os << ", \"dcache_energy_nj\": ";
      json_number(os, s.dcache_energy_nj);
      os << ", \"dtlb_energy_nj\": ";
      json_number(os, s.dtlb_energy_nj);
      os << ", \"area_total\": ";
      json_number(os, s.area_total);
      os << ", \"shared_occupancy_mean\": ";
      json_number(os, s.shared_occupancy_mean);
      os << ", \"buffer_nonempty_frac\": ";
      json_number(os, s.buffer_nonempty_frac);
      os << "}" << (pi + 1 < lr.programs.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (li + 1 < report.lsqs.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

std::vector<TrajectoryEntry> parse_hotpath_trajectory(
    const std::string& json_text) {
  std::vector<TrajectoryEntry> out;
  const std::size_t entries = json_text.find("\"entries\"");
  if (entries == std::string::npos) return out;
  std::size_t at = json_text.find('[', entries);
  if (at == std::string::npos) return out;
  // Entry objects are flat, so the first ']' closes the array; bound the
  // object scan to it — a sibling key after "entries" must not be read
  // as a phantom entry (same bounding rule as the lsq-tag search below).
  const std::size_t array_end = json_text.find(']', at);
  if (array_end == std::string::npos) return out;
  // Each entry is one flat {...} object; scan them in order.
  for (;;) {
    const std::size_t open = json_text.find('{', at);
    if (open == std::string::npos || open > array_end) break;
    const std::size_t close = json_text.find('}', open);
    if (close == std::string::npos || close > array_end) break;
    const std::string obj = json_text.substr(open, close - open + 1);
    TrajectoryEntry e;
    const std::size_t lk = obj.find("\"label\"");
    if (lk != std::string::npos) {
      const std::size_t q1 = obj.find('"', obj.find(':', lk));
      const std::size_t q2 = q1 == std::string::npos
                                 ? std::string::npos
                                 : obj.find('"', q1 + 1);
      if (q2 != std::string::npos) e.label = obj.substr(q1 + 1, q2 - q1 - 1);
    }
    auto number = [&obj](const char* key) {
      const std::size_t k = obj.find(key);
      if (k == std::string::npos) return 0.0;
      return std::strtod(obj.c_str() + obj.find(':', k) + 1, nullptr);
    };
    e.conventional = number("\"conventional\"");
    e.arb = number("\"arb\"");
    e.samie = number("\"samie\"");
    out.push_back(std::move(e));
    at = close + 1;
    const std::size_t next = json_text.find_first_not_of(", \n\t", at);
    if (next == std::string::npos || json_text[next] == ']') break;
  }
  return out;
}

double hotpath_cycles_per_second_from_json(const std::string& json_text,
                                           const std::string& lsq_tag) {
  const std::string section = "\"" + lsq_tag + "\"";
  const std::size_t at = json_text.find(section);
  if (at == std::string::npos) return 0.0;
  // Bound the key search to this tag's own object: find its opening
  // brace, then the matching close. Without the bound, a section missing
  // the key would silently read the next section's value.
  const std::size_t open = json_text.find('{', at + section.size());
  if (open == std::string::npos) return 0.0;
  std::size_t end = open;
  for (int depth = 0; end < json_text.size(); ++end) {
    if (json_text[end] == '{') ++depth;
    else if (json_text[end] == '}' && --depth == 0) break;
  }
  const std::string key = "\"sim_cycles_per_second\":";
  const std::size_t k = json_text.find(key, open);
  if (k == std::string::npos || k >= end) return 0.0;
  return std::strtod(json_text.c_str() + k + key.size(), nullptr);
}

}  // namespace samie::sim
