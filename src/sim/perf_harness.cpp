#include "src/sim/perf_harness.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

namespace samie::sim {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void json_number(std::ostream& os, double v) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

}  // namespace

std::uint64_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

HotpathReport run_hotpath_measurement(const HotpathOptions& opt) {
  HotpathReport report;
  report.instructions = opt.instructions;
  report.seed = opt.seed;
  report.repeats = opt.repeats == 0 ? 1 : opt.repeats;

  const std::vector<std::string> programs =
      opt.programs.empty() ? trace::spec2000_names() : opt.programs;
  const std::vector<LsqChoice> lsqs =
      opt.lsqs.empty()
          ? std::vector<LsqChoice>{LsqChoice::kConventional, LsqChoice::kArb,
                                   LsqChoice::kSamie}
          : opt.lsqs;

  // Generate every trace up front so allocation and RNG work never lands
  // in a timed region.
  std::vector<trace::Trace> traces;
  traces.reserve(programs.size());
  for (const auto& p : programs) {
    trace::WorkloadGenerator gen(trace::spec2000_profile(p), opt.seed);
    traces.push_back(gen.generate(opt.instructions));
  }

  for (const LsqChoice lsq : lsqs) {
    HotpathLsqResult lr;
    lr.lsq = lsq;
    SimConfig cfg = paper_config(lsq);
    cfg.instructions = opt.instructions;
    cfg.seed = opt.seed;

    for (std::size_t i = 0; i < programs.size(); ++i) {
      HotpathProgramResult pr;
      pr.program = programs[i];
      pr.best_wall_seconds = std::numeric_limits<double>::infinity();
      for (std::uint32_t r = 0; r < report.repeats; ++r) {
        const auto t0 = Clock::now();
        SimResult res = run_simulation(cfg, traces[i]);
        const double wall = seconds_since(t0);
        if (wall < pr.best_wall_seconds) pr.best_wall_seconds = wall;
        if (r == 0) pr.result = std::move(res);
      }
      lr.total_sim_cycles += pr.result.core.cycles;
      lr.total_wall_seconds += pr.best_wall_seconds;
      lr.programs.push_back(std::move(pr));
    }
    lr.sim_cycles_per_second =
        lr.total_wall_seconds > 0.0
            ? static_cast<double>(lr.total_sim_cycles) / lr.total_wall_seconds
            : 0.0;
    lr.peak_rss_kb = peak_rss_kb();
    report.lsqs.push_back(std::move(lr));
  }
  return report;
}

void write_hotpath_json(std::ostream& os, const HotpathReport& report) {
  os << "{\n";
  os << "  \"schema\": \"samie-bench-hotpath-v1\",\n";
  os << "  \"instructions\": " << report.instructions << ",\n";
  os << "  \"seed\": " << report.seed << ",\n";
  os << "  \"repeats\": " << report.repeats << ",\n";
  os << "  \"lsqs\": {\n";
  for (std::size_t li = 0; li < report.lsqs.size(); ++li) {
    const HotpathLsqResult& lr = report.lsqs[li];
    os << "    \"" << lsq_choice_name(lr.lsq) << "\": {\n";
    os << "      \"total_sim_cycles\": " << lr.total_sim_cycles << ",\n";
    os << "      \"total_wall_seconds\": ";
    json_number(os, lr.total_wall_seconds);
    os << ",\n      \"sim_cycles_per_second\": ";
    json_number(os, lr.sim_cycles_per_second);
    os << ",\n      \"peak_rss_kb\": " << lr.peak_rss_kb << ",\n";
    os << "      \"programs\": [\n";
    for (std::size_t pi = 0; pi < lr.programs.size(); ++pi) {
      const HotpathProgramResult& pr = lr.programs[pi];
      const SimResult& s = pr.result;
      os << "        {\"program\": \"" << pr.program << "\""
         << ", \"cycles\": " << s.core.cycles
         << ", \"committed\": " << s.core.committed << ", \"ipc\": ";
      json_number(os, s.core.ipc);
      os << ", \"wall_seconds\": ";
      json_number(os, pr.best_wall_seconds);
      os << ", \"mispredict_squashes\": " << s.core.mispredict_squashes
         << ", \"deadlock_flushes\": " << s.core.deadlock_flushes
         << ", \"forwarded_loads\": " << s.core.forwarded_loads
         << ", \"value_mismatches\": " << s.core.value_mismatches
         << ", \"lsq_energy_nj\": ";
      json_number(os, s.lsq_energy_nj);
      os << ", \"dcache_energy_nj\": ";
      json_number(os, s.dcache_energy_nj);
      os << ", \"dtlb_energy_nj\": ";
      json_number(os, s.dtlb_energy_nj);
      os << ", \"area_total\": ";
      json_number(os, s.area_total);
      os << ", \"shared_occupancy_mean\": ";
      json_number(os, s.shared_occupancy_mean);
      os << ", \"buffer_nonempty_frac\": ";
      json_number(os, s.buffer_nonempty_frac);
      os << "}" << (pi + 1 < lr.programs.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (li + 1 < report.lsqs.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

double hotpath_cycles_per_second_from_json(const std::string& json_text,
                                           const std::string& lsq_tag) {
  const std::string section = "\"" + lsq_tag + "\"";
  const std::size_t at = json_text.find(section);
  if (at == std::string::npos) return 0.0;
  const std::string key = "\"sim_cycles_per_second\":";
  const std::size_t k = json_text.find(key, at);
  if (k == std::string::npos) return 0.0;
  return std::strtod(json_text.c_str() + k + key.size(), nullptr);
}

}  // namespace samie::sim
