#include "src/sim/trace_shard.h"

#include <algorithm>
#include <stdexcept>

#include "src/energy/ledger.h"
#include "src/energy/lsq_model.h"
#include "src/trace/trace_io.h"

namespace samie::sim {

namespace {

// Re-fold every energy field of `r` from r.ledgers through the constants
// `cfg` selects — the same constants, the same O(1) fold the lane runs,
// so counts that match an unsharded run's produce bit-identical energy.
void refold_energies(SimResult& r, const SimConfig& cfg) {
  const energy::LsqEnergyConstants k =
      cfg.paper_energy_constants
          ? energy::paper_constants()
          : energy::derived_constants(energy::tech_100nm());
  energy::DcacheLedger dcache(k);
  dcache.load(r.ledgers.v + LedgerCounts::kDcache);
  r.dcache_energy_nj = dcache.energy_pj() / 1e3;
  energy::DtlbLedger dtlb(k);
  dtlb.load(r.ledgers.v + LedgerCounts::kDtlb);
  r.dtlb_energy_nj = dtlb.energy_pj() / 1e3;

  r.lsq_energy_nj = 0.0;
  r.lsq_distrib_nj = 0.0;
  r.lsq_shared_nj = 0.0;
  r.lsq_addrbuf_nj = 0.0;
  r.lsq_bus_nj = 0.0;
  switch (cfg.lsq) {
    case LsqChoice::kConventional: {
      energy::ConvLsqLedger conv(k);
      conv.load(r.ledgers.v + LedgerCounts::kConv);
      r.lsq_energy_nj = conv.energy_pj() / 1e3;
      break;
    }
    case LsqChoice::kSamie: {
      energy::SamieLsqLedger samie(k);
      samie.load(r.ledgers.v + LedgerCounts::kSamie);
      r.lsq_energy_nj = samie.energy_pj() / 1e3;
      r.lsq_distrib_nj = samie.distrib_pj() / 1e3;
      r.lsq_shared_nj = samie.shared_pj() / 1e3;
      r.lsq_addrbuf_nj = samie.addrbuf_pj() / 1e3;
      r.lsq_bus_nj = samie.bus_pj() / 1e3;
      break;
    }
    case LsqChoice::kUnbounded:
    case LsqChoice::kArb:
      break;
  }
}

void recompute_ipc(SimResult& r) {
  r.core.ipc = r.core.cycles == 0
                   ? 0.0
                   : static_cast<double>(r.core.committed) /
                         static_cast<double>(r.core.cycles);
}

// Interpret a wrap-space cycle delta as a signed weight for the FP
// occupancy reconstructions (a tiny shard's drain overhead can push an
// individual delta negative; the signed weights still sum to the true
// total).
double signed_weight(std::uint64_t wrap_delta) {
  return static_cast<double>(static_cast<std::int64_t>(wrap_delta));
}

}  // namespace

SimResult subtract_measured(const SimResult& whole, const SimResult& base,
                            const SimConfig& cfg) {
  SimResult r;
  // Integer counters: wrap-space subtraction (see header).
  r.core.cycles = whole.core.cycles - base.core.cycles;
  r.core.committed = whole.core.committed - base.core.committed;
  r.core.mispredict_squashes =
      whole.core.mispredict_squashes - base.core.mispredict_squashes;
  r.core.deadlock_flushes =
      whole.core.deadlock_flushes - base.core.deadlock_flushes;
  r.core.loads_executed = whole.core.loads_executed - base.core.loads_executed;
  r.core.stores_committed =
      whole.core.stores_committed - base.core.stores_committed;
  r.core.forwarded_loads =
      whole.core.forwarded_loads - base.core.forwarded_loads;
  r.core.partial_forward_waits =
      whole.core.partial_forward_waits - base.core.partial_forward_waits;
  r.core.agen_gated = whole.core.agen_gated - base.core.agen_gated;
  r.core.value_mismatches =
      whole.core.value_mismatches - base.core.value_mismatches;
  r.core.dcache_way_known =
      whole.core.dcache_way_known - base.core.dcache_way_known;
  r.core.dcache_full = whole.core.dcache_full - base.core.dcache_full;
  r.core.dtlb_accesses = whole.core.dtlb_accesses - base.core.dtlb_accesses;
  r.core.dtlb_cached = whole.core.dtlb_cached - base.core.dtlb_cached;
  r.core.quiescent_cycles_skipped = whole.core.quiescent_cycles_skipped -
                                    base.core.quiescent_cycles_skipped;
  r.core.fast_forwards = whole.core.fast_forwards - base.core.fast_forwards;

  r.l1d_hits = whole.l1d_hits - base.l1d_hits;
  r.l1d_misses = whole.l1d_misses - base.l1d_misses;
  r.dtlb_hits = whole.dtlb_hits - base.dtlb_hits;
  r.dtlb_misses = whole.dtlb_misses - base.dtlb_misses;
  r.branch_mispredicts = whole.branch_mispredicts - base.branch_mispredicts;
  r.branch_lookups = whole.branch_lookups - base.branch_lookups;
  r.shared_occupancy_max = whole.shared_occupancy_max;

  for (std::size_t i = 0; i < LedgerCounts::kCount; ++i) {
    r.ledgers.v[i] = whole.ledgers.v[i] - base.ledgers.v[i];
  }

  refold_energies(r, cfg);
  recompute_ipc(r);

  // Cycle-weighted mean reconstruction: mean over the measured cycles is
  // (mean_w * cyc_w - mean_b * cyc_b) / (cyc_w - cyc_b). FP, hence
  // approximate — the exactness guarantee covers integer fields and the
  // energies re-folded from them.
  const double cyc_w = static_cast<double>(whole.core.cycles);
  const double cyc_b = static_cast<double>(base.core.cycles);
  const double dcyc = cyc_w - cyc_b;
  const auto weighted_delta = [&](double mw, double mb) {
    return dcyc == 0.0 ? 0.0 : (mw * cyc_w - mb * cyc_b) / dcyc;
  };
  r.shared_occupancy_mean =
      weighted_delta(whole.shared_occupancy_mean, base.shared_occupancy_mean);
  r.buffer_nonempty_frac =
      weighted_delta(whole.buffer_nonempty_frac, base.buffer_nonempty_frac);
  r.buffer_occupancy_mean =
      weighted_delta(whole.buffer_occupancy_mean, base.buffer_occupancy_mean);

  r.area_total = whole.area_total - base.area_total;
  r.area_distrib = whole.area_distrib - base.area_distrib;
  r.area_shared = whole.area_shared - base.area_shared;
  r.area_addrbuf = whole.area_addrbuf - base.area_addrbuf;
  return r;
}

SimResult merge_shard_results(const std::vector<SimResult>& shards,
                              const SimConfig& cfg) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_shard_results: no shard results");
  }
  SimResult r;
  double occ_num = 0.0, busy_num = 0.0, buf_num = 0.0, cyc_sum = 0.0;
  for (const SimResult& s : shards) {
    r.core.cycles += s.core.cycles;
    r.core.committed += s.core.committed;
    r.core.mispredict_squashes += s.core.mispredict_squashes;
    r.core.deadlock_flushes += s.core.deadlock_flushes;
    r.core.loads_executed += s.core.loads_executed;
    r.core.stores_committed += s.core.stores_committed;
    r.core.forwarded_loads += s.core.forwarded_loads;
    r.core.partial_forward_waits += s.core.partial_forward_waits;
    r.core.agen_gated += s.core.agen_gated;
    r.core.value_mismatches += s.core.value_mismatches;
    r.core.dcache_way_known += s.core.dcache_way_known;
    r.core.dcache_full += s.core.dcache_full;
    r.core.dtlb_accesses += s.core.dtlb_accesses;
    r.core.dtlb_cached += s.core.dtlb_cached;
    r.core.quiescent_cycles_skipped += s.core.quiescent_cycles_skipped;
    r.core.fast_forwards += s.core.fast_forwards;

    r.l1d_hits += s.l1d_hits;
    r.l1d_misses += s.l1d_misses;
    r.dtlb_hits += s.dtlb_hits;
    r.dtlb_misses += s.dtlb_misses;
    r.branch_mispredicts += s.branch_mispredicts;
    r.branch_lookups += s.branch_lookups;
    r.shared_occupancy_max =
        std::max(r.shared_occupancy_max, s.shared_occupancy_max);

    for (std::size_t i = 0; i < LedgerCounts::kCount; ++i) {
      r.ledgers.v[i] += s.ledgers.v[i];
    }

    const double w = signed_weight(s.core.cycles);
    occ_num += s.shared_occupancy_mean * w;
    busy_num += s.buffer_nonempty_frac * w;
    buf_num += s.buffer_occupancy_mean * w;
    cyc_sum += w;

    r.area_total += s.area_total;
    r.area_distrib += s.area_distrib;
    r.area_shared += s.area_shared;
    r.area_addrbuf += s.area_addrbuf;
  }

  refold_energies(r, cfg);
  recompute_ipc(r);
  if (cyc_sum != 0.0) {
    r.shared_occupancy_mean = occ_num / cyc_sum;
    r.buffer_nonempty_frac = busy_num / cyc_sum;
    r.buffer_occupancy_mean = buf_num / cyc_sum;
  }
  return r;
}

std::vector<TraceShardJob> make_trace_shard_jobs(const Job& base,
                                                 std::uint32_t shards,
                                                 std::uint64_t warmup) {
  if (shards == 0) {
    throw std::invalid_argument("make_trace_shard_jobs: shards must be >= 1");
  }
  if (base.config.trace_path.empty()) {
    throw std::invalid_argument(
        "make_trace_shard_jobs: job has no trace_path");
  }
  if (trace::read_samt_header(base.config.trace_path).version !=
      trace::kSamtVersion2) {
    throw std::invalid_argument(
        "make_trace_shard_jobs: sharding needs a SAMT v2 trace (the v1 "
        "format has no block index); convert with samt_convert");
  }
  const trace::TraceV2Reader reader(base.config.trace_path);
  const std::uint64_t total =
      std::min<std::uint64_t>(reader.record_count(), base.config.instructions);
  if (total == 0) return {};

  // Candidate boundaries are block starts — the v2 unit of random
  // access — so every shard's measured range begins on a block it can
  // decode independently.
  std::vector<std::uint64_t> starts;
  starts.reserve(reader.index().size());
  for (const trace::SamtIndexEntry& e : reader.index()) {
    if (e.first_record < total) starts.push_back(e.first_record);
  }

  std::vector<std::uint64_t> bounds;
  bounds.push_back(0);
  for (std::uint32_t i = 1; i < shards; ++i) {
    const std::uint64_t ideal =
        static_cast<std::uint64_t>((__uint128_t{total} * i) / shards);
    // Snap to the start of the block containing the ideal cut.
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), ideal) - 1;
    if (*it > bounds.back()) bounds.push_back(*it);
  }
  bounds.push_back(total);

  std::vector<TraceShardJob> out;
  out.reserve(bounds.size() - 1);
  const std::size_t n = bounds.size() - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t begin = bounds[i];
    const std::uint64_t end = bounds[i + 1];
    TraceShardJob shard;
    shard.measure_begin = begin;
    shard.measure_end = end;
    shard.job = base;
    shard.job.program = base.program + "#" + std::to_string(i + 1) + "/" +
                        std::to_string(n);
    SimConfig& cfg = shard.job.config;
    cfg.trace_measure_begin = begin;
    cfg.trace_measure_end = end;
    cfg.trace_warmup = warmup;
    cfg.instructions = effective_trace_warmup(cfg) + (end - begin);
    out.push_back(std::move(shard));
  }
  return out;
}

}  // namespace samie::sim
