#include "src/sim/sim_config.h"

#include <cstdlib>
#include <thread>

namespace samie::sim {

const char* lsq_choice_name(LsqChoice c) noexcept {
  switch (c) {
    case LsqChoice::kConventional: return "conventional";
    case LsqChoice::kUnbounded: return "unbounded";
    case LsqChoice::kArb: return "arb";
    case LsqChoice::kSamie: return "samie";
  }
  return "?";
}

SimConfig paper_config(LsqChoice lsq) {
  SimConfig cfg;  // struct defaults already encode Tables 2 and 3
  cfg.lsq = lsq;
  // The SAMIE invalidation protocol needs the L1D set count.
  cfg.samie.l1d_sets = static_cast<std::uint32_t>(
      cfg.memory.l1d.size_bytes /
      (static_cast<std::uint64_t>(cfg.memory.l1d.associativity) *
       cfg.memory.l1d.line_bytes));
  return cfg;
}

std::uint64_t bench_instructions(std::uint64_t fallback) {
  if (const char* env = std::getenv("SAMIE_BENCH_INSTS"); env != nullptr) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

unsigned bench_threads() {
  if (const char* env = std::getenv("SAMIE_BENCH_THREADS"); env != nullptr) {
    const auto v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

}  // namespace samie::sim
