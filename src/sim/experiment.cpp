#include "src/sim/experiment.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>

#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

namespace samie::sim {

namespace {

/// Thread-safe cache of generated traces, keyed by (program, length, seed).
class TraceCache {
 public:
  std::shared_ptr<const trace::Trace> get(const std::string& program,
                                          std::uint64_t n, std::uint64_t seed) {
    const Key key{program, n, seed};
    {
      std::scoped_lock lock(mu_);
      if (auto it = cache_.find(key); it != cache_.end()) return it->second;
    }
    // Generate outside the lock: different keys generate concurrently.
    trace::WorkloadGenerator gen(trace::spec2000_profile(program), seed);
    auto t = std::make_shared<trace::Trace>(gen.generate(n));
    std::scoped_lock lock(mu_);
    auto [it, _] = cache_.try_emplace(key, std::move(t));
    return it->second;
  }

 private:
  using Key = std::tuple<std::string, std::uint64_t, std::uint64_t>;
  std::mutex mu_;
  std::map<Key, std::shared_ptr<const trace::Trace>> cache_;
};

}  // namespace

std::vector<JobResult> run_jobs(const std::vector<Job>& jobs, unsigned threads) {
  if (threads == 0) threads = bench_threads();
  threads = std::min<unsigned>(threads, static_cast<unsigned>(jobs.size()) + 1);

  TraceCache traces;
  std::vector<JobResult> results(jobs.size());
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      const Job& job = jobs[i];
      const auto t =
          traces.get(job.program, job.config.instructions, job.config.seed);
      results[i].job = job;
      results[i].result = run_simulation(job.config, *t);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

std::vector<Job> jobs_for_suite(const SimConfig& cfg, const std::string& tag) {
  std::vector<Job> jobs;
  for (const auto& name : trace::spec2000_names()) {
    jobs.push_back(Job{name, cfg, tag});
  }
  return jobs;
}

}  // namespace samie::sim
