#include "src/sim/experiment.h"

#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>

#include "src/trace/spec2000.h"
#include "src/trace/trace_source.h"

namespace samie::sim {

namespace {

/// Thread-safe cache of trace sources. Generated workloads are keyed by
/// (program, length, seed); recorded SAMT files by path alone (the file
/// is the same trace regardless of length/seed, and `instructions` only
/// caps how much of it each job replays). Either way, every worker
/// sharing a key holds one TraceSource — for replay jobs that is a
/// single file mapping, not a per-worker heap copy.
class TraceCache {
 public:
  /// Registers the full job list up front so the cache knows how many
  /// consumers each trace has; finished() uses the counts to release
  /// page residency the moment a trace's last job completes.
  explicit TraceCache(const std::vector<Job>& jobs) {
    for (const Job& job : jobs) ++pending_[key_of(job)];
  }

  std::shared_ptr<const trace::TraceSource> get(const Job& job) {
    const Key key = key_of(job);
    {
      std::scoped_lock lock(mu_);
      if (auto it = cache_.find(key); it != cache_.end()) return it->second;
    }
    // Build outside the lock: different keys materialize concurrently.
    const std::string& path = job.config.trace_path;
    auto t = std::make_shared<const trace::TraceSource>(
        path.empty()
            ? trace::TraceSource::generate(
                  trace::spec2000_profile(job.program), job.config.seed,
                  job.config.instructions)
            : trace::TraceSource::open_samt(path));
    std::scoped_lock lock(mu_);
    auto [it, _] = cache_.try_emplace(key, std::move(t));
    return it->second;
  }

  /// A job is done with its trace. When it was the last one, mapped
  /// traces drop their resident pages (MADV_DONTNEED) so a long
  /// multi-trace sweep's RSS tracks the traces still in use instead of
  /// every file touched since the sweep began. The source object stays
  /// cached — a late duplicate key would just fault pages back in.
  void finished(const Job& job) {
    const Key key = key_of(job);
    std::shared_ptr<const trace::TraceSource> done;
    {
      std::scoped_lock lock(mu_);
      auto p = pending_.find(key);
      if (p == pending_.end() || --p->second != 0) return;
      if (auto it = cache_.find(key); it != cache_.end()) done = it->second;
    }
    if (done != nullptr) done->advise_dontneed();
  }

 private:
  using Key = std::tuple<std::string, std::uint64_t, std::uint64_t>;

  [[nodiscard]] static Key key_of(const Job& job) {
    const std::string& path = job.config.trace_path;
    return path.empty() ? Key{job.program, job.config.instructions,
                              job.config.seed}
                        : Key{"file:" + path, 0, 0};
  }

  std::mutex mu_;
  std::map<Key, std::shared_ptr<const trace::TraceSource>> cache_;
  std::map<Key, std::size_t> pending_;
};

}  // namespace

std::vector<JobResult> run_jobs(const std::vector<Job>& jobs, unsigned threads) {
  if (threads == 0) threads = bench_threads();
  threads = std::min<unsigned>(threads, static_cast<unsigned>(jobs.size()) + 1);

  TraceCache traces(jobs);
  std::vector<JobResult> results(jobs.size());
  std::atomic<std::size_t> next{0};

  // A worker hitting an error (e.g. a malformed trace file) parks the
  // exception and the pool drains; the first one is rethrown to the
  // caller after join instead of terminating the process.
  std::mutex error_mu;
  std::exception_ptr error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      const Job& job = jobs[i];
      try {
        const auto t = traces.get(job);
        results[i].job = job;
        results[i].result = run_simulation(job.config, t->view());
        traces.finished(job);
      } catch (...) {
        // Still release the trace: the pool keeps draining in-flight
        // workers, and a failing job must not pin its mapping's pages.
        traces.finished(job);
        std::scoped_lock lock(error_mu);
        if (!error) error = std::current_exception();
        next.store(jobs.size());  // stop handing out work
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

std::vector<Job> jobs_for_suite(const SimConfig& cfg, const std::string& tag) {
  std::vector<Job> jobs;
  for (const auto& name : trace::spec2000_names()) {
    jobs.push_back(Job{name, cfg, tag});
  }
  return jobs;
}

}  // namespace samie::sim
