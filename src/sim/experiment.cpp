#include "src/sim/experiment.h"

#include <stdexcept>

#include "src/sim/sweep_scheduler.h"
#include "src/trace/spec2000.h"

namespace samie::sim {

std::vector<JobResult> run_jobs(const std::vector<Job>& jobs, unsigned threads) {
  // Legacy fail-fast contract over the supervised scheduler: one attempt
  // per job, and the first failure is rethrown to the caller — but only
  // after the sweep drains, so a bad job no longer kills its siblings
  // mid-flight. Callers that want partial results, retries, deadlines or
  // checkpointing use run_sweep directly.
  SweepOptions opt;
  opt.threads = threads;
  opt.retry.max_attempts = 1;
  SweepReport report = run_sweep(jobs, opt);

  std::vector<JobResult> results;
  results.reserve(report.jobs.size());
  for (SweepJobResult& jr : report.jobs) {
    if (!jr.completed()) {
      if (jr.error) std::rethrow_exception(jr.error);
      throw std::runtime_error("run_jobs: job '" + jr.job.program + "' (" +
                               jr.job.tag + ") ended " +
                               job_status_name(jr.outcome.status));
    }
    results.push_back(JobResult{std::move(jr.job), jr.result});
  }
  return results;
}

std::vector<Job> jobs_for_suite(const SimConfig& cfg, const std::string& tag) {
  std::vector<Job> jobs;
  for (const auto& name : trace::spec2000_names()) {
    jobs.push_back(Job{name, cfg, tag});
  }
  return jobs;
}

}  // namespace samie::sim
