// Thread-safe cache of trace sources with a once-per-key build latch
// and per-consumer release discipline.
//
// Generated workloads are keyed by (program, length, seed); recorded
// SAMT files by (path, opened record range) — whole-file jobs keep the
// historical (path, 0, 0) key, shard jobs over the same file get
// distinct keys per range so each materializes only its own blocks.
// The first worker to request a key builds it
// *outside* the cache lock (distinct keys materialize concurrently)
// while later requesters wait on the latch instead of generating or
// mmapping the same multi-MB workload a second time. A failed build
// releases the latch so a retry attempt rebuilds rather than being
// poisoned forever.
//
// Residency: the constructor registers every job that will actually run
// (resume-skipped jobs excluded), and finished() counts them back down.
// When a key's last consumer finishes, the cache drops its own
// shared_ptr — so a generated trace's buffer frees, and a mapped SAMT
// file unmaps, the moment the last lane/worker/child over it lets go of
// its reference. This is what keeps a K-lane sweep's peak RSS
// proportional to the K traces in flight rather than to every trace the
// sweep ever touched; resident_high_water() is the regression probe for
// exactly that.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/sim/experiment.h"
#include "src/trace/trace_source.h"

namespace samie::sim {

class TraceCache {
 public:
  /// Registers the jobs that will actually run (resume-skipped jobs are
  /// excluded) so finished() can release the source the moment a
  /// trace's last consumer completes.
  TraceCache(const std::vector<Job>& jobs, const std::vector<bool>& resumed);

  /// Returns the (built-once) source for the job's trace. The returned
  /// shared_ptr keeps the storage alive even after the cache releases
  /// its own reference.
  std::shared_ptr<const trace::TraceSource> get(const Job& job);

  /// A job is done with its trace (success, failure or skip) — called
  /// exactly once per job. When it was the last consumer, mapped traces
  /// drop their resident pages (MADV_DONTNEED) and the cache drops its
  /// reference, so the source is destroyed as soon as the caller's own
  /// shared_ptr goes.
  void finished(const Job& job);

  // -- residency probes (regression tests; all O(log keys)) ------------------
  /// Sources the cache currently holds (built or mid-build).
  [[nodiscard]] std::size_t resident_sources() const;
  /// High-water mark of resident_sources() over the cache's lifetime.
  [[nodiscard]] std::size_t resident_high_water() const;
  /// Consumers still registered against this job's trace.
  [[nodiscard]] std::size_t pending_consumers(const Job& job) const;

 private:
  using Key = std::tuple<std::string, std::uint64_t, std::uint64_t>;

  struct Slot {
    std::shared_ptr<const trace::TraceSource> src;
    bool building = false;
    bool ready = false;
  };

  [[nodiscard]] static Key key_of(const Job& job);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, Slot> slots_;
  std::map<Key, std::size_t> pending_;
  std::size_t high_water_ = 0;
};

}  // namespace samie::sim
