#include "src/sim/trace_cache.h"

#include <algorithm>
#include <utility>

#include "src/trace/spec2000.h"

namespace samie::sim {

TraceCache::TraceCache(const std::vector<Job>& jobs,
                       const std::vector<bool>& resumed) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!resumed[i]) ++pending_[key_of(jobs[i])];
  }
}

std::shared_ptr<const trace::TraceSource> TraceCache::get(const Job& job) {
  const Key key = key_of(job);
  {
    std::unique_lock lock(mu_);
    for (;;) {
      Slot& slot = slots_[key];
      high_water_ = std::max(high_water_, slots_.size());
      if (slot.ready) return slot.src;
      if (!slot.building) {
        slot.building = true;
        break;
      }
      cv_.wait(lock);
    }
  }
  // Build outside the lock: different keys materialize concurrently.
  std::shared_ptr<const trace::TraceSource> built;
  try {
    const std::string& path = job.config.trace_path;
    if (path.empty()) {
      built = std::make_shared<const trace::TraceSource>(
          trace::TraceSource::generate(trace::spec2000_profile(job.program),
                                       job.config.seed,
                                       job.config.instructions));
    } else if (job.config.trace_measure_begin == 0 &&
               job.config.trace_measure_end == 0) {
      built = std::make_shared<const trace::TraceSource>(
          trace::TraceSource::open_samt(path,
                                        job.config.verify_trace_checksum));
    } else {
      // Shard job: open only [measure_begin - warm-up, measure_end) —
      // the point of sharding is that no single consumer decodes the
      // whole long trace.
      built = std::make_shared<const trace::TraceSource>(
          trace::TraceSource::open_samt_range(
              path,
              job.config.trace_measure_begin - effective_trace_warmup(
                                                   job.config),
              job.config.trace_measure_end != 0 ? job.config.trace_measure_end
                                                : ~std::uint64_t{0},
              job.config.verify_trace_checksum));
    }
  } catch (...) {
    std::scoped_lock lock(mu_);
    slots_[key].building = false;  // next requester retries the build
    cv_.notify_all();
    throw;
  }
  std::scoped_lock lock(mu_);
  Slot& slot = slots_[key];
  slot.src = std::move(built);
  slot.ready = true;
  slot.building = false;
  cv_.notify_all();
  return slot.src;
}

void TraceCache::finished(const Job& job) {
  const Key key = key_of(job);
  std::shared_ptr<const trace::TraceSource> done;
  {
    std::scoped_lock lock(mu_);
    auto p = pending_.find(key);
    if (p == pending_.end() || --p->second != 0) return;
    pending_.erase(p);
    if (auto it = slots_.find(key); it != slots_.end()) {
      done = std::move(it->second.src);
      // Drop the slot: releasing the cache's reference is what lets an
      // in-RAM generated trace free at all (advise_dontneed is a no-op
      // for it — there is no file to fault back in from). No consumer
      // of this key can arrive later: every job was registered up
      // front, and this was the last one.
      slots_.erase(it);
    }
  }
  if (done != nullptr) done->advise_dontneed();
}

std::size_t TraceCache::resident_sources() const {
  std::scoped_lock lock(mu_);
  return slots_.size();
}

std::size_t TraceCache::resident_high_water() const {
  std::scoped_lock lock(mu_);
  return high_water_;
}

std::size_t TraceCache::pending_consumers(const Job& job) const {
  std::scoped_lock lock(mu_);
  const auto p = pending_.find(key_of(job));
  return p == pending_.end() ? 0 : p->second;
}

TraceCache::Key TraceCache::key_of(const Job& job) {
  const std::string& path = job.config.trace_path;
  if (path.empty()) {
    return Key{job.program, job.config.instructions, job.config.seed};
  }
  // Shard jobs over the same file open different record ranges, so the
  // range is part of the key; plain whole-file jobs keep the historical
  // (path, 0, 0) key.
  const std::uint64_t begin =
      job.config.trace_measure_begin - effective_trace_warmup(job.config);
  return Key{"file:" + path, begin, job.config.trace_measure_end};
}

}  // namespace samie::sim
