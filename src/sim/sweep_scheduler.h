// Supervised sweep scheduler: runs (config, trace) jobs over a worker
// pool where a failing job is an *outcome*, not a poison pill.
//
// The fail-fast pool this replaces (run_jobs pre-PR 6) parked the first
// exception, stopped handing out work and rethrew after join — one
// malformed trace discarded every completed result with no partial
// output, no retry and no way to resume. Here every job ends in a
// structured JobOutcome:
//
//   Completed — result is valid (run live, or loaded from a checkpoint)
//   Failed    — all attempts exhausted; carries the failure class,
//               error text and the exception for programmatic rethrow
//   TimedOut  — the per-job wall-clock deadline fired; the core observed
//               the cooperative cancellation token and unwound (or, under
//               process isolation, the parent hard-killed the child after
//               the SIGTERM grace expired)
//   Skipped   — never attempted (the sweep drained after max_failures)
//   Crashed   — process isolation only: the child died on a fatal signal
//               (SIGSEGV/SIGBUS/SIGABRT/...); deterministic by
//               definition, quarantined in the checkpoint journal so a
//               resume skips the known-poison job, and carries a crash
//               forensics record when the child's handler got one out
//   ResourceExceeded — process isolation only: the child hit its
//               resource jail (RLIMIT_AS allocation failure, RLIMIT_CPU
//               SIGXCPU, or a kernel OOM kill)
//   TraceDamaged — the job's replay range touched corrupt trace blocks
//               (trace::TraceCorruptError: torn tail, interior
//               corruption or a bad index). Deterministic by definition
//               — the bytes on disk don't heal on retry — so the job is
//               journaled with a 'D' record and a resume seals it
//               instead of re-running it. Jobs whose ranges avoid the
//               damage complete normally with bit-identical results.
//
// Failures are classified transient (bad_alloc, TraceFormatError — e.g.
// a trace still being written or an I/O flake — and the fault-injection
// TransientFault) or deterministic (logic_error, watchdog throws,
// everything else). Transient failures retry up to RetryPolicy::
// max_attempts with capped exponential backoff; deterministic ones fail
// immediately. Deadlines are enforced cooperatively: a supervisor thread
// sets a per-job atomic token when the deadline passes, and the core's
// cycle loop polls it on stepped cycles (off the fast-forward path —
// statistics stay bit-identical whether or not a token is wired).
//
// Completed jobs are journaled incrementally to a crash-safe checkpoint
// (src/sim/checkpoint.h) so an interrupted sweep resumes with
// SweepOptions::resume, skipping finished jobs and reproducing their
// results bit-identically. SweepFaultPlan injects throws, delays and
// spurious supervisor wake-ups at (job, attempt) for the deterministic
// fault-injection tests and the CI job that drives them.
//
// Taxonomy, policies and file format: docs/SWEEP_ROBUSTNESS.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/trace/trace_io.h"

namespace samie::sim {

/// A retryable failure by definition — thrown by the fault-injection
/// hook, and available to external job code that knows its error is
/// transient (e.g. an NFS open that flaked).
class TransientFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class JobStatus : std::uint8_t {
  kCompleted,
  kFailed,
  kTimedOut,
  kSkipped,
  kCrashed,           ///< child died on a fatal signal (isolation only)
  kResourceExceeded,  ///< child hit its rlimit jail (isolation only)
  kTraceDamaged,      ///< replay range touched corrupt trace blocks
};
[[nodiscard]] const char* job_status_name(JobStatus s) noexcept;

/// Human-readable name for a child-terminating signal ("SIGSEGV", ...;
/// "SIG<n>" for anything unnamed).
[[nodiscard]] std::string signal_name(int sig);

enum class FailureClass : std::uint8_t { kNone, kTransient, kDeterministic };
[[nodiscard]] const char* failure_class_name(FailureClass c) noexcept;

/// Classifies a caught job failure. Transient: TransientFault,
/// std::bad_alloc, trace::TraceFormatError (a trace mid-write or an I/O
/// flake deserves a retry). trace::TraceCorruptError — structurally
/// *verified* damage behind an intact header, guard-checked — is
/// deterministic: the bytes on disk don't heal, so retrying replays the
/// same read. Everything else — logic_error, the commit watchdog's
/// runtime_error — is deterministic too: retrying replays the same
/// wedge.
[[nodiscard]] FailureClass classify_failure(const std::exception_ptr& error);

/// Crash forensics captured by the isolated child's async-signal-safe
/// handler: the signal, the faulting address (siginfo_t::si_addr) and a
/// raw backtrace, symbolized best-effort by the parent (fork without
/// exec shares the parent's mappings, so the addresses resolve).
struct CrashRecord {
  int signal = 0;
  std::uint64_t fault_addr = 0;
  std::vector<std::string> frames;  ///< innermost first, "0xADDR symbol"
  [[nodiscard]] bool present() const noexcept { return signal != 0; }
};

struct JobOutcome {
  JobStatus status = JobStatus::kSkipped;
  FailureClass failure = FailureClass::kNone;  ///< kNone unless Failed/Crashed/ResourceExceeded
  std::string what;                ///< final error text (Failed/TimedOut)
  std::uint32_t attempts = 0;      ///< attempts actually started
  double wall_seconds = 0.0;       ///< wall clock across all attempts
  bool from_checkpoint = false;    ///< Completed/Crashed/TraceDamaged via resume
  int term_signal = 0;             ///< signal that ended the child, if any
  CrashRecord crash;               ///< forensics (Crashed only)
  // -- TraceDamaged only ------------------------------------------------------
  trace::TraceDamage damage = trace::TraceDamage::kNone;  ///< damage kind
  std::uint64_t damage_block = trace::TraceCorruptError::kNoBlock;
  std::uint64_t damage_offset = 0;  ///< byte offset of the damage
};

/// One job's slot in the sweep report. `result` is meaningful only when
/// `completed()` — a non-completed job's slot is never a fabricated
/// zero-stat row, because the outcome says explicitly what happened.
struct SweepJobResult {
  Job job;
  SimResult result;
  JobOutcome outcome;
  std::exception_ptr error;  ///< final failure, for programmatic rethrow

  [[nodiscard]] bool completed() const noexcept {
    return outcome.status == JobStatus::kCompleted;
  }
};

struct RetryPolicy {
  /// Total attempts for transiently-failing jobs (1 = no retry).
  std::uint32_t max_attempts = 3;
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{500};

  /// Backoff before attempt `next_attempt` (2-based): base doubled per
  /// prior failure, capped.
  [[nodiscard]] std::chrono::milliseconds backoff_for(
      std::uint32_t next_attempt) const noexcept {
    std::chrono::milliseconds d = backoff_base;
    for (std::uint32_t i = 2; i < next_attempt && d < backoff_cap; ++i) d += d;
    return std::min(d, backoff_cap);
  }
};

/// Deterministic fault injection for the robustness test suite and the
/// CI fault-injection job: when the worker reaches (job, attempt) it
/// performs the fault before running the simulation.
struct SweepFault {
  enum class Kind : std::uint8_t {
    kThrowTransient,      ///< throw TransientFault (retried)
    kThrowDeterministic,  ///< throw std::logic_error (not retried)
    kDelay,               ///< sleep `delay` first (drives deadline tests)
    kSpuriousWake,        ///< wake the deadline supervisor for no reason
    // The kinds below run inside an isolated child and are rejected by
    // the in-process executors (they would take the whole sweep down —
    // which is exactly the failure mode isolation exists to contain).
    kCrash,      ///< dereference a poisoned pointer (SIGSEGV + forensics)
    kOom,        ///< allocation bomb into the RLIMIT_AS jail
    kSpin,       ///< busy loop that ignores the cancel token (hard kill)
    kTornFrame,  ///< write a truncated result frame, then exit 0
    // I/O fault kinds: armed on the job's trace path via
    // trace::set_io_fault right before the attempt acquires its trace,
    // consumed by the next open of that path (trace_io.h). They drive
    // the trace-corruption quarantine tests without touching the bytes
    // on disk.
    kShortRead,      ///< hide the last `param` bytes (0 = 64) of the file
    kBitFlipBlock,   ///< flip one payload bit of v2 block `param` in memory
    // Import-only kinds (consumed by TraceWriter*::finish, not by a
    // read): rejected by run_sweep — a sweep replays traces, it never
    // imports one. samie_sim --import-trace arms them directly.
    kEnospcOnImport,  ///< importer finalize fails as if the disk filled
    kTornImport,      ///< importer dies mid-block, torn tmp left behind
  };

  /// True for kinds that only make sense inside an isolated child.
  [[nodiscard]] static constexpr bool needs_isolation(Kind k) noexcept {
    return k == Kind::kCrash || k == Kind::kOom || k == Kind::kSpin ||
           k == Kind::kTornFrame;
  }
  /// True for kinds that arm a trace::set_io_fault on the job's trace
  /// path instead of acting inside the executor.
  [[nodiscard]] static constexpr bool is_io_fault(Kind k) noexcept {
    return k == Kind::kShortRead || k == Kind::kBitFlipBlock ||
           k == Kind::kEnospcOnImport || k == Kind::kTornImport;
  }
  /// True for I/O kinds only a trace *import* can consume.
  [[nodiscard]] static constexpr bool import_only(Kind k) noexcept {
    return k == Kind::kEnospcOnImport || k == Kind::kTornImport;
  }
  std::size_t job = 0;
  std::uint32_t attempt = 1;  ///< 1-based attempt the fault fires on
  Kind kind = Kind::kThrowTransient;
  std::chrono::milliseconds delay{0};
  std::uint64_t param = 0;  ///< I/O kinds: cut bytes / block number
};

struct SweepFaultPlan {
  std::vector<SweepFault> faults;

  [[nodiscard]] const SweepFault* find(std::size_t job,
                                       std::uint32_t attempt) const noexcept {
    for (const SweepFault& f : faults) {
      if (f.job == job && f.attempt == attempt) return &f;
    }
    return nullptr;
  }
};

struct SweepOptions {
  /// Worker threads; 0 picks bench_threads().
  unsigned threads = 0;
  /// Batched-lane executor: when nonzero, jobs run as interleaved
  /// machines stepped by earliest-wake LaneEngines (src/sim/
  /// lane_engine.h) — up to `lanes` lanes per shard — instead of one
  /// thread per job. Outcome semantics — retries, deadlines, fault
  /// hooks, drain, checkpointing — are identical, and completed results
  /// are bit-identical to the worker pool's, so the CSV a lane sweep
  /// emits matches byte for byte. `threads` is ignored in lane mode
  /// (`lane_shards` is the parallelism knob).
  unsigned lanes = 0;
  /// Lane mode only: worker shards, each owning a private LaneEngine of
  /// up to `lanes` lanes and pulling jobs from the shared due-time
  /// queue. 0 picks bench_threads(); 1 runs the sweep on the calling
  /// thread. Results are independent of the shard count by construction
  /// (lanes never share mutable state), so any T emits the same CSV.
  /// Rejected when `lanes` is 0.
  unsigned lane_shards = 0;
  /// Lane mode only: stepped cycles per lane turn; 0 picks
  /// LaneEngine::kDefaultCyclesPerTurn (4096). Any N >= 1 is
  /// outcome-identical — the turn size slices each lane's cycle loop
  /// without reordering it — so this is purely a scheduling-granularity
  /// / cache-locality knob. Rejected when `lanes` is 0.
  std::uint64_t lane_turn = 0;
  /// Process-isolated executor: when nonzero, each job runs in a forked
  /// child under resource jails (src/sim/process_executor.h) with up to
  /// `isolate_procs` children alive at once — the first true multi-core
  /// sweep parallelism, and the only executor that survives a job that
  /// SIGSEGVs, aborts, or spins past the cooperative cancel check.
  /// Results come back over a guarded pipe frame and are bit-identical
  /// to the in-process executors. Mutually exclusive with `lanes`;
  /// `threads` is ignored (the parent supervisor is single-threaded).
  unsigned isolate_procs = 0;
  /// RLIMIT_AS cap per child, in MiB (0 = no cap). The cap covers the
  /// whole child address space, inherited image included. Allocation
  /// failure inside the jail maps to ResourceExceeded.
  std::uint64_t job_mem_mb = 0;
  /// RLIMIT_CPU backstop per child, in seconds (0 = no cap). SIGXCPU
  /// maps to ResourceExceeded.
  std::uint64_t job_cpu_s = 0;
  /// Isolation only: grace between the deadline SIGTERM (cooperative —
  /// the child's handler flips its cancel token and it unwinds with its
  /// outcome intact) and the SIGKILL hard kill for children that ignore
  /// it. Both fates map to TimedOut.
  std::chrono::milliseconds kill_grace{500};
  RetryPolicy retry;
  /// Per-job wall-clock deadline; zero disables the supervisor.
  std::chrono::milliseconds job_deadline{0};
  /// Drain after this many Failed/TimedOut jobs (0 = never): workers
  /// stop starting new jobs, which then report Skipped.
  std::size_t max_failures = 0;
  /// Journal completed jobs here (empty = no checkpointing). With
  /// `resume`, an existing journal is validated against the job list
  /// and its finished jobs are not re-run.
  std::string checkpoint_path;
  bool resume = false;
  /// Borrowed; may be nullptr. Only the tests and CI set this.
  const SweepFaultPlan* faults = nullptr;
};

struct SweepReport {
  std::vector<SweepJobResult> jobs;  ///< one per input job, in job order
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t skipped = 0;
  std::size_t crashed = 0;            ///< child died on a fatal signal
  std::size_t resource_exceeded = 0;  ///< child hit its rlimit jail
  std::size_t trace_damaged = 0;      ///< replay range touched corrupt blocks
  std::size_t resumed = 0;  ///< subset of `completed` loaded from journal
  /// Subset of `crashed` skipped on resume via a quarantine record.
  std::size_t quarantined = 0;
  /// Subset of `trace_damaged` sealed on resume via a 'D' record.
  std::size_t damage_sealed = 0;
  /// Torn checkpoint lines ignored on resume (a kill mid-append).
  std::size_t checkpoint_lines_ignored = 0;
  /// High-water mark of trace sources resident in the sweep's cache —
  /// the residency-release regression probe: with release-on-last-
  /// consumer working, this tracks the traces concurrently in flight
  /// (<= threads / lanes x shards / isolate_procs, plus build overlap),
  /// not the total number of distinct traces the sweep touched.
  std::size_t trace_resident_high_water = 0;

  [[nodiscard]] bool all_completed() const noexcept {
    return completed == jobs.size();
  }
};

/// CLI exit code for a finished sweep: 0 = every job completed, 3 = the
/// sweep ran to completion but at least one job crashed, exceeded its
/// resource jail, or hit trace damage, 2 = partial for any other reason
/// (failed, timed out, skipped). (1 is reserved for usage/fatal errors
/// before any job ran.)
[[nodiscard]] int sweep_exit_code(const SweepReport& report) noexcept;

/// Runs the sweep. Never throws for per-job failures — those are
/// outcomes. Throws CheckpointError (bad/mismatched journal on resume)
/// and std::invalid_argument (unjournalable job names, `lanes` combined
/// with `isolate_procs`, `lane_shards`/`lane_turn` without `lanes`, an
/// isolation-only fault kind without `isolate_procs`, an oom fault
/// without a `job_mem_mb` jail, an import-only I/O fault kind, or an
/// I/O fault aimed at a job with no trace file) before any job has
/// started.
[[nodiscard]] SweepReport run_sweep(const std::vector<Job>& jobs,
                                    const SweepOptions& opt = {});

/// Binds a checkpoint to its sweep: FNV-1a over every job's identity
/// (program, tag, LSQ kind and geometry, workload length/seed/path), so
/// resuming against a different job list is refused instead of grafting
/// foreign results.
[[nodiscard]] std::uint64_t sweep_fingerprint(const std::vector<Job>& jobs);

/// The machine-readable failure report (consumed by CI): one
/// `sweep: job=I program=P tag=T outcome=... attempts=N wall=S [...]`
/// line per non-completed job, then a one-line summary. Prints only the
/// summary when everything completed.
void print_failure_report(std::ostream& os, const SweepReport& report);

}  // namespace samie::sim
