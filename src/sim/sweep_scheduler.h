// Supervised sweep scheduler: runs (config, trace) jobs over a worker
// pool where a failing job is an *outcome*, not a poison pill.
//
// The fail-fast pool this replaces (run_jobs pre-PR 6) parked the first
// exception, stopped handing out work and rethrew after join — one
// malformed trace discarded every completed result with no partial
// output, no retry and no way to resume. Here every job ends in a
// structured JobOutcome:
//
//   Completed — result is valid (run live, or loaded from a checkpoint)
//   Failed    — all attempts exhausted; carries the failure class,
//               error text and the exception for programmatic rethrow
//   TimedOut  — the per-job wall-clock deadline fired; the core observed
//               the cooperative cancellation token and unwound
//   Skipped   — never attempted (the sweep drained after max_failures)
//
// Failures are classified transient (bad_alloc, TraceFormatError — e.g.
// a trace still being written or an I/O flake — and the fault-injection
// TransientFault) or deterministic (logic_error, watchdog throws,
// everything else). Transient failures retry up to RetryPolicy::
// max_attempts with capped exponential backoff; deterministic ones fail
// immediately. Deadlines are enforced cooperatively: a supervisor thread
// sets a per-job atomic token when the deadline passes, and the core's
// cycle loop polls it on stepped cycles (off the fast-forward path —
// statistics stay bit-identical whether or not a token is wired).
//
// Completed jobs are journaled incrementally to a crash-safe checkpoint
// (src/sim/checkpoint.h) so an interrupted sweep resumes with
// SweepOptions::resume, skipping finished jobs and reproducing their
// results bit-identically. SweepFaultPlan injects throws, delays and
// spurious supervisor wake-ups at (job, attempt) for the deterministic
// fault-injection tests and the CI job that drives them.
//
// Taxonomy, policies and file format: docs/SWEEP_ROBUSTNESS.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/experiment.h"

namespace samie::sim {

/// A retryable failure by definition — thrown by the fault-injection
/// hook, and available to external job code that knows its error is
/// transient (e.g. an NFS open that flaked).
class TransientFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class JobStatus : std::uint8_t { kCompleted, kFailed, kTimedOut, kSkipped };
[[nodiscard]] const char* job_status_name(JobStatus s) noexcept;

enum class FailureClass : std::uint8_t { kNone, kTransient, kDeterministic };
[[nodiscard]] const char* failure_class_name(FailureClass c) noexcept;

/// Classifies a caught job failure. Transient: TransientFault,
/// std::bad_alloc, trace::TraceFormatError (a trace mid-write or an I/O
/// flake deserves a retry; a genuinely corrupt file fails identically N
/// times and surfaces as Failed{transient} with its attempts count).
/// Everything else — logic_error, the commit watchdog's runtime_error —
/// is deterministic: retrying replays the same wedge.
[[nodiscard]] FailureClass classify_failure(const std::exception_ptr& error);

struct JobOutcome {
  JobStatus status = JobStatus::kSkipped;
  FailureClass failure = FailureClass::kNone;  ///< kNone unless Failed
  std::string what;                ///< final error text (Failed/TimedOut)
  std::uint32_t attempts = 0;      ///< attempts actually started
  double wall_seconds = 0.0;       ///< wall clock across all attempts
  bool from_checkpoint = false;    ///< Completed via resume, not re-run
};

/// One job's slot in the sweep report. `result` is meaningful only when
/// `completed()` — a non-completed job's slot is never a fabricated
/// zero-stat row, because the outcome says explicitly what happened.
struct SweepJobResult {
  Job job;
  SimResult result;
  JobOutcome outcome;
  std::exception_ptr error;  ///< final failure, for programmatic rethrow

  [[nodiscard]] bool completed() const noexcept {
    return outcome.status == JobStatus::kCompleted;
  }
};

struct RetryPolicy {
  /// Total attempts for transiently-failing jobs (1 = no retry).
  std::uint32_t max_attempts = 3;
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{500};

  /// Backoff before attempt `next_attempt` (2-based): base doubled per
  /// prior failure, capped.
  [[nodiscard]] std::chrono::milliseconds backoff_for(
      std::uint32_t next_attempt) const noexcept {
    std::chrono::milliseconds d = backoff_base;
    for (std::uint32_t i = 2; i < next_attempt && d < backoff_cap; ++i) d += d;
    return std::min(d, backoff_cap);
  }
};

/// Deterministic fault injection for the robustness test suite and the
/// CI fault-injection job: when the worker reaches (job, attempt) it
/// performs the fault before running the simulation.
struct SweepFault {
  enum class Kind : std::uint8_t {
    kThrowTransient,      ///< throw TransientFault (retried)
    kThrowDeterministic,  ///< throw std::logic_error (not retried)
    kDelay,               ///< sleep `delay` first (drives deadline tests)
    kSpuriousWake,        ///< wake the deadline supervisor for no reason
  };
  std::size_t job = 0;
  std::uint32_t attempt = 1;  ///< 1-based attempt the fault fires on
  Kind kind = Kind::kThrowTransient;
  std::chrono::milliseconds delay{0};
};

struct SweepFaultPlan {
  std::vector<SweepFault> faults;

  [[nodiscard]] const SweepFault* find(std::size_t job,
                                       std::uint32_t attempt) const noexcept {
    for (const SweepFault& f : faults) {
      if (f.job == job && f.attempt == attempt) return &f;
    }
    return nullptr;
  }
};

struct SweepOptions {
  /// Worker threads; 0 picks bench_threads().
  unsigned threads = 0;
  /// Batched-lane executor: when nonzero, jobs run as up to `lanes`
  /// interleaved machines stepped round-robin by one LaneEngine
  /// (src/sim/lane_engine.h) instead of one thread per job. Outcome
  /// semantics — retries, deadlines, fault hooks, drain, checkpointing —
  /// are identical, and completed results are bit-identical to the
  /// worker pool's, so the CSV a lane sweep emits matches byte for byte.
  /// `threads` is ignored in lane mode (the driver is single-threaded;
  /// only the deadline supervisor runs beside it).
  unsigned lanes = 0;
  RetryPolicy retry;
  /// Per-job wall-clock deadline; zero disables the supervisor.
  std::chrono::milliseconds job_deadline{0};
  /// Drain after this many Failed/TimedOut jobs (0 = never): workers
  /// stop starting new jobs, which then report Skipped.
  std::size_t max_failures = 0;
  /// Journal completed jobs here (empty = no checkpointing). With
  /// `resume`, an existing journal is validated against the job list
  /// and its finished jobs are not re-run.
  std::string checkpoint_path;
  bool resume = false;
  /// Borrowed; may be nullptr. Only the tests and CI set this.
  const SweepFaultPlan* faults = nullptr;
};

struct SweepReport {
  std::vector<SweepJobResult> jobs;  ///< one per input job, in job order
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t skipped = 0;
  std::size_t resumed = 0;  ///< subset of `completed` loaded from journal
  /// Torn checkpoint lines ignored on resume (a kill mid-append).
  std::size_t checkpoint_lines_ignored = 0;

  [[nodiscard]] bool all_completed() const noexcept {
    return completed == jobs.size();
  }
};

/// Runs the sweep. Never throws for per-job failures — those are
/// outcomes. Throws CheckpointError (bad/mismatched journal on resume)
/// and std::invalid_argument (unjournalable job names) before any job
/// has started.
[[nodiscard]] SweepReport run_sweep(const std::vector<Job>& jobs,
                                    const SweepOptions& opt = {});

/// Binds a checkpoint to its sweep: FNV-1a over every job's identity
/// (program, tag, LSQ kind and geometry, workload length/seed/path), so
/// resuming against a different job list is refused instead of grafting
/// foreign results.
[[nodiscard]] std::uint64_t sweep_fingerprint(const std::vector<Job>& jobs);

/// The machine-readable failure report (consumed by CI): one
/// `sweep: job=I program=P tag=T outcome=... attempts=N wall=S [...]`
/// line per non-completed job, then a one-line summary. Prints only the
/// summary when everything completed.
void print_failure_report(std::ostream& os, const SweepReport& report);

}  // namespace samie::sim
