// Whole-simulation configuration: the paper's processor (Table 2),
// SAMIE-LSQ shape (Table 3) and the LSQ organization under test.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/core.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/mem/hierarchy.h"

namespace samie::sim {

enum class LsqChoice : std::uint8_t {
  kConventional,  ///< 128-entry fully-associative baseline
  kUnbounded,     ///< never-stalling reference (Figure 1 normalization)
  kArb,           ///< Franklin & Sohi banked baseline
  kSamie,         ///< the paper's contribution
};

[[nodiscard]] const char* lsq_choice_name(LsqChoice c) noexcept;

struct SimConfig {
  core::CoreConfig core;          ///< defaults == paper Table 2
  mem::HierarchyConfig memory;    ///< defaults == paper Table 2
  LsqChoice lsq = LsqChoice::kSamie;
  lsq::ConventionalLsqConfig conventional;  ///< 128 entries
  lsq::SamieConfig samie;                   ///< defaults == paper Table 3
  lsq::ArbConfig arb;
  /// Account energy with the paper's published constants (default) or
  /// with this repository's analytical surrogate model.
  bool paper_energy_constants = true;
  std::uint64_t instructions = 300'000;
  std::uint64_t seed = 42;
  /// When non-empty, the workload is the recorded SAMT trace at this path
  /// (replayed via mmap) instead of a (profile, seed, length) triple;
  /// `instructions` then caps how much of the trace is replayed.
  std::string trace_path;
  /// Verify the SAMT FNV-1a checksum when opening `trace_path` (touches
  /// every page once). `samie_sim --no-verify-checksum` clears it for
  /// mmap replay hot paths re-opening an already-verified trace.
  bool verify_trace_checksum = true;

  // -- sharded long-trace replay (docs/SWEEP_ROBUSTNESS.md) --------------------
  /// Measured record range [trace_measure_begin, trace_measure_end) of
  /// `trace_path`; trace_measure_end == 0 means "to the end of the
  /// trace". The defaults (0, 0) replay the whole trace: the classic
  /// single-job path, bit-identical to before these fields existed.
  std::uint64_t trace_measure_begin = 0;
  std::uint64_t trace_measure_end = 0;
  /// Warm-up records replayed ahead of trace_measure_begin and excluded
  /// from the statistics by the two-run subtraction (trace_shard.h).
  /// Clamped to trace_measure_begin; UINT64_MAX means "the whole prefix"
  /// — the exact-reconciliation mode, where sharded stats telescope to
  /// the unsharded run's bit for bit.
  std::uint64_t trace_warmup = 0;
};

/// Warm-up records actually replayed ahead of the measured range: the
/// prefix cannot extend before record 0.
[[nodiscard]] inline std::uint64_t effective_trace_warmup(
    const SimConfig& cfg) noexcept {
  return cfg.trace_warmup < cfg.trace_measure_begin ? cfg.trace_warmup
                                                    : cfg.trace_measure_begin;
}

/// The paper's evaluation configuration with the given LSQ choice.
[[nodiscard]] SimConfig paper_config(LsqChoice lsq);

/// Number of instructions for bench binaries: the built-in default can be
/// scaled with the SAMIE_BENCH_INSTS environment variable.
[[nodiscard]] std::uint64_t bench_instructions(std::uint64_t fallback = 300'000);

/// Worker-thread count for suite runs; honours SAMIE_BENCH_THREADS.
[[nodiscard]] unsigned bench_threads();

}  // namespace samie::sim
