// Parallel experiment runner: fans (program, config) jobs out over worker
// threads. Traces are materialized once per (program, length, seed) — or
// mmapped once per recorded trace file when `config.trace_path` is set —
// and shared read-only between workers (Core Guidelines CP.1: workers
// share only immutable traces and write disjoint result slots).
//
// run_jobs is the simple all-or-nothing interface: every job runs, and
// the first failure is rethrown after the pool drains. Sweeps that need
// per-job outcomes, retries, deadlines or checkpoint/resume use
// run_sweep (src/sim/sweep_scheduler.h), which this is a wrapper over.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/sim/sim_config.h"
#include "src/sim/simulator.h"

namespace samie::sim {

struct Job {
  /// SPEC2000 profile name; when `config.trace_path` is set this is only
  /// a display label (usually the recorded trace's header name).
  std::string program;
  SimConfig config;
  /// Free-form tag benches use to group results (e.g. "64x2", "samie").
  std::string tag;
};

struct JobResult {
  Job job;
  SimResult result;
};

/// Runs all jobs; results are returned in job order. `threads == 0` picks
/// bench_threads().
[[nodiscard]] std::vector<JobResult> run_jobs(const std::vector<Job>& jobs,
                                              unsigned threads = 0);

/// Convenience: one job per SPEC2000 program with a shared config.
[[nodiscard]] std::vector<Job> jobs_for_suite(const SimConfig& cfg,
                                              const std::string& tag);

}  // namespace samie::sim
