#include "src/sim/sweep_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <tuple>

#include "src/core/core.h"
#include "src/sim/checkpoint.h"
#include "src/sim/lane_engine.h"
#include "src/sim/proc_frame.h"
#include "src/sim/process_executor.h"
#include "src/sim/trace_cache.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"

namespace samie::sim {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Enforces per-job wall-clock deadlines by flipping each job's
/// cooperative cancellation token when its deadline passes. One thread
/// serves the whole pool: it sleeps until the earliest armed deadline
/// and rescans on every wake. Spurious wake-ups (which the fault plan
/// can inject) are harmless by construction — the loop recomputes the
/// earliest deadline from scratch each iteration and only fires tokens
/// whose deadline has genuinely passed.
class DeadlineSupervisor {
 public:
  explicit DeadlineSupervisor(unsigned slots) : entries_(slots) {
    thread_ = std::thread([this] { loop(); });
  }
  DeadlineSupervisor(const DeadlineSupervisor&) = delete;
  DeadlineSupervisor& operator=(const DeadlineSupervisor&) = delete;
  ~DeadlineSupervisor() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void arm(unsigned slot, std::atomic<bool>* token, Clock::time_point deadline) {
    {
      std::scoped_lock lock(mu_);
      entries_[slot] = Entry{token, deadline, true};
    }
    cv_.notify_all();
  }

  void disarm(unsigned slot) {
    std::scoped_lock lock(mu_);
    entries_[slot].armed = false;
  }

  /// Fault-injection hook: wake the supervisor with nothing expired.
  void spurious_wake() { cv_.notify_all(); }

 private:
  struct Entry {
    std::atomic<bool>* token = nullptr;
    Clock::time_point deadline{};
    bool armed = false;
  };

  void loop() {
    std::unique_lock lock(mu_);
    while (!stop_) {
      Clock::time_point next = Clock::time_point::max();
      const Clock::time_point now = Clock::now();
      for (Entry& e : entries_) {
        if (!e.armed) continue;
        if (e.deadline <= now) {
          e.token->store(true, std::memory_order_relaxed);
          e.armed = false;
        } else {
          next = std::min(next, e.deadline);
        }
      }
      if (next == Clock::time_point::max()) {
        cv_.wait(lock);
      } else {
        cv_.wait_until(lock, next);
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  bool stop_ = false;
  std::thread thread_;
};

[[nodiscard]] std::string what_of(const std::exception_ptr& error) {
  if (!error) return "unknown error";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

[[nodiscard]] std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Checkpoint record payload for one completed job (TAB-separated):
///   index, program, tag, attempts, wall, serialized SimResult
[[nodiscard]] std::string encode_record(std::size_t index, const Job& job,
                                        const JobOutcome& oc,
                                        const SimResult& result) {
  std::ostringstream os;
  os << index << '\t' << job.program << '\t' << job.tag << '\t' << oc.attempts
     << '\t' << hex_double(oc.wall_seconds) << '\t'
     << serialize_sim_result(result);
  return os.str();
}

struct DecodedRecord {
  std::size_t index = 0;
  std::string program;
  std::string tag;
  std::uint32_t attempts = 0;
  double wall_seconds = 0.0;
  SimResult result;
};

[[nodiscard]] bool decode_record(const std::string& payload,
                                 DecodedRecord& out) {
  std::vector<std::string> fields;
  std::size_t at = 0;
  while (fields.size() < 5) {
    const std::size_t tab = payload.find('\t', at);
    if (tab == std::string::npos) return false;
    fields.push_back(payload.substr(at, tab - at));
    at = tab + 1;
  }
  char* end = nullptr;
  errno = 0;
  out.index = std::strtoull(fields[0].c_str(), &end, 10);
  if (errno != 0 || end != fields[0].c_str() + fields[0].size()) return false;
  out.program = fields[1];
  out.tag = fields[2];
  out.attempts =
      static_cast<std::uint32_t>(std::strtoul(fields[3].c_str(), &end, 10));
  if (end != fields[3].c_str() + fields[3].size()) return false;
  out.wall_seconds = std::strtod(fields[4].c_str(), &end);
  if (end != fields[4].c_str() + fields[4].size()) return false;
  return parse_sim_result(payload.substr(at), out.result);
}

/// Quarantine payload for a job that crashed its isolated child
/// (TAB-separated):
///   index, program, tag, attempts, wall, signal, fault_addr (hex),
///   backtrace frames joined by '\x1f'
/// Frames were scrubbed of tabs/newlines by the crash decoder, so the
/// grammar holds.
[[nodiscard]] std::string encode_quarantine(std::size_t index, const Job& job,
                                            const JobOutcome& oc) {
  std::ostringstream os;
  os << index << '\t' << job.program << '\t' << job.tag << '\t' << oc.attempts
     << '\t' << hex_double(oc.wall_seconds) << '\t' << oc.crash.signal << '\t'
     << std::hex << oc.crash.fault_addr << std::dec << '\t';
  for (std::size_t i = 0; i < oc.crash.frames.size(); ++i) {
    if (i != 0) os << '\x1f';
    os << oc.crash.frames[i];
  }
  return os.str();
}

struct DecodedQuarantine {
  std::size_t index = 0;
  std::string program;
  std::string tag;
  std::uint32_t attempts = 0;
  double wall_seconds = 0.0;
  CrashRecord crash;
};

[[nodiscard]] bool decode_quarantine(const std::string& payload,
                                     DecodedQuarantine& out) {
  std::vector<std::string> fields;
  std::size_t at = 0;
  while (fields.size() < 7) {
    const std::size_t tab = payload.find('\t', at);
    if (tab == std::string::npos) return false;
    fields.push_back(payload.substr(at, tab - at));
    at = tab + 1;
  }
  char* end = nullptr;
  errno = 0;
  out.index = std::strtoull(fields[0].c_str(), &end, 10);
  if (errno != 0 || end != fields[0].c_str() + fields[0].size()) return false;
  out.program = fields[1];
  out.tag = fields[2];
  out.attempts =
      static_cast<std::uint32_t>(std::strtoul(fields[3].c_str(), &end, 10));
  if (end != fields[3].c_str() + fields[3].size()) return false;
  out.wall_seconds = std::strtod(fields[4].c_str(), &end);
  if (end != fields[4].c_str() + fields[4].size()) return false;
  out.crash.signal = static_cast<int>(std::strtol(fields[5].c_str(), &end, 10));
  if (end != fields[5].c_str() + fields[5].size() || out.crash.signal == 0) {
    return false;
  }
  out.crash.fault_addr = std::strtoull(fields[6].c_str(), &end, 16);
  if (end != fields[6].c_str() + fields[6].size()) return false;
  const std::string frames = payload.substr(at);
  for (std::size_t from = 0; from <= frames.size() && !frames.empty();) {
    std::size_t sep = frames.find('\x1f', from);
    if (sep == std::string::npos) sep = frames.size();
    if (sep > from) out.crash.frames.push_back(frames.substr(from, sep - from));
    from = sep + 1;
    if (sep == frames.size()) break;
  }
  return true;
}

/// Trace-damage payload for a job whose replay range touched corrupt
/// blocks (TAB-separated):
///   index, program, tag, attempts, wall, damage kind name, block
///   (decimal; TraceCorruptError::kNoBlock when unattributable), offset
[[nodiscard]] std::string encode_damaged(std::size_t index, const Job& job,
                                         const JobOutcome& oc) {
  std::ostringstream os;
  os << index << '\t' << job.program << '\t' << job.tag << '\t' << oc.attempts
     << '\t' << hex_double(oc.wall_seconds) << '\t'
     << trace::trace_damage_name(oc.damage) << '\t' << oc.damage_block << '\t'
     << oc.damage_offset;
  return os.str();
}

struct DecodedDamage {
  std::size_t index = 0;
  std::string program;
  std::string tag;
  std::uint32_t attempts = 0;
  double wall_seconds = 0.0;
  trace::TraceDamage damage = trace::TraceDamage::kNone;
  std::uint64_t block = trace::TraceCorruptError::kNoBlock;
  std::uint64_t offset = 0;
};

[[nodiscard]] bool decode_damaged(const std::string& payload,
                                  DecodedDamage& out) {
  std::vector<std::string> fields;
  std::size_t at = 0;
  while (fields.size() < 7) {
    const std::size_t tab = payload.find('\t', at);
    if (tab == std::string::npos) return false;
    fields.push_back(payload.substr(at, tab - at));
    at = tab + 1;
  }
  fields.push_back(payload.substr(at));
  char* end = nullptr;
  errno = 0;
  out.index = std::strtoull(fields[0].c_str(), &end, 10);
  if (errno != 0 || end != fields[0].c_str() + fields[0].size()) return false;
  out.program = fields[1];
  out.tag = fields[2];
  out.attempts =
      static_cast<std::uint32_t>(std::strtoul(fields[3].c_str(), &end, 10));
  if (end != fields[3].c_str() + fields[3].size()) return false;
  out.wall_seconds = std::strtod(fields[4].c_str(), &end);
  if (end != fields[4].c_str() + fields[4].size()) return false;
  bool known = false;
  for (const trace::TraceDamage d :
       {trace::TraceDamage::kTornTail, trace::TraceDamage::kInteriorCorrupt,
        trace::TraceDamage::kBadIndex}) {
    if (fields[5] == trace::trace_damage_name(d)) {
      out.damage = d;
      known = true;
      break;
    }
  }
  if (!known) return false;
  out.block = std::strtoull(fields[6].c_str(), &end, 10);
  if (end != fields[6].c_str() + fields[6].size()) return false;
  out.offset = std::strtoull(fields[7].c_str(), &end, 10);
  return end == fields[7].c_str() + fields[7].size();
}

/// Seals a TraceCorruptError into the outcome's damage fields.
void fill_damage(JobOutcome& oc, const trace::TraceCorruptError& e) {
  oc.status = JobStatus::kTraceDamaged;
  oc.failure = FailureClass::kDeterministic;
  oc.what = e.what();
  oc.damage = e.damage;
  oc.damage_block = e.block;
  oc.damage_offset = e.offset;
}

/// Arms an I/O fault kind on the job's trace path; the next open of
/// that path (this attempt's traces_.get) consumes it.
void arm_io_fault(const Job& job, const SweepFault& f) {
  trace::IoFault io;
  io.param = f.param;
  switch (f.kind) {
    case SweepFault::Kind::kShortRead:
      io.kind = trace::IoFault::Kind::kShortRead;
      break;
    case SweepFault::Kind::kBitFlipBlock:
      io.kind = trace::IoFault::Kind::kBitFlipBlock;
      break;
    case SweepFault::Kind::kEnospcOnImport:
      io.kind = trace::IoFault::Kind::kEnospcOnImport;
      break;
    case SweepFault::Kind::kTornImport:
      io.kind = trace::IoFault::Kind::kTornImport;
      break;
    default:
      return;
  }
  trace::set_io_fault(job.config.trace_path, io);
}

/// Journalable names must survive the TAB-separated record grammar.
void require_journalable(const std::vector<Job>& jobs) {
  for (const Job& job : jobs) {
    for (const std::string* s : {&job.program, &job.tag}) {
      if (s->find('\t') != std::string::npos ||
          s->find('\n') != std::string::npos) {
        throw std::invalid_argument(
            "job name/tag '" + *s + "' cannot be journaled (contains a "
            "tab or newline)");
      }
    }
  }
}

/// Fills the report's outcome counters from the per-job slots.
void tally(SweepReport& rep) {
  for (const SweepJobResult& jr : rep.jobs) {
    switch (jr.outcome.status) {
      case JobStatus::kCompleted:
        ++rep.completed;
        if (jr.outcome.from_checkpoint) ++rep.resumed;
        break;
      case JobStatus::kFailed: ++rep.failed; break;
      case JobStatus::kTimedOut: ++rep.timed_out; break;
      case JobStatus::kSkipped: ++rep.skipped; break;
      case JobStatus::kCrashed:
        ++rep.crashed;
        if (jr.outcome.from_checkpoint) ++rep.quarantined;
        break;
      case JobStatus::kResourceExceeded: ++rep.resource_exceeded; break;
      case JobStatus::kTraceDamaged:
        ++rep.trace_damaged;
        if (jr.outcome.from_checkpoint) ++rep.damage_sealed;
        break;
    }
  }
}

/// Sharded batched-lane executor (SweepOptions::lanes x lane_shards):
/// T worker shards, each owning a *private* LaneEngine of up to K
/// lanes, pull jobs from a shared cursor + due-time retry queue and
/// publish retirements into the per-index report slots. The job
/// lifecycle mirrors the worker pool exactly — the same pre-run fault
/// hooks, transient-retry policy with backoff (a retried job goes back
/// on the shared queue, so the next attempt lands on whichever shard
/// has a free lane first), cooperative deadline tokens (supervisor slot
/// = shard x K + local lane), drain-to-Skipped past the failure budget
/// and checkpoint journaling — and completed results are bit-identical
/// (a lane *is* run_simulation sliced into turns, and lanes never share
/// mutable simulation state), so the CSV a sharded lane sweep emits
/// matches the threaded sweep byte for byte at any T. T=1 runs on the
/// calling thread with no pool. Retry backoff never sleeps a shard:
/// due-times sit on the queue while live lanes keep stepping, and an
/// idle shard waits on the queue's condition variable with a deadline
/// at the earliest due retry. Injected delay faults sleep only the
/// shard running the faulted attempt; sibling shards keep stepping.
class LaneExecutor {
 public:
  LaneExecutor(const std::vector<Job>& jobs,
               const std::vector<std::size_t>& todo, const SweepOptions& opt,
               SweepReport& rep, TraceCache& traces,
               std::optional<DeadlineSupervisor>& supervisor,
               std::optional<CheckpointWriter>& journal, unsigned shards)
      : jobs_(jobs),
        todo_(todo),
        opt_(opt),
        rep_(rep),
        traces_(traces),
        supervisor_(supervisor),
        journal_(journal),
        lanes_per_shard_(std::max(1U, opt.lanes)),
        shards_(std::max(1U, shards)),
        turn_(opt.lane_turn != 0 ? opt.lane_turn
                                 : LaneEngine::kDefaultCyclesPerTurn) {}

  void run() {
    if (shards_ == 1) {
      shard_main(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(shards_);
      for (unsigned s = 0; s < shards_; ++s) {
        pool.emplace_back([this, s] {
          try {
            shard_main(s);
          } catch (...) {
            // Defensive: per-job failures are outcomes, so only
            // infrastructure (journal I/O, bad_alloc in bookkeeping)
            // lands here. First exception wins; siblings drain out.
            std::scoped_lock lock(mu_);
            if (!panic_) panic_ = std::current_exception();
            cv_.notify_all();
          }
        });
      }
      for (auto& th : pool) th.join();
    }
    if (panic_) std::rethrow_exception(panic_);
  }

 private:
  struct InFlight {
    std::size_t index = 0;
    unsigned slot = 0;  ///< global supervisor slot (shard x K + lane)
    JobOutcome oc;
    /// Stable address for the core's cooperative cancellation poll.
    std::unique_ptr<std::atomic<bool>> cancel;
    /// Keeps the mmapped/generated trace alive while the lane runs.
    std::shared_ptr<const trace::TraceSource> trace;
    Clock::time_point t0;  ///< first attempt start, carried across retries
  };

  /// A job waiting out its retry backoff on the shared queue. Only the
  /// outcome-so-far travels — the next attempt rebuilds its cancel
  /// token and trace reference on whichever shard picks it up.
  struct PendingRetry {
    std::size_t index = 0;
    JobOutcome oc;
    Clock::time_point t0;
    Clock::time_point due;
  };

  /// One shard: a private engine stepping up to K lanes, refilled from
  /// the shared queue. Returns when the sweep is complete (or a sibling
  /// panicked).
  void shard_main(unsigned shard) {
    LaneEngine engine(turn_);
    std::map<std::uint64_t, InFlight> inflight;
    std::vector<unsigned> free_slots;
    for (unsigned l = 0; l < lanes_per_shard_; ++l) {
      free_slots.push_back(shard * lanes_per_shard_ + l);
    }
    for (;;) {
      refill(engine, inflight, free_slots);
      if (engine.active() == 0) {
        // Nothing runnable here. Either the sweep is done, or the only
        // work left is a not-yet-due retry / jobs owned by other shards
        // (which may still spawn retries) — wait for the earliest due
        // time or a queue change.
        std::unique_lock lock(mu_);
        if (panic_ || done_locked()) return;
        const Clock::time_point due = earliest_due_locked();
        if (due == Clock::time_point::max()) {
          cv_.wait(lock);
        } else {
          cv_.wait_until(lock, due);
        }
        continue;
      }
      auto ev = engine.run_until_event();
      if (!ev) continue;
      auto node = inflight.extract(ev->key);
      InFlight& st = node.mapped();
      if (supervisor_) supervisor_->disarm(st.slot);
      free_slots.push_back(st.slot);
      if (ev->ok) {
        st.oc.status = JobStatus::kCompleted;
        finalize(st, nullptr, &ev->result);
      } else {
        retry_or_finalize(st, ev->error);
      }
    }
  }

  /// Admits work until this shard's lanes are full or the queue has
  /// nothing runnable: due retries first (a backed-off job re-enters
  /// ahead of fresh work), then fresh jobs off the shared cursor. Jobs
  /// drained past the failure budget seal as Skipped here.
  void refill(LaneEngine& engine, std::map<std::uint64_t, InFlight>& inflight,
              std::vector<unsigned>& free_slots) {
    while (!free_slots.empty()) {
      InFlight st;
      bool have = false;
      std::vector<std::size_t> drained;
      {
        std::scoped_lock lock(mu_);
        if (panic_) return;
        const Clock::time_point now = Clock::now();
        for (std::size_t k = 0; k < retries_.size(); ++k) {
          if (retries_[k].due > now) continue;
          PendingRetry r = std::move(retries_[k]);
          retries_.erase(retries_.begin() + static_cast<std::ptrdiff_t>(k));
          st.index = r.index;
          st.oc = std::move(r.oc);
          st.t0 = r.t0;
          ++active_jobs_;
          have = true;
          break;
        }
        while (!have && cursor_ < todo_.size()) {
          const std::size_t i = todo_[cursor_++];
          if (opt_.max_failures != 0 &&
              failures_.load(std::memory_order_relaxed) >= opt_.max_failures) {
            drained.push_back(i);
            continue;
          }
          st.index = i;
          st.t0 = Clock::now();
          ++active_jobs_;
          have = true;
        }
      }
      for (const std::size_t i : drained) {
        SweepJobResult& out = rep_.jobs[i];
        out.outcome.status = JobStatus::kSkipped;
        out.outcome.attempts = 0;
        traces_.finished(jobs_[i]);
      }
      if (!have) return;
      st.slot = free_slots.back();
      free_slots.pop_back();
      st.cancel = std::make_unique<std::atomic<bool>>(false);
      const unsigned slot = st.slot;
      if (start_attempt(engine, st)) {
        inflight.emplace(st.index, std::move(st));
      } else {
        free_slots.push_back(slot);
      }
    }
  }

  /// Starts the job's next attempt on this shard: pre-run fault hook,
  /// deadline arm, trace acquisition, lane admission. Pre-run failures
  /// are classified; transient ones with budget left go back on the
  /// shared retry queue (no shard ever sleeps out a backoff), terminal
  /// ones seal the job. Returns true when the lane was admitted.
  bool start_attempt(LaneEngine& engine, InFlight& st) {
    const Job& job = jobs_[st.index];
    const std::uint32_t attempt = ++st.oc.attempts;
    st.cancel->store(false, std::memory_order_relaxed);
    const SweepFault* fault =
        opt_.faults != nullptr ? opt_.faults->find(st.index, attempt) : nullptr;
    try {
      if (supervisor_ && opt_.job_deadline.count() > 0) {
        supervisor_->arm(st.slot, st.cancel.get(),
                         Clock::now() + opt_.job_deadline);
      }
      if (fault != nullptr) {
        switch (fault->kind) {
          case SweepFault::Kind::kThrowTransient:
            throw TransientFault("injected transient fault (job " +
                                 std::to_string(st.index) + ", attempt " +
                                 std::to_string(attempt) + ")");
          case SweepFault::Kind::kThrowDeterministic:
            throw std::logic_error("injected deterministic fault (job " +
                                   std::to_string(st.index) + ", attempt " +
                                   std::to_string(attempt) + ")");
          case SweepFault::Kind::kDelay:
            std::this_thread::sleep_for(fault->delay);
            break;
          case SweepFault::Kind::kSpuriousWake:
            if (supervisor_) supervisor_->spurious_wake();
            break;
          case SweepFault::Kind::kShortRead:
          case SweepFault::Kind::kBitFlipBlock:
            // Armed on the trace path; the traces_.get below consumes
            // it and surfaces the damage as TraceCorruptError.
            arm_io_fault(job, *fault);
            break;
          case SweepFault::Kind::kCrash:
          case SweepFault::Kind::kOom:
          case SweepFault::Kind::kSpin:
          case SweepFault::Kind::kTornFrame:
          case SweepFault::Kind::kEnospcOnImport:
          case SweepFault::Kind::kTornImport:
            // Unreachable: run_sweep rejects isolation-only and
            // import-only kinds before any executor starts.
            break;
        }
      }
      st.trace = traces_.get(job);
      SimConfig cfg = job.config;
      cfg.core.should_abort = st.cancel.get();
      engine.add(st.index, make_lane(cfg, st.trace->view()));
      return true;
    } catch (const trace::TraceCorruptError& e) {
      if (supervisor_) supervisor_->disarm(st.slot);
      fill_damage(st.oc, e);
      finalize(st, std::current_exception(), nullptr);
      return false;
    } catch (...) {
      if (supervisor_) supervisor_->disarm(st.slot);
      const std::exception_ptr error = std::current_exception();
      const FailureClass cls = classify_failure(error);
      if (cls == FailureClass::kTransient &&
          attempt < opt_.retry.max_attempts) {
        requeue(st);
        return false;
      }
      st.oc.status = JobStatus::kFailed;
      st.oc.failure = cls;
      st.oc.what = what_of(error);
      finalize(st, error, nullptr);
      return false;
    }
  }

  /// Handles a lane that retired by throwing: a cooperative abort is a
  /// deadline expiry (terminal), a transient failure with attempts left
  /// goes back on the shared retry queue, anything else is Failed.
  void retry_or_finalize(InFlight& st, const std::exception_ptr& error) {
    try {
      std::rethrow_exception(error);
    } catch (const core::SimulationAborted& e) {
      st.oc.status = JobStatus::kTimedOut;
      st.oc.what = e.what();
      finalize(st, error, nullptr);
      return;
    } catch (const trace::TraceCorruptError& e) {
      fill_damage(st.oc, e);
      finalize(st, error, nullptr);
      return;
    } catch (...) {
    }
    const FailureClass cls = classify_failure(error);
    if (cls == FailureClass::kTransient &&
        st.oc.attempts < opt_.retry.max_attempts) {
      st.trace.reset();  // dropped across the backoff; re-acquired on retry
      requeue(st);
      return;
    }
    st.oc.status = JobStatus::kFailed;
    st.oc.failure = cls;
    st.oc.what = what_of(error);
    finalize(st, error, nullptr);
  }

  /// Queues the job's next attempt after backoff. Any shard may pick it
  /// up; idle shards are woken so the earliest-due wait re-anchors.
  void requeue(InFlight& st) {
    PendingRetry r;
    r.index = st.index;
    r.oc = st.oc;
    r.t0 = st.t0;
    r.due = Clock::now() + opt_.retry.backoff_for(st.oc.attempts + 1);
    {
      std::scoped_lock lock(mu_);
      retries_.push_back(std::move(r));
      --active_jobs_;
    }
    cv_.notify_all();
  }

  /// Seals the job's slot in the report: wall clock, trace release,
  /// journal append (completed only) and the failure tally for drain.
  /// Each index is sealed by exactly one shard, so the report slot
  /// needs no lock; the journal does.
  void finalize(InFlight& st, const std::exception_ptr& error,
                const SimResult* result) {
    st.oc.wall_seconds = seconds_since(st.t0);
    traces_.finished(jobs_[st.index]);
    SweepJobResult& out = rep_.jobs[st.index];
    out.outcome = st.oc;
    out.error = error;
    if (st.oc.status == JobStatus::kCompleted) {
      out.result = *result;
      if (journal_) {
        std::scoped_lock lock(journal_mu_);
        journal_->append_record(
            encode_record(st.index, jobs_[st.index], st.oc, *result));
      }
    } else {
      failures_.fetch_add(1, std::memory_order_relaxed);
      if (st.oc.status == JobStatus::kTraceDamaged && journal_) {
        std::scoped_lock lock(journal_mu_);
        journal_->append_damaged(
            encode_damaged(st.index, jobs_[st.index], st.oc));
      }
    }
    {
      std::scoped_lock lock(mu_);
      --active_jobs_;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool done_locked() const {
    return cursor_ >= todo_.size() && retries_.empty() && active_jobs_ == 0;
  }

  [[nodiscard]] Clock::time_point earliest_due_locked() const {
    Clock::time_point due = Clock::time_point::max();
    for (const PendingRetry& r : retries_) due = std::min(due, r.due);
    return due;
  }

  const std::vector<Job>& jobs_;
  const std::vector<std::size_t>& todo_;
  const SweepOptions& opt_;
  SweepReport& rep_;
  TraceCache& traces_;
  std::optional<DeadlineSupervisor>& supervisor_;
  std::optional<CheckpointWriter>& journal_;
  const unsigned lanes_per_shard_;
  const unsigned shards_;
  const std::uint64_t turn_;

  std::mutex mu_;  ///< guards cursor_, retries_, active_jobs_, panic_
  std::condition_variable cv_;
  std::size_t cursor_ = 0;      ///< next index into todo_
  std::vector<PendingRetry> retries_;
  std::size_t active_jobs_ = 0;  ///< jobs currently owned by a shard
  std::exception_ptr panic_;
  std::mutex journal_mu_;
  std::atomic<std::size_t> failures_{0};
};

/// Process-isolated executor (SweepOptions::isolate_procs): each job
/// runs in a forked child under rlimit jails, supervised by this
/// single-threaded policy loop. The job lifecycle mirrors the other
/// executors — same fault hooks (isolation-only kinds execute inside
/// the child), same transient-retry policy (retries wait non-blocking
/// on a due list so live children keep getting reaped), same drain and
/// journal semantics — plus the outcomes only a process boundary can
/// produce: Crashed (fatal signal, quarantined in the journal with its
/// forensics record), ResourceExceeded (rlimit jail or OOM kill), and
/// hard-kill TimedOut for children that ignore the SIGTERM grace.
/// Deadlines are enforced right here by escalation (SIGTERM → grace →
/// SIGKILL), not by the DeadlineSupervisor thread: the parent stays
/// single-threaded so fork() is safe, and a stuck child needs signals,
/// not a token it will never poll. Completed results round-trip through
/// the hexfloat frame codec and are bit-identical to the pool's.
class IsolateExecutor {
 public:
  IsolateExecutor(const std::vector<Job>& jobs,
                  const std::vector<std::size_t>& todo,
                  const SweepOptions& opt, SweepReport& rep,
                  TraceCache& traces,
                  std::optional<CheckpointWriter>& journal)
      : jobs_(jobs),
        todo_(todo),
        opt_(opt),
        rep_(rep),
        traces_(traces),
        journal_(journal),
        procs_(std::max(1U, opt.isolate_procs)) {}

  void run() {
    for (;;) {
      start_due_retries();
      refill();
      if (inflight_.empty() && retries_.empty() && cursor_ >= todo_.size()) {
        return;
      }
      enforce_deadlines();
      if (auto ev = exec_.poll()) {
        handle(*ev);
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

 private:
  struct InFlight {
    std::size_t index = 0;
    JobOutcome oc;
    /// Keeps the trace mapping alive in the parent while the child
    /// reads the inherited copy; released on reap via finalize().
    std::shared_ptr<const trace::TraceSource> trace;
    Clock::time_point job_t0;                        ///< first attempt start
    Clock::time_point deadline = Clock::time_point::max();
    Clock::time_point kill_at = Clock::time_point::max();
    bool termed = false;
  };

  struct PendingRetry {
    std::size_t index = 0;
    JobOutcome oc;  ///< attempts so far carried across the backoff
    Clock::time_point job_t0;
    Clock::time_point due;
  };

  /// Admits fresh jobs until the process slots are full.
  void refill() {
    while (inflight_.size() < procs_ && cursor_ < todo_.size()) {
      const std::size_t i = todo_[cursor_++];
      if (opt_.max_failures != 0 && failures_ >= opt_.max_failures) {
        SweepJobResult& out = rep_.jobs[i];
        out.outcome.status = JobStatus::kSkipped;
        out.outcome.attempts = 0;
        traces_.finished(jobs_[i]);
        continue;
      }
      InFlight st;
      st.index = i;
      st.job_t0 = Clock::now();
      spawn_attempt(std::move(st));
    }
  }

  void start_due_retries() {
    const Clock::time_point now = Clock::now();
    for (std::size_t k = 0; k < retries_.size();) {
      if (inflight_.size() >= procs_ || retries_[k].due > now) {
        ++k;
        continue;
      }
      PendingRetry r = std::move(retries_[k]);
      retries_.erase(retries_.begin() + static_cast<std::ptrdiff_t>(k));
      InFlight st;
      st.index = r.index;
      st.oc = std::move(r.oc);
      st.job_t0 = r.job_t0;
      spawn_attempt(std::move(st));
    }
  }

  /// Starts the next attempt for `st` (its attempts count is the number
  /// already made). Parent-side failures — trace build, pipe, fork —
  /// are classified like any job failure: transient ones go on the
  /// retry list, terminal ones seal the slot.
  void spawn_attempt(InFlight st) {
    const std::size_t i = st.index;
    const Job& job = jobs_[i];
    const std::uint32_t attempt = ++st.oc.attempts;
    const SweepFault* fault =
        opt_.faults != nullptr ? opt_.faults->find(i, attempt) : nullptr;
    try {
      // I/O faults fire against the parent-side trace open (the parent
      // acquires the trace and the child inherits the mapping), so
      // damage is detected here and never even forks a child.
      if (fault != nullptr && SweepFault::is_io_fault(fault->kind)) {
        arm_io_fault(job, *fault);
        fault = nullptr;  // nothing left for the child to perform
      }
      st.trace = traces_.get(job);
      exec_.spawn(i, job.config, st.trace->view(), fault,
                  ChildLimits{opt_.job_mem_mb, opt_.job_cpu_s});
    } catch (const trace::TraceCorruptError& e) {
      fill_damage(st.oc, e);
      finalize(st, std::current_exception(), nullptr);
      return;
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      if (!retry_later(st, classify_failure(error))) {
        st.oc.status = JobStatus::kFailed;
        st.oc.failure = classify_failure(error);
        st.oc.what = what_of(error);
        finalize(st, error, nullptr);
      }
      return;
    }
    if (opt_.job_deadline.count() > 0) {
      st.deadline = Clock::now() + opt_.job_deadline;
    }
    inflight_.emplace(i, std::move(st));
  }

  /// Queues another attempt after backoff when the failure was
  /// transient and the budget allows; returns false when terminal.
  bool retry_later(InFlight& st, FailureClass cls) {
    if (cls != FailureClass::kTransient ||
        st.oc.attempts >= opt_.retry.max_attempts) {
      return false;
    }
    PendingRetry r;
    r.index = st.index;
    r.oc = st.oc;
    r.job_t0 = st.job_t0;
    r.due = Clock::now() + opt_.retry.backoff_for(st.oc.attempts + 1);
    retries_.push_back(std::move(r));
    return true;
  }

  /// Deadline escalation: SIGTERM at the deadline (the child's handler
  /// flips its cancel token; a cooperative child unwinds into an
  /// "aborted" frame), SIGKILL once the grace expires.
  void enforce_deadlines() {
    const Clock::time_point now = Clock::now();
    for (auto& [key, st] : inflight_) {
      if (!st.termed && now >= st.deadline) {
        st.termed = true;
        st.kill_at = now + opt_.kill_grace;
        exec_.term(key);
      } else if (st.termed && now >= st.kill_at) {
        exec_.kill(key);
      }
    }
  }

  /// Maps a reaped child's fate into the outcome taxonomy.
  void handle(const ProcessExecutor::Event& ev) {
    auto node = inflight_.extract(ev.key);
    InFlight& st = node.mapped();
    using Fate = ProcessExecutor::FateKind;
    st.oc.term_signal = ev.signal;
    switch (ev.fate) {
      case Fate::kResult:
        st.oc.status = JobStatus::kCompleted;
        finalize(st, nullptr, &ev.result);
        return;
      case Fate::kError:
        if (ev.error_class == kErrAborted) {
          // Only the deadline SIGTERM flips the child's token, so an
          // aborted frame is a deadline expiry that unwound cleanly.
          st.oc.status = JobStatus::kTimedOut;
          st.oc.what = ev.what;
          finalize(st,
                   std::make_exception_ptr(core::SimulationAborted(ev.what)),
                   nullptr);
          return;
        }
        if (ev.error_class == kErrResource) {
          st.oc.status = JobStatus::kResourceExceeded;
          st.oc.failure = FailureClass::kDeterministic;
          st.oc.what = ev.what;
          finalize(st, std::make_exception_ptr(std::runtime_error(ev.what)),
                   nullptr);
          return;
        }
        if (ev.error_class == kErrTransient &&
            retry_later(st, FailureClass::kTransient)) {
          traces_release_only(st);
          return;
        }
        st.oc.status = JobStatus::kFailed;
        st.oc.failure = ev.error_class == kErrTransient
                            ? FailureClass::kTransient
                            : FailureClass::kDeterministic;
        st.oc.what = ev.what;
        finalize(st,
                 ev.error_class == kErrTransient
                     ? std::make_exception_ptr(TransientFault(ev.what))
                     : std::make_exception_ptr(std::runtime_error(ev.what)),
                 nullptr);
        return;
      case Fate::kKilled:
        st.oc.status = JobStatus::kTimedOut;
        st.oc.what = ev.what;
        finalize(st, std::make_exception_ptr(std::runtime_error(ev.what)),
                 nullptr);
        return;
      case Fate::kCrashed:
        st.oc.status = JobStatus::kCrashed;
        st.oc.failure = FailureClass::kDeterministic;
        st.oc.what = ev.what;
        st.oc.crash = ev.crash;
        finalize(st, std::make_exception_ptr(std::runtime_error(ev.what)),
                 nullptr);
        return;
      case Fate::kResourceExceeded:
        st.oc.status = JobStatus::kResourceExceeded;
        st.oc.failure = FailureClass::kDeterministic;
        st.oc.what = ev.what;
        finalize(st, std::make_exception_ptr(std::runtime_error(ev.what)),
                 nullptr);
        return;
      case Fate::kBadFrame:
      case Fate::kBadExit:
        st.oc.status = JobStatus::kFailed;
        st.oc.failure = FailureClass::kDeterministic;
        st.oc.what = ev.what;
        finalize(st, std::make_exception_ptr(std::runtime_error(ev.what)),
                 nullptr);
        return;
    }
  }

  /// A retried job drops its trace reference across the backoff (the
  /// cache keeps the source; the next attempt re-acquires it) without
  /// decrementing the cache's pending count — that happens exactly once
  /// per job, in finalize().
  void traces_release_only(InFlight& st) { st.trace.reset(); }

  /// Seals the job's report slot. This is the residency-leak fix for
  /// child-failure paths: the *parent* releases the trace when it reaps
  /// the child, so a job that SIGSEGVs or gets SIGKILLed cannot pin its
  /// mapping for the rest of the sweep. Crashed jobs are quarantined in
  /// the journal so a resume skips the known-poison job.
  void finalize(InFlight& st, const std::exception_ptr& error,
                const SimResult* result) {
    st.oc.wall_seconds = seconds_since(st.job_t0);
    traces_.finished(jobs_[st.index]);
    SweepJobResult& out = rep_.jobs[st.index];
    out.outcome = st.oc;
    out.error = error;
    if (st.oc.status == JobStatus::kCompleted) {
      out.result = *result;
      if (journal_) {
        journal_->append_record(
            encode_record(st.index, jobs_[st.index], st.oc, *result));
      }
    } else {
      ++failures_;
      if (st.oc.status == JobStatus::kCrashed && journal_) {
        journal_->append_quarantine(
            encode_quarantine(st.index, jobs_[st.index], st.oc));
      }
      if (st.oc.status == JobStatus::kTraceDamaged && journal_) {
        journal_->append_damaged(
            encode_damaged(st.index, jobs_[st.index], st.oc));
      }
    }
  }

  const std::vector<Job>& jobs_;
  const std::vector<std::size_t>& todo_;
  const SweepOptions& opt_;
  SweepReport& rep_;
  TraceCache& traces_;
  std::optional<CheckpointWriter>& journal_;
  ProcessExecutor exec_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::vector<PendingRetry> retries_;
  std::size_t procs_;
  std::size_t cursor_ = 0;   ///< next index into todo_
  std::size_t failures_ = 0;
};

}  // namespace

const char* job_status_name(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kTimedOut: return "timed-out";
    case JobStatus::kSkipped: return "skipped";
    case JobStatus::kCrashed: return "crashed";
    case JobStatus::kResourceExceeded: return "resource-exceeded";
    case JobStatus::kTraceDamaged: return "trace-damaged";
  }
  return "?";
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return "SIG" + std::to_string(sig);
  }
}

int sweep_exit_code(const SweepReport& report) noexcept {
  if (report.crashed != 0 || report.resource_exceeded != 0 ||
      report.trace_damaged != 0) {
    return 3;
  }
  return report.all_completed() ? 0 : 2;
}

const char* failure_class_name(FailureClass c) noexcept {
  switch (c) {
    case FailureClass::kNone: return "none";
    case FailureClass::kTransient: return "transient";
    case FailureClass::kDeterministic: return "deterministic";
  }
  return "?";
}

FailureClass classify_failure(const std::exception_ptr& error) {
  if (!error) return FailureClass::kNone;
  try {
    std::rethrow_exception(error);
  } catch (const TransientFault&) {
    return FailureClass::kTransient;
  } catch (const std::bad_alloc&) {
    return FailureClass::kTransient;
  } catch (const trace::TraceCorruptError&) {
    // Guard-verified damage behind an intact header: the bytes on disk
    // don't heal, so a retry replays the identical read. Must precede
    // the TraceFormatError arm (it's the base class).
    return FailureClass::kDeterministic;
  } catch (const trace::TraceFormatError&) {
    return FailureClass::kTransient;
  } catch (...) {
    return FailureClass::kDeterministic;
  }
}

std::uint64_t sweep_fingerprint(const std::vector<Job>& jobs) {
  // Hash every knob that changes what a job computes. Nondeterminism
  // knobs (threads, deadlines, retry policy) are deliberately excluded:
  // they alter how the sweep runs, not what each job's results are.
  std::ostringstream os;
  for (const Job& job : jobs) {
    const SimConfig& c = job.config;
    os << job.program << '\x1f' << job.tag << '\x1f'
       << lsq_choice_name(c.lsq) << '\x1f' << c.instructions << '\x1f'
       << c.seed << '\x1f' << c.trace_path << '\x1f'
       << c.trace_measure_begin << '\x1f' << c.trace_measure_end << '\x1f'
       << c.trace_warmup << '\x1f'
       << c.paper_energy_constants << '\x1f'
       << c.core.exploit_known_line_latency << '\x1f'
       << c.conventional.entries << '\x1f' << c.samie.banks << '\x1f'
       << c.samie.entries_per_bank << '\x1f' << c.samie.slots_per_entry
       << '\x1f' << c.samie.shared_entries << '\x1f'
       << c.samie.addr_buffer_slots << '\x1f' << c.samie.unbounded_shared
       << '\x1f' << c.arb.banks << '\x1f' << c.arb.rows_per_bank << '\x1f'
       << c.arb.max_inflight << '\x1e';
  }
  const std::string s = os.str();
  return trace::fnv1a_64(s.data(), s.size());
}

SweepReport run_sweep(const std::vector<Job>& jobs, const SweepOptions& opt) {
  if (opt.lanes != 0 && opt.isolate_procs != 0) {
    throw std::invalid_argument(
        "lanes and isolate_procs are mutually exclusive executors");
  }
  if (opt.lane_shards != 0 && opt.lanes == 0) {
    throw std::invalid_argument(
        "lane_shards requires the batched-lane executor (lanes)");
  }
  if (opt.lane_turn != 0 && opt.lanes == 0) {
    throw std::invalid_argument(
        "lane_turn requires the batched-lane executor (lanes)");
  }
  if (opt.faults != nullptr) {
    for (const SweepFault& f : opt.faults->faults) {
      if (SweepFault::needs_isolation(f.kind) && opt.isolate_procs == 0) {
        throw std::invalid_argument(
            "fault kind for job " + std::to_string(f.job) +
            " requires process isolation (isolate_procs) — it takes the "
            "whole process down");
      }
      if (f.kind == SweepFault::Kind::kOom && opt.job_mem_mb == 0) {
        throw std::invalid_argument(
            "an oom fault requires a job_mem_mb jail (without RLIMIT_AS the "
            "bomb runs into host memory)");
      }
      if (SweepFault::import_only(f.kind)) {
        throw std::invalid_argument(
            "fault kind for job " + std::to_string(f.job) +
            " is import-only (enospc-on-import / torn-import) — a sweep "
            "replays traces, it never imports one; arm it on samie_sim "
            "--import-trace instead");
      }
      if (SweepFault::is_io_fault(f.kind) && f.job < jobs.size() &&
          jobs[f.job].config.trace_path.empty()) {
        throw std::invalid_argument(
            "I/O fault for job " + std::to_string(f.job) +
            " targets a generated workload — there is no trace file to "
            "fault");
      }
    }
  }
  unsigned threads = opt.threads != 0 ? opt.threads : bench_threads();
  threads = std::max(1U, std::min<unsigned>(
                             threads, static_cast<unsigned>(jobs.size()) + 1));

  SweepReport rep;
  rep.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) rep.jobs[i].job = jobs[i];

  // -- checkpoint: load finished jobs, open the journal --------------------
  std::vector<bool> done(jobs.size(), false);
  std::optional<CheckpointWriter> journal;
  if (!opt.checkpoint_path.empty()) {
    require_journalable(jobs);
    const std::uint64_t fingerprint = sweep_fingerprint(jobs);
    if (opt.resume && std::filesystem::exists(opt.checkpoint_path)) {
      CheckpointContents c = load_checkpoint(opt.checkpoint_path);
      if (c.njobs != jobs.size() || c.fingerprint != fingerprint) {
        throw CheckpointError(
            opt.checkpoint_path +
            ": checkpoint belongs to a different sweep (job list or "
            "configuration changed) — delete it or fix the command line");
      }
      rep.checkpoint_lines_ignored = c.ignored_lines;
      for (const std::string& payload : c.records) {
        DecodedRecord rec;
        if (!decode_record(payload, rec) || rec.index >= jobs.size() ||
            rec.program != jobs[rec.index].program ||
            rec.tag != jobs[rec.index].tag) {
          ++rep.checkpoint_lines_ignored;
          continue;
        }
        SweepJobResult& out = rep.jobs[rec.index];
        out.result = rec.result;
        out.outcome.status = JobStatus::kCompleted;
        out.outcome.attempts = rec.attempts;
        out.outcome.wall_seconds = rec.wall_seconds;
        out.outcome.from_checkpoint = true;
        done[rec.index] = true;
      }
      // Quarantine records: a previous run's child crashed on this job.
      // Deterministic by definition — re-running replays the crash — so
      // the job is sealed as Crashed instead of re-attempted, whichever
      // executor the resume uses.
      for (const std::string& payload : c.quarantined) {
        DecodedQuarantine q;
        if (!decode_quarantine(payload, q) || q.index >= jobs.size() ||
            q.program != jobs[q.index].program ||
            q.tag != jobs[q.index].tag || done[q.index]) {
          ++rep.checkpoint_lines_ignored;
          continue;
        }
        SweepJobResult& out = rep.jobs[q.index];
        out.outcome.status = JobStatus::kCrashed;
        out.outcome.failure = FailureClass::kDeterministic;
        out.outcome.attempts = q.attempts;
        out.outcome.wall_seconds = q.wall_seconds;
        out.outcome.from_checkpoint = true;
        out.outcome.term_signal = q.crash.signal;
        out.outcome.what = "child crashed with " + signal_name(q.crash.signal) +
                           " (quarantined by a previous run)";
        out.outcome.crash = std::move(q.crash);
        done[q.index] = true;
      }
      // Trace-damage records: a previous run verified that this job's
      // replay range touches corrupt blocks. Deterministic — the file
      // doesn't heal — so the job seals as TraceDamaged, not re-run.
      for (const std::string& payload : c.damaged) {
        DecodedDamage d;
        if (!decode_damaged(payload, d) || d.index >= jobs.size() ||
            d.program != jobs[d.index].program ||
            d.tag != jobs[d.index].tag || done[d.index]) {
          ++rep.checkpoint_lines_ignored;
          continue;
        }
        SweepJobResult& out = rep.jobs[d.index];
        out.outcome.status = JobStatus::kTraceDamaged;
        out.outcome.failure = FailureClass::kDeterministic;
        out.outcome.attempts = d.attempts;
        out.outcome.wall_seconds = d.wall_seconds;
        out.outcome.from_checkpoint = true;
        out.outcome.damage = d.damage;
        out.outcome.damage_block = d.block;
        out.outcome.damage_offset = d.offset;
        out.outcome.what =
            std::string("trace damage (") + trace::trace_damage_name(d.damage) +
            ") quarantined by a previous run";
        done[d.index] = true;
      }
      journal = CheckpointWriter::append_to(opt.checkpoint_path);
    } else {
      journal = CheckpointWriter::create(opt.checkpoint_path, jobs.size(),
                                         fingerprint);
    }
  }

  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!done[i]) todo.push_back(i);
  }

  TraceCache traces(jobs, done);
  // Shard count for the lane executor: explicit lane_shards, else the
  // host's bench parallelism, clamped to the runnable job count (a
  // shard with nothing to ever run is pure thread-spawn overhead).
  unsigned lane_shards = 0;
  if (opt.lanes != 0) {
    lane_shards = opt.lane_shards != 0 ? opt.lane_shards : bench_threads();
    lane_shards = std::max(
        1U, std::min<unsigned>(lane_shards,
                               static_cast<unsigned>(std::max<std::size_t>(
                                   1, todo.size()))));
  }
  const bool wants_wake_faults =
      opt.faults != nullptr &&
      std::any_of(opt.faults->faults.begin(), opt.faults->faults.end(),
                  [](const SweepFault& f) {
                    return f.kind == SweepFault::Kind::kSpuriousWake;
                  });
  // Isolate mode enforces deadlines by signal escalation in the parent
  // loop, and the parent must stay single-threaded so fork() is safe —
  // no supervisor thread.
  std::optional<DeadlineSupervisor> supervisor;
  if (opt.isolate_procs == 0 &&
      (opt.job_deadline.count() > 0 || wants_wake_faults)) {
    supervisor.emplace(opt.lanes != 0 ? lane_shards * std::max(1U, opt.lanes)
                                      : threads);
  }

  if (opt.isolate_procs != 0) {
    IsolateExecutor(jobs, todo, opt, rep, traces, journal).run();
    rep.trace_resident_high_water = traces.resident_high_water();
    tally(rep);
    return rep;
  }

  if (opt.lanes != 0) {
    LaneExecutor(jobs, todo, opt, rep, traces, supervisor, journal,
                 lane_shards)
        .run();
    rep.trace_resident_high_water = traces.resident_high_water();
    tally(rep);
    return rep;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  std::mutex journal_mu;

  auto worker = [&](unsigned slot) {
    std::atomic<bool> cancel{false};
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= todo.size()) return;
      const std::size_t i = todo[k];
      const Job& job = jobs[i];
      SweepJobResult& out = rep.jobs[i];

      // Drain semantics: past the failure budget, remaining jobs are
      // reported Skipped — an explicit outcome, never a zero-stat row.
      if (opt.max_failures != 0 &&
          failures.load(std::memory_order_relaxed) >= opt.max_failures) {
        out.outcome.status = JobStatus::kSkipped;
        out.outcome.attempts = 0;
        traces.finished(job);
        continue;
      }

      JobOutcome oc;
      std::exception_ptr error;
      SimResult result;
      const auto job_t0 = Clock::now();
      for (std::uint32_t attempt = 1;; ++attempt) {
        oc.attempts = attempt;
        cancel.store(false, std::memory_order_relaxed);
        const SweepFault* fault =
            opt.faults != nullptr ? opt.faults->find(i, attempt) : nullptr;
        try {
          if (supervisor && opt.job_deadline.count() > 0) {
            supervisor->arm(slot, &cancel, Clock::now() + opt.job_deadline);
          }
          if (fault != nullptr) {
            switch (fault->kind) {
              case SweepFault::Kind::kThrowTransient:
                throw TransientFault("injected transient fault (job " +
                                     std::to_string(i) + ", attempt " +
                                     std::to_string(attempt) + ")");
              case SweepFault::Kind::kThrowDeterministic:
                throw std::logic_error("injected deterministic fault (job " +
                                       std::to_string(i) + ", attempt " +
                                       std::to_string(attempt) + ")");
              case SweepFault::Kind::kDelay:
                std::this_thread::sleep_for(fault->delay);
                break;
              case SweepFault::Kind::kSpuriousWake:
                if (supervisor) supervisor->spurious_wake();
                break;
              case SweepFault::Kind::kShortRead:
              case SweepFault::Kind::kBitFlipBlock:
                arm_io_fault(job, *fault);
                break;
              case SweepFault::Kind::kCrash:
              case SweepFault::Kind::kOom:
              case SweepFault::Kind::kSpin:
              case SweepFault::Kind::kTornFrame:
              case SweepFault::Kind::kEnospcOnImport:
              case SweepFault::Kind::kTornImport:
                // Unreachable: run_sweep rejects isolation-only and
                // import-only kinds before any executor starts.
                break;
            }
          }
          const auto t = traces.get(job);
          SimConfig cfg = job.config;
          cfg.core.should_abort = &cancel;
          result = run_simulation(cfg, t->view());
          if (supervisor) supervisor->disarm(slot);
          oc.status = JobStatus::kCompleted;
          break;
        } catch (const core::SimulationAborted& e) {
          // Only the deadline supervisor sets this job's token, so an
          // abort is by definition a deadline expiry. Terminal: the
          // same job would spend the same wall clock again.
          if (supervisor) supervisor->disarm(slot);
          oc.status = JobStatus::kTimedOut;
          oc.what = e.what();
          error = std::current_exception();
          break;
        } catch (const trace::TraceCorruptError& e) {
          if (supervisor) supervisor->disarm(slot);
          fill_damage(oc, e);
          error = std::current_exception();
          break;
        } catch (...) {
          if (supervisor) supervisor->disarm(slot);
          error = std::current_exception();
          const FailureClass cls = classify_failure(error);
          if (cls == FailureClass::kTransient &&
              attempt < opt.retry.max_attempts) {
            std::this_thread::sleep_for(opt.retry.backoff_for(attempt + 1));
            continue;
          }
          oc.status = JobStatus::kFailed;
          oc.failure = cls;
          oc.what = what_of(error);
          break;
        }
      }
      oc.wall_seconds = seconds_since(job_t0);
      traces.finished(job);

      out.outcome = oc;
      out.error = error;
      if (oc.status == JobStatus::kCompleted) {
        out.result = result;
        if (journal) {
          std::scoped_lock lock(journal_mu);
          journal->append_record(encode_record(i, job, oc, result));
        }
      } else {
        failures.fetch_add(1, std::memory_order_relaxed);
        if (oc.status == JobStatus::kTraceDamaged && journal) {
          std::scoped_lock lock(journal_mu);
          journal->append_damaged(encode_damaged(i, job, oc));
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned s = 0; s < threads; ++s) pool.emplace_back(worker, s);
  for (auto& th : pool) th.join();

  rep.trace_resident_high_water = traces.resident_high_water();
  tally(rep);
  return rep;
}

void print_failure_report(std::ostream& os, const SweepReport& report) {
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const SweepJobResult& jr = report.jobs[i];
    if (jr.completed()) continue;
    os << "sweep: job=" << i << " program=" << jr.job.program
       << " tag=" << jr.job.tag
       << " outcome=" << job_status_name(jr.outcome.status);
    if (jr.outcome.failure != FailureClass::kNone) {
      os << " class=" << failure_class_name(jr.outcome.failure);
    }
    if (jr.outcome.term_signal != 0) {
      os << " signal=" << signal_name(jr.outcome.term_signal);
    }
    if (jr.outcome.status == JobStatus::kTraceDamaged) {
      os << " damage=" << trace::trace_damage_name(jr.outcome.damage);
      if (jr.outcome.damage_block != trace::TraceCorruptError::kNoBlock) {
        os << " block=" << jr.outcome.damage_block;
      }
      os << " offset=" << jr.outcome.damage_offset;
    }
    os << " attempts=" << jr.outcome.attempts
       << " wall=" << jr.outcome.wall_seconds;
    if (!jr.outcome.what.empty()) os << " error=" << jr.outcome.what;
    // Last field: frames contain spaces, so nothing may follow it.
    if (jr.outcome.crash.present()) {
      const CrashRecord& c = jr.outcome.crash;
      char addr[24];
      std::snprintf(addr, sizeof addr, "0x%" PRIx64, c.fault_addr);
      os << " crash_record=signal:" << signal_name(c.signal)
         << ";addr:" << addr << ";frames:";
      for (std::size_t f = 0; f < c.frames.size(); ++f) {
        if (f != 0) os << '|';
        os << c.frames[f];
      }
    }
    os << "\n";
  }
  os << "sweep: " << report.completed << "/" << report.jobs.size()
     << " completed, " << report.failed << " failed, " << report.timed_out
     << " timed-out, " << report.skipped << " skipped";
  if (report.crashed != 0) os << ", " << report.crashed << " crashed";
  if (report.resource_exceeded != 0) {
    os << ", " << report.resource_exceeded << " resource-exceeded";
  }
  if (report.trace_damaged != 0) {
    os << ", " << report.trace_damaged << " trace-damaged";
  }
  if (report.resumed != 0) {
    os << " (" << report.resumed << " resumed from checkpoint)";
  }
  if (report.quarantined != 0) {
    os << " (" << report.quarantined << " quarantined)";
  }
  if (report.damage_sealed != 0) {
    os << " (" << report.damage_sealed << " damage-sealed)";
  }
  if (report.checkpoint_lines_ignored != 0) {
    os << " [" << report.checkpoint_lines_ignored
       << " torn checkpoint line(s) ignored]";
  }
  os << "\n";
}

}  // namespace samie::sim
