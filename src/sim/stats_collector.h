// Per-cycle occupancy-statistics collector, shared by the two machine
// drivers (run_simulation's single lane and the LaneEngine's many).
//
// Integrates occupancy-dependent statistics once per cycle: the paper's
// active-area policy (Section 4.2) and the Figure 3/4 occupancy series.
//
// Core is templated over this concrete type, so on_cycle is a direct,
// inlinable call — no virtual dispatch in the cycle loop. The per-cycle
// work itself is batched: occupancy changes much slower than cycles, so
// identical consecutive samples are run-length collected and the area /
// occupancy math runs once per distinct sample at flush time. The
// flush replays the accumulator updates once per covered cycle in the
// original order, so every statistic stays bit-identical to the
// unbatched per-cycle version.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/stats.h"
#include "src/energy/ledger.h"
#include "src/energy/lsq_model.h"
#include "src/lsq/lsq_interface.h"
#include "src/sim/simulator.h"

namespace samie::sim {

class StatsCollector final {
 public:
  /// Keeps a reference to `cfg`: the owner (LaneImpl) must outlive it.
  StatsCollector(const SimConfig& cfg, const energy::LsqEnergyConstants& k)
      : cfg_(cfg),
        conv_entry_area_(energy::conv_entry_area_um2(k)),
        samie_fixed_area_(energy::samie_entry_fixed_area_um2(k)),
        samie_slot_area_(energy::samie_slot_area_um2(k)),
        addrbuf_slot_area_(energy::addrbuf_slot_area_um2(k)) {}

  void on_cycle(Cycle /*cycle*/, const lsq::OccupancySample& occ) {
    if (run_len_ != 0 && occ == run_sample_) {
      ++run_len_;
      return;
    }
    flush_run();
    run_sample_ = occ;
    run_len_ = 1;
  }

  /// Batched hook for the engine's quiescent-cycle fast-forward: `count`
  /// cycles sharing one occupancy sample extend the run-length directly.
  /// Identical by construction to `count` on_cycle calls — the flush
  /// still replays the accumulator updates once per covered cycle.
  void on_cycles(Cycle /*first*/, std::uint64_t count,
                 const lsq::OccupancySample& occ) {
    if (count == 0) return;
    if (run_len_ != 0 && occ == run_sample_) {
      run_len_ += count;
      return;
    }
    flush_run();
    run_sample_ = occ;
    run_len_ = count;
  }

  void fold_into(SimResult& r) {
    flush_run();
    r.area_total = cfg_.lsq == LsqChoice::kSamie ? area_.samie_total()
                                                 : area_.conventional();
    r.area_distrib = area_.distrib();
    r.area_shared = area_.shared();
    r.area_addrbuf = area_.addrbuf();
    r.shared_occupancy_mean = shared_occ_.mean();
    r.shared_occupancy_max = shared_max_;
    r.buffer_occupancy_mean = buffer_occ_.mean();
    r.buffer_nonempty_frac =
        cycles_ == 0 ? 0.0
                     : static_cast<double>(buffer_nonempty_) /
                           static_cast<double>(cycles_);
  }

 private:
  /// Applies the pending run: the occ-derived terms are computed once,
  /// then the accumulators advance one step per covered cycle (the exact
  /// FP operation sequence of the per-cycle version — Welford means and
  /// the area integrals round per cycle, so a single fused multiply
  /// would drift the low bits).
  void flush_run() {
    if (run_len_ == 0) return;
    const lsq::OccupancySample& occ = run_sample_;
    cycles_ += run_len_;
    if (cfg_.lsq == LsqChoice::kSamie) {
      // DistribLSQ: in-use entries plus one spare entry per non-full bank;
      // in-use slots plus one spare slot per active entry.
      const double spare_entries =
          static_cast<double>(cfg_.samie.banks - occ.distrib_banks_full);
      const double entries_active =
          static_cast<double>(occ.distrib_entries_used) + spare_entries;
      const double slots_active =
          static_cast<double>(occ.distrib_slots_used) +
          static_cast<double>(occ.distrib_entries_used -
                              occ.distrib_entries_full) +
          spare_entries;
      const double distrib =
          entries_active * samie_fixed_area_ + slots_active * samie_slot_area_;
      const double shared = shared_area(occ);
      const double addrbuf =
          addrbuf_slot_area_ *
          static_cast<double>(
              std::min(occ.buffer_used + 4, cfg_.samie.addr_buffer_slots));
      const double shared_used = static_cast<double>(occ.shared_entries_used);
      const double buffer_used = static_cast<double>(occ.buffer_used);
      for (std::uint64_t i = 0; i < run_len_; ++i) {
        area_.add_cycle(distrib, shared, addrbuf);
        shared_occ_.add(shared_used);
        buffer_occ_.add(buffer_used);
      }
      shared_max_ =
          std::max<std::uint64_t>(shared_max_, occ.shared_entries_used);
      if (occ.buffer_used > 0) buffer_nonempty_ += run_len_;
    } else {
      // Conventional policy: in-use entries plus four spare entries.
      const double active =
          static_cast<double>(
              std::min(occ.entries_used + 4, cfg_.conventional.entries)) *
          conv_entry_area_;
      for (std::uint64_t i = 0; i < run_len_; ++i) {
        area_.add_cycle_conventional(active);
      }
    }
    run_len_ = 0;
  }

  [[nodiscard]] double shared_area(const lsq::OccupancySample& occ) const {
    const std::uint32_t capacity = cfg_.samie.unbounded_shared
                                       ? occ.shared_entries_used + 1
                                       : cfg_.samie.shared_entries;
    const double spare = occ.shared_entries_used < capacity ? 1.0 : 0.0;
    const double entries_active =
        static_cast<double>(occ.shared_entries_used) + spare;
    const double slots_active =
        static_cast<double>(occ.shared_slots_used) +
        static_cast<double>(occ.shared_entries_used - occ.shared_entries_full) +
        spare;
    return entries_active * samie_fixed_area_ + slots_active * samie_slot_area_;
  }

  const SimConfig& cfg_;
  double conv_entry_area_;
  double samie_fixed_area_;
  double samie_slot_area_;
  double addrbuf_slot_area_;
  energy::AreaIntegrator area_;
  RunningStat shared_occ_;
  RunningStat buffer_occ_;
  std::uint64_t shared_max_ = 0;
  std::uint64_t buffer_nonempty_ = 0;
  std::uint64_t cycles_ = 0;
  lsq::OccupancySample run_sample_;
  std::uint64_t run_len_ = 0;
};

}  // namespace samie::sim
