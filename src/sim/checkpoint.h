// Crash-safe sweep checkpoints: an append-only, line-oriented journal
// with per-record FNV-1a guards, created via write-temp + atomic rename.
//
// A checkpoint file is plain text:
//
//   # samie-sweep-checkpoint v1
//   H <fnv64> <njobs> <fingerprint>
//   R <fnv64> <payload>
//   Q <fnv64> <payload>
//   ...
//
// (fields are TAB-separated; <fnv64> is the FNV-1a 64 hash, in hex, of
// everything after it on the line). The header binds the journal to one
// sweep: `njobs` and a caller-computed `fingerprint` of the job list
// must match on resume, so a checkpoint can never silently graft results
// from a different sweep. Records are appended — flushed and fsync'd —
// one per completed job, so a crash or OOM kill loses at most the job
// that was in flight; a torn final line fails its FNV guard and is
// ignored on load. 'R' lines are results; 'Q' lines are quarantine
// records (the process-isolated executor journals jobs that crashed a
// child, so a resume never re-runs a known-poison job); 'D' lines are
// trace-damage records (jobs whose replay range touched corrupt trace
// blocks — deterministic, so a resume seals rather than retries them).
// Payload contents
// are the caller's (the sweep scheduler journals job outcomes, the perf
// harness journals program measurements); this module only guarantees
// integrity and atomicity.
//
// Durability covers the *directory entry* too: creation fsyncs the
// journal's parent directory after the atomic tmp+rename (a machine
// crash cannot forget the rename), and the writer fsyncs it again when
// it closes.
//
// Format details and invariants: docs/SWEEP_ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace samie::sim {

/// Any malformed or mismatched checkpoint file: missing magic, torn
/// header, njobs/fingerprint mismatch surfaced by callers.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends guarded records to a checkpoint journal. Each append is
/// flushed and fsync'd before returning: once `append_record` returns,
/// the record survives a process kill.
class CheckpointWriter {
 public:
  /// Starts a fresh journal: magic + header are written to `path.tmp`,
  /// fsync'd, and renamed over `path` (atomic on POSIX), so a crash
  /// during creation can never leave a half-written header behind.
  [[nodiscard]] static CheckpointWriter create(const std::string& path,
                                               std::uint64_t njobs,
                                               std::uint64_t fingerprint);
  /// Reopens an existing journal for appending (resume). The caller is
  /// expected to have validated it with load_checkpoint first.
  [[nodiscard]] static CheckpointWriter append_to(const std::string& path);

  CheckpointWriter(CheckpointWriter&& other) noexcept;
  CheckpointWriter& operator=(CheckpointWriter&& other) noexcept;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  ~CheckpointWriter();

  /// Appends one guarded record line. `payload` must not contain '\n'.
  /// Throws CheckpointError on I/O failure.
  void append_record(const std::string& payload);

  /// Appends one guarded quarantine line (a job whose child process
  /// crashed: resume must skip it, not re-run it).
  void append_quarantine(const std::string& payload);

  /// Appends one guarded trace-damage line (a job whose replay range
  /// touched corrupt trace blocks: deterministic, resume must not
  /// re-run it). Old readers count 'D' lines as ignored_lines and keep
  /// working — the journal stays backward readable.
  void append_damaged(const std::string& payload);

  /// Flushes, fsyncs the file and its parent directory, and closes.
  /// Idempotent; the destructor calls it best-effort (errors swallowed).
  void close() noexcept;

 private:
  explicit CheckpointWriter(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  void append_line(char type, const std::string& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
};

struct CheckpointContents {
  std::uint64_t njobs = 0;
  std::uint64_t fingerprint = 0;
  /// Validated record payloads, in journal (completion) order.
  std::vector<std::string> records;
  /// Validated quarantine payloads ('Q' lines), in journal order.
  std::vector<std::string> quarantined;
  /// Validated trace-damage payloads ('D' lines), in journal order.
  std::vector<std::string> damaged;
  /// Lines whose FNV guard failed (a torn tail after a kill) — ignored,
  /// but counted so tools can report that the journal was truncated.
  std::size_t ignored_lines = 0;
};

/// Loads and validates a journal. Throws CheckpointError when the file
/// cannot be opened or its magic/header is missing or corrupt; torn
/// record lines are skipped and counted, never fatal.
[[nodiscard]] CheckpointContents load_checkpoint(const std::string& path);

// -- SimResult round-trip ----------------------------------------------------
// Bit-exact text serialization shared by the sweep scheduler and the
// perf harness: integers in decimal, doubles as C99 hexfloats ("%a"),
// space-separated in a fixed field order. A resumed sweep reconstructs
// the exact SimResult bits, so its CSV/JSON output is byte-identical to
// an uninterrupted run's.

/// Space-separated field list (kSimResultFields tokens).
[[nodiscard]] std::string serialize_sim_result(const SimResult& r);

/// Parses serialize_sim_result output. Returns false on wrong field
/// count or an unparseable token (caller treats the record as torn).
[[nodiscard]] bool parse_sim_result(const std::string& text, SimResult& out);

/// Number of tokens serialize_sim_result emits; bumped in lockstep with
/// SimResult so a stale checkpoint from an older build parses as torn
/// instead of silently misassigning fields (38 legacy fields plus the
/// 28 raw ledger counts sharded replay reconciles from).
inline constexpr std::size_t kSimResultFields = 66;

}  // namespace samie::sim
