#include "src/sim/lane_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/branch/predictor.h"
#include "src/core/core.h"
#include "src/energy/ledger.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/sim/stats_collector.h"

namespace samie::sim {

namespace {

// Each LSQ kind bundles its queue with the ledger it reports to (if
// any) and the per-kind energy fold into SimResult. The bundle is what
// varies across run_simulation's switch; everything else about a lane
// is uniform.

struct ConvBundle {
  using Queue = lsq::ConventionalLsq;
  energy::ConvLsqLedger ledger;
  Queue queue;
  ConvBundle(const SimConfig& cfg, const energy::LsqEnergyConstants& k)
      : ledger(k), queue(cfg.conventional, &ledger) {}
  Queue& get() { return queue; }
  void fold(SimResult& r) const { r.lsq_energy_nj = ledger.energy_pj() / 1e3; }
};

struct UnboundedBundle {
  using Queue = lsq::LoadStoreQueue;
  std::unique_ptr<Queue> queue;
  UnboundedBundle(const SimConfig& cfg, const energy::LsqEnergyConstants&)
      : queue(lsq::make_unbounded_lsq(cfg.core.rob_size)) {}
  Queue& get() { return *queue; }
  void fold(SimResult&) const {}
};

struct ArbBundle {
  using Queue = lsq::ArbLsq;
  Queue queue;
  ArbBundle(const SimConfig& cfg, const energy::LsqEnergyConstants&)
      : queue(cfg.arb) {}
  Queue& get() { return queue; }
  void fold(SimResult&) const {}
};

struct SamieBundle {
  using Queue = lsq::SamieLsq;
  energy::SamieLsqLedger ledger;
  Queue queue;
  SamieBundle(const SimConfig& cfg, const energy::LsqEnergyConstants& k)
      : ledger(k), queue(cfg.samie, &ledger) {}
  Queue& get() { return queue; }
  void fold(SimResult& r) const {
    r.lsq_energy_nj = ledger.energy_pj() / 1e3;
    r.lsq_distrib_nj = ledger.distrib_pj() / 1e3;
    r.lsq_shared_nj = ledger.shared_pj() / 1e3;
    r.lsq_addrbuf_nj = ledger.addrbuf_pj() / 1e3;
    r.lsq_bus_nj = ledger.bus_pj() / 1e3;
  }
};

/// The concrete machine: Core<Queue, StatsCollector> stays statically
/// dispatched — the virtual boundary is only the per-turn step() call.
template <typename Bundle>
class LaneImpl final : public Lane {
 public:
  LaneImpl(const SimConfig& cfg, trace::TraceView trace)
      : cfg_(cfg),
        constants_(cfg_.paper_energy_constants
                       ? energy::paper_constants()
                       : energy::derived_constants(energy::tech_100nm())),
        dcache_ledger_(constants_),
        dtlb_ledger_(constants_),
        bundle_(cfg_, constants_),
        memory_(cfg_.memory),
        collector_(cfg_, constants_),
        core_(cfg_.core, trace, bundle_.get(), memory_, predictor_, btb_,
              &dcache_ledger_, &dtlb_ledger_, &collector_) {
    core_.begin(cfg_.instructions);
  }

  bool step(std::uint64_t max_cycles) override {
    return core_.step(max_cycles);
  }

  [[nodiscard]] std::uint64_t next_wake_cycle() const override {
    return core_.next_wake_cycle();
  }

  [[nodiscard]] SimResult finish() override {
    SimResult r;
    r.core = core_.finish();
    collector_.fold_into(r);
    r.dcache_energy_nj = dcache_ledger_.energy_pj() / 1e3;
    r.dtlb_energy_nj = dtlb_ledger_.energy_pj() / 1e3;
    r.l1d_hits = memory_.l1d().hits();
    r.l1d_misses = memory_.l1d().misses();
    r.dtlb_hits = memory_.dtlb().hits();
    r.dtlb_misses = memory_.dtlb().misses();
    r.branch_mispredicts = predictor_.mispredicts();
    r.branch_lookups = predictor_.lookups();
    bundle_.fold(r);
    return r;
  }

 private:
  // Declaration order is construction order; collector_ and core_
  // hold references into the members above them.
  SimConfig cfg_;
  energy::LsqEnergyConstants constants_;
  energy::DcacheLedger dcache_ledger_;
  energy::DtlbLedger dtlb_ledger_;
  Bundle bundle_;
  mem::MemoryHierarchy memory_;
  branch::HybridPredictor predictor_;
  branch::Btb btb_;
  StatsCollector collector_;
  core::Core<typename Bundle::Queue, StatsCollector> core_;
};

}  // namespace

std::unique_ptr<Lane> make_lane(const SimConfig& cfg,
                                trace::TraceView trace) {
  switch (cfg.lsq) {
    case LsqChoice::kConventional:
      return std::make_unique<LaneImpl<ConvBundle>>(cfg, trace);
    case LsqChoice::kUnbounded:
      return std::make_unique<LaneImpl<UnboundedBundle>>(cfg, trace);
    case LsqChoice::kArb:
      return std::make_unique<LaneImpl<ArbBundle>>(cfg, trace);
    case LsqChoice::kSamie:
      return std::make_unique<LaneImpl<SamieBundle>>(cfg, trace);
  }
  throw std::logic_error("make_lane: unknown LsqChoice");
}

LaneEngine::LaneEngine(std::uint64_t cycles_per_turn)
    : cycles_per_turn_(cycles_per_turn) {
  if (cycles_per_turn == 0) {
    throw std::invalid_argument("LaneEngine: cycles_per_turn must be >= 1");
  }
}

void LaneEngine::add(std::uint64_t key, std::unique_ptr<Lane> lane) {
  const std::uint64_t wake = lane->next_wake_cycle();
  heap_.push_back(Slot{key, std::move(lane), wake, admitted_++});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

std::optional<LaneEngine::Event> LaneEngine::run_until_event() {
  while (!heap_.empty()) {
    // Pop the lane whose next event is soonest on its own clock. Fresh
    // lanes enter at wake 0, so admission order is the first pass's
    // order, exactly as the old round-robin stepped them.
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Slot& slot = heap_.back();
    Event ev;
    ev.key = slot.key;
    try {
      if (slot.lane->step(cycles_per_turn_)) {
        slot.wake = slot.lane->next_wake_cycle();
        std::push_heap(heap_.begin(), heap_.end(), later);
        continue;
      }
      ev.ok = true;
      ev.result = slot.lane->finish();
    } catch (...) {
      ev.ok = false;
      ev.error = std::current_exception();
    }
    heap_.pop_back();
    return ev;
  }
  return std::nullopt;
}

}  // namespace samie::sim
