#include "src/sim/lane_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/branch/predictor.h"
#include "src/core/core.h"
#include "src/energy/ledger.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/sim/stats_collector.h"
#include "src/sim/trace_shard.h"

namespace samie::sim {

namespace {

// Each LSQ kind bundles its queue with the ledger it reports to (if
// any) and the per-kind energy fold into SimResult. The bundle is what
// varies across run_simulation's switch; everything else about a lane
// is uniform.

struct ConvBundle {
  using Queue = lsq::ConventionalLsq;
  energy::ConvLsqLedger ledger;
  Queue queue;
  ConvBundle(const SimConfig& cfg, const energy::LsqEnergyConstants& k)
      : ledger(k), queue(cfg.conventional, &ledger) {}
  Queue& get() { return queue; }
  void fold(SimResult& r) const { r.lsq_energy_nj = ledger.energy_pj() / 1e3; }
  void save_counts(LedgerCounts& c) const {
    ledger.save(c.v + LedgerCounts::kConv);
  }
};

struct UnboundedBundle {
  using Queue = lsq::LoadStoreQueue;
  std::unique_ptr<Queue> queue;
  UnboundedBundle(const SimConfig& cfg, const energy::LsqEnergyConstants&)
      : queue(lsq::make_unbounded_lsq(cfg.core.rob_size)) {}
  Queue& get() { return *queue; }
  void fold(SimResult&) const {}
  void save_counts(LedgerCounts&) const {}
};

struct ArbBundle {
  using Queue = lsq::ArbLsq;
  Queue queue;
  ArbBundle(const SimConfig& cfg, const energy::LsqEnergyConstants&)
      : queue(cfg.arb) {}
  Queue& get() { return queue; }
  void fold(SimResult&) const {}
  void save_counts(LedgerCounts&) const {}
};

struct SamieBundle {
  using Queue = lsq::SamieLsq;
  energy::SamieLsqLedger ledger;
  Queue queue;
  SamieBundle(const SimConfig& cfg, const energy::LsqEnergyConstants& k)
      : ledger(k), queue(cfg.samie, &ledger) {}
  Queue& get() { return queue; }
  void fold(SimResult& r) const {
    r.lsq_energy_nj = ledger.energy_pj() / 1e3;
    r.lsq_distrib_nj = ledger.distrib_pj() / 1e3;
    r.lsq_shared_nj = ledger.shared_pj() / 1e3;
    r.lsq_addrbuf_nj = ledger.addrbuf_pj() / 1e3;
    r.lsq_bus_nj = ledger.bus_pj() / 1e3;
  }
  void save_counts(LedgerCounts& c) const {
    ledger.save(c.v + LedgerCounts::kSamie);
  }
};

/// The concrete machine: Core<Queue, StatsCollector> stays statically
/// dispatched — the virtual boundary is only the per-turn step() call.
template <typename Bundle>
class LaneImpl final : public Lane {
 public:
  LaneImpl(const SimConfig& cfg, trace::TraceView trace)
      : cfg_(cfg),
        constants_(cfg_.paper_energy_constants
                       ? energy::paper_constants()
                       : energy::derived_constants(energy::tech_100nm())),
        dcache_ledger_(constants_),
        dtlb_ledger_(constants_),
        bundle_(cfg_, constants_),
        memory_(cfg_.memory),
        collector_(cfg_, constants_),
        core_(cfg_.core, trace, bundle_.get(), memory_, predictor_, btb_,
              &dcache_ledger_, &dtlb_ledger_, &collector_) {
    core_.begin(cfg_.instructions);
  }

  bool step(std::uint64_t max_cycles) override {
    return core_.step(max_cycles);
  }

  [[nodiscard]] std::uint64_t next_wake_cycle() const override {
    return core_.next_wake_cycle();
  }

  [[nodiscard]] SimResult finish() override {
    SimResult r;
    r.core = core_.finish();
    collector_.fold_into(r);
    r.dcache_energy_nj = dcache_ledger_.energy_pj() / 1e3;
    r.dtlb_energy_nj = dtlb_ledger_.energy_pj() / 1e3;
    r.l1d_hits = memory_.l1d().hits();
    r.l1d_misses = memory_.l1d().misses();
    r.dtlb_hits = memory_.dtlb().hits();
    r.dtlb_misses = memory_.dtlb().misses();
    r.branch_mispredicts = predictor_.mispredicts();
    r.branch_lookups = predictor_.lookups();
    bundle_.fold(r);
    dcache_ledger_.save(r.ledgers.v + LedgerCounts::kDcache);
    dtlb_ledger_.save(r.ledgers.v + LedgerCounts::kDtlb);
    bundle_.save_counts(r.ledgers);
    return r;
  }

 private:
  // Declaration order is construction order; collector_ and core_
  // hold references into the members above them.
  SimConfig cfg_;
  energy::LsqEnergyConstants constants_;
  energy::DcacheLedger dcache_ledger_;
  energy::DtlbLedger dtlb_ledger_;
  Bundle bundle_;
  mem::MemoryHierarchy memory_;
  branch::HybridPredictor predictor_;
  branch::Btb btb_;
  StatsCollector collector_;
  core::Core<typename Bundle::Queue, StatsCollector> core_;
};

/// Warm-up-excluding lane for one shard of a sharded trace replay: two
/// complete runs of the same machine over the same view, stepped
/// sequentially — first the warm-up prefix alone (the "base" run), then
/// prefix plus measured range (the "whole" run) — and finish() reports
/// whole minus base (trace_shard.h). Two complete runs, rather than one
/// run with a stats reset, keep the subtraction exact: under full
/// warm-up, shard i's base run is bit-identical to shard i-1's whole
/// run, so the per-shard differences telescope to the unsharded totals.
class ShardLane final : public Lane {
 public:
  ShardLane(const SimConfig& cfg, trace::TraceView trace) : cfg_(cfg) {
    const std::uint64_t total =
        std::min<std::uint64_t>(cfg_.instructions, trace.size());
    const std::uint64_t warm =
        std::min<std::uint64_t>(effective_trace_warmup(cfg_), total);
    // Sub-lanes replay plain prefixes: shard fields zeroed so make_lane
    // builds ordinary LaneImpls (no recursion) and the runs are
    // bit-identical to standalone runs over the same records.
    SimConfig sub = cfg_;
    sub.trace_measure_begin = 0;
    sub.trace_measure_end = 0;
    sub.trace_warmup = 0;
    sub.instructions = warm;
    base_ = make_lane(sub, trace.subview(0, warm));
    sub.instructions = total;
    whole_cfg_ = sub;
    whole_view_ = trace.subview(0, total);
  }

  bool step(std::uint64_t max_cycles) override {
    if (base_) {
      if (base_->step(max_cycles)) return true;
      base_result_ = base_->finish();
      base_.reset();
      whole_ = make_lane(whole_cfg_, whole_view_);
      return true;  // boundary turn: the whole run starts next step
    }
    return whole_->step(max_cycles);
  }

  [[nodiscard]] std::uint64_t next_wake_cycle() const override {
    return base_ ? base_->next_wake_cycle()
                 : (whole_ ? whole_->next_wake_cycle() : 0);
  }

  [[nodiscard]] SimResult finish() override {
    return subtract_measured(whole_->finish(), base_result_, cfg_);
  }

 private:
  SimConfig cfg_;
  std::unique_ptr<Lane> base_;
  std::unique_ptr<Lane> whole_;
  SimResult base_result_;
  SimConfig whole_cfg_;
  trace::TraceView whole_view_;
};

}  // namespace

std::unique_ptr<Lane> make_lane(const SimConfig& cfg,
                                trace::TraceView trace) {
  if (effective_trace_warmup(cfg) > 0) {
    return std::make_unique<ShardLane>(cfg, trace);
  }
  switch (cfg.lsq) {
    case LsqChoice::kConventional:
      return std::make_unique<LaneImpl<ConvBundle>>(cfg, trace);
    case LsqChoice::kUnbounded:
      return std::make_unique<LaneImpl<UnboundedBundle>>(cfg, trace);
    case LsqChoice::kArb:
      return std::make_unique<LaneImpl<ArbBundle>>(cfg, trace);
    case LsqChoice::kSamie:
      return std::make_unique<LaneImpl<SamieBundle>>(cfg, trace);
  }
  throw std::logic_error("make_lane: unknown LsqChoice");
}

LaneEngine::LaneEngine(std::uint64_t cycles_per_turn)
    : cycles_per_turn_(cycles_per_turn) {
  if (cycles_per_turn == 0) {
    throw std::invalid_argument("LaneEngine: cycles_per_turn must be >= 1");
  }
}

void LaneEngine::add(std::uint64_t key, std::unique_ptr<Lane> lane) {
  const std::uint64_t wake = lane->next_wake_cycle();
  heap_.push_back(Slot{key, std::move(lane), wake, admitted_++});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

std::optional<LaneEngine::Event> LaneEngine::run_until_event() {
  while (!heap_.empty()) {
    // Pop the lane whose next event is soonest on its own clock. Fresh
    // lanes enter at wake 0, so admission order is the first pass's
    // order, exactly as the old round-robin stepped them.
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Slot& slot = heap_.back();
    Event ev;
    ev.key = slot.key;
    try {
      if (slot.lane->step(cycles_per_turn_)) {
        slot.wake = slot.lane->next_wake_cycle();
        std::push_heap(heap_.begin(), heap_.end(), later);
        continue;
      }
      ev.ok = true;
      ev.result = slot.lane->finish();
    } catch (...) {
      ev.ok = false;
      ev.error = std::current_exception();
    }
    heap_.pop_back();
    return ev;
  }
  return std::nullopt;
}

}  // namespace samie::sim
