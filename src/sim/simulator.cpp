#include "src/sim/simulator.h"

#include <limits>
#include <stdexcept>

#include "src/sim/lane_engine.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace samie::sim {

SimResult run_simulation(const SimConfig& cfg, trace::TraceView trace) {
  // One lane, stepped to completion in a single turn: the LaneEngine
  // path and this path share the machine construction, the cycle loop
  // and the integer-ledger fold, so lane-mode statistics are
  // bit-identical to single-run statistics by construction.
  const std::unique_ptr<Lane> lane = make_lane(cfg, trace);
  while (lane->step(std::numeric_limits<std::uint64_t>::max())) {
  }
  return lane->finish();
}

SimResult run_program(const SimConfig& cfg, const std::string& program) {
  if (!cfg.trace_path.empty()) return run_trace_file(cfg);
  trace::WorkloadGenerator gen(trace::spec2000_profile(program), cfg.seed);
  const trace::Trace t = gen.generate(cfg.instructions);
  return run_simulation(cfg, t);
}

SimResult run_trace_file(const SimConfig& cfg) {
  if (cfg.trace_path.empty()) {
    throw std::invalid_argument("run_trace_file: cfg.trace_path is empty");
  }
  const bool whole =
      cfg.trace_measure_begin == 0 && cfg.trace_measure_end == 0;
  const trace::TraceSource source =
      whole ? trace::TraceSource::open_samt(cfg.trace_path,
                                            cfg.verify_trace_checksum)
            : trace::TraceSource::open_samt_range(
                  cfg.trace_path,
                  cfg.trace_measure_begin - effective_trace_warmup(cfg),
                  cfg.trace_measure_end != 0 ? cfg.trace_measure_end
                                             : ~std::uint64_t{0},
                  cfg.verify_trace_checksum);
  return run_simulation(cfg, source.view());
}

}  // namespace samie::sim
