#include "src/sim/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "src/branch/predictor.h"
#include "src/core/core.h"
#include "src/energy/ledger.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_source.h"
#include "src/trace/workload.h"

namespace samie::sim {

namespace {

/// Integrates occupancy-dependent statistics once per cycle: the paper's
/// active-area policy (Section 4.2) and the Figure 3/4 occupancy series.
///
/// Core is templated over this concrete type, so on_cycle is a direct,
/// inlinable call — no virtual dispatch in the cycle loop. The per-cycle
/// work itself is batched: occupancy changes much slower than cycles, so
/// identical consecutive samples are run-length collected and the area /
/// occupancy math runs once per distinct sample at flush time. The
/// flush replays the accumulator updates once per covered cycle in the
/// original order, so every statistic stays bit-identical to the
/// unbatched per-cycle version.
class StatsCollector final {
 public:
  StatsCollector(const SimConfig& cfg, const energy::LsqEnergyConstants& k)
      : cfg_(cfg),
        conv_entry_area_(energy::conv_entry_area_um2(k)),
        samie_fixed_area_(energy::samie_entry_fixed_area_um2(k)),
        samie_slot_area_(energy::samie_slot_area_um2(k)),
        addrbuf_slot_area_(energy::addrbuf_slot_area_um2(k)) {}

  void on_cycle(Cycle /*cycle*/, const lsq::OccupancySample& occ) {
    if (run_len_ != 0 && occ == run_sample_) {
      ++run_len_;
      return;
    }
    flush_run();
    run_sample_ = occ;
    run_len_ = 1;
  }

  /// Batched hook for the engine's quiescent-cycle fast-forward: `count`
  /// cycles sharing one occupancy sample extend the run-length directly.
  /// Identical by construction to `count` on_cycle calls — the flush
  /// still replays the accumulator updates once per covered cycle.
  void on_cycles(Cycle /*first*/, std::uint64_t count,
                 const lsq::OccupancySample& occ) {
    if (count == 0) return;
    if (run_len_ != 0 && occ == run_sample_) {
      run_len_ += count;
      return;
    }
    flush_run();
    run_sample_ = occ;
    run_len_ = count;
  }

  void fold_into(SimResult& r) {
    flush_run();
    r.area_total = cfg_.lsq == LsqChoice::kSamie ? area_.samie_total()
                                                 : area_.conventional();
    r.area_distrib = area_.distrib();
    r.area_shared = area_.shared();
    r.area_addrbuf = area_.addrbuf();
    r.shared_occupancy_mean = shared_occ_.mean();
    r.shared_occupancy_max = shared_max_;
    r.buffer_occupancy_mean = buffer_occ_.mean();
    r.buffer_nonempty_frac =
        cycles_ == 0 ? 0.0
                     : static_cast<double>(buffer_nonempty_) /
                           static_cast<double>(cycles_);
  }

 private:
  /// Applies the pending run: the occ-derived terms are computed once,
  /// then the accumulators advance one step per covered cycle (the exact
  /// FP operation sequence of the per-cycle version — Welford means and
  /// the area integrals round per cycle, so a single fused multiply
  /// would drift the low bits).
  void flush_run() {
    if (run_len_ == 0) return;
    const lsq::OccupancySample& occ = run_sample_;
    cycles_ += run_len_;
    if (cfg_.lsq == LsqChoice::kSamie) {
      // DistribLSQ: in-use entries plus one spare entry per non-full bank;
      // in-use slots plus one spare slot per active entry.
      const double spare_entries =
          static_cast<double>(cfg_.samie.banks - occ.distrib_banks_full);
      const double entries_active =
          static_cast<double>(occ.distrib_entries_used) + spare_entries;
      const double slots_active =
          static_cast<double>(occ.distrib_slots_used) +
          static_cast<double>(occ.distrib_entries_used -
                              occ.distrib_entries_full) +
          spare_entries;
      const double distrib =
          entries_active * samie_fixed_area_ + slots_active * samie_slot_area_;
      const double shared = shared_area(occ);
      const double addrbuf =
          addrbuf_slot_area_ *
          static_cast<double>(
              std::min(occ.buffer_used + 4, cfg_.samie.addr_buffer_slots));
      const double shared_used = static_cast<double>(occ.shared_entries_used);
      const double buffer_used = static_cast<double>(occ.buffer_used);
      for (std::uint64_t i = 0; i < run_len_; ++i) {
        area_.add_cycle(distrib, shared, addrbuf);
        shared_occ_.add(shared_used);
        buffer_occ_.add(buffer_used);
      }
      shared_max_ =
          std::max<std::uint64_t>(shared_max_, occ.shared_entries_used);
      if (occ.buffer_used > 0) buffer_nonempty_ += run_len_;
    } else {
      // Conventional policy: in-use entries plus four spare entries.
      const double active =
          static_cast<double>(
              std::min(occ.entries_used + 4, cfg_.conventional.entries)) *
          conv_entry_area_;
      for (std::uint64_t i = 0; i < run_len_; ++i) {
        area_.add_cycle_conventional(active);
      }
    }
    run_len_ = 0;
  }

  [[nodiscard]] double shared_area(const lsq::OccupancySample& occ) const {
    const std::uint32_t capacity = cfg_.samie.unbounded_shared
                                       ? occ.shared_entries_used + 1
                                       : cfg_.samie.shared_entries;
    const double spare = occ.shared_entries_used < capacity ? 1.0 : 0.0;
    const double entries_active =
        static_cast<double>(occ.shared_entries_used) + spare;
    const double slots_active =
        static_cast<double>(occ.shared_slots_used) +
        static_cast<double>(occ.shared_entries_used - occ.shared_entries_full) +
        spare;
    return entries_active * samie_fixed_area_ + slots_active * samie_slot_area_;
  }

  const SimConfig& cfg_;
  double conv_entry_area_;
  double samie_fixed_area_;
  double samie_slot_area_;
  double addrbuf_slot_area_;
  energy::AreaIntegrator area_;
  RunningStat shared_occ_;
  RunningStat buffer_occ_;
  std::uint64_t shared_max_ = 0;
  std::uint64_t buffer_nonempty_ = 0;
  std::uint64_t cycles_ = 0;
  lsq::OccupancySample run_sample_;
  std::uint64_t run_len_ = 0;
};

/// Builds the machine around a *concrete* queue type and runs it. The
/// LSQ types are all `final` and the observer is the concrete
/// StatsCollector, so Core<LsqT, StatsCollector> statically dispatches
/// every LSQ call and the per-cycle observer hook — zero virtual calls
/// in the simulation loop.
template <typename LsqT>
SimResult run_with_queue(const SimConfig& cfg, trace::TraceView trace,
                         LsqT& queue,
                         const energy::LsqEnergyConstants& constants,
                         energy::DcacheLedger& dcache_ledger,
                         energy::DtlbLedger& dtlb_ledger) {
  mem::MemoryHierarchy memory(cfg.memory);
  branch::HybridPredictor predictor;
  branch::Btb btb;
  StatsCollector collector(cfg, constants);

  core::Core<LsqT, StatsCollector> machine(cfg.core, trace, queue, memory,
                                           predictor, btb, &dcache_ledger,
                                           &dtlb_ledger, &collector);

  SimResult r;
  r.core = machine.run(cfg.instructions);
  collector.fold_into(r);

  r.dcache_energy_nj = dcache_ledger.energy_pj() / 1e3;
  r.dtlb_energy_nj = dtlb_ledger.energy_pj() / 1e3;
  r.l1d_hits = memory.l1d().hits();
  r.l1d_misses = memory.l1d().misses();
  r.dtlb_hits = memory.dtlb().hits();
  r.dtlb_misses = memory.dtlb().misses();
  r.branch_mispredicts = predictor.mispredicts();
  r.branch_lookups = predictor.lookups();
  return r;
}

}  // namespace

SimResult run_simulation(const SimConfig& cfg, trace::TraceView trace) {
  const energy::LsqEnergyConstants constants =
      cfg.paper_energy_constants
          ? energy::paper_constants()
          : energy::derived_constants(energy::tech_100nm());

  energy::DcacheLedger dcache_ledger(constants);
  energy::DtlbLedger dtlb_ledger(constants);

  switch (cfg.lsq) {
    case LsqChoice::kConventional: {
      energy::ConvLsqLedger conv_ledger(constants);
      lsq::ConventionalLsq queue(cfg.conventional, &conv_ledger);
      SimResult r = run_with_queue(cfg, trace, queue, constants, dcache_ledger,
                                   dtlb_ledger);
      r.lsq_energy_nj = conv_ledger.energy_pj() / 1e3;
      return r;
    }
    case LsqChoice::kUnbounded: {
      const auto queue = lsq::make_unbounded_lsq(cfg.core.rob_size);
      return run_with_queue(cfg, trace, *queue, constants, dcache_ledger,
                            dtlb_ledger);
    }
    case LsqChoice::kArb: {
      lsq::ArbLsq queue(cfg.arb);
      return run_with_queue(cfg, trace, queue, constants, dcache_ledger,
                            dtlb_ledger);
    }
    case LsqChoice::kSamie: {
      energy::SamieLsqLedger samie_ledger(constants);
      lsq::SamieLsq queue(cfg.samie, &samie_ledger);
      SimResult r = run_with_queue(cfg, trace, queue, constants, dcache_ledger,
                                   dtlb_ledger);
      r.lsq_energy_nj = samie_ledger.energy_pj() / 1e3;
      r.lsq_distrib_nj = samie_ledger.distrib_pj() / 1e3;
      r.lsq_shared_nj = samie_ledger.shared_pj() / 1e3;
      r.lsq_addrbuf_nj = samie_ledger.addrbuf_pj() / 1e3;
      r.lsq_bus_nj = samie_ledger.bus_pj() / 1e3;
      return r;
    }
  }
  throw std::logic_error("run_simulation: unknown LsqChoice");
}

SimResult run_program(const SimConfig& cfg, const std::string& program) {
  if (!cfg.trace_path.empty()) return run_trace_file(cfg);
  trace::WorkloadGenerator gen(trace::spec2000_profile(program), cfg.seed);
  const trace::Trace t = gen.generate(cfg.instructions);
  return run_simulation(cfg, t);
}

SimResult run_trace_file(const SimConfig& cfg) {
  if (cfg.trace_path.empty()) {
    throw std::invalid_argument("run_trace_file: cfg.trace_path is empty");
  }
  const trace::TraceSource source =
      trace::TraceSource::open_samt(cfg.trace_path, cfg.verify_trace_checksum);
  return run_simulation(cfg, source.view());
}

}  // namespace samie::sim
