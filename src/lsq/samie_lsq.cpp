#include "src/lsq/samie_lsq.h"

#include <algorithm>
#include <cassert>

namespace samie::lsq {

SamieLsq::SamieLsq(const SamieConfig& cfg, energy::SamieLsqLedger* ledger)
    : cfg_(cfg), ledger_(ledger), line_shift_(log2_floor(cfg.line_bytes)) {
  banks_.resize(cfg_.banks);
  for (auto& bank : banks_) {
    bank.resize(cfg_.entries_per_bank);
    for (auto& e : bank) e.slots.resize(cfg_.slots_per_entry);
  }
  shared_.resize(cfg_.unbounded_shared ? 0 : cfg_.shared_entries);
  for (auto& e : shared_) e.slots.resize(cfg_.slots_per_entry);
  bank_entries_used_.assign(cfg_.banks, 0);
}

SamieLsq::Entry& SamieLsq::entry_at(const Loc& loc) {
  return loc.where == Where::kDistrib ? banks_[loc.bank][loc.entry]
                                      : shared_[loc.entry];
}

const SamieLsq::Entry& SamieLsq::entry_at(const Loc& loc) const {
  return loc.where == Where::kDistrib ? banks_[loc.bank][loc.entry]
                                      : shared_[loc.entry];
}

bool SamieLsq::can_compute_address() const {
  return buffer_.size() < cfg_.addr_buffer_slots;
}

template <typename Fn>
void SamieLsq::for_each_same_line(Addr line, Fn&& fn) {
  for (Entry& e : banks_[bank_of(line)]) {
    if (e.valid && e.line == line) fn(e);
  }
  for (Entry& e : shared_) {
    if (e.valid && e.line == line) fn(e);
  }
}

void SamieLsq::fill_slot(const MemOpDesc& op, const Loc& loc, bool new_entry) {
  Entry& e = entry_at(loc);
  const bool distrib = loc.where == Where::kDistrib;
  if (new_entry) {
    e.valid = true;
    e.line = op.addr >> line_shift_;
    e.present = false;
    e.translation = false;
    e.used = 0;
    for (auto& s : e.slots) s.valid = false;
    if (distrib) {
      ++d_entries_used_;
      if (++bank_entries_used_[loc.bank] == cfg_.entries_per_bank) ++banks_full_;
    } else {
      ++s_entries_used_;
    }
    if (ledger_ != nullptr) {
      distrib ? ledger_->on_distrib_addr_write() : ledger_->on_shared_addr_write();
    }
  }

  Slot& s = e.slots[loc.slot];
  s.valid = true;
  s.seq = op.seq;
  s.offset = static_cast<std::uint8_t>(op.addr & (cfg_.line_bytes - 1));
  s.size = op.size;
  s.is_load = op.is_load;
  s.data_ready = op.data_ready;
  s.fwd_store = kNoInst;
  s.fwd_full = false;
  ++e.used;
  if (e.used == cfg_.slots_per_entry) {
    distrib ? ++d_entries_full_ : ++s_entries_full_;
  }
  if (distrib) ++d_slots_used_; else ++s_slots_used_;
  where_[op.seq] = loc;

  if (ledger_ != nullptr) {
    distrib ? ledger_->on_distrib_age_write() : ledger_->on_shared_age_write();
    if (!op.is_load && op.data_ready) {
      distrib ? ledger_->on_distrib_datum_rw() : ledger_->on_shared_datum_rw();
    }
  }
}

void SamieLsq::disambiguate(const MemOpDesc& op, Loc self_loc) {
  const Addr line = op.addr >> line_shift_;
  const std::uint8_t offset =
      static_cast<std::uint8_t>(op.addr & (cfg_.line_bytes - 1));
  Slot& self = entry_at(self_loc).slots[self_loc.slot];

  for_each_same_line(line, [&](Entry& e) {
    for (Slot& s : e.slots) {
      if (!s.valid || s.seq == op.seq) continue;
      if (op.is_load) {
        if (s.is_load || s.seq >= op.seq) continue;
        if (ranges_overlap(offset, op.size, s.offset, s.size) &&
            (self.fwd_store == kNoInst || s.seq > self.fwd_store)) {
          self.fwd_store = s.seq;
          self.fwd_full = range_covers(static_cast<Addr>(offset), op.size,
                                       s.offset, s.size);
        }
      } else {
        if (!s.is_load || s.seq <= op.seq) continue;
        if (ranges_overlap(s.offset, s.size, offset, op.size) &&
            (s.fwd_store == kNoInst || s.fwd_store < op.seq)) {
          s.fwd_store = op.seq;
          s.fwd_full = range_covers(static_cast<Addr>(s.offset), s.size, offset,
                                    op.size);
        }
      }
    }
  });
}

bool SamieLsq::try_place(const MemOpDesc& op, bool /*from_buffer*/) {
  const Addr line = op.addr >> line_shift_;
  const std::uint32_t bank = bank_of(line);
  auto& bank_entries = banks_[bank];

  // The address is broadcast to its bank and to the SharedLSQ; both are
  // searched in parallel (paper §3.2). Charge the comparisons now — they
  // happen regardless of whether a slot is found. Age identifiers of every
  // in-use entry reached by the search are compared as well (§4.2).
  if (ledger_ != nullptr) {
    ledger_->on_bus_send();
    std::uint64_t bank_inuse = 0;
    for (const Entry& e : bank_entries) {
      if (e.valid) {
        ++bank_inuse;
        ledger_->on_distrib_age_search(e.used);
      }
    }
    ledger_->on_distrib_addr_search(bank_inuse);
    std::uint64_t shared_inuse = 0;
    for (const Entry& e : shared_) {
      if (e.valid) {
        ++shared_inuse;
        ledger_->on_shared_age_search(e.used);
      }
    }
    ledger_->on_shared_addr_search(shared_inuse);
  }

  // Placement preference (paper §3.2): same-line entry with a free slot in
  // the bank; else a free bank entry; else same-line with a free slot in
  // the SharedLSQ; else a free shared entry.
  auto find_slot = [&](Entry& e) -> std::int64_t {
    for (std::uint32_t i = 0; i < cfg_.slots_per_entry; ++i) {
      if (!e.slots[i].valid) return i;
    }
    return -1;
  };

  Loc loc;
  bool new_entry = false;
  bool found = false;

  for (std::uint32_t i = 0; i < bank_entries.size() && !found; ++i) {
    Entry& e = bank_entries[i];
    if (e.valid && e.line == line) {
      if (const auto s = find_slot(e); s >= 0) {
        loc = Loc{Where::kDistrib, bank, i, static_cast<std::uint32_t>(s)};
        found = true;
      }
    }
  }
  for (std::uint32_t i = 0; i < bank_entries.size() && !found; ++i) {
    if (!bank_entries[i].valid) {
      loc = Loc{Where::kDistrib, bank, i, 0};
      new_entry = true;
      found = true;
    }
  }
  for (std::uint32_t i = 0; i < shared_.size() && !found; ++i) {
    Entry& e = shared_[i];
    if (e.valid && e.line == line) {
      if (const auto s = find_slot(e); s >= 0) {
        loc = Loc{Where::kShared, 0, i, static_cast<std::uint32_t>(s)};
        found = true;
      }
    }
  }
  for (std::uint32_t i = 0; i < shared_.size() && !found; ++i) {
    if (!shared_[i].valid) {
      loc = Loc{Where::kShared, 0, i, 0};
      new_entry = true;
      found = true;
    }
  }
  if (!found && cfg_.unbounded_shared) {
    shared_.emplace_back();
    shared_.back().slots.resize(cfg_.slots_per_entry);
    loc = Loc{Where::kShared, 0, static_cast<std::uint32_t>(shared_.size() - 1), 0};
    new_entry = true;
    found = true;
  }
  if (!found) return false;

  fill_slot(op, loc, new_entry);
  disambiguate(op, loc);
  return true;
}

Placement SamieLsq::on_address_ready(const MemOpDesc& op) {
  if (try_place(op, /*from_buffer=*/false)) {
    return Placement{Placement::Status::kPlaced};
  }
  if (buffer_.size() >= cfg_.addr_buffer_slots) {
    return Placement{Placement::Status::kRejected};
  }
  ++buffered_;
  buffer_.push_back(op);
  if (ledger_ != nullptr) ledger_->on_addrbuf_write();
  return Placement{Placement::Status::kBuffered};
}

void SamieLsq::drain(std::vector<InstSeq>& newly_placed) {
  // Buffered instructions retry oldest-first with priority over newly
  // computed addresses (paper §3.2). The AddrBuffer is a FIFO (§3.3), so
  // the head blocks the queue until it places; each retry re-reads the
  // FIFO head and re-runs the parallel search — this is what makes ammp
  // the one program whose SAMIE LSQ energy approaches the conventional
  // LSQ's (Figure 7).
  for (std::uint32_t n = 0; n < cfg_.drain_width && !buffer_.empty(); ++n) {
    const MemOpDesc& op = buffer_.front();
    if (ledger_ != nullptr) ledger_->on_addrbuf_read();
    if (!try_place(op, /*from_buffer=*/true)) break;
    newly_placed.push_back(op.seq);
    buffer_.pop_front();
  }
}

bool SamieLsq::is_placed(InstSeq seq) const { return where_.count(seq) != 0; }

LoadPlan SamieLsq::plan_load(InstSeq seq) const {
  auto it = where_.find(seq);
  assert(it != where_.end());
  const Slot& s = entry_at(it->second).slots[it->second.slot];
  assert(s.valid && s.is_load);
  LoadPlan p;
  if (s.fwd_store == kNoInst) return p;
  auto sit = where_.find(s.fwd_store);
  assert(sit != where_.end());
  const Slot& st = entry_at(sit->second).slots[sit->second.slot];
  p.store = s.fwd_store;
  if (!s.fwd_full) {
    p.kind = LoadPlan::Kind::kWaitCommit;
  } else if (st.data_ready) {
    p.kind = LoadPlan::Kind::kForwardReady;
  } else {
    p.kind = LoadPlan::Kind::kForwardWait;
  }
  return p;
}

CacheHints SamieLsq::cache_hints(InstSeq seq) const {
  auto it = where_.find(seq);
  assert(it != where_.end());
  const Entry& e = entry_at(it->second);
  CacheHints h;
  h.way_known = e.present;
  h.set = e.set;
  h.way = e.way;
  h.translation_known = e.translation;
  if (ledger_ != nullptr && (e.present || e.translation)) {
    // Reading the cached line id / translation out of the entry.
    auto* self = const_cast<SamieLsq*>(this);
    (void)self;
    if (it->second.where == Where::kDistrib) {
      if (e.present) ledger_->on_distrib_line_id_rw();
      if (e.translation) ledger_->on_distrib_translation_rw();
    } else {
      if (e.present) ledger_->on_shared_line_id_rw();
      if (e.translation) ledger_->on_shared_translation_rw();
    }
  }
  return h;
}

void SamieLsq::on_cache_access_complete(InstSeq seq, std::uint32_t set,
                                        std::uint32_t way) {
  auto it = where_.find(seq);
  assert(it != where_.end());
  Entry& e = entry_at(it->second);
  const bool distrib = it->second.where == Where::kDistrib;
  if (!e.present) {
    e.present = true;
    e.set = set;
    e.way = way;
    if (ledger_ != nullptr) {
      distrib ? ledger_->on_distrib_line_id_rw() : ledger_->on_shared_line_id_rw();
    }
  }
  if (!e.translation) {
    e.translation = true;
    if (ledger_ != nullptr) {
      distrib ? ledger_->on_distrib_translation_rw()
              : ledger_->on_shared_translation_rw();
    }
  }
}

void SamieLsq::on_load_complete(InstSeq seq) {
  auto it = where_.find(seq);
  assert(it != where_.end());
  const bool distrib = it->second.where == Where::kDistrib;
  const Slot& s = entry_at(it->second).slots[it->second.slot];
  if (ledger_ != nullptr) {
    // The loaded datum is written into the slot; a forwarded load also
    // read the source store's datum.
    distrib ? ledger_->on_distrib_datum_rw() : ledger_->on_shared_datum_rw();
    if (s.fwd_store != kNoInst && s.fwd_full) {
      auto sit = where_.find(s.fwd_store);
      if (sit != where_.end()) {
        sit->second.where == Where::kDistrib ? ledger_->on_distrib_datum_rw()
                                             : ledger_->on_shared_datum_rw();
      }
    }
  }
}

void SamieLsq::on_store_data_ready(InstSeq seq) {
  auto it = where_.find(seq);
  assert(it != where_.end());
  Slot& s = entry_at(it->second).slots[it->second.slot];
  assert(s.valid && !s.is_load);
  s.data_ready = true;
  if (ledger_ != nullptr) {
    it->second.where == Where::kDistrib ? ledger_->on_distrib_datum_rw()
                                        : ledger_->on_shared_datum_rw();
  }
}

void SamieLsq::clear_forward_refs(Entry& e, InstSeq store) {
  for (Slot& s : e.slots) {
    if (s.valid && s.fwd_store == store) {
      s.fwd_store = kNoInst;
      s.fwd_full = false;
    }
  }
}

void SamieLsq::free_slot(const Loc& loc, InstSeq seq) {
  Entry& e = entry_at(loc);
  const bool distrib = loc.where == Where::kDistrib;
  assert(e.slots[loc.slot].valid && e.slots[loc.slot].seq == seq);
  if (e.used == cfg_.slots_per_entry) {
    distrib ? --d_entries_full_ : --s_entries_full_;
  }
  e.slots[loc.slot].valid = false;
  e.slots[loc.slot].seq = kNoInst;
  --e.used;
  if (distrib) --d_slots_used_; else --s_slots_used_;
  if (e.used == 0) {
    e.valid = false;
    if (e.present && cfg_.clear_stale_present_bits && clear_cache_bit_) {
      // Only clear the cache-side bit if no sibling entry (same line,
      // slots-full overflow) still relies on the cached location.
      bool sibling_present = false;
      for_each_same_line(e.line, [&](Entry& other) {
        if (&other != &e && other.valid && other.present) {
          sibling_present = true;
        }
      });
      if (!sibling_present) clear_cache_bit_(e.set, e.way);
    }
    e.present = false;
    e.translation = false;
    if (distrib) {
      --d_entries_used_;
      if (bank_entries_used_[loc.bank]-- == cfg_.entries_per_bank) --banks_full_;
    } else {
      --s_entries_used_;
    }
  }
  where_.erase(seq);
}

void SamieLsq::on_commit(InstSeq seq) {
  auto it = where_.find(seq);
  assert(it != where_.end());
  const Loc loc = it->second;
  Entry& e = entry_at(loc);
  const Slot& s = e.slots[loc.slot];
  if (!s.is_load) {
    // The store's datum leaves for the cache; loads that planned to
    // forward from it fall back to the (now up-to-date) cache.
    if (ledger_ != nullptr) {
      loc.where == Where::kDistrib ? ledger_->on_distrib_datum_rw()
                                   : ledger_->on_shared_datum_rw();
    }
    const Addr line = e.line;
    for_each_same_line(line, [&](Entry& other) { clear_forward_refs(other, seq); });
  }
  free_slot(loc, seq);
}

void SamieLsq::squash_from(InstSeq seq) {
  std::vector<std::pair<Loc, InstSeq>> doomed;
  for (const auto& [s, loc] : where_) {
    if (s >= seq) doomed.emplace_back(loc, s);
  }
  for (const auto& [loc, s] : doomed) free_slot(loc, s);

  auto clear_refs = [&](std::vector<Entry>& entries) {
    for (Entry& e : entries) {
      if (!e.valid) continue;
      for (Slot& s : e.slots) {
        if (s.valid && s.fwd_store != kNoInst && s.fwd_store >= seq) {
          s.fwd_store = kNoInst;
          s.fwd_full = false;
        }
      }
    }
  };
  for (auto& bank : banks_) clear_refs(bank);
  clear_refs(shared_);

  std::erase_if(buffer_, [seq](const MemOpDesc& op) { return op.seq >= seq; });
}

void SamieLsq::on_cache_line_replaced(std::uint32_t set) {
  // Reset the presentBit of every entry that could hold a line mapping to
  // `set` (paper §3.4: "resetting the presentBit flag of all entries that
  // can be potentially affected"). Bank index and set index are both
  // low-order line-address bits, so the affected banks are:
  //   banks >= sets: banks b with b % sets == set;
  //   banks <  sets: the single bank set % banks.
  auto reset_entry = [&](Entry& e) {
    if (e.valid && e.present) {
      e.present = false;
      ++present_resets_;
    }
  };
  if (cfg_.banks >= cfg_.l1d_sets) {
    for (std::uint32_t b = set; b < cfg_.banks; b += cfg_.l1d_sets) {
      for (Entry& e : banks_[b]) reset_entry(e);
    }
  } else {
    for (Entry& e : banks_[set % cfg_.banks]) reset_entry(e);
  }
  for (Entry& e : shared_) reset_entry(e);
}

OccupancySample SamieLsq::occupancy() const {
  OccupancySample s;
  s.distrib_entries_used = d_entries_used_;
  s.distrib_slots_used = d_slots_used_;
  s.distrib_banks_full = banks_full_;
  s.distrib_entries_full = d_entries_full_;
  s.shared_entries_used = s_entries_used_;
  s.shared_slots_used = s_slots_used_;
  s.shared_entries_full = s_entries_full_;
  s.buffer_used = static_cast<std::uint32_t>(buffer_.size());
  return s;
}

}  // namespace samie::lsq
